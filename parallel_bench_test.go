package repro

// BenchmarkParallelFigure14 benchmarks the Figure 14 campaign serially
// and on 4 workers, and writes the machine-readable comparison to
// BENCH_parallel.json so CI can archive the speedup alongside the run.

import (
	"encoding/json"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/experiment"
	"repro/internal/ftl/ftltest"
	"repro/internal/nand"
	"repro/internal/workload"
)

var parallelBenchOnce sync.Once

// parallelBenchReport is the schema of BENCH_parallel.json. SerialSec
// and ParallelSec are the wall clock of one full Figure 14 campaign at
// 1 and 4 workers on this machine; Speedup is their ratio, which cannot
// exceed the CPU count recorded next to it.
// On a single-CPU machine the 4-worker campaign cannot beat serial —
// the "speedup" would only measure goroutine-scheduling overhead — so
// Speedup is omitted with SpeedupNote "skipped_single_cpu", and
// benchguard skips its parallel-speedup comparison. (Speedup is a
// pointer so a skipped measurement disappears from the JSON instead of
// masquerading as a measured 0×.)
type parallelBenchReport struct {
	GOMAXPROCS          int      `json:"gomaxprocs"`
	NumCPU              int      `json:"num_cpu"`
	Workers             int      `json:"workers"`
	GridCells           int      `json:"grid_cells"`
	SerialSec           float64  `json:"serial_sec"`
	ParallelSec         float64  `json:"parallel_sec"`
	Speedup             *float64 `json:"speedup,omitempty"`
	SpeedupNote         string   `json:"speedup_note,omitempty"`
	FlashOpsAllocsPerOp float64  `json:"flashops_allocs_per_op"`
}

func BenchmarkParallelFigure14(b *testing.B) {
	profiles := []workload.Profile{workload.MailServer()}
	run := func(workers int) func(b *testing.B) {
		return func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := experiment.Figure14Parallel(benchScale(), profiles, workers); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("serial", run(1))
	b.Run("parallel-4", func(b *testing.B) {
		run(4)(b)
		parallelBenchOnce.Do(func() { writeParallelBenchReport(b, profiles) })
	})
}

// writeParallelBenchReport times one explicit campaign at each worker
// count (outside the b.N loop so the two runs are directly comparable)
// and writes BENCH_parallel.json into the package directory.
func writeParallelBenchReport(b *testing.B, profiles []workload.Profile) {
	campaign := func(workers int) float64 {
		//secvet:allow determinism -- benchmark measures wall-clock throughput of the runner, not simulated time
		start := time.Now()
		if _, err := experiment.Figure14Parallel(benchScale(), profiles, workers); err != nil {
			b.Fatal(err)
		}
		return time.Since(start).Seconds()
	}
	rep := parallelBenchReport{
		GOMAXPROCS:          runtime.GOMAXPROCS(0),
		NumCPU:              runtime.NumCPU(),
		Workers:             4,
		GridCells:           len(profiles) * len(experiment.Policies()),
		SerialSec:           campaign(1),
		ParallelSec:         campaign(4),
		FlashOpsAllocsPerOp: flashOpsAllocsPerOp(b),
	}
	if rep.NumCPU == 1 {
		rep.SpeedupNote = "skipped_single_cpu"
	} else {
		speedup := rep.SerialSec / rep.ParallelSec
		rep.Speedup = &speedup
		b.ReportMetric(speedup, "speedup")
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_parallel.json", append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
	if rep.SpeedupNote != "" {
		b.Logf("BENCH_parallel.json: serial %.2fs, 4 workers %.2fs, speedup skipped (%s), flash ops %.1f allocs/op",
			rep.SerialSec, rep.ParallelSec, rep.SpeedupNote, rep.FlashOpsAllocsPerOp)
	} else {
		b.Logf("BENCH_parallel.json: serial %.2fs, 4 workers %.2fs, speedup %.2fx on %d CPU(s), flash ops %.1f allocs/op",
			rep.SerialSec, rep.ParallelSec, *rep.Speedup, rep.NumCPU, rep.FlashOpsAllocsPerOp)
	}
}

// flashOpsAllocsPerOp replicates BenchmarkFlashOps' program+pLock+erase
// cycle under testing.AllocsPerRun so the scratch-buffer reuse in
// internal/nand shows up as a number CI can track.
func flashOpsAllocsPerOp(b *testing.B) float64 {
	geo := ftltest.SmallGeometry()
	chips := ftltest.BuildChips(b, geo)
	chip := chips[0]
	ppb := geo.PagesPerBlock
	ops := 2*ppb + 1 // ppb programs + ppb pLocks + one erase
	allocs := testing.AllocsPerRun(50, func() {
		for page := 0; page < ppb; page++ {
			a := nand.PageAddr{Block: 0, Page: page}
			if _, err := chip.Program(a, nil, 0); err != nil {
				b.Fatal(err)
			}
			if _, err := chip.PLock(a, 0); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := chip.Erase(0, 0); err != nil {
			b.Fatal(err)
		}
	})
	return allocs / float64(ops)
}
