// Quickstart: build an Evanesco SecureSSD, store a secure file, delete
// it, and show that even a raw-chip forensic dump cannot recover it —
// without a single block erase.
package main

import (
	"bytes"
	"fmt"
	"log"

	"repro/internal/core"
)

func main() {
	// A compact Evanesco-enabled SecureSSD (2 channels × 2 TLC chips).
	dev, err := core.New(core.Options{Policy: core.PolicyEvanesco, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	secret := bytes.Repeat([]byte("patient-record-0042 "), 400)
	if err := dev.WriteFile("medical.db", secret, core.Secure); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote medical.db (secure mode, the device default)")

	// The file reads back normally through the FTL.
	data, err := dev.ReadFile("medical.db")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read back %d bytes, content intact: %v\n",
		len(data), bytes.Contains(data, []byte("patient-record-0042")))

	// An attacker with chip-level access can see live data...
	hits := dev.ForensicScan([]byte("patient-record-0042"))
	fmt.Printf("forensic scan before delete: %d page(s) leak the content\n", len(hits))

	// ...until the file is deleted: trim -> pLock/bLock, no erase needed.
	if err := dev.DeleteFile("medical.db"); err != nil {
		log.Fatal(err)
	}
	st := dev.SSD().FTL().Stats()
	fmt.Printf("deleted: %d pLock(s), %d bLock(s), %d erase(s)\n",
		st.PLocks, st.BLocks, st.Erases)

	hits = dev.ForensicScan([]byte("patient-record-0042"))
	fmt.Printf("forensic scan after delete: %d page(s) leak the content\n", len(hits))

	// The device-wide C1/C2 sanitization checker agrees.
	if err := dev.VerifySanitization(); err != nil {
		log.Fatal("sanitization violated: ", err)
	}
	fmt.Println("sanitization verified: no stale secured data is recoverable")
}
