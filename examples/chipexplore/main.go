// Chipexplore: replays §5.3's design-space methodology on the cell
// model the way a flash vendor would qualify the pLock command for a new
// chip: sweep (program voltage, pulse length), eliminate the corners
// that disturb data (Region I) or cannot program the flag (Region II),
// then pick the surviving candidate that holds a 9-cell majority vote
// for five years with the shortest latency. Ends with the equivalent
// bLock qualification.
package main

import (
	"fmt"

	"repro/internal/chipchar"
	"repro/internal/nand/vth"
)

func main() {
	cfg := chipchar.Config{WLs: 5000, Seed: 3}

	fmt.Println("=== Qualifying pLock on the 48-layer 3D TLC model ===")
	r9 := chipchar.Figure9(cfg)
	fmt.Println("grid after both elimination passes:")
	for _, c := range r9.Combos {
		marker := " "
		if c.V == r9.Chosen.V && c.T == r9.Chosen.T {
			marker = "*"
		}
		fmt.Printf(" %s V=%4.1fV t=%3.0fµs  disturb×%.3f  program %6.2f%%  5y-errors %.1f/9  %s\n",
			marker, c.V, c.T, c.DisturbRatio, 100*c.FlagSuccess, c.RetErrors5y, c.Region)
	}
	fmt.Printf("\nselected pLock operating point: (%.1f V, %.0f µs)\n", r9.Chosen.V, r9.Chosen.T)
	fmt.Printf("  majority-flip probability within 5 years: %.2g\n", r9.Chosen.MajorityFail5y)
	fmt.Printf("  tpLock/tPROG = %.0f%% (paper: <14.3%%)\n\n", 100*r9.Chosen.T/700)

	// How much redundancy does the majority circuit need? (ablation of
	// the paper's k = 9 choice)
	fm := vth.DefaultFlagModel()
	fmt.Println("flag-cell redundancy k vs. 5-year majority failure at the chosen point:")
	for _, k := range []int{1, 3, 5, 7, 9, 11} {
		p := fm.MajorityFailureProb(k, r9.Chosen.V, r9.Chosen.T, 5*365, 1000)
		fmt.Printf("  k=%2d: %.3g\n", k, p)
	}

	fmt.Println("\n=== Qualifying bLock (SSL programming) ===")
	r12 := chipchar.Figure12(cfg)
	for _, c := range r12.Combos {
		if c.Region != chipchar.RegionCandidate {
			continue
		}
		marker := " "
		if c.V == r12.Chosen.V && c.T == r12.Chosen.T {
			marker = "*"
		}
		fmt.Printf(" %s V=%2.0fV t=%3.0fµs  center %4.2fV -> %4.2fV after 5y  reliable=%v\n",
			marker, c.V, c.T, c.ProgrammedCenter, c.Center5y, c.Reliable)
	}
	fmt.Printf("\nselected bLock operating point: (%.0f V, %.0f µs)\n", r12.Chosen.V, r12.Chosen.T)
	fmt.Printf("  tbLock/tBERS = %.1f%% (paper: <8.6%%)\n", 100*r12.Chosen.T/3500)
}
