// Mailserver: a domain scenario from the paper's evaluation. A mail
// server stores a mix of security-sensitive mailboxes (opened with the
// default secure mode) and disposable caches (opened O_INSEC), runs the
// Table 2 MailServer workload to GC steady state on an Evanesco
// SecureSSD, and reports the selective-sanitization economics: IOPS,
// WAF, and lock-command counts versus a scrubbing device.
package main

import (
	"fmt"
	"log"

	"repro/internal/experiment"
	"repro/internal/sanitize"
	"repro/internal/workload"
)

func main() {
	sc := experiment.SmallScale()
	prof := workload.MailServer()

	fmt.Println("=== MailServer on SecureSSD: selective sanitization ===")
	fmt.Printf("device: 8 TLC chips × %d blocks × %d pages; workload r:w 1:1, 16-32 KiB e-mails\n\n",
		sc.BlocksPerChip, sc.WLsPerBlock*3)

	// Baseline for normalization.
	base, err := experiment.Execute(prof, sanitize.Baseline(), 1.0, sc)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("secured-data fraction sweep (Evanesco secSSD):")
	fmt.Printf("  %-10s %12s %10s %10s %10s %10s\n",
		"secured", "IOPS", "vs base", "WAF", "pLocks", "bLocks")
	for _, frac := range []float64{0.0, 0.25, 0.5, 0.75, 1.0} {
		run, err := experiment.Execute(prof, sanitize.SecSSD(), frac, sc)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %9.0f%% %12.0f %9.1f%% %10.3f %10d %10d\n",
			100*frac, run.IOPS(), 100*run.IOPS()/base.IOPS(), run.WAF(),
			run.Report.Stats.PLocks, run.Report.Stats.BLocks)
	}

	// Contrast with the reprogram-based alternative at full security.
	scr, err := experiment.Execute(prof, sanitize.ScrSSD(), 1.0, sc)
	if err != nil {
		log.Fatal(err)
	}
	sec, err := experiment.Execute(prof, sanitize.SecSSD(), 1.0, sc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nfully-secured comparison:")
	fmt.Printf("  scrubbing SSD: %8.0f IOPS, WAF %.2f, %d erases, %d sanitize copies\n",
		scr.IOPS(), scr.WAF(), scr.Report.Stats.Erases, scr.Report.Stats.SanitizeCopies)
	fmt.Printf("  Evanesco SSD:  %8.0f IOPS, WAF %.2f, %d erases, %d sanitize copies\n",
		sec.IOPS(), sec.WAF(), sec.Report.Stats.Erases, sec.Report.Stats.SanitizeCopies)
	fmt.Printf("  => %.1fx the throughput with zero sanitize copies (paper: up to 4.8x)\n",
		sec.IOPS()/scr.IOPS())
}
