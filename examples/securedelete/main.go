// Securedelete: the §5.1 threat-model demonstration. The attacker
// de-solders the chips and issues pin-level 00h/30h read cycles through
// the raw flash command interface (nand.RawPort) — bypassing the file
// system, the FTL, and the driver entirely. The same attack is replayed
// against a conventional SSD and an Evanesco SecureSSD, before deletion,
// after deletion, and after five years of retention (flag cells must
// hold their charge; the §5.3/§5.4 operating points guarantee it).
package main

import (
	"bytes"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/nand"
)

const secretMarker = "TOP-SECRET-DOSSIER"

func main() {
	fmt.Println("=== Threat model: attacker dumps raw flash chips ===")
	fmt.Println()
	attack(core.PolicyBaseline, "conventional SSD (no sanitization)")
	fmt.Println()
	attack(core.PolicyEvanesco, "Evanesco SecureSSD")
}

func attack(policy core.PolicyName, label string) {
	dev, err := core.New(core.Options{Policy: policy, Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("--- %s ---\n", label)

	secret := bytes.Repeat([]byte(secretMarker+" "), 300)
	if err := dev.WriteFile("dossier.pdf", secret, core.Secure); err != nil {
		log.Fatal(err)
	}
	// Update the file once, so an old version exists too (condition C2).
	if err := dev.WriteFile("dossier.pdf", append([]byte("v2 "), secret...), core.Secure); err != nil {
		log.Fatal(err)
	}
	// The attacker's tool: pin-level 00h/30h read cycles on every chip —
	// no FTL, no driver, just the flash bus.
	pinLevelScan := func() int {
		hits := 0
		needle := []byte(secretMarker)
		for _, chip := range dev.SSD().Chips() {
			port := nand.NewRawPort(chip)
			geo := chip.Geometry()
			for b := 0; b < geo.Blocks; b++ {
				for pg := 0; pg < geo.PagesPerBlock(); pg++ {
					data, _ := port.ReadPage(nand.PageAddr{Block: b, Page: pg}, geo.PageBytes)
					if bytes.Contains(data, needle) {
						hits++
					}
				}
			}
		}
		return hits
	}
	report := func(stage string, liveExpected bool) {
		hits := pinLevelScan()
		verdict := "RECOVERED — sanitization failed"
		switch {
		case hits == 0:
			verdict = "nothing recovered"
		case liveExpected:
			verdict = "readable (file is live — expected)"
		}
		fmt.Printf("  %-28s %3d page(s) with content: %s\n", stage, hits, verdict)
	}
	report("while file is live:", true)

	if err := dev.DeleteFile("dossier.pdf"); err != nil {
		log.Fatal(err)
	}
	report("after secure delete:", false)

	// A patient attacker waits five years hoping the lock cells decay.
	dev.AdvanceRetention(5 * 365)
	report("after 5 years of retention:", false)

	st := dev.SSD().FTL().Stats()
	fmt.Printf("  device cost: %d pLocks, %d bLocks, %d erases, %d copy-writes\n",
		st.PLocks, st.BLocks, st.Erases, st.GCCopies+st.SanitizeCopies)
}
