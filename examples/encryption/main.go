// Encryption: the §8 related-work comparison. Encryption-based
// sanitization deletes a file's key instead of its data. This example
// replays the paper's argument end to end:
//
//  1. key deletion does hide the plaintext from a forensic dump, but
//  2. the ciphertext stays physically present, so a leaked key (cold
//     boot, subpoena, sloppy keystore) retroactively exposes every stale
//     copy on a conventional SSD, while
//  3. on an Evanesco device the same leak recovers nothing, because the
//     stale pages were physically locked — the techniques compose.
package main

import (
	"bytes"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/enc"
)

const plaintext = "WIRE-TRANSFER-AUTH-CODE-31337"

func main() {
	fmt.Println("=== Encryption-based sanitization vs. Evanesco (§8) ===")
	fmt.Println()
	scenario(core.PolicyBaseline, "conventional SSD + per-file encryption")
	fmt.Println()
	scenario(core.PolicyEvanesco, "Evanesco SecureSSD + per-file encryption")
}

func scenario(policy core.PolicyName, label string) {
	fmt.Printf("--- %s ---\n", label)
	dev, err := core.New(core.Options{Policy: policy, Seed: 31})
	if err != nil {
		log.Fatal(err)
	}
	ks := enc.NewKeyStore(31)
	ks.Sloppy = true // the keystore lives on a conventional region

	// Encrypt and store the file; update it once so a stale version exists.
	key, _ := ks.CreateKey(1)
	cipher, _ := enc.NewCipher(key)
	plain := bytes.Repeat([]byte(plaintext+" "), 150)
	write := func(version byte) {
		ct := cipher.EncryptPage(0, append([]byte{version}, plain...))
		if err := dev.WriteFile("ledger.enc", ct, core.Secure); err != nil {
			log.Fatal(err)
		}
	}
	write(1)
	write(2) // the v1 ciphertext is now a stale physical copy

	// Sanitize by deleting the file AND destroying the key.
	if err := dev.DeleteFile("ledger.enc"); err != nil {
		log.Fatal(err)
	}
	ks.DestroyKey(1)

	// Forensics, step 1: no plaintext anywhere (encryption did its job).
	if hits := dev.ForensicScan([]byte(plaintext)); len(hits) != 0 {
		log.Fatalf("plaintext visible at %v", hits)
	}
	fmt.Println("  after delete + key destruction: no plaintext recoverable")

	// Forensics, step 2: the attacker recovers the key from the sloppy
	// keystore (cold boot / subpoena / keystore region dump) and tries it
	// against every raw page of every chip.
	leaked, ok := ks.RecoverDestroyedKey(1)
	if !ok {
		log.Fatal("demo requires the sloppy keystore")
	}
	leakedCipher, _ := enc.NewCipher(leaked)
	recovered := 0
	for _, chip := range dev.SSD().Chips() {
		geo := chip.Geometry()
		for b := 0; b < geo.Blocks; b++ {
			for _, page := range chip.ForensicDump(b, 0) {
				if len(page) == 0 {
					continue
				}
				if bytes.Contains(leakedCipher.DecryptPage(0, page), []byte(plaintext)) {
					recovered++
				}
			}
		}
	}
	if recovered > 0 {
		fmt.Printf("  after the key leaks: %d stale page(s) DECRYPTED — key deletion alone failed\n", recovered)
	} else {
		fmt.Println("  after the key leaks: 0 pages decrypted — the locks held without the key's help")
	}
}
