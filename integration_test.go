package repro

// Cross-package integration tests: the full host-to-cell stack under
// realistic workloads, and the on-chip ECC datapath built from the real
// BCH codec over the Monte-Carlo cell model.

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/ecc"
	"repro/internal/experiment"
	"repro/internal/ftl"
	"repro/internal/nand/vth"
	"repro/internal/workload"
)

// TestFullStackWorkloadSanitization runs a Table 2 workload through the
// complete stack (generator -> filesys -> SSD -> FTL -> chips) on an
// Evanesco device and then verifies, at the raw-chip level, that no
// stale secured data survived anywhere.
func TestFullStackWorkloadSanitization(t *testing.T) {
	dev, err := core.New(core.Options{Policy: core.PolicyEvanesco, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	fs := dev.FS()
	gen := workload.NewGenerator(workload.MailServer(), fs, dev.PageBytes(), 21)
	if err := gen.RunPages(uint64(dev.SSD().LogicalPages()) * 2); err != nil {
		t.Fatal(err)
	}
	st := dev.SSD().FTL().Stats()
	if st.GCRuns == 0 {
		t.Fatal("workload too small to trigger GC")
	}
	if st.PLocks == 0 {
		t.Fatal("secured churn must issue locks")
	}
	if err := dev.VerifySanitization(); err != nil {
		t.Fatal(err)
	}
}

// TestFullStackMixedSecurity runs a workload with a 50% secure fraction:
// secure files must be sanitized, insecure ones may leak, and the device
// must never lock insecure data.
func TestFullStackMixedSecurity(t *testing.T) {
	dev, err := core.New(core.Options{Policy: core.PolicyEvanesco, Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.NewGenerator(workload.FileServer(), dev.FS(), dev.PageBytes(), 22)
	gen.SecureFraction = 0.5
	if err := gen.RunPages(uint64(dev.SSD().LogicalPages())); err != nil {
		t.Fatal(err)
	}
	// Every readable stale page must belong to an insecure file — which
	// VerifySanitization cannot distinguish, so scan manually: stale
	// secured data is impossible by construction of the status table
	// (PageInvalid for secured pages only after a lock), so assert the
	// FTL's view instead: no physical page is in PageSecured state
	// without a live mapping.
	f := dev.SSD().FTL()
	g := dev.SSD().Geometry()
	for p := 0; p < g.TotalPages(); p++ {
		ppa := ftl.PPA(p)
		if f.Status(ppa) == ftl.PageSecured && f.Lookup(lpaOf(f, g, ppa)) != ppa {
			t.Fatalf("physical page %d secured but not mapped", p)
		}
	}
}

// lpaOf finds the logical page mapped to ppa by scanning (test helper;
// fine at test scale).
func lpaOf(f *ftl.FTL, g ftl.Geometry, target ftl.PPA) int64 {
	for lpa := int64(0); lpa < int64(f.LogicalPages()); lpa++ {
		if f.Lookup(lpa) == target {
			return lpa
		}
	}
	return -1
}

// TestAllPoliciesSurviveAllWorkloads smoke-tests every (workload, policy)
// combination end to end at small scale — 20 full-stack runs.
func TestAllPoliciesSurviveAllWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("20 full-stack runs")
	}
	sc := experiment.SmallScale()
	sc.StudyPages = 2000
	for _, prof := range workload.Profiles() {
		for _, policy := range experiment.Policies() {
			run, err := experiment.Execute(prof, policy, 1.0, sc)
			if err != nil {
				t.Fatalf("%s/%s: %v", prof.Name, policy.Name(), err)
			}
			if run.IOPS() <= 0 {
				t.Errorf("%s/%s: no throughput", prof.Name, policy.Name())
			}
		}
	}
}

// TestECCDatapathOverCellModel builds the full on-chip read datapath the
// paper assumes: data -> BCH encode -> per-cell Vth programming (Monte
// Carlo) -> read with reference voltages -> BCH decode. A fresh wordline
// must decode perfectly; a heavily worn and retention-aged one must
// exceed the code's correction power.
func TestECCDatapathOverCellModel(t *testing.T) {
	codec, err := ecc.NewPageCodec(8, 12) // BCH(255, t=12)
	if err != nil {
		t.Fatal(err)
	}
	model := vth.NewTLC()
	rng := rand.New(rand.NewSource(31))
	payload := make([]byte, 96)
	rng.Read(payload)

	roundTrip := func(cond vth.Condition) ([]byte, int, error) {
		cws, err := codec.EncodePage(payload)
		if err != nil {
			t.Fatal(err)
		}
		// Store each codeword bit in the LSB page of its own cell; the
		// sibling bits are random data from other pages of the WL.
		for _, cw := range cws {
			for i, bit := range cw {
				bits := []byte{bit, byte(rng.Intn(2)), byte(rng.Intn(2))}
				state := vth.StateFor(vth.TLC, bits)
				v := model.SampleVth(state, cond, rng)
				got := model.DecodeVth(v)
				cw[i] = vth.BitOf(vth.TLC, got, vth.LSB)
			}
		}
		return codec.DecodePage(cws, len(payload))
	}

	// Fresh chip: perfect recovery (possibly with a few corrected bits).
	got, corrected, err := roundTrip(vth.Condition{})
	if err != nil {
		t.Fatalf("fresh wordline uncorrectable: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("fresh wordline payload mismatch")
	}
	t.Logf("fresh wordline: %d bits corrected", corrected)

	// Abused chip (5x rated endurance + a decade of retention on a bad
	// wordline): the error rate must overwhelm BCH t=12 per 255 bits.
	_, _, err = roundTrip(vth.Condition{PECycles: 5000, RetentionDays: 3650, WLVariation: 1.5})
	if err == nil {
		t.Fatal("abused wordline decoded cleanly; the wear model is too gentle")
	}
}

// TestLockedDataDefeatsECCToo: ECC cannot resurrect locked data — the
// chip returns all zeros, which is not a valid codeword of anything that
// was stored.
func TestLockedDataDefeatsECCToo(t *testing.T) {
	dev, err := core.New(core.Options{Policy: core.PolicyEvanesco, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	codec, _ := ecc.NewPageCodec(8, 8)
	payload := bytes.Repeat([]byte("classified "), 40)
	cws, _ := codec.EncodePage(payload)
	// Flatten codewords into the stored file content.
	var stored []byte
	for _, cw := range cws {
		stored = append(stored, cw...)
	}
	if err := dev.WriteFile("enc.bin", stored, core.Secure); err != nil {
		t.Fatal(err)
	}
	if err := dev.DeleteFile("enc.bin"); err != nil {
		t.Fatal(err)
	}
	// The attacker's dump of any chip contains no trace of the codewords.
	if hits := dev.ForensicScan(stored[:64]); len(hits) != 0 {
		t.Fatal("codeword bytes recovered after delete")
	}
}

// TestScrubbedDeviceAlsoSanitizes: the baseline techniques do sanitize —
// they are just expensive. Cross-check scrSSD's guarantee at full-stack
// scale so the comparison in Fig. 14 is apples to apples.
func TestScrubbedDeviceAlsoSanitizes(t *testing.T) {
	dev, err := core.New(core.Options{Policy: core.PolicyScrub, Seed: 24})
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.NewGenerator(workload.MailServer(), dev.FS(), dev.PageBytes(), 24)
	if err := gen.RunPages(uint64(dev.SSD().LogicalPages())); err != nil {
		t.Fatal(err)
	}
	if err := dev.VerifySanitization(); err != nil {
		t.Fatal(err)
	}
	if dev.SSD().FTL().Stats().Scrubs == 0 {
		t.Fatal("scrSSD never scrubbed")
	}
}

// TestFilesysOverRealDeviceRoundTrip pushes file data through the full
// stack and reads it back after churn.
func TestFilesysOverRealDeviceRoundTrip(t *testing.T) {
	dev, err := core.New(core.Options{Policy: core.PolicyEvanesco, Seed: 25})
	if err != nil {
		t.Fatal(err)
	}
	contents := map[string][]byte{}
	rng := rand.New(rand.NewSource(25))
	for i := 0; i < 12; i++ {
		name := string(rune('a'+i)) + ".bin"
		data := make([]byte, 1+rng.Intn(4*dev.PageBytes()))
		rng.Read(data)
		if err := dev.WriteFile(name, data, core.Secure); err != nil {
			t.Fatal(err)
		}
		contents[name] = data
	}
	if err := dev.Churn(8000, 25); err != nil {
		t.Fatal(err)
	}
	for name, want := range contents {
		got, err := dev.ReadFile(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !bytes.HasPrefix(got, want) {
			t.Fatalf("%s: content corrupted after churn", name)
		}
	}
}
