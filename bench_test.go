package repro

// One benchmark per table and figure of the paper's evaluation, plus the
// ablation benches called out in DESIGN.md §5. Each benchmark regenerates
// its artifact end to end and reports the figure's headline quantity via
// b.ReportMetric, so `go test -bench=. -benchmem` doubles as the
// reproduction harness at test scale (the cmd/ tools run larger scales).

import (
	"fmt"
	"testing"

	"repro/internal/chipchar"
	"repro/internal/enc"
	"repro/internal/experiment"
	"repro/internal/ftl"
	"repro/internal/ftl/ftltest"
	"repro/internal/nand/vth"
	"repro/internal/sanitize"
	"repro/internal/ssd"
	"repro/internal/trace"
	"repro/internal/vertrace"
	"repro/internal/workload"

	"math/rand"

	"repro/internal/blockio"
	"repro/internal/nand"
)

// --- Table 1 / Figure 4: the §3 data-versioning study -------------------

func table1Config(prof workload.Profile) vertrace.StudyConfig {
	return vertrace.StudyConfig{
		Workload:      prof,
		CapacityPages: 16 * 1024, // 64 MiB at 4 KiB pages (paper: 16 GiB)
		PageBytes:     4096,
		FillFraction:  0.75,
		StudyPages:    48 * 1024, // 3 capacities of writes (paper: 4)
		Seed:          11,
	}
}

// BenchmarkTable1 regenerates the VAF / T_insecure statistics for the
// three §3 workloads.
func BenchmarkTable1(b *testing.B) {
	for _, prof := range []workload.Profile{workload.Mobile(), workload.MailServer(), workload.DBServer()} {
		b.Run(prof.Name, func(b *testing.B) {
			var row vertrace.Table1Row
			for i := 0; i < b.N; i++ {
				res, err := vertrace.RunStudy(table1Config(prof))
				if err != nil {
					b.Fatal(err)
				}
				row = res.Row
			}
			b.ReportMetric(row.UV.VAFMax, "UV-VAFmax")
			b.ReportMetric(row.MV.VAFMax, "MV-VAFmax")
			b.ReportMetric(row.MV.TInsecMax, "MV-Tinsec-max")
		})
	}
}

// BenchmarkFigure4 regenerates the N_valid/N_invalid time plots for the
// representative UV and MV files.
func BenchmarkFigure4(b *testing.B) {
	cfg := table1Config(workload.DBServer())
	first, err := vertrace.RunStudy(cfg)
	if err != nil {
		b.Fatal(err)
	}
	top := vertrace.TopFiles(first.Files, true, 1)
	if len(top) == 0 {
		b.Fatal("no MV file found")
	}
	cfg.WatchIDs = []uint64{top[0].FileID}
	b.ResetTimer()
	var points int
	for i := 0; i < b.N; i++ {
		res, err := vertrace.RunStudy(cfg)
		if err != nil {
			b.Fatal(err)
		}
		points = res.Watched[0].Invalid.Len()
	}
	b.ReportMetric(float64(points), "series-points")
}

// --- Figures 6, 9, 10, 11(b), 12: chip characterization -----------------

func chipCfg() chipchar.Config { return chipchar.Config{WLs: 4000, Seed: 1} }

// BenchmarkFigure6 regenerates the OSR reliability boxes.
func BenchmarkFigure6(b *testing.B) {
	var r chipchar.Fig6Result
	for i := 0; i < b.N; i++ {
		r = chipchar.Figure6(chipCfg())
	}
	b.ReportMetric(100*r.MLC[1].FracAboveLimit, "MLC-OSR-%>limit")
	b.ReportMetric(100*r.TLC[1].FracAboveLimit, "TLC-OSR-%>limit")
	b.ReportMetric(r.MLC[2].Box.Max, "MLC-ret-max")
}

// BenchmarkFigure9 regenerates the pLock design-space exploration.
func BenchmarkFigure9(b *testing.B) {
	var r chipchar.Fig9Result
	for i := 0; i < b.N; i++ {
		r = chipchar.Figure9(chipCfg())
	}
	b.ReportMetric(r.Chosen.V, "chosen-V")
	b.ReportMetric(r.Chosen.T, "chosen-tpLock-us")
}

// BenchmarkFigure10 regenerates the open-interval sweep.
func BenchmarkFigure10(b *testing.B) {
	var r chipchar.Fig10Result
	for i := 0; i < b.N; i++ {
		r = chipchar.Figure10(chipCfg())
	}
	growth := r.NoPE[len(r.NoPE)-1]/r.NoPE[0] - 1
	b.ReportMetric(100*growth, "RBER-growth-%")
}

// BenchmarkFigure11 regenerates the SSL cutoff sweep.
func BenchmarkFigure11(b *testing.B) {
	var r chipchar.Fig11Result
	for i := 0; i < b.N; i++ {
		r = chipchar.Figure11(chipCfg())
	}
	b.ReportMetric(r.Cutoff, "cutoff-V")
}

// BenchmarkFigure12 regenerates the bLock design-space exploration.
func BenchmarkFigure12(b *testing.B) {
	var r chipchar.Fig12Result
	for i := 0; i < b.N; i++ {
		r = chipchar.Figure12(chipCfg())
	}
	b.ReportMetric(r.Chosen.V, "chosen-V")
	b.ReportMetric(r.Chosen.T, "chosen-tbLock-us")
}

// --- Figure 14: the system-level evaluation ------------------------------

func benchScale() experiment.Scale {
	sc := experiment.SmallScale()
	sc.StudyPages = 4000
	return sc
}

// BenchmarkFigure14a reports normalized IOPS per configuration on the
// MailServer workload (run `cmd/secssd-bench` for all four workloads).
func BenchmarkFigure14a(b *testing.B) {
	var rows []experiment.Fig14Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiment.Figure14(benchScale(), []workload.Profile{workload.MailServer()})
		if err != nil {
			b.Fatal(err)
		}
	}
	r := rows[0]
	b.ReportMetric(r.IOPS["erSSD"], "erSSD")
	b.ReportMetric(r.IOPS["scrSSD"], "scrSSD")
	b.ReportMetric(r.IOPS["secSSD"], "secSSD")
}

// BenchmarkFigure14b reports normalized WAF per configuration.
func BenchmarkFigure14b(b *testing.B) {
	var rows []experiment.Fig14Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiment.Figure14(benchScale(), []workload.Profile{workload.MailServer()})
		if err != nil {
			b.Fatal(err)
		}
	}
	r := rows[0]
	b.ReportMetric(r.WAF["erSSD"], "erSSD")
	b.ReportMetric(r.WAF["scrSSD"], "scrSSD")
	b.ReportMetric(r.WAF["secSSD"], "secSSD")
}

// BenchmarkFigure14c reports the secured-fraction sweep endpoints.
func BenchmarkFigure14c(b *testing.B) {
	var pts []experiment.Fig14cPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = experiment.Figure14c(benchScale(),
			[]workload.Profile{workload.MailServer()}, []float64{0.6, 1.0})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(pts[0].NormIOPS, "IOPS@60%")
	b.ReportMetric(pts[1].NormIOPS, "IOPS@100%")
}

// BenchmarkHeadline reports the §1 aggregate claims.
func BenchmarkHeadline(b *testing.B) {
	var h experiment.Headline
	for i := 0; i < b.N; i++ {
		rows, err := experiment.Figure14(benchScale(),
			[]workload.Profile{workload.MailServer(), workload.Mobile()})
		if err != nil {
			b.Fatal(err)
		}
		h = experiment.ComputeHeadline(rows)
	}
	b.ReportMetric(h.IOPSSpeedupAvg, "IOPS-speedup-avg")
	b.ReportMetric(100*h.EraseReductionAvg, "erase-reduction-%")
	b.ReportMetric(100*h.PLockReductionAvg, "pLock-reduction-%")
}

// --- Ablations (DESIGN.md §5) --------------------------------------------

// BenchmarkAblationFlagRedundancy sweeps the pAP flag redundancy k and
// reports the 5-year majority failure probability at the chosen pLock
// operating point. The paper picks k = 9.
func BenchmarkAblationFlagRedundancy(b *testing.B) {
	fm := vth.DefaultFlagModel()
	for _, k := range []int{5, 7, 9, 11} {
		b.Run(benchName("k", k), func(b *testing.B) {
			var p float64
			for i := 0; i < b.N; i++ {
				p = fm.MajorityFailureProb(k, vth.PLockVoltages[3], 100, 5*365, 1000)
			}
			b.ReportMetric(p, "majority-fail-5y")
		})
	}
}

// BenchmarkAblationPLockOperatingPoint contrasts the chosen pLock point
// (Vp4, 100µs) with the rejected corner (Vp2, 200µs) from Fig. 9(d).
func BenchmarkAblationPLockOperatingPoint(b *testing.B) {
	fm := vth.DefaultFlagModel()
	points := []struct {
		name string
		v, t float64
	}{
		{"chosen-Vp4-100us", vth.PLockVoltages[3], 100},
		{"rejected-Vp2-200us", vth.PLockVoltages[1], 200},
	}
	for _, pt := range points {
		b.Run(pt.name, func(b *testing.B) {
			var errs float64
			for i := 0; i < b.N; i++ {
				errs = fm.ExpectedRetentionErrors(9, pt.v, pt.t, 5*365, 1000)
			}
			b.ReportMetric(errs, "errs-5y-of-9")
		})
	}
}

// BenchmarkAblationLockPolicy compares the §6 lock-manager decision rule
// against always-pLock (secSSD_nobLock) on the large-write workload where
// bLock matters most.
func BenchmarkAblationLockPolicy(b *testing.B) {
	for _, policy := range []ftl.Policy{sanitize.SecSSDNoBLock(), sanitize.SecSSD()} {
		b.Run(policy.Name(), func(b *testing.B) {
			var run experiment.Run
			for i := 0; i < b.N; i++ {
				var err error
				run, err = experiment.Execute(workload.Mobile(), policy, 1.0, benchScale())
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(run.IOPS(), "IOPS")
			b.ReportMetric(float64(run.Report.Stats.PLocks), "pLocks")
			b.ReportMetric(float64(run.Report.Stats.BLocks), "bLocks")
		})
	}
}

// BenchmarkAblationGC compares greedy min-valid victim selection (the
// paper FTL's policy) against FIFO collection under secured churn: greedy
// should hold a visibly lower WAF.
func BenchmarkAblationGC(b *testing.B) {
	run := func(b *testing.B, victim ftl.VictimPolicy) {
		var waf float64
		for i := 0; i < b.N; i++ {
			s, err := ssd.New(ssd.Config{
				Channels: 2, ChipsPerChannel: 2,
				Chip: nand.Geometry{
					Blocks: 24, WLsPerBlock: 16, CellKind: vth.TLC,
					PageBytes: 4096, FlagCells: 9, EnduranceCycles: 1000,
				},
				OverProvision: 0.25, GCFreeBlocksLow: 2, QueueDepth: 16,
				Policy: sanitize.SecSSD(), Seed: 3, Victim: victim,
			})
			if err != nil {
				b.Fatal(err)
			}
			if err := s.Prefill(0.85, true); err != nil {
				b.Fatal(err)
			}
			s.Mark()
			rng := rand.New(rand.NewSource(4))
			logical := int64(s.LogicalPages())
			for j := 0; j < 4000; j++ {
				s.MustSubmit(blockio.Request{Op: blockio.OpWrite, LPA: rng.Int63n(logical), Pages: 1})
			}
			waf = s.Report().WAF
		}
		b.ReportMetric(waf, "WAF")
	}
	b.Run("greedy", func(b *testing.B) { run(b, ftl.VictimGreedy) })
	b.Run("fifo", func(b *testing.B) { run(b, ftl.VictimFIFO) })
}

// BenchmarkAblationLazyErase contrasts lazy block erase (required on
// real 3D NAND for open-interval reliability, §5.4) with eager erase.
func BenchmarkAblationLazyErase(b *testing.B) {
	run := func(b *testing.B, eager bool) {
		var r ssd.Report
		for i := 0; i < b.N; i++ {
			s, err := ssd.New(ssd.Config{
				Channels: 2, ChipsPerChannel: 2,
				Chip: nand.Geometry{
					Blocks: 24, WLsPerBlock: 16, CellKind: vth.TLC,
					PageBytes: 4096, FlagCells: 9, EnduranceCycles: 1000,
				},
				OverProvision: 0.25, GCFreeBlocksLow: 2, QueueDepth: 16,
				Policy: sanitize.SecSSD(), Seed: 3, EagerErase: eager,
			})
			if err != nil {
				b.Fatal(err)
			}
			if err := s.Prefill(0.8, true); err != nil {
				b.Fatal(err)
			}
			s.Mark()
			rng := rand.New(rand.NewSource(4))
			logical := int64(s.LogicalPages())
			for j := 0; j < 4000; j++ {
				s.MustSubmit(blockio.Request{Op: blockio.OpWrite, LPA: rng.Int63n(logical), Pages: 1})
			}
			r = s.Report()
		}
		b.ReportMetric(r.IOPS, "IOPS")
		b.ReportMetric(float64(r.Stats.Erases), "erases")
	}
	b.Run("lazy", func(b *testing.B) { run(b, false) })
	b.Run("eager", func(b *testing.B) { run(b, true) })
}

// BenchmarkTraceOverhead measures the tracing subsystem's cost on the hot
// simulation path: "disabled" runs with no collector (the production
// default — each instrumentation site pays one predictable branch),
// "recorder" attaches a full trace.Recorder. The disabled case is the
// <5%-regression acceptance bar for the telemetry layer.
func BenchmarkTraceOverhead(b *testing.B) {
	run := func(b *testing.B, tr trace.Collector) {
		for i := 0; i < b.N; i++ {
			s, err := ssd.New(ssd.Config{
				Channels: 2, ChipsPerChannel: 2,
				Chip: nand.Geometry{
					Blocks: 24, WLsPerBlock: 16, CellKind: vth.TLC,
					PageBytes: 4096, FlagCells: 9, EnduranceCycles: 1000,
				},
				OverProvision: 0.25, GCFreeBlocksLow: 2, QueueDepth: 16,
				Policy: sanitize.SecSSD(), Seed: 3, Trace: tr,
			})
			if err != nil {
				b.Fatal(err)
			}
			if err := s.Prefill(0.85, true); err != nil {
				b.Fatal(err)
			}
			rng := rand.New(rand.NewSource(4))
			logical := int64(s.LogicalPages())
			for j := 0; j < 4000; j++ {
				s.MustSubmit(blockio.Request{Op: blockio.OpWrite, LPA: rng.Int63n(logical), Pages: 1})
			}
		}
	}
	b.Run("disabled", func(b *testing.B) { run(b, nil) })
	b.Run("recorder", func(b *testing.B) {
		run(b, trace.NewRecorder(trace.RecorderConfig{Chips: 4, Channels: 2}))
	})
}

// BenchmarkFlashOps measures the raw command path of the emulated chip.
func BenchmarkFlashOps(b *testing.B) {
	geo := ftltest.SmallGeometry()
	b.Run("program+pLock+erase", func(b *testing.B) {
		chips := ftltest.BuildChips(b, geo)
		chip := chips[0]
		ppb := geo.PagesPerBlock
		for i := 0; i < b.N; i++ {
			blockIdx := 0
			page := i % ppb
			if page == 0 && i > 0 {
				if _, err := chip.Erase(blockIdx, 0); err != nil {
					b.Fatal(err)
				}
			}
			a := nand.PageAddr{Block: blockIdx, Page: page}
			if _, err := chip.Program(a, nil, 0); err != nil {
				b.Fatal(err)
			}
			if _, err := chip.PLock(a, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func benchName(prefix string, v int) string {
	return fmt.Sprintf("%s=%02d", prefix, v)
}

// BenchmarkAblationWearLeveling contrasts LIFO free-block reuse with
// wear-aware (least-erased-first) allocation under a skewed workload and
// reports the erase-count spread — the lifetime lever the paper's §7
// erase-reduction numbers feed into.
func BenchmarkAblationWearLeveling(b *testing.B) {
	run := func(b *testing.B, wearAware bool) {
		var wear ftl.WearStats
		for i := 0; i < b.N; i++ {
			s, err := ssd.New(ssd.Config{
				Channels: 2, ChipsPerChannel: 2,
				Chip: nand.Geometry{
					Blocks: 24, WLsPerBlock: 16, CellKind: vth.TLC,
					PageBytes: 4096, FlagCells: 9, EnduranceCycles: 1000,
				},
				OverProvision: 0.25, GCFreeBlocksLow: 2, QueueDepth: 16,
				Policy: sanitize.SecSSD(), Seed: 3, WearAware: wearAware,
			})
			if err != nil {
				b.Fatal(err)
			}
			rng := rand.New(rand.NewSource(9))
			logical := int64(s.LogicalPages())
			hot := logical / 16
			for j := 0; j < 40000; j++ {
				lpa := rng.Int63n(hot)
				if rng.Intn(10) == 0 {
					lpa = hot + rng.Int63n(logical-hot)
				}
				s.MustSubmit(blockio.Request{Op: blockio.OpWrite, LPA: lpa, Pages: 1})
			}
			wear = s.FTL().Wear()
		}
		b.ReportMetric(float64(wear.Spread), "erase-spread")
		b.ReportMetric(float64(wear.Max), "erase-max")
	}
	b.Run("lifo", func(b *testing.B) { run(b, false) })
	b.Run("wear-aware", func(b *testing.B) { run(b, true) })
}

// BenchmarkRelatedWorkEncryption measures the per-page AES-CTR cost of
// the §8 encryption-based alternative: every host read and write pays
// this on the datapath, whereas Evanesco's pLock costs 100µs of chip
// time only when secured data is invalidated.
func BenchmarkRelatedWorkEncryption(b *testing.B) {
	ks := enc.NewKeyStore(1)
	key, _ := ks.CreateKey(1)
	c, err := enc.NewCipher(key)
	if err != nil {
		b.Fatal(err)
	}
	page := make([]byte, 16*1024)
	rand.New(rand.NewSource(1)).Read(page)
	b.SetBytes(int64(len(page)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		page = c.EncryptPage(int64(i), page)
	}
}

// BenchmarkExtensionLockDurabilityVsTemp evaluates the chosen pLock/bLock
// operating points across storage temperatures (Arrhenius-accelerated
// retention) — an extension beyond the paper's 30°C qualification.
func BenchmarkExtensionLockDurabilityVsTemp(b *testing.B) {
	var pts []chipchar.TempDurabilityPoint
	for i := 0; i < b.N; i++ {
		pts = chipchar.LockDurabilityVsTemperature(nil)
	}
	for _, p := range pts {
		if p.TempC == 55 {
			b.ReportMetric(p.PAPMajorityFail5y, "pAP-fail-5y@55C")
			b.ReportMetric(p.SSLCenter5y, "SSL-V@55C")
		}
	}
}

// BenchmarkAblationCopyback contrasts on-chip copyback GC against
// bus-transfer GC (read out + program back) under churn.
func BenchmarkAblationCopyback(b *testing.B) {
	run := func(b *testing.B, noCopyback bool) {
		var r ssd.Report
		for i := 0; i < b.N; i++ {
			s, err := ssd.New(ssd.Config{
				Channels: 2, ChipsPerChannel: 2,
				Chip: nand.Geometry{
					Blocks: 24, WLsPerBlock: 16, CellKind: vth.TLC,
					PageBytes: 4096, FlagCells: 9, EnduranceCycles: 1000,
				},
				OverProvision: 0.20, GCFreeBlocksLow: 2, QueueDepth: 16,
				Policy: sanitize.SecSSD(), Seed: 3, NoCopyback: noCopyback,
			})
			if err != nil {
				b.Fatal(err)
			}
			if err := s.Prefill(0.85, true); err != nil {
				b.Fatal(err)
			}
			s.Mark()
			rng := rand.New(rand.NewSource(4))
			logical := int64(s.LogicalPages())
			for j := 0; j < 6000; j++ {
				s.MustSubmit(blockio.Request{Op: blockio.OpWrite, LPA: rng.Int63n(logical), Pages: 1})
			}
			r = s.Report()
		}
		b.ReportMetric(r.IOPS, "IOPS")
		b.ReportMetric(float64(r.Stats.Copybacks), "copybacks")
	}
	b.Run("copyback", func(b *testing.B) { run(b, false) })
	b.Run("bus-transfer", func(b *testing.B) { run(b, true) })
}
