package repro

// BenchmarkEventKernel benchmarks the discrete-event kernel's dispatch
// loop in its three configurations — the binary-heap fallback with
// closure events, the ladder queue with typed records (the steady-state
// path, which must run at 0 allocs/op), and the channel-sharded engine —
// and writes the machine-readable comparison to BENCH_engine.json so CI
// can archive the throughput alongside the run.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/sim"
)

const engineBenchKind sim.OpKind = 1

// engineBenchChains is the number of concurrent self-rescheduling event
// chains: enough to keep several ladder buckets populated, small enough
// that the queue stays cache-resident (mirroring the device model's
// per-chip completion events).
const engineBenchChains = 64

// engineChainDelta varies each chain's reschedule interval so events
// interleave across chains instead of marching in lockstep.
func engineChainDelta(chain int32, step int64) sim.Micros {
	return sim.Micros(1 + (int64(chain)*7+step)%13)
}

// newRecordEngine returns an engine with engineBenchChains warm record
// chains: each dispatch reschedules itself, so the queue size is
// constant and every Step exercises the ladder's steady state.
func newRecordEngine() *sim.Engine {
	e := sim.NewEngine()
	e.Register(engineBenchKind, func(e *sim.Engine, r sim.Record) {
		r.Aux++
		e.AfterRecord(engineChainDelta(r.Chip, r.Aux), r)
	})
	for c := int32(0); c < engineBenchChains; c++ {
		e.AtRecord(sim.Micros(c%13), sim.Record{Kind: engineBenchKind, Chip: c})
	}
	return e
}

// newClosureEngine is the same workload through the closure API on the
// binary-heap queue: the pre-ladder kernel, kept as the comparison
// point.
func newClosureEngine() *sim.Engine {
	e := sim.NewHeapEngine()
	for c := int32(0); c < engineBenchChains; c++ {
		chain, step := c, int64(0)
		var ev sim.Event
		ev = func(e *sim.Engine) {
			step++
			e.After(engineChainDelta(chain, step), ev)
		}
		e.At(sim.Micros(c%13), ev)
	}
	return e
}

func benchSteps(b *testing.B, e *sim.Engine) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !e.Step() {
			b.Fatal("queue drained")
		}
	}
}

var engineBenchOnce sync.Once

func BenchmarkEventKernel(b *testing.B) {
	b.Run("heap-closures", func(b *testing.B) { benchSteps(b, newClosureEngine()) })
	b.Run("ladder-records", func(b *testing.B) {
		benchSteps(b, newRecordEngine())
		b.StopTimer()
		engineBenchOnce.Do(func() { writeEngineBenchReport(b) })
	})
	for _, shards := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("sharded-%d", shards), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				runShardedWorkload(shards)
			}
		})
	}
}

// runShardedWorkload drains a fixed self-contained workload (no
// cross-shard sends, so it measures pure per-shard dispatch plus the
// barrier protocol) and returns the number of events fired.
func runShardedWorkload(shards int) uint64 {
	const eventsPerShard = 20_000
	se := sim.NewSharded(shards, 50)
	for s := 0; s < shards; s++ {
		e := se.Shard(s)
		e.Register(engineBenchKind, func(e *sim.Engine, r sim.Record) {
			if r.Aux++; r.Aux < eventsPerShard/engineBenchChains {
				e.AfterRecord(engineChainDelta(r.Chip, r.Aux), r)
			}
		})
		for c := int32(0); c < engineBenchChains; c++ {
			e.AtRecord(sim.Micros(c%13), sim.Record{Kind: engineBenchKind, Chip: c})
		}
	}
	se.Run()
	return se.Fired()
}

// engineBenchReport is the schema of BENCH_engine.json. Events/sec are
// wall-clock dispatch rates on this machine; EngineAllocsPerOp is the
// machine-independent 0-allocs canary for the record path. The sharded
// cells (2, 4, 8 shards) report total dispatch rate and its ratio to the
// serial ladder rate. ShardedNote records why the speedups are absent
// ("skipped_single_cpu" on one-CPU runners, where a parallel floor would
// only measure noise); the speedups are pointers so a skipped
// measurement is omitted from the JSON instead of masquerading as a
// measured 0×.
type engineBenchReport struct {
	GOMAXPROCS           int      `json:"gomaxprocs"`
	NumCPU               int      `json:"num_cpu"`
	Chains               int      `json:"chains"`
	EventsPerSecHeap     float64  `json:"events_per_sec_heap"`
	EventsPerSecLadder   float64  `json:"events_per_sec_ladder"`
	EngineAllocsPerOp    float64  `json:"engine_allocs_per_op"`
	ShardedEventsPerSec  float64  `json:"sharded_events_per_sec"`
	ShardedSpeedup       *float64 `json:"sharded_speedup,omitempty"`
	Sharded4EventsPerSec float64  `json:"sharded4_events_per_sec"`
	Sharded4Speedup      *float64 `json:"sharded4_speedup,omitempty"`
	Sharded8EventsPerSec float64  `json:"sharded8_events_per_sec"`
	Sharded8Speedup      *float64 `json:"sharded8_speedup,omitempty"`
	ShardedNote          string   `json:"sharded_note,omitempty"`
}

// measureSteps times n dispatches outside the b.N loop so the three
// engines are directly comparable.
func measureSteps(b *testing.B, e *sim.Engine, n int) float64 {
	//secvet:allow determinism -- benchmark measures wall-clock dispatch rate, not simulated time
	start := time.Now()
	for i := 0; i < n; i++ {
		if !e.Step() {
			b.Fatal("queue drained")
		}
	}
	return float64(n) / time.Since(start).Seconds()
}

func writeEngineBenchReport(b *testing.B) {
	const steps = 2_000_000
	rep := engineBenchReport{
		GOMAXPROCS:         runtime.GOMAXPROCS(0),
		NumCPU:             runtime.NumCPU(),
		Chains:             engineBenchChains,
		EventsPerSecHeap:   measureSteps(b, newClosureEngine(), steps),
		EventsPerSecLadder: measureSteps(b, newRecordEngine(), steps),
		EngineAllocsPerOp:  engineAllocsPerOp(),
	}

	// Sharded throughput: a drained fixed workload per round, one cell
	// per shard count. On a single-CPU runner the parallel cells can only
	// measure scheduler noise, so the speedups are recorded as skipped
	// (benchguard honors the note and gates only the cells the runner's
	// CPU count can support).
	shardedRate := func(shards int) float64 {
		//secvet:allow determinism -- benchmark measures wall-clock dispatch rate, not simulated time
		start := time.Now()
		var fired uint64
		for fired < steps {
			fired += runShardedWorkload(shards)
		}
		return float64(fired) / time.Since(start).Seconds()
	}
	speedup := func(rate float64) *float64 {
		s := rate / rep.EventsPerSecLadder
		return &s
	}
	rep.ShardedEventsPerSec = shardedRate(2)
	rep.Sharded4EventsPerSec = shardedRate(4)
	rep.Sharded8EventsPerSec = shardedRate(8)
	if rep.NumCPU == 1 {
		rep.ShardedNote = "skipped_single_cpu"
	} else {
		rep.ShardedSpeedup = speedup(rep.ShardedEventsPerSec)
		rep.Sharded4Speedup = speedup(rep.Sharded4EventsPerSec)
		rep.Sharded8Speedup = speedup(rep.Sharded8EventsPerSec)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_engine.json", append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
	b.Logf("BENCH_engine.json: heap %.0f ev/s, ladder %.0f ev/s, sharded 2/4/8 %.0f/%.0f/%.0f ev/s, %.2f allocs/op (note=%q)",
		rep.EventsPerSecHeap, rep.EventsPerSecLadder,
		rep.ShardedEventsPerSec, rep.Sharded4EventsPerSec, rep.Sharded8EventsPerSec,
		rep.EngineAllocsPerOp, rep.ShardedNote)
}

// engineAllocsPerOp measures the record path's steady-state allocation
// rate the way flashOpsAllocsPerOp does for the NAND scratch reuse: the
// canary CI keeps at exactly zero.
func engineAllocsPerOp() float64 {
	e := newRecordEngine()
	// Warm the ladder past its first re-epoch so the measurement sees
	// only the recycled steady state.
	for i := 0; i < 4096; i++ {
		e.Step()
	}
	const batch = 64
	allocs := testing.AllocsPerRun(200, func() {
		for i := 0; i < batch; i++ {
			e.Step()
		}
	})
	return allocs / batch
}
