// Package repro is a from-scratch Go reproduction of "Evanesco:
// Architectural Support for Efficient Data Sanitization in Modern
// Flash-Based Storage Systems" (Kim, Park, Cho, Kim, Orosa, Mutlu, Kim —
// ASPLOS 2020).
//
// The repository implements the paper's full system stack as a library:
//
//   - internal/nand/vth — the calibrated threshold-voltage cell model of
//     a 48-layer 3D TLC (and MLC) NAND chip, with the pAP flag-cell and
//     SSL (bAP) physics behind the pLock/bLock commands;
//   - internal/nand — the emulated flash chip with the extended command
//     set (read/program/erase/pLock/bLock/scrub), SBPI flag programming,
//     the 9-cell majority circuit, and the on-chip access control of §5;
//   - internal/ftl, internal/sanitize — the Evanesco-aware FTL of §6
//     (extended page status table, lock manager) and the five evaluated
//     sanitization configurations;
//   - internal/ssd — the SecureSSD device model (channels × chips,
//     discrete timing, closed-loop IOPS measurement);
//   - internal/filesys, internal/workload — the host stack: an
//     ext4-like file layer with the O_INSEC interface and the four
//     Table 2 workload generators;
//   - internal/vertrace, internal/chipchar, internal/experiment — the
//     §3 data-versioning study, the chip characterization campaign
//     (Figs. 6, 9, 10, 11b, 12), and the Fig. 14 system evaluation;
//   - internal/core — the public facade assembling everything.
//
// The benchmarks in bench_test.go regenerate every table and figure of
// the paper's evaluation; the cmd/ tools print them as human-readable
// tables. See DESIGN.md for the system inventory and EXPERIMENTS.md for
// paper-vs-measured results.
package repro
