package audit

import (
	"testing"
)

func TestSingleCopyWindow(t *testing.T) {
	l := NewLedger()
	l.Record(Event{Kind: KindCopy, Page: 1, Src: NoSrc, LPA: 10, Origin: OriginHost, At: 0})
	l.Record(Event{Kind: KindInvalidate, Page: 1, At: 100})
	if l.OpenCopies() != 1 {
		t.Fatalf("OpenCopies = %d, want 1", l.OpenCopies())
	}
	l.Record(Event{Kind: KindDestroy, Page: 1, Cause: CausePLock, Dep: 130, At: 400})
	if l.OpenCopies() != 0 {
		t.Fatalf("OpenCopies = %d after destroy, want 0", l.OpenCopies())
	}
	st := l.Stats(400)
	if st.Windows != 1 || st.WindowSumUs != 300 {
		t.Fatalf("windows/sum = %d/%d, want 1/300", st.Windows, st.WindowSumUs)
	}
	if st.Phases.QueueWait != 30 || st.Phases.Pulse != 270 {
		t.Fatalf("phases = %+v, want queue_wait 30 pulse 270", st.Phases)
	}
	if st.Phases.Sum() != st.WindowSumUs {
		t.Fatalf("phase sum %d != window sum %d", st.Phases.Sum(), st.WindowSumUs)
	}
	if got := l.TInsec().Max(); got != 300 {
		t.Fatalf("per-copy T_insecure = %v, want 300", got)
	}
	if rep := l.Verify(400); !rep.Clean() || rep.Err() != nil {
		t.Fatalf("verify not clean: %+v", rep)
	}
}

func TestWindowClosesOnlyWhenEveryCopyDestroyed(t *testing.T) {
	l := NewLedger()
	l.Record(Event{Kind: KindCopy, Page: 1, Src: NoSrc, LPA: 10, Origin: OriginHost, At: 0})
	// GC relocates the live copy: page 2 now holds the same secret.
	l.Record(Event{Kind: KindCopy, Page: 2, Src: 1, LPA: 10, Origin: OriginGC, At: 50})
	// The old copy goes stale at relocation, the new one at deletion.
	l.Record(Event{Kind: KindInvalidate, Page: 1, At: 60})
	l.Record(Event{Kind: KindInvalidate, Page: 2, At: 200})
	if st := l.Stats(200); st.Secrets != 1 || st.OpenSecrets != 1 || st.ExposedCopies != 2 {
		t.Fatalf("stats = %+v, want one secret with two exposed copies", st)
	}
	// Destroying only one copy must NOT close the secret's window.
	l.Record(Event{Kind: KindDestroy, Page: 1, Cause: CausePLock, Dep: 70, At: 300})
	if st := l.Stats(300); st.Windows != 0 || st.OpenSecrets != 1 {
		t.Fatalf("window closed early: %+v", st)
	}
	l.Record(Event{Kind: KindDestroy, Page: 2, Cause: CausePLock, Dep: 210, At: 500})
	st := l.Stats(500)
	if st.Windows != 1 || st.OpenSecrets != 0 {
		t.Fatalf("stats after full destruction = %+v", st)
	}
	// Window spans first exposure (60) to last destruction (500).
	if st.WindowSumUs != 440 {
		t.Fatalf("window = %d, want 440", st.WindowSumUs)
	}
	if st.Phases.Sum() != st.WindowSumUs {
		t.Fatalf("phase sum %d != window %d", st.Phases.Sum(), st.WindowSumUs)
	}
	// Per-copy sample still has both individual windows (240 and 300).
	if n := l.TInsec().N(); n != 2 {
		t.Fatalf("per-copy windows = %d, want 2", n)
	}
}

func TestBatchWaitAndLadderPhases(t *testing.T) {
	l := NewLedger()
	l.Record(Event{Kind: KindCopy, Page: 1, Src: NoSrc, LPA: 1, Origin: OriginHost, At: 0})
	l.Record(Event{Kind: KindInvalidate, Page: 1, At: 100})
	l.Record(Event{Kind: KindDestroy, Page: 1, Cause: CausePLockBatch, Dep: 160, At: 200})
	st := l.Stats(200)
	if st.Phases.BatchWait != 60 || st.Phases.QueueWait != 0 {
		t.Fatalf("batched close phases = %+v, want batch_wait 60", st.Phases)
	}

	l.Record(Event{Kind: KindCopy, Page: 2, Src: NoSrc, LPA: 2, Origin: OriginHost, At: 0})
	l.Record(Event{Kind: KindInvalidate, Page: 2, At: 300})
	l.Record(Event{Kind: KindDestroy, Page: 2, Cause: CauseBLock, Dep: 320, At: 700, Ladder: true})
	st = l.Stats(700)
	// A ladder window attributes its whole span (300→700) to the ladder.
	if st.Phases.Ladder != 400 || st.LadderWindows != 1 || st.LadderDestroys != 1 {
		t.Fatalf("ladder close = %+v", st)
	}
	if st.Phases.Sum() != st.WindowSumUs {
		t.Fatalf("phase sum %d != window sum %d", st.Phases.Sum(), st.WindowSumUs)
	}
}

func TestLadderHitMarksWholeWindow(t *testing.T) {
	// When ANY copy of a window is destroyed by a ladder rung, the
	// window's execution slice is attributed to the ladder even if the
	// closing destruction itself succeeded on the normal path.
	l := NewLedger()
	l.Record(Event{Kind: KindCopy, Page: 1, Src: NoSrc, LPA: 1, Origin: OriginHost, At: 0})
	l.Record(Event{Kind: KindCopy, Page: 2, Src: 1, LPA: 1, Origin: OriginEvacuate, At: 10})
	l.Record(Event{Kind: KindInvalidate, Page: 1, At: 100})
	l.Record(Event{Kind: KindInvalidate, Page: 2, At: 120})
	l.Record(Event{Kind: KindDestroy, Page: 1, Cause: CauseBLock, Dep: 150, At: 300, Ladder: true})
	l.Record(Event{Kind: KindDestroy, Page: 2, Cause: CausePLock, Dep: 350, At: 400})
	st := l.Stats(400)
	if st.LadderWindows != 1 || st.Phases.Ladder == 0 || st.Phases.Pulse != 0 {
		t.Fatalf("ladder hit not sticky: %+v", st)
	}
}

func TestReopenedWindowPhase(t *testing.T) {
	l := NewLedger()
	l.Record(Event{Kind: KindCopy, Page: 1, Src: NoSrc, LPA: 5, Origin: OriginHost, At: 0})
	// GC relocates, the old copy's window opens and closes: window 1.
	l.Record(Event{Kind: KindCopy, Page: 2, Src: 1, LPA: 5, Origin: OriginGC, At: 40})
	l.Record(Event{Kind: KindInvalidate, Page: 1, At: 50})
	l.Record(Event{Kind: KindDestroy, Page: 1, Cause: CausePLock, Dep: 60, At: 100})
	// Later the relocated copy is deleted: a reopened window.
	l.Record(Event{Kind: KindInvalidate, Page: 2, At: 500})
	l.Record(Event{Kind: KindDestroy, Page: 2, Cause: CausePLock, Dep: 520, At: 600})
	st := l.Stats(600)
	if st.Windows != 2 || st.ReopenedWindows != 1 {
		t.Fatalf("windows = %d reopened = %d, want 2/1", st.Windows, st.ReopenedWindows)
	}
	// Window 2's wait slice (500→520) lands in the reopen phase.
	if st.Phases.Reopen != 20 {
		t.Fatalf("reopen phase = %d, want 20", st.Phases.Reopen)
	}
	if st.Phases.Sum() != st.WindowSumUs {
		t.Fatalf("phase sum %d != window sum %d", st.Phases.Sum(), st.WindowSumUs)
	}
}

func TestFirstInvalidationWinsAndNegativeClamp(t *testing.T) {
	l := NewLedger()
	l.Record(Event{Kind: KindInvalidate, Page: 1, At: 1000})
	// Re-invalidating must not reset the window start.
	l.Record(Event{Kind: KindInvalidate, Page: 1, At: 1500})
	l.Record(Event{Kind: KindDestroy, Page: 1, Dep: 2000, At: 2000})
	if got := l.TInsec().Max(); got != 1000 {
		t.Fatalf("T_insecure = %v, want 1000 (from the FIRST invalidation)", got)
	}
	// Negative spans clamp to zero (lock completed before the GC
	// relocation recorded the invalidation).
	l.Record(Event{Kind: KindInvalidate, Page: 3, At: 900})
	l.Record(Event{Kind: KindDestroy, Page: 3, Dep: 400, At: 500})
	if got := l.TInsec().Min(); got != 0 {
		t.Fatalf("negative window = %v, want clamp to 0", got)
	}
	st := l.Stats(2000)
	if st.Phases.Sum() != st.WindowSumUs {
		t.Fatalf("phase sum %d != window sum %d", st.Phases.Sum(), st.WindowSumUs)
	}
}

func TestDestroyWithoutWindowIsNoop(t *testing.T) {
	l := NewLedger()
	l.Record(Event{Kind: KindDestroy, Page: 42, Dep: 10, At: 10})
	if l.TInsec().N() != 0 || l.Stats(10).CopiesDestroyed != 0 {
		t.Fatal("destroy of unknown page must be a no-op")
	}
	// Double destruction (bLock escalation then erase) counts once.
	l.Record(Event{Kind: KindInvalidate, Page: 1, At: 0})
	l.Record(Event{Kind: KindDestroy, Page: 1, Cause: CauseBLock, Dep: 5, At: 20})
	l.Record(Event{Kind: KindDestroy, Page: 1, Cause: CauseErase, Dep: 5, At: 30})
	if n := l.TInsec().N(); n != 1 {
		t.Fatalf("per-copy windows = %d, want 1", n)
	}
}

func TestVerifyReportsOpenCopies(t *testing.T) {
	l := NewLedger()
	l.Record(Event{Kind: KindCopy, Page: 9, Src: NoSrc, LPA: 77, Origin: OriginHost, At: 0})
	l.Record(Event{Kind: KindInvalidate, Page: 9, At: 250})
	rep := l.Verify(1000)
	if rep.Clean() || rep.Err() == nil {
		t.Fatal("verifier missed a live unlocked copy")
	}
	if rep.ExposedCopies != 1 || len(rep.Open) != 1 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.Open[0].Page != 9 || rep.Open[0].LPA != 77 || rep.Open[0].Origin != "host" {
		t.Fatalf("open copy = %+v", rep.Open[0])
	}
	if rep.OldestOpenUs != 750 {
		t.Fatalf("oldest open age = %d, want 750", rep.OldestOpenUs)
	}
	st := l.Stats(1000)
	if st.OldestOpenUs != 750 || st.OpenSecrets != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestQuarantineCopyIsOwnSecret(t *testing.T) {
	l := NewLedger()
	l.Record(Event{Kind: KindCopy, Page: 4, Src: NoSrc, LPA: -1, Origin: OriginQuarantine, At: 10})
	l.Record(Event{Kind: KindInvalidate, Page: 4, At: 10})
	l.Record(Event{Kind: KindDestroy, Page: 4, Cause: CausePLock, Dep: 15, At: 40})
	st := l.Stats(40)
	if st.Secrets != 1 || st.Copies.Quarantine != 1 || st.Windows != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestEnumStrings(t *testing.T) {
	if OriginGC.String() != "gc" || CausePLockBatch.String() != "plock_batch" ||
		PhaseBatchWait.String() != "batch_wait" || PhaseLadder.String() != "ladder" {
		t.Fatal("enum strings changed")
	}
}
