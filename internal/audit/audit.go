// Package audit implements the sanitization audit ledger: per-secret
// provenance tracking for every physical copy of secured data, with
// phase-attributed T_insecure windows.
//
// The paper's T_insecure bound is stated per logical page, but a secured
// logical page does not live in one place: the initial program puts it on
// one physical page, GC relocation copies it elsewhere, and the recovery
// ladder (RelocateLive after a pLock failure, copy-out before a recovery
// erase) scatters further copies. The ledger models this as a *secret* —
// one generation of secured data — owning a set of physical copies. A
// copy becomes *exposed* when it is invalidated (stale but still
// readable from the cells) and stops being exposed when a pLock, bLock,
// scrub, or erase physically destroys it. The secret's insecurity window
// is open exactly while it has at least one exposed copy, so the window
// closes only when *every* copy is locked or erased — the multi-copy
// generalization of the old single-page invalidation→destruction
// pairing.
//
// Every closed window is attributed to phases that sum exactly to the
// window's span (an invariant the verifier checks):
//
//   - queue_wait: from window open to the issue of the destroying
//     command (host/GC queue time).
//   - batch_wait: the same span when the closing destruction was a
//     batched SBPI pulse — time bought by the lock manager's deadline
//     knob.
//   - reopen: the same span when the window is a relocation-induced
//     reopening (the secret had already closed a window before).
//   - pulse: issue→completion of the destroying command on the normal
//     path.
//   - ladder: the whole window when any of its copies was destroyed
//     under a recovery-ladder rung (pLock→bLock escalation, recovery
//     erase, retirement backstop) — recovery dominates, so the ladder
//     phase takes precedence over the wait phases.
//
// The ledger also reproduces the legacy per-copy T_insecure sample
// (first invalidation to destruction, negative spans clamped to zero) so
// existing telemetry keeps its exact values.
package audit

import (
	"fmt"
	"sort"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// Kind discriminates ledger events.
type Kind uint8

const (
	// KindCopy registers a new physical copy of a secret.
	KindCopy Kind = iota
	// KindInvalidate marks a registered copy stale (exposed). Unregistered
	// pages are adopted as single-copy secrets so pre-ledger producers
	// keep working.
	KindInvalidate
	// KindDestroy records the physical destruction of an exposed copy.
	KindDestroy
)

// Origin says how a physical copy came to hold secured data.
type Origin uint8

const (
	// OriginHost is the initial program of a host write (a new secret).
	OriginHost Origin = iota
	// OriginGC is a garbage-collection relocation of a live copy.
	OriginGC
	// OriginEvacuate is a recovery-ladder relocation (RelocateLive after
	// a pLock failure, copy-out before a recovery erase).
	OriginEvacuate
	// OriginQuarantine is the partial payload a failed program left in
	// the cells; it is its own single-copy secret.
	OriginQuarantine
	// OriginUnknown marks a copy adopted at invalidation time because it
	// was never registered (legacy producers).
	OriginUnknown
	numOrigins
)

// NumOrigins is the number of distinct copy origins.
const NumOrigins = int(numOrigins)

func (o Origin) String() string {
	switch o {
	case OriginHost:
		return "host"
	case OriginGC:
		return "gc"
	case OriginEvacuate:
		return "evacuate"
	case OriginQuarantine:
		return "quarantine"
	case OriginUnknown:
		return "unknown"
	default:
		return fmt.Sprintf("Origin(%d)", uint8(o))
	}
}

// Cause says which mechanism destroyed a copy.
type Cause uint8

const (
	// CauseUnspecified is a destruction reported without attribution
	// (legacy Destroyed calls).
	CauseUnspecified Cause = iota
	// CausePLock is a per-page Evanesco page lock.
	CausePLock
	// CausePLockBatch is a batched wordline SBPI pulse.
	CausePLockBatch
	// CauseBLock is an Evanesco block lock.
	CauseBLock
	// CauseErase is a block erase.
	CauseErase
	// CauseScrub is a reprogram-based scrub pulse.
	CauseScrub
	numCauses
)

// NumCauses is the number of distinct destruction causes.
const NumCauses = int(numCauses)

func (c Cause) String() string {
	switch c {
	case CauseUnspecified:
		return "unspecified"
	case CausePLock:
		return "plock"
	case CausePLockBatch:
		return "plock_batch"
	case CauseBLock:
		return "block"
	case CauseErase:
		return "erase"
	case CauseScrub:
		return "scrub"
	default:
		return fmt.Sprintf("Cause(%d)", uint8(c))
	}
}

// Phase is one slice of a closed window's attribution.
type Phase uint8

const (
	// PhaseQueueWait is open→issue of the closing destruction.
	PhaseQueueWait Phase = iota
	// PhaseBatchWait is the wait of a window closed by a batched pulse.
	PhaseBatchWait
	// PhaseReopen is the wait of a relocation-induced reopened window.
	PhaseReopen
	// PhasePulse is issue→completion on the normal path.
	PhasePulse
	// PhaseLadder is issue→completion under a recovery-ladder rung.
	PhaseLadder
	numPhases
)

// NumPhases is the number of distinct attribution phases.
const NumPhases = int(numPhases)

func (p Phase) String() string {
	switch p {
	case PhaseQueueWait:
		return "queue_wait"
	case PhaseBatchWait:
		return "batch_wait"
	case PhaseReopen:
		return "reopen"
	case PhasePulse:
		return "pulse"
	case PhaseLadder:
		return "ladder"
	default:
		return fmt.Sprintf("Phase(%d)", uint8(p))
	}
}

// NoSrc marks a copy event with no source copy (host program,
// quarantine).
const NoSrc = ^uint32(0)

// Event is one ledger observation. It is passed by value on the stack —
// producers must not allocate to build one (enforced by secvet's
// tracecheck).
type Event struct {
	Kind Kind
	// Page is the physical page the event concerns.
	Page uint32
	// Src is the physical page the data was copied from (KindCopy of a
	// relocation); NoSrc otherwise.
	Src uint32
	// LPA is the logical page (KindCopy; -1 when unknown/none).
	LPA int64
	// Origin classifies a KindCopy registration.
	Origin Origin
	// Cause classifies a KindDestroy destruction.
	Cause Cause
	// Dep is when the destroying command was issued (KindDestroy); the
	// span Dep→At is the pulse/ladder execution phase.
	Dep sim.Micros
	// At is the simulated event time (registration, invalidation, or
	// destruction completion).
	At sim.Micros
	// Ladder marks a destruction executed under a recovery-ladder rung.
	Ladder bool
}

// copyState is one registered physical copy.
type copyState struct {
	secret int32
	stale  bool
	openAt sim.Micros // valid when stale: per-copy window open time
}

// secret is one generation of secured data and its window accounting.
type secret struct {
	lpa       int64
	origin    Origin
	copies    int32 // registered, not yet destroyed
	exposed   int32 // stale, not yet destroyed
	destroyed int32
	openedAt  sim.Micros // valid while exposed > 0
	reopened  bool       // current window is a reopening
	ladderHit bool       // a ladder destruction occurred in the current window
	windows   uint32
	exposure  sim.Micros
	phases    [NumPhases]sim.Micros
}

// Ledger accumulates provenance events. It is not safe for concurrent
// use; like the trace Recorder it belongs to exactly one simulated
// device.
type Ledger struct {
	copies  map[uint32]copyState
	secrets []secret

	tInsec    metrics.Sample // per-copy windows (legacy semantics)
	tInsecSum sim.Micros     // running total of the per-copy windows
	windows   metrics.Sample // per-secret closed windows

	openCopies   int
	originCounts [NumOrigins]uint64
	causeCounts  [NumCauses]uint64
	phaseTotals  [NumPhases]sim.Micros

	registered     uint64
	destroyed      uint64
	windowCount    uint64
	reopenedCount  uint64
	ladderWindows  uint64
	ladderDestroys uint64
	windowSum      sim.Micros
}

// NewLedger builds an empty ledger.
func NewLedger() *Ledger {
	return &Ledger{copies: make(map[uint32]copyState)}
}

// newSecret appends a secret and returns its index.
func (l *Ledger) newSecret(lpa int64, origin Origin) int32 {
	l.secrets = append(l.secrets, secret{lpa: lpa, origin: origin})
	return int32(len(l.secrets) - 1)
}

// Record applies one event and reports whether the exposed-copy count
// changed (the Recorder uses this to emit the insecure-windows gauge
// exactly when the legacy tracker did).
func (l *Ledger) Record(ev Event) bool {
	switch ev.Kind {
	case KindCopy:
		l.register(ev)
		return false
	case KindInvalidate:
		return l.invalidate(ev.Page, ev.At)
	case KindDestroy:
		return l.destroy(ev)
	default:
		return false
	}
}

// Invalidated marks the copy on page stale at the given time, adopting
// unregistered pages as single-copy secrets. It reports whether a new
// per-copy window opened (re-invalidating an already stale copy is a
// no-op: the first invalidation wins).
func (l *Ledger) Invalidated(page uint32, at sim.Micros) bool {
	return l.invalidate(page, at)
}

func (l *Ledger) register(ev Event) {
	if old, ok := l.copies[ev.Page]; ok {
		// A physical page can only be reprogrammed after an erase, and an
		// erase destroys (and deregisters) every copy on the block first —
		// so a collision means a producer skipped the destruction. Retire
		// the stale entry as an unattributed destruction to keep the
		// per-secret books balanced.
		_ = old
		l.destroy(Event{Kind: KindDestroy, Page: ev.Page, Cause: CauseUnspecified, Dep: ev.At, At: ev.At})
	}
	idx := int32(-1)
	switch ev.Origin {
	case OriginGC, OriginEvacuate:
		if src, ok := l.copies[ev.Src]; ok && ev.Src != NoSrc {
			idx = src.secret
		}
	}
	if idx < 0 {
		idx = l.newSecret(ev.LPA, ev.Origin)
	}
	l.copies[ev.Page] = copyState{secret: idx}
	l.secrets[idx].copies++
	l.originCounts[ev.Origin]++
	l.registered++
}

func (l *Ledger) invalidate(page uint32, at sim.Micros) bool {
	c, ok := l.copies[page]
	if !ok {
		c = copyState{secret: l.newSecret(-1, OriginUnknown)}
		l.originCounts[OriginUnknown]++
		l.registered++
		l.secrets[c.secret].copies++
	}
	if c.stale {
		return false
	}
	c.stale = true
	c.openAt = at
	l.copies[page] = c
	l.openCopies++
	s := &l.secrets[c.secret]
	s.exposed++
	if s.exposed == 1 {
		s.openedAt = at
		s.reopened = s.windows > 0
		s.ladderHit = false
	}
	return true
}

func (l *Ledger) destroy(ev Event) bool {
	c, ok := l.copies[ev.Page]
	if !ok || !c.stale {
		// Destroying a page with no open window is a no-op (recovery
		// paths may report the same destruction twice), and live copies
		// are never destroyed (erase requires a fully stale block).
		return false
	}
	d := ev.At - c.openAt
	if d < 0 {
		// A GC relocation can advance the invalidation clock past the
		// lock's (request-anchored) completion; the stale copy was then
		// locked before it was ever exposed.
		d = 0
	}
	l.tInsec.Add(float64(d))
	l.tInsecSum += d
	l.openCopies--
	l.causeCounts[ev.Cause]++
	l.destroyed++
	s := &l.secrets[c.secret]
	s.destroyed++
	s.copies--
	s.exposed--
	if ev.Ladder {
		l.ladderDestroys++
		s.ladderHit = true
	}
	if s.exposed == 0 {
		l.closeWindow(s, ev)
	}
	delete(l.copies, ev.Page)
	return true
}

// closeWindow attributes the secret's just-closed window. The wait and
// execution slices are carved from the same span, so their sum equals
// the window by construction — the invariant Verify checks.
func (l *Ledger) closeWindow(s *secret, ev Event) {
	total := ev.At - s.openedAt
	if total < 0 {
		total = 0
	}
	wait := ev.Dep - s.openedAt
	if wait < 0 {
		wait = 0
	}
	if wait > total {
		wait = total
	}
	exec := total - wait

	if s.ladderHit {
		// Recovery dominated the window: the whole span is ladder time
		// (precedence ladder > reopen > batch > queue), so a window that
		// needed the ladder is never invisible in the breakdown even when
		// the closing destruction itself took zero execution time.
		s.phases[PhaseLadder] += total
		l.phaseTotals[PhaseLadder] += total
	} else {
		waitPhase := PhaseQueueWait
		switch {
		case s.reopened:
			waitPhase = PhaseReopen
		case ev.Cause == CausePLockBatch:
			waitPhase = PhaseBatchWait
		}
		s.phases[waitPhase] += wait
		s.phases[PhasePulse] += exec
		l.phaseTotals[waitPhase] += wait
		l.phaseTotals[PhasePulse] += exec
	}
	s.exposure += total
	s.windows++

	l.windows.Add(float64(total))
	l.windowSum += total
	l.windowCount++
	if s.reopened {
		l.reopenedCount++
	}
	if s.ladderHit {
		l.ladderWindows++
	}
}

// TInsec returns the legacy per-copy T_insecure sample (µs from first
// invalidation of a copy to its destruction). Owned by the ledger.
func (l *Ledger) TInsec() *metrics.Sample { return &l.tInsec }

// TInsecSum returns the running total of the closed per-copy windows,
// maintained incrementally so periodic emitters stay O(1).
func (l *Ledger) TInsecSum() sim.Micros { return l.tInsecSum }

// Windows returns the per-secret closed-window sample (µs). Owned by
// the ledger.
func (l *Ledger) Windows() *metrics.Sample { return &l.windows }

// OpenCopies reports how many copies are currently exposed (stale but
// not destroyed) — the count of open per-copy windows.
func (l *Ledger) OpenCopies() int { return l.openCopies }

// OldestOpen returns the earliest open-window start among exposed
// copies; ok is false when none is open. Map iteration order does not
// matter: min is commutative.
func (l *Ledger) OldestOpen() (at sim.Micros, ok bool) {
	for _, c := range l.copies {
		if !c.stale {
			continue
		}
		if !ok || c.openAt < at {
			at, ok = c.openAt, true
		}
	}
	return at, ok
}

// PhaseTotals returns the accumulated per-phase attribution (µs).
func (l *Ledger) PhaseTotals() [NumPhases]sim.Micros { return l.phaseTotals }

// LadderDestroys reports how many copies were destroyed under a
// recovery-ladder rung.
func (l *Ledger) LadderDestroys() uint64 { return l.ladderDestroys }

// PhaseBreakdown is the JSON-stable per-phase attribution in µs.
type PhaseBreakdown struct {
	QueueWait int64 `json:"queue_wait"`
	BatchWait int64 `json:"batch_wait"`
	Reopen    int64 `json:"reopen"`
	Pulse     int64 `json:"pulse"`
	Ladder    int64 `json:"ladder"`
}

// Sum totals the breakdown.
func (b PhaseBreakdown) Sum() int64 {
	return b.QueueWait + b.BatchWait + b.Reopen + b.Pulse + b.Ladder
}

func breakdown(p [NumPhases]sim.Micros) PhaseBreakdown {
	return PhaseBreakdown{
		QueueWait: int64(p[PhaseQueueWait]),
		BatchWait: int64(p[PhaseBatchWait]),
		Reopen:    int64(p[PhaseReopen]),
		Pulse:     int64(p[PhasePulse]),
		Ladder:    int64(p[PhaseLadder]),
	}
}

// DestroyBreakdown counts destroyed copies per cause.
type DestroyBreakdown struct {
	Unspecified uint64 `json:"unspecified"`
	PLock       uint64 `json:"plock"`
	PLockBatch  uint64 `json:"plock_batch"`
	BLock       uint64 `json:"block"`
	Erase       uint64 `json:"erase"`
	Scrub       uint64 `json:"scrub"`
}

// CopyBreakdown counts registered copies per origin.
type CopyBreakdown struct {
	Host       uint64 `json:"host"`
	GC         uint64 `json:"gc"`
	Evacuate   uint64 `json:"evacuate"`
	Quarantine uint64 `json:"quarantine"`
	Unknown    uint64 `json:"unknown"`
}

// Stats is the ledger's JSON-stable summary. Every field is derived
// incrementally from the event stream, so it is bit-identical for any
// parallel worker count replaying the same simulation.
type Stats struct {
	Secrets          int              `json:"secrets"`
	OpenSecrets      int              `json:"open_secrets"`
	ExposedCopies    int              `json:"exposed_copies"`
	LiveCopies       int              `json:"live_copies"`
	CopiesRegistered uint64           `json:"copies_registered"`
	CopiesDestroyed  uint64           `json:"copies_destroyed"`
	Copies           CopyBreakdown    `json:"copies"`
	Destroys         DestroyBreakdown `json:"destroys"`
	Windows          uint64           `json:"windows"`
	ReopenedWindows  uint64           `json:"reopened_windows"`
	LadderWindows    uint64           `json:"ladder_windows"`
	LadderDestroys   uint64           `json:"ladder_destroys"`
	WindowSumUs      int64            `json:"window_sum_us"`
	OldestOpenUs     int64            `json:"oldest_open_us"`
	Phases           PhaseBreakdown   `json:"phase_us"`
}

// Stats summarizes the ledger at the given horizon (OldestOpenUs is the
// age of the oldest still-open window relative to it).
func (l *Ledger) Stats(horizon sim.Micros) Stats {
	st := Stats{
		Secrets:          len(l.secrets),
		ExposedCopies:    l.openCopies,
		CopiesRegistered: l.registered,
		CopiesDestroyed:  l.destroyed,
		Copies: CopyBreakdown{
			Host:       l.originCounts[OriginHost],
			GC:         l.originCounts[OriginGC],
			Evacuate:   l.originCounts[OriginEvacuate],
			Quarantine: l.originCounts[OriginQuarantine],
			Unknown:    l.originCounts[OriginUnknown],
		},
		Destroys: DestroyBreakdown{
			Unspecified: l.causeCounts[CauseUnspecified],
			PLock:       l.causeCounts[CausePLock],
			PLockBatch:  l.causeCounts[CausePLockBatch],
			BLock:       l.causeCounts[CauseBLock],
			Erase:       l.causeCounts[CauseErase],
			Scrub:       l.causeCounts[CauseScrub],
		},
		Windows:         l.windowCount,
		ReopenedWindows: l.reopenedCount,
		LadderWindows:   l.ladderWindows,
		LadderDestroys:  l.ladderDestroys,
		WindowSumUs:     int64(l.windowSum),
		Phases:          breakdown(l.phaseTotals),
	}
	for i := range l.secrets {
		s := &l.secrets[i]
		if s.exposed > 0 {
			st.OpenSecrets++
		}
	}
	st.LiveCopies = int(int64(l.registered) - int64(l.destroyed) - int64(l.openCopies))
	if at, ok := l.OldestOpen(); ok {
		if age := horizon - at; age > 0 {
			st.OldestOpenUs = int64(age)
		}
	}
	return st
}

// OpenCopy is one still-exposed copy in a verifier report.
type OpenCopy struct {
	Page     uint32 `json:"page"`
	LPA      int64  `json:"lpa"`
	Origin   string `json:"origin"`
	OpenedUs int64  `json:"opened_us"`
}

// VerifyReport is the end-of-run verifier's result.
type VerifyReport struct {
	Secrets        int        `json:"secrets"`
	OpenSecrets    int        `json:"open_secrets"`
	ExposedCopies  int        `json:"exposed_copies"`
	PhaseSumErrors int        `json:"phase_sum_errors"`
	OldestOpenUs   int64      `json:"oldest_open_us"`
	Open           []OpenCopy `json:"open,omitempty"`
}

// Clean reports whether the run left zero exposed copies and every
// secret's phase attribution sums to its exposure.
func (r VerifyReport) Clean() bool {
	return r.ExposedCopies == 0 && r.PhaseSumErrors == 0
}

// Err returns a descriptive error when the report is not clean.
func (r VerifyReport) Err() error {
	if r.Clean() {
		return nil
	}
	return fmt.Errorf("audit: %d exposed secured copies across %d open secrets (oldest %dµs), %d phase-sum violations",
		r.ExposedCopies, r.OpenSecrets, r.OldestOpenUs, r.PhaseSumErrors)
}

// Verify checks the end-of-run security and accounting invariants: no
// secret may retain a live unlocked (exposed) copy, and every secret's
// phase slices must sum exactly to its accumulated exposure. The open
// list is sorted by page so the report is deterministic.
func (l *Ledger) Verify(horizon sim.Micros) VerifyReport {
	rep := VerifyReport{Secrets: len(l.secrets), ExposedCopies: l.openCopies}
	for i := range l.secrets {
		s := &l.secrets[i]
		if s.exposed > 0 {
			rep.OpenSecrets++
		}
		var sum sim.Micros
		for _, p := range s.phases {
			sum += p
		}
		if sum != s.exposure {
			rep.PhaseSumErrors++
		}
	}
	for page, c := range l.copies {
		if !c.stale {
			continue
		}
		s := &l.secrets[c.secret]
		rep.Open = append(rep.Open, OpenCopy{
			Page: page, LPA: s.lpa, Origin: s.origin.String(), OpenedUs: int64(c.openAt),
		})
	}
	sort.Slice(rep.Open, func(i, j int) bool { return rep.Open[i].Page < rep.Open[j].Page })
	if at, ok := l.OldestOpen(); ok {
		if age := horizon - at; age > 0 {
			rep.OldestOpenUs = int64(age)
		}
	}
	return rep
}
