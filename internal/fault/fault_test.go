package fault

import (
	"math"
	"testing"
)

// TestDeterministicSchedule is the golden contract: same config, same
// stream, same call sequence ⇒ identical decisions, bit for bit.
func TestDeterministicSchedule(t *testing.T) {
	run := func() ([]bool, Counts) {
		in := New(Uniform(0.05, 42), 3)
		var out []bool
		for i := 0; i < 2000; i++ {
			switch i % 4 {
			case 0:
				out = append(out, in.FailProgram(i%1000, 1000))
			case 1:
				out = append(out, in.FailErase(i%1000, 1000))
			case 2:
				out = append(out, in.FailPLock(i%1000, 1000))
			default:
				out = append(out, in.FailBLock(i%1000, 1000))
			}
		}
		return out, in.Counts()
	}
	a, ca := run()
	b, cb := run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d diverged between identical runs", i)
		}
	}
	if ca != cb {
		t.Fatalf("counts diverged: %+v vs %+v", ca, cb)
	}
	if ca.OpFails() == 0 {
		t.Fatal("no failures injected at rate 0.05 over 2000 draws")
	}
}

// TestStreamSeparation: different streams (chips) and different seeds
// must draw visibly different schedules.
func TestStreamSeparation(t *testing.T) {
	draw := func(seed int64, stream uint64) []bool {
		in := New(Uniform(0.1, seed), stream)
		out := make([]bool, 500)
		for i := range out {
			out[i] = in.FailProgram(0, 1000)
		}
		return out
	}
	same := func(a, b []bool) bool {
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if same(draw(1, 0), draw(1, 1)) {
		t.Fatal("streams 0 and 1 drew the same schedule")
	}
	if same(draw(1, 0), draw(2, 0)) {
		t.Fatal("seeds 1 and 2 drew the same schedule")
	}
}

// TestZeroRateConsumesNoState: a disabled fault kind must not perturb
// the stream of enabled ones, so turning kinds on and off independently
// keeps the others' schedules stable.
func TestZeroRateConsumesNoState(t *testing.T) {
	progOnly := New(Config{ProgramFail: 0.2, Seed: 9}, 0)
	mixed := New(Config{ProgramFail: 0.2, Seed: 9}, 0)
	for i := 0; i < 300; i++ {
		// Interleave disabled-kind calls on the mixed injector.
		mixed.FailErase(0, 1000)
		mixed.FailBLock(0, 1000)
		if progOnly.FailProgram(0, 1000) != mixed.FailProgram(0, 1000) {
			t.Fatalf("draw %d: disabled erase/bLock calls perturbed the program schedule", i)
		}
	}
}

// TestWearCurve: failure frequency must rise with P/E cycles.
func TestWearCurve(t *testing.T) {
	count := func(pe int) int {
		in := New(Config{ProgramFail: 0.02, WearWeight: 3, WearExponent: 2, Seed: 5}, 0)
		n := 0
		for i := 0; i < 20000; i++ {
			if in.FailProgram(pe, 1000) {
				n++
			}
		}
		return n
	}
	fresh, worn := count(0), count(1000)
	// Worn multiplier is 1+3 = 4×; demand at least 2× to keep the test
	// robust to sampling noise.
	if worn < 2*fresh {
		t.Fatalf("wear curve flat: %d fails fresh vs %d worn", fresh, worn)
	}
}

// TestWearCap: near-certain failure probabilities are capped so retry
// loops terminate.
func TestWearCap(t *testing.T) {
	in := New(Config{ProgramFail: 1.0, WearWeight: 100, Seed: 1}, 0)
	ok := false
	for i := 0; i < 10000; i++ {
		if !in.FailProgram(1000, 1000) {
			ok = true
			break
		}
	}
	if !ok {
		t.Fatalf("probability cap %v never let an operation succeed", maxFailProb)
	}
}

// TestReadErrorsECCJudgment: small error counts are corrected, counts
// beyond the engine limit are uncorrectable, zero BER draws nothing.
func TestReadErrorsECCJudgment(t *testing.T) {
	in := New(Config{Seed: 1}, 0)
	if n, unc := in.ReadErrors(1<<20, 0, 1000); n != 0 || unc {
		t.Fatalf("zero BER drew %d errors (uncorrectable=%v)", n, unc)
	}

	bits := 8 * 4096
	limit := int(DefaultECC().LimitRBER() * float64(bits))
	low := New(Config{ReadBER: 0.1 * DefaultECC().LimitRBER(), Seed: 2}, 0)
	high := New(Config{ReadBER: 10 * DefaultECC().LimitRBER(), Seed: 2}, 0)
	var sawCorrected, sawUncorrectable bool
	for i := 0; i < 200; i++ {
		if n, unc := low.ReadErrors(bits, 0, 1000); n > 0 && !unc {
			if n > limit {
				t.Fatalf("count %d beyond limit %d judged correctable", n, limit)
			}
			sawCorrected = true
		}
		if n, unc := high.ReadErrors(bits, 0, 1000); unc {
			if n <= limit {
				t.Fatalf("count %d within limit %d judged uncorrectable", n, limit)
			}
			sawUncorrectable = true
		}
	}
	if !sawCorrected || !sawUncorrectable {
		t.Fatalf("judgment coverage: corrected=%v uncorrectable=%v", sawCorrected, sawUncorrectable)
	}
	if c := high.Counts(); c.ReadUncorrectable == 0 || c.ReadBitErrors == 0 {
		t.Fatalf("read counters not accounted: %+v", c)
	}
}

// TestFlipBits flips exactly within bounds and actually changes data.
func TestFlipBits(t *testing.T) {
	in := New(Config{Seed: 3}, 0)
	data := make([]byte, 64)
	in.FlipBits(data, 16)
	nonzero := 0
	for _, b := range data {
		if b != 0 {
			nonzero++
		}
	}
	if nonzero == 0 {
		t.Fatal("FlipBits changed nothing")
	}
	in.FlipBits(nil, 5) // must not panic
}

// TestCorruptTail leaves the front half intact (the partially-programmed
// prefix the FTL must treat as leaked) and mangles part of the back.
func TestCorruptTail(t *testing.T) {
	in := New(Config{Seed: 4}, 0)
	data := make([]byte, 256)
	for i := range data {
		data[i] = byte(i)
	}
	in.CorruptTail(data)
	for i := 0; i < len(data)/2; i++ {
		if data[i] != byte(i) {
			t.Fatalf("front half byte %d changed", i)
		}
	}
	in.CorruptTail(nil) // must not panic
}

// TestUniformConfig checks the one-knob CLI mapping.
func TestUniformConfig(t *testing.T) {
	c := Uniform(0.01, 7)
	if !c.Enabled() {
		t.Fatal("Uniform(0.01) not enabled")
	}
	for _, p := range []float64{c.ProgramFail, c.EraseFail, c.PLockFail, c.BLockFail} {
		if p != 0.01 {
			t.Fatalf("op probability %v, want 0.01", p)
		}
	}
	want := 0.01 * DefaultECC().LimitRBER()
	if math.Abs(c.ReadBER-want) > 1e-15 {
		t.Fatalf("ReadBER %v, want %v", c.ReadBER, want)
	}
	if Uniform(0, 7).Enabled() {
		t.Fatal("Uniform(0) enabled")
	}
	if (Config{}).Enabled() {
		t.Fatal("zero Config enabled")
	}
}
