package fault

import "testing"

func TestCutStateStrikesOnceAtCount(t *testing.T) {
	cs := NewCutState()
	cs.Arm(CutSpec{AfterOps: 3})
	if cs.Strike(CutProgram) || cs.Strike(CutErase) {
		t.Fatal("struck before the scheduled op")
	}
	if !cs.Strike(CutPLock) {
		t.Fatal("third op did not strike")
	}
	if !cs.Struck() || cs.Cuts() != 1 {
		t.Fatalf("struck=%v cuts=%d", cs.Struck(), cs.Cuts())
	}
	for i := 0; i < 10; i++ {
		if cs.Strike(CutProgram) {
			t.Fatal("spent schedule struck again")
		}
	}
}

func TestCutStateOpFilter(t *testing.T) {
	cs := NewCutState()
	cs.Arm(CutSpec{AfterOps: 2, Op: CutErase})
	// Non-matching ops neither strike nor advance the count.
	for i := 0; i < 5; i++ {
		if cs.Strike(CutProgram) {
			t.Fatal("program struck an erase-only schedule")
		}
	}
	if cs.Strike(CutErase) {
		t.Fatal("first erase struck a schedule armed for the second")
	}
	if !cs.Strike(CutErase) {
		t.Fatal("second erase did not strike")
	}
}

func TestCutStateRearmResets(t *testing.T) {
	cs := NewCutState()
	cs.Arm(CutSpec{AfterOps: 1})
	if !cs.Strike(CutProgram) {
		t.Fatal("no strike")
	}
	cs.Arm(CutSpec{AfterOps: 2})
	if cs.Struck() {
		t.Fatal("re-arm did not clear struck")
	}
	if cs.Strike(CutProgram) {
		t.Fatal("count not reset by re-arm")
	}
	if !cs.Strike(CutProgram) {
		t.Fatal("re-armed schedule never struck")
	}
	if cs.Cuts() != 2 {
		t.Fatalf("cuts = %d, want 2 across two armings", cs.Cuts())
	}
}

func TestCutStateDisarmedAndNilSafe(t *testing.T) {
	cs := NewCutState()
	if cs.Armed() || cs.Strike(CutProgram) {
		t.Fatal("unarmed state is live")
	}
	var nilCS *CutState
	if nilCS.Armed() || nilCS.Struck() || nilCS.Strike(CutAny) || nilCS.Cuts() != 0 {
		t.Fatal("nil CutState not inert")
	}
}

func TestCutStateRandDeterministicStream(t *testing.T) {
	a, b := NewCutState(), NewCutState()
	for i := 0; i < 8; i++ {
		if a.Rand() != b.Rand() {
			t.Fatal("two fresh cut states diverge")
		}
	}
	if a.Rand() == a.Rand() {
		t.Fatal("stream is constant")
	}
}

func TestCutOpStrings(t *testing.T) {
	for _, op := range []CutOp{CutAny, CutProgram, CutErase, CutPLock, CutPLockBatch, CutBLock, CutScrub} {
		if op.String() == "" {
			t.Fatalf("CutOp %d has no name", op)
		}
	}
}
