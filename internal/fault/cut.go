// Deterministic power-loss events. A CutState is shared by every chip
// of one device; when armed it counts mutating chip operations and
// "strikes" at the start of the N-th counted op, simulating the supply
// rail collapsing mid-pulse. The struck chip applies the documented
// partial-op semantics for the interrupted operation (see
// internal/nand) and unwinds with a typed panic; everything the
// controller held in RAM — mapping tables, lock queues, pending-erase
// lists — is lost and must be rebuilt by the remount path.
//
// Determinism contract: the strike point is a pure function of the arm
// spec and the op sequence. No wall clock, no global RNG; the partial
// state of the interrupted op draws from the CutState's own splitmix64
// counter, so a cut at op N always tears the same bits.
package fault

// CutOp selects which chip operations a power-cut schedule counts.
// CutAny counts every mutating operation; the narrower selectors let a
// test land the cut inside one specific pulse kind (mid-pLock-batch,
// mid-bLock seal, mid-erase, ...).
type CutOp uint8

const (
	// CutAny counts every mutating chip op.
	CutAny CutOp = iota
	// CutProgram counts page program pulses (including copyback
	// programs and multi-plane group members).
	CutProgram
	// CutErase counts block erases.
	CutErase
	// CutPLock counts single-page pLock pulses.
	CutPLock
	// CutPLockBatch counts coalesced wordline pLock pulses (PLockWL).
	CutPLockBatch
	// CutBLock counts bLock (SSL disable) pulses.
	CutBLock
	// CutScrub counts scrub reprogram pulses.
	CutScrub
)

// String names the selector for reports and error text.
func (o CutOp) String() string {
	switch o {
	case CutAny:
		return "any"
	case CutProgram:
		return "program"
	case CutErase:
		return "erase"
	case CutPLock:
		return "pLock"
	case CutPLockBatch:
		return "pLockBatch"
	case CutBLock:
		return "bLock"
	case CutScrub:
		return "scrub"
	}
	return "unknown"
}

// CutSpec schedules one deterministic power loss: the supply rail
// collapses at the start of the AfterOps-th counted operation (1-based)
// following Arm. The zero spec never strikes.
type CutSpec struct {
	// AfterOps is the 1-based index of the counted op that gets cut.
	// Zero disables the schedule.
	AfterOps uint64 `json:"after_ops"`
	// Op filters which operations count. CutAny counts all mutating
	// ops.
	Op CutOp `json:"op"`
}

// Armed reports whether the spec schedules a strike at all.
func (s CutSpec) Armed() bool { return s.AfterOps > 0 }

// CutState is the device-wide power-cut schedule. One instance is
// shared by every chip of a device (chip ops are serialized by the
// device model, so no locking is needed). It is re-armable: a remounted
// device can schedule a second cut.
type CutState struct {
	spec   CutSpec
	count  uint64
	struck bool
	cuts   uint64
	rng    uint64
}

// NewCutState returns a disarmed schedule.
func NewCutState() *CutState { return &CutState{} }

// Arm installs a new schedule and resets the op counter. Arming with a
// zero spec disarms.
func (cs *CutState) Arm(spec CutSpec) {
	cs.spec = spec
	cs.count = 0
	cs.struck = false
}

// Armed reports whether a strike is still pending.
func (cs *CutState) Armed() bool { return cs != nil && !cs.struck && cs.spec.Armed() }

// Struck reports whether the current schedule has already fired.
func (cs *CutState) Struck() bool { return cs != nil && cs.struck }

// Cuts returns the number of power losses delivered over the state's
// lifetime (across re-arms).
func (cs *CutState) Cuts() uint64 {
	if cs == nil {
		return 0
	}
	return cs.cuts
}

// Spec returns the currently installed schedule.
func (cs *CutState) Spec() CutSpec {
	if cs == nil {
		return CutSpec{}
	}
	return cs.spec
}

// Strike is called by a chip at the start of each mutating operation.
// It reports true exactly once per armed schedule: at the start of the
// AfterOps-th counted op. The caller must then apply the op's partial
// power-loss semantics and unwind.
func (cs *CutState) Strike(op CutOp) bool {
	if cs == nil || cs.struck || !cs.spec.Armed() {
		return false
	}
	if cs.spec.Op != CutAny && cs.spec.Op != op {
		return false
	}
	cs.count++
	if cs.count < cs.spec.AfterOps {
		return false
	}
	cs.struck = true
	cs.cuts++
	return true
}

// Rand draws one deterministic 64-bit value for mangling the partial
// state of the interrupted op (splitmix64 over a private counter).
// Independent of any Injector stream so a cut perturbs no fault
// schedule.
func (cs *CutState) Rand() uint64 {
	cs.rng += 0x9E3779B97F4A7C15
	return mix64(cs.rng)
}
