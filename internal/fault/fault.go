// Package fault is the deterministic fault-injection layer of the
// SecureSSD simulator. It decides, per chip operation, whether the
// operation fails — one-shot pLock programming is unreliable on real 3D
// NAND (§5.3), program/erase operations wear out, and reads accumulate
// raw bit errors — so the recovery machinery in internal/ftl and
// internal/ssd can be exercised under the conditions the paper's chip
// characterization (§5) says matter.
//
// Determinism contract: every decision is drawn from a private
// splitmix64 counter stream seeded from Config.Seed and the injector's
// stream index (one injector per chip). Chip operations are serialized
// per chip by the device model, so the i-th draw of a run is always made
// by the same operation: identical seed + identical workload ⇒ an
// identical fault schedule, bit for bit. The injector keeps no wall
// clock, no global RNG, and no map state.
package fault

import (
	"math"

	"repro/internal/ecc"
)

// Config sets the per-operation failure probabilities and the read
// bit-error model. The zero value disables injection entirely.
type Config struct {
	// ProgramFail, EraseFail, PLockFail, BLockFail are the base
	// per-operation failure probabilities (before wear scaling).
	ProgramFail float64
	EraseFail   float64
	PLockFail   float64
	BLockFail   float64
	// ReadBER is the injected raw bit-error rate on reads. Drawn error
	// counts are judged against ECC: at most the engine's correction
	// limit is repaired, beyond it the read is uncorrectable.
	ReadBER float64
	// WearWeight and WearExponent shape the per-block wear curve: every
	// probability above is multiplied by
	//
	//	1 + WearWeight * (peCycles/endurance)^WearExponent
	//
	// so failures concentrate on worn blocks. WearWeight 0 keeps the
	// curve flat; WearExponent defaults to 2 when unset.
	WearWeight   float64
	WearExponent float64
	// ECC decides read correctability. Nil selects DefaultECC.
	ECC ecc.Engine
	// Seed drives the fault schedule. Injectors for different chips mix
	// their stream index into it, so one seed covers the whole device.
	Seed int64
}

// Enabled reports whether any injection is configured.
func (c Config) Enabled() bool {
	return c.ProgramFail > 0 || c.EraseFail > 0 || c.PLockFail > 0 ||
		c.BLockFail > 0 || c.ReadBER > 0
}

// DefaultECC is the read-path correctability model when Config.ECC is
// nil: a 72-bit / 1-KiB-codeword threshold engine, the class of BCH
// strength the paper's chip experiments normalize against.
func DefaultECC() ecc.Engine { return ecc.NewThreshold(72, 8*1024) }

// Uniform returns the one-knob configuration behind the -fault-rate CLI
// flag: every lock/program/erase operation fails with probability rate,
// reads run at a raw BER of rate × the ECC limit, and wear triples the
// failure rates by end of life.
func Uniform(rate float64, seed int64) Config {
	if rate <= 0 {
		return Config{Seed: seed}
	}
	return Config{
		ProgramFail:  rate,
		EraseFail:    rate,
		PLockFail:    rate,
		BLockFail:    rate,
		ReadBER:      rate * DefaultECC().LimitRBER(),
		WearWeight:   3,
		WearExponent: 2,
		Seed:         seed,
	}
}

// Counts aggregates what the injector actually did, for the fault-
// campaign artifact and the golden determinism tests.
type Counts struct {
	ProgramFails      uint64 `json:"program_fails"`
	EraseFails        uint64 `json:"erase_fails"`
	PLockFails        uint64 `json:"plock_fails"`
	BLockFails        uint64 `json:"block_fails"`
	ReadErrorPages    uint64 `json:"read_error_pages"`
	ReadBitErrors     uint64 `json:"read_bit_errors"`
	ReadUncorrectable uint64 `json:"read_uncorrectable"`
}

// Add accumulates another injector's counts (per-device aggregation).
func (c *Counts) Add(o Counts) {
	c.ProgramFails += o.ProgramFails
	c.EraseFails += o.EraseFails
	c.PLockFails += o.PLockFails
	c.BLockFails += o.BLockFails
	c.ReadErrorPages += o.ReadErrorPages
	c.ReadBitErrors += o.ReadBitErrors
	c.ReadUncorrectable += o.ReadUncorrectable
}

// OpFails returns the total injected operation failures (reads excluded).
func (c Counts) OpFails() uint64 {
	return c.ProgramFails + c.EraseFails + c.PLockFails + c.BLockFails
}

// maxFailProb caps the wear-scaled probabilities so recovery retry loops
// always terminate with probability 1 at a useful rate.
const maxFailProb = 0.95

// Injector makes the per-operation fault decisions for one chip. It is
// not safe for concurrent use — exactly like the chip it is attached to,
// which the device model drives from one goroutine at a time.
type Injector struct {
	cfg    Config
	eng    ecc.Engine
	state  uint64
	counts Counts
}

// New builds an injector for one stream (the chip index). Different
// streams over the same Config draw well-separated schedules.
func New(cfg Config, stream uint64) *Injector {
	if cfg.ECC == nil {
		cfg.ECC = DefaultECC()
	}
	return &Injector{
		cfg: cfg,
		eng: cfg.ECC,
		// Two finalizer passes separate seed and stream contributions so
		// adjacent seeds or streams do not produce correlated schedules.
		state: mix64(uint64(cfg.Seed)) ^ mix64(stream+0x9E3779B97F4A7C15),
	}
}

// Config returns the injector's configuration.
func (in *Injector) Config() Config { return in.cfg }

// Counts returns what has been injected so far.
func (in *Injector) Counts() Counts { return in.counts }

// splitmix64 finalizer.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// next advances the counter stream (splitmix64).
func (in *Injector) next() uint64 {
	in.state += 0x9E3779B97F4A7C15
	return mix64(in.state)
}

// uniform returns the next draw in [0, 1).
func (in *Injector) uniform() float64 {
	return float64(in.next()>>11) / (1 << 53)
}

// wearMultiplier scales a base probability by the block's wear.
func (in *Injector) wearMultiplier(peCycles, endurance int) float64 {
	if in.cfg.WearWeight <= 0 || endurance <= 0 || peCycles <= 0 {
		return 1
	}
	exp := in.cfg.WearExponent
	if exp <= 0 {
		exp = 2
	}
	return 1 + in.cfg.WearWeight*math.Pow(float64(peCycles)/float64(endurance), exp)
}

// fail draws one failure decision. A zero base probability consumes no
// stream state, so disabled fault kinds never perturb the schedule of
// enabled ones.
func (in *Injector) fail(base float64, peCycles, endurance int) bool {
	if base <= 0 {
		return false
	}
	p := base * in.wearMultiplier(peCycles, endurance)
	if p > maxFailProb {
		p = maxFailProb
	}
	return in.uniform() < p
}

// FailProgram decides whether a page program fails.
func (in *Injector) FailProgram(peCycles, endurance int) bool {
	if in.fail(in.cfg.ProgramFail, peCycles, endurance) {
		in.counts.ProgramFails++
		return true
	}
	return false
}

// FailErase decides whether a block erase fails.
func (in *Injector) FailErase(peCycles, endurance int) bool {
	if in.fail(in.cfg.EraseFail, peCycles, endurance) {
		in.counts.EraseFails++
		return true
	}
	return false
}

// FailPLock decides whether a one-shot pLock flag program fails.
func (in *Injector) FailPLock(peCycles, endurance int) bool {
	if in.fail(in.cfg.PLockFail, peCycles, endurance) {
		in.counts.PLockFails++
		return true
	}
	return false
}

// FailBLock decides whether an SSL bLock program fails.
func (in *Injector) FailBLock(peCycles, endurance int) bool {
	if in.fail(in.cfg.BLockFail, peCycles, endurance) {
		in.counts.BLockFails++
		return true
	}
	return false
}

// ReadErrors draws the injected raw bit-error count for a read of bits
// data bits and judges it against the ECC engine: (n, false) means n
// errors were corrected in flight, (n, true) means the read is
// uncorrectable and the caller should corrupt the transferred data.
func (in *Injector) ReadErrors(bits, peCycles, endurance int) (nerr int, uncorrectable bool) {
	if in.cfg.ReadBER <= 0 || bits <= 0 {
		return 0, false
	}
	lambda := in.cfg.ReadBER * in.wearMultiplier(peCycles, endurance) * float64(bits)
	nerr = in.poisson(lambda)
	if nerr == 0 {
		return 0, false
	}
	in.counts.ReadErrorPages++
	in.counts.ReadBitErrors += uint64(nerr)
	limit := int(in.eng.LimitRBER() * float64(bits))
	if nerr > limit {
		in.counts.ReadUncorrectable++
		return nerr, true
	}
	return nerr, false
}

// FlipBits flips n stream-chosen bit positions in data (with
// replacement), modeling an uncorrectable transfer.
func (in *Injector) FlipBits(data []byte, n int) {
	bits := len(data) * 8
	if bits == 0 {
		return
	}
	if n > bits {
		n = bits
	}
	for i := 0; i < n; i++ {
		p := int(in.next() % uint64(bits))
		data[p/8] ^= 1 << uint(p%8)
	}
}

// SkipFlips consumes exactly the stream draws FlipBits(data, n) would
// make for a payload of bits data bits, without needing the payload. The
// sharded coordinator uses it for deferred discard reads: the serial
// path corrupts the (discarded) transfer buffer, so the draws must be
// burned to keep the stream aligned even though no bytes exist to flip.
func (in *Injector) SkipFlips(bits, n int) {
	if bits == 0 {
		return
	}
	if n > bits {
		n = bits
	}
	for i := 0; i < n; i++ {
		in.next()
	}
}

// CorruptTail mangles the suffix of a partially-programmed page: the
// one-shot program charged the leading cells before failing, so a prefix
// of the payload may remain intact and readable — which is exactly why
// the FTL must treat a failed secured program as leaked data and route
// the page through sanitization.
func (in *Injector) CorruptTail(data []byte) {
	if len(data) == 0 {
		return
	}
	half := len(data) / 2
	start := half + int(in.next()%uint64(half+1))
	var v uint64
	for i := start; i < len(data); i++ {
		if (i-start)%8 == 0 {
			v = in.next()
		}
		data[i] ^= byte(v)
		v >>= 8
	}
}

// poisson samples Poisson(lambda) from the injector's stream: Knuth's
// multiplication method for small lambda, a Box-Muller normal
// approximation above it (error counts only; the tail shape is
// irrelevant once far beyond the ECC limit).
func (in *Injector) poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 64 {
		u1, u2 := in.uniform(), in.uniform()
		if u1 < 1e-300 {
			u1 = 1e-300
		}
		z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
		n := int(lambda + math.Sqrt(lambda)*z + 0.5)
		if n < 0 {
			n = 0
		}
		return n
	}
	limit := math.Exp(-lambda)
	l := 1.0
	for k := 0; ; k++ {
		l *= in.uniform()
		if l < limit {
			return k
		}
	}
}
