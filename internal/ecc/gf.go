// Package ecc implements the error-correction substrate used by the
// emulated flash storage stack: Galois-field arithmetic over GF(2^m) and a
// binary BCH(n, k, t) codec (systematic encoder, Berlekamp–Massey decoder
// with Chien search).
//
// The paper treats the on-chip ECC engine as a black box with a correction
// limit ("ECC limit"): a page whose raw bit-error count exceeds t is
// unreadable. This package provides both that abstract threshold model
// (PageCodec.Limit) and the real codec, so the SecureSSD read path can
// actually correct injected bit errors.
package ecc

import "fmt"

// primitivePolys[m] is a primitive polynomial of degree m over GF(2),
// encoded with bit i = coefficient of x^i. Standard table (Lin & Costello).
var primitivePolys = map[int]uint32{
	3:  0b1011,            // x^3 + x + 1
	4:  0b10011,           // x^4 + x + 1
	5:  0b100101,          // x^5 + x^2 + 1
	6:  0b1000011,         // x^6 + x + 1
	7:  0b10001001,        // x^7 + x^3 + 1
	8:  0b100011101,       // x^8 + x^4 + x^3 + x^2 + 1
	9:  0b1000010001,      // x^9 + x^4 + 1
	10: 0b10000001001,     // x^10 + x^3 + 1
	11: 0b100000000101,    // x^11 + x^2 + 1
	12: 0b1000001010011,   // x^12 + x^6 + x^4 + x + 1
	13: 0b10000000011011,  // x^13 + x^4 + x^3 + x + 1
	14: 0b100010001000011, // x^14 + x^10 + x^6 + x + 1
}

// Field is GF(2^m) with exp/log tables for O(1) multiplication.
type Field struct {
	m    int
	n    int // 2^m - 1, the multiplicative-group order
	exp  []uint32
	log  []int
	poly uint32
}

// NewField constructs GF(2^m) for 3 <= m <= 14.
func NewField(m int) (*Field, error) {
	poly, ok := primitivePolys[m]
	if !ok {
		return nil, fmt.Errorf("ecc: no primitive polynomial for m=%d (want 3..14)", m)
	}
	f := &Field{
		m:    m,
		n:    (1 << m) - 1,
		exp:  make([]uint32, 2*((1<<m)-1)),
		log:  make([]int, 1<<m),
		poly: poly,
	}
	x := uint32(1)
	for i := 0; i < f.n; i++ {
		f.exp[i] = x
		f.log[x] = i
		x <<= 1
		if x&(1<<m) != 0 {
			x ^= poly
		}
	}
	// Duplicate the exp table so Mul can skip a modulo.
	copy(f.exp[f.n:], f.exp[:f.n])
	f.log[0] = -1 // log of zero is undefined
	return f, nil
}

// M returns the field extension degree m.
func (f *Field) M() int { return f.m }

// Order returns 2^m - 1.
func (f *Field) Order() int { return f.n }

// Alpha returns α^i (the primitive element raised to i, reduced mod 2^m-1).
func (f *Field) Alpha(i int) uint32 {
	i %= f.n
	if i < 0 {
		i += f.n
	}
	return f.exp[i]
}

// Log returns log_α(x); it panics for x == 0.
func (f *Field) Log(x uint32) int {
	if x == 0 {
		panic("ecc: log of zero")
	}
	return f.log[x]
}

// Mul multiplies two field elements.
func (f *Field) Mul(a, b uint32) uint32 {
	if a == 0 || b == 0 {
		return 0
	}
	return f.exp[f.log[a]+f.log[b]]
}

// Div divides a by b; it panics when b == 0.
func (f *Field) Div(a, b uint32) uint32 {
	if b == 0 {
		panic("ecc: division by zero")
	}
	if a == 0 {
		return 0
	}
	d := f.log[a] - f.log[b]
	if d < 0 {
		d += f.n
	}
	return f.exp[d]
}

// Inv returns the multiplicative inverse of a; it panics when a == 0.
func (f *Field) Inv(a uint32) uint32 {
	if a == 0 {
		panic("ecc: inverse of zero")
	}
	return f.exp[f.n-f.log[a]]
}

// Pow returns a^e (with 0^0 = 1).
func (f *Field) Pow(a uint32, e int) uint32 {
	if a == 0 {
		if e == 0 {
			return 1
		}
		return 0
	}
	le := (f.log[a] * e) % f.n
	if le < 0 {
		le += f.n
	}
	return f.exp[le]
}

// minPoly returns the minimal polynomial over GF(2) of α^i, encoded with
// bit j = coefficient of x^j. It multiplies (x - α^i)(x - α^2i)... over the
// conjugacy class of α^i.
func (f *Field) minPoly(i int) uint64 {
	// Collect the conjugacy class {i, 2i, 4i, ...} mod (2^m - 1).
	seen := map[int]bool{}
	class := []int{}
	c := i % f.n
	for !seen[c] {
		seen[c] = true
		class = append(class, c)
		c = (c * 2) % f.n
	}
	// poly is a polynomial with GF(2^m) coefficients; start with 1.
	poly := []uint32{1}
	for _, e := range class {
		root := f.exp[e]
		// poly *= (x + root)
		next := make([]uint32, len(poly)+1)
		for j, cf := range poly {
			next[j+1] ^= cf            // x * cf
			next[j] ^= f.Mul(cf, root) // root * cf
		}
		poly = next
	}
	// The result must have coefficients in GF(2).
	var out uint64
	for j, cf := range poly {
		switch cf {
		case 0:
		case 1:
			out |= 1 << uint(j)
		default:
			panic(fmt.Sprintf("ecc: minimal polynomial has non-binary coefficient %d", cf))
		}
	}
	return out
}
