package ecc

import (
	"errors"
	"fmt"
)

// ErrUncorrectable is returned when a codeword holds more errors than the
// code can correct. This is the software analogue of the paper's "exceeds
// the ECC limit" condition that renders a flash page unreadable.
var ErrUncorrectable = errors.New("ecc: error count exceeds correction capability")

// BCH is a binary, systematic BCH(n, k) code over GF(2^m) correcting up to
// T errors per codeword of N = 2^m - 1 bits.
type BCH struct {
	field *Field
	n     int    // codeword length in bits (2^m - 1)
	k     int    // message length in bits
	t     int    // designed correction capability
	gen   []byte // generator polynomial coefficients, gen[i] = coeff of x^i
	degG  int    // degree of the generator = n - k parity bits
}

// NewBCH constructs a BCH code over GF(2^m) correcting t errors.
func NewBCH(m, t int) (*BCH, error) {
	if t < 1 {
		return nil, fmt.Errorf("ecc: t must be >= 1, got %d", t)
	}
	f, err := NewField(m)
	if err != nil {
		return nil, err
	}
	// g(x) = lcm of the minimal polynomials of α^1 .. α^2t. Because the
	// minimal polynomials of conjugates coincide, dedup by value.
	gen := []byte{1}
	seen := map[uint64]bool{}
	for i := 1; i <= 2*t; i++ {
		mp := f.minPoly(i)
		if seen[mp] {
			continue
		}
		seen[mp] = true
		gen = polyMulGF2(gen, mp)
	}
	degG := len(gen) - 1
	n := f.Order()
	k := n - degG
	if k <= 0 {
		return nil, fmt.Errorf("ecc: BCH(m=%d,t=%d) leaves no message bits (n=%d, parity=%d)", m, t, n, degG)
	}
	return &BCH{field: f, n: n, k: k, t: t, gen: gen, degG: degG}, nil
}

func polyMulGF2(a []byte, b uint64) []byte {
	degB := 63
	for degB > 0 && b&(1<<uint(degB)) == 0 {
		degB--
	}
	out := make([]byte, len(a)+degB)
	for i, ai := range a {
		if ai == 0 {
			continue
		}
		for j := 0; j <= degB; j++ {
			if b&(1<<uint(j)) != 0 {
				out[i+j] ^= 1
			}
		}
	}
	return out
}

// N returns the codeword length in bits.
func (c *BCH) N() int { return c.n }

// K returns the message length in bits.
func (c *BCH) K() int { return c.k }

// T returns the designed correction capability in bits per codeword.
func (c *BCH) T() int { return c.t }

// ParityBits returns n - k.
func (c *BCH) ParityBits() int { return c.degG }

// Encode appends parity to msg. msg must hold exactly K() bits (bit i of
// the message is msg[i], one bit per byte entry, values 0 or 1). The
// returned codeword has N() entries: message bits followed by parity bits.
//
// The bit-per-byte representation trades memory for clarity; pages in the
// emulator are small and the chip model already tracks per-cell state.
func (c *BCH) Encode(msg []byte) ([]byte, error) {
	if len(msg) != c.k {
		return nil, fmt.Errorf("ecc: message length %d, want %d bits", len(msg), c.k)
	}
	// Systematic encoding: codeword = msg(x)*x^degG + (msg(x)*x^degG mod g).
	// Compute the remainder with a shift register.
	rem := make([]byte, c.degG)
	for i := len(msg) - 1; i >= 0; i-- {
		fb := msg[i] ^ rem[c.degG-1]
		copy(rem[1:], rem[:c.degG-1])
		rem[0] = 0
		if fb != 0 {
			for j := 0; j < c.degG; j++ {
				rem[j] ^= c.gen[j] & fb
			}
		}
	}
	cw := make([]byte, c.n)
	copy(cw[:c.degG], rem)
	copy(cw[c.degG:], msg)
	return cw, nil
}

// Syndromes computes S_1..S_2t of a received word. All-zero syndromes mean
// the word is a valid codeword.
func (c *BCH) Syndromes(recv []byte) []uint32 {
	f := c.field
	synd := make([]uint32, 2*c.t)
	for j := 1; j <= 2*c.t; j++ {
		var s uint32
		for i, bit := range recv {
			if bit != 0 {
				s ^= f.Alpha(i * j)
			}
		}
		synd[j-1] = s
	}
	return synd
}

// Decode corrects up to T() bit errors in-place and returns the number of
// corrected bits. It returns ErrUncorrectable when the error pattern is
// beyond the code's capability (detected via Berlekamp–Massey degree
// overflow or a Chien search that does not account for all roots).
func (c *BCH) Decode(recv []byte) (corrected int, err error) {
	if len(recv) != c.n {
		return 0, fmt.Errorf("ecc: received length %d, want %d bits", len(recv), c.n)
	}
	synd := c.Syndromes(recv)
	allZero := true
	for _, s := range synd {
		if s != 0 {
			allZero = false
			break
		}
	}
	if allZero {
		return 0, nil
	}
	sigma := c.berlekampMassey(synd)
	degSigma := len(sigma) - 1
	if degSigma > c.t {
		return 0, ErrUncorrectable
	}
	positions := c.chienSearch(sigma)
	if len(positions) != degSigma {
		// The locator polynomial does not split over the field: more than
		// t errors occurred.
		return 0, ErrUncorrectable
	}
	for _, p := range positions {
		recv[p] ^= 1
	}
	// Verify: syndromes of the corrected word must vanish; otherwise the
	// decoder was fooled by an error pattern beyond its capability.
	for _, s := range c.Syndromes(recv) {
		if s != 0 {
			for _, p := range positions { // roll back
				recv[p] ^= 1
			}
			return 0, ErrUncorrectable
		}
	}
	return len(positions), nil
}

// berlekampMassey finds the minimal error-locator polynomial σ(x) with
// σ[0] = 1 such that the syndrome sequence satisfies the LFSR it defines.
func (c *BCH) berlekampMassey(synd []uint32) []uint32 {
	f := c.field
	sigma := []uint32{1}
	prev := []uint32{1}
	var l, m int = 0, 1
	b := uint32(1)
	for i := 0; i < len(synd); i++ {
		// Discrepancy d = S_i + sum_{j=1..l} sigma[j] * S_{i-j}
		d := synd[i]
		for j := 1; j <= l && j <= len(sigma)-1; j++ {
			if i-j >= 0 {
				d ^= f.Mul(sigma[j], synd[i-j])
			}
		}
		if d == 0 {
			m++
			continue
		}
		if 2*l <= i {
			tmp := make([]uint32, len(sigma))
			copy(tmp, sigma)
			coef := f.Div(d, b)
			sigma = polyAddScaledShift(f, sigma, prev, coef, m)
			l = i + 1 - l
			prev = tmp
			b = d
			m = 1
		} else {
			coef := f.Div(d, b)
			sigma = polyAddScaledShift(f, sigma, prev, coef, m)
			m++
		}
	}
	// Trim trailing zero coefficients.
	for len(sigma) > 1 && sigma[len(sigma)-1] == 0 {
		sigma = sigma[:len(sigma)-1]
	}
	return sigma
}

// polyAddScaledShift returns a + coef * x^shift * b over GF(2^m).
func polyAddScaledShift(f *Field, a, b []uint32, coef uint32, shift int) []uint32 {
	size := len(a)
	if len(b)+shift > size {
		size = len(b) + shift
	}
	out := make([]uint32, size)
	copy(out, a)
	for i, bi := range b {
		if bi != 0 {
			out[i+shift] ^= f.Mul(coef, bi)
		}
	}
	return out
}

// chienSearch finds bit positions p such that σ(α^-p) = 0.
func (c *BCH) chienSearch(sigma []uint32) []int {
	f := c.field
	var positions []int
	for p := 0; p < c.n; p++ {
		// Evaluate σ at α^{-p}.
		var v uint32
		for j, cf := range sigma {
			if cf != 0 {
				v ^= f.Mul(cf, f.Alpha(-p*j))
			}
		}
		if v == 0 {
			positions = append(positions, p)
		}
	}
	return positions
}
