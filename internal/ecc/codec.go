package ecc

import (
	"fmt"
)

// Engine is the interface the flash read path uses. Implementations decide
// whether a page with a given raw bit-error pattern is recoverable.
type Engine interface {
	// CorrectionLimit returns the maximum number of raw bit errors per
	// CodewordBits() the engine can correct.
	CorrectionLimit() int
	// CodewordBits returns the protection granularity in bits.
	CodewordBits() int
	// LimitRBER returns the raw bit-error rate at the correction limit;
	// the paper normalizes every reported RBER to this value.
	LimitRBER() float64
}

// Threshold is the abstract ECC model the paper's chip experiments use:
// a page is readable iff its raw bit-error count per codeword does not
// exceed the correction limit. It performs no actual correction.
type Threshold struct {
	Limit int // correctable bits per codeword
	Bits  int // codeword length in bits
}

// NewThreshold builds a threshold model correcting limit bits per
// codewordBits-bit codeword.
func NewThreshold(limit, codewordBits int) Threshold {
	if limit < 0 || codewordBits <= 0 {
		panic(fmt.Sprintf("ecc: invalid threshold model limit=%d bits=%d", limit, codewordBits))
	}
	return Threshold{Limit: limit, Bits: codewordBits}
}

// CorrectionLimit implements Engine.
func (t Threshold) CorrectionLimit() int { return t.Limit }

// CodewordBits implements Engine.
func (t Threshold) CodewordBits() int { return t.Bits }

// LimitRBER implements Engine.
func (t Threshold) LimitRBER() float64 { return float64(t.Limit) / float64(t.Bits) }

// Readable reports whether a codeword with rawErrors bit errors can be
// recovered.
func (t Threshold) Readable(rawErrors int) bool { return rawErrors <= t.Limit }

// NormalizeRBER expresses a raw bit-error rate as a multiple of the ECC
// limit, matching the paper's "Normalized RBER" axes where 1.0 is the
// correction capability.
func (t Threshold) NormalizeRBER(rber float64) float64 {
	return rber / t.LimitRBER()
}

// PageCodec protects a flash page by splitting it into BCH codewords. It
// satisfies Engine and additionally performs real encode/decode on byte
// payloads, which the SecureSSD read path uses for error injection tests.
type PageCodec struct {
	code *BCH
	// msgBytes is the number of payload bytes carried per codeword
	// (k/8 rounded down; remaining message bits are zero-padded).
	msgBytes int
}

// NewPageCodec builds a page codec from a BCH(m, t) code.
func NewPageCodec(m, t int) (*PageCodec, error) {
	code, err := NewBCH(m, t)
	if err != nil {
		return nil, err
	}
	mb := code.K() / 8
	if mb == 0 {
		return nil, fmt.Errorf("ecc: BCH(m=%d,t=%d) cannot carry a byte payload", m, t)
	}
	return &PageCodec{code: code, msgBytes: mb}, nil
}

// CorrectionLimit implements Engine.
func (p *PageCodec) CorrectionLimit() int { return p.code.T() }

// CodewordBits implements Engine.
func (p *PageCodec) CodewordBits() int { return p.code.N() }

// LimitRBER implements Engine.
func (p *PageCodec) LimitRBER() float64 { return float64(p.code.T()) / float64(p.code.N()) }

// MessageBytesPerCodeword returns the payload bytes per codeword.
func (p *PageCodec) MessageBytesPerCodeword() int { return p.msgBytes }

// CodewordsFor returns how many codewords protect a payload of n bytes.
func (p *PageCodec) CodewordsFor(n int) int {
	return (n + p.msgBytes - 1) / p.msgBytes
}

// EncodePage encodes a byte payload into a slice of codewords, each
// represented as a bit-per-byte slice of length N().
func (p *PageCodec) EncodePage(data []byte) ([][]byte, error) {
	ncw := p.CodewordsFor(len(data))
	out := make([][]byte, 0, ncw)
	for i := 0; i < ncw; i++ {
		lo := i * p.msgBytes
		hi := lo + p.msgBytes
		if hi > len(data) {
			hi = len(data)
		}
		msg := make([]byte, p.code.K())
		bytesToBits(data[lo:hi], msg)
		cw, err := p.code.Encode(msg)
		if err != nil {
			return nil, err
		}
		out = append(out, cw)
	}
	return out, nil
}

// DecodePage decodes codewords back into a payload of origLen bytes,
// correcting bit errors. It returns the payload, the total number of
// corrected bits, and ErrUncorrectable if any codeword is beyond repair.
func (p *PageCodec) DecodePage(codewords [][]byte, origLen int) ([]byte, int, error) {
	data := make([]byte, 0, origLen)
	total := 0
	for i, cw := range codewords {
		n, err := p.code.Decode(cw)
		if err != nil {
			return nil, total, fmt.Errorf("ecc: codeword %d: %w", i, err)
		}
		total += n
		lo := i * p.msgBytes
		take := p.msgBytes
		if lo+take > origLen {
			take = origLen - lo
		}
		if take <= 0 {
			break
		}
		chunk := make([]byte, take)
		bitsToBytes(cw[p.code.ParityBits():], chunk)
		data = append(data, chunk...)
	}
	return data, total, nil
}

// bytesToBits expands bytes into bit-per-byte form (LSB first) into dst.
func bytesToBits(src, dst []byte) {
	for i, b := range src {
		for j := 0; j < 8; j++ {
			if i*8+j >= len(dst) {
				return
			}
			dst[i*8+j] = (b >> uint(j)) & 1
		}
	}
}

// bitsToBytes packs bit-per-byte form (LSB first) back into bytes.
func bitsToBytes(src, dst []byte) {
	for i := range dst {
		var b byte
		for j := 0; j < 8; j++ {
			idx := i*8 + j
			if idx < len(src) && src[idx] != 0 {
				b |= 1 << uint(j)
			}
		}
		dst[i] = b
	}
}
