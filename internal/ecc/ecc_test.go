package ecc

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFieldConstruction(t *testing.T) {
	for m := 3; m <= 14; m++ {
		f, err := NewField(m)
		if err != nil {
			t.Fatalf("NewField(%d): %v", m, err)
		}
		if f.Order() != (1<<m)-1 {
			t.Fatalf("m=%d: Order = %d, want %d", m, f.Order(), (1<<m)-1)
		}
	}
	if _, err := NewField(2); err == nil {
		t.Fatal("NewField(2) should fail")
	}
	if _, err := NewField(15); err == nil {
		t.Fatal("NewField(15) should fail")
	}
}

func TestFieldAxioms(t *testing.T) {
	f, _ := NewField(8)
	n := uint32(f.Order())
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		a := rng.Uint32()%n + 1
		b := rng.Uint32()%n + 1
		c := rng.Uint32()%n + 1
		// Commutativity and associativity of Mul.
		if f.Mul(a, b) != f.Mul(b, a) {
			t.Fatalf("Mul not commutative for %d,%d", a, b)
		}
		if f.Mul(f.Mul(a, b), c) != f.Mul(a, f.Mul(b, c)) {
			t.Fatalf("Mul not associative for %d,%d,%d", a, b, c)
		}
		// Inverse.
		if f.Mul(a, f.Inv(a)) != 1 {
			t.Fatalf("a * a^-1 != 1 for a=%d", a)
		}
		// Div consistency.
		if f.Div(f.Mul(a, b), b) != a {
			t.Fatalf("(a*b)/b != a for %d,%d", a, b)
		}
	}
}

func TestFieldMulZero(t *testing.T) {
	f, _ := NewField(5)
	if f.Mul(0, 7) != 0 || f.Mul(7, 0) != 0 {
		t.Fatal("Mul with zero should be zero")
	}
	if f.Pow(0, 0) != 1 {
		t.Fatal("0^0 should be 1")
	}
	if f.Pow(0, 3) != 0 {
		t.Fatal("0^3 should be 0")
	}
}

func TestFieldPow(t *testing.T) {
	f, _ := NewField(6)
	a := f.Alpha(1)
	// a^(order) == 1 (Lagrange)
	if f.Pow(a, f.Order()) != 1 {
		t.Fatal("alpha^order != 1")
	}
	// Pow matches repeated multiplication.
	x := uint32(1)
	for e := 0; e < 20; e++ {
		if f.Pow(a, e) != x {
			t.Fatalf("Pow(α,%d) mismatch", e)
		}
		x = f.Mul(x, a)
	}
	// Negative exponents via Alpha.
	if f.Mul(f.Alpha(5), f.Alpha(-5)) != 1 {
		t.Fatal("α^5 * α^-5 != 1")
	}
}

func TestFieldPanics(t *testing.T) {
	f, _ := NewField(4)
	mustPanic(t, "Log(0)", func() { f.Log(0) })
	mustPanic(t, "Div by 0", func() { f.Div(3, 0) })
	mustPanic(t, "Inv(0)", func() { f.Inv(0) })
}

func mustPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s should panic", name)
		}
	}()
	fn()
}

func TestBCHParameters(t *testing.T) {
	// Classic codes: BCH(15,7,2), BCH(15,5,3), BCH(31,21,2), BCH(63,45,3).
	cases := []struct{ m, t, wantK int }{
		{4, 2, 7},
		{4, 3, 5},
		{5, 2, 21},
		{6, 3, 45},
		{8, 8, 191},
	}
	for _, c := range cases {
		code, err := NewBCH(c.m, c.t)
		if err != nil {
			t.Fatalf("NewBCH(%d,%d): %v", c.m, c.t, err)
		}
		if code.K() != c.wantK {
			t.Errorf("BCH(m=%d,t=%d): K = %d, want %d", c.m, c.t, code.K(), c.wantK)
		}
		if code.N() != (1<<c.m)-1 {
			t.Errorf("BCH(m=%d,t=%d): N = %d, want %d", c.m, c.t, code.N(), (1<<c.m)-1)
		}
	}
}

func TestBCHRejectsBadParams(t *testing.T) {
	if _, err := NewBCH(4, 0); err == nil {
		t.Fatal("t=0 should be rejected")
	}
	// t=7 over GF(2^4) degenerates to the k=1 repetition-like code: the
	// generator absorbs every conjugacy class but α^0, so one message bit
	// remains. It must still construct.
	if code, err := NewBCH(4, 7); err != nil || code.K() != 1 {
		t.Fatalf("NewBCH(4,7) = (K=%v, %v), want K=1 code", code, err)
	}
	if _, err := NewBCH(99, 2); err == nil {
		t.Fatal("unsupported m should be rejected")
	}
}

func TestBCHEncodeValidCodeword(t *testing.T) {
	code, _ := NewBCH(5, 3)
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		msg := randomBits(rng, code.K())
		cw, err := code.Encode(msg)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range code.Syndromes(cw) {
			if s != 0 {
				t.Fatal("encoded codeword has nonzero syndrome")
			}
		}
		// Systematic property: message occupies the high positions.
		if !bytes.Equal(cw[code.ParityBits():], msg) {
			t.Fatal("code is not systematic")
		}
	}
}

func TestBCHCorrectsUpToT(t *testing.T) {
	for _, params := range []struct{ m, t int }{{4, 2}, {5, 3}, {6, 4}, {8, 8}} {
		code, err := NewBCH(params.m, params.t)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(params.m*100 + params.t)))
		for trial := 0; trial < 30; trial++ {
			msg := randomBits(rng, code.K())
			cw, _ := code.Encode(msg)
			for nerr := 0; nerr <= code.T(); nerr++ {
				recv := append([]byte(nil), cw...)
				flipRandomBits(rng, recv, nerr)
				got, err := code.Decode(recv)
				if err != nil {
					t.Fatalf("BCH(m=%d,t=%d) failed to correct %d errors: %v",
						params.m, params.t, nerr, err)
				}
				if got != nerr {
					t.Fatalf("corrected %d, want %d", got, nerr)
				}
				if !bytes.Equal(recv, cw) {
					t.Fatal("decoded word differs from original codeword")
				}
			}
		}
	}
}

func TestBCHDetectsBeyondT(t *testing.T) {
	code, _ := NewBCH(6, 2)
	rng := rand.New(rand.NewSource(3))
	detected, miscorrected := 0, 0
	for trial := 0; trial < 200; trial++ {
		msg := randomBits(rng, code.K())
		cw, _ := code.Encode(msg)
		recv := append([]byte(nil), cw...)
		flipRandomBits(rng, recv, code.T()+2)
		before := append([]byte(nil), recv...)
		_, err := code.Decode(recv)
		if errors.Is(err, ErrUncorrectable) {
			detected++
			if !bytes.Equal(recv, before) {
				t.Fatal("failed decode must leave the word unchanged")
			}
		} else if err == nil {
			// Miscorrection to a *different valid codeword* is possible for
			// error patterns beyond t; it must still be a valid codeword.
			for _, s := range code.Syndromes(recv) {
				if s != 0 {
					t.Fatal("decoder claimed success but output is not a codeword")
				}
			}
			miscorrected++
		}
	}
	if detected == 0 {
		t.Fatal("decoder never detected an uncorrectable pattern")
	}
	t.Logf("beyond-t patterns: %d detected, %d miscorrected (both acceptable)", detected, miscorrected)
}

func TestBCHDecodeLengthCheck(t *testing.T) {
	code, _ := NewBCH(4, 2)
	if _, err := code.Decode(make([]byte, 3)); err == nil {
		t.Fatal("short word should be rejected")
	}
	if _, err := code.Encode(make([]byte, 3)); err == nil {
		t.Fatal("short message should be rejected")
	}
}

func TestThresholdModel(t *testing.T) {
	th := NewThreshold(72, 1<<13)
	if !th.Readable(72) {
		t.Fatal("exactly-at-limit should be readable")
	}
	if th.Readable(73) {
		t.Fatal("beyond-limit should be unreadable")
	}
	if th.LimitRBER() != 72.0/8192.0 {
		t.Fatalf("LimitRBER = %v", th.LimitRBER())
	}
	if got := th.NormalizeRBER(72.0 / 8192.0); got != 1.0 {
		t.Fatalf("NormalizeRBER(limit) = %v, want 1.0", got)
	}
	mustPanic(t, "negative limit", func() { NewThreshold(-1, 10) })
}

func TestPageCodecRoundTrip(t *testing.T) {
	pc, err := NewPageCodec(8, 8) // BCH(255, 191, 8): 23 payload bytes/cw
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for _, size := range []int{1, 23, 24, 100, 512} {
		data := make([]byte, size)
		rng.Read(data)
		cws, err := pc.EncodePage(data)
		if err != nil {
			t.Fatal(err)
		}
		if len(cws) != pc.CodewordsFor(size) {
			t.Fatalf("size %d: %d codewords, want %d", size, len(cws), pc.CodewordsFor(size))
		}
		got, corrected, err := pc.DecodePage(cws, size)
		if err != nil {
			t.Fatal(err)
		}
		if corrected != 0 {
			t.Fatalf("clean decode corrected %d bits", corrected)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("size %d: round trip mismatch", size)
		}
	}
}

func TestPageCodecCorrectsErrors(t *testing.T) {
	pc, _ := NewPageCodec(8, 8)
	rng := rand.New(rand.NewSource(5))
	data := make([]byte, 64)
	rng.Read(data)
	cws, _ := pc.EncodePage(data)
	// Flip t bits in each codeword.
	for _, cw := range cws {
		flipRandomBits(rng, cw, pc.CorrectionLimit())
	}
	got, corrected, err := pc.DecodePage(cws, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if corrected != pc.CorrectionLimit()*len(cws) {
		t.Fatalf("corrected %d bits, want %d", corrected, pc.CorrectionLimit()*len(cws))
	}
	if !bytes.Equal(got, data) {
		t.Fatal("corrected payload mismatch")
	}
}

func TestPageCodecUncorrectable(t *testing.T) {
	pc, _ := NewPageCodec(8, 4)
	rng := rand.New(rand.NewSource(6))
	data := make([]byte, 32)
	rng.Read(data)
	cws, _ := pc.EncodePage(data)
	flipRandomBits(rng, cws[0], pc.CorrectionLimit()*3)
	if _, _, err := pc.DecodePage(cws, len(data)); err == nil {
		t.Log("pattern happened to decode to a codeword (miscorrection); acceptable but rare")
	}
}

func TestBitConversionRoundTrip(t *testing.T) {
	src := []byte{0xA5, 0x01, 0xFF, 0x00}
	bits := make([]byte, 32)
	bytesToBits(src, bits)
	dst := make([]byte, 4)
	bitsToBytes(bits, dst)
	if !bytes.Equal(src, dst) {
		t.Fatalf("round trip %x -> %x", src, dst)
	}
}

// Property: encode-corrupt(≤t)-decode always restores the message.
func TestBCHRoundTripProperty(t *testing.T) {
	code, _ := NewBCH(6, 3)
	f := func(seed int64, nerr uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		msg := randomBits(rng, code.K())
		cw, err := code.Encode(msg)
		if err != nil {
			return false
		}
		recv := append([]byte(nil), cw...)
		flipRandomBits(rng, recv, int(nerr)%(code.T()+1))
		if _, err := code.Decode(recv); err != nil {
			return false
		}
		return bytes.Equal(recv, cw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: PageCodec round-trips arbitrary payloads unchanged.
func TestPageCodecRoundTripProperty(t *testing.T) {
	pc, _ := NewPageCodec(8, 4)
	f := func(data []byte) bool {
		if len(data) == 0 {
			return true
		}
		if len(data) > 256 {
			data = data[:256]
		}
		cws, err := pc.EncodePage(data)
		if err != nil {
			return false
		}
		got, _, err := pc.DecodePage(cws, len(data))
		if err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func randomBits(rng *rand.Rand, n int) []byte {
	bits := make([]byte, n)
	for i := range bits {
		bits[i] = byte(rng.Intn(2))
	}
	return bits
}

func flipRandomBits(rng *rand.Rand, word []byte, n int) {
	perm := rng.Perm(len(word))
	for i := 0; i < n && i < len(word); i++ {
		word[perm[i]] ^= 1
	}
}

func BenchmarkBCHEncode(b *testing.B) {
	code, _ := NewBCH(10, 8) // BCH(1023), ~8 KiB-class protection
	rng := rand.New(rand.NewSource(1))
	msg := randomBits(rng, code.K())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := code.Encode(msg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBCHDecode(b *testing.B) {
	code, _ := NewBCH(10, 8)
	rng := rand.New(rand.NewSource(2))
	msg := randomBits(rng, code.K())
	cw, _ := code.Encode(msg)
	recv := append([]byte(nil), cw...)
	flipRandomBits(rng, recv, code.T())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		work := append([]byte(nil), recv...)
		if _, err := code.Decode(work); err != nil {
			b.Fatal(err)
		}
	}
}
