package blockio

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestRequestValidate(t *testing.T) {
	good := Request{Op: OpWrite, LPA: 0, Pages: 1}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Request{
		{Op: 9, LPA: 0, Pages: 1},
		{Op: OpRead, LPA: -1, Pages: 1},
		{Op: OpRead, LPA: 0, Pages: 0},
		{Op: OpTrim, LPA: 0, Pages: -5},
	}
	for i, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("case %d: invalid request accepted: %v", i, r)
		}
	}
}

func TestOpString(t *testing.T) {
	if OpRead.String() != "read" || OpWrite.String() != "write" || OpTrim.String() != "trim" {
		t.Fatal("op names wrong")
	}
	if Op(77).String() == "" {
		t.Fatal("unknown op should still print")
	}
}

func TestTraceRoundTrip(t *testing.T) {
	tr := &Trace{
		Name:      "MailServer",
		PageBytes: 16384,
		Requests: []Request{
			{Op: OpWrite, LPA: 0, Pages: 4, FileID: 7},
			{Op: OpRead, LPA: 2, Pages: 1},
			{Op: OpWrite, LPA: 100, Pages: 16, Insecure: true, FileID: 8},
			{Op: OpTrim, LPA: 0, Pages: 4, FileID: 7},
		},
	}
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr, got) {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", tr, got)
	}
}

func TestReadTraceRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("short"),
		[]byte("AAAABBBBCCCCDDDD"),
	}
	for i, b := range cases {
		if _, err := ReadTrace(bytes.NewReader(b)); !errors.Is(err, ErrBadTrace) {
			t.Errorf("case %d: err = %v, want ErrBadTrace", i, err)
		}
	}
}

func TestReadTraceRejectsBadVersion(t *testing.T) {
	tr := &Trace{Name: "x", PageBytes: 512}
	var buf bytes.Buffer
	tr.WriteTo(&buf)
	b := buf.Bytes()
	b[4] = 99 // corrupt version
	if _, err := ReadTrace(bytes.NewReader(b)); !errors.Is(err, ErrBadTrace) {
		t.Fatalf("err = %v, want ErrBadTrace", err)
	}
}

func TestReadTraceRejectsInvalidRequest(t *testing.T) {
	tr := &Trace{Name: "x", PageBytes: 512, Requests: []Request{{Op: OpWrite, LPA: 5, Pages: 1}}}
	var buf bytes.Buffer
	tr.WriteTo(&buf)
	b := buf.Bytes()
	// The final byte sequence ends with FileID=0, Pages=1, LPA=5; corrupt
	// the op/flags byte (first varint of the request) to an unknown op.
	// Locate it: header(8) + len(name)varint(1) + name(1) + pagesize(2) +
	// count(1) = 13; flags at offset 13.
	b[13] = 0x05 // op=5 (invalid)
	if _, err := ReadTrace(bytes.NewReader(b)); !errors.Is(err, ErrBadTrace) {
		t.Fatalf("err = %v, want ErrBadTrace", err)
	}
}

func TestSummarize(t *testing.T) {
	tr := &Trace{
		Name:      "t",
		PageBytes: 4096,
		Requests: []Request{
			{Op: OpWrite, LPA: 0, Pages: 2},
			{Op: OpWrite, LPA: 10, Pages: 8, Insecure: true},
			{Op: OpRead, LPA: 0, Pages: 1},
			{Op: OpRead, LPA: 0, Pages: 3},
			{Op: OpRead, LPA: 4, Pages: 1},
			{Op: OpTrim, LPA: 0, Pages: 2},
		},
	}
	s := tr.Summarize()
	if s.Reads != 3 || s.Writes != 2 || s.Trims != 1 {
		t.Fatalf("counts %+v", s)
	}
	if s.WrittenPages != 10 || s.ReadPages != 5 || s.TrimmedPages != 2 {
		t.Fatalf("pages %+v", s)
	}
	if s.InsecureWrites != 1 {
		t.Fatalf("insecure writes %d", s.InsecureWrites)
	}
	if s.MinWrite != 2 || s.MaxWrite != 8 {
		t.Fatalf("write sizes %d..%d", s.MinWrite, s.MaxWrite)
	}
	if s.ReadWriteRatio() != 1.5 {
		t.Fatalf("r:w = %v", s.ReadWriteRatio())
	}
}

func TestReadWriteRatioNoWrites(t *testing.T) {
	if (Stats{Reads: 5}).ReadWriteRatio() != 0 {
		t.Fatal("ratio with zero writes should be 0")
	}
}

// Property: WriteTo/ReadTrace is the identity on arbitrary valid traces.
func TestTraceRoundTripProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := &Trace{Name: "prop", PageBytes: 4096}
		for i := 0; i < int(n); i++ {
			tr.Requests = append(tr.Requests, Request{
				Op:       Op(rng.Intn(3)),
				LPA:      int64(rng.Intn(1 << 30)),
				Pages:    int32(rng.Intn(1000) + 1),
				Insecure: rng.Intn(2) == 0,
				FileID:   rng.Uint64() >> 8,
			})
		}
		var buf bytes.Buffer
		if _, err := tr.WriteTo(&buf); err != nil {
			return false
		}
		got, err := ReadTrace(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(tr, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// FuzzReadTrace ensures the trace parser never panics or over-allocates
// on adversarial input.
func FuzzReadTrace(f *testing.F) {
	tr := &Trace{Name: "seed", PageBytes: 4096, Requests: []Request{
		{Op: OpWrite, LPA: 1, Pages: 2, FileID: 3},
		{Op: OpTrim, LPA: 1, Pages: 2, Insecure: true},
	}}
	var buf bytes.Buffer
	tr.WriteTo(&buf)
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte("garbage that is not a trace at all"))
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadTrace(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Anything that parses must re-serialize and re-parse identically.
		var out bytes.Buffer
		if _, err := got.WriteTo(&out); err != nil {
			t.Fatalf("reserialize: %v", err)
		}
		back, err := ReadTrace(&out)
		if err != nil {
			t.Fatalf("reparse: %v", err)
		}
		if !reflect.DeepEqual(got, back) {
			t.Fatal("round trip diverged")
		}
	})
}
