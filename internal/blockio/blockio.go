// Package blockio defines the host-side block I/O interface of SecureSSD:
// read/write/trim requests carrying the paper's extended security flag
// (REQ_OP_INSEC_WRITE, §6), plus a compact binary trace container used by
// the workload generators and the trace replayer.
package blockio

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Op is the request type.
type Op uint8

const (
	// OpRead reads Pages logical pages starting at LPA.
	OpRead Op = iota
	// OpWrite writes Pages logical pages starting at LPA.
	OpWrite
	// OpTrim invalidates Pages logical pages starting at LPA (the file
	// system issues it when deleting a file).
	OpTrim
)

func (o Op) String() string {
	switch o {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpTrim:
		return "trim"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// Request is one host block-I/O request in logical-page units.
type Request struct {
	Op    Op
	LPA   int64 // first logical page
	Pages int32 // request length in pages
	// Insecure mirrors REQ_OP_INSEC_WRITE: the data needs no sanitization
	// guarantee. SecureSSD treats all writes as security-sensitive unless
	// this flag is set (backward compatibility, §6).
	Insecure bool
	// FileID annotates the request with the owning file for the VerTrace
	// data-versioning study (0 = unannotated).
	FileID uint64
	// Data optionally carries the write payload, PageBytes per page. It
	// is used by applications storing real content; workload traces are
	// timing-only and do not serialize it.
	Data []byte
}

// PageData returns the payload slice for the i-th page of the request,
// or nil when the request carries no data. A short final slice is
// returned as-is.
func (r Request) PageData(i int) []byte {
	if r.Data == nil || r.Pages <= 0 {
		return nil
	}
	per := len(r.Data) / int(r.Pages)
	if per == 0 {
		return nil
	}
	lo := i * per
	if lo >= len(r.Data) {
		return nil
	}
	hi := lo + per
	if hi > len(r.Data) {
		hi = len(r.Data)
	}
	return r.Data[lo:hi]
}

// Validate reports whether the request is well-formed.
func (r Request) Validate() error {
	if r.Op > OpTrim {
		return fmt.Errorf("blockio: unknown op %d", r.Op)
	}
	if r.LPA < 0 || r.Pages <= 0 {
		return fmt.Errorf("blockio: bad extent lpa=%d pages=%d", r.LPA, r.Pages)
	}
	return nil
}

func (r Request) String() string {
	sec := "sec"
	if r.Insecure {
		sec = "insec"
	}
	return fmt.Sprintf("%s lpa=%d n=%d %s file=%d", r.Op, r.LPA, r.Pages, sec, r.FileID)
}

// Trace is a named request sequence with its logical page size.
type Trace struct {
	Name      string
	PageBytes int
	Requests  []Request
}

// traceMagic guards the binary format.
const traceMagic = uint32(0x53545243) // "STRC"

// ErrBadTrace is returned when decoding malformed trace bytes.
var ErrBadTrace = errors.New("blockio: malformed trace")

// WriteTo serializes the trace. Format: magic, version, name, page size,
// count, then per-request varint-packed fields.
func (t *Trace) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	write := func(v uint64) {
		var buf [binary.MaxVarintLen64]byte
		k := binary.PutUvarint(buf[:], v)
		bw.Write(buf[:k])
		n += int64(k)
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[:4], traceMagic)
	binary.LittleEndian.PutUint32(hdr[4:], 1) // version
	bw.Write(hdr[:])
	n += 8
	write(uint64(len(t.Name)))
	bw.WriteString(t.Name)
	n += int64(len(t.Name))
	write(uint64(t.PageBytes))
	write(uint64(len(t.Requests)))
	for _, r := range t.Requests {
		flags := uint64(r.Op)
		if r.Insecure {
			flags |= 1 << 7
		}
		write(flags)
		write(uint64(r.LPA))
		write(uint64(r.Pages))
		write(r.FileID)
	}
	if err := bw.Flush(); err != nil {
		return n, err
	}
	return n, nil
}

// ReadTrace parses a trace serialized by WriteTo.
func ReadTrace(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrBadTrace, err)
	}
	if binary.LittleEndian.Uint32(hdr[:4]) != traceMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadTrace)
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != 1 {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadTrace, v)
	}
	read := func() (uint64, error) { return binary.ReadUvarint(br) }
	nameLen, err := read()
	if err != nil || nameLen > 1<<20 {
		return nil, fmt.Errorf("%w: name length", ErrBadTrace)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, fmt.Errorf("%w: name: %v", ErrBadTrace, err)
	}
	pageBytes, err := read()
	if err != nil {
		return nil, fmt.Errorf("%w: page size", ErrBadTrace)
	}
	count, err := read()
	if err != nil || count > 1<<32 {
		return nil, fmt.Errorf("%w: request count", ErrBadTrace)
	}
	t := &Trace{Name: string(name), PageBytes: int(pageBytes)}
	if count > 0 {
		// Never pre-allocate from an untrusted count: a forged header
		// could demand gigabytes. Grow as requests actually parse.
		capHint := count
		if capHint > 4096 {
			capHint = 4096
		}
		t.Requests = make([]Request, 0, capHint)
	}
	for i := uint64(0); i < count; i++ {
		flags, err := read()
		if err != nil {
			return nil, fmt.Errorf("%w: request %d flags", ErrBadTrace, i)
		}
		lpa, err := read()
		if err != nil {
			return nil, fmt.Errorf("%w: request %d lpa", ErrBadTrace, i)
		}
		pages, err := read()
		if err != nil {
			return nil, fmt.Errorf("%w: request %d pages", ErrBadTrace, i)
		}
		fileID, err := read()
		if err != nil {
			return nil, fmt.Errorf("%w: request %d file", ErrBadTrace, i)
		}
		req := Request{
			Op:       Op(flags & 0x7f),
			Insecure: flags&(1<<7) != 0,
			LPA:      int64(lpa),
			Pages:    int32(pages),
			FileID:   fileID,
		}
		if err := req.Validate(); err != nil {
			return nil, fmt.Errorf("%w: request %d: %v", ErrBadTrace, i, err)
		}
		t.Requests = append(t.Requests, req)
	}
	return t, nil
}

// Stats summarizes a trace the way the paper's Table 2 does.
type Stats struct {
	Reads, Writes, Trims    int
	ReadPages, WrittenPages int64
	TrimmedPages            int64
	InsecureWrites          int
	MinWrite, MaxWrite      int32
}

// Summarize computes trace statistics.
func (t *Trace) Summarize() Stats {
	var s Stats
	for _, r := range t.Requests {
		switch r.Op {
		case OpRead:
			s.Reads++
			s.ReadPages += int64(r.Pages)
		case OpWrite:
			s.Writes++
			s.WrittenPages += int64(r.Pages)
			if r.Insecure {
				s.InsecureWrites++
			}
			if s.MinWrite == 0 || r.Pages < s.MinWrite {
				s.MinWrite = r.Pages
			}
			if r.Pages > s.MaxWrite {
				s.MaxWrite = r.Pages
			}
		case OpTrim:
			s.Trims++
			s.TrimmedPages += int64(r.Pages)
		}
	}
	return s
}

// ReadWriteRatio returns reads:writes as a float (reads per write).
func (s Stats) ReadWriteRatio() float64 {
	if s.Writes == 0 {
		return 0
	}
	return float64(s.Reads) / float64(s.Writes)
}
