package enc

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestKeyLifecycle(t *testing.T) {
	ks := NewKeyStore(1)
	key, err := ks.CreateKey(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(key) != 16 {
		t.Fatalf("key length %d", len(key))
	}
	if _, err := ks.CreateKey(7); err == nil {
		t.Fatal("duplicate key accepted")
	}
	got, err := ks.Key(7)
	if err != nil || !bytes.Equal(got, key) {
		t.Fatal("key lookup failed")
	}
	if err := ks.DestroyKey(7); err != nil {
		t.Fatal(err)
	}
	if _, err := ks.Key(7); !errors.Is(err, ErrNoKey) {
		t.Fatal("destroyed key still resolvable")
	}
	if err := ks.DestroyKey(7); !errors.Is(err, ErrNoKey) {
		t.Fatal("double destroy should fail")
	}
	if ks.Keys() != 0 {
		t.Fatal("keystore not empty")
	}
}

// Proper key destruction zeroizes; a sloppy keystore leaks — the §8
// failure mode Evanesco is immune to.
func TestDestroyKeyZeroizes(t *testing.T) {
	ks := NewKeyStore(2)
	key, _ := ks.CreateKey(1)
	held := key // the attacker captured a pointer (cold boot)
	ks.DestroyKey(1)
	for _, b := range held {
		if b != 0 {
			t.Fatal("key bytes not zeroized on destroy")
		}
	}
	if _, ok := ks.RecoverDestroyedKey(1); ok {
		t.Fatal("strict keystore must not retain destroyed keys")
	}

	sloppy := NewKeyStore(3)
	sloppy.Sloppy = true
	orig, _ := sloppy.CreateKey(1)
	snapshot := append([]byte(nil), orig...)
	sloppy.DestroyKey(1)
	rec, ok := sloppy.RecoverDestroyedKey(1)
	if !ok || !bytes.Equal(rec, snapshot) {
		t.Fatal("sloppy keystore should leak the destroyed key (that's the point)")
	}
}

func TestCipherRoundTrip(t *testing.T) {
	ks := NewKeyStore(4)
	key, _ := ks.CreateKey(1)
	c, err := NewCipher(key)
	if err != nil {
		t.Fatal(err)
	}
	plain := []byte("attorney-client privileged material")
	ct := c.EncryptPage(42, plain)
	if bytes.Equal(ct, plain) {
		t.Fatal("ciphertext equals plaintext")
	}
	if got := c.DecryptPage(42, ct); !bytes.Equal(got, plain) {
		t.Fatal("decrypt failed")
	}
	// A different page decrypts to garbage (per-page IVs).
	if got := c.DecryptPage(43, ct); bytes.Equal(got, plain) {
		t.Fatal("page IVs not independent")
	}
}

func TestCipherRejectsBadKey(t *testing.T) {
	if _, err := NewCipher([]byte("short")); err == nil {
		t.Fatal("bad key length accepted")
	}
}

func TestKeyDeletionSanitizes(t *testing.T) {
	// The whole premise: without the key, the ciphertext is useless...
	ks := NewKeyStore(5)
	key, _ := ks.CreateKey(1)
	c, _ := NewCipher(key)
	plain := bytes.Repeat([]byte("secret "), 100)
	ct := c.EncryptPage(0, plain)
	ks.DestroyKey(1)
	// ...but the ciphertext is still physically present, and a leaked key
	// copy decrypts it — unlike a pLock'd page, which is gone for anyone.
	leaked, _ := NewCipher(append([]byte(nil), key...)) // zeroized: wrong key
	if got := leaked.DecryptPage(0, ct); bytes.Equal(got, plain) {
		t.Fatal("zeroized key still decrypts")
	}
}

// Property: encrypt/decrypt is the identity for any payload and page.
func TestCipherRoundTripProperty(t *testing.T) {
	ks := NewKeyStore(6)
	key, _ := ks.CreateKey(1)
	c, _ := NewCipher(key)
	f := func(lpa int64, data []byte) bool {
		if lpa < 0 {
			lpa = -lpa
		}
		return bytes.Equal(c.DecryptPage(lpa, c.EncryptPage(lpa, data)), data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicKeys(t *testing.T) {
	a, _ := NewKeyStore(9).CreateKey(1)
	b, _ := NewKeyStore(9).CreateKey(1)
	if !bytes.Equal(a, b) {
		t.Fatal("seeded keystore should be deterministic")
	}
}
