// Package enc implements the encryption-based sanitization alternative
// the paper's related work discusses (§8, [3][59][60][61]): every file is
// encrypted with its own key, and "sanitizing" the file means destroying
// the key. The data remains physically present but computationally
// unreadable.
//
// The paper's critique, which this package lets the benchmarks quantify
// and the tests demonstrate:
//
//   - every read and write pays the cipher cost;
//   - the keystore itself must live somewhere and be destroyed reliably
//     (here: a keystore region that must itself be sanitized — if it is
//     stored on a baseline flash region, deleted keys linger exactly like
//     deleted data, §8's "if the encryption key is compromised");
//   - a leaked key retroactively unlocks every stale copy of the file,
//     which Evanesco's physical locks are immune to.
//
// The cipher is AES-CTR with a per-file random key and per-page IVs
// derived from the logical page address.
package enc

import (
	"crypto/aes"
	"crypto/cipher"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
)

// KeyStore holds per-file data-encryption keys. DestroyKey implements
// key-deletion sanitization; WipedProof lets tests check whether the key
// material is really gone (the paper's cold-boot/subpoena threat).
type KeyStore struct {
	keys map[uint64][]byte
	// graveyard retains "deleted" key bytes when Sloppy is set, modeling
	// a keystore that unlinks instead of erasing — the §8 failure mode.
	graveyard map[uint64][]byte
	// Sloppy makes DestroyKey leave the key recoverable (like storing
	// the keystore on a conventional SSD region).
	Sloppy bool
	rng    *rand.Rand
}

// NewKeyStore creates a keystore; the seed makes key material
// deterministic for tests.
func NewKeyStore(seed int64) *KeyStore {
	return &KeyStore{
		keys:      map[uint64][]byte{},
		graveyard: map[uint64][]byte{},
		rng:       rand.New(rand.NewSource(seed)),
	}
}

// ErrNoKey is returned when a file's key is absent (never created or
// destroyed).
var ErrNoKey = errors.New("enc: no key for file")

// CreateKey issues a fresh 128-bit key for the file.
func (ks *KeyStore) CreateKey(fileID uint64) ([]byte, error) {
	if _, exists := ks.keys[fileID]; exists {
		return nil, fmt.Errorf("enc: key for file %d already exists", fileID)
	}
	key := make([]byte, 16)
	for i := range key {
		key[i] = byte(ks.rng.Intn(256))
	}
	ks.keys[fileID] = key
	return key, nil
}

// Key returns the file's key.
func (ks *KeyStore) Key(fileID uint64) ([]byte, error) {
	k, ok := ks.keys[fileID]
	if !ok {
		return nil, ErrNoKey
	}
	return k, nil
}

// DestroyKey sanitizes the file by deleting its key. With Sloppy set the
// key bytes survive in the graveyard — recoverable by the §5.1 attacker.
func (ks *KeyStore) DestroyKey(fileID uint64) error {
	k, ok := ks.keys[fileID]
	if !ok {
		return ErrNoKey
	}
	if ks.Sloppy {
		ks.graveyard[fileID] = append([]byte(nil), k...)
	} else {
		for i := range k {
			k[i] = 0
		}
	}
	delete(ks.keys, fileID)
	return nil
}

// RecoverDestroyedKey is the attacker's move against a sloppy keystore.
func (ks *KeyStore) RecoverDestroyedKey(fileID uint64) ([]byte, bool) {
	k, ok := ks.graveyard[fileID]
	return k, ok
}

// Keys returns the number of live keys.
func (ks *KeyStore) Keys() int { return len(ks.keys) }

// Cipher encrypts/decrypts page payloads with AES-CTR. The IV is derived
// from the logical page address, so pages are independently decryptable.
type Cipher struct {
	block cipher.Block
}

// NewCipher builds a page cipher from a 16/24/32-byte key.
func NewCipher(key []byte) (*Cipher, error) {
	b, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	return &Cipher{block: b}, nil
}

// iv derives the counter block for a logical page.
func (c *Cipher) iv(lpa int64) []byte {
	iv := make([]byte, aes.BlockSize)
	binary.LittleEndian.PutUint64(iv, uint64(lpa))
	iv[15] = 0x5A // domain separation from an all-zero IV
	return iv
}

// EncryptPage returns the ciphertext of a page payload.
func (c *Cipher) EncryptPage(lpa int64, plain []byte) []byte {
	out := make([]byte, len(plain))
	cipher.NewCTR(c.block, c.iv(lpa)).XORKeyStream(out, plain)
	return out
}

// DecryptPage returns the plaintext of a page payload (CTR is symmetric).
func (c *Cipher) DecryptPage(lpa int64, ct []byte) []byte {
	return c.EncryptPage(lpa, ct)
}
