package analysis

import (
	"fmt"
	"go/token"
	"strings"
)

// AllowRule is the pseudo-rule name under which malformed allow
// comments are reported. It cannot itself be suppressed.
const AllowRule = "allowsyntax"

// AllowStaleRule is the pseudo-rule name under which allow directives
// that suppress nothing are reported, so waivers can't rot. Like
// AllowRule it cannot be suppressed: the fix for a stale waiver is to
// delete it.
const AllowStaleRule = "allowstale"

// allowDirective is one parsed secvet:allow comment with its usage
// state for stale-waiver detection.
type allowDirective struct {
	pos   token.Position
	rules []string
	used  bool
}

// allowSet indexes a package's allow directives by file and line. The
// wildcard rule "*" waives everything.
type allowSet struct {
	byLine map[string]map[int][]*allowDirective
	all    []*allowDirective
}

// collectAllows scans a package's comments for secvet:allow directives.
// A well-formed directive is
//
//	//secvet:allow rule1[,rule2...] -- reason
//
// and waives the listed rules on its own line and on the line directly
// below (so it can sit above the flagged statement). Directives missing
// the reason string, and directives naming rules outside the canonical
// suite, are reported immediately.
func collectAllows(p *Package) (*allowSet, []Diagnostic) {
	allows := &allowSet{byLine: make(map[string]map[int][]*allowDirective)}
	var diags []Diagnostic
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//secvet:allow")
				if !ok {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				rules, reason, hasReason := strings.Cut(text, "--")
				if !hasReason || strings.TrimSpace(reason) == "" {
					diags = append(diags, Diagnostic{
						Pos:     pos,
						Rule:    AllowRule,
						Message: "secvet:allow directive needs a reason: //secvet:allow <rule> -- <why this is safe>",
					})
					continue
				}
				var names []string
				named := 0
				for _, r := range strings.Split(rules, ",") {
					if r = strings.TrimSpace(r); r == "" {
						continue
					}
					named++
					if r != "*" && ByName(r) == nil {
						diags = append(diags, Diagnostic{
							Pos:     pos,
							Rule:    AllowStaleRule,
							Message: fmt.Sprintf("secvet:allow names unknown rule %q: it can never suppress anything", r),
						})
						continue
					}
					names = append(names, r)
				}
				if named == 0 {
					diags = append(diags, Diagnostic{
						Pos:     pos,
						Rule:    AllowRule,
						Message: "secvet:allow directive names no rules",
					})
					continue
				}
				if len(names) == 0 {
					continue // every named rule was unknown, already reported
				}
				d := &allowDirective{pos: pos, rules: names}
				allows.all = append(allows.all, d)
				byLine := allows.byLine[pos.Filename]
				if byLine == nil {
					byLine = make(map[int][]*allowDirective)
					allows.byLine[pos.Filename] = byLine
				}
				byLine[pos.Line] = append(byLine[pos.Line], d)
			}
		}
	}
	return allows, diags
}

// suppressed reports whether an allow directive on the diagnostic's
// line, or on the line directly above it, waives the rule — marking
// every matching directive as earning its keep.
func (a *allowSet) suppressed(d Diagnostic) bool {
	byLine := a.byLine[d.Pos.Filename]
	if byLine == nil {
		return false
	}
	hit := false
	for _, line := range [2]int{d.Pos.Line, d.Pos.Line - 1} {
		for _, dir := range byLine[line] {
			for _, rule := range dir.rules {
				if rule == d.Rule || rule == "*" {
					dir.used = true
					hit = true
				}
			}
		}
	}
	return hit
}

// stale reports directives that suppressed nothing in this run. A
// directive is only judged when every rule it names actually ran (a
// wildcard requires the full canonical suite), so partial runs — single
// analyzers under analysistest, -rules subsets — never condemn a waiver
// they didn't test.
func (a *allowSet) stale(ran map[string]bool, fullSuite bool) []Diagnostic {
	var diags []Diagnostic
	for _, dir := range a.all {
		if dir.used {
			continue
		}
		judgeable := true
		for _, r := range dir.rules {
			if r == "*" {
				judgeable = judgeable && fullSuite
			} else {
				judgeable = judgeable && ran[r]
			}
		}
		if !judgeable {
			continue
		}
		diags = append(diags, Diagnostic{
			Pos:  dir.pos,
			Rule: AllowStaleRule,
			Message: fmt.Sprintf("stale waiver: //secvet:allow %s suppresses no finding; delete it",
				strings.Join(dir.rules, ",")),
		})
	}
	return diags
}
