package analysis

import "strings"

// AllowRule is the pseudo-rule name under which malformed allow
// comments are reported. It cannot itself be suppressed.
const AllowRule = "allowsyntax"

// allowSet records, per file and line, which rules an allow comment
// waives. The wildcard rule "*" waives everything.
type allowSet map[string]map[int][]string

// collectAllows scans a package's comments for secvet:allow directives.
// A well-formed directive is
//
//	//secvet:allow rule1[,rule2...] -- reason
//
// and waives the listed rules on its own line and on the line directly
// below (so it can sit above the flagged statement). Directives missing
// the reason string are reported as AllowRule diagnostics.
func collectAllows(p *Package) (allowSet, []Diagnostic) {
	allows := make(allowSet)
	var diags []Diagnostic
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//secvet:allow")
				if !ok {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				rules, reason, hasReason := strings.Cut(text, "--")
				if !hasReason || strings.TrimSpace(reason) == "" {
					diags = append(diags, Diagnostic{
						Pos:     pos,
						Rule:    AllowRule,
						Message: "secvet:allow directive needs a reason: //secvet:allow <rule> -- <why this is safe>",
					})
					continue
				}
				var names []string
				for _, r := range strings.Split(rules, ",") {
					if r = strings.TrimSpace(r); r != "" {
						names = append(names, r)
					}
				}
				if len(names) == 0 {
					diags = append(diags, Diagnostic{
						Pos:     pos,
						Rule:    AllowRule,
						Message: "secvet:allow directive names no rules",
					})
					continue
				}
				byLine := allows[pos.Filename]
				if byLine == nil {
					byLine = make(map[int][]string)
					allows[pos.Filename] = byLine
				}
				byLine[pos.Line] = append(byLine[pos.Line], names...)
			}
		}
	}
	return allows, diags
}

// suppressed reports whether an allow directive on the diagnostic's
// line, or on the line directly above it, waives the rule.
func (a allowSet) suppressed(d Diagnostic) bool {
	byLine := a[d.Pos.Filename]
	if byLine == nil {
		return false
	}
	for _, line := range [2]int{d.Pos.Line, d.Pos.Line - 1} {
		for _, rule := range byLine[line] {
			if rule == d.Rule || rule == "*" {
				return true
			}
		}
	}
	return false
}
