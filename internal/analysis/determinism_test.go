package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, "testdata",
		[]*analysis.Analyzer{analysis.Determinism}, "internal/sim", "plain")
}
