package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

// TestAllowDirectives runs the determinism analyzer over a fixture
// whose findings are variously waived: it checks both that well-formed
// directives suppress and that malformed ones are themselves reported.
func TestAllowDirectives(t *testing.T) {
	analysistest.Run(t, "testdata",
		[]*analysis.Analyzer{analysis.Determinism}, "allowtest")
}

// TestAllowStale runs the full suite (so wildcard waivers are
// judgeable) over a fixture mixing earning, rotted, and misspelled
// waivers.
func TestAllowStale(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.All(), "allowstaletest")
}
