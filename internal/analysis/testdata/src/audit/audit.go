// Package audit is a stand-in for repro/internal/audit with the
// Ledger surface the tracecheck fixture exercises.
package audit

// Event mirrors the shape of a real provenance event: fixed-size
// fields plus a free-form note a careless producer might format into.
type Event struct {
	Kind int
	Page uint32
	Note string
}

// Ledger mimics the real per-copy provenance ledger.
type Ledger struct{}

// Record folds one event into the ledger.
func (l *Ledger) Record(ev Event) bool { return false }
