// Package audit is a stand-in for repro/internal/audit with the
// Ledger surface the tracecheck fixture exercises.
package audit

// Event kinds, mirroring the real provenance vocabulary auditcheck
// matches by name.
const (
	KindCopy = iota
	KindInvalidate
	KindDestroy
)

// Cause attributes a destruction to the mechanism that issued it.
type Cause int

// Destruction causes.
const (
	CausePLock Cause = iota
	CausePLockBatch
	CauseBLock
	CauseScrub
	CauseErase
)

// NoSrc marks a copy event with no source page.
const NoSrc = ^uint32(0)

// Event mirrors the shape of a real provenance event: fixed-size
// fields plus a free-form note a careless producer might format into.
type Event struct {
	Kind  int
	Page  uint32
	Src   uint32
	LPA   int64
	Cause Cause
	At    int64
	Note  string
}

// Ledger mimics the real per-copy provenance ledger.
type Ledger struct{}

// Record folds one event into the ledger.
func (l *Ledger) Record(ev Event) bool { return false }
