// Package fault is the fixture stand-in for the fault-injection
// layer's Config surface, matched by package name by shardcheck.
package fault

// Config sets per-operation failure probabilities; the zero value
// disables injection.
type Config struct {
	ProgramFail float64
	EraseFail   float64
	PLockFail   float64
	BLockFail   float64
	ReadBER     float64
	WearWeight  float64
	Seed        int64
}

// Enabled reports whether any injection is configured.
func (c Config) Enabled() bool {
	return c.ProgramFail > 0 || c.EraseFail > 0 || c.PLockFail > 0 ||
		c.BLockFail > 0 || c.ReadBER > 0
}

// Uniform returns the one-knob configuration.
func Uniform(rate float64, seed int64) Config {
	if rate <= 0 {
		return Config{Seed: seed}
	}
	return Config{
		ProgramFail: rate, EraseFail: rate, PLockFail: rate,
		BLockFail: rate, ReadBER: rate, Seed: seed,
	}
}
