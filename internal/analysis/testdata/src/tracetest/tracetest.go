// Package tracetest exercises the tracecheck analyzer: fmt formatting
// in a trace.Collector call argument costs allocations even when the
// collector is the Nop default, unless an Enabled()/traceOn guard keeps
// it off the hot path.
package tracetest

import (
	"fmt"

	"audit"
	"trace"
)

type producer struct {
	c       *trace.Collector
	l       *audit.Ledger
	traceOn bool
}

func (p *producer) hot(page int) {
	p.c.Event("read", fmt.Sprintf("page=%d", page)) // want `tracecheck: fmt.Sprintf allocates in a trace.Collector call argument`
}

func (p *producer) hotErrorf(page int, err error) {
	p.c.Event("fail", fmt.Errorf("page %d: %w", page, err)) // want `tracecheck: fmt.Errorf allocates in a trace.Collector call argument`
}

func (p *producer) guardedByEnabled(page int) {
	if p.c.Enabled() {
		p.c.Event("read", fmt.Sprintf("page=%d", page)) // ok: behind the gate
	}
}

func (p *producer) guardedByFlag(page int) {
	if p.traceOn {
		p.c.Event("read", fmt.Sprintf("page=%d", page)) // ok: cached Enabled() result
	}
}

func (p *producer) cheap(page int) {
	p.c.Event("read", page) // ok: no per-call formatting
	p.c.Counter("reads", 1) // ok
}

func (p *producer) formatOutsideTrace(page int) string {
	return fmt.Sprintf("page=%d", page) // ok: not a collector argument
}

func (p *producer) hotAudit(page int) {
	p.c.Audit(audit.Event{Kind: 1, Page: uint32(page),
		Note: fmt.Sprintf("page=%d", page)}) // want `tracecheck: fmt.Sprintf allocates in a trace.Collector call argument`
}

func (p *producer) hotLedger(page int) {
	p.l.Record(audit.Event{Kind: 1, Page: uint32(page),
		Note: fmt.Sprintf("page=%d", page)}) // want `tracecheck: fmt.Sprintf allocates in an audit.Ledger call argument`
}

func (p *producer) guardedAudit(page int) {
	if p.traceOn {
		p.c.Audit(audit.Event{Kind: 1, Page: uint32(page),
			Note: fmt.Sprintf("page=%d", page)}) // ok: behind the gate
	}
}

func (p *producer) guardedLedger(page int) {
	if p.c.Enabled() {
		p.l.Record(audit.Event{Kind: 1, Page: uint32(page),
			Note: fmt.Sprintf("page=%d", page)}) // ok: behind the gate
	}
}

func (p *producer) cheapAudit(page int) {
	p.c.Audit(audit.Event{Kind: 1, Page: uint32(page)}) // ok: fixed-size fields only
	p.l.Record(audit.Event{Kind: 2})                    // ok
}
