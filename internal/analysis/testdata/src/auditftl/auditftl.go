// Package auditftl exercises the auditcheck analyzer: lifecycle hooks
// that skip their audit emission on some traced path, and the PR 6
// regression shape (subset-only destruction reporting after a
// block-wide bLock) — next to the real code's clean gating idioms.
// The package clause says ftl because auditcheck scopes by package
// name.
package ftl

import (
	"audit"
	"trace"
)

// PPA is a physical page address.
type PPA int32

// Hooks mirrors the real FTL lifecycle hook bundle auditcheck keys on.
type Hooks struct {
	Programmed  func(p PPA, lpa int64, file uint64)
	Invalidated func(p PPA, file uint64)
	Destroyed   func(p PPA, file uint64)
}

// Target is the device command surface.
type Target interface {
	PLock(p PPA, at int64) (int64, error)
	BLock(block int, at int64) (int64, error)
}

// FTL is the fixture translation layer.
type FTL struct {
	hooks    Hooks
	tracer   *trace.Collector
	traceOn  bool
	target   Target
	status   []int
	fileOf   []uint64
	reqStart int64
}

const pageStale = 1

// --- violations -------------------------------------------------------

// destroyNoAudit fires the hook and never tells the ledger.
func (f *FTL) destroyNoAudit(p PPA) {
	if f.hooks.Destroyed != nil {
		f.hooks.Destroyed(p, f.fileOf[p]) // want `auditcheck: hooks.Destroyed fires without an audit.KindDestroy event on some traced path`
	}
}

// destroyAuditOneBranch audits only under a non-tracing condition: the
// deep=false path leaks the obligation.
func (f *FTL) destroyAuditOneBranch(p PPA, deep bool) {
	if f.hooks.Destroyed != nil {
		f.hooks.Destroyed(p, f.fileOf[p]) // want `auditcheck: hooks.Destroyed fires without an audit.KindDestroy event on some traced path`
	}
	if deep {
		f.tracer.Audit(audit.Event{Kind: audit.KindDestroy, Page: uint32(p)})
	}
}

// destroyWrongKind emits a copy event for a destruction: the kind
// mismatch leaves the destroy obligation pending on the traced path.
func (f *FTL) destroyWrongKind(p PPA) {
	if f.hooks.Destroyed != nil {
		f.hooks.Destroyed(p, f.fileOf[p]) // want `auditcheck: hooks.Destroyed fires without an audit.KindDestroy event on some traced path`
	}
	if f.traceOn {
		f.tracer.Audit(audit.Event{Kind: audit.KindCopy, Page: uint32(p)})
	}
}

// invalidateSilently drops the invalidation record entirely.
func (f *FTL) invalidateSilently(p PPA) {
	if f.hooks.Invalidated != nil {
		f.hooks.Invalidated(p, f.fileOf[p]) // want `auditcheck: hooks.Invalidated fires without a trace Invalidated record`
	}
}

// programNoCopyEvent reports the new physical copy to hooks but not to
// the ledger, even when tracing.
func (f *FTL) programNoCopyEvent(p PPA, lpa int64) {
	if f.hooks.Programmed != nil {
		f.hooks.Programmed(p, lpa, f.fileOf[p]) // want `auditcheck: hooks.Programmed fires without an audit.KindCopy event on some traced path`
	}
	if f.traceOn {
		f.tracer.Event("program", uint32(p))
	}
}

// issueBLockSubset is the PR 6 bug shape: after the block-wide bLock,
// destruction is reported only for the pended subset handed in by the
// caller.
func (f *FTL) issueBLockSubset(block int, pages []PPA) error {
	stale := pages[:0]
	for _, p := range pages {
		if f.status[p] == pageStale {
			stale = append(stale, p)
		}
	}
	done, err := f.target.BLock(block, f.reqStart)
	if err != nil {
		return err
	}
	for _, p := range stale { // want `auditcheck: destruction after a block-wide bLock is reported only for the pended subset`
		if f.hooks.Destroyed != nil {
			f.hooks.Destroyed(p, f.fileOf[p])
		}
		if f.traceOn {
			f.tracer.Audit(audit.Event{Kind: audit.KindDestroy, Page: uint32(p), At: done})
		}
	}
	return nil
}

// --- legitimate idioms: none of these may be reported -----------------

// commitWrite pairs the program hook with a secure-gated copy event,
// the real commit path's shape.
func (f *FTL) commitWrite(p PPA, lpa int64, secure bool) {
	if f.hooks.Programmed != nil {
		f.hooks.Programmed(p, lpa, f.fileOf[p])
	}
	if secure && f.traceOn {
		f.tracer.Audit(audit.Event{Kind: audit.KindCopy, Page: uint32(p), LPA: lpa, Src: audit.NoSrc})
	}
}

// gatedEarlyOut uses the markFault idiom: bail before reporting when
// tracing is off.
func (f *FTL) gatedEarlyOut(p PPA) {
	if f.hooks.Invalidated != nil {
		f.hooks.Invalidated(p, f.fileOf[p])
	}
	if !f.traceOn {
		return
	}
	f.tracer.Invalidated(uint32(p), true, f.reqStart)
}

// issuePLock is the single-page sanitize path: hook plus traceOn-gated
// destroy event.
func (f *FTL) issuePLock(p PPA) error {
	done, err := f.target.PLock(p, f.reqStart)
	if err != nil {
		return err
	}
	if f.hooks.Destroyed != nil {
		f.hooks.Destroyed(p, f.fileOf[p])
	}
	if f.traceOn {
		f.tracer.Audit(audit.Event{Kind: audit.KindDestroy, Page: uint32(p), Cause: audit.CausePLock, At: done})
	}
	return nil
}

// issueBLockBlockwide is the fixed PR 6 shape: delegate to a span
// iterator instead of the caller's subset.
func (f *FTL) issueBLockBlockwide(block int, pages []PPA) error {
	_ = pages
	done, err := f.target.BLock(block, f.reqStart)
	if err != nil {
		return err
	}
	f.destroyStale(block, done)
	return nil
}

// destroyStale iterates the block's page span, not a caller-provided
// subset, and closes each audit window.
func (f *FTL) destroyStale(block int, done int64) {
	for i := 0; i < 4; i++ {
		p := PPA(block*4 + i)
		if f.status[p] != pageStale {
			continue
		}
		if f.hooks.Destroyed != nil {
			f.hooks.Destroyed(p, f.fileOf[p])
		}
		if f.traceOn {
			f.tracer.Audit(audit.Event{Kind: audit.KindDestroy, Page: uint32(p), Cause: audit.CauseBLock, At: done})
		}
	}
}

// opaqueKind passes a computed event: an Audit whose kind is not
// statically visible discharges every obligation.
func (f *FTL) opaqueKind(p PPA, ev audit.Event) {
	if f.hooks.Destroyed != nil {
		f.hooks.Destroyed(p, f.fileOf[p])
	}
	if f.hooks.Invalidated != nil {
		f.hooks.Invalidated(p, f.fileOf[p])
	}
	if f.traceOn {
		f.tracer.Audit(ev)
	}
}
