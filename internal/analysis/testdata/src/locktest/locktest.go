// Package locktest exercises the lockcheck analyzer's discarded-error
// rule: every nand chip op's error carries the pAP/bAP lock state.
package locktest

import "nand"

func discarded(c *nand.Chip, a nand.PageAddr) {
	c.Program(a, []byte("x"), 0) // want `lockcheck: all results of nand.Chip.Program discarded`
	c.PLock(a, 0)                // want `lockcheck: all results of nand.Chip.PLock discarded`
}

func discardedControlFlow(c *nand.Chip, a nand.PageAddr) {
	defer c.Erase(0, 0) // want `lockcheck: all results of nand.Chip.Erase discarded`
	go c.Scrub(a, 0)    // want `lockcheck: all results of nand.Chip.Scrub discarded`
}

func blankedError(c *nand.Chip, a nand.PageAddr) int {
	res, _ := c.Read(a, 0) // want `lockcheck: error from nand.Chip.Read assigned to _`
	return len(res.Data)
}

func blankedStatus(c *nand.Chip, a nand.PageAddr) {
	locked, _ := c.IsPageLocked(a, 0) // want `lockcheck: error from nand.Chip.IsPageLocked assigned to _`
	_ = locked
}

func handled(c *nand.Chip, a nand.PageAddr) error {
	if _, err := c.Program(a, nil, 0); err != nil { // ok: error consumed
		return err
	}
	locked, err := c.IsBlockLocked(a.Block, 0) // ok: both results kept
	if err != nil || locked {
		return err
	}
	lat, err := c.Copyback(a, a, 0) // ok
	_, _ = lat, err
	return nil
}

func allowed(c *nand.Chip, a nand.PageAddr) {
	//secvet:allow lockcheck -- fixture: op outcome intentionally ignored
	c.BLock(0, 0)
}
