// Package aliastest exercises the aliasing analyzer: every way
// nand.ReadResult.Data may and may not leave the read's statement
// block.
package aliastest

import "nand"

type cache struct {
	page []byte
	m    map[int][]byte
}

type record struct{ payload []byte }

func ret(c *nand.Chip, a nand.PageAddr) ([]byte, error) {
	res, err := c.Read(a, 0)
	if err != nil {
		return nil, err
	}
	return res.Data, nil // want `aliasing: nand.ReadResult.Data aliases the chip's read scratch and must not be returned`
}

func retClone(c *nand.Chip, a nand.PageAddr) ([]byte, error) {
	res, err := c.Read(a, 0)
	if err != nil {
		return nil, err
	}
	return res.CloneData(), nil // ok: documented copy helper
}

func retAppendCopy(c *nand.Chip, a nand.PageAddr) []byte {
	res, err := c.Read(a, 0)
	if err != nil {
		return nil
	}
	return append([]byte(nil), res.Data...) // ok: byte expansion copies
}

func fieldStore(c *nand.Chip, a nand.PageAddr, st *cache) {
	res, err := c.Read(a, 0)
	if err != nil {
		return
	}
	st.page = res.Data // want `aliasing: nand.ReadResult.Data stored outside the read's statement block`
}

func taintedLocal(c *nand.Chip, a nand.PageAddr, st *cache) {
	res, err := c.Read(a, 0)
	if err != nil {
		return
	}
	d := res.Data
	st.m[a.Page] = d // want `aliasing: nand.ReadResult.Data stored outside the read's statement block`
}

func appendAlias(c *nand.Chip, a nand.PageAddr, pages [][]byte) [][]byte {
	res, err := c.Read(a, 0)
	if err != nil {
		return pages
	}
	return append(pages, res.Data) // want `aliasing: nand.ReadResult.Data appended into a longer-lived slice`
}

func compositeLit(c *nand.Chip, a nand.PageAddr) {
	res, err := c.Read(a, 0)
	if err != nil {
		return
	}
	r := record{payload: res.Data} // want `aliasing: nand.ReadResult.Data stored in a composite literal`
	_ = r
}

func send(c *nand.Chip, a nand.PageAddr, ch chan []byte) {
	res, err := c.Read(a, 0)
	if err != nil {
		return
	}
	ch <- res.Data // want `aliasing: nand.ReadResult.Data sent on a channel`
}

func capture(c *nand.Chip, a nand.PageAddr, sink func([]byte)) {
	res, err := c.Read(a, 0)
	if err != nil {
		return
	}
	go func() {
		sink(res.Data) // want `aliasing: nand.ReadResult.Data captured by a func literal`
	}()
}

func readInsideLiteral(c *nand.Chip, a nand.PageAddr) func() int {
	return func() int {
		res, err := c.Read(a, 0)
		if err != nil {
			return 0
		}
		return len(res.Data) // ok: the read happened inside this literal
	}
}

func consumedInPlace(c *nand.Chip, a nand.PageAddr) int {
	res, err := c.Read(a, 0)
	if err != nil {
		return 0
	}
	n := 0
	for _, b := range res.Data { // ok: consumed before the next chip op
		n += int(b)
	}
	return n
}

func allowedEscape(c *nand.Chip, a nand.PageAddr, st *cache) {
	res, err := c.Read(a, 0)
	if err != nil {
		return
	}
	//secvet:allow aliasing -- fixture: consumer contract guarantees no further ops on this chip
	st.page = res.Data
}
