// Package shardtest exercises the shardcheck analyzer: foreign-shard
// scheduling from inside shard callbacks, sends inside the lookahead
// window, and ssd.Config ShardChannels+fault combinations — next to
// the legitimate staging idioms.
package shardtest

import (
	"fault"
	"internal/sim"
	"ssd"
)

const kindHop = 1

// mkEngine pins the package's constant lookahead for the Now()+c rule.
func mkEngine() *sim.ShardedEngine { return sim.NewSharded(2, 100) }

func foreignShardScheduling(se *sim.ShardedEngine) {
	se.Shard(0).Register(kindHop, func(e *sim.Engine, r sim.Record) {
		se.Shard(1).AtRecord(10, r) // want `shardcheck: AtRecord on another shard's engine from inside a shard callback`
	})
}

func capturedEngine(se *sim.ShardedEngine) {
	other := se.Shard(1)
	se.Shard(0).At(10, func(e *sim.Engine) {
		other.After(5, func(*sim.Engine) {}) // want `shardcheck: After on captured shard engine other`
	})
}

func sendAtNow(se *sim.ShardedEngine) {
	se.Shard(0).Register(kindHop, func(e *sim.Engine, r sim.Record) {
		se.Send(0, 1, e.Now(), r) // want `shardcheck: cross-shard send scheduled at Now\(\)`
	})
}

func sendInsideLookahead(se *sim.ShardedEngine) {
	se.Shard(0).Register(kindHop, func(e *sim.Engine, r sim.Record) {
		se.Send(0, 1, e.Now()+10, r) // want `shardcheck: cross-shard send scheduled Now\(\)\+10 with a configured lookahead of 100`
	})
}

func sendBeforeNow(se *sim.ShardedEngine) {
	se.Shard(0).Register(kindHop, func(e *sim.Engine, r sim.Record) {
		se.Send(0, 1, e.Now()-5, r) // want `shardcheck: cross-shard send scheduled at or before Now\(\)`
	})
}

func sendEventCallback(se *sim.ShardedEngine) {
	se.SendEvent(0, 1, 200, func(e *sim.Engine) {
		se.Shard(0).At(300, func(*sim.Engine) {}) // want `shardcheck: At on another shard's engine from inside a shard callback`
	})
}

func comboLiteral() (*ssd.SSD, error) {
	return ssd.New(ssd.Config{ // want `shardcheck: ssd.Config combines ShardChannels with enabled fault injection`
		ShardChannels: 4,
		Fault:         fault.Config{ProgramFail: 1e-3},
	})
}

func comboSplit() (*ssd.SSD, error) {
	cfg := ssd.Config{ShardChannels: 4}
	cfg.Fault = fault.Uniform(0.01, 1) // want `shardcheck: this assignment completes the ShardChannels\+fault-injection combination on cfg`
	return ssd.New(cfg)
}

func comboCopy() {
	base := ssd.Config{ShardChannels: 2}
	c2 := base
	c2.Fault = fault.Config{ReadBER: 1e-4} // want `shardcheck: this assignment completes the ShardChannels\+fault-injection combination on c2`
	_ = c2
}

// --- legitimate idioms: none of these may be reported -----------------

// legitCallback hops through the staged-send barrier with lookahead to
// spare, and schedules locally through its own engine parameter.
func legitCallback(se *sim.ShardedEngine) {
	se.Shard(0).Register(kindHop, func(e *sim.Engine, r sim.Record) {
		e.AfterRecord(7, r)
		se.Send(0, 1, e.Now()+150, r)
	})
}

// legitSeeding registers handlers and seeds initial events from the
// coordinator, outside any window.
func legitSeeding(se *sim.ShardedEngine) {
	for i := 0; i < 2; i++ {
		eng := se.Shard(i)
		eng.Register(kindHop, func(e *sim.Engine, r sim.Record) { _ = r })
		eng.AtRecord(sim.Micros(i), sim.Record{Kind: kindHop})
	}
}

// branchOnlyCombo never holds both facts on one path: the must-join
// keeps it silent.
func branchOnlyCombo(sharded bool) ssd.Config {
	cfg := ssd.Config{}
	if sharded {
		cfg.ShardChannels = 4
	} else {
		cfg.Fault = fault.Uniform(0.02, 7)
	}
	return cfg
}

// runtimeDecided leaves both knobs to runtime values: the constructor's
// rejection owns that case.
func runtimeDecided(sc int, fc fault.Config) (*ssd.SSD, error) {
	return ssd.New(ssd.Config{ShardChannels: sc, Fault: fc})
}
