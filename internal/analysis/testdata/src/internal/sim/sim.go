// Package sim exercises the determinism analyzer inside a simulation
// package path (internal/sim), where the map-range ordering rule is in
// force in addition to the module-wide wall-clock and global-rand
// rules.
package sim

import (
	"math/rand"
	"sort"
	"time"

	"trace"
)

func wallClock() int64 {
	return time.Now().UnixNano() // want `determinism: time.Now is wall-clock`
}

func wallClockAllowed() int64 {
	//secvet:allow determinism -- fixture: profiling-only wall-clock read
	return time.Now().UnixNano()
}

func globalRand() int {
	return rand.Intn(8) // want `determinism: rand.Intn draws from the shared global source`
}

func seededRand(r *rand.Rand) int {
	return r.Intn(8) // ok: per-instance seeded source
}

func mapAppend(m map[int]int) []int {
	var out []int
	for k := range m { // want `map iteration order feeds append`
		out = append(out, k)
	}
	return out
}

func mapAppendSorted(m map[int]int) []int {
	var out []int
	for k := range m { // ok: collect-then-sort washes the order out
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

func mapSend(m map[int]int, ch chan int) {
	for k := range m { // want `map iteration order feeds a channel send`
		ch <- k
	}
}

func mapTrace(m map[int]int, c *trace.Collector) {
	for k := range m { // want `map iteration order feeds trace.Event`
		c.Event("page", k)
	}
}

func sliceRange(pages []int, ch chan int) {
	for _, p := range pages { // ok: slice iteration is ordered
		ch <- p
	}
}

// engine mimics the event kernel's scheduling surface: same-timestamp
// events fire in scheduling (seq) order, so reaching these sinks from a
// map range bakes the map's iteration order into the simulated schedule.
type engine struct{}

func (e *engine) AtRecord(t int64, r int) {}
func (e *engine) After(d int64, f func()) {}
func (e *engine) Post(lane int, r int)    {}

func mapSchedule(m map[int]int, e *engine) {
	for k := range m { // want `map iteration order feeds the event queue via sim.AtRecord`
		e.AtRecord(int64(k), k)
	}
}

func mapPost(m map[int]int, e *engine) {
	for k := range m { // want `map iteration order feeds the event queue via sim.Post`
		e.Post(0, k)
	}
}

func sliceSchedule(keys []int, e *engine) {
	for _, k := range keys { // ok: slice iteration is ordered
		e.AtRecord(int64(k), k)
	}
}
