package sim

// Free-list stand-ins for poolcheck fixtures: the analyzer matches
// Get/Put by receiver type name in a package named sim, so these mirror
// the repro types' method sets without the channel plumbing.

// BytePool recycles byte-slice payloads.
type BytePool struct{ free chan []byte }

// Get vends a zero-length slice with recycled capacity.
func (p *BytePool) Get() []byte {
	select {
	case b := <-p.free:
		return b[:0]
	default:
		return make([]byte, 0, 64)
	}
}

// Put recycles a slice previously vended by Get.
func (p *BytePool) Put(b []byte) {
	select {
	case p.free <- b:
	default:
	}
}

// SlotPool recycles int32 slot vectors.
type SlotPool struct{ free chan []int32 }

// Get vends a zero-length vector with recycled capacity.
func (p *SlotPool) Get() []int32 {
	select {
	case v := <-p.free:
		return v[:0]
	default:
		return make([]int32, 0, 16)
	}
}

// Put recycles a vector previously vended by Get.
func (p *SlotPool) Put(v []int32) {
	select {
	case p.free <- v:
	default:
	}
}

// Record is the typed event payload carrying pooled vectors.
type Record struct {
	Kind  int
	Chip  int
	Data  []byte
	Slots []int32
}
