package sim

// Event-kernel stand-ins for shardcheck fixtures: the analyzer matches
// Engine/ShardedEngine methods by receiver type name in a package
// named sim, so these mirror the scheduling surface without the queue.

// Micros is simulated time.
type Micros int64

// Event is a closure event.
type Event func(*Engine)

// Handler dispatches one typed record.
type Handler func(*Engine, Record)

// Engine is one shard's event queue.
type Engine struct{ now Micros }

// Now returns the shard clock.
func (e *Engine) Now() Micros { return e.now }

// At schedules a closure event at absolute time t.
func (e *Engine) At(t Micros, ev Event) {}

// After schedules a closure event d after now.
func (e *Engine) After(d Micros, ev Event) {}

// AtRecord schedules a typed record at absolute time t.
func (e *Engine) AtRecord(t Micros, r Record) {}

// AfterRecord schedules a typed record d after now.
func (e *Engine) AfterRecord(d Micros, r Record) {}

// Register installs the handler for a record kind.
func (e *Engine) Register(kind int, h Handler) {}

// ShardedEngine runs shards under a lookahead barrier.
type ShardedEngine struct{ shards []*Engine }

// NewSharded returns a ShardedEngine with n shards.
func NewSharded(n int, lookahead Micros) *ShardedEngine {
	se := &ShardedEngine{shards: make([]*Engine, n)}
	for i := range se.shards {
		se.shards[i] = &Engine{}
	}
	return se
}

// Shard returns shard i's engine.
func (se *ShardedEngine) Shard(i int) *Engine { return se.shards[i] }

// Send stages a typed record for another shard.
func (se *ShardedEngine) Send(from, to int, at Micros, r Record) {}

// SendEvent stages a closure event for another shard.
func (se *ShardedEngine) SendEvent(from, to int, at Micros, ev Event) {}

// Horizon returns the furthest clock across shards.
func (se *ShardedEngine) Horizon() Micros { return 0 }
