// Package pooltest exercises the poolcheck analyzer: every way a
// pooled payload's lifetime can be violated (use-after-Put, double-Put,
// foreign-slice Put, stale aliases through locals, record fields, and
// closure captures) next to the legitimate recycle idioms used by the
// ssd coordinator and shard lanes.
package pooltest

import "internal/sim"

func useAfterPut(p *sim.BytePool) byte {
	buf := p.Get()
	buf = append(buf, 1)
	p.Put(buf)
	return buf[0] // want `poolcheck: buf used after Put`
}

func doublePut(p *sim.BytePool) {
	buf := p.Get()
	p.Put(buf)
	p.Put(buf) // want `poolcheck: buf recycled twice \(double-Put\)`
}

func foreignPut(p *sim.BytePool) {
	buf := make([]byte, 8)
	p.Put(buf) // want `poolcheck: buf was not vended by a pool Get`
}

func foreignLiteralPut(p *sim.SlotPool) {
	vec := []int32{1, 2}
	p.Put(vec) // want `poolcheck: vec was not vended by a pool Get`
}

func aliasUseAfterPut(p *sim.BytePool) byte {
	buf := p.Get()
	alias := buf
	p.Put(alias)
	return buf[0] // want `poolcheck: buf used after Put`
}

func fieldUseAfterPut(p *sim.BytePool) byte {
	buf := p.Get()
	r := sim.Record{Data: buf}
	p.Put(buf)
	return r.Data[0] // want `poolcheck: r.Data used after Put`
}

func fieldDoublePut(p *sim.SlotPool) {
	var r sim.Record
	r.Slots = p.Get()
	p.Put(r.Slots)
	p.Put(r.Slots) // want `poolcheck: r.Slots recycled twice \(double-Put\)`
}

func captureAfterPut(p *sim.BytePool, sched func(func())) {
	buf := p.Get()
	p.Put(buf)
	sched(func() { _ = buf[0] }) // want `poolcheck: closure captures buf after Put`
}

func putAcrossBranchJoin(p *sim.BytePool, c bool) byte {
	buf := p.Get()
	if c {
		p.Put(buf)
	}
	return buf[0] // want `poolcheck: buf used after Put`
}

// --- legitimate idioms: none of these may be reported -----------------

// coordinatorCopy is the ssd coordinator shape: grow a pooled buffer
// with append, hand it off inside a record, never touch it again.
func coordinatorCopy(p *sim.BytePool, data []byte, post func(sim.Record)) {
	copied := append(p.Get(), data...)
	post(sim.Record{Kind: 1, Data: copied})
}

// laneRecycle is the shard-lane shape: the payload arrives as a record
// field of unknown provenance and is recycled exactly once per path.
func laneRecycle(p *sim.BytePool, q *sim.SlotPool, r sim.Record) {
	switch r.Kind {
	case 1:
		p.Put(r.Data)
	case 2:
		q.Put(r.Slots)
	case 3:
		q.Put(r.Slots)
	}
}

// putOnReturnPath recycles on an early-exit path only; the fallthrough
// path still owns the buffer.
func putOnReturnPath(p *sim.BytePool, c bool) byte {
	buf := p.Get()
	buf = append(buf, 2)
	if c {
		p.Put(buf)
		return 0
	}
	return buf[0] // ok: the Put path returned
}

// loopRecycle vends a fresh buffer every iteration; the Put of the
// previous iteration's buffer does not poison the next.
func loopRecycle(p *sim.BytePool, n int) {
	for i := 0; i < n; i++ {
		buf := p.Get()
		buf = append(buf, byte(i))
		p.Put(buf)
	}
}

// maybeForeign is not foreign on every path, so the Put stays silent
// (must-foreign, not may-foreign).
func maybeForeign(p *sim.BytePool, c bool) {
	buf := p.Get()
	if c {
		buf = make([]byte, 4)
	}
	p.Put(buf)
}
