// Package allowtest exercises the secvet:allow directive machinery:
// suppression on the same line and the line above, wildcard and
// wrong-rule directives, and the mandatory reason string.
package allowtest

import "time"

func reasoned() int64 {
	//secvet:allow determinism -- fixture: wall-clock explicitly waived
	return time.Now().UnixNano()
}

func sameLine() int64 {
	return time.Now().UnixNano() //secvet:allow determinism -- fixture: same-line directive
}

func wildcard() int64 {
	//secvet:allow * -- fixture: wildcard waives every rule
	return time.Now().UnixNano()
}

func wrongRule() int64 {
	//secvet:allow aliasing -- fixture: naming another rule does not waive this one
	return time.Now().UnixNano() // want `determinism: time.Now is wall-clock`
}

func missingReason() int64 {
	//secvet:allow determinism // want `allowsyntax: secvet:allow directive needs a reason`
	return time.Now().UnixNano() // want `determinism: time.Now is wall-clock`
}
