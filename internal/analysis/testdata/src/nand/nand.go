// Package nand is a self-contained stand-in for repro/internal/nand:
// just enough surface for the secvet fixtures to typecheck. The
// analyzers match types by package name ("nand") and type name, so
// this fake triggers the same rules as the real package.
package nand

// PageAddr addresses one page on the chip.
type PageAddr struct{ Block, Page int }

// ReadResult mirrors the real contract: Data aliases the chip's
// per-read scratch buffer.
type ReadResult struct {
	Data    []byte
	Latency int
}

// CloneData is the documented copy helper.
func (r ReadResult) CloneData() []byte {
	if r.Data == nil {
		return nil
	}
	return append([]byte(nil), r.Data...)
}

// Chip mimics the real chip's operation set.
type Chip struct{ scratch []byte }

func (c *Chip) Read(a PageAddr, dep int) (ReadResult, error) {
	return ReadResult{Data: c.scratch}, nil
}
func (c *Chip) Program(a PageAddr, data []byte, dep int) (int, error) { return 0, nil }
func (c *Chip) Erase(block, dep int) (int, error)                     { return 0, nil }
func (c *Chip) PLock(a PageAddr, dep int) (int, error)                { return 0, nil }
func (c *Chip) BLock(block, dep int) (int, error)                     { return 0, nil }
func (c *Chip) Scrub(a PageAddr, dep int) (int, error)                { return 0, nil }
func (c *Chip) Copyback(src, dst PageAddr, dep int) (int, error)      { return 0, nil }
func (c *Chip) IsPageLocked(a PageAddr, dep int) (bool, error)        { return false, nil }
func (c *Chip) IsBlockLocked(block, dep int) (bool, error)            { return false, nil }
