// Package ftl reproduces the page-status-table shape the lockcheck
// status-write rule guards: only setStatus may write a []PageStatus
// element, because it is the single point that keeps the per-status
// population counters exact.
package ftl

// PageStatus mirrors the real FTL's page state enum.
type PageStatus uint8

// The states the fixture needs.
const (
	StatusFree PageStatus = iota
	StatusValid
	statusCount
)

type table struct {
	status []PageStatus
	counts [statusCount]int
}

func (t *table) setStatus(p int, s PageStatus) {
	t.counts[t.status[p]]--
	t.status[p] = s // ok: the single transition point
	t.counts[s]++
}

func (t *table) directWrite(p int) {
	t.status[p] = StatusValid // want `lockcheck: page-status write bypasses the status-table API`
}

func (t *table) readBack(p int) PageStatus {
	return t.status[p] // ok: reads are unrestricted
}
