// Package allowstaletest exercises stale-waiver detection: directives
// that suppress a finding earn their keep, directives that suppress
// nothing are reported, and unknown rule names are called out. This
// fixture runs under the full analyzer suite so even wildcard waivers
// are judgeable.
package allowstaletest

import "time"

// earning suppresses a real determinism finding: not stale.
func earning() int64 {
	//secvet:allow determinism -- fixture: wall-clock explicitly waived
	return time.Now().UnixNano()
}

// rotted waives a rule on a line with nothing to waive.
func rotted() int64 {
	//secvet:allow determinism -- fixture: the finding below was since fixed // want `allowstale: stale waiver: //secvet:allow determinism suppresses no finding; delete it`
	return 42
}

// rottedWildcard is a wildcard with nothing under it; the full suite
// ran, so it is judgeable.
func rottedWildcard() int64 {
	//secvet:allow * -- fixture: once covered a finding // want `allowstale: stale waiver: //secvet:allow \* suppresses no finding`
	return 7
}

// typo names a rule that does not exist, so it can never suppress.
func typo() int64 {
	//secvet:allow determinsm -- fixture: misspelled rule // want `allowstale: secvet:allow names unknown rule "determinsm"`
	return time.Now().UnixNano() // want `determinism: time.Now is wall-clock`
}

// halfEarning names two rules but only one fires: the directive still
// suppresses something, so it is not stale.
func halfEarning() int64 {
	//secvet:allow determinism,aliasing -- fixture: one of two rules still fires
	return time.Now().UnixNano()
}
