// Package plain exercises the determinism analyzer outside the
// simulation package paths: the wall-clock and global-rand rules still
// apply module-wide, but the map-range ordering rule does not.
package plain

import "time"

func wallClock() int64 {
	return time.Now().UnixNano() // want `determinism: time.Now is wall-clock`
}

func mapAppend(m map[int]int) []int {
	var out []int
	for k := range m { // ok: not a simulation package path
		out = append(out, k)
	}
	return out
}
