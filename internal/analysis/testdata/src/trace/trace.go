// Package trace is a stand-in for repro/internal/trace with the
// Collector surface the tracecheck and determinism fixtures exercise.
package trace

import "audit"

// Collector mimics the real collector interface's method set.
type Collector struct{ on bool }

// Enabled reports whether events are recorded.
func (c *Collector) Enabled() bool { return c.on }

// Event records one event.
func (c *Collector) Event(name string, args ...any) {}

// Counter records a numeric sample.
func (c *Collector) Counter(name string, v int64) {}

// Audit records one provenance event.
func (c *Collector) Audit(ev audit.Event) {}

// Invalidated records one invalidation.
func (c *Collector) Invalidated(page uint32, secure bool, at int64) {}
