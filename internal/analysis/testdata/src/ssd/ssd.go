// Package ssd is the fixture stand-in for the device model's Config
// surface, matched by package name by shardcheck.
package ssd

import (
	"errors"

	"fault"
)

// Config mirrors the device configuration fields shardcheck reasons
// about.
type Config struct {
	Channels      int
	ShardChannels int
	Seed          int64
	Fault         fault.Config
}

// SSD is the device stand-in.
type SSD struct{ cfg Config }

// New rejects the ShardChannels+fault combination like the real
// constructor.
func New(cfg Config) (*SSD, error) {
	if cfg.ShardChannels > 0 && cfg.Fault.Enabled() {
		return nil, errors.New("ssd: sharded execution requires fault injection disabled")
	}
	return &SSD{cfg: cfg}, nil
}
