package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// buildFromBody parses and typechecks a function body and returns its
// CFG. Snippets must be self-contained (no imports).
func buildFromBody(t *testing.T, body string) *CFG {
	t.Helper()
	src := "package p\n\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "f.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := NewInfo()
	conf := types.Config{Error: func(error) {}}
	conf.Check("p", fset, []*ast.File{file}, info)
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == "f" {
			return BuildCFG(fd.Body, info)
		}
	}
	t.Fatal("no func f")
	return nil
}

// TestBuildCFG pins the block structure produced for each control
// construct. The rendering is CFG.String(): one line per block,
// "bID[node-count]: successors", conditional successors marked +/-.
func TestBuildCFG(t *testing.T) {
	tests := []struct {
		name, body, want string
	}{
		{
			name: "linear",
			body: "x := 1\n_ = x",
			want: "b0[2]: b1\nb1[0]:\nb2[0]:\n",
		},
		{
			name: "if-else",
			body: "x := 1\nif x > 0 {\nx = 2\n} else {\nx = 3\n}\n_ = x",
			want: "b0[2]: b3+ b5-\nb1[0]:\nb2[1]: b1\nb3[1]: b2\nb4[0]:\nb5[1]: b2\nb6[0]:\nb7[0]:\n",
		},
		{
			name: "if-no-else",
			body: "x := 1\nif x > 0 {\nx = 2\n}\n_ = x",
			want: "b0[2]: b3+ b2-\nb1[0]:\nb2[1]: b1\nb3[1]: b2\nb4[0]:\nb5[0]:\n",
		},
		{
			name: "for",
			body: "s := 0\nfor i := 0; i < 3; i++ {\ns += i\n}\n_ = s",
			want: "b0[2]: b2\nb1[0]:\nb2[1]: b6+ b4-\nb3[0]:\nb4[1]: b1\nb5[1]: b2\nb6[1]: b5\nb7[0]:\nb8[0]:\nb9[0]:\n",
		},
		{
			name: "range",
			body: "xs := []int{1}\nt := 0\nfor _, v := range xs {\nt += v\n}\n_ = t",
			want: "b0[3]: b2\nb1[0]:\nb2[0]: b5 b4\nb3[0]:\nb4[1]: b1\nb5[2]: b2\nb6[0]:\nb7[0]:\n",
		},
		{
			name: "switch-fallthrough-default",
			body: "x := 1\nswitch x {\ncase 1:\nx = 2\nfallthrough\ncase 2:\nx = 3\ndefault:\nx = 4\n}\n_ = x",
			want: "b0[2]: b3 b4 b5\nb1[0]:\nb2[1]: b1\nb3[2]: b4\nb4[2]: b2\nb5[1]: b2\nb6[0]:\nb7[0]:\nb8[0]:\nb9[0]:\n",
		},
		{
			name: "switch-no-default",
			body: "x := 1\nswitch x {\ncase 1:\nx = 2\n}\n_ = x",
			want: "b0[2]: b3 b2\nb1[0]:\nb2[1]: b1\nb3[2]: b2\nb4[0]:\nb5[0]:\n",
		},
		{
			name: "select",
			body: "c := make(chan int)\nselect {\ncase v := <-c:\n_ = v\ncase c <- 1:\n}\n_ = c",
			want: "b0[1]: b3 b5\nb1[0]:\nb2[1]: b1\nb3[2]: b2\nb4[0]:\nb5[1]: b2\nb6[0]:\nb7[0]:\n",
		},
		{
			name: "defer-panic",
			body: "defer println(\"x\")\nx := 1\nif x > 1 {\npanic(\"bad\")\n}\n_ = x",
			// b1 (exit) holds the DeferredCall; the panic block edges
			// straight to exit; b4 is the dead code after the panic.
			want: "b0[3]: b3+ b2-\nb1[1]:\nb2[1]: b1\nb3[1]: b1\nb4[0]: b2\nb5[0]:\nb6[0]:\n",
		},
		{
			name: "early-return",
			body: "x := 1\nif x > 0 {\nreturn\n}\n_ = x",
			want: "b0[2]: b3+ b2-\nb1[0]:\nb2[1]: b1\nb3[1]: b1\nb4[0]: b2\nb5[0]:\nb6[0]:\n",
		},
		{
			name: "labeled-break",
			body: "x := 0\nouter:\nfor i := 0; i < 3; i++ {\nfor j := 0; j < 3; j++ {\nif j == 1 {\nbreak outer\n}\nx++\n}\n}\n_ = x",
			want: "b0[1]: b2\nb1[0]:\nb2[1]: b4\nb3[0]:\nb4[1]: b8+ b6-\nb5[0]:\nb6[1]: b1\nb7[1]: b4\nb8[1]: b9\nb9[1]: b13+ b11-\nb10[0]:\nb11[0]: b7\nb12[1]: b9\nb13[1]: b15+ b14-\nb14[1]: b12\nb15[0]: b6\nb16[0]: b14\nb17[0]:\nb18[0]:\nb19[0]:\nb20[0]:\nb21[0]:\nb22[0]:\n",
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got := buildFromBody(t, tc.body).String()
			if got != tc.want {
				t.Errorf("CFG mismatch\n--- got ---\n%s--- want ---\n%s", got, tc.want)
			}
		})
	}
}

// TestCFGEmptySelect checks that select{} has no path to the exit: the
// statement blocks forever, so code after it is unreachable.
func TestCFGEmptySelect(t *testing.T) {
	cfg := buildFromBody(t, "x := 1\n_ = x\nselect {}\nx = 2")
	// The exit block must have the fall-off edge only from the dead
	// block after the select, which itself has no predecessors: a
	// forward reachability from entry must not reach any block holding
	// the trailing assignment.
	reach := map[int]bool{}
	var walk func(b *Block)
	walk = func(b *Block) {
		if reach[b.ID] {
			return
		}
		reach[b.ID] = true
		for _, e := range b.Succs {
			walk(e.To)
		}
	}
	walk(cfg.Entry())
	for _, b := range cfg.Blocks {
		if !reach[b.ID] {
			continue
		}
		for _, n := range b.Nodes {
			a, ok := n.(*ast.AssignStmt)
			if !ok || a.Tok != token.ASSIGN {
				continue
			}
			if id, ok := a.Lhs[0].(*ast.Ident); ok && id.Name == "x" {
				t.Errorf("assignment after select{} is reachable in block b%d", b.ID)
			}
		}
	}
	if reach[cfg.Exit().ID] {
		t.Error("exit block reachable across select{}")
	}
}

// TestInspectShallow checks that the shallow walk visits a function
// literal node without descending into its body, and unwraps the
// synthetic CFG nodes.
func TestInspectShallow(t *testing.T) {
	cfg := buildFromBody(t, "xs := []int{1}\nfor _, v := range xs {\ngo func() { println(v) }()\n}")
	sawLit, sawInnerCall, sawBind := false, false, false
	for _, b := range cfg.Blocks {
		for _, n := range b.Nodes {
			InspectShallow(n, func(m ast.Node) bool {
				switch m := m.(type) {
				case *ast.FuncLit:
					sawLit = true
				case *RangeBind:
					sawBind = true
				case *ast.CallExpr:
					if id, ok := m.Fun.(*ast.Ident); ok && id.Name == "println" {
						sawInnerCall = true
					}
				}
				return true
			})
		}
	}
	if !sawLit {
		t.Error("InspectShallow never visited the FuncLit node")
	}
	if !sawBind {
		t.Error("InspectShallow never visited the RangeBind node")
	}
	if sawInnerCall {
		t.Error("InspectShallow descended into the FuncLit body")
	}
}
