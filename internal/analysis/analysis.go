// Package analysis is the secvet static-analysis suite: a set of
// custom analyzers that mechanically enforce the simulator's
// determinism, aliasing, and lock-state invariants, plus the small
// framework and package loader they run on.
//
// The framework deliberately mirrors the golang.org/x/tools/go/analysis
// API surface (Analyzer, Pass, Diagnostic, Reportf, analysistest golden
// files) so the analyzers can be ported to an x/tools multichecker
// verbatim once the module is allowed third-party dependencies. Until
// then everything here is standard library only: packages are
// enumerated with `go list -deps -export -json`, parsed with go/parser,
// and type-checked with go/types against the compiler export data the
// build cache already holds, so the tool works fully offline.
//
// Diagnostics can be suppressed per line with an allow comment:
//
//	//secvet:allow <rule>[,<rule>...] -- <reason>
//
// placed on the flagged line or on the line directly above it. The
// reason string is mandatory; an allow comment without one is itself a
// diagnostic. See DESIGN.md §6 for the catalogue of enforced rules and
// the bugs that motivated them.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer describes one secvet check.
type Analyzer struct {
	// Name identifies the rule in diagnostics and allow comments
	// (lower-case, no spaces).
	Name string
	// Doc is a one-paragraph description shown by `secvet -help` and
	// exported to `go vet -vettool` flag metadata.
	Doc string
	// Run applies the check to one package.
	Run func(*Pass) error
}

// A Pass presents one package to an Analyzer.Run.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's parsed syntax trees (including in-package
	// test files when the loader ran with tests enabled).
	Files []*ast.File
	// PkgPath is the canonical import path ("repro/internal/ftl" for the
	// test variant "repro/internal/ftl [repro/internal/ftl.test]").
	PkgPath string
	Pkg     *types.Package
	Info    *types.Info

	diags *[]Diagnostic
}

// A Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Rule, d.Message)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:     p.Fset.Position(pos),
		Rule:    p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// --- shared type-shape helpers ------------------------------------------

// Callee resolves the *types.Func a call expression invokes (method,
// package-level function, or interface method). It returns nil for
// builtins, conversions, and indirect calls through function values.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// IsBuiltin reports whether the call invokes the named builtin.
func IsBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}

// NamedType unwraps pointers and aliases and returns the named type of
// t, or nil.
func NamedType(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Named:
			return u
		case *types.Alias:
			t = types.Unalias(t)
		default:
			return nil
		}
	}
}

// IsNamed reports whether t (possibly behind pointers) is the named
// type pkgName.typeName. Matching is by package *name* rather than full
// import path so the rule applies equally to the real module packages
// and to the self-contained analysistest fixtures.
func IsNamed(t types.Type, pkgName, typeName string) bool {
	n := NamedType(t)
	if n == nil || n.Obj() == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Name() == pkgName && n.Obj().Name() == typeName
}

// FuncFromPackage reports whether fn is a package-level function of the
// package with the given import path (e.g. "time", "math/rand").
func FuncFromPackage(fn *types.Func, pkgPath string) bool {
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// ReceiverNamed returns the named receiver type of a method, or nil for
// package-level functions.
func ReceiverNamed(fn *types.Func) *types.Named {
	if fn == nil {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	return NamedType(sig.Recv().Type())
}

// MethodOn reports whether fn is a method named methodName on the type
// pkgName.typeName (value or pointer receiver, or interface method).
func MethodOn(fn *types.Func, pkgName, typeName, methodName string) bool {
	if fn == nil || fn.Name() != methodName {
		return false
	}
	n := ReceiverNamed(fn)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Name() == pkgName && n.Obj().Name() == typeName
}
