package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestTracecheck(t *testing.T) {
	analysistest.Run(t, "testdata",
		[]*analysis.Analyzer{analysis.Tracecheck}, "tracetest")
}
