package analysis

import (
	"go/ast"
	"strings"
)

// fmtAllocFuncs are the fmt functions that allocate a string per call.
var fmtAllocFuncs = map[string]bool{
	"Sprintf": true, "Sprint": true, "Sprintln": true, "Errorf": true,
}

// Tracecheck keeps the tracing layer's disabled-by-default promise: the
// Nop collector makes every producer call a single predictable branch,
// but only if the *arguments* are free too. A fmt.Sprintf evaluated in
// the argument list of a trace.Collector method allocates and formats
// even when the collector is a Nop — exactly the hidden hot-path cost
// PR 1's design ruled out.
//
// The same discipline applies to the audit ledger: producers build an
// audit.Event per telemetry call (Collector.Audit, Ledger.Record), and
// a fmt.Sprintf evaluated inside that event literal pays its cost even
// when the event is dropped by the Nop collector.
//
// Calls already guarded by the collector's Enabled() gate (directly or
// via the cached traceOn boolean the producers keep) are exempt: behind
// the gate the cost is only paid when tracing is on.
var Tracecheck = &Analyzer{
	Name: "tracecheck",
	Doc: "flag fmt.Sprintf-style allocation in trace.Collector and audit.Ledger call " +
		"arguments outside an Enabled()/traceOn guard",
	Run: runTracecheck,
}

func runTracecheck(pass *Pass) error {
	for _, f := range pass.Files {
		// guarded tracks the if-statement bodies protected by an
		// Enabled()/traceOn condition, by position extent.
		var guards []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			ifs, ok := n.(*ast.IfStmt)
			if ok && isTraceGuard(pass, ifs.Cond) {
				guards = append(guards, ifs.Body)
			}
			return true
		})
		inGuard := func(n ast.Node) bool {
			for _, g := range guards {
				if n.Pos() >= g.Pos() && n.End() <= g.End() {
					return true
				}
			}
			return false
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || inGuard(call) {
				return true
			}
			recv := telemetryReceiver(pass, call)
			if recv == "" {
				return true
			}
			article := "a"
			if strings.HasPrefix(recv, "a") {
				article = "an"
			}
			for _, arg := range call.Args {
				ast.Inspect(arg, func(an ast.Node) bool {
					inner, ok := an.(*ast.CallExpr)
					if !ok {
						return true
					}
					fn := Callee(pass.Info, inner)
					if fn != nil && FuncFromPackage(fn, "fmt") && fmtAllocFuncs[fn.Name()] {
						pass.Reportf(inner.Pos(),
							"fmt.%s allocates in %s %s call argument even when tracing is off: "+
								"guard the call with Enabled()/traceOn or precompute the value "+
								"outside the hot path", fn.Name(), article, recv)
					}
					return true
				})
			}
			return true
		})
	}
	return nil
}

// telemetryReceiver reports which telemetry surface the call invokes a
// method on: the trace.Collector interface (or its Recorder/Nop
// implementations) or the audit.Ledger. It returns the qualified
// receiver name for diagnostics, or "" for unrelated calls.
func telemetryReceiver(pass *Pass, call *ast.CallExpr) string {
	fn := Callee(pass.Info, call)
	if fn == nil {
		return ""
	}
	n := ReceiverNamed(fn)
	if n == nil || n.Obj().Pkg() == nil {
		return ""
	}
	switch n.Obj().Pkg().Name() {
	case "trace":
		switch n.Obj().Name() {
		case "Collector", "Recorder", "Nop":
			return "trace." + n.Obj().Name()
		}
	case "audit":
		if n.Obj().Name() == "Ledger" {
			return "audit.Ledger"
		}
	}
	return ""
}

// isTraceGuard recognizes the producer idiom that gates trace work:
// a condition mentioning a call to an Enabled method or a boolean
// named traceOn (the cached Enabled() result every producer keeps).
func isTraceGuard(pass *Pass, cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if fn := Callee(pass.Info, n); fn != nil && fn.Name() == "Enabled" {
				found = true
				return false
			}
		case *ast.Ident:
			if n.Name == "traceOn" {
				found = true
				return false
			}
		case *ast.SelectorExpr:
			if n.Sel.Name == "traceOn" {
				found = true
				return false
			}
		}
		return !found
	})
	return found
}
