package analysis

import (
	"go/ast"
	"go/types"
	"regexp"
)

// SimPackagePattern matches the import paths of simulation packages,
// where every run must be a pure function of the seed: the map-range
// ordering rule applies only inside them. Drivers may override it via
// the -simpkgs flag.
var SimPackagePattern = regexp.MustCompile(
	`(^|/)internal/(sim|ftl|ssd|nand|fault|sanitize|experiment|vertrace|chipchar)(/|$)`)

// globalRandFuncs are the math/rand package-level functions backed by
// the shared global source. Constructors (New, NewSource, NewZipf) are
// fine: per-instance *rand.Rand seeded from config is the required
// idiom (see nand.WithSeed, workload.Config.Seed).
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true,
	"NormFloat64": true, "Perm": true, "Shuffle": true, "Seed": true,
	"Read": true,
}

// Determinism enforces that simulation results are a pure function of
// the configured seed. It flags:
//
//   - time.Now anywhere in the module (simulated time is sim.Micros;
//     wall-clock reads in profiling code and CLI progress output carry a
//     //secvet:allow determinism directive with the reason),
//   - math/rand global-source functions (rand.Intn, rand.Float64, ...)
//     anywhere in the module, and
//   - in simulation packages, `for range` over a map whose body appends
//     to a slice, sends on a channel, or feeds the trace/metrics layer —
//     the exact shape of the ftl.DrainPending bug PR 2 fixed, where map
//     iteration order leaked into the simulated command schedule, and
//   - in simulation packages, `for range` over a map whose body schedules
//     through the event kernel (sim.At/After/AtRecord/AfterRecord, the
//     sharded engine's Send/SendEvent, or a Lanes.Post) — event sequence
//     numbers are assigned at scheduling time, so map order would decide
//     FIFO tiebreaks and shard-merge order.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc: "flag wall-clock reads, global math/rand, and order-sensitive map iteration " +
		"that would make a simulation run depend on anything but its seed",
	Run: runDeterminism,
}

func runDeterminism(pass *Pass) error {
	inSim := SimPackagePattern.MatchString(pass.PkgPath)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkForbiddenCall(pass, n)
			case *ast.RangeStmt:
				if inSim {
					checkMapRange(pass, f, n)
				}
			}
			return true
		})
	}
	return nil
}

// schedulingSinks are the sim-package entry points that assign event
// ordering at call time: same-timestamp events fire in scheduling order
// (seq), staged cross-shard sends merge by per-source sequence, and
// Lanes.Post enqueues into a FIFO worker. Reaching any of them from a
// map range makes the map's iteration order part of the simulated
// schedule.
var schedulingSinks = map[string]bool{
	"At": true, "After": true, "AtRecord": true, "AfterRecord": true,
	"Send": true, "SendEvent": true, "Post": true,
}

// sortFuncs are the sort/slices entry points that normalize order.
var sortFuncs = map[string]bool{
	"Sort": true, "Slice": true, "Stable": true, "SliceStable": true,
	"SortFunc": true, "SortStableFunc": true, "Strings": true, "Ints": true,
}

// sortedAfter reports whether the slice variable appendCall appends to
// is handed to a sort.*/slices.Sort* call after the map range ends, so
// the iteration-order dependence is washed out before use.
func sortedAfter(pass *Pass, file *ast.File, rng *ast.RangeStmt, appendCall *ast.CallExpr) bool {
	if len(appendCall.Args) == 0 {
		return false
	}
	id, ok := ast.Unparen(appendCall.Args[0]).(*ast.Ident)
	if !ok {
		return false
	}
	target := pass.Info.Uses[id]
	if target == nil {
		target = pass.Info.Defs[id]
	}
	if target == nil {
		return false
	}
	sorted := false
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= rng.End() {
			return true
		}
		fn := Callee(pass.Info, call)
		if fn == nil || fn.Pkg() == nil || !sortFuncs[fn.Name()] {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if aid, ok := ast.Unparen(arg).(*ast.Ident); ok && pass.Info.Uses[aid] == target {
				sorted = true
				return false
			}
		}
		return true
	})
	return sorted
}

func checkForbiddenCall(pass *Pass, call *ast.CallExpr) {
	fn := Callee(pass.Info, call)
	if fn == nil {
		return
	}
	switch {
	case FuncFromPackage(fn, "time") && fn.Name() == "Now":
		pass.Reportf(call.Pos(),
			"time.Now is wall-clock: simulation state must advance on sim.Micros only "+
				"(allow with //secvet:allow determinism -- <reason> for profiling/CLI output)")
	case FuncFromPackage(fn, "math/rand") && globalRandFuncs[fn.Name()]:
		pass.Reportf(call.Pos(),
			"rand.%s draws from the shared global source: use a per-instance seeded *rand.Rand "+
				"plumbed through the config (cf. nand.WithSeed, workload.Config.Seed)", fn.Name())
	}
}

// checkMapRange flags map iterations whose body emits into an ordered
// sink, so the map's random iteration order becomes observable output.
// The collect-then-sort idiom is exempt: an append target that is later
// passed to sort.*/slices.Sort* has its order washed out — that is the
// shape of the DrainPending fix itself.
func checkMapRange(pass *Pass, file *ast.File, rng *ast.RangeStmt) {
	t := pass.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			pass.Reportf(rng.For,
				"map iteration order feeds a channel send at %s: iterate a sorted key slice instead "+
					"(the ftl.DrainPending bug shape)", pass.Fset.Position(n.Pos()))
			return false
		case *ast.CallExpr:
			if IsBuiltin(pass.Info, n, "append") {
				if !sortedAfter(pass, file, rng, n) {
					pass.Reportf(rng.For,
						"map iteration order feeds append at %s: sort the result before use, or iterate "+
							"a sorted key slice (the ftl.DrainPending bug shape)", pass.Fset.Position(n.Pos()))
				}
				return false
			}
			if fn := Callee(pass.Info, n); fn != nil && fn.Pkg() != nil {
				if name := fn.Pkg().Name(); name == "trace" || name == "metrics" {
					pass.Reportf(rng.For,
						"map iteration order feeds %s.%s at %s: trace/metrics streams must be "+
							"deterministic across runs", name, fn.Name(), pass.Fset.Position(n.Pos()))
					return false
				}
				if fn.Pkg().Name() == "sim" && schedulingSinks[fn.Name()] {
					pass.Reportf(rng.For,
						"map iteration order feeds the event queue via sim.%s at %s: event sequence "+
							"numbers are assigned at scheduling time, so iterate a sorted key slice",
						fn.Name(), pass.Fset.Position(n.Pos()))
					return false
				}
			}
		}
		return true
	})
}
