package analysis

// Control-flow graph construction over go/ast, the substrate of the v2
// dataflow analyzers (poolcheck, shardcheck, auditcheck). The graph is
// intraprocedural and deliberately simple: basic blocks hold "simple"
// statements and the expressions of branch conditions, in evaluation
// order; compound statements (if/for/range/switch/select) contribute
// edges, not nodes. Function literals are NOT inlined — each FuncLit
// body is its own CFG, built separately by the analyzers — so a walk
// over a block's nodes must not descend into nested literals (see
// InspectShallow).
//
// Two synthetic node types paper over go/ast shapes that carry implicit
// assignments: RangeBind (the per-iteration key/value binding of a
// range loop) and DeferredCall (a deferred call's execution at function
// exit; the DeferStmt itself appears in-place for its argument
// evaluation). Both satisfy ast.Node.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// A CFG is the control-flow graph of one function body.
type CFG struct {
	// Blocks[0] is the entry block, Blocks[1] the exit block. Returns,
	// panics, and the fall-off-the-end path all lead to the exit block,
	// which holds the DeferredCall nodes (LIFO) and nothing else.
	Blocks []*Block
}

// Entry returns the function's entry block.
func (c *CFG) Entry() *Block { return c.Blocks[0] }

// Exit returns the function's exit block.
func (c *CFG) Exit() *Block { return c.Blocks[1] }

// A Block is one basic block: a maximal run of straight-line nodes.
type Block struct {
	ID    int
	Nodes []ast.Node
	Succs []Edge
}

// An Edge is one control transfer. Cond is the branch condition whose
// outcome selects this edge (nil for unconditional transfers and for
// range/select dispatch, which have no boolean condition expression);
// Negated marks the edge taken when Cond evaluates false.
type Edge struct {
	To      *Block
	Cond    ast.Expr
	Negated bool
}

// RangeBind is the synthetic node marking the per-iteration key/value
// binding of a range loop. It sits at the top of the loop's body block,
// so a forward analysis sees Key and Value freshly assigned on every
// iteration (including via back edges).
type RangeBind struct{ Rng *ast.RangeStmt }

func (r *RangeBind) Pos() token.Pos { return r.Rng.For }
func (r *RangeBind) End() token.Pos { return r.Rng.X.End() }

// DeferredCall is the synthetic node for a deferred call's execution.
// The exit block holds one per DeferStmt, innermost-first (LIFO); the
// DeferStmt node itself appears where it executes, covering the
// arguments' evaluation.
type DeferredCall struct{ Call *ast.CallExpr }

func (d *DeferredCall) Pos() token.Pos { return d.Call.Pos() }
func (d *DeferredCall) End() token.Pos { return d.Call.End() }

// BuildCFG constructs the control-flow graph of body. info is used only
// to recognize the panic builtin (a panic terminates its block into the
// exit path, running defers).
func BuildCFG(body *ast.BlockStmt, info *types.Info) *CFG {
	b := &cfgBuilder{cfg: &CFG{}, info: info, labels: map[string]*labelTarget{}}
	entry := b.newBlock()
	exit := b.newBlock()
	b.exit = exit
	b.cur = entry
	b.stmtList(body.List)
	b.jump(exit) // fall off the end
	// Deferred calls execute on every path into the exit, LIFO.
	for i := len(b.defers) - 1; i >= 0; i-- {
		exit.Nodes = append(exit.Nodes, &DeferredCall{Call: b.defers[i]})
	}
	// Resolve forward gotos.
	for _, g := range b.gotos {
		if t, ok := b.labels[g.label]; ok && t.entry != nil {
			g.from.Succs = append(g.from.Succs, Edge{To: t.entry})
		}
	}
	return b.cfg
}

// labelTarget records where a labeled statement's control targets live.
type labelTarget struct {
	entry *Block // goto / loop-head target
	brk   *Block // break L target (loops, switch, select)
	cont  *Block // continue L target (loops only)
}

type pendingGoto struct {
	from  *Block
	label string
}

type cfgBuilder struct {
	cfg    *CFG
	info   *types.Info
	cur    *Block
	exit   *Block
	defers []*ast.CallExpr
	labels map[string]*labelTarget
	gotos  []pendingGoto

	// Innermost enclosing break/continue targets.
	breaks []*Block
	conts  []*Block
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{ID: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

// jump ends the current block with an unconditional edge and leaves the
// builder on a fresh, unreachable block (dead code after return/break
// still parses into blocks; with no predecessors the dataflow never
// seeds them).
func (b *cfgBuilder) jump(to *Block) {
	b.cur.Succs = append(b.cur.Succs, Edge{To: to})
	b.cur = b.newBlock()
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s, "")
	}
}

// stmt translates one statement. label is the enclosing LabeledStmt's
// name when the statement is its direct body ("" otherwise).
func (b *cfgBuilder) stmt(s ast.Stmt, label string) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		// Give the label a landing block so gotos (including backward
		// ones) have a stable target, then translate the body with the
		// label attached for break/continue registration.
		land := b.newBlock()
		b.jump(land)
		b.cur = land
		b.labels[s.Label.Name] = &labelTarget{entry: land}
		b.stmt(s.Stmt, s.Label.Name)

	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init, "")
		}
		b.cur.Nodes = append(b.cur.Nodes, s.Cond)
		head := b.cur
		after := b.newBlock()
		then := b.newBlock()
		head.Succs = append(head.Succs, Edge{To: then, Cond: s.Cond})
		b.cur = then
		b.stmtList(s.Body.List)
		b.jump(after)
		if s.Else != nil {
			els := b.newBlock()
			head.Succs = append(head.Succs, Edge{To: els, Cond: s.Cond, Negated: true})
			b.cur = els
			b.stmt(s.Else, "")
			b.jump(after)
		} else {
			head.Succs = append(head.Succs, Edge{To: after, Cond: s.Cond, Negated: true})
		}
		b.cur = after

	case *ast.ForStmt:
		if s.Init != nil {
			b.stmt(s.Init, "")
		}
		head := b.newBlock()
		b.jump(head)
		b.cur = head
		after := b.newBlock()
		post := b.newBlock() // continue target
		if s.Cond != nil {
			head.Nodes = append(head.Nodes, s.Cond)
		}
		body := b.newBlock()
		head.Succs = append(head.Succs, Edge{To: body, Cond: s.Cond})
		if s.Cond != nil {
			head.Succs = append(head.Succs, Edge{To: after, Cond: s.Cond, Negated: true})
		}
		b.loopBody(body, post, after, label, s.Body.List)
		b.cur = post
		if s.Post != nil {
			b.stmt(s.Post, "")
		}
		b.jump(head)
		b.cur = after

	case *ast.RangeStmt:
		b.cur.Nodes = append(b.cur.Nodes, s.X)
		head := b.newBlock()
		b.jump(head)
		b.cur = head
		after := b.newBlock()
		body := b.newBlock()
		head.Succs = append(head.Succs, Edge{To: body}, Edge{To: after})
		if s.Key != nil || s.Value != nil {
			body.Nodes = append(body.Nodes, &RangeBind{Rng: s})
		}
		b.loopBody(body, head, after, label, s.Body.List)
		b.cur = after

	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		b.switchStmt(s, label)

	case *ast.SelectStmt:
		sel := s
		head := b.cur
		after := b.newBlock()
		if label != "" {
			b.labels[label].brk = after
		}
		b.breaks = append(b.breaks, after)
		anyCase := false
		for _, cl := range sel.Body.List {
			cc := cl.(*ast.CommClause)
			anyCase = true
			blk := b.newBlock()
			head.Succs = append(head.Succs, Edge{To: blk})
			b.cur = blk
			if cc.Comm != nil {
				b.stmt(cc.Comm, "")
			}
			b.stmtList(cc.Body)
			b.jump(after)
		}
		b.breaks = b.breaks[:len(b.breaks)-1]
		if !anyCase {
			// select{} blocks forever: no edge to after.
			b.cur = b.newBlock()
		}
		b.cur = after

	case *ast.ReturnStmt:
		b.cur.Nodes = append(b.cur.Nodes, s)
		b.jump(b.exit)

	case *ast.BranchStmt:
		b.branch(s)

	case *ast.DeferStmt:
		b.cur.Nodes = append(b.cur.Nodes, s)
		b.defers = append(b.defers, s.Call)

	case *ast.EmptyStmt:
		// nothing

	default:
		// Simple statements: assignments, declarations, expressions,
		// sends, go statements, inc/dec.
		b.cur.Nodes = append(b.cur.Nodes, s)
		if b.panics(s) {
			b.jump(b.exit)
		}
	}
}

// loopBody translates a loop body with break/continue targets pushed.
func (b *cfgBuilder) loopBody(body, cont, after *Block, label string, list []ast.Stmt) {
	if label != "" {
		b.labels[label].brk = after
		b.labels[label].cont = cont
	}
	b.breaks = append(b.breaks, after)
	b.conts = append(b.conts, cont)
	b.cur = body
	b.stmtList(list)
	b.jump(cont)
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.conts = b.conts[:len(b.conts)-1]
}

func (b *cfgBuilder) switchStmt(s ast.Stmt, label string) {
	var init ast.Stmt
	var tag ast.Node
	var clauses []ast.Stmt
	switch s := s.(type) {
	case *ast.SwitchStmt:
		init, clauses = s.Init, s.Body.List
		if s.Tag != nil {
			tag = s.Tag
		}
	case *ast.TypeSwitchStmt:
		init, clauses = s.Init, s.Body.List
		tag = s.Assign
	}
	if init != nil {
		b.stmt(init, "")
	}
	if tag != nil {
		b.cur.Nodes = append(b.cur.Nodes, tag)
	}
	head := b.cur
	after := b.newBlock()
	if label != "" {
		b.labels[label].brk = after
	}
	b.breaks = append(b.breaks, after)
	hasDefault := false
	var caseBlocks []*Block
	var caseBodies [][]ast.Stmt
	for _, cl := range clauses {
		cc := cl.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		blk := b.newBlock()
		head.Succs = append(head.Succs, Edge{To: blk})
		for _, e := range cc.List {
			blk.Nodes = append(blk.Nodes, e)
		}
		caseBlocks = append(caseBlocks, blk)
		caseBodies = append(caseBodies, cc.Body)
	}
	for i, blk := range caseBlocks {
		b.cur = blk
		// fallthrough jumps to the next case's body start; translate the
		// body, intercepting a trailing fallthrough.
		body := caseBodies[i]
		ft := false
		if n := len(body); n > 0 {
			if br, ok := body[n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				body, ft = body[:n-1], true
			}
		}
		b.stmtList(body)
		if ft && i+1 < len(caseBlocks) {
			b.jump(caseBlocks[i+1])
		} else {
			b.jump(after)
		}
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	if !hasDefault {
		head.Succs = append(head.Succs, Edge{To: after})
	}
	b.cur = after
}

func (b *cfgBuilder) branch(s *ast.BranchStmt) {
	switch s.Tok {
	case token.BREAK:
		if s.Label != nil {
			if t, ok := b.labels[s.Label.Name]; ok && t.brk != nil {
				b.jump(t.brk)
				return
			}
		} else if n := len(b.breaks); n > 0 {
			b.jump(b.breaks[n-1])
			return
		}
		b.cur = b.newBlock()
	case token.CONTINUE:
		if s.Label != nil {
			if t, ok := b.labels[s.Label.Name]; ok && t.cont != nil {
				b.jump(t.cont)
				return
			}
		} else if n := len(b.conts); n > 0 {
			b.jump(b.conts[n-1])
			return
		}
		b.cur = b.newBlock()
	case token.GOTO:
		if s.Label != nil {
			b.gotos = append(b.gotos, pendingGoto{from: b.cur, label: s.Label.Name})
		}
		b.cur = b.newBlock()
	case token.FALLTHROUGH:
		// Handled in switchStmt; a stray one (invalid Go) is ignored.
	}
}

// panics reports whether the statement's top level is a call to the
// panic builtin.
func (b *cfgBuilder) panics(s ast.Stmt) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	return ok && IsBuiltin(b.info, call, "panic")
}

// String renders the graph compactly for tests and -debug output:
// each line "bID[n]: succ succ", where a conditional successor is
// suffixed with + (true edge) or - (false edge).
func (c *CFG) String() string {
	var sb strings.Builder
	for _, blk := range c.Blocks {
		fmt.Fprintf(&sb, "b%d[%d]:", blk.ID, len(blk.Nodes))
		for _, e := range blk.Succs {
			mark := ""
			if e.Cond != nil {
				if e.Negated {
					mark = "-"
				} else {
					mark = "+"
				}
			}
			fmt.Fprintf(&sb, " b%d%s", e.To.ID, mark)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// InspectShallow walks n like ast.Inspect but does not descend into
// function literals: a FuncLit body is a separate CFG, so its contents
// must not leak into the enclosing function's per-node transfer. The
// literal node itself IS visited (so analyses can model the capture).
// The synthetic CFG node types are unwrapped to their underlying
// expressions (go/ast.Walk cannot traverse foreign node types).
func InspectShallow(n ast.Node, fn func(ast.Node) bool) {
	switch s := n.(type) {
	case *RangeBind:
		if !fn(s) {
			return
		}
		// The binding's operands: key/value are written, X was already
		// visited in the loop's head block.
		if s.Rng.Key != nil {
			InspectShallow(s.Rng.Key, fn)
		}
		if s.Rng.Value != nil {
			InspectShallow(s.Rng.Value, fn)
		}
		return
	case *DeferredCall:
		if !fn(s) {
			return
		}
		InspectShallow(s.Call, fn)
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		if m == nil {
			return false
		}
		if !fn(m) {
			return false
		}
		if _, ok := m.(*ast.FuncLit); ok && m != n {
			return false
		}
		return true
	})
}
