package analysis

// All returns the full secvet suite in its canonical order.
func All() []*Analyzer {
	return []*Analyzer{Determinism, Aliasing, Lockcheck, Tracecheck}
}

// ByName returns the analyzer with the given rule name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}
