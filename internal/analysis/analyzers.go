package analysis

// All returns the full secvet suite in its canonical order: the v1
// AST walkers first, then the v2 dataflow analyzers.
func All() []*Analyzer {
	return []*Analyzer{Determinism, Aliasing, Lockcheck, Tracecheck,
		Poolcheck, Shardcheck, Auditcheck}
}

// ByName returns the analyzer with the given rule name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}
