package analysis

// Auditcheck: the static form of the audit-ledger verifier. Evanesco's
// accounting argument is that every physical state transition the FTL
// performs is *reported*: a destruction fires Hooks.Destroyed and (when
// tracing) an audit.KindDestroy event, an invalidation fires
// Hooks.Invalidated and trace.Invalidated, a new physical copy fires
// Hooks.Programmed and (for secured pages) audit.KindCopy. The runtime
// ledger verifier catches a missing report only on workloads that reach
// the broken path; this analyzer demands the pairing on every path of
// every function in a package named ftl.
//
// Rule 1 (obligations): a call through an ftl.Hooks field creates an
// obligation — destroy for Destroyed, invalidate for Invalidated, copy
// for Programmed — that must be discharged before function exit on
// every path, by a matching emission: tracer.Audit with the matching
// audit.Kind* literal (an Audit whose kind is not statically visible
// discharges everything), or tracer.Invalidated for invalidations.
// Paths on which tracing is off are exempt: crossing a branch edge
// whose condition implies !traceOn (structural polarity of a traceOn
// identifier/field, through !, && and ||) clears all pending
// obligations — that is exactly the `if f.traceOn { emit }` /
// `if !f.traceOn { return }` discipline of the real code. Known false
// negatives: the exemption clears *all* pending obligations, including
// ones whose own guard did not mention traceOn; and obligations
// discharged by a callee (no real site does this today) would need a
// waiver.
//
// Rule 2 (block-wide reporting, the PR 6 regression): after a
// Target.BLock call the whole block's stale data is gone, so reporting
// destruction by ranging over a slice derived from a function parameter
// (the pended subset) under-reports — evacuation-stale copies die with
// the block too, and their hook/audit windows never close. The fixed
// idiom iterates the block's page span (destroyStale); the analyzer
// flags a parameter-tainted range that fires Hooks.Destroyed reachable
// after a BLock call.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Auditcheck verifies that every FTL lifecycle hook is paired with its
// audit/trace emission on every traced path, and that post-bLock
// destruction is reported block-wide.
var Auditcheck = &Analyzer{
	Name: "auditcheck",
	Doc: "require every ftl page/block state transition (Hooks.Destroyed/Invalidated/Programmed) " +
		"to emit its matching audit event on every traced path, block-wide after a bLock",
	Run: runAuditcheck,
}

type obKind uint8

const (
	obDestroy obKind = iota
	obInvalidate
	obCopy
)

func (k obKind) String() string {
	switch k {
	case obDestroy:
		return "Destroyed"
	case obInvalidate:
		return "Invalidated"
	default:
		return "Programmed"
	}
}

// emission names the discharge each obligation kind expects, for the
// diagnostic text.
func (k obKind) emission() string {
	switch k {
	case obDestroy:
		return "an audit.KindDestroy event"
	case obInvalidate:
		return "a trace Invalidated record (or audit.KindInvalidate)"
	default:
		return "an audit.KindCopy event"
	}
}

var hookKinds = map[string]obKind{
	"Destroyed":   obDestroy,
	"Invalidated": obInvalidate,
	"Programmed":  obCopy,
}

func runAuditcheck(pass *Pass) error {
	if pass.Pkg.Name() != "ftl" {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					auditFlowBody(pass, n.Body)
					checkBlockwide(pass, n)
				}
			case *ast.FuncLit:
				auditFlowBody(pass, n.Body)
			}
			return true
		})
	}
	return nil
}

// hookCall resolves a call through an ftl.Hooks field, if n is one.
func hookCall(pass *Pass, n ast.Node) (obKind, *ast.CallExpr, bool) {
	call, ok := n.(*ast.CallExpr)
	if !ok {
		return 0, nil, false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return 0, nil, false
	}
	kind, ok := hookKinds[sel.Sel.Name]
	if !ok {
		return 0, nil, false
	}
	t := pass.TypeOf(sel.X)
	if t == nil || !IsNamed(t, "ftl", "Hooks") {
		return 0, nil, false
	}
	return kind, call, true
}

// discharge resolves an emission call to the obligation kinds it
// discharges. nil means the node is not an emission.
func discharge(pass *Pass, call *ast.CallExpr) []obKind {
	fn := Callee(pass.Info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Name() != "trace" {
		return nil
	}
	switch fn.Name() {
	case "Invalidated":
		return []obKind{obInvalidate}
	case "Audit":
		if len(call.Args) != 1 {
			return nil
		}
		if lit, ok := ast.Unparen(call.Args[0]).(*ast.CompositeLit); ok {
			for _, el := range lit.Elts {
				kv, ok := el.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				if key, ok := kv.Key.(*ast.Ident); !ok || key.Name != "Kind" {
					continue
				}
				name := ""
				switch v := ast.Unparen(kv.Value).(type) {
				case *ast.SelectorExpr:
					name = v.Sel.Name
				case *ast.Ident:
					name = v.Name
				}
				switch name {
				case "KindDestroy":
					return []obKind{obDestroy}
				case "KindCopy":
					return []obKind{obCopy}
				case "KindInvalidate":
					return []obKind{obInvalidate}
				}
			}
		}
		// Kind not statically visible: assume it discharges everything.
		return []obKind{obDestroy, obInvalidate, obCopy}
	}
	return nil
}

// obligations is the dataflow state: pending hook-call sites. Union
// join (pending on any path is pending), so a one-branch emission does
// not satisfy the other branch.
type obligations map[token.Pos]obKind

type auditFlow struct {
	pass *Pass
}

func (af *auditFlow) Entry() any { return obligations{} }

func (af *auditFlow) Clone(state any) any {
	src := state.(obligations)
	dst := make(obligations, len(src))
	for k, v := range src {
		dst[k] = v
	}
	return dst
}

func (af *auditFlow) Equal(a, b any) bool {
	am, bm := a.(obligations), b.(obligations)
	if len(am) != len(bm) {
		return false
	}
	for k, v := range am {
		if w, ok := bm[k]; !ok || v != w {
			return false
		}
	}
	return true
}

func (af *auditFlow) Join(dst, src any) any {
	dm := dst.(obligations)
	for k, v := range src.(obligations) {
		dm[k] = v
	}
	return dm
}

func (af *auditFlow) Transfer(state any, n ast.Node) any {
	s := state.(obligations)
	InspectShallow(n, func(m ast.Node) bool {
		if kind, call, ok := hookCall(af.pass, m); ok {
			s[call.Pos()] = kind
			return true
		}
		if call, ok := m.(*ast.CallExpr); ok {
			for _, kind := range discharge(af.pass, call) {
				for pos, pending := range s {
					if pending == kind {
						delete(s, pos)
					}
				}
			}
		}
		return true
	})
	return s
}

// EdgeTransfer exempts untraced paths: crossing an edge that implies
// traceOn is false clears every pending obligation.
func (af *auditFlow) EdgeTransfer(state any, e *Edge) any {
	if e.Cond == nil {
		return state
	}
	switch pol := traceOnPolarity(e.Cond); {
	case pol > 0 && e.Negated, pol < 0 && !e.Negated:
		return obligations{}
	}
	return state
}

// traceOnPolarity reports how a traceOn reference participates in the
// condition: +1 bare, -1 negated, 0 absent. && and || propagate the
// first side that mentions it.
func traceOnPolarity(e ast.Expr) int {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if e.Name == "traceOn" {
			return 1
		}
	case *ast.SelectorExpr:
		if e.Sel.Name == "traceOn" {
			return 1
		}
	case *ast.UnaryExpr:
		if e.Op == token.NOT {
			return -traceOnPolarity(e.X)
		}
	case *ast.BinaryExpr:
		if e.Op == token.LAND || e.Op == token.LOR {
			if p := traceOnPolarity(e.X); p != 0 {
				return p
			}
			return traceOnPolarity(e.Y)
		}
	}
	return 0
}

func auditFlowBody(pass *Pass, body *ast.BlockStmt) {
	cfg := BuildCFG(body, pass.Info)
	af := &auditFlow{pass: pass}
	in, converged := cfg.Forward(af)
	if !converged {
		return
	}
	exit := cfg.Exit()
	if in[exit.ID] == nil {
		return // exit unreachable (infinite loop)
	}
	state := af.Clone(in[exit.ID]).(obligations)
	for _, n := range exit.Nodes {
		state = af.Transfer(state, n).(obligations)
	}
	// Report each still-pending hook site once, in position order for
	// deterministic output.
	sites := make([]token.Pos, 0, len(state))
	for pos := range state {
		sites = append(sites, pos)
	}
	for i := range sites {
		for j := i + 1; j < len(sites); j++ {
			if sites[j] < sites[i] {
				sites[i], sites[j] = sites[j], sites[i]
			}
		}
	}
	for _, pos := range sites {
		kind := state[pos]
		pass.Reportf(pos,
			"hooks.%s fires without %s on some traced path: the audit ledger under-reports "+
				"this transition (the static form of the ledger verifier)",
			kind, kind.emission())
	}
}

// --- rule 2: block-wide reporting after a bLock ------------------------

// checkBlockwide flags parameter-subset destruction reporting after a
// Target.BLock call (the PR 6 reentrant-IssueBLock bug shape).
func checkBlockwide(pass *Pass, fn *ast.FuncDecl) {
	tainted := paramSliceTaint(pass, fn)
	if len(tainted) == 0 {
		return
	}
	var blockCall token.Pos = token.NoPos
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		cfn := Callee(pass.Info, call)
		if cfn != nil && cfn.Name() == "BLock" && cfn.Pkg() != nil && cfn.Pkg().Name() == "ftl" {
			if blockCall == token.NoPos || call.Pos() < blockCall {
				blockCall = call.Pos()
			}
			return false
		}
		return true
	})
	if blockCall == token.NoPos {
		return
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok || rng.Pos() < blockCall {
			return true
		}
		if !mentionsTainted(pass, rng.X, tainted) {
			return true
		}
		firesDestroy := false
		ast.Inspect(rng.Body, func(m ast.Node) bool {
			if kind, _, ok := hookCall(pass, m); ok && kind == obDestroy {
				firesDestroy = true
				return false
			}
			return true
		})
		if firesDestroy {
			pass.Reportf(rng.For,
				"destruction after a block-wide bLock is reported only for the pended subset "+
					"(range over a parameter-derived slice): evacuation-stale copies die with the "+
					"block too, so report block-wide over the page span (cf. destroyStale)")
			return false
		}
		return true
	})
}

// paramSliceTaint returns the objects reachable from the function's
// slice parameters through assignments, slicing, append, and range
// bindings — a syntactic fixpoint, no CFG needed.
func paramSliceTaint(pass *Pass, fn *ast.FuncDecl) map[types.Object]bool {
	tainted := map[types.Object]bool{}
	if fn.Type.Params == nil {
		return tainted
	}
	for _, field := range fn.Type.Params.List {
		for _, name := range field.Names {
			obj := pass.Info.Defs[name]
			if obj == nil {
				continue
			}
			if _, ok := obj.Type().Underlying().(*types.Slice); ok {
				tainted[obj] = true
			}
		}
	}
	if len(tainted) == 0 {
		return tainted
	}
	for changed := true; changed; {
		changed = false
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) != len(n.Rhs) {
					return true
				}
				for i, lhs := range n.Lhs {
					if !mentionsTainted(pass, n.Rhs[i], tainted) {
						continue
					}
					if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
						if obj := objForIdent(pass, id); obj != nil && !tainted[obj] {
							tainted[obj] = true
							changed = true
						}
					}
				}
			case *ast.RangeStmt:
				if !mentionsTainted(pass, n.X, tainted) {
					return true
				}
				for _, e := range []ast.Expr{n.Key, n.Value} {
					if e == nil {
						continue
					}
					if id, ok := ast.Unparen(e).(*ast.Ident); ok {
						if obj := objForIdent(pass, id); obj != nil && !tainted[obj] {
							tainted[obj] = true
							changed = true
						}
					}
				}
			}
			return true
		})
	}
	return tainted
}

func objForIdent(pass *Pass, id *ast.Ident) types.Object {
	if obj := pass.Info.Defs[id]; obj != nil {
		return obj
	}
	return pass.Info.Uses[id]
}

func mentionsTainted(pass *Pass, e ast.Expr, tainted map[types.Object]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := pass.Info.Uses[id]; obj != nil && tainted[obj] {
				found = true
				return false
			}
		}
		return !found
	})
	return found
}
