package analysis

// Forward dataflow iteration over a CFG. The three v2 analyzers share
// this loop: poolcheck runs a lifetime lattice over pooled payloads,
// shardcheck a config-combination lattice, auditcheck an obligation
// lattice. States are opaque to the iterator; the analysis supplies
// transfer, join, and equality. Termination is guaranteed for monotone
// finite lattices; a visit budget bounds the loop for everything else
// (the fuzz target in dataflow_test.go hunts for shapes that exhaust
// it).

import "go/ast"

// A FlowAnalysis defines one forward dataflow problem.
type FlowAnalysis interface {
	// Entry returns the state on entry to the function.
	Entry() any
	// Clone returns an independent copy of a state the iterator may
	// mutate through Transfer/Join.
	Clone(state any) any
	// Transfer applies one CFG node to the state and returns the result
	// (it owns state and may mutate it in place).
	Transfer(state any, n ast.Node) any
	// Join merges src into dst and returns the result. It must be an
	// upper bound of both (monotone joins converge; anything else is
	// stopped by the visit budget).
	Join(dst, src any) any
	// Equal reports whether two states are equal (fixpoint detection).
	Equal(a, b any) bool
	// EdgeTransfer refines a state crossing edge e (branch-condition
	// pruning). It owns state. Implementations that don't refine can
	// return it unchanged.
	EdgeTransfer(state any, e *Edge) any
}

// NoEdgeRefinement is an embeddable default EdgeTransfer.
type NoEdgeRefinement struct{}

// EdgeTransfer returns the state unchanged.
func (NoEdgeRefinement) EdgeTransfer(state any, _ *Edge) any { return state }

// maxVisitsPerBlock bounds worklist revisits: a monotone analysis over
// these lattices stabilizes in a handful of passes, so the budget only
// exists to make non-convergence (an analysis bug) a detectable
// outcome instead of a hang.
const maxVisitsPerBlock = 64

// Forward runs the analysis to fixpoint and returns the entry state of
// every block (indexed by Block.ID; nil for unreachable blocks) and
// whether the iteration converged within its budget. Analyzers then
// replay Transfer over each reachable block's nodes to report findings
// at exact positions.
func (c *CFG) Forward(fa FlowAnalysis) (in []any, converged bool) {
	in = make([]any, len(c.Blocks))
	entry := c.Entry()
	in[entry.ID] = fa.Entry()
	work := []*Block{entry}
	queued := make([]bool, len(c.Blocks))
	queued[entry.ID] = true
	budget := maxVisitsPerBlock * (len(c.Blocks) + 4)
	for len(work) > 0 {
		if budget--; budget < 0 {
			return in, false
		}
		blk := work[0]
		work = work[1:]
		queued[blk.ID] = false
		state := fa.Clone(in[blk.ID])
		for _, n := range blk.Nodes {
			state = fa.Transfer(state, n)
		}
		for i := range blk.Succs {
			e := &blk.Succs[i]
			out := fa.EdgeTransfer(fa.Clone(state), e)
			tid := e.To.ID
			if in[tid] == nil {
				in[tid] = out
			} else {
				merged := fa.Join(fa.Clone(in[tid]), out)
				if fa.Equal(merged, in[tid]) {
					continue
				}
				in[tid] = merged
			}
			if !queued[tid] {
				queued[tid] = true
				work = append(work, e.To)
			}
		}
	}
	return in, true
}
