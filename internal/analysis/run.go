package analysis

import (
	"fmt"
	"sort"
)

// RunPackages applies every analyzer to every package, filters the
// findings through the packages' secvet:allow directives, and returns
// the surviving diagnostics sorted by position. Analyzer failures
// (not findings) are returned as the error.
func RunPackages(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	ran := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	fullSuite := true
	for _, a := range All() {
		fullSuite = fullSuite && ran[a.Name]
	}
	var diags []Diagnostic
	for _, pkg := range pkgs {
		allows, allowDiags := collectAllows(pkg)
		diags = append(diags, allowDiags...)
		for _, a := range analyzers {
			var found []Diagnostic
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				PkgPath:  pkg.PkgPath,
				Pkg:      pkg.Pkg,
				Info:     pkg.Info,
				diags:    &found,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %v", a.Name, pkg.PkgPath, err)
			}
			for _, d := range found {
				if !allows.suppressed(d) {
					diags = append(diags, d)
				}
			}
		}
		diags = append(diags, allows.stale(ran, fullSuite)...)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return diags, nil
}
