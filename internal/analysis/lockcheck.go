package analysis

import (
	"go/ast"
	"go/types"
)

// chipOps are the (*nand.Chip) operations whose error return carries
// the chip's security signal: ErrPageLocked / ErrBlockLocked are how
// the pAP/bAP "page is secured" state surfaces to software, and the
// discipline errors (ErrNotErased, ErrOutOfOrder, ErrWornOut) are how
// an FTL bug surfaces. Discarding any of them silently converts a
// security property into garbage data.
var chipOps = map[string]bool{
	"Read": true, "Program": true, "Erase": true, "PLock": true,
	"BLock": true, "Scrub": true, "Copyback": true,
	"IsPageLocked": true, "IsBlockLocked": true,
	"PLockWL": true, "ProgramMulti": true, "ReadMulti": true,
}

// Lockcheck enforces the lock-state plumbing invariants:
//
//  1. The error/status result of a nand chip operation must never be
//     dropped: not by calling it as a bare statement, and not by
//     assigning the error position to the blank identifier. The pAP/bAP
//     "page is secured" signal travels in those errors.
//  2. In the ftl package, page-status transitions must go through the
//     page-status-table API (setStatus), which keeps the per-status
//     population counters — and therefore the telemetry gauges and the
//     GC victim accounting — exact. Direct writes to a []PageStatus
//     element bypass the counters.
var Lockcheck = &Analyzer{
	Name: "lockcheck",
	Doc: "flag discarded nand op errors (the page-is-secured signal) and page-status " +
		"writes that bypass the status-table API",
	Run: runLockcheck,
}

func runLockcheck(pass *Pass) error {
	for _, f := range pass.Files {
		var funcName string
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				funcName = n.Name.Name
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					checkDiscardedOp(pass, call, "all results of")
				}
			case *ast.GoStmt:
				checkDiscardedOp(pass, n.Call, "all results of")
			case *ast.DeferStmt:
				checkDiscardedOp(pass, n.Call, "all results of")
			case *ast.AssignStmt:
				checkBlankError(pass, n)
				checkStatusWrite(pass, n, funcName)
			}
			return true
		})
	}
	return nil
}

// chipOpName returns "Chip.Read" etc. when the call is a nand chip
// operation, or "".
func chipOpName(pass *Pass, call *ast.CallExpr) string {
	fn := Callee(pass.Info, call)
	if fn == nil || !chipOps[fn.Name()] {
		return ""
	}
	if n := ReceiverNamed(fn); n != nil && n.Obj().Pkg() != nil &&
		n.Obj().Pkg().Name() == "nand" && n.Obj().Name() == "Chip" {
		return "Chip." + fn.Name()
	}
	return ""
}

func checkDiscardedOp(pass *Pass, call *ast.CallExpr, how string) {
	if op := chipOpName(pass, call); op != "" {
		pass.Reportf(call.Pos(),
			"%s nand.%s discarded: its error carries the pAP/bAP lock state "+
				"(ErrPageLocked/ErrBlockLocked); assert or propagate it", how, op)
	}
}

// checkBlankError flags `res, _ := chip.Read(...)` — the error is the
// last result of every chip op, and blanking it drops the lock signal.
func checkBlankError(pass *Pass, as *ast.AssignStmt) {
	if len(as.Rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok || len(as.Lhs) < 1 {
		return
	}
	op := chipOpName(pass, call)
	if op == "" {
		return
	}
	last, ok := ast.Unparen(as.Lhs[len(as.Lhs)-1]).(*ast.Ident)
	if ok && last.Name == "_" {
		pass.Reportf(call.Pos(),
			"error from nand.%s assigned to _: it carries the pAP/bAP lock state "+
				"(ErrPageLocked/ErrBlockLocked); assert or propagate it", op)
	}
}

// checkStatusWrite flags `f.status[p] = st` outside the setStatus API
// in the ftl package: the single-transition-point rule that keeps
// statusCount (and every gauge derived from it) exact.
func checkStatusWrite(pass *Pass, as *ast.AssignStmt, funcName string) {
	if funcName == "setStatus" {
		return
	}
	for _, lhs := range as.Lhs {
		idx, ok := ast.Unparen(lhs).(*ast.IndexExpr)
		if !ok {
			continue
		}
		t := pass.TypeOf(idx.X)
		if t == nil {
			continue
		}
		if sl, ok := t.Underlying().(*types.Slice); ok && IsNamed(sl.Elem(), "ftl", "PageStatus") {
			pass.Reportf(lhs.Pos(),
				"page-status write bypasses the status-table API: use setStatus so the "+
					"per-status population counters stay exact (they feed the telemetry gauges)")
		}
	}
}
