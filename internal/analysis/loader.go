package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"time"
)

// A Package is one loaded, type-checked package ready for analysis.
type Package struct {
	// PkgPath is the canonical import path with any test-variant
	// annotation (" [foo.test]") stripped.
	PkgPath string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Pkg     *types.Package
	Info    *types.Info
	// TypeErrors holds any type-check failures. Analyzers still run on
	// a best-effort AST, but drivers should surface these and fail.
	TypeErrors []error
}

// LoadOptions configures Load.
type LoadOptions struct {
	// Dir is the working directory for `go list` (the module to
	// analyze). Empty means the current directory.
	Dir string
	// Tests includes in-package and external test files, matching
	// `go vet` behavior. The lockcheck satellite explicitly covers test
	// helpers, so drivers default this to true.
	Tests bool
}

// LoadStats accumulates loader work across a process, for -debug
// output: how many `go list` child processes actually ran, how many
// were answered from cache, and the wall time spent loading.
type LoadStats struct {
	ListInvocations int
	CachedLists     int
	Packages        int
	Elapsed         time.Duration
}

// loaderCache dedupes `go list` invocations process-wide: one secvet
// run drives every analyzer off a single package load, and repeated
// Load calls (or standard-library export lookups from the test
// harness) reuse the first answer instead of forking the go tool
// again.
var loaderCache = struct {
	sync.Mutex
	lists   map[string][]byte // go list -deps -export output by dir/tests/patterns
	exports map[string]string // import path → export-data file
	stats   LoadStats
}{
	lists:   make(map[string][]byte),
	exports: make(map[string]string),
}

// Stats returns a snapshot of the loader counters.
func Stats() LoadStats {
	loaderCache.Lock()
	defer loaderCache.Unlock()
	return loaderCache.stats
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	CgoFiles   []string
	// TestGoFiles is populated on the in-package test variant
	// ("p [p.test]"); those files compile together with GoFiles.
	TestGoFiles []string
	ImportMap   map[string]string
	DepOnly     bool
	ForTest     string
	Error       *struct{ Err string }
}

// Load enumerates patterns with the go tool and type-checks every
// matched package (plus its test variants when opts.Tests is set)
// against the build cache's export data, entirely offline.
func Load(opts LoadOptions, patterns ...string) ([]*Package, error) {
	//secvet:allow determinism -- loader profiling for -debug output, not simulation state
	start := time.Now()
	if len(patterns) == 0 {
		patterns = []string{"."}
	}
	out, err := listDeps(opts, patterns)
	if err != nil {
		return nil, err
	}

	var pkgs []*listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		lp := new(listPkg)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		pkgs = append(pkgs, lp)
	}

	exports := make(map[string]string, len(pkgs))
	// shadowed maps a base import path to true when an in-package test
	// variant ("p [p.test]", same package name, superset of files) was
	// listed; analyzing both would duplicate every diagnostic.
	shadowed := make(map[string]bool)
	for _, lp := range pkgs {
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		if lp.ForTest != "" && canonicalPath(lp.ImportPath) == lp.ForTest {
			shadowed[lp.ForTest] = true
		}
	}
	// Seed the shared export cache so later standard-library lookups
	// (StdExport) never fork another go list.
	loaderCache.Lock()
	for path, exp := range exports {
		loaderCache.exports[path] = exp
	}
	loaderCache.Unlock()

	fset := token.NewFileSet()
	var loaded []*Package
	for _, lp := range pkgs {
		if lp.DepOnly || strings.HasSuffix(lp.ImportPath, ".test") {
			continue
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if shadowed[lp.ImportPath] && lp.ForTest == "" {
			continue
		}
		p, err := typecheck(fset, lp, exports)
		if err != nil {
			return nil, err
		}
		if p != nil {
			loaded = append(loaded, p)
		}
	}
	loaderCache.Lock()
	loaderCache.stats.Packages += len(loaded)
	loaderCache.stats.Elapsed += time.Since(start)
	loaderCache.Unlock()
	return loaded, nil
}

// listDeps runs (or replays) the `go list -deps -export` enumeration
// for one Load call.
func listDeps(opts LoadOptions, patterns []string) ([]byte, error) {
	key := fmt.Sprintf("%s\x00%t\x00%s", opts.Dir, opts.Tests, strings.Join(patterns, "\x00"))
	loaderCache.Lock()
	if out, ok := loaderCache.lists[key]; ok {
		loaderCache.stats.CachedLists++
		loaderCache.Unlock()
		return out, nil
	}
	loaderCache.stats.ListInvocations++
	loaderCache.Unlock()

	args := []string{"list", "-deps", "-export",
		"-json=ImportPath,Name,Dir,Export,GoFiles,CgoFiles,TestGoFiles,ImportMap,DepOnly,ForTest,Error"}
	if opts.Tests {
		args = append(args, "-test")
	}
	args = append(args, "--")
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = opts.Dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	loaderCache.Lock()
	loaderCache.lists[key] = out
	loaderCache.Unlock()
	return out, nil
}

// StdExport resolves an import path to its compiler export data,
// preferring the cache seeded by earlier Load calls and memoizing the
// per-path `go list -export` fallback (the build cache compiles it on
// first use; no network involved).
func StdExport(path string) (io.ReadCloser, error) {
	loaderCache.Lock()
	exp, ok := loaderCache.exports[path]
	if ok {
		loaderCache.stats.CachedLists++
	} else {
		loaderCache.stats.ListInvocations++
	}
	loaderCache.Unlock()
	if !ok {
		cmd := exec.Command("go", "list", "-export", "-f", "{{.Export}}", path)
		var stderr bytes.Buffer
		cmd.Stderr = &stderr
		out, err := cmd.Output()
		if err != nil {
			return nil, fmt.Errorf("go list -export %s: %v\n%s", path, err, stderr.String())
		}
		exp = strings.TrimSpace(string(out))
		if exp == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		loaderCache.Lock()
		loaderCache.exports[path] = exp
		loaderCache.Unlock()
	}
	return os.Open(exp)
}

// canonicalPath strips the test-variant annotation from an import path:
// "repro/internal/ftl [repro/internal/ftl.test]" → "repro/internal/ftl".
func canonicalPath(importPath string) string {
	if i := strings.IndexByte(importPath, ' '); i >= 0 {
		return importPath[:i]
	}
	return importPath
}

// typecheck parses and type-checks one listed package. Dependencies are
// imported from compiler export data via the paths `go list -export`
// resolved, honoring the package's ImportMap (test-variant renames).
func typecheck(fset *token.FileSet, lp *listPkg, exports map[string]string) (*Package, error) {
	// On test variants GoFiles already includes TestGoFiles; dedupe.
	var names []string
	seen := make(map[string]bool)
	for _, group := range [][]string{lp.GoFiles, lp.CgoFiles, lp.TestGoFiles} {
		for _, name := range group {
			if !seen[name] {
				seen[name] = true
				names = append(names, name)
			}
		}
	}
	if len(names) == 0 {
		return nil, nil
	}
	var files []*ast.File
	for _, name := range names {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(lp.Dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %v", path, err)
		}
		files = append(files, f)
	}

	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := lp.ImportMap[path]; ok {
			path = mapped
		}
		exp, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(exp)
	}
	p := &Package{
		PkgPath: canonicalPath(lp.ImportPath),
		Dir:     lp.Dir,
		Fset:    fset,
		Files:   files,
		Info:    NewInfo(),
	}
	conf := types.Config{
		// A fresh importer per package keeps test-variant export data
		// (same base path, different types) from colliding in a shared
		// importer cache.
		Importer: importer.ForCompiler(fset, "gc", lookup),
		Error:    func(err error) { p.TypeErrors = append(p.TypeErrors, err) },
	}
	p.Pkg, _ = conf.Check(p.PkgPath, fset, files, p.Info)
	return p, nil
}

// NewInfo allocates the fully-populated types.Info the analyzers expect.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}
