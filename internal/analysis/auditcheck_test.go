package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestAuditcheck(t *testing.T) {
	analysistest.Run(t, "testdata",
		[]*analysis.Analyzer{analysis.Auditcheck}, "auditftl")
}
