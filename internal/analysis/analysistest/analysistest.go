// Package analysistest runs secvet analyzers over golden fixture
// packages, mirroring the x/tools analysistest contract: fixtures live
// under testdata/src/<importpath>, and every line that should produce a
// finding carries a comment of the form
//
//	// want "regexp" ["regexp" ...]
//
// (double- or back-quoted). Each regexp must match the "rule: message"
// string of a diagnostic reported on that line; diagnostics with no
// matching expectation, and expectations with no matching diagnostic,
// both fail the test.
//
// Fixture imports resolve against testdata/src first, so fixtures can
// ship self-contained stand-ins for repro packages (the analyzers match
// types by package name, not import path, for exactly this reason).
// Standard-library imports are satisfied from the build cache via
// `go list -export`, so the harness works fully offline.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// Run loads each fixture package below testdata/src, applies the
// analyzers through the same RunPackages path the drivers use (so
// secvet:allow directives are honored), and checks the diagnostics
// against the fixtures' want comments.
func Run(t *testing.T, testdata string, analyzers []*analysis.Analyzer, paths ...string) {
	t.Helper()
	l := newLoader(t, filepath.Join(testdata, "src"))
	for _, path := range paths {
		pkg := l.load(path)
		if len(pkg.TypeErrors) > 0 {
			t.Fatalf("fixture %s does not typecheck: %v", path, pkg.TypeErrors[0])
		}
		diags, err := analysis.RunPackages([]*analysis.Package{pkg}, analyzers)
		if err != nil {
			t.Fatalf("fixture %s: %v", path, err)
		}
		checkExpectations(t, path, pkg, diags)
	}
}

// loader typechecks fixture packages recursively, preferring fixture
// directories over the standard library for import resolution.
type loader struct {
	t    *testing.T
	src  string
	fset *token.FileSet
	pkgs map[string]*analysis.Package
	std  types.ImporterFrom
}

func newLoader(t *testing.T, src string) *loader {
	l := &loader{
		t:    t,
		src:  src,
		fset: token.NewFileSet(),
		pkgs: make(map[string]*analysis.Package),
	}
	l.std = importer.ForCompiler(l.fset, "gc", analysis.StdExport).(types.ImporterFrom)
	return l
}

// Import implements types.Importer for the fixture typechecker.
func (l *loader) Import(path string) (*types.Package, error) {
	if _, err := os.Stat(filepath.Join(l.src, path)); err == nil {
		p := l.load(path)
		if len(p.TypeErrors) > 0 {
			return nil, fmt.Errorf("fixture dependency %s: %v", path, p.TypeErrors[0])
		}
		return p.Pkg, nil
	}
	return l.std.Import(path)
}

func (l *loader) load(path string) *analysis.Package {
	if p, ok := l.pkgs[path]; ok {
		return p
	}
	dir := filepath.Join(l.src, path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		l.t.Fatalf("fixture %s: %v", path, err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		l.t.Fatalf("fixture %s: no .go files in %s", path, dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			l.t.Fatalf("fixture %s: %v", path, err)
		}
		files = append(files, f)
	}
	p := &analysis.Package{
		PkgPath: path,
		Dir:     dir,
		Fset:    l.fset,
		Files:   files,
		Info:    analysis.NewInfo(),
	}
	l.pkgs[path] = p
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { p.TypeErrors = append(p.TypeErrors, err) },
	}
	p.Pkg, _ = conf.Check(path, l.fset, files, p.Info)
	return p
}

// expectation is one `// want` regexp waiting to be matched.
type expectation struct {
	re      *regexp.Regexp
	line    int
	matched bool
}

var wantToken = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

// parseWants extracts the expectations from one comment's text, or nil.
func parseWants(t *testing.T, text string, line int) []*expectation {
	// A want comment may stand alone (`// want "re"`) or trail other
	// comment content (the malformed-allow fixture embeds one).
	i := strings.Index(text, "// want ")
	if i < 0 {
		return nil
	}
	rest := text[i+len("// want"):]
	var wants []*expectation
	for _, tok := range wantToken.FindAllString(rest, -1) {
		var pat string
		if tok[0] == '`' {
			pat = tok[1 : len(tok)-1]
		} else {
			var err error
			pat, err = strconv.Unquote(tok)
			if err != nil {
				t.Fatalf("line %d: bad want token %s: %v", line, tok, err)
			}
		}
		re, err := regexp.Compile(pat)
		if err != nil {
			t.Fatalf("line %d: bad want regexp %q: %v", line, pat, err)
		}
		wants = append(wants, &expectation{re: re, line: line})
	}
	if len(wants) == 0 {
		t.Fatalf("line %d: want comment with no expectations: %s", line, text)
	}
	return wants
}

func checkExpectations(t *testing.T, path string, pkg *analysis.Package, diags []analysis.Diagnostic) {
	t.Helper()
	// key: filename -> line -> expectations.
	wants := make(map[string]map[int][]*expectation)
	for _, f := range pkg.Files {
		filename := pkg.Fset.Position(f.Pos()).Filename
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				line := pkg.Fset.Position(c.Pos()).Line
				for _, w := range parseWants(t, c.Text, line) {
					byLine := wants[filename]
					if byLine == nil {
						byLine = make(map[int][]*expectation)
						wants[filename] = byLine
					}
					byLine[line] = append(byLine[line], w)
				}
			}
		}
	}
	for _, d := range diags {
		s := d.Rule + ": " + d.Message
		found := false
		for _, w := range wants[d.Pos.Filename][d.Pos.Line] {
			if w.re.MatchString(s) {
				w.matched = true
				found = true
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic:\n  %s", path, d)
		}
	}
	for filename, byLine := range wants {
		for _, ws := range byLine {
			for _, w := range ws {
				if !w.matched {
					t.Errorf("%s: %s:%d: expected diagnostic matching %q, got none",
						path, filename, w.line, w.re)
				}
			}
		}
	}
}
