package analysis

import (
	"go/ast"
	"go/types"
)

// Aliasing enforces the nand.ReadResult.Data ownership contract: the
// slice aliases the chip's per-read scratch buffer and is only valid
// until the next operation on the same chip (the PR 2 buffer-pooling
// rule). A use must therefore stay inside the statement block where the
// read happened — consumed immediately or passed down a call chain that
// does — and must not outlive it. The analyzer flags, per function:
//
//   - returning res.Data (or a local aliasing it),
//   - storing it into a struct field, slice/map element, or pointer
//     dereference,
//   - placing it in a composite literal,
//   - appending it (as an element, not `dst, src...` byte expansion)
//     to a longer-lived slice,
//   - sending it on a channel, and
//   - using it inside a func literal that captures the read's result
//     (the literal — a goroutine especially — may run after the scratch
//     has been overwritten).
//
// Copies are exempt: res.CloneData(), append([]byte(nil), res.Data...),
// and copy(dst, res.Data) all produce caller-owned bytes.
var Aliasing = &Analyzer{
	Name: "aliasing",
	Doc: "flag uses of nand.ReadResult.Data that escape the statement block of the read " +
		"without going through a documented copy helper",
	Run: runAliasing,
}

func runAliasing(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			newAliasChecker(pass, fd.Body).check()
		}
	}
	return nil
}

type aliasChecker struct {
	pass    *Pass
	body    *ast.BlockStmt
	tainted map[types.Object]bool
	// funcLits are every func literal in the body, for the capture rule.
	funcLits []*ast.FuncLit
}

func newAliasChecker(pass *Pass, body *ast.BlockStmt) *aliasChecker {
	c := &aliasChecker{pass: pass, body: body, tainted: make(map[types.Object]bool)}
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			c.funcLits = append(c.funcLits, lit)
		}
		return true
	})
	return c
}

// isDataSelector reports whether e reads the Data field of a
// nand.ReadResult value.
func (c *aliasChecker) isDataSelector(e ast.Expr) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Data" {
		return false
	}
	return IsNamed(c.pass.TypeOf(sel.X), "nand", "ReadResult")
}

// obj resolves an identifier expression to its object, or nil.
func (c *aliasChecker) obj(e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	if o := c.pass.Info.Uses[id]; o != nil {
		return o
	}
	return c.pass.Info.Defs[id]
}

// aliases reports whether e evaluates to a value aliasing the scratch:
// a direct .Data selector or a taint-tracked local.
func (c *aliasChecker) aliases(e ast.Expr) bool {
	if c.isDataSelector(e) {
		return true
	}
	o := c.obj(e)
	return o != nil && c.tainted[o]
}

// baseObj returns the variable a potential alias expression is rooted
// at: the tainted local itself, or the receiver variable of a .Data
// selector. Used by the capture rule to tell a closure-internal read
// from a captured one.
func (c *aliasChecker) baseObj(e ast.Expr) types.Object {
	if sel, ok := ast.Unparen(e).(*ast.SelectorExpr); ok {
		return c.obj(sel.X)
	}
	return c.obj(e)
}

func (c *aliasChecker) check() {
	c.propagateTaint()
	c.checkEscapes()
	c.checkCaptures()
}

// propagateTaint runs a fixed point over ident assignments: a local
// assigned from res.Data (or from another tainted local) is tainted.
// Reassignment from a clean source does not un-taint — the variable may
// still hold the alias on another path; the rule is conservative.
func (c *aliasChecker) propagateTaint() {
	taintPair := func(lhs, rhs ast.Expr) bool {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok || id.Name == "_" {
			return false
		}
		o := c.pass.Info.Defs[id]
		if o == nil {
			o = c.pass.Info.Uses[id]
		}
		if o == nil || c.tainted[o] {
			return false
		}
		if c.aliases(rhs) {
			c.tainted[o] = true
			return true
		}
		return false
	}
	for changed := true; changed; {
		changed = false
		ast.Inspect(c.body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) == len(n.Rhs) {
					for i := range n.Rhs {
						changed = taintPair(n.Lhs[i], n.Rhs[i]) || changed
					}
				}
			case *ast.ValueSpec:
				if len(n.Names) == len(n.Values) {
					for i := range n.Values {
						changed = taintPair(n.Names[i], n.Values[i]) || changed
					}
				}
			}
			return true
		})
	}
}

// checkEscapes flags the structural escapes: returns, stores into
// fields/elements, composite literals, alias-preserving appends, and
// channel sends.
func (c *aliasChecker) checkEscapes() {
	ast.Inspect(c.body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if c.aliases(r) {
					c.pass.Reportf(r.Pos(),
						"nand.ReadResult.Data aliases the chip's read scratch and must not be returned: "+
							"copy it first (res.CloneData() or append([]byte(nil), res.Data...))")
				}
			}
		case *ast.SendStmt:
			if c.aliases(n.Value) {
				c.pass.Reportf(n.Value.Pos(),
					"nand.ReadResult.Data sent on a channel outlives the read: copy it first (res.CloneData())")
			}
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i := range n.Rhs {
				if !c.aliases(n.Rhs[i]) {
					continue
				}
				if _, isIdent := ast.Unparen(n.Lhs[i]).(*ast.Ident); !isIdent {
					// Field, element, or dereference store escapes the block.
					c.pass.Reportf(n.Rhs[i].Pos(),
						"nand.ReadResult.Data stored outside the read's statement block: the scratch is "+
							"reused by the next chip op; copy it first (res.CloneData())")
				}
			}
		case *ast.CompositeLit:
			for _, el := range n.Elts {
				v := el
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					v = kv.Value
				}
				if c.aliases(v) {
					c.pass.Reportf(v.Pos(),
						"nand.ReadResult.Data stored in a composite literal escapes the read: "+
							"copy it first (res.CloneData())")
				}
			}
		case *ast.CallExpr:
			if IsBuiltin(c.pass.Info, n, "append") {
				// append(dst, res.Data...) copies bytes — safe.
				// append(dst, res.Data) stores the alias in dst.
				for i := 1; i < len(n.Args); i++ {
					if c.aliases(n.Args[i]) && !(n.Ellipsis.IsValid() && i == len(n.Args)-1) {
						c.pass.Reportf(n.Args[i].Pos(),
							"nand.ReadResult.Data appended into a longer-lived slice without a copy: "+
								"append res.CloneData() instead")
					}
				}
			}
		}
		return true
	})
}

// checkCaptures flags alias uses inside func literals whose underlying
// read happened outside the literal: by the time the closure runs the
// scratch may hold a different page.
func (c *aliasChecker) checkCaptures() {
	for _, lit := range c.funcLits {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if _, nested := n.(*ast.FuncLit); nested {
				return false // checked in its own funcLits iteration
			}
			e, ok := n.(ast.Expr)
			if !ok || !c.aliases(e) {
				return true
			}
			base := c.baseObj(e)
			if base == nil || (base.Pos() >= lit.Pos() && base.Pos() < lit.End()) {
				// Read performed inside this literal: the normal
				// statement-block rules apply, not the capture rule.
				return true
			}
			c.pass.Reportf(e.Pos(),
				"nand.ReadResult.Data captured by a func literal may outlive the read "+
					"(goroutines especially): copy it before the capture")
			return false
		})
	}
}
