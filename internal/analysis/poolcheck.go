package analysis

// Poolcheck: lifetime discipline for sim.BytePool / sim.SlotPool
// payloads. The pools are free lists feeding sim.Record's Data/Slots
// vectors across goroutines (the SSD's channel-sharded executor), so
// the usual slice-aliasing mistakes become cross-lane memory
// corruption: reading a slice after Put means a concurrent Get may
// already own the backing array; Put twice hands one array to two
// owners; Put of a slice the pool never vended poisons the free list
// with foreign (possibly shared, possibly undersized-then-grown)
// memory.
//
// The analyzer runs the shared CFG/dataflow layer per function body
// (function literals are separate bodies) with a four-point lifetime
// lattice per tracked value — unknown ⊑ {pooled, foreign} ⊑ dead —
// tracking aliases through plain locals, one-level record fields
// (r.Data = buf), and struct literals (sim.Record{Data: buf}). Closure
// captures of a dead value are reported at the literal. The analysis
// is intraprocedural: a slice received as a parameter or a deeper field
// has unknown provenance and is never reported as foreign, only its
// post-Put uses are caught.

import (
	"go/ast"
	"go/types"
)

// Poolcheck reports use-after-Put, double-Put, and foreign-slice Put
// on sim.BytePool / sim.SlotPool payloads.
var Poolcheck = &Analyzer{
	Name: "poolcheck",
	Doc: "enforce free-list lifetime discipline on sim.BytePool/sim.SlotPool payloads: " +
		"no use after Put, no double Put, no Put of slices the pool never vended",
	Run: runPoolcheck,
}

// poolTypes are the free-list types whose Get/Put methods the lattice
// tracks, matched by package name so fixtures' stand-ins count.
var poolTypes = map[string]bool{"BytePool": true, "SlotPool": true}

func isPoolMethod(info *types.Info, call *ast.CallExpr, name string) bool {
	fn := Callee(info, call)
	if fn == nil || fn.Name() != name {
		return false
	}
	recv := ReceiverNamed(fn)
	if recv == nil || recv.Obj().Pkg() == nil {
		return false
	}
	return recv.Obj().Pkg().Name() == "sim" && poolTypes[recv.Obj().Name()]
}

func runPoolcheck(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					poolcheckBody(pass, n.Body)
				}
			case *ast.FuncLit:
				poolcheckBody(pass, n.Body)
			}
			return true
		})
	}
	return nil
}

// poolKey names one tracked value: a local/param variable, or a
// one-level field path rooted at one (field != "").
type poolKey struct {
	obj   types.Object
	field string
}

type poolState uint8

const (
	poolUnknown poolState = iota
	poolPooled            // vended by a pool Get on every path here
	poolForeign           // definitely not from a Get (make/literal)
	poolDead              // recycled by Put on some path here
)

// poolFact is one value's lattice point plus the canonical key of its
// alias group (zero when the value is its own group).
type poolFact struct {
	st     poolState
	origin poolKey
	// putPos remembers where the group died, for the diagnostic.
	putPos ast.Node
}

type poolFacts map[poolKey]poolFact

type poolFlow struct {
	NoEdgeRefinement
	pass *Pass
}

func (pf *poolFlow) Entry() any { return poolFacts{} }

func (pf *poolFlow) Clone(state any) any {
	src := state.(poolFacts)
	dst := make(poolFacts, len(src))
	for k, v := range src {
		dst[k] = v
	}
	return dst
}

func (pf *poolFlow) Equal(a, b any) bool {
	am, bm := a.(poolFacts), b.(poolFacts)
	if len(am) != len(bm) {
		return false
	}
	for k, v := range am {
		w, ok := bm[k]
		if !ok || v.st != w.st || v.origin != w.origin {
			return false
		}
	}
	return true
}

func (pf *poolFlow) Join(dst, src any) any {
	dm, sm := dst.(poolFacts), src.(poolFacts)
	for k, sv := range sm {
		dv, ok := dm[k]
		if !ok {
			// Absent = unknown: dead survives the merge (may-dead), the
			// definite states do not (must-pooled / must-foreign).
			if sv.st == poolDead {
				dm[k] = poolFact{st: poolDead, origin: sv.origin, putPos: sv.putPos}
			}
			continue
		}
		merged := poolFact{st: joinPoolState(dv.st, sv.st)}
		if dv.origin == sv.origin {
			merged.origin = dv.origin
		}
		if merged.st == poolDead {
			if dv.st == poolDead {
				merged.putPos = dv.putPos
			} else {
				merged.putPos = sv.putPos
			}
		}
		if merged.st == poolUnknown && merged.origin == (poolKey{}) {
			delete(dm, k)
			continue
		}
		dm[k] = merged
	}
	for k, dv := range dm {
		if _, ok := sm[k]; ok {
			continue
		}
		if dv.st == poolDead {
			continue // may-dead survives
		}
		if dv.origin != (poolKey{}) {
			dm[k] = poolFact{st: poolUnknown, origin: dv.origin}
			continue
		}
		delete(dm, k)
	}
	return dm
}

func joinPoolState(a, b poolState) poolState {
	switch {
	case a == b:
		return a
	case a == poolDead || b == poolDead:
		return poolDead
	default:
		return poolUnknown
	}
}

// key resolves an expression to a tracked key, or a zero key.
func (pf *poolFlow) key(e ast.Expr) poolKey {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj, ok := pf.objOf(e); ok {
			return poolKey{obj: obj}
		}
	case *ast.SelectorExpr:
		if base, ok := ast.Unparen(e.X).(*ast.Ident); ok {
			if obj, ok := pf.objOf(base); ok {
				return poolKey{obj: obj, field: e.Sel.Name}
			}
		}
	}
	return poolKey{}
}

// objOf resolves an identifier to a variable object (local, param, or
// package-level), excluding functions/types/constants.
func (pf *poolFlow) objOf(id *ast.Ident) (types.Object, bool) {
	obj := pf.pass.Info.Uses[id]
	if obj == nil {
		obj = pf.pass.Info.Defs[id]
	}
	if _, ok := obj.(*types.Var); ok {
		return obj, true
	}
	return nil, false
}

func resolveOrigin(s poolFacts, k poolKey) poolKey {
	if f, ok := s[k]; ok && f.origin != (poolKey{}) {
		return f.origin
	}
	return k
}

// classify derives the fact for a right-hand-side expression.
func (pf *poolFlow) classify(s poolFacts, e ast.Expr) poolFact {
	switch e := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		switch {
		case isPoolMethod(pf.pass.Info, e, "Get"):
			return poolFact{st: poolPooled}
		case IsBuiltin(pf.pass.Info, e, "make"):
			return poolFact{st: poolForeign}
		case IsBuiltin(pf.pass.Info, e, "append") && len(e.Args) > 0:
			// append preserves provenance: growth reallocates, but the
			// pool's Put guards capacity, so the grown slice is still the
			// legitimate recycle candidate (the ssd coordinator's
			// append(bufs.Get(), data...) idiom).
			return pf.classify(s, e.Args[0])
		}
	case *ast.CompositeLit:
		if t := pf.pass.TypeOf(e); t != nil {
			if _, ok := t.Underlying().(*types.Slice); ok {
				return poolFact{st: poolForeign}
			}
		}
	case *ast.SliceExpr:
		f := pf.classify(s, e.X)
		// Re-slicing shares the backing array: same alias group, but a
		// subslice of a foreign array is still foreign etc.
		return f
	case *ast.Ident, *ast.SelectorExpr:
		k := pf.key(e)
		if k != (poolKey{}) {
			f := s[k]
			return poolFact{st: f.st, origin: resolveOrigin(s, k), putPos: f.putPos}
		}
	}
	return poolFact{}
}

// kill marks every member of k's alias group dead.
func (pf *poolFlow) kill(s poolFacts, k poolKey, at ast.Node) {
	o := resolveOrigin(s, k)
	for kk, f := range s {
		if kk == o || f.origin == o {
			s[kk] = poolFact{st: poolDead, origin: o, putPos: at}
		}
	}
	s[k] = poolFact{st: poolDead, origin: o, putPos: at}
	if o != k {
		s[o] = poolFact{st: poolDead, origin: o, putPos: at}
	}
}

func (pf *poolFlow) Transfer(state any, n ast.Node) any {
	s := state.(poolFacts)
	switch n := n.(type) {
	case *RangeBind:
		// Key/value are freshly bound each iteration.
		for _, e := range []ast.Expr{n.Rng.Key, n.Rng.Value} {
			if e == nil {
				continue
			}
			if k := pf.key(e); k != (poolKey{}) {
				delete(s, k)
			}
		}
		return s
	case *ast.AssignStmt:
		pf.transferAssign(s, n)
	}
	// Puts anywhere in the node (ExprStmt, rarely nested) kill their
	// argument's alias group. This runs after the assignment handling:
	// Put returns nothing, so it can never be an assignment's RHS.
	InspectShallow(n, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok || !isPoolMethod(pf.pass.Info, call, "Put") || len(call.Args) != 1 {
			return true
		}
		if k := pf.key(call.Args[0]); k != (poolKey{}) {
			pf.kill(s, k, call)
		}
		return true
	})
	return s
}

func (pf *poolFlow) transferAssign(s poolFacts, a *ast.AssignStmt) {
	if len(a.Lhs) == len(a.Rhs) {
		for i, lhs := range a.Lhs {
			k := pf.key(lhs)
			if k == (poolKey{}) {
				continue
			}
			f := pf.classify(s, a.Rhs[i])
			if f.st == poolPooled && f.origin == (poolKey{}) {
				f.origin = k // a fresh Get anchors its own alias group
			}
			if f.st == poolUnknown && f.origin == (poolKey{}) {
				delete(s, k)
				continue
			}
			s[k] = f
			// Assigning into a struct literal's field copies: handled via
			// the composite-literal case below.
		}
		// Struct literals alias their slice-valued fields:
		// r := Record{Data: buf} makes (r, Data) an alias of buf.
		for i, lhs := range a.Lhs {
			base, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok {
				continue
			}
			obj, ok := pf.objOf(base)
			if !ok {
				continue
			}
			lit, ok := ast.Unparen(a.Rhs[i]).(*ast.CompositeLit)
			if !ok {
				continue
			}
			if t := pf.pass.TypeOf(lit); t == nil {
				continue
			} else if _, isStruct := t.Underlying().(*types.Struct); !isStruct {
				continue
			}
			for _, el := range lit.Elts {
				kv, ok := el.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				fieldID, ok := kv.Key.(*ast.Ident)
				if !ok {
					continue
				}
				f := pf.classify(s, kv.Value)
				if f.st == poolUnknown && f.origin == (poolKey{}) {
					continue
				}
				if f.origin == (poolKey{}) {
					f.origin = pf.key(kv.Value)
				}
				s[poolKey{obj: obj, field: fieldID.Name}] = f
			}
		}
		return
	}
	// Multi-value assignment (x, y := f()): provenance unknown.
	for _, lhs := range a.Lhs {
		if k := pf.key(lhs); k != (poolKey{}) {
			delete(s, k)
		}
	}
}

// --- reporting ---------------------------------------------------------

func poolcheckBody(pass *Pass, body *ast.BlockStmt) {
	cfg := BuildCFG(body, pass.Info)
	pf := &poolFlow{pass: pass}
	in, converged := cfg.Forward(pf)
	if !converged {
		return // budget blown: stay silent rather than report from a partial fixpoint
	}
	reported := map[int]bool{}
	for _, blk := range cfg.Blocks {
		if in[blk.ID] == nil {
			continue // unreachable
		}
		state := pf.Clone(in[blk.ID]).(poolFacts)
		for _, n := range blk.Nodes {
			pf.report(state, n, reported)
			state = pf.Transfer(state, n).(poolFacts)
		}
	}
}

func (pf *poolFlow) report(s poolFacts, n ast.Node, seen map[int]bool) {
	once := func(pos ast.Node, format string, args ...any) {
		p := int(pos.Pos())
		if seen[p] {
			return
		}
		seen[p] = true
		pf.pass.Reportf(pos.Pos(), format, args...)
	}

	// Put findings first, and remember the arguments so the read walk
	// below doesn't double-report them.
	putArgs := map[ast.Expr]bool{}
	InspectShallow(n, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok || !isPoolMethod(pf.pass.Info, call, "Put") || len(call.Args) != 1 {
			return true
		}
		arg := call.Args[0]
		putArgs[arg] = true
		k := pf.key(arg)
		if k == (poolKey{}) {
			return true
		}
		switch f := s[k]; f.st {
		case poolDead:
			once(call, "%s recycled twice (double-Put): two Gets would hand out the same backing array", keyString(k))
		case poolForeign:
			once(call, "%s was not vended by a pool Get (foreign-slice Put): recycling foreign memory poisons the free list", keyString(k))
		}
		return true
	})

	// Bare assignment targets are overwrites, not reads.
	assignTargets := map[ast.Expr]bool{}
	if a, ok := n.(*ast.AssignStmt); ok {
		for _, lhs := range a.Lhs {
			switch ast.Unparen(lhs).(type) {
			case *ast.Ident, *ast.SelectorExpr:
				assignTargets[lhs] = true
			}
		}
	}

	InspectShallow(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit:
			// Capture check: any identifier in the literal bound to a
			// variable whose alias group is dead here.
			ast.Inspect(m.Body, func(inner ast.Node) bool {
				id, ok := inner.(*ast.Ident)
				if !ok {
					return true
				}
				obj, ok := pf.objOf(id)
				if !ok || obj.Pos() == 0 {
					return true
				}
				if obj.Pos() >= m.Pos() && obj.Pos() < m.End() {
					return true // declared inside the literal
				}
				for k, f := range s {
					if k.obj == obj && f.st == poolDead {
						once(m, "closure captures %s after Put: the callback may observe a recycled buffer", keyString(k))
						return true
					}
				}
				return true
			})
			return true // shallow walk stops at the literal anyway
		case *ast.SelectorExpr:
			if assignTargets[m] || putArgs[m] {
				return false
			}
			k := pf.key(ast.Expr(m))
			if k != (poolKey{}) {
				if f := s[k]; f.st == poolDead {
					once(m, "%s used after Put: the pool may have handed its backing array to a concurrent Get (use-after-Put)", keyString(k))
				}
				return false // don't also flag the base identifier
			}
			return true
		case *ast.Ident:
			var e ast.Expr = m
			if assignTargets[e] || putArgs[e] {
				return true
			}
			k := pf.key(e)
			if k == (poolKey{}) {
				return true
			}
			if f := s[k]; f.st == poolDead {
				once(m, "%s used after Put: the pool may have handed its backing array to a concurrent Get (use-after-Put)", keyString(k))
			}
		}
		return true
	})
}

func keyString(k poolKey) string {
	if k.field != "" {
		return k.obj.Name() + "." + k.field
	}
	return k.obj.Name()
}
