package analysis

// Shardcheck: the ShardedEngine contract, statically. The sharded PDES
// kernel is bit-identical to its serial twin only if every cross-shard
// interaction goes through the staged-send barrier (sim/sharded.go):
//
//   1. During a window, an event running on shard i must touch only
//      shard i's Engine. Reaching another shard's engine — through a
//      se.Shard(j) chain or a captured engine variable — schedules
//      without a merge-order sequence number and races the other
//      shard's goroutine.
//   2. A staged send must land at least `lookahead` after the moment it
//      is staged. Sends at Now(), or Now()+c with c below the
//      configured lookahead, are always clamped to the window barrier
//      (counted in CrossClamped): the run stays deterministic, but the
//      model's declared latency was a lie.
//   3. ssd.Config must not combine ShardChannels with enabled fault
//      injection. ssd.New rejects the combination at runtime; this rule
//      reports it at the assignment that completes it — including the
//      split shape (literal sets ShardChannels, a later field write
//      enables faults) that the constructor check can only catch when
//      the config finally reaches it.
//
// Rules 1 and 2 are scoped to shard callbacks: function literals
// registered through a shard's engine (se.Shard(i).At/After/Register,
// or the same methods on a variable bound to se.Shard(i)) and closures
// staged via SendEvent. Rule 3 runs the shared CFG/dataflow layer with
// must-facts per Config variable, so a combination present on only one
// branch of a join is not reported.

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// Shardcheck enforces the ShardedEngine staging contract: no foreign
// shard scheduling inside callbacks, no sends inside the lookahead
// window, no ShardChannels+fault-injection configs.
var Shardcheck = &Analyzer{
	Name: "shardcheck",
	Doc: "enforce the sharded-engine contract: cross-shard effects go through Send/SendEvent " +
		"with at least the lookahead of latency, and sharded configs keep fault injection off",
	Run: runShardcheck,
}

// schedMethods are the Engine entry points that assign event ordering;
// calling one on a foreign shard's engine bypasses the merge barrier.
var schedMethods = map[string]bool{
	"At": true, "After": true, "AtRecord": true, "AfterRecord": true, "Register": true,
}

// callbackMethods are the registration points whose FuncLit arguments
// execute as shard events.
var callbackMethods = map[string]bool{
	"At": true, "After": true, "Register": true,
}

func runShardcheck(pass *Pass) error {
	minLookahead, haveLookahead := packageLookahead(pass)
	for _, f := range pass.Files {
		shardVars := collectShardEngineVars(pass, f)
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				for _, lit := range shardCallbackLits(pass, n, shardVars) {
					checkShardCallback(pass, lit, shardVars, minLookahead, haveLookahead)
				}
			case *ast.CompositeLit:
				checkConfigLit(pass, n)
			case *ast.FuncDecl:
				if n.Body != nil {
					checkConfigFlow(pass, n.Body)
				}
			case *ast.FuncLit:
				checkConfigFlow(pass, n.Body)
			}
			return true
		})
	}
	return nil
}

// packageLookahead returns the smallest constant lookahead passed to
// sim.NewSharded anywhere in the package (the conservative bound for
// rule 2's constant-offset check).
func packageLookahead(pass *Pass) (int64, bool) {
	var min int64
	have := false
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := Callee(pass.Info, call)
			if fn == nil || fn.Name() != "NewSharded" || fn.Pkg() == nil || fn.Pkg().Name() != "sim" {
				return true
			}
			if len(call.Args) < 2 {
				return true
			}
			if v, ok := constInt(pass, call.Args[1]); ok && (!have || v < min) {
				min, have = v, true
			}
			return true
		})
	}
	return min, have
}

func constInt(pass *Pass, e ast.Expr) (int64, bool) {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Value == nil {
		return 0, false
	}
	return constant.Int64Val(constant.ToInt(tv.Value))
}

// collectShardEngineVars finds variables bound to a shard's engine
// (x := se.Shard(i)) so captured-engine scheduling can be traced.
func collectShardEngineVars(pass *Pass, f *ast.File) map[types.Object]bool {
	vars := map[types.Object]bool{}
	ast.Inspect(f, func(n ast.Node) bool {
		a, ok := n.(*ast.AssignStmt)
		if !ok || len(a.Lhs) != len(a.Rhs) {
			return true
		}
		for i, rhs := range a.Rhs {
			if !isShardCall(pass, rhs) {
				continue
			}
			if id, ok := ast.Unparen(a.Lhs[i]).(*ast.Ident); ok {
				if obj := pass.Info.Defs[id]; obj != nil {
					vars[obj] = true
				} else if obj := pass.Info.Uses[id]; obj != nil {
					vars[obj] = true
				}
			}
		}
		return true
	})
	return vars
}

// isShardCall reports whether e is a call to ShardedEngine.Shard.
func isShardCall(pass *Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := Callee(pass.Info, call)
	return fn != nil && MethodOn(fn, "sim", "ShardedEngine", "Shard")
}

// shardCallbackLits returns the function literals in call that will run
// as shard events: literal args to se.Shard(i).At/After/Register (or
// the same methods on a bound shard-engine variable), and literal
// events staged through SendEvent.
func shardCallbackLits(pass *Pass, call *ast.CallExpr, shardVars map[types.Object]bool) []*ast.FuncLit {
	fn := Callee(pass.Info, call)
	if fn == nil {
		return nil
	}
	registration := false
	switch {
	case MethodOn(fn, "sim", "ShardedEngine", "SendEvent"):
		registration = true
	case ReceiverNamed(fn) != nil && callbackMethods[fn.Name()] &&
		MethodOn(fn, "sim", "Engine", fn.Name()):
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return nil
		}
		if isShardCall(pass, sel.X) {
			registration = true
		} else if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
			if obj := pass.Info.Uses[id]; obj != nil && shardVars[obj] {
				registration = true
			}
		}
	}
	if !registration {
		return nil
	}
	var lits []*ast.FuncLit
	for _, arg := range call.Args {
		if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
			lits = append(lits, lit)
		}
	}
	return lits
}

// checkShardCallback applies rules 1 and 2 inside one callback body.
// Nested literals run in the same shard context, so the walk descends.
func checkShardCallback(pass *Pass, lit *ast.FuncLit, shardVars map[types.Object]bool, minLookahead int64, haveLookahead bool) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := Callee(pass.Info, call)
		if fn == nil {
			return true
		}
		switch {
		case schedMethods[fn.Name()] && MethodOn(fn, "sim", "Engine", fn.Name()):
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if isShardCall(pass, sel.X) {
				pass.Reportf(call.Pos(),
					"%s on another shard's engine from inside a shard callback: the event bypasses "+
						"the merge barrier and races that shard's window; stage it through Send/SendEvent",
					fn.Name())
				return true
			}
			if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
				obj := pass.Info.Uses[id]
				if obj != nil && shardVars[obj] && !declaredWithin(obj, lit) {
					pass.Reportf(call.Pos(),
						"%s on captured shard engine %s from inside a shard callback: use the callback's "+
							"own engine parameter, or stage cross-shard work through Send/SendEvent",
						fn.Name(), id.Name)
				}
			}
		case (fn.Name() == "Send" || fn.Name() == "SendEvent") &&
			MethodOn(fn, "sim", "ShardedEngine", fn.Name()) && len(call.Args) >= 3:
			checkSendAt(pass, call.Args[2], minLookahead, haveLookahead)
		}
		return true
	})
}

func declaredWithin(obj types.Object, lit *ast.FuncLit) bool {
	return obj.Pos() >= lit.Pos() && obj.Pos() < lit.End()
}

// checkSendAt applies rule 2 to a staged send's timestamp.
func checkSendAt(pass *Pass, at ast.Expr, minLookahead int64, haveLookahead bool) {
	e := ast.Unparen(at)
	if isNowCall(pass, e) {
		pass.Reportf(at.Pos(),
			"cross-shard send scheduled at Now(): the lookahead contract requires at least the "+
				"lookahead of latency, so this is always clamped to the window barrier (CrossClamped)")
		return
	}
	bin, ok := e.(*ast.BinaryExpr)
	if !ok {
		return
	}
	var offset int64
	var haveOffset bool
	switch {
	case bin.Op.String() == "+" && isNowCall(pass, bin.X):
		offset, haveOffset = constInt(pass, bin.Y)
	case bin.Op.String() == "+" && isNowCall(pass, bin.Y):
		offset, haveOffset = constInt(pass, bin.X)
	case bin.Op.String() == "-" && isNowCall(pass, bin.X):
		if v, ok := constInt(pass, bin.Y); ok && v > 0 {
			offset, haveOffset = -v, true
		}
	}
	if !haveOffset {
		return
	}
	if offset <= 0 {
		pass.Reportf(at.Pos(),
			"cross-shard send scheduled at or before Now(): the lookahead contract requires at "+
				"least the lookahead of latency ahead of the staging instant")
		return
	}
	if haveLookahead && offset < minLookahead {
		pass.Reportf(at.Pos(),
			"cross-shard send scheduled Now()+%d with a configured lookahead of %d: inside the "+
				"window it is clamped to the barrier (CrossClamped), overstating cross-shard latency",
			offset, minLookahead)
	}
}

func isNowCall(pass *Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := Callee(pass.Info, call)
	return fn != nil && (MethodOn(fn, "sim", "Engine", "Now") ||
		MethodOn(fn, "sim", "ShardedEngine", "Horizon"))
}

// --- rule 3: ShardChannels + fault injection --------------------------

// checkConfigLit flags an ssd.Config composite literal that carries the
// rejected combination outright.
func checkConfigLit(pass *Pass, lit *ast.CompositeLit) {
	t := pass.TypeOf(lit)
	if t == nil || !IsNamed(t, "ssd", "Config") {
		return
	}
	sharded, faulted := false, false
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		switch key.Name {
		case "ShardChannels":
			sharded = sharded || nonzeroConst(pass, kv.Value)
		case "Fault":
			faulted = faulted || faultEnabledExpr(pass, kv.Value)
		}
	}
	if sharded && faulted {
		pass.Reportf(lit.Pos(),
			"ssd.Config combines ShardChannels with enabled fault injection: ssd.New rejects this "+
				"(recovery feedback is synchronous), so one of the two must go")
	}
}

func nonzeroConst(pass *Pass, e ast.Expr) bool {
	v, ok := constInt(pass, e)
	return ok && v != 0
}

// faultProbFields are the fault.Config fields whose non-zero value
// makes Enabled() true.
var faultProbFields = map[string]bool{
	"ProgramFail": true, "EraseFail": true, "PLockFail": true,
	"BLockFail": true, "ReadBER": true,
}

// faultEnabledExpr reports whether e definitely yields an enabled
// fault.Config: a literal setting a probability field to something
// other than constant zero, or fault.Uniform with a rate not known to
// be zero. Opaque expressions (params, method results) stay silent —
// the runtime rejection owns those.
func faultEnabledExpr(pass *Pass, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		if t := pass.TypeOf(e); t == nil || !IsNamed(t, "fault", "Config") {
			return false
		}
		for _, el := range e.Elts {
			kv, ok := el.(*ast.KeyValueExpr)
			if !ok {
				continue
			}
			key, ok := kv.Key.(*ast.Ident)
			if !ok || !faultProbFields[key.Name] {
				continue
			}
			if v, ok := pass.Info.Types[kv.Value]; ok && v.Value != nil {
				if constant.Sign(constant.ToFloat(v.Value)) != 0 {
					return true
				}
				continue
			}
			return true // non-constant probability: enabled on some input
		}
	case *ast.CallExpr:
		fn := Callee(pass.Info, e)
		if fn == nil || fn.Name() != "Uniform" || fn.Pkg() == nil || fn.Pkg().Name() != "fault" {
			return false
		}
		if len(e.Args) == 0 {
			return false
		}
		if v, ok := pass.Info.Types[e.Args[0]]; ok && v.Value != nil {
			return constant.Sign(constant.ToFloat(v.Value)) > 0
		}
		return true // fault.Uniform(runtimeRate, ...): enabled whenever the rate is
	}
	return false
}

// shardCfgFact tracks one ssd.Config variable's definite facts.
type shardCfgFact struct{ sharded, faulted bool }

type shardCfgFacts map[types.Object]shardCfgFact

type shardCfgFlow struct {
	NoEdgeRefinement
	pass *Pass
}

func (sf *shardCfgFlow) Entry() any { return shardCfgFacts{} }

func (sf *shardCfgFlow) Clone(state any) any {
	src := state.(shardCfgFacts)
	dst := make(shardCfgFacts, len(src))
	for k, v := range src {
		dst[k] = v
	}
	return dst
}

func (sf *shardCfgFlow) Equal(a, b any) bool {
	am, bm := a.(shardCfgFacts), b.(shardCfgFacts)
	if len(am) != len(bm) {
		return false
	}
	for k, v := range am {
		if w, ok := bm[k]; !ok || v != w {
			return false
		}
	}
	return true
}

// Join keeps must-facts only: a fact survives a merge when it holds on
// every in-edge, so one-branch combinations are not reported.
func (sf *shardCfgFlow) Join(dst, src any) any {
	dm, sm := dst.(shardCfgFacts), src.(shardCfgFacts)
	for k, dv := range dm {
		sv, ok := sm[k]
		if !ok {
			delete(dm, k)
			continue
		}
		merged := shardCfgFact{sharded: dv.sharded && sv.sharded, faulted: dv.faulted && sv.faulted}
		if merged == (shardCfgFact{}) {
			delete(dm, k)
			continue
		}
		dm[k] = merged
	}
	return dm
}

func (sf *shardCfgFlow) Transfer(state any, n ast.Node) any {
	s := state.(shardCfgFacts)
	if a, ok := n.(*ast.AssignStmt); ok {
		sf.applyAssign(s, a, nil)
	}
	return s
}

// configObj resolves an identifier of type ssd.Config to its object.
func (sf *shardCfgFlow) configObj(e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	obj := sf.pass.Info.Uses[id]
	if obj == nil {
		obj = sf.pass.Info.Defs[id]
	}
	if obj == nil || obj.Type() == nil || !IsNamed(obj.Type(), "ssd", "Config") {
		return nil
	}
	return obj
}

// applyAssign folds one assignment into the facts. When report is
// non-nil it is called for each variable whose facts this assignment
// completes into the rejected combination.
func (sf *shardCfgFlow) applyAssign(s shardCfgFacts, a *ast.AssignStmt, report func(obj types.Object, at ast.Node)) {
	if len(a.Lhs) != len(a.Rhs) {
		for _, lhs := range a.Lhs {
			if obj := sf.configObj(lhs); obj != nil {
				delete(s, obj)
			}
		}
		return
	}
	for i, lhs := range a.Lhs {
		rhs := a.Rhs[i]
		// Whole-variable assignment: cfg := ssd.Config{...} / cfg2 := cfg.
		if obj := sf.configObj(lhs); obj != nil {
			if src := sf.configObj(rhs); src != nil {
				s[obj] = s[src]
				continue
			}
			if lit, ok := ast.Unparen(rhs).(*ast.CompositeLit); ok {
				f := shardCfgFact{}
				for _, el := range lit.Elts {
					kv, ok := el.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					key, ok := kv.Key.(*ast.Ident)
					if !ok {
						continue
					}
					switch key.Name {
					case "ShardChannels":
						f.sharded = f.sharded || nonzeroConst(sf.pass, kv.Value)
					case "Fault":
						f.faulted = f.faulted || faultEnabledExpr(sf.pass, kv.Value)
					}
				}
				s[obj] = f
				// Both-in-one-literal is checkConfigLit's finding.
				continue
			}
			delete(s, obj)
			continue
		}
		// Field assignment: cfg.ShardChannels = n / cfg.Fault = fc.
		sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
		if !ok {
			continue
		}
		obj := sf.configObj(sel.X)
		if obj == nil {
			continue
		}
		f := s[obj]
		before := f
		switch sel.Sel.Name {
		case "ShardChannels":
			f.sharded = nonzeroConst(sf.pass, rhs)
		case "Fault":
			f.faulted = faultEnabledExpr(sf.pass, rhs)
		default:
			continue
		}
		s[obj] = f
		if report != nil && f.sharded && f.faulted && !(before.sharded && before.faulted) {
			report(obj, a)
		}
	}
}

// checkConfigFlow runs the rule-3 dataflow over one function body.
func checkConfigFlow(pass *Pass, body *ast.BlockStmt) {
	cfg := BuildCFG(body, pass.Info)
	sf := &shardCfgFlow{pass: pass}
	in, converged := cfg.Forward(sf)
	if !converged {
		return
	}
	seen := map[int]bool{}
	for _, blk := range cfg.Blocks {
		if in[blk.ID] == nil {
			continue
		}
		state := sf.Clone(in[blk.ID]).(shardCfgFacts)
		for _, n := range blk.Nodes {
			if a, ok := n.(*ast.AssignStmt); ok {
				sf.applyAssign(state, a, func(obj types.Object, at ast.Node) {
					p := int(at.Pos())
					if seen[p] {
						return
					}
					seen[p] = true
					pass.Reportf(at.Pos(),
						"this assignment completes the ShardChannels+fault-injection combination on %s: "+
							"ssd.New rejects it (recovery feedback is synchronous), and setting it after "+
							"construction bypasses that check entirely", obj.Name())
				})
			} else {
				state = sf.Transfer(state, n).(shardCfgFacts)
			}
		}
	}
}
