package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// seenNodes is a saturating monotone analysis: the state is the set of
// node positions observed on some path. Its lattice is finite (bounded
// by the node count), so Forward must always converge on it.
type seenNodes struct{ NoEdgeRefinement }

func (seenNodes) Entry() any { return map[token.Pos]bool{} }

func (seenNodes) Clone(state any) any {
	src := state.(map[token.Pos]bool)
	dst := make(map[token.Pos]bool, len(src))
	for k := range src {
		dst[k] = true
	}
	return dst
}

func (seenNodes) Transfer(state any, n ast.Node) any {
	state.(map[token.Pos]bool)[n.Pos()] = true
	return state
}

func (seenNodes) Join(dst, src any) any {
	d := dst.(map[token.Pos]bool)
	for k := range src.(map[token.Pos]bool) {
		d[k] = true
	}
	return d
}

func (seenNodes) Equal(a, b any) bool {
	am, bm := a.(map[token.Pos]bool), b.(map[token.Pos]bool)
	if len(am) != len(bm) {
		return false
	}
	for k := range am {
		if !bm[k] {
			return false
		}
	}
	return true
}

func TestForwardReachability(t *testing.T) {
	cfg := buildFromBody(t, "x := 1\nif x > 0 {\nreturn\n}\n_ = x")
	in, converged := cfg.Forward(seenNodes{})
	if !converged {
		t.Fatal("monotone analysis did not converge")
	}
	// The entry block and exit block are reachable; the dead block
	// created after the return must stay nil.
	if in[cfg.Entry().ID] == nil {
		t.Error("entry block has no state")
	}
	if in[cfg.Exit().ID] == nil {
		t.Error("exit block has no state")
	}
	dead := 0
	for _, b := range cfg.Blocks {
		if in[b.ID] == nil {
			dead++
		}
	}
	if dead == 0 {
		t.Error("expected at least one unreachable block (dead code after return)")
	}
	// The exit's entry state must contain every node: both paths lead
	// there, and join is set union.
	exitState := in[cfg.Exit().ID].(map[token.Pos]bool)
	total := 0
	for _, b := range cfg.Blocks {
		if in[b.ID] != nil {
			total += len(b.Nodes)
		}
	}
	if len(exitState) < total-len(cfg.Exit().Nodes) {
		t.Errorf("exit state saw %d nodes, want at least %d", len(exitState), total-len(cfg.Exit().Nodes))
	}
}

// divergent is a deliberately non-monotone "analysis": its state grows
// without bound around loops, so the only way out is the visit budget.
type divergent struct{ NoEdgeRefinement }

func (divergent) Entry() any                         { return 0 }
func (divergent) Clone(state any) any                { return state }
func (divergent) Transfer(state any, _ ast.Node) any { return state.(int) + 1 }
func (divergent) Join(dst, src any) any              { return max(dst.(int), src.(int)) }
func (divergent) Equal(a, b any) bool                { return a.(int) == b.(int) }

func TestForwardBudgetStopsDivergence(t *testing.T) {
	cfg := buildFromBody(t, "s := 0\nfor i := 0; i < 3; i++ {\ns += i\n}\n_ = s")
	_, converged := cfg.Forward(divergent{})
	if converged {
		t.Fatal("divergent analysis reported convergence; the visit budget is not enforced")
	}
}

// FuzzCFGDataflow feeds arbitrary function bodies through CFG
// construction and a saturating monotone analysis, asserting both that
// construction never panics and that the iteration always converges.
func FuzzCFGDataflow(f *testing.F) {
	seeds := []string{
		"x := 1\n_ = x",
		"for i := 0; i < 3; i++ {\nif i == 1 {\ncontinue\n}\nbreak\n}",
		"xs := map[int]int{}\nfor k := range xs {\n_ = k\n}",
		"L:\nfor {\nswitch 1 {\ncase 1:\nbreak L\ndefault:\ngoto L\n}\n}",
		"defer func() {}()\nselect {}",
		"c := make(chan int)\nselect {\ncase <-c:\ncase c <- 1:\nreturn\n}",
		"switch x := any(1).(type) {\ncase int:\n_ = x\nfallthrough\ndefault:\n}",
		"panic(\"x\")",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, body string) {
		src := "package p\n\nfunc f() {\n" + body + "\n}\n"
		fset := token.NewFileSet()
		file, err := parser.ParseFile(fset, "f.go", src, 0)
		if err != nil {
			t.Skip()
		}
		info := NewInfo()
		// Typecheck errors are fine: the builder only consults info to
		// recognize builtins, and partial info must not crash it.
		conf := types.Config{Error: func(error) {}}
		conf.Check("p", fset, []*ast.File{file}, info)
		ast.Inspect(file, func(n ast.Node) bool {
			var b *ast.BlockStmt
			switch n := n.(type) {
			case *ast.FuncDecl:
				b = n.Body
			case *ast.FuncLit:
				b = n.Body
			}
			if b == nil {
				return true
			}
			cfg := BuildCFG(b, info)
			if len(cfg.Blocks) < 2 {
				t.Fatalf("CFG with %d blocks", len(cfg.Blocks))
			}
			if _, converged := cfg.Forward(seenNodes{}); !converged {
				t.Fatalf("saturating analysis failed to converge on:\n%s\n%s", body, cfg)
			}
			return true
		})
	})
}
