package trace

import (
	"fmt"
	"os"
)

// writeFile creates path and streams one exporter into it.
func (r *Recorder) writeFile(path string, write func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return fmt.Errorf("trace: writing %s: %w", path, err)
	}
	return f.Close()
}

// WriteChromeFile writes the Chrome trace_event export to path.
func (r *Recorder) WriteChromeFile(path string) error {
	return r.writeFile(path, func(f *os.File) error { return r.WriteChromeTrace(f) })
}

// WriteJSONLFile writes the JSONL event log to path.
func (r *Recorder) WriteJSONLFile(path string) error {
	return r.writeFile(path, func(f *os.File) error { return r.WriteJSONL(f) })
}

// WriteStatsFile writes the telemetry snapshot JSON to path.
func (r *Recorder) WriteStatsFile(path string) error {
	return r.writeFile(path, func(f *os.File) error { return r.WriteStatsJSON(f) })
}
