package trace

import (
	"fmt"
	"os"

	"repro/internal/sim"
)

// writeFile creates path and streams one exporter into it.
func (r *Recorder) writeFile(path string, write func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return fmt.Errorf("trace: writing %s: %w", path, err)
	}
	return f.Close()
}

// WriteChromeFile writes the Chrome trace_event export to path.
func (r *Recorder) WriteChromeFile(path string) error {
	return r.writeFile(path, func(f *os.File) error { return r.WriteChromeTrace(f) })
}

// WriteJSONLFile writes the JSONL event log to path.
func (r *Recorder) WriteJSONLFile(path string) error {
	return r.writeFile(path, func(f *os.File) error { return r.WriteJSONL(f) })
}

// WriteStatsFile writes the telemetry snapshot JSON to path.
func (r *Recorder) WriteStatsFile(path string) error {
	return r.writeFile(path, func(f *os.File) error { return r.WriteStatsJSON(f) })
}

// WriteOpenMetricsFile writes the OpenMetrics text exposition to path.
func (r *Recorder) WriteOpenMetricsFile(path string) error {
	return r.writeFile(path, func(f *os.File) error { return r.WriteOpenMetrics(f) })
}

// StreamToFile creates path and enables periodic StreamPoint emission
// into it (see StreamTo); the returned closer emits the final point,
// flushes, and closes the file.
func (r *Recorder) StreamToFile(path string, interval int64) (func() error, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	r.StreamTo(f, sim.Micros(interval))
	return func() error {
		serr := r.CloseStream()
		cerr := f.Close()
		if serr != nil {
			return fmt.Errorf("trace: streaming %s: %w", path, serr)
		}
		return cerr
	}, nil
}
