package trace

import (
	"testing"

	"repro/internal/sim"
)

func TestNopCollectorIsDisabled(t *testing.T) {
	var n Nop
	if n.Enabled() {
		t.Fatal("Nop.Enabled() must be false")
	}
	// The no-op methods must be callable without effect.
	n.Op(Event{Class: OpRead, Start: 0, End: 80})
	n.Gauge(GaugeFreeBlocks, 0, 1)
	n.Invalidated(1, true, 0)
	n.Destroyed(1, 10)
}

func TestOpClassStrings(t *testing.T) {
	want := map[OpClass]string{
		OpRead: "read", OpProgram: "program", OpErase: "erase",
		OpPLock: "pLock", OpBLock: "bLock", OpScrub: "scrub",
		OpXfer: "xfer", OpCopyback: "copyback", OpGC: "gc",
		OpHostRead: "host_read", OpHostWrite: "host_write", OpHostTrim: "host_trim",
		OpProgramFail: "program_fail", OpEraseFail: "erase_fail",
		OpPLockFail: "plock_fail", OpBLockFail: "block_fail",
		OpReadRetry: "read_retry", OpRetire: "retire",
		OpPLockBatch: "plock_batch", OpPLockBatchFail: "plock_batch_fail",
		OpProgramMulti: "program_multi", OpReadMulti: "read_multi",
		OpClampWarn: "clamp_warn",
	}
	if len(want) != NumOpClasses {
		t.Fatalf("test covers %d classes, enum has %d", len(want), NumOpClasses)
	}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("OpClass(%d).String() = %q, want %q", c, c.String(), s)
		}
	}
}

func TestRecorderCountsAndLatencies(t *testing.T) {
	r := NewRecorder(RecorderConfig{Chips: 2, Channels: 1})
	r.Op(Event{Class: OpRead, Start: 100, End: 180, Queued: 90, Chip: 0, Channel: 0})
	r.Op(Event{Class: OpRead, Start: 200, End: 280, Queued: 200, Chip: 1, Channel: 0})
	r.Op(Event{Class: OpProgram, Start: 300, End: 1000, Queued: 300, Chip: 0, Channel: 0})

	if got := r.Count(OpRead); got != 2 {
		t.Fatalf("Count(OpRead) = %d, want 2", got)
	}
	if got := r.Count(OpProgram); got != 1 {
		t.Fatalf("Count(OpProgram) = %d, want 1", got)
	}
	if got := r.TotalEvents(); got != 3 {
		t.Fatalf("TotalEvents = %d, want 3", got)
	}
	if got := r.Horizon(); got != 1000 {
		t.Fatalf("Horizon = %v, want 1000", got)
	}
	if got := r.Latencies(OpRead).Mean(); got != 80 {
		t.Fatalf("read latency mean = %v, want 80", got)
	}
	// Only the first read waited (10µs); the mean wait spans both reads.
	if got := r.Wait(OpRead).Mean(); got != 5 {
		t.Fatalf("read wait mean = %v, want 5", got)
	}
	if got := r.LatencyHist(OpRead).N(); got != 2 {
		t.Fatalf("read hist N = %d, want 2", got)
	}
}

func TestRecorderBusyAttribution(t *testing.T) {
	r := NewRecorder(RecorderConfig{Chips: 2, Channels: 2})
	// Chip-resident work on chip 0.
	r.Op(Event{Class: OpRead, Start: 0, End: 80, Chip: 0, Channel: 0})
	r.Op(Event{Class: OpProgram, Start: 80, End: 780, Chip: 0, Channel: 0})
	// Bus transfer on channel 1.
	r.Op(Event{Class: OpXfer, Start: 0, End: 40, Chip: 1, Channel: 1})
	// FTL/host spans overlap chip occupancy; they must not add busy time.
	r.Op(Event{Class: OpGC, Start: 0, End: 5000, Chip: 0, Channel: -1})
	r.Op(Event{Class: OpHostWrite, Start: 0, End: 900, Chip: -1, Channel: -1})

	cu := r.ChipUtilization()
	// Horizon is 5000 (the GC span). Chip 0 busy: 80+700 = 780.
	if got, want := cu[0], 780.0/5000.0; got != want {
		t.Fatalf("chip 0 utilization = %v, want %v", got, want)
	}
	if cu[1] != 0 {
		t.Fatalf("chip 1 utilization = %v, want 0", cu[1])
	}
	bu := r.ChannelUtilization()
	if bu[0] != 0 || bu[1] != 40.0/5000.0 {
		t.Fatalf("channel utilization = %v, want [0, 0.008]", bu)
	}
	// Out-of-range coordinates must not panic or be attributed — but
	// their busy time is counted, so lost attribution is visible.
	r.Op(Event{Class: OpRead, Start: 0, End: 80, Chip: 99, Channel: 99})
	r.Op(Event{Class: OpXfer, Start: 0, End: 40, Chip: -1, Channel: -1})
	busy, events := r.Unattributed()
	if busy != 120 || events != 2 {
		t.Fatalf("Unattributed = (%v, %d), want (120, 2)", busy, events)
	}
	// In-range events must not leak into the unattributed counters.
	if cu2 := r.ChipUtilization(); cu2[0] != cu[0] {
		t.Fatalf("unattributed events changed chip 0 utilization: %v -> %v", cu[0], cu2[0])
	}
}

func TestRecorderMaxEventsDrops(t *testing.T) {
	r := NewRecorder(RecorderConfig{Chips: 1, Channels: 1, MaxEvents: 2})
	for i := 0; i < 5; i++ {
		r.Op(Event{Class: OpRead, Start: sim.Micros(i * 100), End: sim.Micros(i*100 + 80), Chip: 0})
	}
	if len(r.Events()) != 2 {
		t.Fatalf("retained %d events, want 2", len(r.Events()))
	}
	if r.Dropped() != 3 {
		t.Fatalf("Dropped = %d, want 3", r.Dropped())
	}
	// Statistics must keep accumulating past the cap.
	if r.Count(OpRead) != 5 {
		t.Fatalf("Count = %d, want 5", r.Count(OpRead))
	}
	if r.TotalEvents() != 5 {
		t.Fatalf("TotalEvents = %d, want 5", r.TotalEvents())
	}
}

func TestRecorderUnlimitedEvents(t *testing.T) {
	r := NewRecorder(RecorderConfig{Chips: 1, Channels: 1, MaxEvents: -1})
	for i := 0; i < 100; i++ {
		r.Op(Event{Class: OpRead, Start: 0, End: 80, Chip: 0})
	}
	if len(r.Events()) != 100 || r.Dropped() != 0 {
		t.Fatalf("retained %d dropped %d, want 100/0", len(r.Events()), r.Dropped())
	}
}

func TestTInsecureWindowPairing(t *testing.T) {
	r := NewRecorder(RecorderConfig{Chips: 1, Channels: 1})
	// Insecure (non-secured) invalidations never open a window.
	r.Invalidated(7, false, 100)
	if r.OpenInsecure() != 0 {
		t.Fatal("non-secured invalidation opened a window")
	}
	// Secured invalidation opens, lock completion closes.
	r.Invalidated(1, true, 1000)
	if r.OpenInsecure() != 1 {
		t.Fatalf("OpenInsecure = %d, want 1", r.OpenInsecure())
	}
	// Re-invalidating the same page must not reset the window start.
	r.Invalidated(1, true, 1500)
	r.Destroyed(1, 2000)
	if r.OpenInsecure() != 0 {
		t.Fatalf("OpenInsecure = %d after close, want 0", r.OpenInsecure())
	}
	if got := r.TInsecure().Max(); got != 1000 {
		t.Fatalf("T_insecure = %v, want 1000 (from the FIRST invalidation)", got)
	}
	// Destroying a page with no open window is a no-op.
	r.Destroyed(42, 5000)
	if r.TInsecure().N() != 1 {
		t.Fatalf("TInsecure N = %d, want 1", r.TInsecure().N())
	}
}

func TestTInsecureNegativeClampsToZero(t *testing.T) {
	r := NewRecorder(RecorderConfig{Chips: 1, Channels: 1})
	// A GC relocation can record the invalidation (at the post-copy
	// clock) after the lock (anchored at the request start) completed.
	r.Invalidated(3, true, 900)
	r.Destroyed(3, 500)
	if got := r.TInsecure().Max(); got != 0 {
		t.Fatalf("negative window = %v, want clamp to 0", got)
	}
}

func TestRecorderGauges(t *testing.T) {
	r := NewRecorder(RecorderConfig{Chips: 1, Channels: 1})
	r.Gauge(GaugeFreeBlocks, 100, 12)
	r.Gauge(GaugeFreeBlocks, 200, 11)
	r.Gauge(GaugeLockQueue, 100, 3)
	if got := r.GaugeSeries(GaugeFreeBlocks).Len(); got != 2 {
		t.Fatalf("free_blocks series len = %d, want 2", got)
	}
	if got := r.GaugeSeries(GaugeFreeBlocks).Last().V; got != 11 {
		t.Fatalf("free_blocks last = %v, want 11", got)
	}
	if got := r.GaugeSeries(GaugeLockQueue).Len(); got != 1 {
		t.Fatalf("lock_queue series len = %d, want 1", got)
	}
	// The insecure-window gauge tracks open windows automatically.
	r.Invalidated(1, true, 300)
	r.Invalidated(2, true, 400)
	r.Destroyed(1, 500)
	pts := r.GaugeSeries(GaugeInsecureWindows).Points()
	if len(pts) != 3 {
		t.Fatalf("insecure_windows points = %d, want 3", len(pts))
	}
	if pts[1].V != 2 || pts[2].V != 1 {
		t.Fatalf("insecure_windows values = %v, want rise to 2 then fall to 1", pts)
	}
}

func TestEventDur(t *testing.T) {
	ev := Event{Start: 100, End: 180}
	if ev.Dur() != 80 {
		t.Fatalf("Dur = %v, want 80", ev.Dur())
	}
}

func TestClampWarner(t *testing.T) {
	r := NewRecorder(RecorderConfig{Chips: 1, Channels: 1})
	hook := ClampWarner(r)
	if hook == nil {
		t.Fatal("enabled collector must yield a hook")
	}
	hook(10, 100)
	if r.Count(OpClampWarn) != 1 {
		t.Fatalf("Count(OpClampWarn) = %d, want 1", r.Count(OpClampWarn))
	}
	if ClampWarner(Nop{}) != nil {
		t.Fatal("disabled collector must yield a nil hook (no per-clamp overhead)")
	}
}
