package trace

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"repro/internal/audit"
)

// loadedRecorder builds a Recorder carrying every telemetry surface the
// OpenMetrics export covers: ops, gauges, unattributed busy time, and a
// closed audit window.
func loadedRecorder() *Recorder {
	r := NewRecorder(RecorderConfig{Chips: 2, Channels: 1})
	r.Op(Event{Class: OpRead, Start: 0, End: 80, Queued: 0, Chip: 0, Channel: 0})
	r.Op(Event{Class: OpProgram, Start: 80, End: 780, Queued: 80, Chip: 1, Channel: 0})
	r.Op(Event{Class: OpXfer, Start: 0, End: 40, Chip: 0, Channel: 0})
	r.Op(Event{Class: OpRead, Start: 0, End: 80, Chip: 99, Channel: 0}) // unattributed
	r.Gauge(GaugeFreeBlocks, 100, 12)
	r.Gauge(GaugeFreeBlocks, 700, 11)
	r.Audit(audit.Event{Kind: audit.KindCopy, Page: 7, Src: audit.NoSrc, LPA: 3,
		Origin: audit.OriginHost, At: 10})
	r.Audit(audit.Event{Kind: audit.KindInvalidate, Page: 7, Src: audit.NoSrc, LPA: -1, At: 100})
	r.Audit(audit.Event{Kind: audit.KindDestroy, Page: 7, Src: audit.NoSrc, LPA: -1,
		Cause: audit.CausePLock, Dep: 130, At: 400})
	return r
}

// TestOpenMetricsFormat validates the exposition line by line: every
// sample belongs to a declared family, values parse, histogram buckets
// are cumulative with ordered le boundaries, and the output terminates
// with the required # EOF marker.
func TestOpenMetricsFormat(t *testing.T) {
	r := loadedRecorder()
	var buf bytes.Buffer
	if err := r.WriteOpenMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasSuffix(out, "# EOF\n") {
		t.Fatalf("missing # EOF terminator; tail: %q", out[max(0, len(out)-60):])
	}

	declared := map[string]string{} // family -> type
	var curFamily string
	sawEOF := false
	for ln, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
		if line == "# EOF" {
			sawEOF = true
			continue
		}
		if sawEOF {
			t.Fatalf("line %d after # EOF: %q", ln+1, line)
		}
		if strings.HasPrefix(line, "# HELP ") {
			curFamily = strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)[0]
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 || fields[0] != curFamily {
				t.Fatalf("line %d: TYPE not paired with HELP: %q", ln+1, line)
			}
			declared[fields[0]] = fields[1]
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("line %d: unexpected comment %q", ln+1, line)
		}
		// Sample line: name{labels} value
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		base := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if fam := strings.TrimSuffix(name, suf); fam != name && declared[fam] != "" {
				base = fam
				break
			}
		}
		if declared[base] == "" {
			t.Fatalf("line %d: sample %q has no declared family", ln+1, line)
		}
		value := line[strings.LastIndexByte(line, ' ')+1:]
		if _, err := strconv.ParseFloat(value, 64); err != nil {
			t.Fatalf("line %d: unparseable value %q", ln+1, value)
		}
	}
	for _, fam := range []string{
		"secssd_horizon_us", "secssd_ops_total", "secssd_op_latency_us",
		"secssd_unattributed_busy_us_total", "secssd_t_insecure_us",
		"secssd_audit_copies_total", "secssd_audit_destroys_total",
		"secssd_audit_phase_us_total",
	} {
		if declared[fam] == "" {
			t.Errorf("family %s absent", fam)
		}
	}

	// Histogram buckets: le boundaries strictly increasing, counts
	// non-decreasing, +Inf bucket equal to _count.
	var prevLe, prevCum float64
	var infCount, count string
	first := true
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "secssd_op_latency_us_bucket{op=\"read\"") {
			leStr := line[strings.Index(line, `le="`)+4:]
			leStr = leStr[:strings.IndexByte(leStr, '"')]
			cum, _ := strconv.ParseFloat(line[strings.LastIndexByte(line, ' ')+1:], 64)
			if leStr == "+Inf" {
				infCount = line[strings.LastIndexByte(line, ' ')+1:]
				continue
			}
			le, err := strconv.ParseFloat(leStr, 64)
			if err != nil {
				t.Fatalf("bad le %q", leStr)
			}
			if !first && (le <= prevLe || cum < prevCum) {
				t.Fatalf("buckets not ordered/cumulative at le=%v", le)
			}
			prevLe, prevCum, first = le, cum, false
		}
		if strings.HasPrefix(line, "secssd_op_latency_us_count{op=\"read\"}") {
			count = line[strings.LastIndexByte(line, ' ')+1:]
		}
	}
	if infCount == "" || infCount != count {
		t.Fatalf("+Inf bucket %q != _count %q", infCount, count)
	}
}

// TestOpenMetricsDeterministic guards the worker-invariance contract at
// the export layer: two exports of the same recorder are byte-identical.
func TestOpenMetricsDeterministic(t *testing.T) {
	r := loadedRecorder()
	var a, b bytes.Buffer
	if err := r.WriteOpenMetrics(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteOpenMetrics(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("repeated exports differ")
	}
}

// TestOpenMetricsAuditValues spot-checks the audit families against the
// ledger's known state.
func TestOpenMetricsAuditValues(t *testing.T) {
	r := loadedRecorder()
	var buf bytes.Buffer
	if err := r.WriteOpenMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`secssd_audit_copies_total{origin="host"} 1`,
		`secssd_audit_destroys_total{cause="plock"} 1`,
		`secssd_audit_windows_total 1`,
		`secssd_audit_phase_us_total{phase="queue_wait"} 30`,
		`secssd_audit_phase_us_total{phase="pulse"} 270`,
		`secssd_t_insecure_open 0`,
		`secssd_unattributed_busy_us_total 80`,
	} {
		if !strings.Contains(buf.String(), want+"\n") {
			t.Errorf("export missing line %q", want)
		}
	}
}
