package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"

	"repro/internal/metrics"
)

// WriteOpenMetrics writes the Recorder's full telemetry surface —
// counters, per-class latency histograms, gauges, T_insecure summary,
// and the audit ledger — in the OpenMetrics text exposition format
// (also parseable by Prometheus). The output is deterministic: families
// appear in a fixed order, op classes in enum order, chips and channels
// by index, and audit phases/causes in their enum order, so the export
// is bit-identical for any parallel worker count.
func (r *Recorder) WriteOpenMetrics(w io.Writer) error {
	bw := bufio.NewWriter(w)

	num := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	family := func(name, typ, help string) {
		fmt.Fprintf(bw, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	}

	family("secssd_horizon_us", "gauge", "Latest simulated completion time.")
	fmt.Fprintf(bw, "secssd_horizon_us %d\n", int64(r.horizon))
	family("secssd_events_total", "counter", "Operations observed (including dropped).")
	fmt.Fprintf(bw, "secssd_events_total %d\n", r.TotalEvents())
	family("secssd_dropped_events_total", "counter", "Events discarded by the retention cap.")
	fmt.Fprintf(bw, "secssd_dropped_events_total %d\n", r.dropped)

	family("secssd_ops_total", "counter", "Operations per class.")
	for c := 0; c < NumOpClasses; c++ {
		if r.classCount[c] == 0 {
			continue
		}
		fmt.Fprintf(bw, "secssd_ops_total{op=%q} %d\n", OpClass(c).String(), r.classCount[c])
	}

	family("secssd_op_latency_us", "histogram", "Service-time distribution per op class.")
	for c := 0; c < NumOpClasses; c++ {
		if r.classCount[c] == 0 {
			continue
		}
		writeHistogram(bw, num, "secssd_op_latency_us", OpClass(c).String(),
			r.classHist[c], &r.classLat[c])
	}

	family("secssd_chip_busy_us_total", "counter", "Accumulated busy time per chip.")
	for i, b := range r.chipBusy {
		fmt.Fprintf(bw, "secssd_chip_busy_us_total{chip=\"%d\"} %d\n", i, int64(b))
	}
	family("secssd_channel_busy_us_total", "counter", "Accumulated busy time per channel bus.")
	for i, b := range r.chanBusy {
		fmt.Fprintf(bw, "secssd_channel_busy_us_total{channel=\"%d\"} %d\n", i, int64(b))
	}
	family("secssd_unattributed_busy_us_total", "counter",
		"Busy time recorded with out-of-range chip/channel coordinates.")
	fmt.Fprintf(bw, "secssd_unattributed_busy_us_total %d\n", int64(r.unattrBusy))
	family("secssd_unattributed_events_total", "counter",
		"Events whose busy time could not be attributed.")
	fmt.Fprintf(bw, "secssd_unattributed_events_total %d\n", r.unattrEvents)

	family("secssd_gauge", "gauge", "Last sampled value per device gauge.")
	for k := 0; k < NumGaugeKinds; k++ {
		if r.gauges[k].Len() == 0 {
			continue
		}
		fmt.Fprintf(bw, "secssd_gauge{kind=%q} %s\n", GaugeKind(k).String(), num(r.gauges[k].Last().V))
	}

	writeSummary(bw, num, "secssd_t_insecure_us",
		"Per-copy T_insecure windows (invalidation to destruction).", r.ledger.TInsec())
	writeSummary(bw, num, "secssd_secret_window_us",
		"Per-secret multi-copy insecurity windows.", r.ledger.Windows())

	st := r.ledger.Stats(r.horizon)
	family("secssd_t_insecure_open", "gauge", "Still-open T_insecure windows.")
	fmt.Fprintf(bw, "secssd_t_insecure_open %d\n", st.ExposedCopies)
	family("secssd_t_insecure_open_oldest_us", "gauge", "Age of the oldest open window.")
	fmt.Fprintf(bw, "secssd_t_insecure_open_oldest_us %d\n", st.OldestOpenUs)

	family("secssd_audit_secrets", "gauge", "Secrets tracked by the provenance ledger.")
	fmt.Fprintf(bw, "secssd_audit_secrets %d\n", st.Secrets)
	family("secssd_audit_open_secrets", "gauge", "Secrets with at least one exposed copy.")
	fmt.Fprintf(bw, "secssd_audit_open_secrets %d\n", st.OpenSecrets)
	family("secssd_audit_live_copies", "gauge", "Registered copies still holding live data.")
	fmt.Fprintf(bw, "secssd_audit_live_copies %d\n", st.LiveCopies)

	family("secssd_audit_copies_total", "counter", "Physical copies registered per origin.")
	fmt.Fprintf(bw, "secssd_audit_copies_total{origin=\"host\"} %d\n", st.Copies.Host)
	fmt.Fprintf(bw, "secssd_audit_copies_total{origin=\"gc\"} %d\n", st.Copies.GC)
	fmt.Fprintf(bw, "secssd_audit_copies_total{origin=\"evacuate\"} %d\n", st.Copies.Evacuate)
	fmt.Fprintf(bw, "secssd_audit_copies_total{origin=\"quarantine\"} %d\n", st.Copies.Quarantine)
	fmt.Fprintf(bw, "secssd_audit_copies_total{origin=\"unknown\"} %d\n", st.Copies.Unknown)

	family("secssd_audit_destroys_total", "counter", "Copies destroyed per cause.")
	fmt.Fprintf(bw, "secssd_audit_destroys_total{cause=\"unspecified\"} %d\n", st.Destroys.Unspecified)
	fmt.Fprintf(bw, "secssd_audit_destroys_total{cause=\"plock\"} %d\n", st.Destroys.PLock)
	fmt.Fprintf(bw, "secssd_audit_destroys_total{cause=\"plock_batch\"} %d\n", st.Destroys.PLockBatch)
	fmt.Fprintf(bw, "secssd_audit_destroys_total{cause=\"block\"} %d\n", st.Destroys.BLock)
	fmt.Fprintf(bw, "secssd_audit_destroys_total{cause=\"erase\"} %d\n", st.Destroys.Erase)
	fmt.Fprintf(bw, "secssd_audit_destroys_total{cause=\"scrub\"} %d\n", st.Destroys.Scrub)

	family("secssd_audit_windows_total", "counter", "Closed per-secret windows.")
	fmt.Fprintf(bw, "secssd_audit_windows_total %d\n", st.Windows)
	family("secssd_audit_reopened_windows_total", "counter", "Relocation-induced reopenings.")
	fmt.Fprintf(bw, "secssd_audit_reopened_windows_total %d\n", st.ReopenedWindows)
	family("secssd_audit_ladder_windows_total", "counter", "Windows involving a recovery-ladder rung.")
	fmt.Fprintf(bw, "secssd_audit_ladder_windows_total %d\n", st.LadderWindows)
	family("secssd_audit_ladder_destroys_total", "counter", "Copies destroyed under the recovery ladder.")
	fmt.Fprintf(bw, "secssd_audit_ladder_destroys_total %d\n", st.LadderDestroys)

	family("secssd_audit_phase_us_total", "counter", "Window time attributed per phase.")
	fmt.Fprintf(bw, "secssd_audit_phase_us_total{phase=\"queue_wait\"} %d\n", st.Phases.QueueWait)
	fmt.Fprintf(bw, "secssd_audit_phase_us_total{phase=\"batch_wait\"} %d\n", st.Phases.BatchWait)
	fmt.Fprintf(bw, "secssd_audit_phase_us_total{phase=\"reopen\"} %d\n", st.Phases.Reopen)
	fmt.Fprintf(bw, "secssd_audit_phase_us_total{phase=\"pulse\"} %d\n", st.Phases.Pulse)
	fmt.Fprintf(bw, "secssd_audit_phase_us_total{phase=\"ladder\"} %d\n", st.Phases.Ladder)

	fmt.Fprint(bw, "# EOF\n")
	return bw.Flush()
}

// writeHistogram emits one labeled series of a histogram family:
// cumulative le buckets (underflow values below the range count into
// every finite bucket; overflow only into +Inf), then _sum (exact, from
// the latency sample) and _count.
func writeHistogram(w io.Writer, num func(float64) string, name, op string,
	h *metrics.Histogram, lat *metrics.Sample) {
	under, _ := h.OutOfRange()
	cum := under
	for i := 0; i < h.Bins(); i++ {
		cum += h.Bin(i)
		fmt.Fprintf(w, "%s_bucket{op=%q,le=%q} %d\n", name, op, num(h.BinUpper(i)), cum)
	}
	fmt.Fprintf(w, "%s_bucket{op=%q,le=\"+Inf\"} %d\n", name, op, h.N())
	var sum float64
	for _, x := range lat.Sorted() {
		sum += x
	}
	fmt.Fprintf(w, "%s_sum{op=%q} %s\n", name, op, num(sum))
	fmt.Fprintf(w, "%s_count{op=%q} %d\n", name, op, h.N())
}

// writeSummary emits a summary family with p50/p99 quantiles (omitted
// when the sample is empty; _sum and _count always appear).
func writeSummary(w io.Writer, num func(float64) string, name, help string, s *metrics.Sample) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s summary\n", name, help, name)
	xs := s.Sorted()
	var sum float64
	for _, x := range xs {
		sum += x
	}
	if len(xs) > 0 {
		fmt.Fprintf(w, "%s{quantile=\"0.5\"} %s\n", name, num(sortedQuantile(xs, 0.5)))
		fmt.Fprintf(w, "%s{quantile=\"0.99\"} %s\n", name, num(sortedQuantile(xs, 0.99)))
	}
	fmt.Fprintf(w, "%s_sum %s\n", name, num(sum))
	fmt.Fprintf(w, "%s_count %d\n", name, len(xs))
}
