package trace

import (
	"bytes"
	"encoding/json"
	"os"
	"testing"
)

// goldenRecorder replays a small fixed event sequence.
func goldenRecorder() *Recorder {
	r := NewRecorder(RecorderConfig{Chips: 2, Channels: 1})
	r.Op(Event{Class: OpRead, Start: 100, End: 180, Queued: 90,
		Chip: 0, Channel: 0, Block: 3, Page: 7, LPA: -1})
	r.Op(Event{Class: OpHostWrite, Start: 0, End: 820, Queued: 0,
		Chip: -1, Channel: -1, Block: -1, Page: -1, LPA: 42, Pages: 8})
	r.Op(Event{Class: OpBLock, Start: 200, End: 500, Queued: 200,
		Chip: 1, Channel: 0, Block: 9, Page: -1, LPA: -1})
	return r
}

func TestWriteJSONLGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRecorder().WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile("testdata/events.golden.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("JSONL output diverged from golden file:\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

func TestWriteJSONLRoundTrips(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRecorder().WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	dec := json.NewDecoder(&buf)
	var n int
	for dec.More() {
		var m map[string]any
		if err := dec.Decode(&m); err != nil {
			t.Fatalf("line %d: %v", n, err)
		}
		for _, key := range []string{"op", "start_us", "end_us", "queued_us", "chip", "channel", "block", "page", "lpa", "pages"} {
			if _, ok := m[key]; !ok {
				t.Fatalf("line %d missing key %q", n, key)
			}
		}
		n++
	}
	if n != 3 {
		t.Fatalf("decoded %d lines, want 3", n)
	}
}

// chromeFile mirrors the trace_event JSON object format for decoding.
type chromeFile struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Cat  string         `json:"cat"`
		Ph   string         `json:"ph"`
		Ts   int64          `json:"ts"`
		Dur  int64          `json:"dur"`
		Pid  int            `json:"pid"`
		Tid  int            `json:"tid"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	Metadata        map[string]any `json:"metadata"`
}

func TestWriteChromeTraceSchema(t *testing.T) {
	r := goldenRecorder()
	r.Gauge(GaugeFreeBlocks, 100, 12)
	r.Gauge(GaugeFreeBlocks, 300, 11)

	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var f chromeFile
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if f.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q, want ms", f.DisplayTimeUnit)
	}

	var meta, complete, counters int
	var lastTs int64 = -1
	for _, ev := range f.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
		case "X":
			complete++
			// Complete events are globally sorted by start time, which
			// makes every per-track sequence monotone too.
			if ev.Ts < lastTs {
				t.Fatalf("X events out of order: ts %d after %d", ev.Ts, lastTs)
			}
			lastTs = ev.Ts
		case "C":
			counters++
		default:
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
	}
	if complete != 3 {
		t.Fatalf("complete events = %d, want 3", complete)
	}
	if counters != 2 {
		t.Fatalf("counter events = %d, want 2", counters)
	}
	if meta == 0 {
		t.Fatal("no track metadata emitted")
	}
	// The wait_us arg appears only on the event that queued.
	var sawWait bool
	for _, ev := range f.TraceEvents {
		if ev.Ph == "X" && ev.Name == "read" {
			if w, ok := ev.Args["wait_us"].(float64); ok && w == 10 {
				sawWait = true
			}
		}
	}
	if !sawWait {
		t.Fatal("read event missing wait_us=10 arg")
	}
}

func TestWriteChromeTraceReportsDrops(t *testing.T) {
	r := NewRecorder(RecorderConfig{Chips: 1, Channels: 1, MaxEvents: 1})
	r.Op(Event{Class: OpRead, Start: 0, End: 80, Chip: 0})
	r.Op(Event{Class: OpRead, Start: 100, End: 180, Chip: 0})
	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var f chromeFile
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatal(err)
	}
	if got, ok := f.Metadata["dropped_events"].(float64); !ok || got != 1 {
		t.Fatalf("metadata dropped_events = %v, want 1", f.Metadata["dropped_events"])
	}
}

func TestSnapshot(t *testing.T) {
	r := goldenRecorder()
	r.Gauge(GaugeLockQueue, 50, 4)
	r.Invalidated(1, true, 100)
	r.Destroyed(1, 400)

	sn := r.Snapshot()
	if sn.Events != 3 || sn.DroppedEvents != 0 {
		t.Fatalf("Events/Dropped = %d/%d, want 3/0", sn.Events, sn.DroppedEvents)
	}
	if sn.HorizonUs != 820 {
		t.Fatalf("HorizonUs = %d, want 820", sn.HorizonUs)
	}
	// Only op classes actually observed appear.
	if len(sn.Ops) != 3 {
		t.Fatalf("Ops has %d entries, want 3: %v", len(sn.Ops), sn.Ops)
	}
	read, ok := sn.Ops["read"]
	if !ok {
		t.Fatal("Ops missing read")
	}
	if read.Count != 1 || read.MeanUs != 80 || read.MeanWaitUs != 10 {
		t.Fatalf("read stats = %+v", read)
	}
	if sn.TInsecure.Count != 1 || sn.TInsecure.MaxUs != 300 {
		t.Fatalf("TInsecure = %+v, want one 300µs window", sn.TInsecure)
	}
	if _, ok := sn.Gauges["lock_queue"]; !ok {
		t.Fatal("Gauges missing lock_queue")
	}
	if len(sn.ChipUtil) != 2 || len(sn.ChanUtil) != 1 {
		t.Fatalf("util lengths = %d/%d, want 2/1", len(sn.ChipUtil), len(sn.ChanUtil))
	}

	// Snapshot must not disturb the live sample: quantile queries go
	// through Sorted() copies.
	r.Latencies(OpRead).Add(5)
	if r.Latencies(OpRead).N() != 2 {
		t.Fatal("live sample broken after Snapshot")
	}
	var buf bytes.Buffer
	if err := r.WriteStatsJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded Snapshot
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("stats JSON does not round-trip: %v", err)
	}
}
