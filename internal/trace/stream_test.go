package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/audit"
)

func decodeStream(t *testing.T, buf *bytes.Buffer) []StreamPoint {
	t.Helper()
	var pts []StreamPoint
	dec := json.NewDecoder(strings.NewReader(buf.String()))
	for dec.More() {
		var p StreamPoint
		if err := dec.Decode(&p); err != nil {
			t.Fatalf("bad stream line: %v", err)
		}
		pts = append(pts, p)
	}
	return pts
}

// TestStreamEmitsOnBoundaryCrossings: one point per crossed interval
// boundary, with the cursor skipping past the horizon so a long quiet
// stretch costs a single line.
func TestStreamEmitsOnBoundaryCrossings(t *testing.T) {
	r := NewRecorder(RecorderConfig{Chips: 1, Channels: 1})
	var buf bytes.Buffer
	r.StreamTo(&buf, 1000)

	r.Op(Event{Class: OpRead, Start: 0, End: 500, Chip: 0})     // before first boundary
	r.Op(Event{Class: OpRead, Start: 500, End: 1200, Chip: 0})  // crosses 1000
	r.Op(Event{Class: OpRead, Start: 1200, End: 1800, Chip: 0}) // same interval: no point
	r.Op(Event{Class: OpRead, Start: 1800, End: 5500, Chip: 0}) // jumps 2000..5000: ONE point
	if err := r.CloseStream(); err != nil {
		t.Fatal(err)
	}

	pts := decodeStream(t, &buf)
	// Crossing at 1000, crossing at 2000 (nominal first boundary of the
	// jump), and the final point at the horizon.
	if len(pts) != 3 {
		t.Fatalf("got %d points, want 3: %+v", len(pts), pts)
	}
	if pts[0].TUs != 1000 || pts[0].HorizonUs != 1200 {
		t.Fatalf("first point = %+v, want t=1000 horizon=1200", pts[0])
	}
	if pts[1].TUs != 2000 || pts[1].HorizonUs != 5500 {
		t.Fatalf("jump point = %+v, want t=2000 horizon=5500", pts[1])
	}
	if pts[2].TUs != 5500 || pts[2].HorizonUs != 5500 {
		t.Fatalf("final point = %+v, want t=horizon=5500", pts[2])
	}
	// Cumulative event counts must be non-decreasing.
	for i := 1; i < len(pts); i++ {
		if pts[i].Events < pts[i-1].Events {
			t.Fatalf("event count regressed: %+v", pts)
		}
	}
}

// TestStreamCarriesAuditState: open-window count, oldest age, and phase
// totals ride along on every point.
func TestStreamCarriesAuditState(t *testing.T) {
	r := NewRecorder(RecorderConfig{Chips: 1, Channels: 1})
	var buf bytes.Buffer
	r.StreamTo(&buf, 1000)

	r.Audit(audit.Event{Kind: audit.KindCopy, Page: 1, Src: audit.NoSrc, LPA: 4,
		Origin: audit.OriginHost, At: 10})
	r.Audit(audit.Event{Kind: audit.KindInvalidate, Page: 1, Src: audit.NoSrc, LPA: -1, At: 200})
	r.Op(Event{Class: OpRead, Start: 900, End: 1100, Chip: 0}) // boundary: window still open
	r.Audit(audit.Event{Kind: audit.KindDestroy, Page: 1, Src: audit.NoSrc, LPA: -1,
		Cause: audit.CausePLock, Dep: 230, At: 1500})
	r.Op(Event{Class: OpRead, Start: 1500, End: 2100, Chip: 0}) // boundary: window closed
	if err := r.CloseStream(); err != nil {
		t.Fatal(err)
	}

	pts := decodeStream(t, &buf)
	if len(pts) != 3 {
		t.Fatalf("got %d points, want 3", len(pts))
	}
	open := pts[0]
	if open.OpenInsecure != 1 || open.ExposedCopies != 1 {
		t.Fatalf("open point = %+v, want one open window", open)
	}
	// Oldest age is measured at the recorder's horizon (1100 - 200).
	if open.OpenOldestUs != 900 {
		t.Fatalf("oldest open age = %d, want 900", open.OpenOldestUs)
	}
	closed := pts[1]
	if closed.OpenInsecure != 0 || closed.TInsecClosed != 1 || closed.TInsecSumUs != 1300 {
		t.Fatalf("closed point = %+v, want one closed window of 1300µs", closed)
	}
	if closed.Windows != 1 || closed.WindowSumUs != 1300 {
		t.Fatalf("secret window = %+v, want 1/1300", closed)
	}
	if got := closed.Phases.QueueWait + closed.Phases.Pulse; got != 1300 {
		t.Fatalf("phases = %+v, want sum 1300", closed.Phases)
	}
}

// TestStreamIntervalClamp: a non-positive interval degrades to 1µs
// rather than dividing by zero.
func TestStreamIntervalClamp(t *testing.T) {
	r := NewRecorder(RecorderConfig{Chips: 1, Channels: 1})
	var buf bytes.Buffer
	r.StreamTo(&buf, 0)
	r.Op(Event{Class: OpRead, Start: 0, End: 3, Chip: 0})
	if err := r.CloseStream(); err != nil {
		t.Fatal(err)
	}
	if pts := decodeStream(t, &buf); len(pts) == 0 {
		t.Fatal("no points emitted")
	}
	if r.stream != nil {
		t.Fatal("stream not detached after close")
	}
}
