package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/audit"
	"repro/internal/metrics"
)

// jsonlEvent is the JSONL wire form of an Event. Field order is the
// golden-file contract; keep it stable.
type jsonlEvent struct {
	Op      string `json:"op"`
	StartUs int64  `json:"start_us"`
	EndUs   int64  `json:"end_us"`
	QueueUs int64  `json:"queued_us"`
	Chip    int    `json:"chip"`
	Channel int    `json:"channel"`
	Block   int    `json:"block"`
	Page    int    `json:"page"`
	LPA     int64  `json:"lpa"`
	Pages   int    `json:"pages"`
}

// WriteJSONL writes the retained events as one JSON object per line, in
// recording order.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, ev := range r.events {
		if err := enc.Encode(jsonlEvent{
			Op:      ev.Class.String(),
			StartUs: int64(ev.Start),
			EndUs:   int64(ev.End),
			QueueUs: int64(ev.Queued),
			Chip:    ev.Chip,
			Channel: ev.Channel,
			Block:   ev.Block,
			Page:    ev.Page,
			LPA:     ev.LPA,
			Pages:   ev.Pages,
		}); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Chrome trace_event track layout:
//
//	pid 0            "host"        — one track of request spans
//	pid 1            "ftl"         — one GC track per chip
//	pid 2+channel    "channel c"   — tid 0 the bus, tid 1+chip each chip
const (
	chromePidHost = 0
	chromePidFTL  = 1
	chromePidChan = 2
)

type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Dur  int64          `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

func chromeTrack(ev Event) (pid, tid int) {
	switch ev.Class {
	case OpHostRead, OpHostWrite, OpHostTrim:
		return chromePidHost, 0
	case OpGC:
		return chromePidFTL, ev.Chip
	case OpXfer:
		return chromePidChan + ev.Channel, 0
	default:
		return chromePidChan + ev.Channel, 1 + ev.Chip
	}
}

func chromeCat(ev Event) string {
	switch ev.Class {
	case OpHostRead, OpHostWrite, OpHostTrim:
		return "host"
	case OpGC:
		return "ftl"
	case OpXfer:
		return "bus"
	default:
		return "nand"
	}
}

// chromeGaugePoints caps the counter samples exported per gauge so huge
// runs stay loadable; the Downsample keeps first/last and bucket tails.
const chromeGaugePoints = 2000

// WriteChromeTrace writes the retained events in the Chrome trace_event
// JSON object format, loadable by Perfetto (ui.perfetto.dev) and
// chrome://tracing. Operations become complete ("X") events laid out per
// chip and per channel bus; gauges become counter ("C") tracks. Events
// are sorted by start time, so every track's timestamps are monotone.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	evs := make([]chromeEvent, 0, len(r.events)+32)

	// Track-naming metadata.
	meta := func(pid, tid int, kind, name string) {
		evs = append(evs, chromeEvent{
			Name: kind, Ph: "M", Pid: pid, Tid: tid,
			Args: map[string]any{"name": name},
		})
	}
	meta(chromePidHost, 0, "process_name", "host")
	meta(chromePidFTL, 0, "process_name", "ftl")
	for c := 0; c < r.cfg.Channels; c++ {
		meta(chromePidChan+c, 0, "process_name", fmt.Sprintf("channel %d", c))
		meta(chromePidChan+c, 0, "thread_name", "bus")
	}
	chipsPerChan := 1
	if r.cfg.Channels > 0 && r.cfg.Chips > 0 {
		chipsPerChan = r.cfg.Chips / r.cfg.Channels
	}
	for chip := 0; chip < r.cfg.Chips; chip++ {
		ch := chip / chipsPerChan
		meta(chromePidChan+ch, 1+chip, "thread_name", fmt.Sprintf("chip %d", chip))
		meta(chromePidFTL, chip, "thread_name", fmt.Sprintf("gc chip %d", chip))
	}

	body := make([]chromeEvent, 0, len(r.events))
	for _, ev := range r.events {
		pid, tid := chromeTrack(ev)
		ce := chromeEvent{
			Name: ev.Class.String(),
			Cat:  chromeCat(ev),
			Ph:   "X",
			Ts:   int64(ev.Start),
			Dur:  int64(ev.Dur()),
			Pid:  pid,
			Tid:  tid,
		}
		args := map[string]any{}
		if ev.Block >= 0 {
			args["block"] = ev.Block
		}
		if ev.Page >= 0 {
			args["page"] = ev.Page
		}
		if ev.LPA >= 0 {
			args["lpa"] = ev.LPA
		}
		if ev.Pages > 0 {
			args["pages"] = ev.Pages
		}
		if ev.Queued < ev.Start {
			args["wait_us"] = int64(ev.Start - ev.Queued)
		}
		if len(args) > 0 {
			ce.Args = args
		}
		body = append(body, ce)
	}
	sort.SliceStable(body, func(i, j int) bool { return body[i].Ts < body[j].Ts })
	evs = append(evs, body...)

	for k := range r.gauges {
		for _, p := range r.gauges[k].Downsample(chromeGaugePoints) {
			evs = append(evs, chromeEvent{
				Name: GaugeKind(k).String(),
				Cat:  "gauge",
				Ph:   "C",
				Ts:   p.T,
				Pid:  chromePidFTL,
				Args: map[string]any{"value": p.V},
			})
		}
	}

	out := struct {
		TraceEvents     []chromeEvent  `json:"traceEvents"`
		DisplayTimeUnit string         `json:"displayTimeUnit"`
		Metadata        map[string]any `json:"metadata,omitempty"`
	}{
		TraceEvents:     evs,
		DisplayTimeUnit: "ms",
	}
	if r.dropped > 0 {
		out.Metadata = map[string]any{"dropped_events": r.dropped}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// LatencyStats summarizes one duration distribution in µs.
type LatencyStats struct {
	Count  uint64  `json:"count"`
	MeanUs float64 `json:"mean_us"`
	P50Us  float64 `json:"p50_us"`
	P99Us  float64 `json:"p99_us"`
	MaxUs  float64 `json:"max_us"`
}

// latStats summarizes a Sample without mutating it: Sample.Quantile
// sorts in place, so exporters work on the Sorted() copy and leave the
// live, still-accumulating sample untouched.
func latStats(s *metrics.Sample) LatencyStats {
	xs := s.Sorted()
	st := LatencyStats{Count: uint64(len(xs))}
	if len(xs) == 0 {
		return st
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	st.MeanUs = sum / float64(len(xs))
	st.P50Us = sortedQuantile(xs, 0.5)
	st.P99Us = sortedQuantile(xs, 0.99)
	st.MaxUs = xs[len(xs)-1]
	return st
}

// sortedQuantile interpolates the q-th quantile of an ascending slice.
func sortedQuantile(xs []float64, q float64) float64 {
	pos := q * float64(len(xs)-1)
	lo := int(pos)
	if lo >= len(xs)-1 {
		return xs[len(xs)-1]
	}
	frac := pos - float64(lo)
	return xs[lo]*(1-frac) + xs[lo+1]*frac
}

// OpStats is one op class's entry in the telemetry snapshot.
type OpStats struct {
	LatencyStats
	MeanWaitUs    float64 `json:"mean_wait_us"`
	HistUnderflow uint64  `json:"hist_underflow"`
	HistOverflow  uint64  `json:"hist_overflow"`
}

// GaugePoint is one (simulated-µs, value) sample of a gauge.
type GaugePoint struct {
	TUs int64   `json:"t_us"`
	V   float64 `json:"v"`
}

// Snapshot is the JSON-serializable telemetry summary of a run.
type Snapshot struct {
	HorizonUs     int64              `json:"horizon_us"`
	Events        int                `json:"events"`
	DroppedEvents uint64             `json:"dropped_events"`
	Ops           map[string]OpStats `json:"ops"`
	ChipUtil      []float64          `json:"chip_util"`
	ChanUtil      []float64          `json:"chan_util"`
	// UnattributedBusyUs / UnattributedEvents count busy time recorded
	// with out-of-range chip/channel coordinates — work that would
	// otherwise silently vanish from the utilization figures.
	UnattributedBusyUs int64        `json:"unattributed_busy_us"`
	UnattributedEvents uint64       `json:"unattributed_events"`
	TInsecure          LatencyStats `json:"t_insecure_us"`
	OpenInsecure       int          `json:"t_insecure_open"`
	// OpenOldestUs is the age (µs before the horizon) of the oldest
	// still-open T_insecure window; 0 when none is open. Open windows
	// are reported, not silently dropped.
	OpenOldestUs int64 `json:"t_insecure_open_oldest_us"`
	// SecretWindows summarizes the per-secret multi-copy windows closed
	// by the audit ledger; Audit carries the full ledger summary.
	SecretWindows LatencyStats            `json:"secret_window_us"`
	Audit         audit.Stats             `json:"audit"`
	Gauges        map[string][]GaugePoint `json:"gauges"`
}

// snapshotGaugePoints caps each gauge series in the snapshot.
const snapshotGaugePoints = 512

// Snapshot summarizes the recorder's state. It does not mutate the
// recorder, so it can be taken mid-run.
func (r *Recorder) Snapshot() Snapshot {
	aud := r.ledger.Stats(r.horizon)
	sn := Snapshot{
		HorizonUs:          int64(r.horizon),
		Events:             len(r.events),
		DroppedEvents:      r.dropped,
		Ops:                make(map[string]OpStats),
		ChipUtil:           r.ChipUtilization(),
		ChanUtil:           r.ChannelUtilization(),
		UnattributedBusyUs: int64(r.unattrBusy),
		UnattributedEvents: r.unattrEvents,
		TInsecure:          latStats(r.ledger.TInsec()),
		OpenInsecure:       r.ledger.OpenCopies(),
		OpenOldestUs:       aud.OldestOpenUs,
		SecretWindows:      latStats(r.ledger.Windows()),
		Audit:              aud,
		Gauges:             make(map[string][]GaugePoint),
	}
	for c := 0; c < NumOpClasses; c++ {
		if r.classCount[c] == 0 {
			continue
		}
		under, over := r.classHist[c].OutOfRange()
		sn.Ops[OpClass(c).String()] = OpStats{
			LatencyStats:  latStats(&r.classLat[c]),
			MeanWaitUs:    r.classWait[c].Mean(),
			HistUnderflow: under,
			HistOverflow:  over,
		}
	}
	for k := range r.gauges {
		pts := r.gauges[k].Downsample(snapshotGaugePoints)
		if len(pts) == 0 {
			continue
		}
		out := make([]GaugePoint, len(pts))
		for i, p := range pts {
			out[i] = GaugePoint{TUs: p.T, V: p.V}
		}
		sn.Gauges[GaugeKind(k).String()] = out
	}
	return sn
}

// WriteStatsJSON writes the Snapshot as indented JSON.
func (r *Recorder) WriteStatsJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
