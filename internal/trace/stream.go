package trace

import (
	"bufio"
	"encoding/json"
	"io"

	"repro/internal/audit"
	"repro/internal/sim"
)

// StreamPoint is one periodic telemetry sample of a running simulation:
// a compact cumulative snapshot emitted every stats interval of
// *simulated* time, written as one JSONL line. All fields are running
// totals derived from the deterministic event stream, so the series is
// bit-identical across parallel worker counts.
type StreamPoint struct {
	// TUs is the sample's nominal simulated time: the first stats-interval
	// boundary the run crossed since the previous point.
	TUs int64 `json:"t_us"`
	// HorizonUs is the actual latest completion time when the point was
	// emitted (>= TUs).
	HorizonUs     int64  `json:"horizon_us"`
	Events        uint64 `json:"events"`
	DroppedEvents uint64 `json:"dropped_events"`
	HostReads     uint64 `json:"host_reads"`
	HostWrites    uint64 `json:"host_writes"`
	HostTrims     uint64 `json:"host_trims"`
	GCPasses      uint64 `json:"gc_passes"`
	PLocks        uint64 `json:"plocks"`
	PLockBatches  uint64 `json:"plock_batches"`
	BLocks        uint64 `json:"blocks"`
	Erases        uint64 `json:"erases"`
	// OpenInsecure and OpenOldestUs report the still-open T_insecure
	// windows (count and oldest age) at emission time.
	OpenInsecure int   `json:"t_insecure_open"`
	OpenOldestUs int64 `json:"t_insecure_open_oldest_us"`
	// TInsecClosed / TInsecSumUs summarize the closed per-copy windows.
	TInsecClosed int   `json:"t_insecure_closed"`
	TInsecSumUs  int64 `json:"t_insecure_sum_us"`
	// Windows / WindowSumUs / Phases summarize the per-secret ledger.
	Windows            uint64               `json:"secret_windows"`
	WindowSumUs        int64                `json:"secret_window_sum_us"`
	ExposedCopies      int                  `json:"exposed_copies"`
	Phases             audit.PhaseBreakdown `json:"phase_us"`
	UnattributedBusyUs int64                `json:"unattributed_busy_us"`
}

// streamState drives the periodic emitter.
type streamState struct {
	w        *bufio.Writer
	enc      *json.Encoder
	interval sim.Micros
	next     sim.Micros
	err      error
}

// StreamTo enables periodic telemetry: every interval of simulated time
// (measured on the event horizon) the Recorder writes one StreamPoint
// line to w. interval must be positive. Call CloseStream when the run
// finishes to emit the final point and flush.
func (r *Recorder) StreamTo(w io.Writer, interval sim.Micros) {
	if interval <= 0 {
		interval = 1
	}
	bw := bufio.NewWriter(w)
	r.stream = &streamState{w: bw, enc: json.NewEncoder(bw), interval: interval, next: interval}
}

// CloseStream emits a final point at the current horizon, flushes the
// stream, and returns the first write error encountered (nil when
// streaming was never enabled).
func (r *Recorder) CloseStream() error {
	s := r.stream
	if s == nil {
		return nil
	}
	r.writeStreamPoint(r.horizon)
	if err := s.w.Flush(); err != nil && s.err == nil {
		s.err = err
	}
	r.stream = nil
	return s.err
}

// emitStreamPoint fires when the horizon crosses the next boundary: one
// point is written for the first crossed boundary, then the cursor
// skips past the horizon so a big time jump costs one line, not one per
// interval.
func (r *Recorder) emitStreamPoint() {
	s := r.stream
	r.writeStreamPoint(s.next)
	s.next = (r.horizon/s.interval + 1) * s.interval
}

func (r *Recorder) writeStreamPoint(t sim.Micros) {
	s := r.stream
	if s.err != nil {
		return
	}
	st := r.ledger.Stats(r.horizon)
	p := StreamPoint{
		TUs:                int64(t),
		HorizonUs:          int64(r.horizon),
		Events:             r.TotalEvents(),
		DroppedEvents:      r.dropped,
		HostReads:          r.classCount[OpHostRead],
		HostWrites:         r.classCount[OpHostWrite],
		HostTrims:          r.classCount[OpHostTrim],
		GCPasses:           r.classCount[OpGC],
		PLocks:             r.classCount[OpPLock],
		PLockBatches:       r.classCount[OpPLockBatch],
		BLocks:             r.classCount[OpBLock],
		Erases:             r.classCount[OpErase],
		OpenInsecure:       r.ledger.OpenCopies(),
		OpenOldestUs:       st.OldestOpenUs,
		TInsecClosed:       r.ledger.TInsec().N(),
		TInsecSumUs:        int64(r.ledger.TInsecSum()),
		Windows:            st.Windows,
		WindowSumUs:        st.WindowSumUs,
		ExposedCopies:      st.ExposedCopies,
		Phases:             st.Phases,
		UnattributedBusyUs: int64(r.unattrBusy),
	}
	s.err = s.enc.Encode(p)
}
