package trace

import (
	"repro/internal/audit"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// DefaultMaxEvents caps the retained event log (≈64 B/event). Statistics
// keep accumulating past the cap; only the raw event list stops growing,
// and Dropped() reports how many events it lost.
const DefaultMaxEvents = 1 << 20

// latencyHistBins configures the per-class latency histograms: 40 bins
// over [0µs, 4000µs) spans every NAND command latency (tBERS = 3500µs is
// the slowest); host requests and GC passes that queue longer land in the
// overflow bin, which Histogram.Render now displays.
const (
	latencyHistLo   = 0
	latencyHistHi   = 4000
	latencyHistBins = 40
)

// RecorderConfig sizes a Recorder for a device.
type RecorderConfig struct {
	// Chips and Channels size the busy-time accumulators. Events with
	// out-of-range coordinates are still recorded, just not attributed.
	Chips    int
	Channels int
	// MaxEvents caps the retained event list (DefaultMaxEvents when 0,
	// unlimited when negative).
	MaxEvents int
}

// Recorder is the standard Collector: it retains events, accumulates
// per-op-class latency distributions, per-chip/per-channel busy time,
// device gauges, and the T_insecure windows of secured pages.
type Recorder struct {
	cfg RecorderConfig

	events  []Event
	dropped uint64
	horizon sim.Micros // latest End seen

	classCount [numOpClasses]uint64
	classLat   [numOpClasses]metrics.Sample
	classHist  [numOpClasses]*metrics.Histogram
	classWait  [numOpClasses]metrics.Summary

	chipBusy []sim.Micros
	chanBusy []sim.Micros

	// Busy time (and event count) that could not be attributed to any
	// chip or channel because the event carried out-of-range coordinates.
	unattrBusy   sim.Micros
	unattrEvents uint64

	gauges [numGaugeKinds]*metrics.Series

	ledger *audit.Ledger

	stream *streamState
}

// NewRecorder builds a Recorder for a device with the given layout.
func NewRecorder(cfg RecorderConfig) *Recorder {
	if cfg.MaxEvents == 0 {
		cfg.MaxEvents = DefaultMaxEvents
	}
	r := &Recorder{
		cfg:      cfg,
		chipBusy: make([]sim.Micros, max(cfg.Chips, 0)),
		chanBusy: make([]sim.Micros, max(cfg.Channels, 0)),
		ledger:   audit.NewLedger(),
	}
	for c := range r.classHist {
		r.classHist[c] = metrics.NewHistogram(latencyHistLo, latencyHistHi, latencyHistBins)
	}
	for k := range r.gauges {
		r.gauges[k] = metrics.NewSeries(GaugeKind(k).String())
	}
	return r
}

// Enabled implements Collector.
func (r *Recorder) Enabled() bool { return true }

// Op implements Collector.
func (r *Recorder) Op(ev Event) {
	if r.cfg.MaxEvents < 0 || len(r.events) < r.cfg.MaxEvents {
		r.events = append(r.events, ev)
	} else {
		r.dropped++
	}
	if ev.End > r.horizon {
		r.horizon = ev.End
	}
	r.classCount[ev.Class]++
	d := float64(ev.Dur())
	r.classLat[ev.Class].Add(d)
	r.classHist[ev.Class].Add(d)
	if ev.Queued <= ev.Start {
		r.classWait[ev.Class].Add(float64(ev.Start - ev.Queued))
	}
	switch ev.Class {
	case OpXfer:
		if ev.Channel >= 0 && ev.Channel < len(r.chanBusy) {
			r.chanBusy[ev.Channel] += ev.Dur()
		} else {
			r.unattrBusy += ev.Dur()
			r.unattrEvents++
		}
	case OpGC, OpHostRead, OpHostWrite, OpHostTrim,
		OpProgramFail, OpEraseFail, OpPLockFail, OpBLockFail, OpRetire,
		OpPLockBatchFail, OpClampWarn:
		// FTL/host-level spans and fault/recovery markers overlap chip
		// occupancy (the underlying chip op already counted); not busy
		// time. OpReadRetry IS busy time: each failed attempt burned
		// tREAD on the chip, so it falls through to the default case.
	default:
		if ev.Chip >= 0 && ev.Chip < len(r.chipBusy) {
			r.chipBusy[ev.Chip] += ev.Dur()
		} else {
			// A chip op with out-of-range coordinates would silently
			// vanish from the utilization books; count it instead of
			// pretending the device was idle.
			r.unattrBusy += ev.Dur()
			r.unattrEvents++
		}
	}
	if r.stream != nil && r.horizon >= r.stream.next {
		r.emitStreamPoint()
	}
}

// Gauge implements Collector.
func (r *Recorder) Gauge(kind GaugeKind, at sim.Micros, v float64) {
	if int(kind) < len(r.gauges) {
		r.gauges[kind].Record(int64(at), v)
	}
}

// Invalidated implements Collector.
func (r *Recorder) Invalidated(page uint32, secured bool, at sim.Micros) {
	if !secured {
		return
	}
	r.Audit(audit.Event{Kind: audit.KindInvalidate, Page: page, Src: audit.NoSrc, LPA: -1, At: at})
}

// Destroyed implements Collector. It forwards to the audit ledger as an
// unattributed destruction; the FTL's instrumented destroy sites call
// Audit directly with the cause, issue time, and ladder flag instead.
func (r *Recorder) Destroyed(page uint32, at sim.Micros) {
	r.Audit(audit.Event{Kind: audit.KindDestroy, Page: page, Src: audit.NoSrc, LPA: -1, Dep: at, At: at})
}

// Audit implements Collector: events feed the provenance ledger, and
// exposure changes keep the insecure-windows gauge exactly as the
// legacy per-page tracker emitted it.
func (r *Recorder) Audit(ev audit.Event) {
	if r.ledger.Record(ev) {
		r.Gauge(GaugeInsecureWindows, ev.At, float64(r.ledger.OpenCopies()))
	}
}

// Events returns the retained events. The slice is owned by the Recorder.
func (r *Recorder) Events() []Event { return r.events }

// TotalEvents reports every operation observed, retained or dropped.
func (r *Recorder) TotalEvents() uint64 {
	var n uint64
	for _, c := range r.classCount {
		n += c
	}
	return n
}

// Dropped reports how many events the MaxEvents cap discarded.
func (r *Recorder) Dropped() uint64 { return r.dropped }

// Horizon returns the latest completion time observed.
func (r *Recorder) Horizon() sim.Micros { return r.horizon }

// Count returns how many operations of the class were recorded
// (including any dropped from the event list).
func (r *Recorder) Count(c OpClass) uint64 { return r.classCount[c] }

// Latencies returns the class's service-time sample (µs). The Sample is
// owned by the Recorder.
func (r *Recorder) Latencies(c OpClass) *metrics.Sample { return &r.classLat[c] }

// LatencyHist returns the class's latency histogram (µs).
func (r *Recorder) LatencyHist(c OpClass) *metrics.Histogram { return r.classHist[c] }

// Wait returns the class's queueing-delay summary (µs between issue and
// service start).
func (r *Recorder) Wait(c OpClass) *metrics.Summary { return &r.classWait[c] }

// GaugeSeries returns the recorded time series of a gauge.
func (r *Recorder) GaugeSeries(kind GaugeKind) *metrics.Series { return r.gauges[kind] }

// TInsecure returns the closed T_insecure windows (µs from invalidation
// of a secured page to its physical destruction).
func (r *Recorder) TInsecure() *metrics.Sample { return r.ledger.TInsec() }

// OpenInsecure reports how many secured pages are currently invalidated
// but not yet destroyed.
func (r *Recorder) OpenInsecure() int { return r.ledger.OpenCopies() }

// AuditLedger exposes the provenance ledger for reports and
// verification.
func (r *Recorder) AuditLedger() *audit.Ledger { return r.ledger }

// Unattributed reports busy time (and how many events carried it) that
// could not be attributed to any chip or channel because of
// out-of-range coordinates.
func (r *Recorder) Unattributed() (busy sim.Micros, events uint64) {
	return r.unattrBusy, r.unattrEvents
}

// ChipUtilization returns each chip's busy time as a fraction of the
// horizon.
func (r *Recorder) ChipUtilization() []float64 {
	return utilization(r.chipBusy, r.horizon)
}

// ChannelUtilization returns each channel bus's busy time as a fraction
// of the horizon.
func (r *Recorder) ChannelUtilization() []float64 {
	return utilization(r.chanBusy, r.horizon)
}

func utilization(busy []sim.Micros, horizon sim.Micros) []float64 {
	out := make([]float64, len(busy))
	if horizon <= 0 {
		return out
	}
	for i, b := range busy {
		out[i] = float64(b) / float64(horizon)
	}
	return out
}
