// Package trace is the device-wide tracing and telemetry layer of the
// SecureSSD simulator. It captures every simulated operation — NAND
// commands (read/program/erase/pLock/bLock/scrub), channel transfers, GC
// relocation passes, and host requests — as structured events with
// simulated start/end timestamps and chip/channel/block/page coordinates,
// plus live gauges (free blocks, lock-queue depth, page-status counts)
// and a T_insecure tracker measuring how long each secured page sits
// invalidated but not yet physically locked.
//
// The layer is wired behind the Collector interface. The Nop collector
// makes every call a no-op behind a single predictable branch, so the
// simulator's hot path pays near nothing when tracing is disabled; the
// Recorder implementation accumulates events, per-op-class latency
// statistics and gauges, and exports them as a JSONL event log, a Chrome
// trace_event file (opens directly in Perfetto / chrome://tracing), or a
// JSON telemetry snapshot.
package trace

import (
	"fmt"

	"repro/internal/audit"
	"repro/internal/sim"
)

// OpClass labels one kind of simulated activity.
type OpClass uint8

const (
	// OpRead is a NAND page read (tREAD) on a chip.
	OpRead OpClass = iota
	// OpProgram is a NAND page program (tPROG) on a chip.
	OpProgram
	// OpErase is a NAND block erase (tBERS) on a chip.
	OpErase
	// OpPLock is an Evanesco page lock (tpLock) on a chip.
	OpPLock
	// OpBLock is an Evanesco block lock (tbLock) on a chip.
	OpBLock
	// OpScrub is a reprogram-based scrub pulse on a chip.
	OpScrub
	// OpXfer is a page transfer on a channel bus.
	OpXfer
	// OpCopyback is an on-chip GC data move (internal read + program).
	OpCopyback
	// OpGC is one FTL garbage-collection pass over a victim block.
	OpGC
	// OpHostRead is a host read request (arrival to completion).
	OpHostRead
	// OpHostWrite is a host write request.
	OpHostWrite
	// OpHostTrim is a host trim request.
	OpHostTrim
	// OpProgramFail marks an injected program failure the FTL recovered
	// from (retry on a fresh page + quarantine of the consumed one). The
	// chip-level busy time is carried by the accompanying OpProgram
	// event; the marker classes below are zero-width annotations.
	OpProgramFail
	// OpEraseFail marks an injected erase failure (block retired).
	OpEraseFail
	// OpPLockFail marks an injected pLock failure (escalated to bLock).
	OpPLockFail
	// OpBLockFail marks an injected bLock failure (copy-out + erase).
	OpBLockFail
	// OpReadRetry is one failed read attempt (injected uncorrectable
	// errors) that the device retried. Unlike the markers above it is a
	// real chip occupancy: each attempt burned tREAD.
	OpReadRetry
	// OpRetire marks a block being retired from rotation after repeated
	// erase failures.
	OpRetire
	// OpPLockBatch is one batched SBPI pulse locking several pages of a
	// wordline at once (tpLock of chip occupancy, however many pages).
	OpPLockBatch
	// OpPLockBatchFail marks an injected batched-pulse failure (the lock
	// manager degrades to per-page retries). Marker: the burned tpLock is
	// carried by the accompanying OpPLockBatch event.
	OpPLockBatchFail
	// OpProgramMulti is a multi-plane program: one shared tPROG of cell
	// activity covering one page per plane (bus transfers are separate
	// OpXfer events, which is what makes the overlap visible in
	// Perfetto).
	OpProgramMulti
	// OpReadMulti is a multi-plane read: one shared tREAD covering one
	// page per plane.
	OpReadMulti
	// OpClampWarn marks a simulation-engine event scheduled in the past
	// and clamped to the current time (zero-width diagnostic marker).
	OpClampWarn
	numOpClasses
)

// NumOpClasses is the number of distinct event classes.
const NumOpClasses = int(numOpClasses)

func (c OpClass) String() string {
	switch c {
	case OpRead:
		return "read"
	case OpProgram:
		return "program"
	case OpErase:
		return "erase"
	case OpPLock:
		return "pLock"
	case OpBLock:
		return "bLock"
	case OpScrub:
		return "scrub"
	case OpXfer:
		return "xfer"
	case OpCopyback:
		return "copyback"
	case OpGC:
		return "gc"
	case OpHostRead:
		return "host_read"
	case OpHostWrite:
		return "host_write"
	case OpHostTrim:
		return "host_trim"
	case OpProgramFail:
		return "program_fail"
	case OpEraseFail:
		return "erase_fail"
	case OpPLockFail:
		return "plock_fail"
	case OpBLockFail:
		return "block_fail"
	case OpReadRetry:
		return "read_retry"
	case OpRetire:
		return "retire"
	case OpPLockBatch:
		return "plock_batch"
	case OpPLockBatchFail:
		return "plock_batch_fail"
	case OpProgramMulti:
		return "program_multi"
	case OpReadMulti:
		return "read_multi"
	case OpClampWarn:
		return "clamp_warn"
	default:
		return fmt.Sprintf("OpClass(%d)", uint8(c))
	}
}

// Event is one completed simulated operation. Coordinate fields not
// meaningful for the class are -1 (e.g. a host request has no chip, a
// bus transfer no block). Block is the device-global block index.
type Event struct {
	Class   OpClass
	Start   sim.Micros // when the resource began serving the operation
	End     sim.Micros // completion time
	Queued  sim.Micros // when the operation was issued (Start-Queued = queueing delay)
	Chip    int
	Channel int
	Block   int
	Page    int
	LPA     int64 // logical page of a host request (-1 otherwise)
	Pages   int   // host request length in pages (0 otherwise)
}

// Dur returns the event's service duration.
func (e Event) Dur() sim.Micros { return e.End - e.Start }

// ClampWarner adapts a Collector into a sim.Engine OnClamp hook: each
// past-time scheduling clamp emits an OpClampWarn marker (Start = the
// requested time, End = the clock it was clamped to) so scheduling bugs
// show up in the Perfetto export instead of silently reordering.
func ClampWarner(c Collector) func(requested, now sim.Micros) {
	if !c.Enabled() {
		return nil
	}
	return func(requested, now sim.Micros) {
		c.Op(Event{Class: OpClampWarn, Start: requested, End: now, Chip: -1, Channel: -1, LPA: -1})
	}
}

// GaugeKind labels a sampled device-level quantity.
type GaugeKind uint8

const (
	// GaugeFreeBlocks is the device-wide reusable-block count.
	GaugeFreeBlocks GaugeKind = iota
	// GaugeLockQueue is the lock manager's pending-sanitize queue depth
	// (pages awaiting a pLock/bLock decision) at request flush.
	GaugeLockQueue
	// GaugeValidPages is the count of live pages without a sanitization
	// requirement.
	GaugeValidPages
	// GaugeSecuredPages is the count of live pages requiring sanitization
	// on invalidation.
	GaugeSecuredPages
	// GaugeInvalidPages is the count of stale pages awaiting GC.
	GaugeInvalidPages
	// GaugeInsecureWindows is the number of secured pages currently
	// invalidated but not yet physically destroyed (open T_insecure
	// windows). The Recorder maintains it internally.
	GaugeInsecureWindows
	// GaugeRetiredBlocks is the device-wide count of blocks retired after
	// erase failures.
	GaugeRetiredBlocks
	numGaugeKinds
)

// NumGaugeKinds is the number of distinct gauge kinds.
const NumGaugeKinds = int(numGaugeKinds)

func (k GaugeKind) String() string {
	switch k {
	case GaugeFreeBlocks:
		return "free_blocks"
	case GaugeLockQueue:
		return "lock_queue"
	case GaugeValidPages:
		return "valid_pages"
	case GaugeSecuredPages:
		return "secured_pages"
	case GaugeInvalidPages:
		return "invalid_pages"
	case GaugeInsecureWindows:
		return "insecure_windows"
	case GaugeRetiredBlocks:
		return "retired_blocks"
	default:
		return fmt.Sprintf("GaugeKind(%d)", uint8(k))
	}
}

// Collector receives telemetry from the simulator. Implementations must
// be cheap when disabled: every producer guards its calls with a single
// Enabled() check captured at construction, and Event values are passed
// on the stack, so a disabled collector costs one predictable branch.
type Collector interface {
	// Enabled reports whether the collector wants events at all.
	// Producers cache the result; it must not change over a run.
	Enabled() bool
	// Op records one completed operation.
	Op(ev Event)
	// Gauge records one sample of a device-level quantity.
	Gauge(kind GaugeKind, at sim.Micros, v float64)
	// Invalidated reports that a live physical page became stale at the
	// given simulated time. Secured pages open a T_insecure window.
	Invalidated(page uint32, secured bool, at sim.Micros)
	// Destroyed reports that a stale page's data physically ceased to be
	// readable (lock, scrub, or erase completion), closing any open
	// T_insecure window on the page. It is shorthand for an Audit
	// destruction with no cause attribution; producers use one or the
	// other for a given destruction, never both.
	Destroyed(page uint32, at sim.Micros)
	// Audit records one sanitization-provenance event (see package
	// audit): copy registrations of secured data and cause-attributed
	// destructions. Like Op, the Event is passed on the stack; producers
	// must not allocate to build one.
	Audit(ev audit.Event)
}

// Nop is the disabled collector: every method is a no-op.
type Nop struct{}

// Enabled implements Collector.
func (Nop) Enabled() bool { return false }

// Op implements Collector.
func (Nop) Op(Event) {}

// Gauge implements Collector.
func (Nop) Gauge(GaugeKind, sim.Micros, float64) {}

// Invalidated implements Collector.
func (Nop) Invalidated(uint32, bool, sim.Micros) {}

// Destroyed implements Collector.
func (Nop) Destroyed(uint32, sim.Micros) {}

// Audit implements Collector.
func (Nop) Audit(audit.Event) {}
