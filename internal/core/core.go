// Package core is the public facade of the Evanesco reproduction: it
// assembles the full SecureSSD stack — Evanesco-enabled NAND chips, the
// lock-manager FTL, a file layer with the paper's O_INSEC interface — and
// exposes the operations a downstream user needs:
//
//	dev, _ := core.New(core.Options{})
//	dev.WriteFile("medical.db", data, core.Secure)
//	dev.DeleteFile("medical.db")               // pLock/bLock fire here
//	dev.ForensicScan([]byte("patient"))        // -> no findings
//
// plus the paper's verification primitives: the C1/C2 sanitization
// checker, a raw-chip forensic scan (the §5.1 threat model), and
// retention time travel to demonstrate multi-year lock durability.
package core

import (
	"errors"
	"fmt"

	"repro/internal/blockio"
	"repro/internal/fault"
	"repro/internal/filesys"
	"repro/internal/ftl"
	"repro/internal/nand"
	"repro/internal/nand/vth"
	"repro/internal/sanitize"
	"repro/internal/ssd"
	"repro/internal/trace"
)

// SecurityMode selects a file's sanitization requirement.
type SecurityMode int

const (
	// Secure files are sanitized on delete/update (the device default).
	Secure SecurityMode = iota
	// Insecure files opt out via O_INSEC for performance.
	Insecure
)

// PolicyName selects the device's sanitization machinery.
type PolicyName string

// The five §7 configurations.
const (
	PolicyBaseline   PolicyName = "baseline"
	PolicyErase      PolicyName = "erSSD"
	PolicyScrub      PolicyName = "scrSSD"
	PolicySecNoBLock PolicyName = "secSSD_nobLock"
	PolicyEvanesco   PolicyName = "secSSD"
)

// policyFor maps names to implementations.
func policyFor(name PolicyName) (ftl.Policy, error) {
	switch name {
	case PolicyBaseline:
		return sanitize.Baseline(), nil
	case PolicyErase:
		return sanitize.ErSSD(), nil
	case PolicyScrub:
		return sanitize.ScrSSD(), nil
	case PolicySecNoBLock:
		return sanitize.SecSSDNoBLock(), nil
	case PolicyEvanesco, "":
		return sanitize.SecSSD(), nil
	default:
		return nil, fmt.Errorf("core: unknown policy %q", name)
	}
}

// Options configures a Device. The zero value builds a compact Evanesco
// SecureSSD suitable for examples and tests; set PaperScale for the
// paper's full 32-GiB configuration.
type Options struct {
	Policy     PolicyName
	PaperScale bool
	Seed       int64
	// Chip/device overrides (zero = derived from PaperScale).
	Channels        int
	ChipsPerChannel int
	BlocksPerChip   int
	WLsPerBlock     int
	PageBytes       int
	// FaultRate enables deterministic fault injection (program/erase/
	// pLock/bLock failures plus read bit errors) at the given per-op
	// probability; zero disables it. FaultSeed zero derives the schedule
	// from Seed.
	FaultRate float64
	FaultSeed int64
	// Planes sets the per-chip plane count (zero = 1, no multi-plane
	// commands). BlocksPerChip must divide evenly across planes.
	Planes int
	// NoCachePipeline disables cache-mode read/program pipelining
	// (ablation; see ssd.Config).
	NoCachePipeline bool
	// LockBatch enables wordline-aware pLock batching in the lock
	// manager (see ftl.LockBatchConfig).
	LockBatch ftl.LockBatchConfig
	// Trace attaches a telemetry collector (typically a *trace.Recorder)
	// to the device; nil disables tracing.
	Trace trace.Collector
}

// Device is an assembled SecureSSD with its file layer.
type Device struct {
	ssd *ssd.SSD
	fs  *filesys.FS
}

// New assembles the stack.
func New(opts Options) (*Device, error) {
	policy, err := policyFor(opts.Policy)
	if err != nil {
		return nil, err
	}
	cfg := ssd.DefaultConfig(policy)
	if !opts.PaperScale {
		// Compact: 2×2 chips, 32 blocks × 16 TLC WLs, 4-KiB pages (48 MiB).
		cfg.Channels, cfg.ChipsPerChannel = 2, 2
		cfg.Chip = nand.Geometry{
			Blocks:          32,
			WLsPerBlock:     16,
			CellKind:        vth.TLC,
			PageBytes:       4096,
			FlagCells:       9,
			EnduranceCycles: 1000,
		}
		cfg.OverProvision = 0.20
		cfg.GCFreeBlocksLow = 2
	}
	if opts.Channels > 0 {
		cfg.Channels = opts.Channels
	}
	if opts.ChipsPerChannel > 0 {
		cfg.ChipsPerChannel = opts.ChipsPerChannel
	}
	if opts.BlocksPerChip > 0 {
		cfg.Chip.Blocks = opts.BlocksPerChip
	}
	if opts.WLsPerBlock > 0 {
		cfg.Chip.WLsPerBlock = opts.WLsPerBlock
	}
	if opts.PageBytes > 0 {
		cfg.Chip.PageBytes = opts.PageBytes
	}
	if opts.Seed != 0 {
		cfg.Seed = opts.Seed
	}
	if opts.FaultRate > 0 {
		cfg.Fault = fault.Uniform(opts.FaultRate, opts.FaultSeed)
	}
	cfg.Planes = opts.Planes
	cfg.NoCachePipeline = opts.NoCachePipeline
	cfg.LockBatch = opts.LockBatch
	cfg.Trace = opts.Trace
	dev, err := ssd.New(cfg)
	if err != nil {
		return nil, err
	}
	fs, err := filesys.New(dev, int64(dev.LogicalPages()), cfg.Chip.PageBytes)
	if err != nil {
		return nil, err
	}
	return &Device{ssd: dev, fs: fs}, nil
}

// SSD exposes the device model (stats, chips, FTL).
func (d *Device) SSD() *ssd.SSD { return d.ssd }

// FS exposes the file layer.
func (d *Device) FS() *filesys.FS { return d.fs }

// PageBytes returns the logical page size.
func (d *Device) PageBytes() int { return d.ssd.Geometry().PageBytes }

// WriteFile creates (or replaces) a file with the given contents.
func (d *Device) WriteFile(name string, data []byte, mode SecurityMode) error {
	if f, ok := d.fs.Lookup(name); ok {
		if err := d.fs.Delete(f); err != nil {
			return err
		}
	}
	var flags filesys.OpenFlag
	if mode == Insecure {
		flags |= filesys.OInsec
	}
	f, err := d.fs.Create(name, flags)
	if err != nil {
		return err
	}
	return d.fs.AppendData(f, data)
}

// AppendFile appends contents to an existing file.
func (d *Device) AppendFile(name string, data []byte) error {
	f, ok := d.fs.Lookup(name)
	if !ok {
		return filesys.ErrNotFound
	}
	return d.fs.AppendData(f, data)
}

// ReadFile returns the file's contents (padded to whole pages).
func (d *Device) ReadFile(name string) ([]byte, error) {
	f, ok := d.fs.Lookup(name)
	if !ok {
		return nil, filesys.ErrNotFound
	}
	return d.fs.ReadAll(f)
}

// DeleteFile securely deletes a file: unlink, trim, and — for secure
// files on an Evanesco device — immediate pLock/bLock of every stale
// physical page before the call returns.
func (d *Device) DeleteFile(name string) error {
	f, ok := d.fs.Lookup(name)
	if !ok {
		return filesys.ErrNotFound
	}
	return d.fs.Delete(f)
}

// AdvanceRetention ages every chip by the given number of days,
// exercising flag/SSL charge loss (locks must hold for 5 years).
func (d *Device) AdvanceRetention(days float64) {
	for _, c := range d.ssd.Chips() {
		c.AdvanceDays(days)
	}
}

// Report returns the device activity summary.
func (d *Device) Report() ssd.Report { return d.ssd.Report() }

// Wear returns the device's block erase-count statistics.
func (d *Device) Wear() ftl.WearStats { return d.ssd.FTL().Wear() }

// Purge locks every stale physical page on the device (the drive-level
// secure-purge built from pLock/bLock). Live data is untouched and no
// block is erased.
func (d *Device) Purge() error { return d.ssd.SanitizeAll() }

// Sync drains any deferred sanitization work: with a positive lock-batch
// deadline, queued pLocks may ride across requests, and Sync is the
// barrier that pulses them all. A no-op in every other configuration.
func (d *Device) Sync() { d.ssd.FlushLocks() }

// Finding is one forensic hit: recovered content at a physical location.
type Finding struct {
	Chip, Block, Page int
}

// ForensicScan plays the §5.1 attacker: it dumps every physical page of
// every chip through the raw interface and reports where needle appears.
// On an Evanesco device, deleted secure data never shows up — locked
// pages read all-zero.
func (d *Device) ForensicScan(needle []byte) []Finding {
	var hits []Finding
	for ci, chip := range d.ssd.Chips() {
		geo := chip.Geometry()
		for b := 0; b < geo.Blocks; b++ {
			for p, data := range chip.ForensicDump(b, 0) {
				if containsBytes(data, needle) {
					hits = append(hits, Finding{Chip: ci, Block: b, Page: p})
				}
			}
		}
	}
	return hits
}

func containsBytes(haystack, needle []byte) bool {
	if len(needle) == 0 || len(haystack) < len(needle) {
		return false
	}
outer:
	for i := 0; i+len(needle) <= len(haystack); i++ {
		for j := range needle {
			if haystack[i+j] != needle[j] {
				continue outer
			}
		}
		return true
	}
	return false
}

// ErrSanitizationViolated is returned by VerifySanitization when stale
// data is still readable at the chip level.
var ErrSanitizationViolated = errors.New("core: stale secured data is readable on a raw chip")

// VerifySanitization checks the paper's C1/C2 conditions device-wide:
// every physical page that is readable through the raw chip interface
// and contains data must be live in the FTL. Stale (invalid) pages with
// recoverable contents violate sanitization. Baseline devices are
// expected to fail this check after updates or deletes.
func (d *Device) VerifySanitization() error {
	f := d.ssd.FTL()
	g := d.ssd.Geometry()
	for p := 0; p < g.TotalPages(); p++ {
		ppa := ftl.PPA(p)
		if f.Status(ppa).Live() || f.Status(ppa) == ftl.PageFree {
			continue
		}
		chip := d.ssd.Chips()[g.ChipOf(ppa)]
		res, err := chip.Read(nand.PageAddr{
			Block: g.BlockInChip(g.BlockOf(ppa)),
			Page:  g.PageInBlock(ppa),
		}, 0)
		if err != nil {
			continue // locked or unreadable: sanitized
		}
		for _, b := range res.Data {
			if b != 0 {
				return fmt.Errorf("%w: physical page %d", ErrSanitizationViolated, p)
			}
		}
	}
	return nil
}

// Churn writes pseudo-random secure traffic to force GC activity; it is
// used by examples and tests to reach steady state. To avoid clobbering
// files (which the file layer allocates from the bottom of the logical
// space), churn targets the upper half.
func (d *Device) Churn(requests int, seed int64) error {
	logical := int64(d.ssd.LogicalPages())
	span := logical / 2
	state := uint64(seed)*2862933555777941757 + 3037000493
	for i := 0; i < requests; i++ {
		state = state*2862933555777941757 + 3037000493
		lpa := int64(state>>17) % span
		if lpa < 0 {
			lpa = -lpa
		}
		lpa += logical - span
		if _, err := d.ssd.Submit(blockio.Request{Op: blockio.OpWrite, LPA: lpa, Pages: 1}); err != nil {
			return err
		}
	}
	return nil
}
