package core

import (
	"repro/internal/fault"
	"repro/internal/filesys"
	"repro/internal/nand"
)

// Crash and recovery facade: arm a deterministic power cut, run workload
// until it fires, remount. See internal/ssd/remount.go for the device
// semantics and internal/nand/powerloss.go for what each interrupted
// operation leaves on the media.

// ArmPowerCut schedules a deterministic power loss on the device: the
// cut fires on the spec.AfterOps-th matching chip operation. Wrap the
// workload in RunUntilPowerLoss to observe it.
func (d *Device) ArmPowerCut(spec fault.CutSpec) error { return d.ssd.ArmPowerCut(spec) }

// RunUntilPowerLoss runs fn, catching the armed power cut if it fires.
// It returns the loss record (nil if fn completed without a cut) and
// fn's error. After a loss the device rejects I/O until Remount.
func (d *Device) RunUntilPowerLoss(fn func() error) (*nand.PowerLoss, error) {
	return d.ssd.CapturePowerLoss(fn)
}

// Remount models the post-crash reboot of the whole stack: the SSD
// rebuilds its FTL from the surviving media (re-running the sanitization
// policy over stale copies the crash orphaned), and the file-system
// layer comes back empty — like a real FS whose metadata journal has not
// been replayed yet. Callers modeling journal recovery re-create files
// and re-issue the trims of completed deletes themselves (see
// internal/attack's replay step). Remount on a healthy device is legal
// and leaves media state unchanged.
func (d *Device) Remount() error {
	if err := d.ssd.Remount(0); err != nil {
		return err
	}
	fs, err := filesys.New(d.ssd, int64(d.ssd.LogicalPages()), d.PageBytes())
	if err != nil {
		return err
	}
	d.fs = fs
	return nil
}

// Dead reports whether the device lost power and awaits Remount.
func (d *Device) Dead() bool { return d.ssd.Dead() }
