package core

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/filesys"
)

func newDevice(t *testing.T, policy PolicyName) *Device {
	t.Helper()
	d, err := New(Options{Policy: policy, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestNewRejectsUnknownPolicy(t *testing.T) {
	if _, err := New(Options{Policy: "wat"}); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestPolicyNamesResolve(t *testing.T) {
	for _, p := range []PolicyName{PolicyBaseline, PolicyErase, PolicyScrub, PolicySecNoBLock, PolicyEvanesco, ""} {
		if _, err := New(Options{Policy: p}); err != nil {
			t.Errorf("policy %q: %v", p, err)
		}
	}
}

func TestWriteReadDeleteRoundTrip(t *testing.T) {
	d := newDevice(t, PolicyEvanesco)
	content := bytes.Repeat([]byte("the patient record 42 "), 300)
	if err := d.WriteFile("medical.db", content, Secure); err != nil {
		t.Fatal(err)
	}
	got, err := d.ReadFile("medical.db")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(got, content) {
		t.Fatal("read-back mismatch")
	}
	if err := d.DeleteFile("medical.db"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.ReadFile("medical.db"); !errors.Is(err, filesys.ErrNotFound) {
		t.Fatal("deleted file still readable through the FS")
	}
}

func TestAppendFile(t *testing.T) {
	d := newDevice(t, PolicyEvanesco)
	if err := d.WriteFile("log", []byte("part1"), Secure); err != nil {
		t.Fatal(err)
	}
	if err := d.AppendFile("log", []byte("part2")); err != nil {
		t.Fatal(err)
	}
	got, err := d.ReadFile("log")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(got, []byte("part1")) || !bytes.Contains(got, []byte("part2")) {
		t.Fatal("append lost data")
	}
	if err := d.AppendFile("missing", []byte("x")); !errors.Is(err, filesys.ErrNotFound) {
		t.Fatal("append to missing file should fail")
	}
}

func TestWriteFileReplaces(t *testing.T) {
	d := newDevice(t, PolicyEvanesco)
	d.WriteFile("f", []byte("v1-original"), Secure)
	d.WriteFile("f", []byte("v2-replacement"), Secure)
	got, _ := d.ReadFile("f")
	if !bytes.Contains(got, []byte("v2-replacement")) {
		t.Fatal("replacement content missing")
	}
	// C2: the old version must be gone from the raw chips.
	if hits := d.ForensicScan([]byte("v1-original")); len(hits) != 0 {
		t.Fatalf("old version recoverable at %v", hits)
	}
}

// The paper's headline demo: delete a secure file, then attack the chips.
func TestEvanescoDefeatsForensics(t *testing.T) {
	d := newDevice(t, PolicyEvanesco)
	secret := bytes.Repeat([]byte("SSN 078-05-1120 "), 500)
	d.WriteFile("secrets.txt", secret, Secure)
	if hits := d.ForensicScan([]byte("SSN 078-05-1120")); len(hits) == 0 {
		t.Fatal("live data should be visible to the attacker")
	}
	if err := d.DeleteFile("secrets.txt"); err != nil {
		t.Fatal(err)
	}
	if hits := d.ForensicScan([]byte("SSN 078-05-1120")); len(hits) != 0 {
		t.Fatalf("deleted secure data recovered at %v", hits)
	}
	if err := d.VerifySanitization(); err != nil {
		t.Fatal(err)
	}
	// No block erase was needed for the sanitization.
	if d.SSD().FTL().Stats().Erases != 0 {
		t.Fatal("deletion should not have required an erase")
	}
}

func TestBaselineFailsVerification(t *testing.T) {
	d := newDevice(t, PolicyBaseline)
	d.WriteFile("leaky", bytes.Repeat([]byte("X"), 5000), Secure)
	d.DeleteFile("leaky")
	if err := d.VerifySanitization(); !errors.Is(err, ErrSanitizationViolated) {
		t.Fatalf("baseline verification = %v, want ErrSanitizationViolated", err)
	}
}

func TestInsecureFilesAreExemptAndLeak(t *testing.T) {
	d := newDevice(t, PolicyEvanesco)
	d.WriteFile("cache.bin", bytes.Repeat([]byte("cached-thumbnail "), 300), Insecure)
	d.DeleteFile("cache.bin")
	// Insecure deletes don't lock: the data may linger (and that's fine).
	st := d.SSD().FTL().Stats()
	if st.PLocks != 0 || st.BLocks != 0 {
		t.Fatal("insecure delete must not consume lock operations")
	}
	if hits := d.ForensicScan([]byte("cached-thumbnail")); len(hits) == 0 {
		t.Fatal("insecure data should remain recoverable (no guarantee requested)")
	}
}

// Locks must hold across a 5-year retention window.
func TestLocksSurviveRetention(t *testing.T) {
	d := newDevice(t, PolicyEvanesco)
	d.WriteFile("s", bytes.Repeat([]byte("EPHEMERAL"), 600), Secure)
	d.DeleteFile("s")
	d.AdvanceRetention(5 * 365)
	if hits := d.ForensicScan([]byte("EPHEMERAL")); len(hits) != 0 {
		t.Fatalf("data resurfaced after 5 years at %v", hits)
	}
	if err := d.VerifySanitization(); err != nil {
		t.Fatal(err)
	}
}

// The sanitization guarantee must survive GC moving secured data around.
func TestSanitizationSurvivesChurn(t *testing.T) {
	d := newDevice(t, PolicyEvanesco)
	d.WriteFile("durable", bytes.Repeat([]byte("KEEPME"), 500), Secure)
	if err := d.Churn(15000, 7); err != nil {
		t.Fatal(err)
	}
	if d.SSD().FTL().Stats().GCRuns == 0 {
		t.Fatal("churn did not trigger GC")
	}
	if err := d.VerifySanitization(); err != nil {
		t.Fatal(err)
	}
	got, err := d.ReadFile("durable")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(got, []byte("KEEPME")) {
		t.Fatal("live file lost during churn")
	}
}

func TestPaperScaleGeometry(t *testing.T) {
	d, err := New(Options{PaperScale: true})
	if err != nil {
		t.Fatal(err)
	}
	g := d.SSD().Geometry()
	if g.Chips != 8 || g.BlocksPerChip != 428 || g.PagesPerBlock != 576 {
		t.Fatalf("paper-scale geometry %+v", g)
	}
}

func TestOptionOverrides(t *testing.T) {
	d, err := New(Options{Channels: 1, ChipsPerChannel: 1, BlocksPerChip: 24, WLsPerBlock: 8, PageBytes: 2048})
	if err != nil {
		t.Fatal(err)
	}
	g := d.SSD().Geometry()
	if g.Chips != 1 || g.BlocksPerChip != 24 || g.PageBytes != 2048 {
		t.Fatalf("overrides not applied: %+v", g)
	}
}

func TestForensicScanEdgeCases(t *testing.T) {
	d := newDevice(t, PolicyEvanesco)
	if hits := d.ForensicScan(nil); hits != nil {
		t.Fatal("empty needle should find nothing")
	}
	if hits := d.ForensicScan([]byte("absent")); hits != nil {
		t.Fatal("fresh device should contain nothing")
	}
}

func TestReportExposesActivity(t *testing.T) {
	d := newDevice(t, PolicyEvanesco)
	d.WriteFile("a", make([]byte, 10000), Secure)
	r := d.Report()
	if r.Stats.HostWrittenPages == 0 {
		t.Fatal("report shows no writes")
	}
}

// Example demonstrates the facade's primary flow: secure storage, secure
// deletion, and the failed forensic attack.
func Example() {
	dev, err := New(Options{Policy: PolicyEvanesco, Seed: 1})
	if err != nil {
		panic(err)
	}
	secret := bytes.Repeat([]byte("secret-report "), 300)
	dev.WriteFile("report.doc", secret, Secure)
	dev.DeleteFile("report.doc")

	fmt.Printf("forensic hits after delete: %d\n", len(dev.ForensicScan([]byte("secret-report"))))
	fmt.Printf("erases used: %d\n", dev.SSD().FTL().Stats().Erases)
	fmt.Printf("sanitization verified: %v\n", dev.VerifySanitization() == nil)
	// Output:
	// forensic hits after delete: 0
	// erases used: 0
	// sanitization verified: true
}

// Purge sanitizes even data that predates the secure policy decision —
// e.g. insecure stale copies — turning a partially-leaky device clean.
func TestPurge(t *testing.T) {
	d := newDevice(t, PolicyEvanesco)
	d.WriteFile("junk", bytes.Repeat([]byte("leaky-cache "), 300), Insecure)
	d.DeleteFile("junk") // insecure: data lingers
	if hits := d.ForensicScan([]byte("leaky-cache")); len(hits) == 0 {
		t.Fatal("setup: insecure delete should linger")
	}
	if err := d.Purge(); err != nil {
		t.Fatal(err)
	}
	if hits := d.ForensicScan([]byte("leaky-cache")); len(hits) != 0 {
		t.Fatalf("purge left data at %v", hits)
	}
	if err := d.VerifySanitization(); err != nil {
		t.Fatal(err)
	}
}

func TestWearExposed(t *testing.T) {
	d := newDevice(t, PolicyEvanesco)
	if err := d.Churn(15000, 3); err != nil {
		t.Fatal(err)
	}
	if d.Wear().Max == 0 {
		t.Fatal("churn should have erased blocks")
	}
}
