// Package filesys emulates the host file layer of the paper's system
// stack: files map to logical-page extents, deletion unlinks and trims,
// and the O_INSEC open flag (§6) propagates to the block layer as
// REQ_OP_INSEC_WRITE so SecureSSD can sanitize selectively.
//
// The allocator is ext4-like in spirit: it prefers contiguous extents
// via a next-fit scan over a free bitmap. The package is deliberately
// simple — it exists to generate realistic LPA patterns (creates,
// appends, in-place overwrites, deletes) for the workload generators and
// the VerTrace study, not to be a POSIX file system.
package filesys

import (
	"errors"
	"fmt"

	"repro/internal/blockio"
	"repro/internal/sim"
)

// Device is the block device under the file system.
type Device interface {
	Submit(req blockio.Request) (sim.Micros, error)
}

// OpenFlag mirrors the paper's extended open(2) flags.
type OpenFlag uint32

const (
	// OInsec marks a file's data as security-insensitive: its writes are
	// flagged REQ_OP_INSEC_WRITE and its deletion carries no sanitization
	// guarantee.
	OInsec OpenFlag = 1 << iota
)

// ErrNoSpace is returned when the logical space is exhausted.
var ErrNoSpace = errors.New("filesys: no space left on device")

// ErrNotFound is returned for operations on unknown files.
var ErrNotFound = errors.New("filesys: file not found")

// Observer receives file-lifecycle notifications. The VerTrace study uses
// them to classify files as uni-version (append-only / write-once) or
// multi-version (overwritten, truncated, or deleted), per §3.
type Observer interface {
	FileCreated(id uint64, insecure bool)
	FileOverwritten(id uint64)
	FileDeleted(id uint64)
}

// File is an open file's metadata.
type File struct {
	ID       uint64
	Name     string
	Insecure bool
	// extents holds the logical pages backing the file, in file order.
	extents []int64
}

// Pages returns the file size in logical pages.
func (f *File) Pages() int { return len(f.extents) }

// FS is the emulated file system.
type FS struct {
	dev       Device
	pageBytes int
	total     int64
	freePages int64
	bitmap    []uint64 // 1 = used
	scan      int64    // next-fit cursor
	files     map[uint64]*File
	byName    map[string]uint64
	nextID    uint64
	observer  Observer
}

// SetObserver installs a lifecycle observer (nil to remove).
func (fs *FS) SetObserver(o Observer) { fs.observer = o }

// New creates a file system over dev exporting totalPages logical pages.
func New(dev Device, totalPages int64, pageBytes int) (*FS, error) {
	if dev == nil || totalPages <= 0 || pageBytes <= 0 {
		return nil, fmt.Errorf("filesys: bad parameters dev=%v pages=%d size=%d", dev, totalPages, pageBytes)
	}
	return &FS{
		dev:       dev,
		pageBytes: pageBytes,
		total:     totalPages,
		freePages: totalPages,
		bitmap:    make([]uint64, (totalPages+63)/64),
		files:     map[uint64]*File{},
		byName:    map[string]uint64{},
		nextID:    1,
	}, nil
}

// FreePages returns the unallocated logical pages.
func (fs *FS) FreePages() int64 { return fs.freePages }

// TotalPages returns the exported capacity.
func (fs *FS) TotalPages() int64 { return fs.total }

// Files returns the number of live files.
func (fs *FS) Files() int { return len(fs.files) }

// Lookup finds a file by name.
func (fs *FS) Lookup(name string) (*File, bool) {
	id, ok := fs.byName[name]
	if !ok {
		return nil, false
	}
	return fs.files[id], true
}

// Get returns a file by ID.
func (fs *FS) Get(id uint64) (*File, bool) {
	f, ok := fs.files[id]
	return f, ok
}

// Create makes an empty file. Flags control its security requirement.
func (fs *FS) Create(name string, flags OpenFlag) (*File, error) {
	if _, exists := fs.byName[name]; exists {
		return nil, fmt.Errorf("filesys: %q already exists", name)
	}
	f := &File{
		ID:       fs.nextID,
		Name:     name,
		Insecure: flags&OInsec != 0,
	}
	fs.nextID++
	fs.files[f.ID] = f
	fs.byName[name] = f.ID
	if fs.observer != nil {
		fs.observer.FileCreated(f.ID, f.Insecure)
	}
	return f, nil
}

// Append extends the file by n pages and writes them.
func (fs *FS) Append(f *File, n int) error {
	if _, ok := fs.files[f.ID]; !ok {
		return ErrNotFound
	}
	if n <= 0 {
		return nil
	}
	extents, err := fs.alloc(n)
	if err != nil {
		return err
	}
	f.extents = append(f.extents, extents...)
	return fs.writeExtents(f, extents)
}

// Overwrite rewrites n pages of the file starting at page offset off
// (in-place at the file-system level; the FTL makes it out-of-place).
func (fs *FS) Overwrite(f *File, off, n int) error {
	if _, ok := fs.files[f.ID]; !ok {
		return ErrNotFound
	}
	if off < 0 || n < 0 || off+n > len(f.extents) {
		return fmt.Errorf("filesys: overwrite [%d,%d) outside %q (%d pages)", off, off+n, f.Name, len(f.extents))
	}
	if fs.observer != nil && n > 0 {
		fs.observer.FileOverwritten(f.ID)
	}
	return fs.writeExtents(f, f.extents[off:off+n])
}

// Read reads n pages of the file starting at page offset off.
func (fs *FS) Read(f *File, off, n int) error {
	if _, ok := fs.files[f.ID]; !ok {
		return ErrNotFound
	}
	if off < 0 || n < 0 || off+n > len(f.extents) {
		return fmt.Errorf("filesys: read [%d,%d) outside %q (%d pages)", off, off+n, f.Name, len(f.extents))
	}
	for _, run := range contiguousRuns(f.extents[off : off+n]) {
		if _, err := fs.dev.Submit(blockio.Request{
			Op: blockio.OpRead, LPA: run.start, Pages: run.n, FileID: f.ID,
		}); err != nil {
			return err
		}
	}
	return nil
}

// Delete unlinks the file and trims its pages — the paper's deletion
// flow: the trim tells the device which LPAs hold stale data.
func (fs *FS) Delete(f *File) error {
	if _, ok := fs.files[f.ID]; !ok {
		return ErrNotFound
	}
	delete(fs.files, f.ID)
	delete(fs.byName, f.Name)
	if fs.observer != nil {
		fs.observer.FileDeleted(f.ID)
	}
	for _, run := range contiguousRuns(f.extents) {
		if _, err := fs.dev.Submit(blockio.Request{
			Op: blockio.OpTrim, LPA: run.start, Pages: run.n, Insecure: f.Insecure, FileID: f.ID,
		}); err != nil {
			return err
		}
	}
	fs.free(f.extents)
	f.extents = nil
	return nil
}

// Truncate cuts the file to n pages, trimming the removed tail.
func (fs *FS) Truncate(f *File, n int) error {
	if _, ok := fs.files[f.ID]; !ok {
		return ErrNotFound
	}
	if n < 0 || n > len(f.extents) {
		return fmt.Errorf("filesys: truncate %q to %d pages (has %d)", f.Name, n, len(f.extents))
	}
	if fs.observer != nil && n < len(f.extents) {
		// A shrinking truncate discards content: the file is multi-version.
		fs.observer.FileOverwritten(f.ID)
	}
	tail := f.extents[n:]
	for _, run := range contiguousRuns(tail) {
		if _, err := fs.dev.Submit(blockio.Request{
			Op: blockio.OpTrim, LPA: run.start, Pages: run.n, Insecure: f.Insecure, FileID: f.ID,
		}); err != nil {
			return err
		}
	}
	fs.free(tail)
	f.extents = f.extents[:n]
	return nil
}

func (fs *FS) writeExtents(f *File, extents []int64) error {
	for _, run := range contiguousRuns(extents) {
		if _, err := fs.dev.Submit(blockio.Request{
			Op:       blockio.OpWrite,
			LPA:      run.start,
			Pages:    run.n,
			Insecure: f.Insecure,
			FileID:   f.ID,
		}); err != nil {
			return err
		}
	}
	return nil
}

type run struct {
	start int64
	n     int32
}

// contiguousRuns coalesces a page list into maximal contiguous extents,
// the way a block layer merges bios.
func contiguousRuns(pages []int64) []run {
	var out []run
	for i := 0; i < len(pages); {
		j := i + 1
		for j < len(pages) && pages[j] == pages[j-1]+1 {
			j++
		}
		out = append(out, run{start: pages[i], n: int32(j - i)})
		i = j
	}
	return out
}

// alloc reserves n logical pages, preferring contiguity via next-fit.
func (fs *FS) alloc(n int) ([]int64, error) {
	if int64(n) > fs.freePages {
		return nil, ErrNoSpace
	}
	out := make([]int64, 0, n)
	cursor := fs.scan
	for len(out) < n {
		if !fs.used(cursor) {
			fs.setUsed(cursor, true)
			out = append(out, cursor)
		}
		cursor++
		if cursor >= fs.total {
			cursor = 0
		}
	}
	fs.scan = cursor
	fs.freePages -= int64(n)
	return out, nil
}

func (fs *FS) free(pages []int64) {
	for _, p := range pages {
		if fs.used(p) {
			fs.setUsed(p, false)
			fs.freePages++
		}
	}
}

func (fs *FS) used(p int64) bool { return fs.bitmap[p/64]&(1<<uint(p%64)) != 0 }

func (fs *FS) setUsed(p int64, v bool) {
	if v {
		fs.bitmap[p/64] |= 1 << uint(p%64)
	} else {
		fs.bitmap[p/64] &^= 1 << uint(p%64)
	}
}

// DataDevice is an optional Device extension for reading stored content
// back (the ssd package implements it).
type DataDevice interface {
	Device
	ReadLogical(lpa int64) ([]byte, error)
}

// Extents returns a copy of the file's logical pages in file order.
func (f *File) Extents() []int64 {
	out := make([]int64, len(f.extents))
	copy(out, f.extents)
	return out
}

// AppendData extends the file with real content, page by page. The data
// is padded to whole pages.
func (fs *FS) AppendData(f *File, data []byte) error {
	if _, ok := fs.files[f.ID]; !ok {
		return ErrNotFound
	}
	if len(data) == 0 {
		return nil
	}
	n := (len(data) + fs.pageBytes - 1) / fs.pageBytes
	extents, err := fs.alloc(n)
	if err != nil {
		return err
	}
	f.extents = append(f.extents, extents...)
	for i, run := range contiguousRuns(extents) {
		_ = i
		lo := pageOffsetOf(extents, run.start) * fs.pageBytes
		hi := lo + int(run.n)*fs.pageBytes
		if hi > len(data) {
			padded := make([]byte, int(run.n)*fs.pageBytes)
			copy(padded, data[lo:])
			if _, err := fs.dev.Submit(blockio.Request{
				Op: blockio.OpWrite, LPA: run.start, Pages: run.n,
				Insecure: f.Insecure, FileID: f.ID, Data: padded,
			}); err != nil {
				return err
			}
			continue
		}
		if _, err := fs.dev.Submit(blockio.Request{
			Op: blockio.OpWrite, LPA: run.start, Pages: run.n,
			Insecure: f.Insecure, FileID: f.ID, Data: data[lo:hi],
		}); err != nil {
			return err
		}
	}
	return nil
}

// pageOffsetOf returns the index within extents where lpa appears.
func pageOffsetOf(extents []int64, lpa int64) int {
	for i, e := range extents {
		if e == lpa {
			return i
		}
	}
	return 0
}

// ReadAll returns the file's full content. The device must implement
// DataDevice.
func (fs *FS) ReadAll(f *File) ([]byte, error) {
	if _, ok := fs.files[f.ID]; !ok {
		return nil, ErrNotFound
	}
	dd, ok := fs.dev.(DataDevice)
	if !ok {
		return nil, fmt.Errorf("filesys: device %T cannot return data", fs.dev)
	}
	out := make([]byte, 0, len(f.extents)*fs.pageBytes)
	for _, lpa := range f.extents {
		page, err := dd.ReadLogical(lpa)
		if err != nil {
			return nil, err
		}
		if len(page) < fs.pageBytes {
			padded := make([]byte, fs.pageBytes)
			copy(padded, page)
			page = padded
		}
		out = append(out, page...)
	}
	return out, nil
}
