package filesys

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/blockio"
	"repro/internal/sim"
)

// recordingDev captures submitted requests.
type recordingDev struct {
	reqs []blockio.Request
	fail error
}

func (d *recordingDev) Submit(req blockio.Request) (sim.Micros, error) {
	if d.fail != nil {
		return 0, d.fail
	}
	d.reqs = append(d.reqs, req)
	return 0, nil
}

func newFS(t *testing.T) (*FS, *recordingDev) {
	t.Helper()
	dev := &recordingDev{}
	fs, err := New(dev, 1024, 4096)
	if err != nil {
		t.Fatal(err)
	}
	return fs, dev
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, 10, 4096); err == nil {
		t.Fatal("nil device accepted")
	}
	if _, err := New(&recordingDev{}, 0, 4096); err == nil {
		t.Fatal("zero capacity accepted")
	}
}

func TestCreateAppendIssuesSecureWrites(t *testing.T) {
	fs, dev := newFS(t)
	f, err := fs.Create("mail.eml", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Append(f, 4); err != nil {
		t.Fatal(err)
	}
	if f.Pages() != 4 {
		t.Fatalf("file has %d pages, want 4", f.Pages())
	}
	if len(dev.reqs) == 0 {
		t.Fatal("no write issued")
	}
	var pages int32
	for _, r := range dev.reqs {
		if r.Op != blockio.OpWrite {
			t.Fatalf("unexpected op %v", r.Op)
		}
		if r.Insecure {
			t.Fatal("default file must issue secure writes")
		}
		if r.FileID != f.ID {
			t.Fatal("file annotation missing")
		}
		pages += r.Pages
	}
	if pages != 4 {
		t.Fatalf("wrote %d pages, want 4", pages)
	}
}

func TestOInsecPropagates(t *testing.T) {
	fs, dev := newFS(t)
	f, _ := fs.Create("cache.tmp", OInsec)
	fs.Append(f, 2)
	for _, r := range dev.reqs {
		if !r.Insecure {
			t.Fatal("O_INSEC file must issue insecure writes")
		}
	}
	fs.Delete(f)
	last := dev.reqs[len(dev.reqs)-1]
	if last.Op != blockio.OpTrim || !last.Insecure {
		t.Fatal("O_INSEC delete must trim insecurely")
	}
}

func TestCreateDuplicateRejected(t *testing.T) {
	fs, _ := newFS(t)
	fs.Create("a", 0)
	if _, err := fs.Create("a", 0); err == nil {
		t.Fatal("duplicate name accepted")
	}
}

func TestContiguousAllocationCoalesces(t *testing.T) {
	fs, dev := newFS(t)
	f, _ := fs.Create("big", 0)
	if err := fs.Append(f, 64); err != nil {
		t.Fatal(err)
	}
	// Fresh FS: one contiguous extent -> exactly one write request.
	if len(dev.reqs) != 1 {
		t.Fatalf("expected 1 coalesced write, got %d", len(dev.reqs))
	}
	if dev.reqs[0].Pages != 64 {
		t.Fatalf("coalesced write %d pages", dev.reqs[0].Pages)
	}
}

func TestOverwriteHitsSameLPAs(t *testing.T) {
	fs, dev := newFS(t)
	f, _ := fs.Create("db.dat", 0)
	fs.Append(f, 8)
	firstLPA := dev.reqs[0].LPA
	dev.reqs = nil
	if err := fs.Overwrite(f, 2, 3); err != nil {
		t.Fatal(err)
	}
	if len(dev.reqs) != 1 || dev.reqs[0].LPA != firstLPA+2 || dev.reqs[0].Pages != 3 {
		t.Fatalf("overwrite requests %v", dev.reqs)
	}
	if err := fs.Overwrite(f, 6, 3); err == nil {
		t.Fatal("out-of-range overwrite accepted")
	}
}

func TestReadBounds(t *testing.T) {
	fs, dev := newFS(t)
	f, _ := fs.Create("r", 0)
	fs.Append(f, 4)
	dev.reqs = nil
	if err := fs.Read(f, 1, 2); err != nil {
		t.Fatal(err)
	}
	if len(dev.reqs) != 1 || dev.reqs[0].Op != blockio.OpRead {
		t.Fatalf("reqs %v", dev.reqs)
	}
	if err := fs.Read(f, 3, 2); err == nil {
		t.Fatal("out-of-range read accepted")
	}
}

func TestDeleteTrimsAndFrees(t *testing.T) {
	fs, dev := newFS(t)
	f, _ := fs.Create("gone", 0)
	fs.Append(f, 10)
	before := fs.FreePages()
	dev.reqs = nil
	if err := fs.Delete(f); err != nil {
		t.Fatal(err)
	}
	if fs.FreePages() != before+10 {
		t.Fatal("pages not freed")
	}
	var trimmed int32
	for _, r := range dev.reqs {
		if r.Op != blockio.OpTrim {
			t.Fatalf("unexpected op %v", r.Op)
		}
		trimmed += r.Pages
	}
	if trimmed != 10 {
		t.Fatalf("trimmed %d pages, want 10", trimmed)
	}
	if _, ok := fs.Lookup("gone"); ok {
		t.Fatal("file still visible")
	}
	if err := fs.Delete(f); !errors.Is(err, ErrNotFound) {
		t.Fatal("double delete should fail")
	}
}

func TestTruncateTrimsTail(t *testing.T) {
	fs, dev := newFS(t)
	f, _ := fs.Create("log", 0)
	fs.Append(f, 8)
	dev.reqs = nil
	if err := fs.Truncate(f, 3); err != nil {
		t.Fatal(err)
	}
	if f.Pages() != 3 {
		t.Fatalf("pages = %d", f.Pages())
	}
	var trimmed int32
	for _, r := range dev.reqs {
		trimmed += r.Pages
	}
	if trimmed != 5 {
		t.Fatalf("trimmed %d, want 5", trimmed)
	}
	if err := fs.Truncate(f, 9); err == nil {
		t.Fatal("growing truncate accepted")
	}
}

func TestNoSpace(t *testing.T) {
	dev := &recordingDev{}
	fs, _ := New(dev, 8, 4096)
	f, _ := fs.Create("fill", 0)
	if err := fs.Append(f, 8); err != nil {
		t.Fatal(err)
	}
	if err := fs.Append(f, 1); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("err = %v, want ErrNoSpace", err)
	}
	// Deleting makes room again.
	if err := fs.Delete(f); err != nil {
		t.Fatal(err)
	}
	g, _ := fs.Create("fill2", 0)
	if err := fs.Append(g, 8); err != nil {
		t.Fatal(err)
	}
}

func TestDeviceErrorPropagates(t *testing.T) {
	dev := &recordingDev{fail: errors.New("boom")}
	fs, _ := New(dev, 64, 4096)
	f, _ := fs.Create("x", 0)
	if err := fs.Append(f, 1); err == nil {
		t.Fatal("device error swallowed")
	}
}

func TestReuseAfterDeleteFragmentsGracefully(t *testing.T) {
	fs, dev := newFS(t)
	var files []*File
	for i := 0; i < 8; i++ {
		f, _ := fs.Create(name(i), 0)
		fs.Append(f, 16)
		files = append(files, f)
	}
	// Delete every other file, then allocate a large one across the holes.
	for i := 0; i < 8; i += 2 {
		fs.Delete(files[i])
	}
	dev.reqs = nil
	big, _ := fs.Create("big", 0)
	if err := fs.Append(big, 60); err != nil {
		t.Fatal(err)
	}
	var pages int32
	for _, r := range dev.reqs {
		pages += r.Pages
	}
	if pages != 60 {
		t.Fatalf("wrote %d pages, want 60", pages)
	}
}

func name(i int) string { return string(rune('a'+i)) + ".dat" }

// Property: allocation never hands out a page twice, frees return
// exactly what was taken, and free-page accounting is exact.
func TestAllocatorConsistencyProperty(t *testing.T) {
	fn := func(seed int64, steps uint8) bool {
		dev := &recordingDev{}
		fs, _ := New(dev, 256, 4096)
		rng := rand.New(rand.NewSource(seed))
		owned := map[int64]uint64{} // page -> file
		var files []*File
		for s := 0; s < int(steps); s++ {
			switch rng.Intn(3) {
			case 0:
				f, err := fs.Create(randName(rng), 0)
				if err == nil {
					files = append(files, f)
				}
			case 1:
				if len(files) == 0 {
					continue
				}
				f := files[rng.Intn(len(files))]
				before := f.Pages()
				if err := fs.Append(f, rng.Intn(20)+1); err != nil {
					if !errors.Is(err, ErrNoSpace) && !errors.Is(err, ErrNotFound) {
						return false
					}
					continue
				}
				for _, p := range f.extents[before:] {
					if other, taken := owned[p]; taken {
						_ = other
						return false // double allocation
					}
					owned[p] = f.ID
				}
			case 2:
				if len(files) == 0 {
					continue
				}
				i := rng.Intn(len(files))
				f := files[i]
				for _, p := range f.extents {
					delete(owned, p)
				}
				if err := fs.Delete(f); err != nil && !errors.Is(err, ErrNotFound) {
					return false
				}
				files = append(files[:i], files[i+1:]...)
			}
		}
		return fs.FreePages() == fs.TotalPages()-int64(len(owned))
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func randName(rng *rand.Rand) string {
	b := make([]byte, 8)
	for i := range b {
		b[i] = byte('a' + rng.Intn(26))
	}
	return string(b)
}

// dataDev implements DataDevice: it retains page payloads by LPA.
type dataDev struct {
	recordingDev
	pages map[int64][]byte
	size  int
}

func (d *dataDev) Submit(req blockio.Request) (sim.Micros, error) {
	if _, err := d.recordingDev.Submit(req); err != nil {
		return 0, err
	}
	if req.Op == blockio.OpWrite && req.Data != nil {
		for i := int32(0); i < req.Pages; i++ {
			d.pages[req.LPA+int64(i)] = req.PageData(int(i))
		}
	}
	return 0, nil
}

func (d *dataDev) ReadLogical(lpa int64) ([]byte, error) {
	return d.pages[lpa], nil
}

func TestAppendDataAndReadAll(t *testing.T) {
	dev := &dataDev{pages: map[int64][]byte{}}
	fs, _ := New(dev, 256, 512)
	f, _ := fs.Create("blob", 0)
	payload := make([]byte, 1300) // 2.5 pages -> 3 pages padded
	for i := range payload {
		payload[i] = byte(i)
	}
	if err := fs.AppendData(f, payload); err != nil {
		t.Fatal(err)
	}
	if f.Pages() != 3 {
		t.Fatalf("file has %d pages, want 3", f.Pages())
	}
	got, err := fs.ReadAll(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3*512 {
		t.Fatalf("ReadAll returned %d bytes, want %d", len(got), 3*512)
	}
	for i := range payload {
		if got[i] != payload[i] {
			t.Fatalf("byte %d mismatch", i)
		}
	}
	// Padding must be zero.
	for i := len(payload); i < len(got); i++ {
		if got[i] != 0 {
			t.Fatal("padding not zeroed")
		}
	}
	if err := fs.AppendData(f, nil); err != nil {
		t.Fatal("empty append should be a no-op")
	}
}

func TestReadAllRequiresDataDevice(t *testing.T) {
	fs, _ := newFS(t) // recordingDev lacks ReadLogical
	f, _ := fs.Create("x", 0)
	fs.Append(f, 1)
	if _, err := fs.ReadAll(f); err == nil {
		t.Fatal("ReadAll over a non-DataDevice should fail")
	}
}

func TestAppendDataOnDeletedFile(t *testing.T) {
	dev := &dataDev{pages: map[int64][]byte{}}
	fs, _ := New(dev, 64, 512)
	f, _ := fs.Create("gone", 0)
	fs.Delete(f)
	if err := fs.AppendData(f, []byte("x")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
	if _, err := fs.ReadAll(f); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestExtentsReturnsCopy(t *testing.T) {
	fs, _ := newFS(t)
	f, _ := fs.Create("e", 0)
	fs.Append(f, 3)
	ext := f.Extents()
	if len(ext) != 3 {
		t.Fatalf("extents %v", ext)
	}
	ext[0] = 999999
	if f.Extents()[0] == 999999 {
		t.Fatal("Extents exposed internal slice")
	}
}

func TestLookupGetFiles(t *testing.T) {
	fs, _ := newFS(t)
	f, _ := fs.Create("named", 0)
	if got, ok := fs.Lookup("named"); !ok || got.ID != f.ID {
		t.Fatal("Lookup failed")
	}
	if _, ok := fs.Lookup("missing"); ok {
		t.Fatal("Lookup found a ghost")
	}
	if got, ok := fs.Get(f.ID); !ok || got.Name != "named" {
		t.Fatal("Get failed")
	}
	if _, ok := fs.Get(999); ok {
		t.Fatal("Get found a ghost")
	}
	if fs.Files() != 1 {
		t.Fatalf("Files() = %d", fs.Files())
	}
}

// observer hook coverage: create/overwrite/delete/truncate notify.
type obsRecorder struct {
	created, overwritten, deleted []uint64
}

func (o *obsRecorder) FileCreated(id uint64, insecure bool) { o.created = append(o.created, id) }
func (o *obsRecorder) FileOverwritten(id uint64)            { o.overwritten = append(o.overwritten, id) }
func (o *obsRecorder) FileDeleted(id uint64)                { o.deleted = append(o.deleted, id) }

func TestObserverNotifications(t *testing.T) {
	fs, _ := newFS(t)
	obs := &obsRecorder{}
	fs.SetObserver(obs)
	f, _ := fs.Create("watched", 0)
	fs.Append(f, 4)
	fs.Overwrite(f, 0, 2)
	fs.Truncate(f, 1) // shrinking truncate counts as overwrite (MV)
	fs.Delete(f)
	if len(obs.created) != 1 || len(obs.deleted) != 1 {
		t.Fatalf("observer counts %+v", obs)
	}
	if len(obs.overwritten) != 2 {
		t.Fatalf("overwrite notifications %d, want 2 (overwrite + truncate)", len(obs.overwritten))
	}
	// Zero-length overwrite must not notify.
	g, _ := fs.Create("quiet", 0)
	fs.Append(g, 1)
	before := len(obs.overwritten)
	fs.Overwrite(g, 0, 0)
	if len(obs.overwritten) != before {
		t.Fatal("zero-length overwrite notified")
	}
}
