package experiment

import (
	"testing"
	"time"

	"repro/internal/sanitize"
	"repro/internal/workload"
)

// TestDefaultScaleBaselineRuns guards against prefill-convergence
// regressions at the CLI's default scale: the baseline configuration
// must complete a shortened study within seconds.
func TestDefaultScaleBaselineRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("default-scale run")
	}
	sc := DefaultScale()
	sc.StudyPages = 5000
	//secvet:allow determinism -- wall-clock bounds this long test's runtime; results come from sim.Micros
	start := time.Now()
	run, err := Execute(workload.MailServer(), sanitize.Baseline(), 1.0, sc)
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	t.Logf("IOPS %.0f WAF %.2f in %s", run.IOPS(), run.WAF(), elapsed)
	if elapsed > 2*time.Minute {
		t.Fatalf("baseline default-scale run took %s; prefill likely not converging", elapsed)
	}
}
