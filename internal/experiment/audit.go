package experiment

// Sanitization audit sweep: the per-secret provenance ledger's
// phase-attributed T_insecure accounting across the amortization
// ablation ladder, feeding the `reproduce -fig tinsec` figure.

import (
	"fmt"

	"repro/internal/audit"
	"repro/internal/filesys"
	"repro/internal/ftl"
	"repro/internal/parallel"
	"repro/internal/sanitize"
	"repro/internal/trace"
	"repro/internal/workload"
)

// AuditCell is one ablation cell's sanitization audit: the Mobile
// workload on the secSSD device with the cell's feature set, plus the
// audit ledger's window/phase accounting and end-of-run verification.
type AuditCell struct {
	// Label names the feature set (see BatchingCells).
	Label string
	Run   Run
	// Audit is the ledger's counter snapshot at the run's horizon.
	Audit audit.Stats
	// Verify is the end-of-run audit: zero live unlocked secured copies
	// and phase sums matching every closed window.
	Verify audit.VerifyReport
	// Unattributed busy time (out-of-range chip/channel coordinates).
	UnattributedBusyUs int64
	UnattributedEvents uint64
}

// AuditSweep runs the BatchingCells ladder with a trace.Recorder on
// every cell and captures the audit ledger's accounting. Deferred lock
// batches are drained (FlushLocks) before the ledger is read, so a
// clean device ends every cell with zero open windows. Each cell is an
// independent seeded simulation and the ledger's counters are built
// incrementally in event order, so the result — every counter and
// phase sum — is bit-identical for any worker count.
func AuditSweep(sc Scale, workers int) ([]AuditCell, error) {
	cells := BatchingCells()
	prof := workload.Mobile()
	out, err := parallel.Map(workers, len(cells), func(i int) (AuditCell, error) {
		cs := sc
		cs.Planes = cells[i].Planes
		cs.NoCachePipeline = cells[i].NoCachePipeline
		cs.LockBatch = cells[i].LockBatch
		rec := trace.NewRecorder(trace.RecorderConfig{
			Chips:    Channels * ChipsPerChannel,
			Channels: Channels,
		})
		run, err := ExecuteAudited(prof, sanitize.SecSSD(), 1.0, cs, rec)
		if err != nil {
			return AuditCell{}, fmt.Errorf("audit/%s: %w", cells[i].Label, err)
		}
		busy, events := rec.Unattributed()
		return AuditCell{
			Label:              cells[i].Label,
			Run:                run,
			Audit:              rec.AuditLedger().Stats(rec.Horizon()),
			Verify:             rec.AuditLedger().Verify(rec.Horizon()),
			UnattributedBusyUs: int64(busy),
			UnattributedEvents: events,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ExecuteAudited is ExecuteTraced plus an end-of-run lock drain: with a
// positive batching deadline or fault-delayed retries, queued pLocks can
// survive the last host request, and the ledger would report their
// windows as still open. Use this variant whenever the recorder's audit
// ledger will be verified afterwards.
func ExecuteAudited(prof workload.Profile, policy ftl.Policy, secureFraction float64, sc Scale, rec *trace.Recorder) (Run, error) {
	dev, err := buildDevice(policy, sc, rec)
	if err != nil {
		return Run{}, err
	}
	defer dev.Close()
	fs, err := filesys.New(dev, int64(dev.LogicalPages()), sc.PageBytes)
	if err != nil {
		return Run{}, err
	}
	gen := workload.NewGenerator(prof, fs, sc.PageBytes, sc.Seed)
	gen.SecureFraction = secureFraction
	if err := gen.Fill(sc.PrefillFraction); err != nil {
		return Run{}, fmt.Errorf("experiment: prefill: %w", err)
	}
	dev.Mark()
	if err := gen.RunPages(sc.studyPagesFor(policy.Name())); err != nil {
		return Run{}, fmt.Errorf("experiment: study: %w", err)
	}
	dev.FlushLocks()
	return Run{
		Workload:       prof.Name,
		Policy:         policy.Name(),
		SecureFraction: secureFraction,
		Report:         dev.Report(),
	}, nil
}
