package experiment

import (
	"testing"

	"repro/internal/sanitize"
	"repro/internal/workload"
)

func TestPolicyByName(t *testing.T) {
	for _, name := range []string{"baseline", "erSSD", "scrSSD", "secSSD_nobLock", "secSSD"} {
		p, err := PolicyByName(name)
		if err != nil || p.Name() != name {
			t.Errorf("PolicyByName(%q) = %v, %v", name, p, err)
		}
	}
	if _, err := PolicyByName("nope"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestExecuteProducesActivity(t *testing.T) {
	run, err := Execute(workload.MailServer(), sanitize.SecSSD(), 1.0, SmallScale())
	if err != nil {
		t.Fatal(err)
	}
	if run.IOPS() <= 0 {
		t.Fatal("no throughput measured")
	}
	if run.Report.Stats.HostWrittenPages < SmallScale().StudyPages {
		t.Fatalf("study wrote %d pages, want >= %d",
			run.Report.Stats.HostWrittenPages, SmallScale().StudyPages)
	}
	if run.Report.Stats.PLocks == 0 && run.Report.Stats.BLocks == 0 {
		t.Fatal("secSSD run issued no locks")
	}
}

func TestExecuteDeterministic(t *testing.T) {
	a, err := Execute(workload.DBServer(), sanitize.SecSSD(), 1.0, SmallScale())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Execute(workload.DBServer(), sanitize.SecSSD(), 1.0, SmallScale())
	if err != nil {
		t.Fatal(err)
	}
	if a.Report.Stats != b.Report.Stats || a.Report.Elapsed != b.Report.Elapsed {
		t.Fatal("Execute is not deterministic")
	}
}

// The core Fig. 14 shape at small scale, on two contrasting workloads.
func TestFigure14Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-config run")
	}
	profiles := []workload.Profile{workload.MailServer(), workload.Mobile()}
	rows, err := Figure14(SmallScale(), profiles)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, row := range rows {
		// IOPS ordering: erSSD << scrSSD < secSSD <= ~baseline.
		if row.IOPS["erSSD"] >= row.IOPS["scrSSD"] {
			t.Errorf("%s: erSSD (%.3f) should trail scrSSD (%.3f)",
				row.Workload, row.IOPS["erSSD"], row.IOPS["scrSSD"])
		}
		if row.IOPS["scrSSD"] >= row.IOPS["secSSD"] {
			t.Errorf("%s: scrSSD (%.3f) should trail secSSD (%.3f)",
				row.Workload, row.IOPS["scrSSD"], row.IOPS["secSSD"])
		}
		if row.IOPS["secSSD"] < 0.55 {
			t.Errorf("%s: secSSD normalized IOPS %.3f too low", row.Workload, row.IOPS["secSSD"])
		}
		if row.IOPS["erSSD"] > 0.35 {
			t.Errorf("%s: erSSD normalized IOPS %.3f should collapse", row.Workload, row.IOPS["erSSD"])
		}
		// WAF ordering: erSSD >> scrSSD > secSSD ≈ baseline (1.0).
		if row.WAF["erSSD"] <= row.WAF["scrSSD"] || row.WAF["scrSSD"] <= row.WAF["secSSD"] {
			t.Errorf("%s: WAF ordering wrong: er=%.2f scr=%.2f sec=%.2f",
				row.Workload, row.WAF["erSSD"], row.WAF["scrSSD"], row.WAF["secSSD"])
		}
		if row.WAF["secSSD"] > 1.1 {
			t.Errorf("%s: secSSD WAF %.3f should match baseline", row.Workload, row.WAF["secSSD"])
		}
		// secSSD with bLock at least matches the no-bLock variant.
		if row.IOPS["secSSD"] < row.IOPS["secSSD_nobLock"]*0.98 {
			t.Errorf("%s: bLock made things worse (%.3f vs %.3f)",
				row.Workload, row.IOPS["secSSD"], row.IOPS["secSSD_nobLock"])
		}
	}
}

func TestFigure14cMonotonic(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep run")
	}
	pts, err := Figure14c(SmallScale(), []workload.Profile{workload.MailServer()},
		[]float64{0.6, 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("%d points", len(pts))
	}
	// Fewer secured files -> fewer locks -> at least as fast.
	if pts[0].NormIOPS < pts[1].NormIOPS-0.02 {
		t.Errorf("60%% secure (%.3f) should not be slower than 100%% secure (%.3f)",
			pts[0].NormIOPS, pts[1].NormIOPS)
	}
	for _, p := range pts {
		if p.NormIOPS <= 0 || p.NormIOPS > 1.2 {
			t.Errorf("fraction %.1f: normalized IOPS %.3f out of range", p.Fraction, p.NormIOPS)
		}
	}
}

func TestComputeHeadline(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-config run")
	}
	rows, err := Figure14(SmallScale(), []workload.Profile{workload.Mobile()})
	if err != nil {
		t.Fatal(err)
	}
	h := ComputeHeadline(rows)
	if h.IOPSSpeedupMax <= 1 {
		t.Errorf("secSSD should beat scrSSD (speedup %.2f)", h.IOPSSpeedupMax)
	}
	if h.EraseReductionMax <= 0 {
		t.Errorf("secSSD should erase less than scrSSD (reduction %.2f)", h.EraseReductionMax)
	}
	if h.PLockReductionMax <= 0 {
		t.Errorf("bLock should reduce pLock count (reduction %.2f)", h.PLockReductionMax)
	}
}
