package experiment

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/ftl"
	"repro/internal/sanitize"
	"repro/internal/trace"
	"repro/internal/workload"
)

// TestShardedExecuteBitIdentical is the system-level golden gate for the
// deferred channel-sharded execution mode: full Fig. 14 cells must
// produce byte-for-byte the same Run (report, stats, elapsed time) with
// sharding on as off.
func TestShardedExecuteBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-config run")
	}
	profiles := []workload.Profile{workload.MailServer(), workload.Mobile()}
	for _, prof := range profiles {
		t.Run(prof.Name, func(t *testing.T) {
			serial, err := Execute(prof, sanitize.SecSSD(), 1.0, SmallScale())
			if err != nil {
				t.Fatal(err)
			}
			sc := SmallScale()
			sc.ShardChannels = Channels
			sharded, err := Execute(prof, sanitize.SecSSD(), 1.0, sc)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(serial, sharded) {
				t.Fatalf("sharded run diverges from serial:\nserial: %+v\nshard:  %+v",
					serial, sharded)
			}
		})
	}
}

// TestShardedDefaultScaleFaultGolden pins serial ≡ sharded-2 ≡ sharded-8
// on a reduced default-scale run with fault injection enabled: the full
// default-scale device geometry (48 blocks/chip, 192 WLs, 16 KiB pages —
// the CI smoke configuration) at a shortened measured write volume, with
// the fault oracle live. This is the composition the big-run speedup
// claim is made on, so the bit-identity gate runs on exactly this shape.
func TestShardedDefaultScaleFaultGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-config default-scale run")
	}
	sc := DefaultScale()
	sc.StudyPages = 4_000
	sc.SlowPolicyStudyPages = 0
	sc.FaultRate = 1e-3
	run := func(shards int) Run {
		s := sc
		s.ShardChannels = shards
		r, err := Execute(workload.MailServer(), sanitize.SecSSD(), 1.0, s)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	serial := run(0)
	for _, shards := range []int{2, 8} {
		if sharded := run(shards); !reflect.DeepEqual(serial, sharded) {
			t.Fatalf("sharded-%d run diverges from serial:\nserial: %+v\nshard:  %+v",
				shards, serial, sharded)
		}
	}
}

// TestShardedAuditAndTelemetryIdentical re-runs the audit gate under
// sharding: the ledger's counters, the end-of-run Verify (zero live
// unlocked secured copies, phase sums matching every closed window), and
// the full OpenMetrics exposition must be byte-identical to a serial
// run. This is the strongest equivalence check the repo has — every
// trace event, in order, with identical timestamps.
func TestShardedAuditAndTelemetryIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("audited run")
	}
	run := func(shards int) (Run, *trace.Recorder) {
		sc := SmallScale()
		sc.Planes = 2
		sc.LockBatch = ftl.LockBatchConfig{Enabled: true, Deadline: 2000, Threshold: 96}
		sc.ShardChannels = shards
		rec := trace.NewRecorder(trace.RecorderConfig{
			Chips:    Channels * ChipsPerChannel,
			Channels: Channels,
		})
		r, err := ExecuteAudited(workload.Mobile(), sanitize.SecSSD(), 1.0, sc, rec)
		if err != nil {
			t.Fatal(err)
		}
		return r, rec
	}
	serialRun, serialRec := run(0)
	shardRun, shardRec := run(Channels)

	if !reflect.DeepEqual(serialRun, shardRun) {
		t.Fatalf("audited runs diverge:\nserial: %+v\nshard:  %+v", serialRun, shardRun)
	}
	h := serialRec.Horizon()
	if sh := shardRec.Horizon(); sh != h {
		t.Fatalf("horizons diverge: serial %d, sharded %d", h, sh)
	}
	if a, b := serialRec.AuditLedger().Stats(h), shardRec.AuditLedger().Stats(h); a != b {
		t.Fatalf("audit stats diverge:\nserial: %+v\nshard:  %+v", a, b)
	}
	av, bv := serialRec.AuditLedger().Verify(h), shardRec.AuditLedger().Verify(h)
	if !reflect.DeepEqual(av, bv) {
		t.Fatalf("audit verification diverges:\nserial: %+v\nshard:  %+v", av, bv)
	}
	if !av.Clean() {
		t.Fatalf("audit verification not clean: %+v", av)
	}
	var serialOM, shardOM bytes.Buffer
	if err := serialRec.WriteOpenMetrics(&serialOM); err != nil {
		t.Fatal(err)
	}
	if err := shardRec.WriteOpenMetrics(&shardOM); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serialOM.Bytes(), shardOM.Bytes()) {
		t.Fatal("OpenMetrics expositions differ between serial and sharded runs")
	}
}
