package experiment

import (
	"reflect"
	"testing"

	"repro/internal/workload"
)

// parTestScale is a cut-down SmallScale so the serial+parallel double
// run stays fast.
func parTestScale() Scale {
	sc := SmallScale()
	sc.StudyPages = 1500
	return sc
}

// TestFigure14WorkerInvariant is the golden determinism check for the
// system-level grid: -parallel 4 must reproduce the serial rows exactly
// (reflect.DeepEqual down to every latency percentile in the reports).
func TestFigure14WorkerInvariant(t *testing.T) {
	profiles := []workload.Profile{workload.MailServer()}
	serial, err := Figure14Parallel(parTestScale(), profiles, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Figure14Parallel(parTestScale(), profiles, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, par) {
		t.Fatalf("Figure14 differs between 1 and 4 workers:\nserial: %+v\nparallel: %+v", serial, par)
	}
}

func TestFigure14cWorkerInvariant(t *testing.T) {
	profiles := []workload.Profile{workload.Mobile()}
	fractions := []float64{0.6, 1.0}
	serial, err := Figure14cParallel(parTestScale(), profiles, fractions, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Figure14cParallel(parTestScale(), profiles, fractions, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, par) {
		t.Fatalf("Figure14c differs between 1 and 3 workers:\nserial: %+v\nparallel: %+v", serial, par)
	}
}

// TestBatchingAblationWorkerInvariant is the golden determinism check
// for the amortization ablation: both the batch-off cells and the
// batch-on cell must be bit-stable between serial and 4-worker runs.
func TestBatchingAblationWorkerInvariant(t *testing.T) {
	serial, err := BatchingAblation(parTestScale(), 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := BatchingAblation(parTestScale(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, par) {
		t.Fatalf("BatchingAblation differs between 1 and 4 workers:\nserial: %+v\nparallel: %+v", serial, par)
	}
	// Shape checks: the ladder ran all three cells and the batched cell
	// actually exercised coalesced pulses.
	if len(serial) != 3 || serial[0].Label != "disabled" || serial[2].Label != "batched" {
		t.Fatalf("unexpected cells: %+v", serial)
	}
	for _, c := range serial {
		if c.Run.Report.Requests == 0 {
			t.Fatalf("cell %s ran no requests", c.Label)
		}
	}
	if got := serial[2].Run.Report.Stats.PLockBatches; got == 0 {
		t.Fatalf("batched cell issued no coalesced pulses")
	}
}
