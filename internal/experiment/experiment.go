// Package experiment assembles and runs the paper's system-level
// evaluation (§7, Fig. 14): the four Table 2 workloads replayed against
// the five device configurations (baseline, erSSD, scrSSD,
// secSSD_nobLock, secSSD), reporting normalized IOPS, WAF, erase counts,
// and lock-operation statistics, plus the Fig. 14(c) secure-fraction
// sweep and the §1 headline aggregates.
package experiment

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/filesys"
	"repro/internal/ftl"
	"repro/internal/nand"
	"repro/internal/nand/vth"
	"repro/internal/parallel"
	"repro/internal/sanitize"
	"repro/internal/ssd"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Device shape shared by every experiment (§7: 2 channels × 4 chips).
// Exported so trace consumers can size a Recorder to match.
const (
	Channels        = 2
	ChipsPerChannel = 4
)

// Scale sizes a Fig. 14 run. The paper's SecureSSD is 32 GiB with 16-KiB
// pages; erSSD's extreme write amplification (WAF in the hundreds) makes
// full-scale software emulation slow, so runs are scaled by a factor
// that preserves the blocks-per-chip : write-volume ratio.
type Scale struct {
	// BlocksPerChip (paper: 428).
	BlocksPerChip int
	// WLsPerBlock (paper: 192 -> 576 pages).
	WLsPerBlock int
	// PageBytes (paper: 16 KiB).
	PageBytes int
	// StudyPages is the measured write volume in pages after prefill.
	StudyPages uint64
	// SlowPolicyStudyPages, when nonzero, replaces StudyPages for the
	// erase-based configuration. erSSD's write amplification reaches the
	// hundreds, so emulating the full volume is prohibitively slow;
	// IOPS and WAF are rates and remain stable over a shorter window.
	SlowPolicyStudyPages uint64
	// PrefillFraction of the logical space filled before measuring.
	PrefillFraction float64
	Seed            int64
	// FaultRate enables deterministic fault injection at the given
	// uniform per-operation rate (see fault.Uniform). Zero disables it.
	FaultRate float64
	// FaultSeed drives the fault schedule; zero falls back to Seed.
	FaultSeed int64
	// Planes, NoCachePipeline and LockBatch tune the device's
	// parallelism/amortization features (see ssd.Config). The zero
	// values reproduce the pre-batching single-plane device.
	Planes          int
	NoCachePipeline bool
	LockBatch       ftl.LockBatchConfig
	// ShardChannels enables the device's deferred channel-sharded
	// execution (ssd.Config.ShardChannels): chip-state mutation runs on
	// this many parallel lanes while the coordinator computes the timing
	// model. Results are bit-identical to serial runs, including with
	// FaultRate > 0: the coordinator's fault oracle pre-decides every
	// verdict in serial call order, so the two compose.
	ShardChannels int
}

// FaultConfig returns the scale's fault-injection configuration (the
// zero Config when FaultRate is 0).
func (sc Scale) FaultConfig() fault.Config {
	seed := sc.FaultSeed
	if seed == 0 {
		seed = sc.Seed
	}
	return fault.Uniform(sc.FaultRate, seed)
}

// studyPagesFor returns the measured volume for a policy.
func (sc Scale) studyPagesFor(policyName string) uint64 {
	if policyName == "erSSD" && sc.SlowPolicyStudyPages > 0 {
		return sc.SlowPolicyStudyPages
	}
	return sc.StudyPages
}

// SmallScale is a seconds-scale configuration for tests.
func SmallScale() Scale {
	return Scale{
		BlocksPerChip:   24,
		WLsPerBlock:     16,
		PageBytes:       4096,
		StudyPages:      6000,
		PrefillFraction: 0.75,
		Seed:            7,
	}
}

// DefaultScale is the CLI default: a 1/16-scale device (matching block
// geometry, fewer blocks) with a quarter-capacity measured write volume.
func DefaultScale() Scale {
	return Scale{
		BlocksPerChip:        48,
		WLsPerBlock:          192,
		PageBytes:            16 * 1024,
		StudyPages:           120_000,
		SlowPolicyStudyPages: 8_000,
		PrefillFraction:      0.75,
		Seed:                 7,
	}
}

// PaperScale matches §7 exactly (expensive under erSSD).
func PaperScale() Scale {
	return Scale{
		BlocksPerChip:        428,
		WLsPerBlock:          192,
		PageBytes:            16 * 1024,
		StudyPages:           1_000_000,
		SlowPolicyStudyPages: 20_000,
		PrefillFraction:      0.75,
		Seed:                 7,
	}
}

// Policies returns the §7 device configurations in Fig. 14 order.
func Policies() []ftl.Policy {
	return []ftl.Policy{
		sanitize.Baseline(),
		sanitize.ErSSD(),
		sanitize.ScrSSD(),
		sanitize.SecSSDNoBLock(),
		sanitize.SecSSD(),
	}
}

// PolicyByName resolves one of the five configuration names.
func PolicyByName(name string) (ftl.Policy, error) {
	for _, p := range Policies() {
		if p.Name() == name {
			return p, nil
		}
	}
	return nil, fmt.Errorf("experiment: unknown policy %q", name)
}

// Run is one (workload, policy, secure-fraction) measurement.
type Run struct {
	Workload string
	Policy   string
	// SecureFraction is the share of files written with the default
	// (secured) mode; Fig. 14(a)(b) use 1.0.
	SecureFraction float64
	Report         ssd.Report
}

// IOPS is shorthand for the run's throughput.
func (r Run) IOPS() float64 { return r.Report.IOPS }

// WAF is shorthand for the run's write amplification.
func (r Run) WAF() float64 { return r.Report.WAF }

// Execute runs one configuration to completion.
func Execute(prof workload.Profile, policy ftl.Policy, secureFraction float64, sc Scale) (Run, error) {
	return ExecuteTraced(prof, policy, secureFraction, sc, nil)
}

// ExecuteTraced is Execute with a trace collector attached to the device
// (nil behaves exactly like Execute). Pass a *trace.Recorder sized with
// Channels and ChipsPerChannel to capture the run for export; note the
// trace covers the prefill phase too — use the recorded horizon and the
// host events to separate phases if needed.
func ExecuteTraced(prof workload.Profile, policy ftl.Policy, secureFraction float64, sc Scale, tr trace.Collector) (Run, error) {
	run, _, err := ExecuteShardStats(prof, policy, secureFraction, sc, tr)
	return run, err
}

// ExecuteShardStats is ExecuteTraced plus a snapshot of the sharded
// execution machinery's lane-utilization counters, captured after the
// run settles and before the device closes. The stats are the zero value
// when sc.ShardChannels == 0.
func ExecuteShardStats(prof workload.Profile, policy ftl.Policy, secureFraction float64, sc Scale, tr trace.Collector) (Run, ssd.ShardStats, error) {
	dev, err := buildDevice(policy, sc, tr)
	if err != nil {
		return Run{}, ssd.ShardStats{}, err
	}
	defer dev.Close()
	fs, err := filesys.New(dev, int64(dev.LogicalPages()), sc.PageBytes)
	if err != nil {
		return Run{}, ssd.ShardStats{}, err
	}
	gen := workload.NewGenerator(prof, fs, sc.PageBytes, sc.Seed)
	gen.SecureFraction = secureFraction

	// Prefill through the generator (creates/appends only) so steady
	// state starts from the workload's own file population, then measure.
	if err := gen.Fill(sc.PrefillFraction); err != nil {
		return Run{}, ssd.ShardStats{}, fmt.Errorf("experiment: prefill: %w", err)
	}
	dev.Mark()
	if err := gen.RunPages(sc.studyPagesFor(policy.Name())); err != nil {
		return Run{}, ssd.ShardStats{}, fmt.Errorf("experiment: study: %w", err)
	}
	run := Run{
		Workload:       prof.Name,
		Policy:         policy.Name(),
		SecureFraction: secureFraction,
		Report:         dev.Report(),
	}
	return run, dev.ShardStatsSnapshot(), nil
}

func buildDevice(policy ftl.Policy, sc Scale, tr trace.Collector) (*ssd.SSD, error) {
	const (
		channels        = Channels
		chipsPerChannel = ChipsPerChannel
		gcLow           = 3
	)
	// The FTL reserves (gcLow+1) blocks per chip absolutely; on scaled-
	// down devices the paper's 7% over-provisioning cannot cover that, so
	// raise it to the minimum plus a margin.
	chips := channels * chipsPerChannel
	physical := chips * sc.BlocksPerChip * sc.WLsPerBlock * 3
	op := 0.07
	if minOP := float64(chips*(gcLow+1)*sc.WLsPerBlock*3)/float64(physical) + 0.02; minOP > op {
		op = minOP
	}
	return ssd.New(ssd.Config{
		Channels:        channels,
		ChipsPerChannel: chipsPerChannel,
		Chip: nand.Geometry{
			Blocks:          sc.BlocksPerChip,
			WLsPerBlock:     sc.WLsPerBlock,
			CellKind:        vth.TLC,
			PageBytes:       sc.PageBytes,
			FlagCells:       9,
			EnduranceCycles: 1000,
		},
		OverProvision:   op,
		GCFreeBlocksLow: gcLow,
		QueueDepth:      32,
		Policy:          policy,
		Seed:            sc.Seed,
		Fault:           sc.FaultConfig(),
		Trace:           tr,
		Planes:          sc.Planes,
		NoCachePipeline: sc.NoCachePipeline,
		LockBatch:       sc.LockBatch,
		ShardChannels:   sc.ShardChannels,
	})
}

// Fig14Row is one workload's column group in Fig. 14(a)/(b): every
// policy's IOPS and WAF normalized to the baseline device.
type Fig14Row struct {
	Workload string
	// Normalized values keyed by policy name.
	IOPS map[string]float64
	WAF  map[string]float64
	Runs map[string]Run
}

// Figure14 runs all four workloads over all five configurations.
func Figure14(sc Scale, profiles []workload.Profile) ([]Fig14Row, error) {
	return Figure14Parallel(sc, profiles, 1)
}

// Figure14Parallel fans the (workload × policy) grid across up to
// workers goroutines (<= 0: one per CPU). Every cell is an independent
// seeded simulation — its own device, chips, and RNGs — and results are
// gathered in grid order, so the rows are bit-identical to the serial
// path for any worker count.
func Figure14Parallel(sc Scale, profiles []workload.Profile, workers int) ([]Fig14Row, error) {
	if profiles == nil {
		profiles = workload.Profiles()
	}
	nPol := len(Policies())
	runs, err := parallel.Map(workers, len(profiles)*nPol, func(i int) (Run, error) {
		prof := profiles[i/nPol]
		// Fresh policy instances per cell: a policy must never be shared
		// between concurrently running devices.
		policy := Policies()[i%nPol]
		run, err := Execute(prof, policy, 1.0, sc)
		if err != nil {
			return Run{}, fmt.Errorf("%s/%s: %w", prof.Name, policy.Name(), err)
		}
		return run, nil
	})
	if err != nil {
		return nil, err
	}
	var rows []Fig14Row
	for pi, prof := range profiles {
		row := Fig14Row{
			Workload: prof.Name,
			IOPS:     map[string]float64{},
			WAF:      map[string]float64{},
			Runs:     map[string]Run{},
		}
		var base Run
		for k := 0; k < nPol; k++ {
			run := runs[pi*nPol+k]
			row.Runs[run.Policy] = run
			if run.Policy == "baseline" {
				base = run
			}
		}
		for name, run := range row.Runs {
			if base.IOPS() > 0 {
				row.IOPS[name] = run.IOPS() / base.IOPS()
			}
			if base.WAF() > 0 {
				row.WAF[name] = run.WAF() / base.WAF()
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig14cPoint is one (workload, fraction) cell of Fig. 14(c).
type Fig14cPoint struct {
	Workload string
	Fraction float64
	// IOPS normalized to the baseline device on the same workload.
	NormIOPS float64
}

// Figure14c sweeps the secured-data fraction for secSSD.
func Figure14c(sc Scale, profiles []workload.Profile, fractions []float64) ([]Fig14cPoint, error) {
	return Figure14cParallel(sc, profiles, fractions, 1)
}

// Figure14cParallel is Figure14c with the (workload × fraction) grid —
// plus each workload's baseline run — fanned across up to workers
// goroutines, bit-identical to the serial sweep.
func Figure14cParallel(sc Scale, profiles []workload.Profile, fractions []float64, workers int) ([]Fig14cPoint, error) {
	if profiles == nil {
		profiles = workload.Profiles()
	}
	if fractions == nil {
		fractions = []float64{0.6, 0.7, 0.8, 0.9, 1.0}
	}
	// Per profile: one baseline cell followed by the fraction sweep, in
	// the same order the serial loop ran them.
	per := 1 + len(fractions)
	runs, err := parallel.Map(workers, len(profiles)*per, func(i int) (Run, error) {
		prof := profiles[i/per]
		if k := i % per; k > 0 {
			return Execute(prof, sanitize.SecSSD(), fractions[k-1], sc)
		}
		return Execute(prof, sanitize.Baseline(), 1.0, sc)
	})
	if err != nil {
		return nil, err
	}
	var pts []Fig14cPoint
	for pi, prof := range profiles {
		base := runs[pi*per]
		for fi, frac := range fractions {
			run := runs[pi*per+1+fi]
			norm := 0.0
			if base.IOPS() > 0 {
				norm = run.IOPS() / base.IOPS()
			}
			pts = append(pts, Fig14cPoint{Workload: prof.Name, Fraction: frac, NormIOPS: norm})
		}
	}
	return pts, nil
}

// Headline aggregates the §1 claims from a Figure14 result set.
type Headline struct {
	// SecSSD vs. the better reprogram-based baseline (scrSSD): IOPS
	// speedups (paper: up to 4.8x, 2.9x average).
	IOPSSpeedupMax, IOPSSpeedupAvg float64
	// Erase reduction vs. scrSSD (paper: up to 79%, 62% average).
	EraseReductionMax, EraseReductionAvg float64
	// bLock's contribution: pLock count reduction vs. secSSD_nobLock
	// (paper: up to 57%, 28% average) and IOPS gain (up to 5.4%, 3.1%).
	PLockReductionMax, PLockReductionAvg float64
	BLockIOPSGainMax, BLockIOPSGainAvg   float64
}

// ComputeHeadline derives the headline numbers.
func ComputeHeadline(rows []Fig14Row) Headline {
	var h Headline
	var nIOPS, nErase, nPLock, nGain int
	var sumIOPS, sumErase, sumPLock, sumGain float64
	for _, row := range rows {
		sec, okS := row.Runs["secSSD"]
		scr, okC := row.Runs["scrSSD"]
		nob, okN := row.Runs["secSSD_nobLock"]
		if okS && okC && scr.IOPS() > 0 {
			sp := sec.IOPS() / scr.IOPS()
			sumIOPS += sp
			nIOPS++
			if sp > h.IOPSSpeedupMax {
				h.IOPSSpeedupMax = sp
			}
			if scr.Report.Stats.Erases > 0 {
				red := 1 - float64(sec.Report.Stats.Erases)/float64(scr.Report.Stats.Erases)
				sumErase += red
				nErase++
				if red > h.EraseReductionMax {
					h.EraseReductionMax = red
				}
			}
		}
		if okS && okN {
			if nob.Report.Stats.PLocks > 0 {
				red := 1 - float64(sec.Report.Stats.PLocks)/float64(nob.Report.Stats.PLocks)
				sumPLock += red
				nPLock++
				if red > h.PLockReductionMax {
					h.PLockReductionMax = red
				}
			}
			if nob.IOPS() > 0 {
				gain := sec.IOPS()/nob.IOPS() - 1
				sumGain += gain
				nGain++
				if gain > h.BLockIOPSGainMax {
					h.BLockIOPSGainMax = gain
				}
			}
		}
	}
	if nIOPS > 0 {
		h.IOPSSpeedupAvg = sumIOPS / float64(nIOPS)
	}
	if nErase > 0 {
		h.EraseReductionAvg = sumErase / float64(nErase)
	}
	if nPLock > 0 {
		h.PLockReductionAvg = sumPLock / float64(nPLock)
	}
	if nGain > 0 {
		h.BLockIOPSGainAvg = sumGain / float64(nGain)
	}
	return h
}

// BatchingCell is one device configuration of the amortization ablation:
// the same workload and sanitization policy run against progressively
// more of the device-parallelism features.
type BatchingCell struct {
	// Label names the feature set ("disabled", "pipelined", "batched").
	Label string
	// Planes / NoCachePipeline / LockBatch are the ssd.Config knobs the
	// cell turns on.
	Planes          int
	NoCachePipeline bool
	LockBatch       ftl.LockBatchConfig
	Run             Run
}

// BatchingCells returns the ablation ladder: "disabled" is the device
// with every parallelism feature off (single plane, no cache-mode
// pipelining, per-page pLock pulses), "pipelined" adds two-plane
// striping and cached transfers, and "batched" adds wordline-aware
// pLock coalescing on top. The batched cell runs in deferred mode
// (Deadline 2 ms, Threshold 96): file deletes arrive as one trim
// request per extent run, and only a queue that survives across those
// requests can reassemble a wordline whose stale pages are spread over
// several runs (interleaved files split a WL's pages across extents).
func BatchingCells() []BatchingCell {
	return []BatchingCell{
		{Label: "disabled", Planes: 1, NoCachePipeline: true},
		{Label: "pipelined", Planes: 2},
		{Label: "batched", Planes: 2,
			LockBatch: ftl.LockBatchConfig{Enabled: true, Deadline: 2000, Threshold: 96}},
	}
}

// BatchingAblation runs the sanitization-heavy Mobile workload (§7
// Table 2: create/delete dominated, 512 KiB–8 MiB files) on the secSSD
// device across the BatchingCells ladder, fanned over up to workers
// goroutines. Each cell is an independent seeded simulation, so the
// result is bit-identical for any worker count.
func BatchingAblation(sc Scale, workers int) ([]BatchingCell, error) {
	cells := BatchingCells()
	prof := workload.Mobile()
	runs, err := parallel.Map(workers, len(cells), func(i int) (Run, error) {
		cs := sc
		cs.Planes = cells[i].Planes
		cs.NoCachePipeline = cells[i].NoCachePipeline
		cs.LockBatch = cells[i].LockBatch
		run, err := Execute(prof, sanitize.SecSSD(), 1.0, cs)
		if err != nil {
			return Run{}, fmt.Errorf("batching/%s: %w", cells[i].Label, err)
		}
		return run, nil
	})
	if err != nil {
		return nil, err
	}
	for i := range cells {
		cells[i].Run = runs[i]
	}
	return cells, nil
}
