package experiment

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/sanitize"
	"repro/internal/trace"
	"repro/internal/workload"
)

// runTracedSmall executes the acceptance-test run: MailServer × secSSD at
// the small scale, which exercises every Evanesco NAND command (pLocks
// from overwrites/deletes, bLocks from fully-stale GC victims, erases
// from block reuse).
func runTracedSmall(t *testing.T) *trace.Recorder {
	t.Helper()
	rec := trace.NewRecorder(trace.RecorderConfig{
		Chips:    Channels * ChipsPerChannel,
		Channels: Channels,
	})
	if _, err := ExecuteTraced(workload.MailServer(), sanitize.SecSSD(), 1.0, SmallScale(), rec); err != nil {
		t.Fatal(err)
	}
	return rec
}

// chromeEvent mirrors one trace_event entry for decoding.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Dur  int64          `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args"`
}

// TestTracedRunChromeExport is the tentpole acceptance test: a traced
// benchmark run must emit a well-formed Chrome trace-event file with
// monotone per-track event times and all five NAND op classes present.
func TestTracedRunChromeExport(t *testing.T) {
	rec := runTracedSmall(t)

	var buf bytes.Buffer
	if err := rec.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents     []chromeEvent `json:"traceEvents"`
		DisplayTimeUnit string        `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("chrome trace is not well-formed JSON: %v", err)
	}
	if len(f.TraceEvents) == 0 {
		t.Fatal("empty trace")
	}

	classes := map[string]int{}
	lastPerTrack := map[[2]int]int64{}
	for _, ev := range f.TraceEvents {
		switch ev.Ph {
		case "M", "C":
			continue
		case "X":
		default:
			t.Fatalf("unexpected event phase %q", ev.Ph)
		}
		if ev.Dur < 0 {
			t.Fatalf("negative duration on %s at ts=%d", ev.Name, ev.Ts)
		}
		classes[ev.Name]++
		track := [2]int{ev.Pid, ev.Tid}
		if last, ok := lastPerTrack[track]; ok && ev.Ts < last {
			t.Fatalf("track %v: ts %d after %d (non-monotone)", track, ev.Ts, last)
		}
		lastPerTrack[track] = ev.Ts
	}
	for _, class := range []string{"read", "program", "erase", "pLock", "bLock"} {
		if classes[class] == 0 {
			t.Errorf("NAND op class %q absent from trace (saw %v)", class, classes)
		}
	}
}

// TestTracedRunTelemetry sanity-checks the live telemetry the same run
// produces: closed T_insecure windows, populated gauges, and busy-time
// utilization within [0, 1].
func TestTracedRunTelemetry(t *testing.T) {
	rec := runTracedSmall(t)

	if rec.TInsecure().N() == 0 {
		t.Fatal("no T_insecure windows recorded")
	}
	if open := rec.OpenInsecure(); open != 0 {
		t.Errorf("%d secured pages still invalidated but unlocked at end of run", open)
	}
	if rec.TInsecure().Min() < 0 {
		t.Errorf("negative T_insecure window: %v", rec.TInsecure().Min())
	}
	for _, u := range rec.ChipUtilization() {
		if u <= 0 || u > 1 {
			t.Errorf("chip utilization %v outside (0, 1]", u)
		}
	}
	for _, u := range rec.ChannelUtilization() {
		if u <= 0 || u > 1 {
			t.Errorf("channel utilization %v outside (0, 1]", u)
		}
	}
	for _, kind := range []trace.GaugeKind{
		trace.GaugeFreeBlocks, trace.GaugeLockQueue, trace.GaugeValidPages,
		trace.GaugeSecuredPages, trace.GaugeInvalidPages,
	} {
		if rec.GaugeSeries(kind).Len() == 0 {
			t.Errorf("gauge %v never recorded", kind)
		}
	}

	sn := rec.Snapshot()
	if sn.Ops["pLock"].Count == 0 || sn.Ops["bLock"].Count == 0 {
		t.Errorf("snapshot missing lock ops: %v", sn.Ops)
	}
	// Every lock's latency must match the §7 command timings.
	if got := sn.Ops["pLock"].MeanUs; got != 100 {
		t.Errorf("pLock mean latency = %v µs, want 100", got)
	}
	if got := sn.Ops["bLock"].MeanUs; got != 300 {
		t.Errorf("bLock mean latency = %v µs, want 300", got)
	}
}

// TestExecuteMatchesExecuteTraced guards the zero-cost contract: running
// with a recorder attached must not change the simulation's results.
func TestExecuteMatchesExecuteTraced(t *testing.T) {
	sc := SmallScale()
	sc.StudyPages = 2000
	plain, err := Execute(workload.MailServer(), sanitize.SecSSD(), 1.0, sc)
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder(trace.RecorderConfig{Chips: Channels * ChipsPerChannel, Channels: Channels})
	traced, err := ExecuteTraced(workload.MailServer(), sanitize.SecSSD(), 1.0, sc, rec)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Report.Stats != traced.Report.Stats {
		t.Fatalf("tracing changed the simulation:\nplain:  %+v\ntraced: %+v",
			plain.Report.Stats, traced.Report.Stats)
	}
	if plain.Report.IOPS != traced.Report.IOPS {
		t.Fatalf("tracing changed IOPS: %v vs %v", plain.Report.IOPS, traced.Report.IOPS)
	}
}
