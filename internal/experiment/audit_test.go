package experiment

import (
	"reflect"
	"testing"

	"repro/internal/sanitize"
	"repro/internal/trace"
	"repro/internal/workload"
)

// TestAuditSweepWorkerInvariance is the golden determinism test: every
// ledger counter and phase sum must be bit-identical whether the
// ablation ladder runs serially or fanned over 4 workers — with lock
// batching both off ("disabled"/"pipelined") and on ("batched").
func TestAuditSweepWorkerInvariance(t *testing.T) {
	sc := SmallScale()
	sc.StudyPages = 3000
	serial, err := AuditSweep(sc, 1)
	if err != nil {
		t.Fatal(err)
	}
	fanned, err := AuditSweep(sc, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, fanned) {
		t.Fatalf("audit sweep differs by worker count:\nserial: %+v\nfanned: %+v", serial, fanned)
	}

	labels := map[string]bool{}
	for _, cell := range serial {
		labels[cell.Label] = true
		if cell.Audit.Windows == 0 {
			t.Errorf("%s: no closed windows", cell.Label)
		}
		// The invariant the ledger unit tests check per window, asserted
		// here over a whole simulated device: phases sum to the windows.
		if got, want := cell.Audit.Phases.Sum(), cell.Audit.WindowSumUs; got != want {
			t.Errorf("%s: phase sum %d != window sum %d", cell.Label, got, want)
		}
		if !cell.Verify.Clean() {
			t.Errorf("%s: verifier found %d live unlocked copies: %v",
				cell.Label, cell.Verify.ExposedCopies, cell.Verify.Err())
		}
		if cell.UnattributedEvents != 0 {
			t.Errorf("%s: %d events with out-of-range coordinates", cell.Label, cell.UnattributedEvents)
		}
	}
	for _, want := range []string{"disabled", "pipelined", "batched"} {
		if !labels[want] {
			t.Errorf("ladder missing cell %q", want)
		}
	}
}

// TestAuditSweepBatchingPhases checks that the ladder attributes where
// window time goes: the batched cell must land wait time in the
// batch_wait phase, which the unbatched cells can never have.
func TestAuditSweepBatchingPhases(t *testing.T) {
	sc := SmallScale()
	sc.StudyPages = 3000
	cells, err := AuditSweep(sc, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, cell := range cells {
		if cell.Label == "batched" {
			if cell.Audit.Phases.BatchWait == 0 {
				t.Errorf("batched cell has zero batch_wait time: %+v", cell.Audit.Phases)
			}
			if cell.Audit.Destroys.PLockBatch == 0 {
				t.Errorf("batched cell issued no batched pulses: %+v", cell.Audit.Destroys)
			}
		} else if cell.Audit.Phases.BatchWait != 0 || cell.Audit.Destroys.PLockBatch != 0 {
			t.Errorf("%s cell shows batching activity: %+v", cell.Label, cell.Audit)
		}
		// Relocations (GC) must register provenance: a churned device
		// always moves some secured copies.
		if cell.Audit.Copies.GC == 0 {
			t.Errorf("%s: no GC-relocated copies registered", cell.Label)
		}
		if cell.Audit.Copies.Host == 0 {
			t.Errorf("%s: no host-written copies registered", cell.Label)
		}
	}
}

// TestAuditVerifierUnderFaults regression-tests the bLock accounting
// gap: a reentrant IssueBLock (a GC flush racing an escalation's
// relocations) locks the whole block, so evacuation-stale copies must
// be reported destroyed with it — under a heavy fault schedule, every
// window still has to close by end of run.
func TestAuditVerifierUnderFaults(t *testing.T) {
	sc := SmallScale()
	sc.FaultRate = 1e-2
	sc.FaultSeed = 7
	rec := trace.NewRecorder(trace.RecorderConfig{
		Chips: Channels * ChipsPerChannel, Channels: Channels,
	})
	if _, err := ExecuteAudited(workload.MailServer(), sanitize.SecSSD(), 1.0, sc, rec); err != nil {
		t.Fatal(err)
	}
	rep := rec.AuditLedger().Verify(rec.Horizon())
	if !rep.Clean() {
		t.Fatalf("audit verifier unclean under faults: %v (first open: %+v)", rep.Err(), rep.Open[:min(3, len(rep.Open))])
	}
	st := rec.AuditLedger().Stats(rec.Horizon())
	if st.Phases.Sum() != st.WindowSumUs {
		t.Fatalf("phase sum %d != window sum %d", st.Phases.Sum(), st.WindowSumUs)
	}
	if st.LadderDestroys == 0 {
		t.Fatal("fault campaign recorded no ladder destructions")
	}
}
