package attack

import (
	"testing"

	"repro/internal/core"
)

func run(t *testing.T, cfg Config) Score {
	t.Helper()
	s, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run(%s): %v", cfg.Label(), err)
	}
	return s
}

// The baseline control must leak: deletes only flip mapping bits, so the
// raw dump recovers the secrets. Without this the gate proves nothing.
func TestBaselineControlLeaks(t *testing.T) {
	s := run(t, Config{Policy: core.PolicyBaseline, Scenario: ScenarioDump, Seed: 1})
	if !s.Leaked() {
		t.Fatal("baseline dump recovered nothing; the attack harness is broken")
	}
	if !s.LiveIntact {
		t.Fatal("live file destroyed")
	}
	if s.OpenAuditCopies == 0 {
		t.Fatal("baseline should hold open T_insecure windows after delete")
	}
}

// Every sanitizing policy must defeat the plain dump, with and without
// background fault injection, and the audit ledger must agree.
func TestSanitizersDefeatDump(t *testing.T) {
	for _, p := range Policies()[1:] {
		for _, rate := range []float64{0, 1e-3} {
			s := run(t, Config{Policy: p, Scenario: ScenarioDump, FaultRate: rate, Seed: 1})
			if s.Leaked() {
				t.Errorf("%s: %d recoverable bytes", s.Label, s.RecoverableBytes)
			}
			if s.OpenAuditCopies != 0 || !s.AuditClean {
				t.Errorf("%s: audit open=%d clean=%v", s.Label, s.OpenAuditCopies, s.AuditClean)
			}
			if !s.LiveIntact {
				t.Errorf("%s: live file destroyed", s.Label)
			}
		}
	}
}

// A power cut mid-delete, remount, and journal replay must leave nothing
// recoverable — the crash window is exactly what Evanesco's lock-before-
// ack design closes.
func TestPowerCutThenRemountDefeated(t *testing.T) {
	for _, p := range Policies()[1:] {
		for _, after := range []uint64{1, 3, 20} {
			s := run(t, Config{Policy: p, Scenario: ScenarioPowerCut, CutAfterOps: after, Seed: 1})
			if !s.Remounted {
				t.Fatalf("%s: never remounted", s.Label)
			}
			if !s.CutFired {
				t.Errorf("%s: cut never fired (delete issued <%d chip ops)", s.Label, after)
			}
			if s.Leaked() {
				t.Errorf("%s: %d recoverable bytes after remount", s.Label, s.RecoverableBytes)
			}
			if s.OpenAuditCopies != 0 || !s.AuditClean {
				t.Errorf("%s: audit open=%d clean=%v", s.Label, s.OpenAuditCopies, s.AuditClean)
			}
			if !s.LiveIntact {
				t.Errorf("%s: live file destroyed", s.Label)
			}
		}
	}
}

// Baseline across a power cut: the cut never fires (no sanitize ops to
// interrupt) but the remount-and-replay path still runs, and the secrets
// are still recoverable afterwards.
func TestBaselinePowerCutStillLeaks(t *testing.T) {
	s := run(t, Config{Policy: core.PolicyBaseline, Scenario: ScenarioPowerCut, CutAfterOps: 3, Seed: 1})
	if s.CutFired {
		t.Error("baseline delete issued chip ops? cut should not fire")
	}
	if !s.Remounted {
		t.Fatal("never remounted")
	}
	if !s.Leaked() {
		t.Fatal("baseline secrets vanished across remount: election or replay is wrong")
	}
	if !s.LiveIntact {
		t.Fatal("live file destroyed")
	}
}

// Locks must hold across the paper's five-year retention horizon: baking
// the chips must not reopen the attack.
func TestRetentionBakeDefeated(t *testing.T) {
	for _, p := range []core.PolicyName{core.PolicySecNoBLock, core.PolicyEvanesco} {
		for _, days := range []float64{365, 5 * 365} {
			s := run(t, Config{Policy: p, Scenario: ScenarioRetention, BakeDays: days, Seed: 1})
			if s.Leaked() {
				t.Errorf("%s: locks decayed, %d bytes recovered", s.Label, s.RecoverableBytes)
			}
			if !s.LiveIntact {
				t.Errorf("%s: live file unreadable after bake", s.Label)
			}
		}
	}
}

// The verdict over the default matrix must pass, and must fail when a
// leak is injected into a sanitizing cell or removed from the control.
func TestVerifyGate(t *testing.T) {
	if testing.Short() {
		t.Skip("full matrix in -short mode")
	}
	scores, err := Matrix(DefaultCells(1), 4)
	if err != nil {
		t.Fatal(err)
	}
	v := Verify(scores)
	if !v.Pass {
		t.Fatalf("default matrix failed the gate: %v", v.Failures)
	}
	if v.ControlLeaks == 0 {
		t.Fatal("no control leaks counted")
	}

	// Tamper: a sanitizing cell that leaks must flip the verdict.
	tampered := append([]Score(nil), scores...)
	for i := range tampered {
		if tampered[i].Policy != string(core.PolicyBaseline) {
			tampered[i].RecoverableBytes = 4096
			tampered[i].HitPages = 1
			break
		}
	}
	if Verify(tampered).Pass {
		t.Fatal("gate passed a leaking sanitizer")
	}

	// Tamper: a silent control must flip the verdict too.
	muted := append([]Score(nil), scores...)
	for i := range muted {
		if muted[i].Policy == string(core.PolicyBaseline) {
			muted[i].RecoverableBytes = 0
			muted[i].HitPages = 0
		}
	}
	if Verify(muted).Pass {
		t.Fatal("gate passed with a toothless control")
	}
}

// Worker invariance: the matrix is a pure function of its cells.
func TestMatrixWorkerInvariant(t *testing.T) {
	cells := []Config{
		{Policy: core.PolicyBaseline, Scenario: ScenarioDump, Seed: 1},
		{Policy: core.PolicyEvanesco, Scenario: ScenarioPowerCut, CutAfterOps: 3, Seed: 1},
	}
	a, err := Matrix(cells, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Matrix(cells, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("cell %d differs across worker counts:\n%+v\n%+v", i, a[i], b[i])
		}
	}
}
