package attack

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/parallel"
)

// Policies lists the §7 configurations the matrix sweeps, control first.
func Policies() []core.PolicyName {
	return []core.PolicyName{
		core.PolicyBaseline,
		core.PolicyErase,
		core.PolicyScrub,
		core.PolicySecNoBLock,
		core.PolicyEvanesco,
	}
}

// DefaultCells builds the standard attack matrix: every policy against
// the raw dump (with and without background fault injection), the
// retention-aided read at one- and five-year bakes (the paper's lock
// durability horizon), and two power-cut instants — one early in the
// delete's sanitize burst, one late.
func DefaultCells(seed int64) []Config {
	var cells []Config
	for _, p := range Policies() {
		cells = append(cells,
			Config{Policy: p, Scenario: ScenarioDump, Seed: seed},
			Config{Policy: p, Scenario: ScenarioDump, FaultRate: 1e-3, Seed: seed},
			Config{Policy: p, Scenario: ScenarioRetention, BakeDays: 365, Seed: seed},
			Config{Policy: p, Scenario: ScenarioRetention, BakeDays: 5 * 365, Seed: seed},
			Config{Policy: p, Scenario: ScenarioPowerCut, CutAfterOps: 3, Seed: seed},
			Config{Policy: p, Scenario: ScenarioPowerCut, CutAfterOps: 20, Seed: seed},
		)
	}
	return cells
}

// Matrix runs the cells on workers goroutines. Cells are independent
// seeded simulations, so the result is identical for any worker count.
func Matrix(cells []Config, workers int) ([]Score, error) {
	return parallel.Map(workers, len(cells), func(i int) (Score, error) {
		s, err := Run(cells[i])
		if err != nil {
			return Score{}, fmt.Errorf("attack %s: %w", cells[i].Label(), err)
		}
		return s, nil
	})
}

// Verdict is the gate decision over a matrix of scores.
type Verdict struct {
	Pass     bool     `json:"pass"`
	Failures []string `json:"failures,omitempty"`
	// ControlLeaks counts baseline cells that leaked — the proof the
	// attack works. Zero control leaks fails the gate too: a harness
	// that cannot break the baseline proves nothing about the rest.
	ControlLeaks int `json:"control_leaks"`
	Cells        int `json:"cells"`
}

// Verify encodes the CI gate:
//
//   - every sanitizing policy (everything but baseline) must report zero
//     recoverable secured bytes, a clean audit ledger with zero open
//     T_insecure windows, and intact live data — in every scenario,
//     including after a power cut and remount;
//   - the baseline control must leak in every cell it appears in, or the
//     harness itself is broken and the green gate would be vacuous.
func Verify(scores []Score) Verdict {
	v := Verdict{Pass: true, Cells: len(scores)}
	fail := func(format string, args ...any) {
		v.Pass = false
		v.Failures = append(v.Failures, fmt.Sprintf(format, args...))
	}
	for _, s := range scores {
		if s.Policy == string(core.PolicyBaseline) {
			if s.Leaked() {
				v.ControlLeaks++
			} else {
				fail("%s: control recovered nothing — attack harness has no teeth", s.Label)
			}
			if !s.LiveIntact {
				fail("%s: live data destroyed", s.Label)
			}
			continue
		}
		if s.Leaked() {
			fail("%s: %d recoverable secured bytes on %d pages", s.Label, s.RecoverableBytes, s.HitPages)
		}
		if s.OpenAuditCopies != 0 {
			fail("%s: %d secured copies with open T_insecure windows", s.Label, s.OpenAuditCopies)
		}
		if !s.AuditClean {
			fail("%s: audit ledger verification failed", s.Label)
		}
		if !s.LiveIntact {
			fail("%s: live data destroyed", s.Label)
		}
	}
	if v.ControlLeaks == 0 {
		fail("no baseline control cell leaked: gate cannot prove the attack works")
	}
	return v
}
