// Package attack is the adversarial forensics harness: it plays the
// paper's §5.1 attacker against every sanitization policy and scores
// what the attacker actually recovers. Each run plants marker-filled
// secret files on a compact device, drives churn so GC scatters copies,
// deletes the secrets, and then attacks the raw chips through
// nand.ForensicDump — optionally after years of retention bake (hoping
// the lock cells decay) or after a deterministic power cut followed by a
// remount (hoping the crash orphaned an unsanitized copy).
//
// The score is cross-checked against the audit ledger: a policy that
// claims zero recoverable bytes must also show zero open T_insecure
// windows, and vice versa. Verify encodes the CI gate: every sanitizing
// policy must leak nothing in every scenario, while the baseline control
// must leak — proving the attack, and therefore the gate, has teeth.
package attack

import (
	"fmt"

	"repro/internal/blockio"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/trace"
)

// Scenario names an attack mode.
type Scenario string

const (
	// ScenarioDump de-solders the chips right after the delete and reads
	// every page through the raw port.
	ScenarioDump Scenario = "dump"
	// ScenarioRetention bakes the chips for Config.BakeDays before the
	// dump: the attacker waits for pAP/bAP charge loss to unlock pages.
	ScenarioRetention Scenario = "retention"
	// ScenarioPowerCut yanks power mid-delete (Config.CutAfterOps), lets
	// the device remount and replay the deletion journal, then dumps.
	ScenarioPowerCut Scenario = "power-cut"
)

// Config is one attack cell.
type Config struct {
	Policy   core.PolicyName `json:"policy"`
	Scenario Scenario        `json:"scenario"`
	// BakeDays ages the chips before the dump (retention-aided attack).
	BakeDays float64 `json:"bake_days,omitempty"`
	// FaultRate enables program/erase/lock fault injection during the
	// workload (the recovery ladder must not reopen the attack surface).
	FaultRate float64 `json:"fault_rate,omitempty"`
	// CutAfterOps arms the power cut: the CutOp-matching chip operation
	// number CutAfterOps after the delete begins is interrupted.
	// Only meaningful for ScenarioPowerCut.
	CutAfterOps uint64      `json:"cut_after_ops,omitempty"`
	CutOp       fault.CutOp `json:"-"`
	Seed        int64       `json:"seed,omitempty"`
}

// Label names the cell in tables and JSON artifacts.
func (c Config) Label() string {
	switch c.Scenario {
	case ScenarioRetention:
		return fmt.Sprintf("%s/%s@%gd", c.Policy, c.Scenario, c.BakeDays)
	case ScenarioPowerCut:
		return fmt.Sprintf("%s/%s@%dops", c.Policy, c.Scenario, c.CutAfterOps)
	default:
		if c.FaultRate > 0 {
			return fmt.Sprintf("%s/%s+faults", c.Policy, c.Scenario)
		}
		return fmt.Sprintf("%s/%s", c.Policy, c.Scenario)
	}
}

// Score is what the attacker got out of one cell.
type Score struct {
	Label     string  `json:"label"`
	Policy    string  `json:"policy"`
	Scenario  string  `json:"scenario"`
	BakeDays  float64 `json:"bake_days"`
	FaultRate float64 `json:"fault_rate"`

	// SecretBytes is the denominator: bytes of secured data written and
	// then deleted.
	SecretBytes int `json:"secret_bytes"`
	// RecoverableBytes counts raw-dump bytes on pages where a deleted
	// secret's marker is still readable — the attacker's haul.
	RecoverableBytes int `json:"recoverable_secured_bytes"`
	// HitPages is the number of physical pages leaking a secret.
	HitPages int `json:"hit_pages"`

	// CutFired reports whether the armed power cut actually struck
	// (baseline issues no chip ops on delete, so its cut never fires).
	CutFired bool `json:"cut_fired,omitempty"`
	// CutOp is the interrupted operation when the cut fired.
	CutOp string `json:"cut_op,omitempty"`
	// Remounted reports the device went through the crash-recovery path.
	Remounted bool `json:"remounted,omitempty"`

	// LiveIntact: the surviving secure file is still readable — an
	// attack harness that "sanitizes" by destroying live data scores
	// nothing.
	LiveIntact bool `json:"live_intact"`

	// OpenAuditCopies is the ledger's count of secured copies with open
	// T_insecure windows at the end of the cell; AuditClean is the full
	// ledger verification (zero exposed copies, phase sums balanced).
	OpenAuditCopies int  `json:"open_audit_copies"`
	AuditClean      bool `json:"audit_clean"`
}

// Leaked reports whether the attacker recovered any secured bytes.
func (s Score) Leaked() bool { return s.RecoverableBytes > 0 }

// The planted fleet: a few multi-page secrets, one live secure file that
// must survive, one insecure decoy that may legitimately remain.
const (
	numSecrets      = 4
	secretPages     = 6
	keepMarker      = "EVANESCO-KEEP-7f3a"
	decoyMarker     = "EVANESCO-DECOY-90c1"
	secretMarkerFmt = "EVANESCO-SECRET-%02d-b55e"
	churnRequests   = 220
)

func secretNeedle(i int) []byte { return []byte(fmt.Sprintf(secretMarkerFmt, i)) }

// fill builds a payload of n pages, each page packed with repetitions of
// the needle (so a single surviving page still matches).
func fill(needle []byte, pages, pageBytes int) []byte {
	out := make([]byte, pages*pageBytes)
	for i := 0; i+len(needle) <= len(out); i += len(needle) {
		copy(out[i:], needle)
	}
	return out
}

// Run executes one attack cell and scores it.
func Run(cfg Config) (Score, error) {
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	rec := trace.NewRecorder(trace.RecorderConfig{Chips: 4, Channels: 2})
	dev, err := core.New(core.Options{
		Policy:          cfg.Policy,
		Seed:            seed,
		Channels:        2,
		ChipsPerChannel: 2,
		FaultRate:       cfg.FaultRate,
		Trace:           rec,
	})
	if err != nil {
		return Score{}, err
	}
	pageBytes := dev.PageBytes()

	// Plant the fleet.
	if err := dev.WriteFile("keep.dat", fill([]byte(keepMarker), 4, pageBytes), core.Secure); err != nil {
		return Score{}, err
	}
	if err := dev.WriteFile("decoy.dat", fill([]byte(decoyMarker), 4, pageBytes), core.Insecure); err != nil {
		return Score{}, err
	}
	for i := 0; i < numSecrets; i++ {
		name := fmt.Sprintf("secret-%d.db", i)
		if err := dev.WriteFile(name, fill(secretNeedle(i), secretPages, pageBytes), core.Secure); err != nil {
			return Score{}, err
		}
	}
	// Churn scatters GC copies of the secrets across the media: every
	// relocated generation must be sanitized too.
	if err := dev.Churn(churnRequests, seed+17); err != nil {
		return Score{}, err
	}
	dev.Sync()

	sc := Score{
		Label:       cfg.Label(),
		Policy:      string(cfg.Policy),
		Scenario:    string(cfg.Scenario),
		BakeDays:    cfg.BakeDays,
		FaultRate:   cfg.FaultRate,
		SecretBytes: numSecrets * secretPages * pageBytes,
	}

	// The deletion journal: each secret's extents, captured before the
	// delete so a crash-interrupted delete can be replayed after remount
	// (trims leave no media record — this models FS journal recovery).
	journal := make([][]int64, numSecrets)
	for i := range journal {
		f, ok := dev.FS().Lookup(fmt.Sprintf("secret-%d.db", i))
		if !ok {
			return Score{}, fmt.Errorf("attack: secret-%d.db vanished before delete", i)
		}
		journal[i] = f.Extents()
	}

	deleteAll := func() error {
		for i := 0; i < numSecrets; i++ {
			if err := dev.DeleteFile(fmt.Sprintf("secret-%d.db", i)); err != nil {
				return err
			}
		}
		dev.Sync()
		return nil
	}

	switch cfg.Scenario {
	case ScenarioPowerCut:
		if err := dev.ArmPowerCut(fault.CutSpec{AfterOps: cfg.CutAfterOps, Op: cfg.CutOp}); err != nil {
			return Score{}, err
		}
		loss, err := dev.RunUntilPowerLoss(deleteAll)
		if err != nil {
			return Score{}, err
		}
		if loss != nil {
			sc.CutFired = true
			sc.CutOp = loss.Op.String()
		}
		if err := dev.Remount(); err != nil {
			return Score{}, err
		}
		sc.Remounted = true
		// Journal replay: re-assert every delete's trims, then drain the
		// sanitize work they trigger. Completed trims replay as no-ops.
		for _, extents := range journal {
			for _, r := range runsOf(extents) {
				if _, err := dev.SSD().Submit(blockio.Request{
					Op: blockio.OpTrim, LPA: r.start, Pages: r.n,
				}); err != nil {
					return Score{}, fmt.Errorf("attack: trim replay: %w", err)
				}
			}
		}
		dev.Sync()
	default:
		if err := deleteAll(); err != nil {
			return Score{}, err
		}
	}

	if cfg.BakeDays > 0 {
		dev.AdvanceRetention(cfg.BakeDays)
	}

	// The dump. Pages are counted once even when they leak several
	// secrets.
	hit := map[core.Finding]bool{}
	for i := 0; i < numSecrets; i++ {
		for _, f := range dev.ForensicScan(secretNeedle(i)) {
			hit[f] = true
		}
	}
	sc.HitPages = len(hit)
	sc.RecoverableBytes = sc.HitPages * pageBytes
	sc.LiveIntact = len(dev.ForensicScan([]byte(keepMarker))) > 0

	ledger := rec.AuditLedger()
	sc.OpenAuditCopies = ledger.OpenCopies()
	sc.AuditClean = ledger.Verify(rec.Horizon()).Clean()
	return sc, nil
}

type extentRun struct {
	start int64
	n     int32
}

// runsOf coalesces a page list into contiguous extents, like the block
// layer merging bios.
func runsOf(pages []int64) []extentRun {
	var out []extentRun
	for i := 0; i < len(pages); {
		j := i + 1
		for j < len(pages) && pages[j] == pages[j-1]+1 {
			j++
		}
		out = append(out, extentRun{start: pages[i], n: int32(j - i)})
		i = j
	}
	return out
}
