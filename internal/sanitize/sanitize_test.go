package sanitize_test

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/blockio"
	"repro/internal/ftl"
	"repro/internal/ftl/ftltest"
	"repro/internal/nand"
	"repro/internal/sanitize"
)

type rig struct {
	f     *ftl.FTL
	tgt   *ftltest.CountingTarget
	chips []*nand.Chip
}

func newRig(t testing.TB, policy ftl.Policy) *rig {
	geo := ftltest.SmallGeometry()
	tgt := ftltest.New(geo)
	chips := ftltest.BuildChips(t, geo)
	tgt.WithChips(chips)
	f, err := ftl.New(ftltest.SmallConfig(), tgt, policy)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{f: f, tgt: tgt, chips: chips}
}

func (r *rig) submit(t testing.TB, req blockio.Request) {
	if _, err := r.f.Submit(req, 0); err != nil {
		t.Fatal(err)
	}
}

// staleSecuredExposure scans all physical pages: it returns how many
// stale (non-live, non-free per the chip) pages still hold readable data
// on the raw chips. This is the attacker's view — condition C1/C2 demand
// zero for secured data.
func (r *rig) readablePages(t testing.TB) map[ftl.PPA]bool {
	readable := map[ftl.PPA]bool{}
	g := r.f.Geometry()
	for p := 0; p < g.TotalPages(); p++ {
		chip := g.ChipOf(ftl.PPA(p))
		addr := nand.PageAddr{Block: g.BlockInChip(g.BlockOf(ftl.PPA(p))), Page: g.PageInBlock(ftl.PPA(p))}
		res, err := r.chips[chip].Read(addr, 0)
		if err != nil {
			continue // locked or failed: not readable
		}
		nonZero := false
		for _, b := range res.Data {
			if b != 0 {
				nonZero = true
				break
			}
		}
		if nonZero {
			readable[ftl.PPA(p)] = true
		}
	}
	return readable
}

// assertNoStaleSecuredData verifies the sanitization contract: every
// readable raw page must be live in the FTL (i.e., no stale copy of
// secured data survives).
func assertNoStaleSecuredData(t testing.TB, r *rig) {
	t.Helper()
	for p := range r.readablePages(t) {
		if !r.f.Status(p).Live() {
			t.Fatalf("stale physical page %d (status %v) is still readable on the raw chip", p, r.f.Status(p))
		}
	}
}

func TestPolicyNames(t *testing.T) {
	names := map[string]ftl.Policy{
		"baseline":       sanitize.Baseline(),
		"erSSD":          sanitize.ErSSD(),
		"scrSSD":         sanitize.ScrSSD(),
		"secSSD_nobLock": sanitize.SecSSDNoBLock(),
		"secSSD":         sanitize.SecSSD(),
	}
	for want, p := range names {
		if p.Name() != want {
			t.Errorf("Name() = %q, want %q", p.Name(), want)
		}
	}
}

// Baseline leaves stale data readable — the §3 data versioning problem.
func TestBaselineLeavesStaleData(t *testing.T) {
	r := newRig(t, sanitize.Baseline())
	r.submit(t, blockio.Request{Op: blockio.OpWrite, LPA: 0, Pages: 1})
	old := r.f.Lookup(0)
	r.submit(t, blockio.Request{Op: blockio.OpWrite, LPA: 0, Pages: 1}) // overwrite
	if r.f.Status(old) != ftl.PageInvalid {
		t.Fatal("old copy should be invalid")
	}
	if !r.readablePages(t)[old] {
		t.Fatal("baseline should leave the stale copy readable (that's the vulnerability)")
	}
}

// Each sanitizing policy upholds C2: after overwriting a secured page,
// the old copy is unreadable at the chip level.
func TestSanitizersDestroyOverwrittenData(t *testing.T) {
	for _, mk := range []func() ftl.Policy{sanitize.ErSSD, sanitize.ScrSSD, sanitize.SecSSDNoBLock, sanitize.SecSSD} {
		policy := mk()
		t.Run(policy.Name(), func(t *testing.T) {
			r := newRig(t, policy)
			r.submit(t, blockio.Request{Op: blockio.OpWrite, LPA: 0, Pages: 1})
			r.submit(t, blockio.Request{Op: blockio.OpWrite, LPA: 0, Pages: 1})
			assertNoStaleSecuredData(t, r)
		})
	}
}

// ... and C1: after deleting (trimming) a secured file, nothing remains.
func TestSanitizersDestroyTrimmedData(t *testing.T) {
	for _, mk := range []func() ftl.Policy{sanitize.ErSSD, sanitize.ScrSSD, sanitize.SecSSDNoBLock, sanitize.SecSSD} {
		policy := mk()
		t.Run(policy.Name(), func(t *testing.T) {
			r := newRig(t, policy)
			r.submit(t, blockio.Request{Op: blockio.OpWrite, LPA: 0, Pages: 6})
			r.submit(t, blockio.Request{Op: blockio.OpTrim, LPA: 0, Pages: 6})
			assertNoStaleSecuredData(t, r)
		})
	}
}

// Insecure (O_INSEC) data is exempt: sanitizers leave it alone, which is
// the selective-sanitization performance lever of §6.
func TestInsecureDataNotSanitized(t *testing.T) {
	r := newRig(t, sanitize.SecSSD())
	r.submit(t, blockio.Request{Op: blockio.OpWrite, LPA: 0, Pages: 1, Insecure: true})
	old := r.f.Lookup(0)
	r.submit(t, blockio.Request{Op: blockio.OpWrite, LPA: 0, Pages: 1, Insecure: true})
	if r.tgt.PLocks != 0 || r.tgt.BLocks != 0 {
		t.Fatal("insecure invalidation must not issue lock commands")
	}
	if !r.readablePages(t)[old] {
		t.Fatal("insecure stale copy should still be readable (no sanitization requested)")
	}
}

func TestErSSDErasesImmediately(t *testing.T) {
	r := newRig(t, sanitize.ErSSD())
	// Fill a few pages, putting live neighbours in the same block.
	r.submit(t, blockio.Request{Op: blockio.OpWrite, LPA: 0, Pages: 8})
	erasesBefore := r.tgt.Erases
	copiesBefore := r.f.Stats().SanitizeCopies
	r.submit(t, blockio.Request{Op: blockio.OpTrim, LPA: 0, Pages: 1})
	if r.tgt.Erases == erasesBefore {
		t.Fatal("erSSD must erase the block containing the secured page")
	}
	if r.f.Stats().SanitizeCopies == copiesBefore {
		t.Fatal("erSSD must relocate the live pages before erasing")
	}
	assertNoStaleSecuredData(t, r)
}

func TestScrSSDRelocatesWLSiblings(t *testing.T) {
	r := newRig(t, sanitize.ScrSSD())
	// Three pages land on WL0 of two chips; trim one page.
	r.submit(t, blockio.Request{Op: blockio.OpWrite, LPA: 0, Pages: 6})
	r.submit(t, blockio.Request{Op: blockio.OpTrim, LPA: 0, Pages: 1})
	if r.tgt.Scrubs == 0 {
		t.Fatal("scrSSD must scrub the trimmed page")
	}
	// TLC wordline: up to two live siblings must have moved.
	if r.f.Stats().SanitizeCopies == 0 {
		t.Fatal("scrSSD must relocate live wordline siblings")
	}
	assertNoStaleSecuredData(t, r)
}

func TestSecSSDUsesPLockWithoutCopies(t *testing.T) {
	r := newRig(t, sanitize.SecSSD())
	r.submit(t, blockio.Request{Op: blockio.OpWrite, LPA: 0, Pages: 6})
	progBefore := r.f.Stats().FlashPrograms
	r.submit(t, blockio.Request{Op: blockio.OpTrim, LPA: 0, Pages: 1})
	if r.tgt.PLocks != 1 {
		t.Fatalf("pLocks = %d, want 1", r.tgt.PLocks)
	}
	if r.f.Stats().FlashPrograms != progBefore {
		t.Fatal("Evanesco sanitization must be zero-copy")
	}
	assertNoStaleSecuredData(t, r)
}

// The §6 bLock decision rule: a trim that stales an entire block with
// more than tbLock/tpLock (=3) secured pages should produce one bLock
// instead of N pLocks.
func TestSecSSDBatchesIntoBLock(t *testing.T) {
	r := newRig(t, sanitize.SecSSD())
	// SmallGeometry: 12 pages per block, striped over 2 chips. Write 24
	// sequential pages: each chip's first block fills completely.
	r.submit(t, blockio.Request{Op: blockio.OpWrite, LPA: 0, Pages: 24})
	// Trim everything: both blocks become fully stale with 12 secured
	// pages each -> 12*100µs > 300µs -> bLock.
	r.submit(t, blockio.Request{Op: blockio.OpTrim, LPA: 0, Pages: 24})
	if r.tgt.BLocks == 0 {
		t.Fatal("expected bLock for a fully-stale block")
	}
	if r.tgt.PLocks != 0 {
		t.Fatalf("pLocks = %d; the whole batch should be covered by bLocks", r.tgt.PLocks)
	}
	assertNoStaleSecuredData(t, r)
}

func TestSecSSDNoBLockNeverUsesBLock(t *testing.T) {
	r := newRig(t, sanitize.SecSSDNoBLock())
	r.submit(t, blockio.Request{Op: blockio.OpWrite, LPA: 0, Pages: 24})
	r.submit(t, blockio.Request{Op: blockio.OpTrim, LPA: 0, Pages: 24})
	if r.tgt.BLocks != 0 {
		t.Fatal("secSSD_nobLock must not use bLock")
	}
	if r.tgt.PLocks != 24 {
		t.Fatalf("pLocks = %d, want 24", r.tgt.PLocks)
	}
	assertNoStaleSecuredData(t, r)
}

// A partially-stale block must never be bLocked even when many secured
// pages are pending (live data would be destroyed).
func TestSecSSDBLockRequiresFullyStaleBlock(t *testing.T) {
	r := newRig(t, sanitize.SecSSD())
	r.submit(t, blockio.Request{Op: blockio.OpWrite, LPA: 0, Pages: 24})
	// Trim all but the last page of each chip's block: blocks keep one
	// live page.
	r.submit(t, blockio.Request{Op: blockio.OpTrim, LPA: 0, Pages: 22})
	if r.tgt.BLocks != 0 {
		t.Fatal("bLock on a block with live data")
	}
	if r.tgt.PLocks != 22 {
		t.Fatalf("pLocks = %d, want 22", r.tgt.PLocks)
	}
	// The live pages must still be readable through the FTL.
	for _, lpa := range []int64{22, 23} {
		if r.f.Lookup(lpa) == ftl.NoPPA {
			t.Fatal("live page lost")
		}
	}
	assertNoStaleSecuredData(t, r)
}

// Cost comparison on the same workload: the headline claim of the paper.
// Evanesco must be copy-free and erase-free relative to erSSD/scrSSD.
func TestRelativeCostOrdering(t *testing.T) {
	workload := func(r *rig) {
		rng := rand.New(rand.NewSource(7))
		logical := int64(r.f.LogicalPages())
		for i := 0; i < 300; i++ {
			lpa := rng.Int63n(logical)
			r.submit(t, blockio.Request{Op: blockio.OpWrite, LPA: lpa, Pages: 1})
		}
	}
	wafOf := func(mk func() ftl.Policy) (float64, uint64) {
		r := newRig(t, mk())
		workload(r)
		return r.f.Stats().WAF(), r.tgt.Erases
	}
	wafBase, erBase := wafOf(sanitize.Baseline)
	wafSec, erSec := wafOf(sanitize.SecSSD)
	wafScr, erScr := wafOf(sanitize.ScrSSD)
	wafEr, erEr := wafOf(sanitize.ErSSD)

	if wafSec > wafBase*1.05 {
		t.Errorf("secSSD WAF %.2f should be within ~5%% of baseline %.2f", wafSec, wafBase)
	}
	if wafScr <= wafSec {
		t.Errorf("scrSSD WAF %.2f should exceed secSSD %.2f", wafScr, wafSec)
	}
	if wafEr <= wafScr {
		t.Errorf("erSSD WAF %.2f should exceed scrSSD %.2f", wafEr, wafScr)
	}
	if erEr <= erScr || erEr <= erSec || erEr <= erBase {
		t.Errorf("erSSD erases %d should dominate (scr %d, sec %d, base %d)", erEr, erScr, erSec, erBase)
	}
}

// Property: under any random secure workload, secSSD never leaves stale
// secured data readable, never bLocks a block with live pages, and keeps
// all live data intact.
func TestSecSSDSecurityInvariantProperty(t *testing.T) {
	fn := func(seed int64) bool {
		r := newRig(t, sanitize.SecSSD())
		rng := rand.New(rand.NewSource(seed))
		logical := int64(r.f.LogicalPages())
		content := map[int64]bool{}
		for i := 0; i < 200; i++ {
			lpa := rng.Int63n(logical)
			switch rng.Intn(3) {
			case 0:
				if _, err := r.f.Submit(blockio.Request{Op: blockio.OpTrim, LPA: lpa, Pages: 1}, 0); err != nil {
					return false
				}
				delete(content, lpa)
			default:
				if _, err := r.f.Submit(blockio.Request{Op: blockio.OpWrite, LPA: lpa, Pages: 1}, 0); err != nil {
					return false
				}
				content[lpa] = true
			}
		}
		// Invariant 1: no stale data readable anywhere (all writes secured).
		for p := range r.readablePages(t) {
			if !r.f.Status(p).Live() {
				return false
			}
		}
		// Invariant 2: every live mapping is still readable on-chip.
		g := r.f.Geometry()
		for lpa := range content {
			p := r.f.Lookup(lpa)
			if p == ftl.NoPPA {
				return false
			}
			chip := g.ChipOf(p)
			addr := nand.PageAddr{Block: g.BlockInChip(g.BlockOf(p)), Page: g.PageInBlock(p)}
			if _, err := r.chips[chip].Read(addr, 0); err != nil {
				if errors.Is(err, nand.ErrPageLocked) || errors.Is(err, nand.ErrBlockLocked) {
					return false // locked live data: catastrophic bug
				}
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
