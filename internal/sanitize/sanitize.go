// Package sanitize implements the five device configurations the paper's
// system-level evaluation (§7) compares:
//
//	Baseline      — no sanitization: invalid data lingers until GC erase.
//	ErSSD         — erase-based (§8): invalidating a secured page forces
//	                the whole block to be evacuated and erased at once.
//	ScrSSD        — scrubbing (§4/§8): the page's wordline siblings are
//	                relocated, then the page is destroyed in place.
//	SecSSDNoBLock — Evanesco with pLock only.
//	SecSSD        — full Evanesco: the lock manager batches pLocks into a
//	                bLock when an entire block becomes stale and the
//	                estimated pLock latency exceeds tbLock (§6).
//
// All policies uphold the same contract for secured data: after the
// invalidation (plus the request-level Flush), the stale copy is no
// longer readable. Only Baseline leaves stale data exposed.
package sanitize

import "repro/internal/ftl"

// Baseline returns the no-sanitization policy (the normalization target
// of Fig. 14).
func Baseline() ftl.Policy { return baseline{} }

type baseline struct{}

func (baseline) Name() string { return "baseline" }

func (baseline) Invalidate(f *ftl.FTL, p ftl.PPA, secured bool) {
	// Old data stays physically present until GC erases the block — the
	// data versioning problem of §3.
	f.MarkInvalid(p)
}

func (baseline) Flush(*ftl.FTL) {}

// ErSSD returns the erase-based sanitization policy.
func ErSSD() ftl.Policy { return erSSD{} }

type erSSD struct{}

func (erSSD) Name() string { return "erSSD" }

func (e erSSD) Invalidate(f *ftl.FTL, p ftl.PPA, secured bool) {
	f.MarkInvalid(p)
	if secured {
		// Queue the block; the erase lands at Flush so a multi-page trim
		// of one block costs a single evacuation + erase rather than a
		// cascade (the request still completes only after the erase —
		// sanitization stays immediate).
		f.PendSanitize(p)
	}
}

func (e erSSD) Flush(f *ftl.FTL) {
	for _, pb := range f.DrainPending() {
		// The block may already have been erased (GC, or a reentrant
		// flush from a relocation-triggered GC); skip unless some queued
		// page still holds stale data.
		if !anyStillInvalid(f, pb.Pages) {
			continue
		}
		// Every live page must first be copied elsewhere (the paper's
		// footnote assumes erSSD may erase immediately without
		// open-interval penalties).
		f.RelocateLive(pb.Block)
		// The relocations may have triggered GC, whose flush re-runs this
		// ladder on the same block (GC re-pends the secured stale copies it
		// routes through Invalidate): the block may already be erased — or
		// even reopened and refilled with new writes. Erase only if the
		// queued stale data still exists and no live data moved in.
		if !anyStillInvalid(f, pb.Pages) || f.LiveInBlock(pb.Block) > 0 {
			continue
		}
		f.EraseNow(pb.Block)
	}
}

func anyStillInvalid(f *ftl.FTL, pages []ftl.PPA) bool {
	for _, p := range pages {
		if f.Status(p) == ftl.PageInvalid {
			return true
		}
	}
	return false
}

// ScrSSD returns the scrubbing-based sanitization policy.
func ScrSSD() ftl.Policy { return scrSSD{} }

type scrSSD struct{}

func (scrSSD) Name() string { return "scrSSD" }

func (s scrSSD) Invalidate(f *ftl.FTL, p ftl.PPA, secured bool) {
	f.MarkInvalid(p)
	if secured {
		f.PendSanitize(p)
	}
}

func (s scrSSD) Flush(f *ftl.FTL) {
	var seenWL []ftl.PPA
	for _, pb := range f.DrainPending() {
		// Group the block's queued pages by wordline: one scrub per WL,
		// relocating the WL's still-live siblings first (two extra reads
		// + two extra writes in the worst case, §4). A linear scan over
		// the seen list beats a map here: a block queues at most a
		// handful of wordlines per flush.
		seenWL = seenWL[:0]
		for _, p := range pb.Pages {
			wl := f.Geometry().WLStart(p)
			dup := false
			for _, w := range seenWL {
				if w == wl {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			seenWL = append(seenWL, wl)
			if f.Status(p) != ftl.PageInvalid {
				continue // already destroyed by an erase
			}
			f.RelocateWLSiblings(p)
			// The sibling relocations may have triggered GC, whose flush can
			// scrub or erase this wordline first — and the block may even have
			// been refilled since. Scrub only if the stale copy still exists.
			if f.Status(p) != ftl.PageInvalid {
				continue
			}
			f.IssueScrub(p)
		}
	}
}

// SecSSDNoBLock returns Evanesco without block-level locking, the
// secSSD_nobLock configuration used to isolate bLock's contribution.
func SecSSDNoBLock() ftl.Policy { return secSSD{useBLock: false} }

// SecSSD returns the full Evanesco policy with the §6 lock manager.
func SecSSD() ftl.Policy { return secSSD{useBLock: true} }

type secSSD struct {
	useBLock bool
}

func (s secSSD) Name() string {
	if s.useBLock {
		return "secSSD"
	}
	return "secSSD_nobLock"
}

func (s secSSD) Invalidate(f *ftl.FTL, p ftl.PPA, secured bool) {
	if !secured {
		f.MarkInvalid(p)
		return
	}
	// Mark invalid right away so GC never mistakes the page for live
	// data, then queue it for the lock manager; the lock lands at Flush,
	// which runs before the host request completes — sanitization stays
	// immediate from the host's perspective. (If GC erases the block
	// first, the erase itself sanitizes and drops the pending entry.)
	f.MarkInvalid(p)
	f.PendSanitize(p)
}

func (s secSSD) Flush(f *ftl.FTL) {
	pending := f.DrainPending()
	if len(pending) == 0 {
		return
	}
	t := f.LockTiming()
	for _, pb := range pending {
		// §6 decision rule: bLock when 1) every remaining page of the
		// block is stale and 2) locking the queued pages would take
		// longer than one bLock. With wordline batching the pLock cost
		// is one pulse per distinct wordline, not per page, which is why
		// batched devices escalate to bLock less often.
		estPLock := int64(f.LockPulses(pb.Pages)) * int64(t.PLock)
		if s.useBLock && f.BlockFullyStale(pb.Block) && estPLock > int64(t.BLock) {
			f.IssueBLock(pb.Block, pb.Pages)
			continue
		}
		for _, p := range pb.Pages {
			f.LockPage(p)
		}
	}
}
