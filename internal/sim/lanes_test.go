package sim

import (
	"strings"
	"testing"
)

func TestLanesPreservePerLaneOrder(t *testing.T) {
	const n = 3
	got := make([][]int64, n)
	l := NewLanes(n, 4, func(lane int, r Record) {
		got[lane] = append(got[lane], r.Aux)
	})
	for i := int64(0); i < 100; i++ {
		l.Post(int(i)%n, Record{Kind: 1, Aux: i})
	}
	l.FlushAll()
	for lane := 0; lane < n; lane++ {
		want := int64(lane)
		if l.Posted(lane) == 0 {
			t.Fatalf("lane %d: no posts recorded", lane)
		}
		for _, aux := range got[lane] {
			if aux != want {
				t.Fatalf("lane %d: got %d, want %d (order broken)", lane, aux, want)
			}
			want += n
		}
		if want < 100 {
			t.Fatalf("lane %d: only reached %d", lane, want)
		}
	}
	l.Close()
}

func TestLanesFlushIsPerLane(t *testing.T) {
	block := make(chan struct{})
	done := make([]bool, 2)
	l := NewLanes(2, 1, func(lane int, r Record) {
		if lane == 1 {
			<-block
		}
		done[lane] = true
	})
	l.Post(0, Record{Kind: 1})
	l.Post(1, Record{Kind: 1})
	l.Flush(0) // must not wait for lane 1's blocked record
	if !done[0] {
		t.Fatal("Flush(0) returned before lane 0 drained")
	}
	close(block)
	l.FlushAll()
	if !done[1] {
		t.Fatal("FlushAll returned before lane 1 drained")
	}
	l.Close()
}

func TestLanesPanicPropagatesToCoordinator(t *testing.T) {
	l := NewLanes(1, 2, func(lane int, r Record) {
		if r.Aux == 3 {
			panic("discipline violation")
		}
	})
	l.Post(0, Record{Kind: 1, Aux: 3})
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("worker panic did not propagate")
		}
		if s, ok := p.(string); !ok || !strings.Contains(s, "lane 0") || !strings.Contains(s, "discipline violation") {
			t.Fatalf("panic payload %v lost lane attribution", p)
		}
	}()
	l.Flush(0)
}
