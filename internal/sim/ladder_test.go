package sim

import (
	"errors"
	"math/rand"
	"testing"
)

// fireLog collects (timestamp, id) pairs in dispatch order.
type firing struct {
	at Micros
	id int
}

// TestLadderFIFOAcrossRungBoundaries schedules many events sharing
// timestamps through every ingress path — the near run, the bucket rung
// (via a far-future batch that forces an epoch), and the overflow store —
// and checks global dispatch order is (at, scheduling order).
func TestLadderFIFOAcrossRungBoundaries(t *testing.T) {
	e := NewEngine()
	var got []firing
	id := 0
	schedule := func(at Micros) {
		me := id
		id++
		e.At(at, func(*Engine) { got = append(got, firing{at, me}) })
	}
	// Far batch across three instants: lands in over, re-epochs into
	// buckets on first dispatch.
	for i := 0; i < 300; i++ {
		schedule(Micros(1000 + 100*(i%3)))
	}
	// Near batch at time zero, scheduled after the far one.
	for i := 0; i < 50; i++ {
		schedule(5)
	}
	// An event that, while the rung is active, inserts more equal-time
	// events both into near and into later buckets.
	e.At(1000, func(e *Engine) {
		schedule(1000) // same instant as the currently-dispatching rung
		schedule(1100) // future bucket
		schedule(1200)
	})
	e.Run()

	if len(got) != id {
		t.Fatalf("fired %d of %d events", len(got), id)
	}
	// Dispatch order must be sorted by at, and FIFO (ascending id) within
	// each instant *among events scheduled before dispatch reached it*.
	for i := 1; i < len(got); i++ {
		if got[i].at < got[i-1].at {
			t.Fatalf("time ran backwards at %d: %v after %v", i, got[i], got[i-1])
		}
	}
	seenAt := make(map[Micros]int)
	for _, f := range got {
		if last, ok := seenAt[f.at]; ok && f.id < last {
			t.Fatalf("FIFO violated at t=%v: id %d after id %d", f.at, f.id, last)
		}
		seenAt[f.at] = f.id
	}
}

// TestRunUntilOnBucketEdge drives RunUntil to deadlines that fall
// exactly on ladder bucket boundaries (width-1 buckets over a 128-wide
// span) and checks inclusive dispatch plus clock advancement.
func TestRunUntilOnBucketEdge(t *testing.T) {
	e := NewEngine()
	fired := make(map[Micros]bool)
	for i := 0; i < ladderBuckets; i++ {
		at := Micros(1000 + i)
		e.At(at, func(*Engine) { fired[at] = true })
	}
	// First deadline: exactly the midpoint bucket edge.
	mid := Micros(1000 + ladderBuckets/2)
	e.RunUntil(mid)
	if e.Now() != mid {
		t.Fatalf("Now() = %v, want %v", e.Now(), mid)
	}
	for i := 0; i < ladderBuckets; i++ {
		at := Micros(1000 + i)
		if want := at <= mid; fired[at] != want {
			t.Fatalf("event at %v fired=%v, want %v (deadline %v)", at, fired[at], want, mid)
		}
	}
	// Advancing by exactly one more bucket fires exactly one more event.
	e.RunUntil(mid + 1)
	if !fired[mid+1] {
		t.Fatalf("event at %v did not fire", mid+1)
	}
	e.Run()
	if e.Pending() != 0 {
		t.Fatalf("pending = %d after Run", e.Pending())
	}
}

// TestClampCountingThroughLadder exercises the clamp path after the
// queue has been through an epoch (bucketed state), not just the
// fresh-queue state clamp_test.go covers.
func TestClampCountingThroughLadder(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 10; i++ {
		e.At(Micros(1000+i*10), func(*Engine) {})
	}
	e.RunUntil(1050)
	var hook int
	e.OnClamp = func(requested, now Micros) {
		hook++
		if requested != 40 || now != 1050 {
			t.Fatalf("OnClamp(%v, %v), want (40, 1050)", requested, now)
		}
	}
	ran := false
	e.At(40, func(*Engine) { ran = true }) // the past: must clamp to 1050
	if e.Clamped() != 1 || hook != 1 {
		t.Fatalf("clamped=%d hook=%d, want 1,1", e.Clamped(), hook)
	}
	e.Step()
	if !ran || e.Now() != 1050 {
		t.Fatalf("clamped event ran=%v at %v, want true at 1050", ran, e.Now())
	}
	e.Run()
}

// runLogged drives an engine over a scripted schedule and returns the
// full dispatch log. The script interleaves pre-seeded events and
// in-flight rescheduling so the queue passes through near inserts,
// bucket spreads, re-epochs, and (for wide time spans) demotion.
func runLogged(e *Engine, seed int64, n int, span Micros) []firing {
	rng := rand.New(rand.NewSource(seed))
	var got []firing
	id := 0
	var schedule func(at Micros)
	schedule = func(at Micros) {
		me := id
		id++
		e.At(at, func(e *Engine) {
			got = append(got, firing{e.Now(), me})
			// A third of events reschedule a child somewhere ahead.
			if rng.Intn(3) == 0 && id < 4*n {
				schedule(e.Now() + Micros(rng.Int63n(int64(span))))
			}
		})
	}
	for i := 0; i < n; i++ {
		schedule(Micros(rng.Int63n(int64(span))))
	}
	e.Run()
	return got
}

// TestLadderMatchesHeapProperty cross-checks the ladder queue's dispatch
// order against the binary-heap reference on random schedules.
func TestLadderMatchesHeapProperty(t *testing.T) {
	for _, span := range []Micros{3, 100, 1_000_000} {
		for seed := int64(1); seed <= 8; seed++ {
			ladder := runLogged(NewEngine(), seed, 200, span)
			heap := runLogged(NewHeapEngine(), seed, 200, span)
			if len(ladder) != len(heap) {
				t.Fatalf("span=%v seed=%d: ladder fired %d, heap %d", span, seed, len(ladder), len(heap))
			}
			for i := range ladder {
				if ladder[i] != heap[i] {
					t.Fatalf("span=%v seed=%d: dispatch %d differs: ladder %v heap %v",
						span, seed, i, ladder[i], heap[i])
				}
			}
		}
	}
}

// TestLadderDemotesOnPathologicalSchedule drives the spill heuristic —
// repeatedly massing >ladderSpillSize events onto single far instants —
// and checks the queue falls back to the heap while preserving order.
func TestLadderDemotesOnPathologicalSchedule(t *testing.T) {
	e := NewEngine()
	var got []firing
	id := 0
	for round := 0; round < ladderMaxSpills; round++ {
		at := Micros((round + 1) * 1_000_000)
		for i := 0; i < ladderSpillSize+1; i++ {
			me := id
			id++
			e.At(at, func(e *Engine) { got = append(got, firing{e.Now(), me}) })
		}
		// Drain this instant before massing the next, so each batch
		// re-epochs into a degenerate single-instant rung (one spill each).
		e.RunUntil(at)
	}
	if !e.queue.heaped {
		t.Fatalf("queue not demoted after %d oversized sorts (spills=%d)", ladderMaxSpills, e.queue.spills)
	}
	// Post-demotion scheduling still works and stays ordered.
	for i := 0; i < 100; i++ {
		me := id
		id++
		e.At(Micros(5_000_000+i%5), func(e *Engine) { got = append(got, firing{e.Now(), me}) })
	}
	e.Run()
	if len(got) != id {
		t.Fatalf("fired %d of %d", len(got), id)
	}
	for i := 1; i < len(got); i++ {
		if got[i].at < got[i-1].at {
			t.Fatalf("time ran backwards at %d", i)
		}
		if got[i].at == got[i-1].at && got[i].id < got[i-1].id {
			t.Fatalf("FIFO violated at %d", i)
		}
	}
}

// TestRunLimit verifies the runaway-event safety valve.
func TestRunLimit(t *testing.T) {
	e := NewEngine()
	var spins int
	var spin Event
	spin = func(e *Engine) {
		spins++
		e.At(e.Now(), spin) // self-reschedule at now: the classic livelock
	}
	e.At(0, spin)
	err := e.RunLimit(1000)
	if !errors.Is(err, ErrRunLimit) {
		t.Fatalf("RunLimit error = %v, want ErrRunLimit", err)
	}
	if spins != 1000 {
		t.Fatalf("dispatched %d events, want exactly 1000", spins)
	}

	// A well-behaved schedule under the same budget drains cleanly.
	e2 := NewEngine()
	n := 0
	for i := 0; i < 50; i++ {
		e2.At(Micros(i), func(*Engine) { n++ })
	}
	if err := e2.RunLimit(1000); err != nil {
		t.Fatalf("RunLimit = %v on a finite schedule", err)
	}
	if n != 50 {
		t.Fatalf("fired %d, want 50", n)
	}
}

// FuzzEventKernel feeds byte-scripted schedules to both scheduler
// variants under the RunLimit safety valve and requires identical
// dispatch traces — the fuzz face of TestLadderMatchesHeapProperty.
func FuzzEventKernel(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, int64(1))
	f.Add([]byte{0, 0, 0, 0, 255, 255}, int64(2))
	f.Fuzz(func(t *testing.T, script []byte, seed int64) {
		if len(script) > 256 {
			script = script[:256]
		}
		run := func(e *Engine) ([]firing, error) {
			var got []firing
			id := 0
			var schedule func(at Micros, depth int)
			schedule = func(at Micros, depth int) {
				me := id
				id++
				e.At(at, func(e *Engine) {
					got = append(got, firing{e.Now(), me})
					if depth > 0 {
						// Deterministic child: offset derived from the script.
						off := Micros(script[me%len(script)]) * Micros(depth)
						schedule(e.Now()+off, depth-1)
					}
				})
			}
			for i, b := range script {
				// Spread seeds across near and far regions, with collisions.
				at := Micros(b)*Micros(1+i%3) + Micros(seed%7)*1000
				if at < 0 {
					at = -at
				}
				schedule(at, int(b%4))
			}
			err := e.RunLimit(100_000)
			return got, err
		}
		lg, lerr := run(NewEngine())
		hg, herr := run(NewHeapEngine())
		if (lerr == nil) != (herr == nil) {
			t.Fatalf("RunLimit divergence: ladder=%v heap=%v", lerr, herr)
		}
		if len(lg) != len(hg) {
			t.Fatalf("ladder fired %d, heap fired %d", len(lg), len(hg))
		}
		for i := range lg {
			if lg[i] != hg[i] {
				t.Fatalf("dispatch %d differs: ladder %v heap %v", i, lg[i], hg[i])
			}
		}
	})
}
