package sim

import (
	"reflect"
	"strings"
	"testing"
)

const shardKindHop OpKind = 1

// shardedWorkload seeds a deterministic cross-shard workload: each shard
// runs local completion chains and periodically hands work to the next
// shard with at least `lookahead` of latency. Returns per-shard dispatch
// logs after running.
func shardedWorkload(t *testing.T, n int, lookahead Micros, parallel bool) ([][]firing, *ShardedEngine) {
	t.Helper()
	se := NewSharded(n, lookahead)
	logs := make([][]firing, n)
	for i := 0; i < n; i++ {
		shard := i
		eng := se.Shard(shard)
		eng.Register(shardKindHop, func(e *Engine, r Record) {
			logs[shard] = append(logs[shard], firing{e.Now(), int(r.Aux)})
			if r.Aux <= 0 {
				return
			}
			if r.Aux%3 == 0 {
				// Hop to the next shard, respecting the lookahead contract.
				se.Send(shard, (shard+1)%n, e.Now()+lookahead+Micros(r.Aux%5), Record{
					Kind: shardKindHop, Aux: r.Aux - 1,
				})
				return
			}
			e.AfterRecord(Micros(7+r.Aux%11), Record{Kind: shardKindHop, Aux: r.Aux - 1})
		})
		for c := 0; c < 4; c++ {
			eng.AtRecord(Micros(c*13+shard), Record{Kind: shardKindHop, Aux: int64(40 + c + shard)})
		}
	}
	if parallel {
		se.Run()
	} else {
		se.RunSerial()
	}
	return logs, se
}

// TestShardedParallelMatchesSerial is the kernel-level bit-identity
// gate: Run (goroutine per shard) and RunSerial (same protocol, one
// goroutine) must produce identical per-shard dispatch logs, clocks and
// counters.
func TestShardedParallelMatchesSerial(t *testing.T) {
	for _, n := range []int{1, 2, 4} {
		serialLogs, serialSE := shardedWorkload(t, n, 50, false)
		parallelLogs, parallelSE := shardedWorkload(t, n, 50, true)
		if !reflect.DeepEqual(serialLogs, parallelLogs) {
			t.Fatalf("n=%d: dispatch logs diverge between RunSerial and Run", n)
		}
		for i := 0; i < n; i++ {
			s, p := serialSE.Shard(i), parallelSE.Shard(i)
			if s.Now() != p.Now() || s.Fired() != p.Fired() || s.Clamped() != p.Clamped() {
				t.Fatalf("n=%d shard %d: clocks/counters diverge: serial (%v,%d,%d) parallel (%v,%d,%d)",
					n, i, s.Now(), s.Fired(), s.Clamped(), p.Now(), p.Fired(), p.Clamped())
			}
		}
		if serialSE.CrossClamped() != 0 || parallelSE.CrossClamped() != 0 {
			t.Fatalf("n=%d: lookahead contract violated: serial=%d parallel=%d",
				n, serialSE.CrossClamped(), parallelSE.CrossClamped())
		}
		if serialSE.Fired() == 0 || serialSE.Fired() != parallelSE.Fired() {
			t.Fatalf("n=%d: fired totals %d vs %d", n, serialSE.Fired(), parallelSE.Fired())
		}
		if serialSE.Horizon() != parallelSE.Horizon() {
			t.Fatalf("n=%d: horizons %v vs %v", n, serialSE.Horizon(), parallelSE.Horizon())
		}
	}
}

// TestShardedCrossClampCounts verifies that a send violating the
// lookahead contract is clamped to the window barrier and counted, with
// the clock still monotonic.
func TestShardedCrossClampCounts(t *testing.T) {
	se := NewSharded(2, 100)
	var arrivals []Micros
	se.Shard(1).Register(shardKindHop, func(e *Engine, r Record) {
		arrivals = append(arrivals, e.Now())
	})
	se.Shard(0).At(10, func(e *Engine) {
		// Zero-latency cross-shard send: violates lookahead=100.
		//secvet:allow shardcheck -- deliberate contract violation to exercise the CrossClamped path
		se.Send(0, 1, e.Now(), Record{Kind: shardKindHop})
	})
	se.RunSerial()
	if se.CrossClamped() != 1 {
		t.Fatalf("CrossClamped = %d, want 1", se.CrossClamped())
	}
	// The window opened at W=10 with barrier 110; the clamped send must
	// arrive exactly at the barrier.
	if len(arrivals) != 1 || arrivals[0] != 110 {
		t.Fatalf("arrivals = %v, want [110]", arrivals)
	}
}

// TestShardedClosureSends covers the SendEvent path and merge ordering
// between closure and record sends landing at the same instant.
func TestShardedClosureSends(t *testing.T) {
	se := NewSharded(2, 10)
	var got []string
	se.Shard(1).Register(shardKindHop, func(e *Engine, r Record) {
		got = append(got, "record")
	})
	se.Shard(0).At(0, func(e *Engine) {
		at := e.Now() + 10
		se.Send(0, 1, at, Record{Kind: shardKindHop})
		se.SendEvent(0, 1, at, func(*Engine) { got = append(got, "closure") })
	})
	se.RunSerial()
	// Same (at, to, from): per-source seq breaks the tie — record staged
	// first, so it dispatches first.
	if len(got) != 2 || got[0] != "record" || got[1] != "closure" {
		t.Fatalf("got %v, want [record closure]", got)
	}
}

// TestShardedPanicPropagates ensures a panic inside a shard event
// surfaces on the coordinating goroutine in parallel mode.
func TestShardedPanicPropagates(t *testing.T) {
	se := NewSharded(2, 10)
	se.Shard(1).At(5, func(*Engine) { panic("boom") })
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("shard panic did not propagate")
		}
		if s, ok := p.(string); !ok || !strings.Contains(s, "shard 1") || !strings.Contains(s, "boom") {
			t.Fatalf("panic payload %v lost shard attribution", p)
		}
	}()
	se.Run()
}

func TestShardedConstructorGuards(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero shards":    func() { NewSharded(0, 10) },
		"zero lookahead": func() { NewSharded(2, 0) },
		"bad target":     func() { NewSharded(2, 10).Send(0, 5, 100, Record{Kind: shardKindHop}) },
		"kind zero send": func() { NewSharded(2, 10).Send(0, 1, 100, Record{}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}
