package sim

import (
	"testing"
)

const (
	testKindTick OpKind = 1 + iota
	testKindTock
)

func TestRecordDispatchInterleavesWithClosures(t *testing.T) {
	e := NewEngine()
	var got []string
	e.Register(testKindTick, func(e *Engine, r Record) {
		got = append(got, "tick")
		if r.Chip != 3 || r.Block != 7 || r.Aux != int64(e.Now()) {
			t.Fatalf("payload mangled: %+v at %v", r, e.Now())
		}
	})
	e.Register(testKindTock, func(e *Engine, r Record) {
		got = append(got, "tock")
	})
	e.AtRecord(10, Record{Kind: testKindTick, Chip: 3, Block: 7, Aux: 10})
	e.At(10, func(*Engine) { got = append(got, "closure") })
	e.AfterRecord(20, Record{Kind: testKindTock})
	e.Run()
	want := []string{"tick", "closure", "tock"}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if e.Fired() != 3 {
		t.Fatalf("Fired = %d, want 3", e.Fired())
	}
}

func TestRecordClampSemantics(t *testing.T) {
	e := NewEngine()
	ran := false
	e.Register(testKindTick, func(e *Engine, r Record) { ran = true })
	e.At(50, func(*Engine) {})
	e.Run()
	e.AtRecord(10, Record{Kind: testKindTick}) // past: clamps to 50
	if e.Clamped() != 1 {
		t.Fatalf("Clamped = %d, want 1", e.Clamped())
	}
	e.Step()
	if !ran || e.Now() != 50 {
		t.Fatalf("ran=%v now=%v, want true, 50", ran, e.Now())
	}
}

func TestRecordDispatchPanicsWithoutHandler(t *testing.T) {
	e := NewEngine()
	e.AtRecord(0, Record{Kind: 9})
	defer func() {
		if recover() == nil {
			t.Fatal("dispatching an unregistered kind did not panic")
		}
	}()
	e.Step()
}

func TestRegisterGuards(t *testing.T) {
	e := NewEngine()
	e.Register(testKindTick, func(*Engine, Record) {})
	for name, fn := range map[string]func(){
		"re-register": func() { e.Register(testKindTick, func(*Engine, Record) {}) },
		"kind zero":   func() { e.Register(0, func(*Engine, Record) {}) },
		"kind range":  func() { e.Register(MaxOpKinds, func(*Engine, Record) {}) },
		"nil handler": func() { e.Register(testKindTock, nil) },
		"at kind 0":   func() { e.AtRecord(0, Record{}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// TestRecordSteadyStateZeroAllocs is the in-package half of the
// BenchmarkEventKernel claim: once the queue storage is warm, a
// schedule→dispatch→reschedule completion loop allocates nothing.
func TestRecordSteadyStateZeroAllocs(t *testing.T) {
	e := NewEngine()
	e.Register(testKindTick, func(e *Engine, r Record) {
		if r.Aux > 0 {
			e.AfterRecord(Micros(70+r.Chip%16), Record{Kind: testKindTick, Chip: r.Chip, Aux: r.Aux - 1})
		}
	})
	// Warm: seed 64 in-flight completion chains and let slices size up.
	for i := int32(0); i < 64; i++ {
		e.AfterRecord(Micros(i), Record{Kind: testKindTick, Chip: i, Aux: 100})
	}
	for e.Pending() > 8 {
		e.Step()
	}
	allocs := testing.AllocsPerRun(200, func() {
		e.AfterRecord(80, Record{Kind: testKindTick, Chip: 1, Aux: 3})
		for e.Step() {
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state record loop allocates %.1f/op, want 0", allocs)
	}
}

func TestBytePoolAndSlotPoolRecycle(t *testing.T) {
	bp := NewBytePool(2, 8)
	b := bp.Get()
	if len(b) != 0 || cap(b) < 8 {
		t.Fatalf("Get: len=%d cap=%d", len(b), cap(b))
	}
	b = append(b, 1, 2, 3)
	bp.Put(b)
	b2 := bp.Get()
	if len(b2) != 0 || cap(b2) < 8 {
		t.Fatalf("recycled Get: len=%d cap=%d", len(b2), cap(b2))
	}
	bp.Put(make([]byte, 0, 2)) // undersized: dropped, not poisoning the pool
	if g := bp.Get(); cap(g) < 8 {
		t.Fatalf("undersized slice entered the pool: cap=%d", cap(g))
	}

	sp := NewSlotPool(1, 4)
	s := sp.Get()
	s = append(s, 9)
	sp.Put(s)
	sp.Put(make([]int32, 0, 4)) // pool full: dropped silently
	if s2 := sp.Get(); len(s2) != 0 || cap(s2) < 4 {
		t.Fatalf("slot Get: len=%d cap=%d", len(s2), cap(s2))
	}
}
