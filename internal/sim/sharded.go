package sim

import (
	"fmt"
	"slices"
	"sync"
)

// ShardedEngine runs N Engines ("shards") under a conservative lookahead
// barrier — the classic null-message discipline for parallel discrete-
// event simulation, specialized to a shared-memory barrier:
//
//  1. The coordinator finds W, the earliest pending timestamp across all
//     shards, and opens the window [W, W+lookahead].
//  2. Every shard dispatches its events inside the window — in parallel,
//     one goroutine per shard — and MAY NOT touch another shard's state;
//     cross-shard effects are staged through Send/SendEvent instead.
//  3. At the barrier, staged sends are merged into their target shards in
//     a single deterministic order: (at, target shard, source shard,
//     per-source sequence). Target-side sequence numbers are assigned in
//     that order, so the resulting schedule — and therefore the whole
//     run — is bit-identical whether the window bodies executed in
//     parallel (Run) or one shard at a time (RunSerial).
//
// The conservative contract: a cross-shard send must be scheduled at
// least `lookahead` after the moment it is staged. Sends that violate it
// are clamped to the window barrier and counted (CrossClamped) — the
// simulation stays deterministic and monotonic, but a nonzero count
// means the chosen lookahead overstates the model's true minimum
// cross-shard latency.
type ShardedEngine struct {
	shards    []*Engine
	lookahead Micros
	// windowEnd is the barrier of the window currently executing. It is
	// written by the coordinator before the shard goroutines launch and
	// only read while they run.
	windowEnd Micros
	// staged and sendSeq are indexed by *source* shard: during a window
	// each is touched only by that shard's goroutine, so no locking.
	// The staged slices and mergeBuf follow arena discipline: reset to
	// [:0] each barrier (keeping their backing arrays), with dispatched
	// entries zeroed so closure/payload references don't pin the heap.
	// Steady state stages and merges at zero allocations per send.
	staged   [][]stagedSend
	sendSeq  []uint64
	xclamped []uint64
	mergeBuf []stagedSend
	panics   []any // per-shard panic capture, re-raised at the barrier

	// Persistent worker pool, live only inside Run: one goroutine per
	// shard, fed window barriers over work[i]. Spawning per window costs a
	// goroutine create/destroy pair per shard per window — with the tight
	// windows a small lookahead produces, that overhead dominates; the
	// pool pays it once per Run instead.
	work     []chan Micros
	windowWG sync.WaitGroup // barrier: all shards done with this window
	workerWG sync.WaitGroup // teardown: all worker goroutines exited
}

// stagedSend is one cross-shard event awaiting the merge barrier.
type stagedSend struct {
	to   int
	from int
	at   Micros
	seq  uint64 // per-source-shard send sequence
	call Event
	rec  Record
}

// NewSharded returns a ShardedEngine with n shards, all starting at time
// zero. lookahead must be positive: it is the minimum simulated latency
// of any cross-shard effect.
func NewSharded(n int, lookahead Micros) *ShardedEngine {
	if n < 1 {
		panic("sim: NewSharded: need at least one shard")
	}
	if lookahead <= 0 {
		panic("sim: NewSharded: lookahead must be positive")
	}
	se := &ShardedEngine{
		shards:    make([]*Engine, n),
		lookahead: lookahead,
		staged:    make([][]stagedSend, n),
		sendSeq:   make([]uint64, n),
		xclamped:  make([]uint64, n),
		panics:    make([]any, n),
	}
	for i := range se.shards {
		se.shards[i] = NewEngine()
	}
	return se
}

// Shards returns the shard count.
func (se *ShardedEngine) Shards() int { return len(se.shards) }

// Shard returns shard i's Engine for registering handlers and seeding
// initial events. During a window, an event running on shard i must only
// use shard i's Engine.
func (se *ShardedEngine) Shard(i int) *Engine { return se.shards[i] }

// Send stages a typed record for another shard (or, degenerately, the
// sender's own) to dispatch at absolute time at. It must only be called
// from an event executing on shard `from` (or from the coordinator
// between windows). Sends earlier than the current window barrier are
// clamped to it — see the conservative contract above.
func (se *ShardedEngine) Send(from, to int, at Micros, r Record) {
	if r.Kind == 0 || r.Kind >= MaxOpKinds {
		panic("sim: Send: op kind out of range")
	}
	se.stage(stagedSend{to: to, from: from, at: at, rec: r})
}

// SendEvent stages a closure event for another shard, with the same
// rules as Send.
func (se *ShardedEngine) SendEvent(from, to int, at Micros, ev Event) {
	if ev == nil {
		panic("sim: SendEvent: nil event")
	}
	se.stage(stagedSend{to: to, from: from, at: at, call: ev})
}

func (se *ShardedEngine) stage(s stagedSend) {
	if s.to < 0 || s.to >= len(se.shards) {
		panic(fmt.Sprintf("sim: send to shard %d of %d", s.to, len(se.shards)))
	}
	if s.at < se.windowEnd {
		se.xclamped[s.from]++
		s.at = se.windowEnd
	}
	se.sendSeq[s.from]++
	s.seq = se.sendSeq[s.from]
	se.staged[s.from] = append(se.staged[s.from], s)
}

// Run executes every shard's events to completion, windows executing in
// parallel (one goroutine per shard).
func (se *ShardedEngine) Run() { se.run(true) }

// RunSerial executes the identical window/merge protocol with the shard
// bodies run one at a time on the calling goroutine. It exists to prove
// bit-identity: Run and RunSerial produce the same schedule, clocks, and
// counters by construction, and the golden tests assert it.
func (se *ShardedEngine) RunSerial() { se.run(false) }

func (se *ShardedEngine) run(parallel bool) {
	if parallel {
		se.startWorkers()
		defer se.stopWorkers()
	}
	for {
		w, have := Micros(0), false
		for _, sh := range se.shards {
			if t, ok := sh.NextAt(); ok && (!have || t < w) {
				w, have = t, true
			}
		}
		if !have {
			// Shards drained and (since merge always follows a window)
			// nothing staged: done.
			return
		}
		end := w + se.lookahead
		se.windowEnd = end
		if parallel {
			se.windowWG.Add(len(se.work))
			for _, ch := range se.work {
				ch <- end
			}
			se.windowWG.Wait()
			for i, p := range se.panics {
				if p != nil {
					panic(fmt.Sprintf("sim: shard %d panicked: %v", i, p))
				}
			}
		} else {
			for _, sh := range se.shards {
				sh.RunUntil(end)
			}
		}
		se.merge()
	}
}

// startWorkers launches the persistent window workers, one per shard.
// Each waits on its channel for the next barrier, runs its shard up to
// it, and signals the window WaitGroup; a recovered panic is parked in
// panics[i] for the coordinator to re-raise after the barrier.
func (se *ShardedEngine) startWorkers() {
	se.work = make([]chan Micros, len(se.shards))
	for i := range se.work {
		se.work[i] = make(chan Micros)
	}
	se.workerWG.Add(len(se.shards))
	for i, sh := range se.shards {
		go func(i int, sh *Engine, in <-chan Micros) {
			defer se.workerWG.Done()
			for end := range in {
				func() {
					defer se.windowWG.Done()
					defer func() { se.panics[i] = recover() }()
					sh.RunUntil(end)
				}()
			}
		}(i, sh, se.work[i])
	}
}

// stopWorkers retires the worker pool and waits for every goroutine to
// exit, so an abandoned ShardedEngine (a benchmark iteration, a test
// shutdown) leaks nothing.
func (se *ShardedEngine) stopWorkers() {
	for _, ch := range se.work {
		close(ch)
	}
	se.workerWG.Wait()
	se.work = nil
}

// merge applies every staged cross-shard send in the deterministic
// barrier order (at, to, from, seq). Target sequence numbers are
// assigned in this order, which is what makes the parallel schedule
// reproduce the serial one bit-for-bit.
func (se *ShardedEngine) merge() {
	buf := se.mergeBuf[:0]
	for from := range se.staged {
		buf = append(buf, se.staged[from]...)
		se.staged[from] = se.staged[from][:0]
	}
	if len(buf) == 0 {
		se.mergeBuf = buf
		return
	}
	slices.SortFunc(buf, func(a, b stagedSend) int {
		switch {
		case a.at != b.at:
			if a.at < b.at {
				return -1
			}
			return 1
		case a.to != b.to:
			return a.to - b.to
		case a.from != b.from:
			return a.from - b.from
		case a.seq < b.seq:
			return -1
		case a.seq > b.seq:
			return 1
		default:
			return 0
		}
	})
	for i := range buf {
		s := &buf[i]
		tgt := se.shards[s.to]
		if s.call != nil {
			tgt.At(s.at, s.call)
		} else {
			tgt.AtRecord(s.at, s.rec)
		}
		// Drop the staged closure/payload references promptly.
		*s = stagedSend{}
	}
	se.mergeBuf = buf[:0]
}

// Fired sums dispatched events across shards.
func (se *ShardedEngine) Fired() uint64 {
	var n uint64
	for _, sh := range se.shards {
		n += sh.Fired()
	}
	return n
}

// Clamped sums per-shard past-time clamps across shards.
func (se *ShardedEngine) Clamped() uint64 {
	var n uint64
	for _, sh := range se.shards {
		n += sh.Clamped()
	}
	return n
}

// CrossClamped reports how many cross-shard sends violated the lookahead
// contract and were clamped to the window barrier.
func (se *ShardedEngine) CrossClamped() uint64 {
	var n uint64
	for _, c := range se.xclamped {
		n += c
	}
	return n
}

// Horizon returns the furthest clock across shards.
func (se *ShardedEngine) Horizon() Micros {
	var h Micros
	for _, sh := range se.shards {
		if sh.Now() > h {
			h = sh.Now()
		}
	}
	return h
}

// NextAt reports the engine's earliest pending timestamp, if any.
func (e *Engine) NextAt() (Micros, bool) { return e.queue.peekAt() }
