package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEngineStartsAtZero(t *testing.T) {
	e := NewEngine()
	if e.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", e.Now())
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0", e.Pending())
	}
}

func TestEngineFiresInTimestampOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(30, func(*Engine) { order = append(order, 3) })
	e.At(10, func(*Engine) { order = append(order, 1) })
	e.At(20, func(*Engine) { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("fired order %v, want [1 2 3]", order)
	}
	if e.Now() != 30 {
		t.Fatalf("Now() = %v, want 30", e.Now())
	}
}

func TestEngineFIFOAmongEqualTimestamps(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func(*Engine) { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("equal-timestamp order %v not FIFO", order)
		}
	}
}

func TestEngineAfterSchedulesRelative(t *testing.T) {
	e := NewEngine()
	var at Micros
	e.At(100, func(e *Engine) {
		e.After(50, func(e *Engine) { at = e.Now() })
	})
	e.Run()
	if at != 150 {
		t.Fatalf("relative event fired at %v, want 150", at)
	}
}

func TestEngineClampsPastEvents(t *testing.T) {
	e := NewEngine()
	var at Micros
	e.At(100, func(e *Engine) {
		// Scheduling "in the past" must not rewind the clock.
		e.At(10, func(e *Engine) { at = e.Now() })
	})
	e.Run()
	if at != 100 {
		t.Fatalf("past event fired at %v, want clamped to 100", at)
	}
}

func TestEngineStepReturnsFalseWhenEmpty(t *testing.T) {
	e := NewEngine()
	if e.Step() {
		t.Fatal("Step() on empty queue returned true")
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []Micros
	for _, at := range []Micros{10, 20, 30, 40} {
		at := at
		e.At(at, func(e *Engine) { fired = append(fired, at) })
	}
	e.RunUntil(25)
	if len(fired) != 2 {
		t.Fatalf("RunUntil(25) fired %d events, want 2", len(fired))
	}
	if e.Now() != 25 {
		t.Fatalf("Now() = %v, want 25 after RunUntil", e.Now())
	}
	e.RunUntil(100)
	if len(fired) != 4 {
		t.Fatalf("RunUntil(100) total fired %d, want 4", len(fired))
	}
}

func TestEngineFiredCounter(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 7; i++ {
		e.At(Micros(i), func(*Engine) {})
	}
	e.Run()
	if e.Fired() != 7 {
		t.Fatalf("Fired() = %d, want 7", e.Fired())
	}
}

func TestEngineCascade(t *testing.T) {
	// An event chain that schedules its successor; verifies the clock
	// advances monotonically through a long cascade.
	e := NewEngine()
	var steps int
	var chain func(*Engine)
	chain = func(e *Engine) {
		steps++
		if steps < 1000 {
			e.After(3, chain)
		}
	}
	e.After(3, chain)
	e.Run()
	if steps != 1000 {
		t.Fatalf("cascade ran %d steps, want 1000", steps)
	}
	if e.Now() != 3000 {
		t.Fatalf("Now() = %v, want 3000", e.Now())
	}
}

func TestTimelineSequentialReservations(t *testing.T) {
	var tl Timeline
	s1, e1 := tl.Reserve(0, 100)
	if s1 != 0 || e1 != 100 {
		t.Fatalf("first reservation [%v,%v), want [0,100)", s1, e1)
	}
	// Requesting at t=50 while busy until 100 must queue behind.
	s2, e2 := tl.Reserve(50, 30)
	if s2 != 100 || e2 != 130 {
		t.Fatalf("second reservation [%v,%v), want [100,130)", s2, e2)
	}
	// Requesting after the busy period starts immediately.
	s3, e3 := tl.Reserve(500, 10)
	if s3 != 500 || e3 != 510 {
		t.Fatalf("third reservation [%v,%v), want [500,510)", s3, e3)
	}
}

func TestTimelineAccounting(t *testing.T) {
	var tl Timeline
	tl.Reserve(0, 100)
	tl.Reserve(0, 100)
	tl.Reserve(1000, 50)
	if tl.BusyTotal() != 250 {
		t.Fatalf("BusyTotal() = %v, want 250", tl.BusyTotal())
	}
	if tl.Reservations() != 3 {
		t.Fatalf("Reservations() = %d, want 3", tl.Reservations())
	}
	if got := tl.Utilization(1000); got != 0.25 {
		t.Fatalf("Utilization(1000) = %v, want 0.25", got)
	}
	if got := tl.Utilization(0); got != 0 {
		t.Fatalf("Utilization(0) = %v, want 0", got)
	}
}

func TestMicrosString(t *testing.T) {
	cases := []struct {
		in   Micros
		want string
	}{
		{5, "5µs"},
		{1500, "1.500ms"},
		{2 * Second, "2.000s"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

// Property: a Timeline never grants overlapping intervals and never grants
// an interval starting before the request time.
func TestTimelineNoOverlapProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var tl Timeline
		prevEnd := Micros(-1)
		now := Micros(0)
		for i := 0; i < int(n%64)+1; i++ {
			// Random arrival jitter and duration.
			now += Micros(rng.Intn(200))
			d := Micros(rng.Intn(100) + 1)
			s, e := tl.Reserve(now, d)
			if s < now {
				return false // started before requested
			}
			if s < prevEnd {
				return false // overlap with previous grant
			}
			if e-s != d {
				return false // wrong duration
			}
			prevEnd = e
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the engine dispatches every scheduled event exactly once, in
// non-decreasing timestamp order.
func TestEngineOrderProperty(t *testing.T) {
	f := func(times []uint16) bool {
		e := NewEngine()
		var fired []Micros
		for _, at := range times {
			at := Micros(at)
			e.At(at, func(e *Engine) { fired = append(fired, e.Now()) })
		}
		e.Run()
		if len(fired) != len(times) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
