// Package sim provides a small deterministic discrete-event simulation
// kernel used by the SSD emulator and the experiment harnesses.
//
// Time is measured in microseconds (Micros) because every NAND flash
// operation latency in the paper is specified in µs (tREAD = 80µs,
// tPROG = 700µs, tBERS = 3500µs, tpLock = 100µs, tbLock = 300µs).
//
// The kernel offers these building blocks:
//
//   - Engine: an event queue with a monotonically advancing clock,
//     scheduled on a ladder/calendar queue (ladder.go) with a binary-heap
//     fallback. Events scheduled at the same timestamp fire in FIFO order
//     of scheduling, which keeps runs reproducible. Events are either
//     closures (At/After) or typed records dispatched through a jump
//     table with zero allocation (AtRecord/AfterRecord, record.go).
//   - ShardedEngine: N Engines stepped under a conservative lookahead
//     barrier with deterministic cross-shard merging (sharded.go), so a
//     sharded run is bit-identical to a serial one.
//   - Lanes: per-lane worker executors for deferring independent record
//     work off the coordinating goroutine (lanes.go).
//   - Timeline: a busy-until accumulator for a serially-reusable resource
//     (a flash chip or a channel bus). Reserving k µs on a timeline returns
//     the interval actually occupied, starting no earlier than the request
//     time and no earlier than the end of the previously reserved interval.
package sim

import (
	"errors"
	"fmt"
)

// Micros is a simulated timestamp or duration in microseconds.
type Micros int64

// Common durations.
const (
	Microsecond Micros = 1
	Millisecond Micros = 1000
	Second      Micros = 1000 * 1000
)

// Seconds converts the duration to floating-point seconds.
func (m Micros) Seconds() float64 { return float64(m) / float64(Second) }

// Millis converts the duration to floating-point milliseconds.
func (m Micros) Millis() float64 { return float64(m) / float64(Millisecond) }

func (m Micros) String() string {
	switch {
	case m >= Second:
		return fmt.Sprintf("%.3fs", m.Seconds())
	case m >= Millisecond:
		return fmt.Sprintf("%.3fms", m.Millis())
	default:
		return fmt.Sprintf("%dµs", int64(m))
	}
}

// Event is a callback scheduled on the Engine. The callback receives the
// engine so it may schedule further events.
type Event func(*Engine)

// scheduledEvent is one queue entry. Exactly one of call / rec.Kind is
// live: closure events carry call, typed record events (see record.go)
// carry rec by value and dispatch through the engine's jump table with
// no per-event allocation.
type scheduledEvent struct {
	at   Micros
	seq  uint64 // tie-breaker: FIFO among equal timestamps
	call Event
	rec  Record
}

// eventQueue is a binary min-heap ordered by (at, seq), stored by value
// in a plain slice. Scheduling an event costs no allocation beyond
// amortized slice growth: container/heap would box each element through
// `any` and force a per-push *scheduledEvent allocation, which dominated
// the kernel's profile. It survives as the ladder queue's fallback mode
// for pathological timestamp distributions (see ladder.go) and as the
// reference scheduler for equivalence tests (NewHeapEngine).
type eventQueue []scheduledEvent

func (q eventQueue) less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q *eventQueue) push(ev scheduledEvent) {
	h := append(*q, ev)
	*q = h
	// Sift up.
	for i := len(h) - 1; i > 0; {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (q *eventQueue) pop() scheduledEvent {
	h := *q
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = scheduledEvent{} // release the Event closure to the GC
	h = h[:n]
	*q = h
	// Sift down.
	for i := 0; ; {
		small := i
		if l := 2*i + 1; l < n && h.less(l, small) {
			small = l
		}
		if r := 2*i + 2; r < n && h.less(r, small) {
			small = r
		}
		if small == i {
			break
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
	return top
}

// Engine is a discrete-event simulator. The zero value is ready to use
// and schedules on the ladder queue (ladder.go).
type Engine struct {
	now   Micros
	seq   uint64
	queue ladderQueue
	// handlers is the typed-record jump table, indexed by OpKind
	// (record.go). A nil slot for a dispatched kind is a programming
	// error and panics.
	handlers [MaxOpKinds]Handler
	// Stats
	fired   uint64
	clamped uint64
	// OnClamp, when set, is called whenever At clamps a past-time event
	// to "now" (with the requested time). The telemetry layer uses it to
	// emit a clamp-warning marker; leaving it nil costs nothing.
	OnClamp func(requested, now Micros)
}

// NewEngine returns an Engine starting at time zero.
func NewEngine() *Engine { return &Engine{} }

// NewHeapEngine returns an Engine whose scheduler is pinned to the
// binary-heap fallback instead of the ladder queue. Dispatch order is
// identical by construction; the variant exists as the reference
// implementation for equivalence tests and A/B benchmarking.
func NewHeapEngine() *Engine {
	e := &Engine{}
	e.queue.heaped = true
	return e
}

// Now returns the current simulated time.
func (e *Engine) Now() Micros { return e.now }

// Fired reports how many events have been dispatched so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports how many events are waiting in the queue.
func (e *Engine) Pending() int { return e.queue.len() }

// Clamped reports how many events were scheduled in the past and clamped
// forward to the then-current time. A nonzero count means some caller's
// timing arithmetic ran backwards — worth investigating even though the
// clock stayed monotonic.
func (e *Engine) Clamped() uint64 { return e.clamped }

// At schedules ev to fire at absolute time t. Scheduling in the past is an
// error in the caller's logic; the event is clamped to fire "now" so that
// time never runs backwards. Each clamp is counted (Clamped) and reported
// through OnClamp when set.
func (e *Engine) At(t Micros, ev Event) {
	if t < e.now {
		e.clamped++
		if e.OnClamp != nil {
			e.OnClamp(t, e.now)
		}
		t = e.now
	}
	e.seq++
	e.queue.push(scheduledEvent{at: t, seq: e.seq, call: ev})
}

// After schedules ev to fire d microseconds from now.
func (e *Engine) After(d Micros, ev Event) { e.At(e.now+d, ev) }

// Step dispatches the single earliest event, advancing the clock to its
// timestamp. It reports false when the queue is empty.
func (e *Engine) Step() bool {
	ev, ok := e.queue.pop()
	if !ok {
		return false
	}
	e.now = ev.at
	e.fired++
	if ev.call != nil {
		ev.call(e)
		return true
	}
	h := e.handlers[ev.rec.Kind]
	if h == nil {
		panic(fmt.Sprintf("sim: no handler registered for op kind %d", ev.rec.Kind))
	}
	h(e, ev.rec)
	return true
}

// Run dispatches events until the queue drains.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// ErrRunLimit is wrapped by the error RunLimit returns when the event
// budget is exhausted with events still pending.
var ErrRunLimit = errors.New("sim: event budget exhausted")

// RunLimit dispatches events until the queue drains, like Run, but gives
// up after maxEvents dispatches. It is the safety valve against a buggy
// event that endlessly reschedules itself at the current time: instead
// of spinning forever the kernel returns an error (wrapping ErrRunLimit)
// describing where the run was stuck.
func (e *Engine) RunLimit(maxEvents uint64) error {
	for dispatched := uint64(0); ; dispatched++ {
		if e.queue.len() == 0 {
			return nil
		}
		if dispatched >= maxEvents {
			return fmt.Errorf("%w: %d events dispatched, %d still pending at t=%v",
				ErrRunLimit, dispatched, e.queue.len(), e.now)
		}
		e.Step()
	}
}

// RunUntil dispatches events whose timestamp is <= deadline, then advances
// the clock to the deadline (if the simulation has not already passed it).
func (e *Engine) RunUntil(deadline Micros) {
	for {
		at, ok := e.queue.peekAt()
		if !ok || at > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// Timeline models a serially-reusable resource: each reservation occupies
// the resource exclusively. It is the backbone of the SSD timing model —
// one Timeline per flash chip and one per channel bus.
type Timeline struct {
	busyUntil Micros
	busyTotal Micros // accumulated occupied time, for utilization reports
	waitTotal Micros // accumulated queueing delay (grant start − request)
	count     uint64
}

// Reserve books d microseconds starting no earlier than at. It returns the
// interval [start, end) that was actually granted.
func (t *Timeline) Reserve(at, d Micros) (start, end Micros) {
	start = at
	if t.busyUntil > start {
		start = t.busyUntil
	}
	end = start + d
	t.busyUntil = end
	t.busyTotal += d
	t.waitTotal += start - at
	t.count++
	return start, end
}

// BusyUntil returns the end of the last reservation.
func (t *Timeline) BusyUntil() Micros { return t.busyUntil }

// BusyTotal returns the total reserved time.
func (t *Timeline) BusyTotal() Micros { return t.busyTotal }

// WaitTotal returns the accumulated queueing delay: how long reservations
// waited behind earlier ones before the resource started serving them.
// It is the contention signal the telemetry layer reports per chip.
func (t *Timeline) WaitTotal() Micros { return t.waitTotal }

// Reservations returns the number of reservations made.
func (t *Timeline) Reservations() uint64 { return t.count }

// Utilization returns busy time as a fraction of the horizon (0 when the
// horizon is zero).
func (t *Timeline) Utilization(horizon Micros) float64 {
	if horizon <= 0 {
		return 0
	}
	return float64(t.busyTotal) / float64(horizon)
}
