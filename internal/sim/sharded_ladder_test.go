package sim

import (
	"reflect"
	"testing"
)

// These tests mirror the serial ladder-queue edge tests (ladder_test.go)
// through the sharded window/merge protocol: RunUntil deadlines arrive
// as conservative-lookahead barriers rather than caller-chosen instants,
// and cross-shard merges inject equal-timestamp events between windows.
// The primary assertion everywhere is bit-identity (Run ≡ RunSerial);
// the internal queue-state checks prove the schedule actually pushed the
// ladder through the path under test instead of quietly staying in the
// easy append/pop regime.

// shardedLadderRun drives `build` against a fresh ShardedEngine in both
// execution modes and requires identical per-shard dispatch logs,
// clocks, and fired counts. It returns the serial-mode engine for
// internal-state assertions.
func shardedLadderRun(t *testing.T, n int, lookahead Micros, build func(se *ShardedEngine, logs [][]firing)) *ShardedEngine {
	t.Helper()
	run := func(parallel bool) ([][]firing, *ShardedEngine) {
		se := NewSharded(n, lookahead)
		logs := make([][]firing, n)
		build(se, logs)
		if parallel {
			se.Run()
		} else {
			se.RunSerial()
		}
		return logs, se
	}
	serialLogs, serialSE := run(false)
	parallelLogs, parallelSE := run(true)
	if !reflect.DeepEqual(serialLogs, parallelLogs) {
		t.Fatal("dispatch logs diverge between RunSerial and Run")
	}
	for i := 0; i < n; i++ {
		s, p := serialSE.Shard(i), parallelSE.Shard(i)
		if s.Now() != p.Now() || s.Fired() != p.Fired() {
			t.Fatalf("shard %d: clock/fired diverge: serial (%v,%d) parallel (%v,%d)",
				i, s.Now(), s.Fired(), p.Now(), p.Fired())
		}
	}
	// Per-shard time must be monotone under barrier-driven dispatch.
	for i, log := range serialLogs {
		for j := 1; j < len(log); j++ {
			if log[j].at < log[j-1].at {
				t.Fatalf("shard %d: time ran backwards at dispatch %d: %v after %v",
					i, j, log[j], log[j-1])
			}
		}
	}
	return serialSE
}

// TestShardedLadderReEpoch seeds every shard with a wide far-future mass
// (landing in the overflow store, re-epoching on first dispatch) and has
// handlers hop work across shards and schedule far-ahead children, so
// the rung is rebuilt repeatedly while barriers slice RunUntil deadlines
// through the middle of epochs.
func TestShardedLadderReEpoch(t *testing.T) {
	const n = 3
	se := shardedLadderRun(t, n, 64, func(se *ShardedEngine, logs [][]firing) {
		for i := 0; i < n; i++ {
			shard := i
			eng := se.Shard(shard)
			eng.Register(shardKindHop, func(e *Engine, r Record) {
				logs[shard] = append(logs[shard], firing{e.Now(), int(r.Aux)})
				switch {
				case r.Aux <= 0:
				case r.Aux%4 == 0:
					// Cross-shard hop, honoring the lookahead contract and
					// landing well past the target's near run.
					se.Send(shard, (shard+1)%n, e.Now()+64+Micros(1000*(r.Aux%7)), Record{
						Kind: shardKindHop, Aux: r.Aux - 1,
					})
				case r.Aux%4 == 1:
					// Far local child: overflows the current epoch, forcing a
					// later re-epoch.
					e.AfterRecord(Micros(50_000+137*(r.Aux%11)), Record{Kind: shardKindHop, Aux: r.Aux - 2})
				default:
					e.AfterRecord(Micros(9+r.Aux%13), Record{Kind: shardKindHop, Aux: r.Aux - 1})
				}
			})
			// Wide seed batch: spans 0..~96k so the first epoch's bucket
			// width is ~750 and barrier deadlines (every 64) land inside
			// buckets, not on their edges.
			for c := 0; c < 200; c++ {
				eng.AtRecord(Micros(c*487+shard), Record{Kind: shardKindHop, Aux: int64(20 + (c+shard)%10)})
			}
			// All seeds predate the first pop, so they must be sitting in
			// the overflow store awaiting the first re-epoch.
			if got := len(eng.queue.over); got != 200 {
				t.Fatalf("shard %d: %d events in overflow before run, want 200", shard, got)
			}
		}
	})
	for i := 0; i < n; i++ {
		q := &se.Shard(i).queue
		if q.heaped {
			t.Fatalf("shard %d: ladder demoted to heap; schedule no longer tests the ladder", i)
		}
	}
	if se.CrossClamped() != 0 {
		t.Fatalf("CrossClamped = %d, want 0", se.CrossClamped())
	}
}

// TestShardedLadderRungBoundaryFIFO masses equal-timestamp clusters onto
// instants that fall exactly on the target shard's bucket edges, fed
// through both local scheduling and cross-shard merges. Same-instant
// dispatch order is (arrival seq) by construction of the merge;
// bit-identity between Run and RunSerial plus per-shard monotone time
// (both asserted by the helper) is the gate — the serial-engine FIFO
// property itself is pinned by TestLadderFIFOAcrossRungBoundaries.
func TestShardedLadderRungBoundaryFIFO(t *testing.T) {
	const n = 2
	shardedLadderRun(t, n, 100, func(se *ShardedEngine, logs [][]firing) {
		for i := 0; i < n; i++ {
			shard := i
			eng := se.Shard(shard)
			eng.Register(shardKindHop, func(e *Engine, r Record) {
				logs[shard] = append(logs[shard], firing{e.Now(), int(r.Aux)})
				if r.Aux >= 1000 {
					// Echo back to the peer at the same instant the peer
					// already has local events scheduled: the merge must
					// order these deterministically behind them.
					se.Send(shard, 1-shard, e.Now()+100, Record{Kind: shardKindHop, Aux: r.Aux - 1000})
				}
			})
			// A far batch over exactly ladderBuckets instants, width 1:
			// every instant is its own bucket edge once the epoch forms.
			// Each instant gets a FIFO cluster of 4 locally scheduled ids.
			id := shard * 100_000
			for b := 0; b < ladderBuckets; b++ {
				at := Micros(10_000 + b)
				for k := 0; k < 4; k++ {
					aux := int64(id)
					if k == 0 && b%16 == 0 {
						aux += 1000 // this one echoes cross-shard
					}
					eng.AtRecord(at, Record{Kind: shardKindHop, Aux: aux})
					id++
				}
			}
		}
	})
}

// TestShardedLadderDemotion reproduces the pathological single-instant
// massing of TestLadderDemotesOnPathologicalSchedule inside a sharded
// run: one shard's handler masses >ladderSpillSize events onto one far
// instant per round while the other shard runs a normal workload. The
// massing shard must demote to the heap mid-run, the other must not, and
// the merged schedule must stay bit-identical to serial.
func TestShardedLadderDemotion(t *testing.T) {
	const massKind OpKind = shardKindHop + 1
	se := shardedLadderRun(t, 2, 50, func(se *ShardedEngine, logs [][]firing) {
		// Shard 0: the masser. Each round event floods the next far
		// instant with an oversized equal-time batch.
		eng0 := se.Shard(0)
		eng0.Register(shardKindHop, func(e *Engine, r Record) {
			logs[0] = append(logs[0], firing{e.Now(), int(r.Aux)})
		})
		eng0.Register(massKind, func(e *Engine, r Record) {
			logs[0] = append(logs[0], firing{e.Now(), -int(r.Aux)})
			at := e.Now() + 1_000_000
			for i := 0; i < ladderSpillSize+1; i++ {
				e.AtRecord(at, Record{Kind: shardKindHop, Aux: int64(i)})
			}
			if r.Aux > 1 {
				e.AtRecord(at, Record{Kind: massKind, Aux: r.Aux - 1})
			}
		})
		eng0.AtRecord(10, Record{Kind: massKind, Aux: int64(ladderMaxSpills)})

		// Shard 1: ordinary traffic with cross-shard hops into shard 0,
		// landing between the massed instants.
		eng1 := se.Shard(1)
		eng1.Register(shardKindHop, func(e *Engine, r Record) {
			logs[1] = append(logs[1], firing{e.Now(), int(r.Aux)})
			if r.Aux > 0 {
				if r.Aux%5 == 0 {
					se.Send(1, 0, e.Now()+50+Micros(r.Aux), Record{Kind: shardKindHop, Aux: 0})
				}
				e.AfterRecord(Micros(40_000+r.Aux%17), Record{Kind: shardKindHop, Aux: r.Aux - 1})
			}
		})
		for c := 0; c < 30; c++ {
			eng1.AtRecord(Micros(c*11), Record{Kind: shardKindHop, Aux: int64(25 + c%5)})
		}
	})
	if !se.Shard(0).queue.heaped {
		t.Fatalf("massing shard did not demote (spills=%d)", se.Shard(0).queue.spills)
	}
	if se.Shard(1).queue.heaped {
		t.Fatal("well-behaved shard demoted to heap")
	}
}
