package sim

import (
	"slices"
	"sort"
)

// Ladder-queue scheduler parameters. The queue keeps a small sorted
// "near-future" run plus one rung of far-future buckets; distributions
// that defeat the bucketing (everything collapsing into one oversized
// bucket, over and over) demote the queue to the binary-heap fallback,
// whose O(log n) bound is insensitive to the timestamp distribution.
const (
	// ladderBuckets is the rung width: one epoch spans ladderBuckets
	// buckets of equal time width.
	ladderBuckets = 128
	// ladderSpillSize is the largest batch the queue is willing to sort
	// in one go; a bigger batch counts as a spill.
	ladderSpillSize = 8192
	// ladderMaxSpills is how many spills the queue tolerates before
	// concluding the distribution is pathological and demoting itself to
	// the heap.
	ladderMaxSpills = 3
)

// eventLess is the kernel's total dispatch order: (at, seq).
func eventLess(a, b scheduledEvent) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// ladderQueue is a two-tier calendar ("ladder") priority queue over
// scheduledEvents, ordered by (at, seq) exactly like the binary heap it
// replaces:
//
//   - near:    a sorted ascending run dispatched from a cursor (ni), so a
//     pop is O(1) and the steady-state insert — an event scheduled just
//     past the current frontier — is an append.
//   - buckets: the current epoch, [base, base+ladderBuckets*width),
//     holding unsorted far-future events; advancing into a bucket sorts
//     just that bucket into near.
//   - over:    everything beyond the epoch, unsorted; when the epoch
//     drains, over is re-bucketed into a fresh epoch whose width adapts
//     to the span of what is actually pending.
//
// The discrete-event engine's schedule is overwhelmingly "now + small
// latency", which this layout turns into append-and-pop with no
// per-event comparisons against the whole queue. Pathological schedules
// (every event at one far-future instant, repeatedly) would make the
// queue re-sort giant batches; after ladderMaxSpills of those it demotes
// itself to the binary heap (heaped), preserving semantics exactly.
type ladderQueue struct {
	near []scheduledEvent // sorted ascending by (at, seq)
	ni   int              // dispatch cursor into near

	// nearEnd is the exclusive upper bound of near's time coverage: an
	// insert below it must go into near to keep dispatch order exact.
	nearEnd Micros

	buckets [ladderBuckets][]scheduledEvent
	base    Micros // start time of bucket 0
	width   Micros // bucket width; 0 = no active epoch
	bhead   int    // next bucket to spread into near
	bcount  int    // events currently bucketed

	over []scheduledEvent // unsorted events beyond the epoch

	size   int
	spills int
	heaped bool
	heap   eventQueue
}

func (q *ladderQueue) len() int { return q.size }

// push inserts an event; ev.at is never below the last popped timestamp
// (the Engine clamps past events to now before scheduling).
func (q *ladderQueue) push(ev scheduledEvent) {
	q.size++
	if q.heaped {
		q.heap.push(ev)
		return
	}
	if ev.at < q.nearEnd {
		q.insertNear(ev)
		return
	}
	if q.width > 0 {
		if idx := int((ev.at - q.base) / q.width); idx < ladderBuckets {
			q.buckets[idx] = append(q.buckets[idx], ev)
			q.bcount++
			return
		}
	}
	q.over = append(q.over, ev)
}

// insertNear places ev into the sorted run. The common case — an event
// later than everything pending — is an append.
func (q *ladderQueue) insertNear(ev scheduledEvent) {
	n := len(q.near)
	if n == q.ni || !eventLess(ev, q.near[n-1]) {
		q.near = append(q.near, ev)
		return
	}
	idx := q.ni + sort.Search(n-q.ni, func(i int) bool {
		return eventLess(ev, q.near[q.ni+i])
	})
	q.near = slices.Insert(q.near, idx, ev)
}

// pop removes and returns the earliest event.
func (q *ladderQueue) pop() (scheduledEvent, bool) {
	if q.size == 0 {
		return scheduledEvent{}, false
	}
	if !q.heaped {
		q.ensureNear()
	}
	q.size--
	if q.heaped {
		return q.heap.pop(), true
	}
	ev := q.near[q.ni]
	q.near[q.ni] = scheduledEvent{} // release the Event closure to the GC
	q.ni++
	if q.ni == len(q.near) {
		q.near = q.near[:0]
		q.ni = 0
	}
	return ev, true
}

// peekAt returns the earliest pending timestamp without dispatching.
func (q *ladderQueue) peekAt() (Micros, bool) {
	if q.size == 0 {
		return 0, false
	}
	if !q.heaped {
		q.ensureNear()
	}
	if q.heaped {
		return q.heap[0].at, true
	}
	return q.near[q.ni].at, true
}

// ensureNear refills the sorted run from the buckets (or re-epochs from
// over) until it holds the earliest pending event. Only called with
// size > 0, so a refill source always exists.
func (q *ladderQueue) ensureNear() {
	for q.ni == len(q.near) {
		if q.bcount == 0 {
			q.reEpoch()
			if q.heaped {
				return
			}
			continue
		}
		j := q.bhead
		for len(q.buckets[j]) == 0 {
			j++
		}
		b := q.buckets[j]
		// Recycle near's spent backing array as the emptied bucket's
		// storage so the steady state allocates nothing.
		q.buckets[j] = q.near[:0]
		q.near = b
		q.ni = 0
		q.bcount -= len(b)
		q.bhead = j + 1
		q.nearEnd = q.base + Micros(j+1)*q.width
		q.sortBatch()
		if q.heaped {
			return
		}
	}
}

// reEpoch rebuilds the bucket rung from the overflow store. Precondition:
// near and the buckets are empty, over is not.
func (q *ladderQueue) reEpoch() {
	lo, hi := q.over[0].at, q.over[0].at
	for _, ev := range q.over[1:] {
		if ev.at < lo {
			lo = ev.at
		}
		if ev.at > hi {
			hi = ev.at
		}
	}
	if lo == hi {
		// Degenerate epoch: a single instant. Sort it straight into near;
		// bucketing cannot split it any further.
		q.near = append(q.near[:0], q.over...)
		q.ni = 0
		q.over = q.over[:0]
		q.nearEnd = hi + 1
		q.width = 0
		q.sortBatch()
		return
	}
	q.width = (hi-lo)/ladderBuckets + 1
	q.base = lo
	q.bhead = 0
	for _, ev := range q.over {
		idx := int((ev.at - q.base) / q.width)
		q.buckets[idx] = append(q.buckets[idx], ev)
	}
	q.bcount = len(q.over)
	q.over = q.over[:0]
	q.nearEnd = q.base
}

// sortBatch sorts the freshly refilled near run and tracks spills; too
// many oversized sorts demote the queue to the heap fallback.
func (q *ladderQueue) sortBatch() {
	slices.SortFunc(q.near, func(a, b scheduledEvent) int {
		if a.at != b.at {
			if a.at < b.at {
				return -1
			}
			return 1
		}
		if a.seq < b.seq {
			return -1
		}
		if a.seq > b.seq {
			return 1
		}
		return 0
	})
	if len(q.near) > ladderSpillSize {
		q.spills++
		if q.spills >= ladderMaxSpills {
			q.demote()
		}
	}
}

// demote abandons the ladder layout for the binary heap: same (at, seq)
// dispatch order, insensitive to the timestamp distribution.
func (q *ladderQueue) demote() {
	q.heaped = true
	if cap(q.heap) == 0 {
		q.heap = make(eventQueue, 0, q.size)
	}
	for _, ev := range q.near[q.ni:] {
		q.heap.push(ev)
	}
	q.near, q.ni = nil, 0
	for i := range q.buckets {
		for _, ev := range q.buckets[i] {
			q.heap.push(ev)
		}
		q.buckets[i] = nil
	}
	q.bcount, q.width = 0, 0
	for _, ev := range q.over {
		q.heap.push(ev)
	}
	q.over = nil
}
