package sim

import "testing"

func TestEngineClampCounterAndHook(t *testing.T) {
	e := NewEngine()
	var hooked []Micros
	e.OnClamp = func(requested, now Micros) { hooked = append(hooked, requested, now) }
	e.At(100, func(e *Engine) {
		e.At(10, func(*Engine) {})  // past: clamped to 100
		e.At(100, func(*Engine) {}) // exactly now: not a clamp
		e.After(5, func(*Engine) {})
	})
	e.Run()
	if e.Clamped() != 1 {
		t.Fatalf("Clamped() = %d, want 1", e.Clamped())
	}
	if len(hooked) != 2 || hooked[0] != 10 || hooked[1] != 100 {
		t.Fatalf("OnClamp got %v, want [10 100]", hooked)
	}
}

func TestEngineClampWithoutHook(t *testing.T) {
	e := NewEngine()
	e.At(50, func(e *Engine) { e.At(0, func(*Engine) {}) })
	e.Run() // no OnClamp set: must not panic
	if e.Clamped() != 1 {
		t.Fatalf("Clamped() = %d, want 1", e.Clamped())
	}
}

// RunUntil on an empty queue must still advance the clock to the
// deadline — batching deadline sweeps rely on time passing even when no
// device work is scheduled.
func TestRunUntilEmptyQueueAdvancesClock(t *testing.T) {
	e := NewEngine()
	e.RunUntil(500)
	if e.Now() != 500 {
		t.Fatalf("Now() = %v, want 500", e.Now())
	}
	// A second, earlier deadline must not rewind.
	e.RunUntil(200)
	if e.Now() != 500 {
		t.Fatalf("Now() = %v after earlier deadline, want 500", e.Now())
	}
	// Draining all events before the deadline still lands on the deadline.
	e.At(600, func(*Engine) {})
	e.RunUntil(1000)
	if e.Now() != 1000 || e.Pending() != 0 {
		t.Fatalf("Now() = %v pending %d, want 1000 / 0", e.Now(), e.Pending())
	}
}

func TestTimelineWaitBackToBack(t *testing.T) {
	var tl Timeline
	// Three back-to-back requests all arriving at t=0: the second waits
	// 100, the third 200.
	tl.Reserve(0, 100)
	tl.Reserve(0, 100)
	tl.Reserve(0, 100)
	if tl.WaitTotal() != 300 {
		t.Fatalf("WaitTotal = %v, want 300", tl.WaitTotal())
	}
	if got := tl.Utilization(300); got != 1.0 {
		t.Fatalf("Utilization(300) = %v, want 1.0 (fully busy)", got)
	}
}

func TestTimelineWaitGapped(t *testing.T) {
	var tl Timeline
	// Gapped arrivals that never contend accumulate zero wait.
	tl.Reserve(0, 50)
	tl.Reserve(100, 50)
	tl.Reserve(1000, 50)
	if tl.WaitTotal() != 0 {
		t.Fatalf("WaitTotal = %v, want 0 for gapped arrivals", tl.WaitTotal())
	}
	if got := tl.Utilization(1050); got != 150.0/1050.0 {
		t.Fatalf("Utilization = %v, want %v", got, 150.0/1050.0)
	}
	// One late-but-contending arrival: busy until 1050, request at 1040.
	tl.Reserve(1040, 10)
	if tl.WaitTotal() != 10 {
		t.Fatalf("WaitTotal = %v after contended arrival, want 10", tl.WaitTotal())
	}
}
