package sim

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// LaneFunc executes one deferred record on a lane worker.
type LaneFunc func(lane int, r Record)

// Lanes is a set of single-producer FIFO executors for deferring
// independent Record work off the coordinating goroutine. The SSD's
// channel-sharded mode posts chip mutations to one lane per channel
// group: per-lane order is the post order (so each chip's op sequence is
// preserved), and the coordinator flushes a lane before it needs any
// result that lane's work produces.
//
// Concurrency contract: exactly one goroutine (the coordinator) calls
// Post, Flush, FlushAll and Close. Lane workers run concurrently with
// the coordinator but only ever execute fn; fn must not touch state the
// coordinator reads without an intervening Flush.
//
// A panic inside fn is captured and re-raised on the coordinator at the
// next Post/Flush/Close, preserving fail-fast semantics for discipline
// violations (the serial execution path panics at the call site).
type Lanes struct {
	fn      LaneFunc
	lanes   []laneState
	panicMu sync.Mutex
	panicV  any
	failed  atomic.Bool
	done    sync.WaitGroup
	posted  []uint64 // per-lane post counters (coordinator-side stats)
}

type laneState struct {
	ch chan Record
	// pending counts posted-but-unfinished records. Only the coordinator
	// Adds (in Post) and Waits (in Flush), so the WaitGroup reuse rule —
	// no Add concurrent with Wait from zero — holds by construction.
	pending sync.WaitGroup
}

// NewLanes starts n lane workers with the given queue depth per lane.
func NewLanes(n, depth int, fn LaneFunc) *Lanes {
	if n < 1 {
		panic("sim: NewLanes: need at least one lane")
	}
	if depth < 1 {
		depth = 1
	}
	l := &Lanes{
		fn:     fn,
		lanes:  make([]laneState, n),
		posted: make([]uint64, n),
	}
	for i := range l.lanes {
		l.lanes[i].ch = make(chan Record, depth)
		l.done.Add(1)
		go l.work(i)
	}
	return l
}

func (l *Lanes) work(lane int) {
	defer l.done.Done()
	ls := &l.lanes[lane]
	for r := range ls.ch {
		l.exec(lane, r)
		ls.pending.Done()
	}
}

func (l *Lanes) exec(lane int, r Record) {
	defer func() {
		if p := recover(); p != nil {
			l.panicMu.Lock()
			if l.panicV == nil {
				l.panicV = fmt.Sprintf("sim: lane %d: %v", lane, p)
			}
			l.panicMu.Unlock()
			l.failed.Store(true)
		}
	}()
	l.fn(lane, r)
}

func (l *Lanes) check() {
	if l.failed.Load() {
		l.panicMu.Lock()
		p := l.panicV
		l.panicMu.Unlock()
		panic(p)
	}
}

// N returns the lane count.
func (l *Lanes) N() int { return len(l.lanes) }

// Posted returns how many records have been posted to lane i.
func (l *Lanes) Posted(i int) uint64 { return l.posted[i] }

// Post enqueues r on lane i, blocking if the lane is depth-full.
func (l *Lanes) Post(i int, r Record) {
	l.check()
	l.lanes[i].pending.Add(1)
	l.posted[i]++
	l.lanes[i].ch <- r
}

// Flush blocks until every record posted to lane i has executed.
func (l *Lanes) Flush(i int) {
	l.lanes[i].pending.Wait()
	l.check()
}

// FlushAll blocks until every posted record on every lane has executed.
func (l *Lanes) FlushAll() {
	for i := range l.lanes {
		l.lanes[i].pending.Wait()
	}
	l.check()
}

// Close flushes all lanes and stops the workers. The Lanes must not be
// used afterwards.
func (l *Lanes) Close() {
	for i := range l.lanes {
		l.lanes[i].pending.Wait()
		close(l.lanes[i].ch)
	}
	l.done.Wait()
	l.check()
}
