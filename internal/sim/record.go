package sim

// Typed event records. A closure scheduled through Engine.At allocates:
// the func value plus its captured variables escape to the heap on every
// call, which dominates the kernel's steady-state completion loop
// (program / read / pLock completions all capture a chip, an address and
// a deadline). A Record carries the same payload by value inside the
// queue entry and dispatches through a per-kind jump table, so the hot
// loop schedules and fires at 0 allocs/op — proven by
// BenchmarkEventKernel the way BenchmarkFlashOps proved the NAND scratch
// reuse. The closure API stays for cold callers.

// OpKind identifies the handler a Record dispatches to. Kind 0 is
// reserved as "invalid" so a zero Record can never silently dispatch.
type OpKind uint8

// MaxOpKinds bounds the jump table. Kinds are small dense integers
// assigned by each subsystem (the SSD's deferred chip-op executor uses
// ~10 of them).
const MaxOpKinds = 64

// Record is a typed event payload. The fields are deliberately generic —
// a coordinate tuple, two scalars and two optional vectors — so one
// struct shape covers every op in the device model without per-op
// allocation. Unused fields are simply zero. The vectors (Data, Slots)
// follow free-list discipline when performance matters: take from a
// Pool, hand to the record, recycle in the handler.
type Record struct {
	Kind OpKind

	// Device coordinates: the scheduling site fills whichever apply.
	Chip    int32
	Channel int32
	Block   int32
	Page    int32
	// Second coordinate pair, for two-address ops (copyback src→dst).
	Block2 int32
	Page2  int32

	// Aux carries one op-specific scalar (typically the op's dep/now
	// timestamp as int64 Micros).
	Aux int64

	// Data is an optional byte payload (e.g. a program's page image).
	Data []byte
	// Slots is an optional index vector (e.g. pLock slot numbers or
	// packed page ids for multi-plane groups).
	Slots []int32
}

// Handler executes a Record when its event fires. The engine passes
// itself so handlers can schedule follow-up events.
type Handler func(*Engine, Record)

// Register installs the handler for kind. Registering kind 0, an
// out-of-range kind, or re-registering a kind panics: the jump table is
// fixed wiring, not a dynamic dispatch surface.
func (e *Engine) Register(kind OpKind, h Handler) {
	if kind == 0 || kind >= MaxOpKinds {
		panic("sim: Register: op kind out of range")
	}
	if h == nil {
		panic("sim: Register: nil handler")
	}
	if e.handlers[kind] != nil {
		panic("sim: Register: op kind already registered")
	}
	e.handlers[kind] = h
}

// AtRecord schedules a typed record to dispatch at absolute time t, with
// the same clamp semantics as At. The record is copied by value into the
// queue: no allocation.
func (e *Engine) AtRecord(t Micros, r Record) {
	if r.Kind == 0 || r.Kind >= MaxOpKinds {
		panic("sim: AtRecord: op kind out of range")
	}
	if t < e.now {
		e.clamped++
		if e.OnClamp != nil {
			e.OnClamp(t, e.now)
		}
		t = e.now
	}
	e.seq++
	e.queue.push(scheduledEvent{at: t, seq: e.seq, rec: r})
}

// AfterRecord schedules a typed record d microseconds from now.
func (e *Engine) AfterRecord(d Micros, r Record) { e.AtRecord(e.now+d, r) }

// BytePool is a fixed-capacity free list of byte slices for Record.Data
// payloads. Get returns a zero-length slice with at least the configured
// capacity; Put recycles one. Both are non-blocking: an empty pool
// allocates, a full pool lets the GC take the surplus. Safe for
// concurrent use (it is a buffered channel underneath).
type BytePool struct {
	ch  chan []byte
	cap int
}

// NewBytePool returns a pool holding up to n slices of byte capacity c.
func NewBytePool(n, c int) *BytePool {
	return &BytePool{ch: make(chan []byte, n), cap: c}
}

// Get returns an empty slice with capacity ≥ the pool's slice capacity.
func (p *BytePool) Get() []byte {
	select {
	case b := <-p.ch:
		return b[:0]
	default:
		return make([]byte, 0, p.cap)
	}
}

// Put recycles b; undersized or surplus slices are dropped.
func (p *BytePool) Put(b []byte) {
	if cap(b) < p.cap {
		return
	}
	select {
	case p.ch <- b:
	default:
	}
}

// SlotPool is the free list for Record.Slots vectors, mirroring BytePool.
type SlotPool struct {
	ch  chan []int32
	cap int
}

// NewSlotPool returns a pool holding up to n vectors of capacity c.
func NewSlotPool(n, c int) *SlotPool {
	return &SlotPool{ch: make(chan []int32, n), cap: c}
}

// Get returns an empty vector with capacity ≥ the pool's capacity.
func (p *SlotPool) Get() []int32 {
	select {
	case s := <-p.ch:
		return s[:0]
	default:
		return make([]int32, 0, p.cap)
	}
}

// Put recycles s; undersized or surplus vectors are dropped.
func (p *SlotPool) Put(s []int32) {
	if cap(s) < p.cap {
		return
	}
	select {
	case p.ch <- s:
	default:
	}
}
