package parallel

import (
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkers(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(7); got != 7 {
		t.Errorf("Workers(7) = %d, want 7", got)
	}
}

func TestMapEmpty(t *testing.T) {
	out, err := Map(4, 0, func(i int) (int, error) { return 0, nil })
	if err != nil || out != nil {
		t.Errorf("Map(n=0) = %v, %v; want nil, nil", out, err)
	}
}

// TestMapOrder checks that results land at their submission index no
// matter the completion order (jittered by index-dependent sleeps).
func TestMapOrder(t *testing.T) {
	const n = 100
	for _, workers := range []int{1, 2, 4, 8, n + 5} {
		fn := func(i int) (int, error) {
			time.Sleep(time.Duration((i*37)%5) * time.Millisecond)
			return i * i, nil
		}
		got, err := Map(workers, n, fn)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		want := make([]int, n)
		for i := range want {
			want[i] = i * i
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: results out of order: %v", workers, got)
		}
	}
}

// TestMapMatchesSerial is the pool-level determinism guarantee: any
// worker count returns exactly the serial result.
func TestMapMatchesSerial(t *testing.T) {
	const n = 64
	fn := func(i int) (string, error) { return fmt.Sprintf("cell-%03d", i*i), nil }
	serial, err := Map(1, n, fn)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 16} {
		par, err := Map(workers, n, fn)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(serial, par) {
			t.Errorf("workers=%d: parallel result differs from serial", workers)
		}
	}
}

// TestMapFirstErrorWins induces failures at two indexes and checks the
// lowest-index error is the one reported, regardless of which worker
// trips first temporally.
func TestMapFirstErrorWins(t *testing.T) {
	errLow := errors.New("low")
	errHigh := errors.New("high")
	for trial := 0; trial < 20; trial++ {
		_, err := Map(4, 32, func(i int) (int, error) {
			switch i {
			case 3:
				// Make the low-index failure slow so the high one is
				// usually observed first.
				time.Sleep(2 * time.Millisecond)
				return 0, errLow
			case 7:
				return 0, errHigh
			}
			return i, nil
		})
		if !errors.Is(err, errLow) {
			t.Fatalf("trial %d: got %v, want lowest-index error %v", trial, err, errLow)
		}
	}
}

// TestMapDrainsCleanly checks that after an error the pool lets every
// in-flight job finish and starts no job past the failure horizon:
// started == finished when Map returns, and no new job starts after.
func TestMapDrainsCleanly(t *testing.T) {
	boom := errors.New("boom")
	var started, finished atomic.Int64
	_, err := Map(4, 200, func(i int) (int, error) {
		started.Add(1)
		defer finished.Add(1)
		time.Sleep(time.Duration(i%3) * time.Millisecond)
		if i == 10 {
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want %v", err, boom)
	}
	s, f := started.Load(), finished.Load()
	if s != f {
		t.Errorf("pool leaked in-flight work: started %d, finished %d", s, f)
	}
	if s >= 200 {
		t.Errorf("pool kept scheduling after failure: %d of 200 jobs ran", s)
	}
	// No goroutine may outlive Map: any late start would bump the
	// counter after return.
	time.Sleep(5 * time.Millisecond)
	if late := started.Load(); late != s {
		t.Errorf("job started after Map returned (%d -> %d)", s, late)
	}
}

func TestForEach(t *testing.T) {
	var sum atomic.Int64
	if err := ForEach(3, 50, func(i int) error {
		sum.Add(int64(i))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 49*50/2 {
		t.Errorf("sum = %d, want %d", sum.Load(), 49*50/2)
	}
	boom := errors.New("boom")
	if err := ForEach(3, 50, func(i int) error {
		if i == 5 {
			return boom
		}
		return nil
	}); !errors.Is(err, boom) {
		t.Errorf("ForEach error = %v, want %v", err, boom)
	}
}
