// Package parallel provides the deterministic fan-out primitive used by
// the reproduction harness: a bounded worker pool that runs independent
// indexed jobs and hands their results back in submission-index order,
// so a parallel sweep is bit-identical to its serial counterpart.
//
// Determinism contract: as long as fn(i) depends only on i (every
// experiment cell seeds its own RNG and owns its own device state),
// Map's output is independent of the worker count — workers only decide
// how many fn calls are in flight, never which result lands where.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a worker-count flag: values <= 0 mean "one worker
// per available CPU" (GOMAXPROCS).
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Map runs fn(0) … fn(n-1) on at most workers goroutines (per Workers)
// and returns the results ordered by index.
//
// Error semantics mirror a serial loop's first failure: when a job
// fails, no new jobs are started, jobs already in flight run to
// completion (the pool drains cleanly — no goroutine is left behind
// when Map returns), and the returned error is the one from the lowest
// failing index. Indexes are claimed in ascending order, so every index
// below the lowest failure has fully executed, exactly as it would have
// serially. On error the result slice is nil.
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	out := make([]T, n)
	if w == 1 {
		// Serial fast path: identical to the historical loops this
		// replaces, with no goroutine or atomic overhead.
		for i := 0; i < n; i++ {
			r, err := fn(i)
			if err != nil {
				return nil, err
			}
			out[i] = r
		}
		return out, nil
	}
	errs := make([]error, n)
	var (
		next   atomic.Int64
		failed atomic.Bool
		wg     sync.WaitGroup
	)
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !failed.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				r, err := fn(i)
				if err != nil {
					errs[i] = err
					failed.Store(true)
					return
				}
				out[i] = r
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// ForEach is Map for jobs that produce no result.
func ForEach(workers, n int, fn func(i int) error) error {
	_, err := Map(workers, n, func(i int) (struct{}, error) {
		return struct{}{}, fn(i)
	})
	return err
}
