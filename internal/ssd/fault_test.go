package ssd

import (
	"math/rand"
	"testing"

	"repro/internal/blockio"
	"repro/internal/fault"
	"repro/internal/sanitize"
)

// churn drives n random single-page secured writes through the device.
func churn(t *testing.T, s *SSD, seed int64, n int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	logical := int64(s.LogicalPages())
	for i := 0; i < n; i++ {
		if _, err := s.Submit(blockio.Request{
			Op: blockio.OpWrite, LPA: rng.Int63n(logical), Pages: 1,
		}); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
}

// TestFaultSeedDefaultsToDeviceSeed: one seed reproduces the whole run
// unless a fault seed is set explicitly.
func TestFaultSeedDefaultsToDeviceSeed(t *testing.T) {
	cfg := smallConfig(sanitize.SecSSD())
	cfg.Fault = fault.Config{ProgramFail: 0.1}
	cfg.applyDefaults()
	if cfg.Fault.Seed != cfg.Seed {
		t.Fatalf("fault seed %d, want device seed %d", cfg.Fault.Seed, cfg.Seed)
	}
	cfg.Fault.Seed = 99
	cfg.applyDefaults()
	if cfg.Fault.Seed != 99 {
		t.Fatalf("explicit fault seed overridden to %d", cfg.Fault.Seed)
	}
}

// TestFaultedDeviceSurvivesChurn runs a write-heavy workload at a high
// injection rate and checks the recovery ladder's books balance: every
// failure has its matching recovery action and the device keeps serving.
func TestFaultedDeviceSurvivesChurn(t *testing.T) {
	cfg := smallConfig(sanitize.SecSSD())
	cfg.Fault = fault.Uniform(0.01, 31)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Prefill(0.6, true); err != nil {
		t.Fatal(err)
	}
	churn(t, s, 1, 3000)

	fc := s.FaultCounts()
	if fc.OpFails() == 0 {
		t.Fatal("no faults injected at rate 0.01 over a 3000-write churn")
	}
	st := s.FTL().Stats()
	if st.ProgramFailures != fc.ProgramFails {
		t.Fatalf("FTL saw %d program failures, injector produced %d", st.ProgramFailures, fc.ProgramFails)
	}
	if st.ProgramRetries != st.ProgramFailures {
		t.Fatalf("ProgramRetries %d != ProgramFailures %d (no write aborted at this rate)",
			st.ProgramRetries, st.ProgramFailures)
	}
	if st.LockEscalations != st.PLockFailures {
		t.Fatalf("LockEscalations %d != PLockFailures %d", st.LockEscalations, st.PLockFailures)
	}
	if st.RecoveryErases != st.BLockFailures {
		t.Fatalf("RecoveryErases %d != BLockFailures %d", st.RecoveryErases, st.BLockFailures)
	}
	if st.RetiredBlocks != st.EraseFailures {
		t.Fatalf("RetiredBlocks %d != EraseFailures %d", st.RetiredBlocks, st.EraseFailures)
	}
	if got := s.FTL().RetiredPages(); got != int64(st.RetiredBlocks)*int64(s.Geometry().PagesPerBlock) {
		t.Fatalf("RetiredPages %d inconsistent with %d retired blocks", got, st.RetiredBlocks)
	}
}

// TestFaultGoldenDeterminism: identical seeds and workload produce a
// bit-identical fault campaign — counters, stats and simulated makespan —
// while a different fault seed draws a different schedule.
func TestFaultGoldenDeterminism(t *testing.T) {
	run := func(faultSeed int64) (Report, fault.Counts) {
		cfg := smallConfig(sanitize.SecSSD())
		cfg.Fault = fault.Uniform(0.02, faultSeed)
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		churn(t, s, 5, 2000)
		return s.Report(), s.FaultCounts()
	}
	r1, c1 := run(11)
	r2, c2 := run(11)
	if c1 != c2 {
		t.Fatalf("fault counts diverged between identical runs:\n%+v\n%+v", c1, c2)
	}
	if r1.Stats != r2.Stats {
		t.Fatalf("stats diverged between identical runs:\n%+v\n%+v", r1.Stats, r2.Stats)
	}
	if r1.Elapsed != r2.Elapsed || r1.ReadRetries != r2.ReadRetries {
		t.Fatalf("timing diverged: %v/%d vs %v/%d", r1.Elapsed, r1.ReadRetries, r2.Elapsed, r2.ReadRetries)
	}
	if _, c3 := run(12); c3 == c1 {
		t.Fatalf("fault seeds 11 and 12 drew identical campaigns: %+v", c3)
	}
}

// TestReadRetryAbsorbsBitErrors: at a raw BER near the ECC limit many
// reads come back uncorrectable and are absorbed by the retry loop; the
// host keeps getting data and the retries are accounted in the report.
func TestReadRetryAbsorbsBitErrors(t *testing.T) {
	cfg := smallConfig(sanitize.SecSSD())
	cfg.Fault = fault.Config{ReadBER: fault.DefaultECC().LimitRBER(), Seed: 3}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	data := make([]byte, s.Geometry().PageBytes)
	for i := range data {
		data[i] = byte(rng.Int())
	}
	for lpa := int64(0); lpa < 64; lpa++ {
		if _, err := s.Submit(blockio.Request{Op: blockio.OpWrite, LPA: lpa, Pages: 1, Data: data}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 512; i++ {
		if _, err := s.Submit(blockio.Request{Op: blockio.OpRead, LPA: rng.Int63n(64), Pages: 1}); err != nil {
			t.Fatal(err)
		}
	}
	r := s.Report()
	if r.ReadRetries == 0 {
		t.Fatal("no read retries at a BER equal to the ECC limit")
	}
	if fc := s.FaultCounts(); fc.ReadUncorrectable == 0 || fc.ReadBitErrors == 0 {
		t.Fatalf("injector read counters empty: %+v", fc)
	}
}
