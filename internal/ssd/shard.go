// Channel-sharded deferred execution (-shard-channels).
//
// The timing model is already coordinator-side: every Target method
// computes its Timeline reservations, trace events and completion times
// from configuration constants, never from what the chip returns. With
// fault injection disabled the chip calls are infallible too (any error
// is a flash-discipline violation, which panics in both modes), so the
// chip-state mutation — vth sampling, read-disturb bookkeeping, page
// copies — is the only work a Target call does that anything downstream
// waits for. This file defers exactly that work onto sim.Lanes: one FIFO
// worker per shard, chips statically partitioned across lanes, per-chip
// op order preserved because a chip never changes lanes.
//
// Determinism: the coordinator's arithmetic is untouched, each chip sees
// the identical op sequence with identical arguments (including the
// `now` timestamps its retention stamps and RNG draws depend on), and
// chips share no state. A sharded run is therefore bit-identical to a
// serial one — reports, traces, audit ledgers, OpenMetrics exports and
// forensic chip dumps. The golden tests in shard_test.go and
// internal/experiment assert this end to end.
//
// Synchronization points: a Target.Read that must return data (GC
// relocation) flushes the owning chip's lane first; ReadLogical, Chips
// and FaultCounts drain every lane. Host reads go through the
// ftl.DiscardReader interface and stay deferred.

package ssd

import (
	"fmt"

	"repro/internal/ftl"
	"repro/internal/nand"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Deferred chip-op record kinds (sim.Record.Kind).
const (
	opProgram sim.OpKind = iota + 1
	opProgramMulti
	opReadDiscard
	opReadMulti
	opPLock
	opPLockWL
	opBLock
	opErase
	opScrub
	opCopyback
	opStampMeta
)

// laneDepth is the per-lane queue depth: deep enough to keep a lane busy
// across the coordinator's bookkeeping, small enough to bound the drift
// between coordinator and chips.
const laneDepth = 256

// shardExec owns the deferred-execution machinery of one SSD.
type shardExec struct {
	s      *SSD
	lanes  *sim.Lanes
	laneOf []int32
	bufs   *sim.BytePool // program payload copies
	slots  *sim.SlotPool // pLock slot / packed page-id vectors

	// Per-lane decode scratch. Each slice is touched only by its lane's
	// worker, never by the coordinator while the lane is running.
	slotInts [][]int
	addrs    [][]nand.PageAddr
	datas    [][][]byte
}

func newShardExec(s *SSD, lanes int) *shardExec {
	nChips := len(s.chips)
	if lanes > nChips {
		lanes = nChips
	}
	x := &shardExec{
		s:        s,
		laneOf:   make([]int32, nChips),
		bufs:     sim.NewBytePool(4*lanes, s.cfg.Chip.PageBytes),
		slots:    sim.NewSlotPool(4*lanes, s.geo.PagesPerWL*s.geo.Planes),
		slotInts: make([][]int, lanes),
		addrs:    make([][]nand.PageAddr, lanes),
		datas:    make([][][]byte, lanes),
	}
	// Static chip→lane partition. Round-robin spreads each channel's
	// chips across lanes; any fixed mapping is correct (chips share no
	// state, and the buses live on the coordinator's timelines).
	for chip := range x.laneOf {
		x.laneOf[chip] = int32(chip % lanes)
	}
	x.lanes = sim.NewLanes(lanes, laneDepth, x.exec)
	return x
}

func (x *shardExec) post(chip int, r sim.Record) {
	r.Chip = int32(chip)
	x.lanes.Post(int(x.laneOf[chip]), r)
}

// flushChip waits for every deferred op on chip's lane (the lane is
// FIFO, so this is at least chip-complete).
func (x *shardExec) flushChip(chip int) { x.lanes.Flush(int(x.laneOf[chip])) }

// exec runs one deferred record on its lane worker. Errors from the chip
// are impossible here by construction (faults are disabled in sharded
// mode), so every error is a discipline violation and panics — matching
// the serial path's fail-fast behavior, re-raised on the coordinator by
// sim.Lanes.
func (x *shardExec) exec(lane int, r sim.Record) {
	chip := x.s.chips[r.Chip]
	now := sim.Micros(r.Aux)
	a := nand.PageAddr{Block: int(r.Block), Page: int(r.Page)}
	switch r.Kind {
	case opProgram:
		_, err := chip.Program(a, r.Data, now)
		if r.Data != nil {
			x.bufs.Put(r.Data)
		}
		must(err, "program", a)
	case opReadDiscard:
		_, err := chip.Read(a, now)
		must(err, "read", a)
	case opPLock:
		_, err := chip.PLock(a, now)
		must(err, "pLock", a)
	case opPLockWL:
		ints := x.slotInts[lane][:0]
		for _, s := range r.Slots {
			ints = append(ints, int(s))
		}
		x.slotInts[lane] = ints
		_, err := chip.PLockWL(int(r.Block), int(r.Page), ints, now)
		x.slots.Put(r.Slots)
		must(err, "pLockWL", a)
	case opBLock:
		_, err := chip.BLock(int(r.Block), now)
		must(err, "bLock", a)
	case opErase:
		_, err := chip.Erase(int(r.Block), now)
		must(err, "erase", a)
	case opScrub:
		_, err := chip.Scrub(a, now)
		must(err, "scrub", a)
	case opCopyback:
		dst := nand.PageAddr{Block: int(r.Block2), Page: int(r.Page2)}
		_, err := chip.Copyback(a, dst, now)
		must(err, "copyback", a)
	case opStampMeta:
		// Aux packs lpa<<1|secure (no timestamp: stamps are untimed);
		// Block2/Page2 carry the write sequence's high and low halves.
		seq := uint64(uint32(r.Block2))<<32 | uint64(uint32(r.Page2))
		err := chip.StampOOB(a, nand.OOBMeta{
			LPA:    r.Aux >> 1,
			Seq:    seq,
			Secure: r.Aux&1 == 1,
		})
		must(err, "stampMeta", a)
	case opProgramMulti:
		addrs, datas := x.unpack(lane, r.Slots)
		_, errs, fatal := chip.ProgramMulti(addrs, datas, now)
		x.slots.Put(r.Slots)
		must(fatal, "programMulti", a)
		for i, err := range errs {
			must(err, "programMulti page", addrs[i])
		}
	case opReadMulti:
		addrs, _ := x.unpack(lane, r.Slots)
		_, errs, fatal := chip.ReadMulti(addrs, now)
		x.slots.Put(r.Slots)
		must(fatal, "readMulti", a)
		for i, err := range errs {
			must(err, "readMulti page", addrs[i])
		}
	default:
		panic(fmt.Sprintf("ssd: unknown deferred op kind %d", r.Kind))
	}
}

// unpack decodes packed chip-local page ids (block*pagesPerBlock+page)
// into the lane's address scratch, plus a matching all-nil datas slice.
func (x *shardExec) unpack(lane int, packed []int32) ([]nand.PageAddr, [][]byte) {
	ppb := x.s.geo.PagesPerBlock
	addrs := x.addrs[lane][:0]
	datas := x.datas[lane][:0]
	for _, id := range packed {
		addrs = append(addrs, nand.PageAddr{Block: int(id) / ppb, Page: int(id) % ppb})
		datas = append(datas, nil)
	}
	x.addrs[lane] = addrs
	x.datas[lane] = datas
	return addrs, datas
}

func must(err error, op string, a nand.PageAddr) {
	if err != nil {
		panic(fmt.Sprintf("ssd: deferred %s at %v: %v", op, a, err))
	}
}

// pack encodes a chip-local address as one int32 page id.
func (x *shardExec) pack(a nand.PageAddr) int32 {
	return int32(a.Block*x.s.geo.PagesPerBlock + a.Page)
}

// Drain blocks until every deferred chip operation has executed. It is
// the barrier before anything inspects chip state directly (forensic
// dumps, logical reads, fault census) and a no-op on serial devices.
func (s *SSD) Drain() {
	if s.shard != nil {
		s.shard.lanes.FlushAll()
	}
}

// Close drains and stops the lane workers. The device remains usable in
// serial mode afterwards; Close on a serial device is a no-op.
func (s *SSD) Close() {
	if s.shard != nil {
		s.shard.lanes.Close()
		s.shard = nil
	}
}

// Sharded reports whether deferred channel-sharded execution is active.
func (s *SSD) Sharded() bool { return s.shard != nil }

// ReadDiscard implements ftl.DiscardReader: a host read whose payload the
// FTL discards. Timing and tracing are identical to Read's success path;
// in sharded mode the chip work is deferred instead of flushing the lane
// (no retries are possible with faults disabled, so the serial Read would
// take exactly this path).
func (s *SSD) ReadDiscard(p ftl.PPA, dep sim.Micros) sim.Micros {
	if s.shard == nil {
		_, done := s.Read(p, dep)
		return done
	}
	chip, a := s.addr(p)
	s.shard.post(chip, sim.Record{
		Kind: opReadDiscard, Block: int32(a.Block), Page: int32(a.Page), Aux: int64(dep),
	})
	cellStart, cellDone := s.chipTL[chip].Reserve(dep, s.cfg.Timing.Read)
	if s.traceOn {
		s.emitChip(trace.OpRead, chip, p, dep, cellStart, cellDone)
	}
	busStart, busDone := s.busTL[s.channelOf(chip)].Reserve(cellDone, s.cfg.Timing.Xfer)
	if s.cfg.NoCachePipeline {
		s.chipTL[chip].Reserve(cellDone, busDone-cellDone)
	}
	if s.traceOn {
		s.emitChip(trace.OpXfer, chip, p, cellDone, busStart, busDone)
	}
	return busDone
}
