// Channel-sharded deferred execution (-shard-channels).
//
// The timing model is already coordinator-side: every Target method
// computes its Timeline reservations, trace events and completion times
// from configuration constants, never from what the chip returns. The
// chip calls are infallible too: any chip error is a flash-discipline
// violation, which panics in both modes, and fault verdicts — the one
// outcome the FTL's recovery ladder needs synchronously — are drawn on
// the coordinator by the fault oracle (oracle.go) before the record is
// posted. So the chip-state mutation — vth sampling, read-disturb
// bookkeeping, page copies — is the only work a Target call does that
// anything downstream waits for. This file defers exactly that work
// onto sim.Lanes: one FIFO worker per shard, chips statically
// partitioned across lanes channel-major (each channel's chips stay
// together, so a lane's flush barrier maps to a bus-arbitration domain),
// per-chip op order preserved because a chip never changes lanes.
//
// Determinism: the coordinator's arithmetic is untouched, each chip sees
// the identical op sequence with identical arguments (including the
// `now` timestamps its retention stamps and RNG draws depend on), chips
// share no state, and in fault mode every injector draw happens on the
// coordinator in call order — the serial schedule, stream for stream.
// A sharded run is therefore bit-identical to a serial one — reports,
// traces, audit ledgers, OpenMetrics exports, fault censuses and
// forensic chip dumps. The golden tests in shard_test.go and
// internal/experiment assert this end to end.
//
// Synchronization points: a Target.Read that must return data (GC
// relocation) flushes the owning chip's lane first, as do the rare
// failed-copyback corruption path and the ProgramGroup payload
// fallback; ReadLogical, Chips and FaultCounts drain every lane. Host
// reads go through the ftl.DiscardReader interface and stay deferred —
// the oracle pre-decides their retry count, which rides in the record.

package ssd

import (
	"fmt"

	"repro/internal/ftl"
	"repro/internal/nand"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Deferred chip-op record kinds (sim.Record.Kind).
const (
	opProgram sim.OpKind = iota + 1
	opProgramMulti
	opReadDiscard
	opReadMulti
	opPLock
	opPLockWL
	opBLock
	opErase
	opScrub
	opCopyback
	opStampMeta
	opStampMetaGroup
)

// laneDepth is the per-lane queue depth: deep enough to keep a lane busy
// across the coordinator's bookkeeping, small enough to bound the drift
// between coordinator and chips.
const laneDepth = 256

// attemptShift packs a deferred group read's per-page retry count into
// the high bits of its packed page id (ids are block*pagesPerBlock+page,
// < 2^24 for every modeled geometry; retry counts are < 4).
const (
	attemptShift = 24
	pageIdMask   = 1<<attemptShift - 1
)

// shardExec owns the deferred-execution machinery of one SSD.
type shardExec struct {
	s      *SSD
	lanes  *sim.Lanes
	laneOf []int32
	bufs   *sim.BytePool // program payload copies
	slots  *sim.SlotPool // pLock slot / packed page-id vectors

	// Per-lane decode scratch. Each slice is touched only by its lane's
	// worker, never by the coordinator while the lane is running.
	slotInts [][]int
	addrs    [][]nand.PageAddr
	datas    [][][]byte
}

func newShardExec(s *SSD, lanes int) *shardExec {
	nChips := len(s.chips)
	if lanes > nChips {
		lanes = nChips
	}
	x := &shardExec{
		s:        s,
		laneOf:   make([]int32, nChips),
		bufs:     sim.NewBytePool(4*lanes, s.cfg.Chip.PageBytes),
		slots:    sim.NewSlotPool(4*lanes, s.geo.PagesPerWL*s.geo.Planes),
		slotInts: make([][]int, lanes),
		addrs:    make([][]nand.PageAddr, lanes),
		datas:    make([][][]byte, lanes),
	}
	// Static chip→lane partition, channel-major: each channel's chips
	// map into one contiguous band of lanes, so a chip flush only ever
	// waits on work from its own bus-arbitration domain. Any fixed
	// mapping is correct (chips share no state, and the buses live on
	// the coordinator's timelines); this one minimizes cross-channel
	// barrier coupling.
	nCh := s.cfg.Channels
	for chip := range x.laneOf {
		ch := chip / s.cfg.ChipsPerChannel
		lo := ch * lanes / nCh
		hi := (ch + 1) * lanes / nCh
		if hi <= lo {
			// More channels than lanes: whole channels share a lane.
			x.laneOf[chip] = int32(lo)
			continue
		}
		// Lanes >= channels: spread the channel's chips across its band.
		x.laneOf[chip] = int32(lo + (chip%s.cfg.ChipsPerChannel)%(hi-lo))
	}
	x.lanes = sim.NewLanes(lanes, laneDepth, x.exec)
	return x
}

func (x *shardExec) post(chip int, r sim.Record) {
	r.Chip = int32(chip)
	x.lanes.Post(int(x.laneOf[chip]), r)
}

// flushChip waits for every deferred op on chip's lane (the lane is
// FIFO, so this is at least chip-complete).
func (x *shardExec) flushChip(chip int) { x.lanes.Flush(int(x.laneOf[chip])) }

// exec runs one deferred record on its lane worker. Errors from the chip
// are impossible here by construction (chips run draw-free; fault
// verdicts are pre-decided by the coordinator's oracle and ride in the
// record), so every error is a discipline violation and panics —
// matching the serial path's fail-fast behavior, re-raised on the
// coordinator by sim.Lanes. A verdict of "failed" (Page2 == 1 on the
// lock/erase kinds) replays the failure's state effects through the
// chip's Apply*Fail entry points.
func (x *shardExec) exec(lane int, r sim.Record) {
	chip := x.s.chips[r.Chip]
	now := sim.Micros(r.Aux)
	a := nand.PageAddr{Block: int(r.Block), Page: int(r.Page)}
	switch r.Kind {
	case opProgram:
		_, err := chip.Program(a, r.Data, now)
		if r.Data != nil {
			x.bufs.Put(r.Data)
		}
		must(err, "program", a)
	case opReadDiscard:
		// Block2 carries the oracle's attempt count (1 when fault-free):
		// each retry re-runs the read's disturb bookkeeping, exactly as
		// the serial retry loop does.
		n := int32(1)
		if r.Block2 > 1 {
			n = r.Block2
		}
		for i := int32(0); i < n; i++ {
			_, err := chip.Read(a, now)
			must(err, "read", a)
		}
	case opPLock:
		if r.Page2 == 1 {
			must(chip.ApplyPLockFail(a), "pLock fail", a)
			break
		}
		_, err := chip.PLock(a, now)
		must(err, "pLock", a)
	case opPLockWL:
		ints := x.slotInts[lane][:0]
		for _, s := range r.Slots {
			ints = append(ints, int(s))
		}
		x.slotInts[lane] = ints
		if r.Page2 == 1 {
			must(chip.ApplyPLockWLFail(int(r.Block), int(r.Page), ints), "pLockWL fail", a)
			x.slots.Put(r.Slots)
			break
		}
		_, err := chip.PLockWL(int(r.Block), int(r.Page), ints, now)
		x.slots.Put(r.Slots)
		must(err, "pLockWL", a)
	case opBLock:
		if r.Page2 == 1 {
			must(chip.ApplyBLockFail(int(r.Block)), "bLock fail", a)
			break
		}
		_, err := chip.BLock(int(r.Block), now)
		must(err, "bLock", a)
	case opErase:
		if r.Page2 == 1 {
			must(chip.ApplyEraseFail(int(r.Block)), "erase fail", a)
			break
		}
		_, err := chip.Erase(int(r.Block), now)
		must(err, "erase", a)
	case opScrub:
		_, err := chip.Scrub(a, now)
		must(err, "scrub", a)
	case opCopyback:
		dst := nand.PageAddr{Block: int(r.Block2), Page: int(r.Page2)}
		_, err := chip.Copyback(a, dst, now)
		must(err, "copyback", a)
	case opStampMeta:
		// Aux packs lpa<<1|secure (no timestamp: stamps are untimed);
		// Block2/Page2 carry the write sequence's high and low halves.
		seq := uint64(uint32(r.Block2))<<32 | uint64(uint32(r.Page2))
		err := chip.StampOOB(a, nand.OOBMeta{
			LPA:    r.Aux >> 1,
			Seq:    seq,
			Secure: r.Aux&1 == 1,
		})
		must(err, "stampMeta", a)
	case opStampMetaGroup:
		// A whole stripe's stamps in one record (the FTL's group fast
		// path): Slots carry the packed page ids in stripe order, Aux
		// packs lpa0<<1|secure, Block2/Page2 the first sequence number's
		// halves; each page k stamps (lpa0+k, seq0+k) — value-for-value
		// the per-page opStampMeta records this replaces.
		seq0 := uint64(uint32(r.Block2))<<32 | uint64(uint32(r.Page2))
		lpa0 := r.Aux >> 1
		secure := r.Aux&1 == 1
		addrs, _ := x.unpack(lane, r.Slots)
		for i, pa := range addrs {
			err := chip.StampOOB(pa, nand.OOBMeta{
				LPA: lpa0 + int64(i), Seq: seq0 + uint64(i), Secure: secure,
			})
			must(err, "stampMetaGroup", pa)
		}
		x.slots.Put(r.Slots)
	case opProgramMulti:
		addrs, datas := x.unpack(lane, r.Slots)
		_, errs, fatal := chip.ProgramMulti(addrs, datas, now)
		x.slots.Put(r.Slots)
		must(fatal, "programMulti", a)
		for i, err := range errs {
			must(err, "programMulti page", addrs[i])
		}
	case opReadMulti:
		addrs, _ := x.unpack(lane, r.Slots)
		_, errs, fatal := chip.ReadMulti(addrs, now)
		must(fatal, "readMulti", a)
		for i, err := range errs {
			must(err, "readMulti page", addrs[i])
		}
		// High bits of each packed id carry the oracle's extra attempt
		// count; replay the retries' disturb bookkeeping per page in
		// plane order, as the serial retry loop would.
		for i, id := range r.Slots {
			for k := int32(0); k < id>>attemptShift; k++ {
				_, err := chip.Read(addrs[i], now)
				must(err, "readMulti retry", addrs[i])
			}
		}
		x.slots.Put(r.Slots)
	default:
		panic(fmt.Sprintf("ssd: unknown deferred op kind %d", r.Kind))
	}
}

// unpack decodes packed chip-local page ids (block*pagesPerBlock+page,
// low attemptShift bits; the high bits may carry retry counts) into the
// lane's address scratch, plus a matching all-nil datas slice.
func (x *shardExec) unpack(lane int, packed []int32) ([]nand.PageAddr, [][]byte) {
	ppb := x.s.geo.PagesPerBlock
	addrs := x.addrs[lane][:0]
	datas := x.datas[lane][:0]
	for _, id := range packed {
		id &= pageIdMask
		addrs = append(addrs, nand.PageAddr{Block: int(id) / ppb, Page: int(id) % ppb})
		datas = append(datas, nil)
	}
	x.addrs[lane] = addrs
	x.datas[lane] = datas
	return addrs, datas
}

func must(err error, op string, a nand.PageAddr) {
	if err != nil {
		panic(fmt.Sprintf("ssd: deferred %s at %v: %v", op, a, err))
	}
}

// pack encodes a chip-local address as one int32 page id.
func (x *shardExec) pack(a nand.PageAddr) int32 {
	return int32(a.Block*x.s.geo.PagesPerBlock + a.Page)
}

// Drain blocks until every deferred chip operation has executed. It is
// the barrier before anything inspects chip state directly (forensic
// dumps, logical reads, fault census) and a no-op on serial devices.
func (s *SSD) Drain() {
	if s.shard != nil {
		s.shard.lanes.FlushAll()
	}
}

// Close drains and stops the lane workers. The device remains usable in
// serial mode afterwards; Close on a serial device is a no-op.
func (s *SSD) Close() {
	if s.shard != nil {
		s.shard.lanes.Close()
		s.shard = nil
	}
}

// Sharded reports whether deferred channel-sharded execution is active.
func (s *SSD) Sharded() bool { return s.shard != nil }

// ShardStats is a snapshot of the deferred-execution machinery: how many
// records each lane executed and which chips it owns. A lopsided Posted
// distribution means the static chip→lane partition is starving workers —
// the first thing to look at when a sharded run fails to scale.
type ShardStats struct {
	Lanes  int      `json:"lanes"`
	Posted []uint64 `json:"posted_per_lane"` // deferred records executed, by lane
	LaneOf []int    `json:"lane_of_chip"`    // chip index -> owning lane
}

// ShardStatsSnapshot captures the lane utilization counters. Must be
// called before Close (Close discards the machinery); returns the zero
// value on a serial device.
func (s *SSD) ShardStatsSnapshot() ShardStats {
	if s.shard == nil {
		return ShardStats{}
	}
	st := ShardStats{
		Lanes:  s.shard.lanes.N(),
		Posted: make([]uint64, s.shard.lanes.N()),
		LaneOf: make([]int, len(s.shard.laneOf)),
	}
	for i := range st.Posted {
		st.Posted[i] = s.shard.lanes.Posted(i)
	}
	for chip, lane := range s.shard.laneOf {
		st.LaneOf[chip] = int(lane)
	}
	return st
}

// ReadDiscard implements ftl.DiscardReader: a host read whose payload the
// FTL discards. Timing and tracing are identical to Read's success path;
// in sharded mode the chip work is deferred instead of flushing the lane.
// In fault mode the oracle pre-runs the serial retry loop (each redraw
// burns the discarded transfer's bit-flip draws too), the coordinator
// replays the retry reservations and counters, and the record carries
// the attempt count for the lane's disturb bookkeeping.
func (s *SSD) ReadDiscard(p ftl.PPA, dep sim.Micros) sim.Micros {
	if s.shard == nil {
		_, done := s.Read(p, dep)
		return done
	}
	chip, a := s.addr(p)
	attempts, failed := 1, false
	if s.oracle != nil {
		attempts, failed = s.oracle.readDiscard(chip, a)
	}
	s.shard.post(chip, sim.Record{
		Kind: opReadDiscard, Block: int32(a.Block), Page: int32(a.Page),
		Block2: int32(attempts), Aux: int64(dep),
	})
	cellStart, cellDone := s.chipTL[chip].Reserve(dep, s.cfg.Timing.Read)
	if s.traceOn {
		s.emitChip(trace.OpRead, chip, p, dep, cellStart, cellDone)
	}
	for i := 1; i < attempts; i++ {
		s.readRetries++
		retryStart, retryDone := s.chipTL[chip].Reserve(cellDone, s.cfg.Timing.Read)
		if s.traceOn {
			s.emitChip(trace.OpReadRetry, chip, p, cellDone, retryStart, retryDone)
		}
		cellDone = retryDone
	}
	if failed {
		s.readFailures++
	}
	busStart, busDone := s.busTL[s.channelOf(chip)].Reserve(cellDone, s.cfg.Timing.Xfer)
	if s.cfg.NoCachePipeline {
		s.chipTL[chip].Reserve(cellDone, busDone-cellDone)
	}
	if s.traceOn {
		s.emitChip(trace.OpXfer, chip, p, cellDone, busStart, busDone)
	}
	return busDone
}
