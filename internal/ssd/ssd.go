// Package ssd assembles the full SecureSSD device of §7: channels × NAND
// chips behind an Evanesco-aware FTL, with a discrete timing model
// (per-chip and per-channel-bus timelines) and a closed-loop host
// interface that measures IOPS the way the paper's evaluation does.
//
// The default configuration matches the paper: 2 channels with four 3D
// TLC chips each, 428 blocks per chip, 576 16-KiB pages per block
// (32 GiB raw), tREAD 80µs / tPROG 700µs / tBERS 3.5ms / tpLock 100µs /
// tbLock 300µs.
package ssd

import (
	"errors"
	"fmt"

	"repro/internal/blockio"
	"repro/internal/fault"
	"repro/internal/ftl"
	"repro/internal/metrics"
	"repro/internal/nand"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Config assembles a device.
type Config struct {
	Channels        int
	ChipsPerChannel int
	Chip            nand.Geometry
	Timing          nand.Timing
	// OverProvision is the fraction of raw capacity reserved for GC
	// (default 0.07 when zero).
	OverProvision float64
	// GCFreeBlocksLow is the per-chip GC trigger (default 3 when zero).
	GCFreeBlocksLow int
	// QueueDepth is the closed-loop window: request i may not start
	// before request i-QueueDepth completed (default 32 when zero).
	QueueDepth int
	// Policy is the sanitization strategy; nil means no sanitization.
	Policy ftl.Policy
	// EagerErase forwards to the FTL (ablation).
	EagerErase bool
	// Victim forwards the GC victim policy to the FTL (ablation).
	Victim ftl.VictimPolicy
	// WearAware enables dynamic wear leveling in the FTL.
	WearAware bool
	// NoCopyback forces GC relocations over the channel bus (ablation).
	NoCopyback bool
	// Planes overrides the per-chip plane count (multi-plane command
	// support). Zero keeps Chip.Planes (which defaults to 1). With more
	// than one plane the FTL stripes writes and groups reads across
	// planes, sharing one tPROG/tREAD per group.
	Planes int
	// NoCachePipeline disables the chips' cache-mode pipelining
	// (ablation): the page register is then occupied for the whole
	// cell-activity + bus-transfer span, so transfer of page i no longer
	// overlaps cell work of page i+1 on the same chip. The default
	// (false) models cache-enabled operation and keeps the historical
	// timing bit-for-bit.
	NoCachePipeline bool
	// LockBatch configures wordline-aware pLock batching in the FTL's
	// lock manager (§5 SBPI): pending pLocks on one wordline coalesce
	// into a single tpLock pulse.
	LockBatch ftl.LockBatchConfig
	// ShardChannels enables deferred channel-sharded chip-op execution:
	// chip mutations run on this many parallel FIFO lanes (chips of one
	// channel grouped onto the same lane) while the coordinator keeps
	// computing the timing model, with flush barriers wherever chip
	// state is consumed. Zero keeps the historical fully-serial
	// execution. Sharded runs are bit-identical to serial ones (see
	// shard.go), including with fault injection enabled: fault verdicts
	// are then drawn on the coordinator by a per-chip oracle (oracle.go)
	// that keeps each chip's splitmix64 stream draw-for-draw identical
	// to the serial schedule while feeding the recovery ladder
	// synchronously.
	ShardChannels int
	// Seed drives the chips' RNGs.
	Seed int64
	// Fault configures deterministic fault injection (see internal/fault).
	// The zero value disables it. When enabled with a zero Fault.Seed, the
	// device Seed is used so one knob reproduces the whole run.
	Fault fault.Config
	// Trace receives every simulated operation (NAND commands, bus
	// transfers, host requests, GC passes) plus live gauges. Nil disables
	// tracing; the hot paths then pay a single predictable branch per
	// site. Use a *trace.Recorder to capture and export.
	Trace trace.Collector
}

// DefaultConfig returns the paper's SecureSSD configuration with the
// given policy.
func DefaultConfig(policy ftl.Policy) Config {
	return Config{
		Channels:        2,
		ChipsPerChannel: 4,
		Chip:            nand.DefaultGeometry(),
		Timing:          nand.DefaultTiming(),
		OverProvision:   0.07,
		GCFreeBlocksLow: 3,
		QueueDepth:      32,
		Policy:          policy,
		Seed:            1,
	}
}

func (c *Config) applyDefaults() {
	if c.OverProvision == 0 {
		c.OverProvision = 0.07
	}
	if c.GCFreeBlocksLow == 0 {
		c.GCFreeBlocksLow = 3
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 32
	}
	if c.Timing == (nand.Timing{}) {
		c.Timing = nand.DefaultTiming()
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Fault.Enabled() && c.Fault.Seed == 0 {
		c.Fault.Seed = c.Seed
	}
}

// SSD is the assembled device.
type SSD struct {
	cfg   Config
	chips []*nand.Chip
	ftl   *ftl.FTL
	geo   ftl.Geometry

	chipTL []sim.Timeline // one per chip
	busTL  []sim.Timeline // one per channel

	// Closed-loop completion window.
	window []sim.Micros
	wIdx   int

	makespan  sim.Micros
	requests  uint64
	markSpan  sim.Micros
	markReqs  uint64
	markStats ftl.Stats

	// Read-path fault absorption (see Read): retries issued and reads
	// that stayed uncorrectable after maxReadAttempts.
	readRetries      uint64
	readFailures     uint64
	markReadRetries  uint64
	markReadFailures uint64

	// latencies samples per-request service time (completion − start)
	// within the current measurement window.
	latencies metrics.Sample

	// Tracing. traceOn caches tr.Enabled() so the per-op cost when
	// disabled is one predictable branch.
	tr      trace.Collector
	traceOn bool
	// Per-resource busy/wait snapshots taken at Mark(), so Report can
	// expose windowed utilization without touching whole-run counters.
	markChipBusy []sim.Micros
	markChanBusy []sim.Micros
	markChipWait []sim.Micros

	// Multi-plane command scratch buffers (reused across calls).
	slotScratch []int
	addrScratch []nand.PageAddr

	// shard is non-nil when deferred channel-sharded execution is active
	// (Config.ShardChannels > 0); see shard.go.
	shard *shardExec
	// oracle is non-nil in sharded fault mode (ShardChannels > 0 and
	// Fault enabled): the coordinator-side injector streams and their
	// draw-gating mirror of chip state; see oracle.go.
	oracle *faultOracle
	// cut is the device-wide power-loss schedule shared by every chip
	// (see ArmPowerCut); dead marks the device unusable after a cut
	// until Remount rebuilds the FTL from media.
	cut  *fault.CutState
	dead bool
	// errsScratch is the all-nil per-page error vector ProgramGroup
	// returns in sharded mode (chip errors are impossible there).
	errsScratch []error
}

// New builds the device.
func New(cfg Config) (*SSD, error) {
	cfg.applyDefaults()
	if cfg.Channels <= 0 || cfg.ChipsPerChannel <= 0 {
		return nil, fmt.Errorf("ssd: need at least one channel and chip, got %d×%d",
			cfg.Channels, cfg.ChipsPerChannel)
	}
	if cfg.Policy == nil {
		return nil, fmt.Errorf("ssd: a sanitization policy is required (use sanitize.Baseline() for none)")
	}
	if cfg.Planes > 0 {
		cfg.Chip.Planes = cfg.Planes
	}
	nChips := cfg.Channels * cfg.ChipsPerChannel
	s := &SSD{
		cfg:          cfg,
		chips:        make([]*nand.Chip, nChips),
		chipTL:       make([]sim.Timeline, nChips),
		busTL:        make([]sim.Timeline, cfg.Channels),
		window:       make([]sim.Micros, cfg.QueueDepth),
		markChipBusy: make([]sim.Micros, nChips),
		markChanBusy: make([]sim.Micros, cfg.Channels),
		markChipWait: make([]sim.Micros, nChips),
		cut:          fault.NewCutState(),
	}
	s.tr = cfg.Trace
	if s.tr == nil {
		s.tr = trace.Nop{}
	}
	s.traceOn = s.tr.Enabled()
	for i := range s.chips {
		opts := []nand.Option{nand.WithSeed(cfg.Seed + int64(i)), nand.WithTiming(cfg.Timing),
			nand.WithPowerCut(s.cut)}
		if cfg.Fault.Enabled() && cfg.ShardChannels <= 0 {
			// One injector per chip, stream-indexed: chip operations are
			// serialized per chip, so each stream's draw order — and with
			// it the whole fault schedule — is a pure function of the
			// seed and the workload. In sharded mode the same streams
			// live on the coordinator's fault oracle instead (the chips
			// run draw-free and replay pre-decided verdicts).
			opts = append(opts, nand.WithFaults(fault.New(cfg.Fault, uint64(i))))
		}
		chip, err := nand.New(cfg.Chip, opts...)
		if err != nil {
			return nil, err
		}
		s.chips[i] = chip
	}
	s.geo = ftl.Geometry{
		Chips:         nChips,
		BlocksPerChip: cfg.Chip.Blocks,
		PagesPerBlock: cfg.Chip.PagesPerBlock(),
		PagesPerWL:    cfg.Chip.PagesPerWL(),
		PageBytes:     cfg.Chip.PageBytes,
		Planes:        cfg.Chip.PlaneCount(),
	}
	f, err := ftl.New(s.ftlConfig(), s, cfg.Policy)
	if err != nil {
		return nil, err
	}
	s.ftl = f
	if cfg.ShardChannels > 0 {
		s.shard = newShardExec(s, cfg.ShardChannels)
		s.errsScratch = make([]error, s.geo.Planes)
		if cfg.Fault.Enabled() {
			s.oracle = newFaultOracle(cfg, s.geo)
		}
	}
	return s, nil
}

// ftlConfig assembles the translation-layer configuration; New and
// Remount must build from the identical parameters or the remounted
// device would export a different logical capacity.
func (s *SSD) ftlConfig() ftl.Config {
	return ftl.Config{
		Geometry:        s.geo,
		LogicalPages:    int(float64(s.geo.TotalPages()) * (1 - s.cfg.OverProvision)),
		GCFreeBlocksLow: s.cfg.GCFreeBlocksLow,
		EagerErase:      s.cfg.EagerErase,
		Victim:          s.cfg.Victim,
		WearAware:       s.cfg.WearAware,
		NoCopyback:      s.cfg.NoCopyback,
		LockBatch:       s.cfg.LockBatch,
		Timing:          ftl.LockTiming{PLock: s.cfg.Timing.PLock, BLock: s.cfg.Timing.BLock},
		Tracer:          s.tr,
	}
}

// FTL exposes the underlying translation layer (stats, mappings).
func (s *SSD) FTL() *ftl.FTL { return s.ftl }

// Chips exposes the raw chips — the attacker's entry point in the threat
// model, and the verification hook for tests. In sharded mode it drains
// the deferred-op lanes first, so callers always observe settled state.
func (s *SSD) Chips() []*nand.Chip {
	s.Drain()
	return s.chips
}

// Geometry returns the device-global geometry.
func (s *SSD) Geometry() ftl.Geometry { return s.geo }

// LogicalPages returns the exported capacity in pages.
func (s *SSD) LogicalPages() int { return s.ftl.LogicalPages() }

// channelOf maps a chip to its channel (chips are channel-major).
func (s *SSD) channelOf(chip int) int { return chip / s.cfg.ChipsPerChannel }

// addr converts a device PPA to chip coordinates.
func (s *SSD) addr(p ftl.PPA) (int, nand.PageAddr) {
	chip := s.geo.ChipOf(p)
	return chip, nand.PageAddr{
		Block: s.geo.BlockInChip(s.geo.BlockOf(p)),
		Page:  s.geo.PageInBlock(p),
	}
}

// --- ftl.Target implementation ------------------------------------------

// emitChip records a chip-resident operation's Timeline interval.
func (s *SSD) emitChip(class trace.OpClass, chip int, p ftl.PPA, queued, start, end sim.Micros) {
	s.tr.Op(trace.Event{
		Class: class, Start: start, End: end, Queued: queued,
		Chip: chip, Channel: s.channelOf(chip),
		Block: s.geo.BlockOf(p), Page: s.geo.PageInBlock(p), LPA: -1,
	})
}

// maxReadAttempts bounds the read-retry loop: the initial read plus up to
// two retries. Real controllers re-read with shifted reference voltages;
// here each retry redraws the injected error count, so a marginal page
// usually recovers within the budget.
const maxReadAttempts = 3

// Read implements ftl.Target: tREAD on the chip, then the page transfer
// on the channel bus. An uncorrectable read (injected bit errors beyond
// the ECC limit) is retried on the chip up to maxReadAttempts; each retry
// occupies the chip for another tREAD and is traced as OpReadRetry. After
// exhaustion the corrupted payload is returned as-is — never nil, so a GC
// relocation moves (damaged) data rather than silently dropping the page.
func (s *SSD) Read(p ftl.PPA, dep sim.Micros) ([]byte, sim.Micros) {
	chip, a := s.addr(p)
	if s.shard != nil {
		// The caller consumes the payload (GC relocation): the chip's
		// deferred ops must land before we read it synchronously.
		s.shard.flushChip(chip)
	}
	res, err := s.chipRead(chip, a, dep)
	cellStart, cellDone := s.chipTL[chip].Reserve(dep, s.cfg.Timing.Read)
	if s.traceOn {
		s.emitChip(trace.OpRead, chip, p, dep, cellStart, cellDone)
	}
	for attempt := 1; err != nil && errors.Is(err, nand.ErrUncorrectable) &&
		attempt < maxReadAttempts; attempt++ {
		s.readRetries++
		res, err = s.chipRead(chip, a, cellDone)
		retryStart, retryDone := s.chipTL[chip].Reserve(cellDone, s.cfg.Timing.Read)
		if s.traceOn {
			s.emitChip(trace.OpReadRetry, chip, p, cellDone, retryStart, retryDone)
		}
		cellDone = retryDone
	}
	var data []byte
	if err == nil {
		data = res.Data
	} else if errors.Is(err, nand.ErrUncorrectable) {
		s.readFailures++
		data = res.Data
	}
	busStart, busDone := s.busTL[s.channelOf(chip)].Reserve(cellDone, s.cfg.Timing.Xfer)
	if s.cfg.NoCachePipeline {
		// Without cache-mode the page register stays occupied until the
		// transfer drains it: hold the chip through the bus interval so
		// the next command cannot overlap it.
		s.chipTL[chip].Reserve(cellDone, busDone-cellDone)
	}
	if s.traceOn {
		s.emitChip(trace.OpXfer, chip, p, cellDone, busStart, busDone)
	}
	//secvet:allow aliasing -- Target.Read contract: the FTL consumes the page before the next op on this chip (Program copies); a copy here would undo the zero-alloc hot path
	return data, busDone
}

// chipRead is a synchronous chip read with the sharded fault oracle's
// transfer-error overlay: the chip runs draw-free in sharded fault mode,
// so the oracle draws the serial read-error schedule against the actual
// payload bytes. In serial mode (oracle nil) the chip draws internally
// and the overlay is a no-op.
func (s *SSD) chipRead(chip int, a nand.PageAddr, now sim.Micros) (nand.ReadResult, error) {
	res, err := s.chips[chip].Read(a, now)
	if s.oracle != nil && err == nil {
		err = s.oracle.readPayload(chip, a, res.Data)
	}
	return res, err
}

// Program implements ftl.Target: page transfer on the bus, then tPROG on
// the chip. An injected program failure still burned the bus and the full
// tPROG (the chip reported status FAIL only at the end), so the timeline
// reservation and trace events are identical to a success.
func (s *SSD) Program(p ftl.PPA, data []byte, dep sim.Micros) (sim.Micros, error) {
	chip, a := s.addr(p)
	var err error
	if s.shard != nil {
		// The caller may reuse data's backing array after we return, so
		// the deferred record carries a pooled copy (nil stays nil — the
		// workload runs are timing-only).
		var copied []byte
		if data != nil {
			copied = append(s.shard.bufs.Get(), data...)
		}
		if s.oracle != nil {
			// Verdict drawn at the post site; a failure corrupts the
			// pooled copy's tail before it ships, so the chip stores the
			// exact bytes the serial corrupt-after-store would leave.
			err = s.oracle.program(chip, a, copied)
		}
		s.shard.post(chip, sim.Record{
			Kind: opProgram, Block: int32(a.Block), Page: int32(a.Page),
			Aux: int64(dep), Data: copied,
		})
	} else {
		_, err = s.chips[chip].Program(a, data, dep)
		if err != nil && !errors.Is(err, nand.ErrProgramFailed) {
			panic(fmt.Sprintf("ssd: FTL violated flash discipline at %v: %v", a, err))
		}
	}
	busStart, busDone := s.busTL[s.channelOf(chip)].Reserve(dep, s.cfg.Timing.Xfer)
	var progStart, done sim.Micros
	if s.cfg.NoCachePipeline {
		// The page register is busy from the moment the transfer starts
		// until the cells finish programming: one contiguous chip span.
		progStart, done = s.chipTL[chip].Reserve(busStart, (busDone-busStart)+s.cfg.Timing.Prog)
	} else {
		progStart, done = s.chipTL[chip].Reserve(busDone, s.cfg.Timing.Prog)
	}
	if s.traceOn {
		s.emitChip(trace.OpXfer, chip, p, dep, busStart, busDone)
		s.emitChip(trace.OpProgram, chip, p, busDone, progStart, done)
	}
	return done, err
}

// Copyback implements ftl.Target: an internal data move — tREAD then
// tPROG on the chip, no channel-bus occupancy.
func (s *SSD) Copyback(src, dst ftl.PPA, dep sim.Micros) (sim.Micros, error) {
	chipS, aSrc := s.addr(src)
	chipD, aDst := s.addr(dst)
	if chipS != chipD {
		panic("ssd: copyback across chips")
	}
	var err error
	if s.shard != nil {
		if s.oracle != nil && s.oracle.copyback(chipS, aSrc, aDst) {
			// Rare failed-copyback path: run the move synchronously so
			// the corruption draws land right after the verdict draw, in
			// the serial stream order, against the stored bytes.
			s.shard.flushChip(chipS)
			if _, cbErr := s.chips[chipS].Copyback(aSrc, aDst, dep); cbErr != nil {
				panic(fmt.Sprintf("ssd: copyback failed: %v", cbErr))
			}
			if cErr := s.chips[chipS].CorruptStoredTail(aDst, s.oracle.inj[chipS]); cErr != nil {
				panic(fmt.Sprintf("ssd: copyback corrupt failed: %v", cErr))
			}
			err = nand.ErrProgramFailed
		} else {
			s.shard.post(chipS, sim.Record{
				Kind: opCopyback, Block: int32(aSrc.Block), Page: int32(aSrc.Page),
				Block2: int32(aDst.Block), Page2: int32(aDst.Page), Aux: int64(dep),
			})
		}
	} else {
		_, err = s.chips[chipS].Copyback(aSrc, aDst, dep)
		if err != nil && !errors.Is(err, nand.ErrProgramFailed) {
			panic(fmt.Sprintf("ssd: copyback failed: %v", err))
		}
	}
	readStart, readDone := s.chipTL[chipS].Reserve(dep, s.cfg.Timing.Read)
	_, done := s.chipTL[chipS].Reserve(readDone, s.cfg.Timing.Prog)
	if s.traceOn {
		// One span covering the back-to-back read+program reservation;
		// the destination page names the event.
		s.emitChip(trace.OpCopyback, chipS, dst, dep, readStart, done)
	}
	return done, err
}

// Erase implements ftl.Target.
func (s *SSD) Erase(block int, dep sim.Micros) (sim.Micros, error) {
	chip := s.geo.ChipOfBlock(block)
	var err error
	if s.shard != nil {
		var fail int32
		if s.oracle != nil && s.oracle.erase(chip, s.geo.BlockInChip(block)) {
			fail = 1
			err = nand.ErrEraseFailed
		}
		s.shard.post(chip, sim.Record{Kind: opErase, Block: int32(s.geo.BlockInChip(block)), Page2: fail, Aux: int64(dep)})
	} else {
		_, err = s.chips[chip].Erase(s.geo.BlockInChip(block), dep)
		if err != nil && !errors.Is(err, nand.ErrEraseFailed) {
			panic(fmt.Sprintf("ssd: erase failed: %v", err))
		}
	}
	start, done := s.chipTL[chip].Reserve(dep, s.cfg.Timing.Erase)
	if s.traceOn {
		s.tr.Op(trace.Event{
			Class: trace.OpErase, Start: start, End: done, Queued: dep,
			Chip: chip, Channel: s.channelOf(chip), Block: block, Page: -1, LPA: -1,
		})
	}
	return done, err
}

// PLock implements ftl.Target.
func (s *SSD) PLock(p ftl.PPA, dep sim.Micros) (sim.Micros, error) {
	chip, a := s.addr(p)
	var err error
	if s.shard != nil {
		var fail int32
		if s.oracle != nil && s.oracle.plock(chip, a) {
			fail = 1
			err = nand.ErrPLockFailed
		}
		s.shard.post(chip, sim.Record{Kind: opPLock, Block: int32(a.Block), Page: int32(a.Page), Page2: fail, Aux: int64(dep)})
	} else {
		_, err = s.chips[chip].PLock(a, dep)
		if err != nil && !errors.Is(err, nand.ErrPLockFailed) {
			panic(fmt.Sprintf("ssd: pLock failed: %v", err))
		}
	}
	start, done := s.chipTL[chip].Reserve(dep, s.cfg.Timing.PLock)
	if s.traceOn {
		s.emitChip(trace.OpPLock, chip, p, dep, start, done)
	}
	return done, err
}

// BLock implements ftl.Target.
func (s *SSD) BLock(block int, dep sim.Micros) (sim.Micros, error) {
	chip := s.geo.ChipOfBlock(block)
	var err error
	if s.shard != nil {
		var fail int32
		if s.oracle != nil && s.oracle.block(chip, s.geo.BlockInChip(block)) {
			fail = 1
			err = nand.ErrBLockFailed
		}
		s.shard.post(chip, sim.Record{Kind: opBLock, Block: int32(s.geo.BlockInChip(block)), Page2: fail, Aux: int64(dep)})
	} else {
		_, err = s.chips[chip].BLock(s.geo.BlockInChip(block), dep)
		if err != nil && !errors.Is(err, nand.ErrBLockFailed) {
			panic(fmt.Sprintf("ssd: bLock failed: %v", err))
		}
	}
	start, done := s.chipTL[chip].Reserve(dep, s.cfg.Timing.BLock)
	if s.traceOn {
		s.tr.Op(trace.Event{
			Class: trace.OpBLock, Start: start, End: done, Queued: dep,
			Chip: chip, Channel: s.channelOf(chip), Block: block, Page: -1, LPA: -1,
		})
	}
	return done, err
}

// Scrub implements ftl.Target.
func (s *SSD) Scrub(p ftl.PPA, dep sim.Micros) sim.Micros {
	chip, a := s.addr(p)
	if s.shard != nil {
		s.shard.post(chip, sim.Record{Kind: opScrub, Block: int32(a.Block), Page: int32(a.Page), Aux: int64(dep)})
	} else if _, err := s.chips[chip].Scrub(a, dep); err != nil {
		panic(fmt.Sprintf("ssd: scrub failed: %v", err))
	}
	start, done := s.chipTL[chip].Reserve(dep, s.cfg.Timing.Scrub)
	if s.traceOn {
		s.emitChip(trace.OpScrub, chip, p, dep, start, done)
	}
	return done
}

// --- ftl.BatchTarget implementation --------------------------------------

// PLockWL implements ftl.BatchTarget: one batched SBPI pulse programs the
// pAP flags of every given page of the wordline in a single tpLock of
// chip occupancy (§5).
func (s *SSD) PLockWL(block, wl int, pages []ftl.PPA, dep sim.Micros) (sim.Micros, error) {
	chip := s.geo.ChipOfBlock(block)
	var err error
	if s.shard != nil {
		vec := s.shard.slots.Get()
		for _, p := range pages {
			vec = append(vec, int32(s.geo.PageInBlock(p)%s.geo.PagesPerWL))
		}
		var fail int32
		if s.oracle != nil && s.oracle.plockWL(chip, s.geo.BlockInChip(block), wl, vec, s.geo.PagesPerWL) {
			fail = 1
			err = nand.ErrPLockFailed
		}
		s.shard.post(chip, sim.Record{
			Kind: opPLockWL, Block: int32(s.geo.BlockInChip(block)), Page: int32(wl),
			Page2: fail, Aux: int64(dep), Slots: vec,
		})
	} else {
		slots := s.slotScratch[:0]
		for _, p := range pages {
			slots = append(slots, s.geo.PageInBlock(p)%s.geo.PagesPerWL)
		}
		s.slotScratch = slots
		_, err = s.chips[chip].PLockWL(s.geo.BlockInChip(block), wl, slots, dep)
		if err != nil && !errors.Is(err, nand.ErrPLockFailed) {
			panic(fmt.Sprintf("ssd: batched pLock failed: %v", err))
		}
	}
	start, done := s.chipTL[chip].Reserve(dep, s.cfg.Timing.PLock)
	if s.traceOn {
		s.tr.Op(trace.Event{
			Class: trace.OpPLockBatch, Start: start, End: done, Queued: dep,
			Chip: chip, Channel: s.channelOf(chip), Block: block,
			Page: wl * s.geo.PagesPerWL, LPA: -1, Pages: len(pages),
		})
	}
	return done, err
}

// ProgramGroup implements ftl.BatchTarget: a multi-plane program. The
// per-page transfers serialize on the channel bus, then a single shared
// tPROG covers every plane's cell activity.
func (s *SSD) ProgramGroup(pages []ftl.PPA, datas [][]byte, dep sim.Micros) (sim.Micros, []error) {
	chip := s.geo.ChipOf(pages[0])
	var errs []error
	deferred := s.shard != nil
	if deferred {
		// Deferred multi-plane programs carry packed addresses only; a
		// stripe with real payloads (rare outside timing-only runs) falls
		// back to synchronous execution behind a lane flush.
		for _, d := range datas {
			if d != nil {
				deferred = false
				s.shard.flushChip(chip)
				break
			}
		}
	}
	if deferred {
		vec := s.shard.slots.Get()
		addrs := s.addrScratch[:0]
		for _, p := range pages {
			_, a := s.addr(p)
			vec = append(vec, s.shard.pack(a))
			addrs = append(addrs, a)
		}
		s.addrScratch = addrs
		errs = s.errsScratch[:len(pages)]
		for i := range errs {
			errs[i] = nil
		}
		if s.oracle != nil {
			// Per-page verdicts in plane order, exactly ProgramMulti's
			// draw order. The lane replay needs no verdicts: a deferred
			// group carries only nil payloads, and corrupting a
			// zero-length stored page is a no-op.
			s.oracle.programGroup(chip, addrs, errs)
		}
		s.shard.post(chip, sim.Record{Kind: opProgramMulti, Aux: int64(dep), Slots: vec})
	} else {
		addrs := s.addrScratch[:0]
		for _, p := range pages {
			_, a := s.addr(p)
			addrs = append(addrs, a)
		}
		s.addrScratch = addrs
		var fatal error
		_, errs, fatal = s.chips[chip].ProgramMulti(addrs, datas, dep)
		if fatal != nil {
			panic(fmt.Sprintf("ssd: FTL violated multi-plane discipline: %v", fatal))
		}
		for i, err := range errs {
			if err != nil && !errors.Is(err, nand.ErrProgramFailed) {
				panic(fmt.Sprintf("ssd: FTL violated flash discipline at %v: %v", addrs[i], err))
			}
		}
		if s.oracle != nil {
			// Payload fallback behind a lane flush: the chip programmed
			// draw-free, so draw each page's verdict now (and corrupt its
			// stored tail on failure) in the serial per-page order.
			for i, a := range addrs {
				if e := s.oracle.programStored(chip, a, s.chips[chip]); e != nil {
					errs[i] = e
				}
			}
		}
	}
	bus := &s.busTL[s.channelOf(chip)]
	firstBusStart := sim.Micros(-1)
	lastBusEnd := dep
	for _, p := range pages {
		busStart, busDone := bus.Reserve(dep, s.cfg.Timing.Xfer)
		if firstBusStart < 0 {
			firstBusStart = busStart
		}
		lastBusEnd = busDone
		if s.traceOn {
			s.emitChip(trace.OpXfer, chip, p, dep, busStart, busDone)
		}
	}
	var progStart, done sim.Micros
	if s.cfg.NoCachePipeline {
		progStart, done = s.chipTL[chip].Reserve(firstBusStart, (lastBusEnd-firstBusStart)+s.cfg.Timing.Prog)
	} else {
		progStart, done = s.chipTL[chip].Reserve(lastBusEnd, s.cfg.Timing.Prog)
	}
	if s.traceOn {
		s.tr.Op(trace.Event{
			Class: trace.OpProgramMulti, Start: progStart, End: done, Queued: dep,
			Chip: chip, Channel: s.channelOf(chip),
			Block: s.geo.BlockOf(pages[0]), Page: s.geo.PageInBlock(pages[0]),
			LPA: -1, Pages: len(pages),
		})
	}
	return done, errs
}

// ReadGroup implements ftl.BatchTarget: a multi-plane read — one shared
// tREAD, then per-page bus transfers. Uncorrectable pages are retried
// individually (each retry burns a full tREAD, like the single-page
// path). Timing-only: the host read path discards payloads.
func (s *SSD) ReadGroup(pages []ftl.PPA, dep sim.Micros) sim.Micros {
	chip := s.geo.ChipOf(pages[0])
	var errs []error
	var groupAttempts []int
	var groupFailed uint64
	if s.shard != nil {
		vec := s.shard.slots.Get()
		addrs := s.addrScratch[:0]
		for _, p := range pages {
			_, a := s.addr(p)
			vec = append(vec, s.shard.pack(a))
			addrs = append(addrs, a)
		}
		s.addrScratch = addrs
		if s.oracle != nil {
			// The oracle replays the serial draw order (per-page reads,
			// then per-page retry loops); the lane replay learns each
			// page's attempt count from the slot vector's high bits.
			groupAttempts, groupFailed = s.oracle.readGroup(chip, addrs)
			for i, n := range groupAttempts {
				vec[i] |= int32(n-1) << attemptShift
			}
		}
		s.shard.post(chip, sim.Record{Kind: opReadMulti, Aux: int64(dep), Slots: vec})
		// errs stays nil: chip-side read faults are impossible (chips run
		// draw-free in sharded mode), so the serial retry loop below sees
		// no work; the sharded retry loop keys off groupAttempts instead.
	} else {
		addrs := s.addrScratch[:0]
		for _, p := range pages {
			_, a := s.addr(p)
			addrs = append(addrs, a)
		}
		s.addrScratch = addrs
		var fatal error
		_, errs, fatal = s.chips[chip].ReadMulti(addrs, dep)
		if fatal != nil {
			panic(fmt.Sprintf("ssd: FTL violated multi-plane discipline: %v", fatal))
		}
	}
	cellStart, cellDone := s.chipTL[chip].Reserve(dep, s.cfg.Timing.Read)
	if s.traceOn {
		s.tr.Op(trace.Event{
			Class: trace.OpReadMulti, Start: cellStart, End: cellDone, Queued: dep,
			Chip: chip, Channel: s.channelOf(chip),
			Block: s.geo.BlockOf(pages[0]), Page: s.geo.PageInBlock(pages[0]),
			LPA: -1, Pages: len(pages),
		})
	}
	for i, err := range errs {
		for attempt := 1; err != nil && errors.Is(err, nand.ErrUncorrectable) &&
			attempt < maxReadAttempts; attempt++ {
			s.readRetries++
			// errs is only non-nil on the serial path, where addrScratch
			// holds this group's chip addresses.
			_, err = s.chips[chip].Read(s.addrScratch[i], cellDone)
			retryStart, retryDone := s.chipTL[chip].Reserve(cellDone, s.cfg.Timing.Read)
			if s.traceOn {
				s.emitChip(trace.OpReadRetry, chip, pages[i], cellDone, retryStart, retryDone)
			}
			cellDone = retryDone
		}
		if err != nil && errors.Is(err, nand.ErrUncorrectable) {
			s.readFailures++
		}
	}
	for i, n := range groupAttempts {
		// Sharded fault mode: replay the retry timing the oracle decided,
		// page by page in plane order — the serial loop's reservations and
		// trace events, bit for bit.
		for k := 1; k < n; k++ {
			s.readRetries++
			retryStart, retryDone := s.chipTL[chip].Reserve(cellDone, s.cfg.Timing.Read)
			if s.traceOn {
				s.emitChip(trace.OpReadRetry, chip, pages[i], cellDone, retryStart, retryDone)
			}
			cellDone = retryDone
		}
		if groupFailed&(1<<uint(i)) != 0 {
			s.readFailures++
		}
	}
	bus := &s.busTL[s.channelOf(chip)]
	end := cellDone
	for _, p := range pages {
		busStart, busDone := bus.Reserve(cellDone, s.cfg.Timing.Xfer)
		end = busDone
		if s.traceOn {
			s.emitChip(trace.OpXfer, chip, p, cellDone, busStart, busDone)
		}
	}
	if s.cfg.NoCachePipeline {
		s.chipTL[chip].Reserve(cellDone, end-cellDone)
	}
	return end
}

// FlushLocks force-drains the FTL's wordline batching queue. Deferred-
// deadline configurations (LockBatch.Deadline > 0) use it as the
// end-of-run barrier so no queued lock outlives the workload.
func (s *SSD) FlushLocks() { s.ftl.FlushLocks() }

// --- host interface ------------------------------------------------------

// Submit runs one host request through the closed-loop model and returns
// its completion time.
func (s *SSD) Submit(req blockio.Request) (sim.Micros, error) {
	if s.dead {
		return 0, ErrPowerLost
	}
	start := s.window[s.wIdx]
	done, err := s.ftl.Submit(req, start)
	if err != nil {
		return done, err
	}
	s.window[s.wIdx] = done
	s.wIdx = (s.wIdx + 1) % len(s.window)
	if done > s.makespan {
		s.makespan = done
	}
	s.requests++
	s.latencies.Add(float64(done - start))
	if s.traceOn {
		var class trace.OpClass
		switch req.Op {
		case blockio.OpRead:
			class = trace.OpHostRead
		case blockio.OpTrim:
			class = trace.OpHostTrim
		default:
			class = trace.OpHostWrite
		}
		s.tr.Op(trace.Event{
			Class: class, Start: start, End: done, Queued: start,
			Chip: -1, Channel: -1, Block: -1, Page: -1,
			LPA: req.LPA, Pages: int(req.Pages),
		})
	}
	return done, nil
}

// MustSubmit is Submit that panics on error (replayer convenience).
func (s *SSD) MustSubmit(req blockio.Request) sim.Micros {
	done, err := s.Submit(req)
	if err != nil {
		panic(err)
	}
	return done
}

// ReadLogical fetches the current contents of a logical page directly
// from the chips (the host read data path). It returns nil when the page
// is unmapped.
func (s *SSD) ReadLogical(lpa int64) ([]byte, error) {
	p := s.ftl.Lookup(lpa)
	if p == ftl.NoPPA {
		return nil, nil
	}
	s.Drain()
	chip, a := s.addr(p)
	res, err := s.chipRead(chip, a, s.makespan)
	if err != nil {
		return nil, err
	}
	// CloneData: this debug/verification path returns the page to the
	// caller, who may hold it across later ops on the same chip.
	return res.CloneData(), nil
}

// Mark snapshots the measurement window: Report()'s rates cover activity
// after the latest Mark. Use it to exclude prefill from measurements.
func (s *SSD) Mark() {
	s.markSpan = s.makespan
	s.markReqs = s.requests
	s.markStats = s.ftl.Stats()
	s.markReadRetries = s.readRetries
	s.markReadFailures = s.readFailures
	s.latencies = metrics.Sample{}
	for i := range s.chipTL {
		s.markChipBusy[i] = s.chipTL[i].BusyTotal()
		s.markChipWait[i] = s.chipTL[i].WaitTotal()
	}
	for i := range s.busTL {
		s.markChanBusy[i] = s.busTL[i].BusyTotal()
	}
}

// Report summarizes the device activity since the last Mark.
type Report struct {
	Requests   uint64
	Elapsed    sim.Micros
	IOPS       float64
	WAF        float64
	Stats      ftl.Stats // deltas since Mark
	ChipUtil   float64   // mean chip utilization over the window
	ErasesFreq float64   // erases per million host pages written
	// ReadRetries and ReadFailures count read-path fault absorption over
	// the window: re-reads issued for uncorrectable pages, and reads that
	// stayed uncorrectable after the retry budget.
	ReadRetries  uint64
	ReadFailures uint64
	// Request service-time percentiles over the window, in µs.
	LatencyP50, LatencyP99, LatencyMax float64
	// Per-resource busy-time utilization over the measurement window
	// (busy µs since Mark / window µs).
	ChipUtilPer []float64
	ChanUtilPer []float64
	// ChipWaitUs is the queueing delay accumulated on each chip's
	// timeline over the window — the contention signal behind ChipUtil.
	ChipWaitUs []float64
}

// Report computes the measurement window summary.
func (s *SSD) Report() Report {
	cur := s.ftl.Stats()
	d := deltaStats(cur, s.markStats)
	elapsed := s.makespan - s.markSpan
	r := Report{
		Requests:     s.requests - s.markReqs,
		Elapsed:      elapsed,
		Stats:        d,
		ReadRetries:  s.readRetries - s.markReadRetries,
		ReadFailures: s.readFailures - s.markReadFailures,
	}
	if elapsed > 0 {
		r.IOPS = float64(r.Requests) / elapsed.Seconds()
	}
	if d.HostWrittenPages > 0 {
		r.WAF = float64(d.FlashPrograms) / float64(d.HostWrittenPages)
		r.ErasesFreq = float64(d.Erases) / float64(d.HostWrittenPages) * 1e6
	}
	var busy sim.Micros
	for i := range s.chipTL {
		busy += s.chipTL[i].BusyTotal()
	}
	if s.makespan > 0 {
		r.ChipUtil = float64(busy) / float64(int64(s.makespan)*int64(len(s.chipTL)))
	}
	r.ChipUtilPer = make([]float64, len(s.chipTL))
	r.ChipWaitUs = make([]float64, len(s.chipTL))
	r.ChanUtilPer = make([]float64, len(s.busTL))
	for i := range s.chipTL {
		r.ChipWaitUs[i] = float64(s.chipTL[i].WaitTotal() - s.markChipWait[i])
		if elapsed > 0 {
			r.ChipUtilPer[i] = float64(s.chipTL[i].BusyTotal()-s.markChipBusy[i]) / float64(elapsed)
		}
	}
	for i := range s.busTL {
		if elapsed > 0 {
			r.ChanUtilPer[i] = float64(s.busTL[i].BusyTotal()-s.markChanBusy[i]) / float64(elapsed)
		}
	}
	if s.latencies.N() > 0 {
		r.LatencyP50 = s.latencies.Quantile(0.5)
		r.LatencyP99 = s.latencies.Quantile(0.99)
		r.LatencyMax = s.latencies.Max()
	}
	return r
}

func deltaStats(a, b ftl.Stats) ftl.Stats {
	return ftl.Stats{
		HostReadPages:    a.HostReadPages - b.HostReadPages,
		HostWrittenPages: a.HostWrittenPages - b.HostWrittenPages,
		HostTrimmedPages: a.HostTrimmedPages - b.HostTrimmedPages,
		FlashReads:       a.FlashReads - b.FlashReads,
		FlashPrograms:    a.FlashPrograms - b.FlashPrograms,
		Erases:           a.Erases - b.Erases,
		PLocks:           a.PLocks - b.PLocks,
		BLocks:           a.BLocks - b.BLocks,
		Scrubs:           a.Scrubs - b.Scrubs,
		GCRuns:           a.GCRuns - b.GCRuns,
		GCCopies:         a.GCCopies - b.GCCopies,
		Copybacks:        a.Copybacks - b.Copybacks,
		SanitizeCopies:   a.SanitizeCopies - b.SanitizeCopies,
		ProgramFailures:  a.ProgramFailures - b.ProgramFailures,
		ProgramRetries:   a.ProgramRetries - b.ProgramRetries,
		PLockFailures:    a.PLockFailures - b.PLockFailures,
		LockEscalations:  a.LockEscalations - b.LockEscalations,
		BLockFailures:    a.BLockFailures - b.BLockFailures,
		RecoveryErases:   a.RecoveryErases - b.RecoveryErases,
		EraseFailures:    a.EraseFailures - b.EraseFailures,
		RetiredBlocks:    a.RetiredBlocks - b.RetiredBlocks,
		BackstopScrubs:   a.BackstopScrubs - b.BackstopScrubs,

		PLockBatches:       a.PLockBatches - b.PLockBatches,
		PLockBatchedPages:  a.PLockBatchedPages - b.PLockBatchedPages,
		PLockBatchFailures: a.PLockBatchFailures - b.PLockBatchFailures,
		ProgramGroups:      a.ProgramGroups - b.ProgramGroups,
		GroupedPrograms:    a.GroupedPrograms - b.GroupedPrograms,
		ReadGroups:         a.ReadGroups - b.ReadGroups,
		GroupedReads:       a.GroupedReads - b.GroupedReads,
	}
}

// FaultCounts aggregates the per-chip injector counters: what the fault
// layer actually did over the whole run (the campaign artifact and the
// golden determinism tests read this).
func (s *SSD) FaultCounts() fault.Counts {
	s.Drain()
	if s.oracle != nil {
		// Sharded fault mode: the streams live on the coordinator's
		// oracle; the chips are draw-free and count nothing.
		return s.oracle.counts()
	}
	var c fault.Counts
	for _, chip := range s.chips {
		c.Add(chip.FaultCounts())
	}
	return c
}

// Prefill sequentially writes the first fraction of the logical space
// (insecure, so no sanitization cost is incurred for later overwrites of
// the fill pattern is not desired — pass secure=true to prefill with
// secured data as the paper's steady-state runs do).
func (s *SSD) Prefill(fraction float64, secure bool) error {
	if fraction < 0 || fraction > 1 {
		return fmt.Errorf("ssd: prefill fraction %v out of [0,1]", fraction)
	}
	total := int64(float64(s.ftl.LogicalPages()) * fraction)
	const batch = 64
	for lpa := int64(0); lpa < total; lpa += batch {
		n := int32(batch)
		if lpa+int64(n) > total {
			n = int32(total - lpa)
		}
		if _, err := s.Submit(blockio.Request{
			Op: blockio.OpWrite, LPA: lpa, Pages: n, Insecure: !secure,
		}); err != nil {
			return err
		}
	}
	return nil
}

// SanitizeAll purges the whole device: every physical page holding stale
// data is locked (bLock for fully-stale blocks, pLock otherwise),
// regardless of its original security requirement. This is the
// drive-level "purge" operation of the secure-erase standards, built on
// the Evanesco commands instead of a full-device erase — live data is
// untouched and no block is erased.
func (s *SSD) SanitizeAll() error {
	f := s.ftl
	for block := 0; block < s.geo.TotalBlocks(); block++ {
		first := s.geo.FirstPPA(block)
		var stale []ftl.PPA
		for i := 0; i < s.geo.PagesPerBlock; i++ {
			p := first + ftl.PPA(i)
			if f.Status(p) == ftl.PageInvalid {
				stale = append(stale, p)
			}
		}
		if len(stale) == 0 {
			continue
		}
		if f.BlockFullyStale(block) {
			f.IssueBLock(block, stale)
			continue
		}
		for _, p := range stale {
			f.IssuePLock(p)
		}
	}
	return nil
}

// Replay submits every request of a recorded trace in order. Requests
// whose extents exceed this device's logical capacity are clipped; the
// function returns the number of requests actually submitted.
func (s *SSD) Replay(t *blockio.Trace) (int, error) {
	logical := int64(s.ftl.LogicalPages())
	submitted := 0
	for _, req := range t.Requests {
		if req.LPA >= logical {
			continue
		}
		if req.LPA+int64(req.Pages) > logical {
			req.Pages = int32(logical - req.LPA)
		}
		if req.Pages <= 0 {
			continue
		}
		if _, err := s.Submit(req); err != nil {
			return submitted, err
		}
		submitted++
	}
	return submitted, nil
}
