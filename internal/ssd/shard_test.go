package ssd

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/blockio"
	"repro/internal/fault"
	"repro/internal/ftl"
	"repro/internal/sanitize"
)

// shardWorkload drives a deterministic mixed workload (secure and
// insecure writes — some with payloads, reads, trims) through the device
// and returns its end-of-run report. The device is drained and closed.
func shardWorkload(t *testing.T, cfg Config) (Report, *SSD) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Prefill(0.6, true); err != nil {
		t.Fatal(err)
	}
	s.Mark()
	rng := rand.New(rand.NewSource(99))
	logical := int64(s.LogicalPages())
	payload := make([]byte, 2*cfg.Chip.PageBytes)
	rng.Read(payload)
	for i := 0; i < 1500; i++ {
		lpa := rng.Int63n(logical - 4)
		switch rng.Intn(10) {
		case 0, 1, 2:
			s.MustSubmit(blockio.Request{Op: blockio.OpRead, LPA: lpa, Pages: int32(1 + rng.Intn(4))})
		case 3:
			s.MustSubmit(blockio.Request{Op: blockio.OpTrim, LPA: lpa, Pages: int32(1 + rng.Intn(4))})
		case 4:
			// Payload-carrying secure write: exercises the pooled-copy
			// deferred program path.
			s.MustSubmit(blockio.Request{Op: blockio.OpWrite, LPA: lpa, Pages: 2, Data: payload, FileID: 5})
		case 5:
			s.MustSubmit(blockio.Request{Op: blockio.OpWrite, LPA: lpa, Pages: int32(1 + rng.Intn(4)), Insecure: true})
		default:
			s.MustSubmit(blockio.Request{Op: blockio.OpWrite, LPA: lpa, Pages: int32(1 + rng.Intn(4)), FileID: 7})
		}
	}
	s.FlushLocks()
	rep := s.Report()
	return rep, s
}

// chipFingerprint captures everything an attacker or verifier can see of
// the settled chip state.
// (Flash op counts are asserted via ftl.Stats, which settle at workload
// end; the fingerprint sticks to state that later observation reads
// don't perturb.)
type chipFingerprint struct {
	Dumps     [][][]byte
	BlockLock []bool
	WritePtr  []int
	PECycles  []int
}

func fingerprint(t *testing.T, s *SSD) []chipFingerprint {
	t.Helper()
	chips := s.Chips() // drains
	geo := s.Geometry()
	out := make([]chipFingerprint, len(chips))
	now := s.Report().Elapsed
	for ci, c := range chips {
		var fp chipFingerprint
		for b := 0; b < geo.BlocksPerChip; b++ {
			locked, err := c.IsBlockLocked(b, now)
			if err != nil {
				t.Fatal(err)
			}
			fp.BlockLock = append(fp.BlockLock, locked)
			fp.WritePtr = append(fp.WritePtr, c.WritePointer(b))
			fp.PECycles = append(fp.PECycles, c.PECycles(b))
			fp.Dumps = append(fp.Dumps, c.ForensicDump(b, now))
		}
		out[ci] = fp
	}
	return out
}

// TestShardedBitIdentical is the device-level golden gate: a serial run
// and sharded runs (1 lane and one lane per channel) must agree on the
// report, the FTL counters, every logical page's contents, and the full
// forensic chip state.
func TestShardedBitIdentical(t *testing.T) {
	configs := map[string]func() Config{
		"base": func() Config { return smallConfig(sanitize.SecSSD()) },
		"batched-multiplane": func() Config {
			cfg := smallConfig(sanitize.SecSSD())
			cfg.Planes = 2
			cfg.LockBatch = ftl.LockBatchConfig{Enabled: true, Deadline: 2000, Threshold: 48}
			return cfg
		},
	}
	for name, mk := range configs {
		t.Run(name, func(t *testing.T) {
			serialRep, serial := shardWorkload(t, mk())
			serialStats := serial.FTL().Stats()
			serialFP := fingerprint(t, serial)

			for _, lanes := range []int{1, 2} {
				cfg := mk()
				cfg.ShardChannels = lanes
				rep, dev := shardWorkload(t, cfg)
				if !dev.Sharded() {
					t.Fatalf("lanes=%d: sharded mode not active", lanes)
				}
				if !reflect.DeepEqual(serialRep, rep) {
					t.Fatalf("lanes=%d: reports diverge:\nserial: %+v\nshard:  %+v", lanes, serialRep, rep)
				}
				if stats := dev.FTL().Stats(); !reflect.DeepEqual(serialStats, stats) {
					t.Fatalf("lanes=%d: FTL stats diverge:\nserial: %+v\nshard:  %+v", lanes, serialStats, stats)
				}
				// Logical contents agree page by page.
				for lpa := int64(0); lpa < int64(serial.LogicalPages()); lpa += 37 {
					a, err := serial.ReadLogical(lpa)
					if err != nil {
						t.Fatal(err)
					}
					b, err := dev.ReadLogical(lpa)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(a, b) {
						t.Fatalf("lanes=%d: logical page %d differs", lanes, lpa)
					}
				}
				if fp := fingerprint(t, dev); !reflect.DeepEqual(serialFP, fp) {
					t.Fatalf("lanes=%d: forensic chip state diverges from serial", lanes)
				}
				dev.Close()
			}
		})
	}
}

// faultyConfig is the shared fault configuration of the sharded fault
// goldens: every verdict kind fires often enough to exercise the whole
// recovery ladder, and the read BER sits near the ECC limit so the
// retry loop and uncorrectable accounting both trigger.
func faultyConfig() Config {
	cfg := smallConfig(sanitize.SecSSD())
	cfg.Fault = fault.Config{
		ProgramFail: 0.006, EraseFail: 0.003,
		PLockFail: 0.03, BLockFail: 0.03,
		ReadBER:    fault.DefaultECC().LimitRBER() * 0.9,
		WearWeight: 3, WearExponent: 2,
		Seed: 11,
	}
	return cfg
}

// TestShardedFaultBitIdentical is the fault-mode golden gate: with
// injection enabled, sharded runs draw their verdicts from the
// coordinator's oracle and must still match serial bit for bit — the
// report (including read retries/failures), every FTL recovery counter,
// the fault census, logical contents and the forensic chip state.
func TestShardedFaultBitIdentical(t *testing.T) {
	configs := map[string]func() Config{
		"base": faultyConfig,
		"batched-multiplane": func() Config {
			cfg := faultyConfig()
			cfg.Planes = 2
			cfg.LockBatch = ftl.LockBatchConfig{Enabled: true, Deadline: 2000, Threshold: 48}
			return cfg
		},
	}
	for name, mk := range configs {
		t.Run(name, func(t *testing.T) {
			serialRep, serial := shardWorkload(t, mk())
			serialStats := serial.FTL().Stats()
			serialFaults := serial.FaultCounts()
			if serialFaults.OpFails() == 0 {
				t.Fatal("fault config injected no operation failures; golden exercises nothing")
			}
			serialFP := fingerprint(t, serial)

			for _, lanes := range []int{1, 2, 8} {
				cfg := mk()
				cfg.ShardChannels = lanes
				rep, dev := shardWorkload(t, cfg)
				if !dev.Sharded() {
					t.Fatalf("lanes=%d: sharded mode not active", lanes)
				}
				if !reflect.DeepEqual(serialRep, rep) {
					t.Fatalf("lanes=%d: reports diverge:\nserial: %+v\nshard:  %+v", lanes, serialRep, rep)
				}
				if stats := dev.FTL().Stats(); !reflect.DeepEqual(serialStats, stats) {
					t.Fatalf("lanes=%d: FTL stats diverge:\nserial: %+v\nshard:  %+v", lanes, serialStats, stats)
				}
				if counts := dev.FaultCounts(); counts != serialFaults {
					t.Fatalf("lanes=%d: fault censuses diverge:\nserial: %+v\nshard:  %+v", lanes, serialFaults, counts)
				}
				// Logical contents agree page by page. Reads draw from the
				// fault stream in both modes, so errors must agree too.
				for lpa := int64(0); lpa < int64(serial.LogicalPages()); lpa += 37 {
					a, errA := serial.ReadLogical(lpa)
					b, errB := dev.ReadLogical(lpa)
					if (errA == nil) != (errB == nil) {
						t.Fatalf("lanes=%d: logical page %d errors diverge: serial %v, shard %v", lanes, lpa, errA, errB)
					}
					if !reflect.DeepEqual(a, b) {
						t.Fatalf("lanes=%d: logical page %d differs", lanes, lpa)
					}
				}
				if fp := fingerprint(t, dev); !reflect.DeepEqual(serialFP, fp) {
					t.Fatalf("lanes=%d: forensic chip state diverges from serial", lanes)
				}
				dev.Close()
			}
		})
	}
}

// TestShardedFaultRemount drives a faulty sharded workload, remounts the
// healthy device (the boot-time media scan plus ftl.Restore), and checks
// the device still matches a serial run that did the same — the oracle's
// mirror must survive the FTL being rebuilt from media.
func TestShardedFaultRemount(t *testing.T) {
	run := func(lanes int) (Report, *SSD) {
		cfg := faultyConfig()
		cfg.ShardChannels = lanes
		_, s := shardWorkload(t, cfg)
		if err := s.Remount(0); err != nil {
			t.Fatal(err)
		}
		// Post-remount traffic exercises the rebuilt FTL and, in sharded
		// mode, the re-anchored oracle mirror.
		rng := rand.New(rand.NewSource(5))
		logical := int64(s.LogicalPages())
		for i := 0; i < 200; i++ {
			lpa := rng.Int63n(logical - 4)
			if i%3 == 0 {
				s.MustSubmit(blockio.Request{Op: blockio.OpRead, LPA: lpa, Pages: 2})
			} else {
				s.MustSubmit(blockio.Request{Op: blockio.OpWrite, LPA: lpa, Pages: 2, FileID: 3})
			}
		}
		s.FlushLocks()
		return s.Report(), s
	}
	serialRep, serial := run(0)
	serialStats := serial.FTL().Stats()
	serialFaults := serial.FaultCounts()
	serialFP := fingerprint(t, serial)

	rep, dev := run(2)
	if !reflect.DeepEqual(serialRep, rep) {
		t.Fatalf("post-remount reports diverge:\nserial: %+v\nshard:  %+v", serialRep, rep)
	}
	if stats := dev.FTL().Stats(); !reflect.DeepEqual(serialStats, stats) {
		t.Fatalf("post-remount FTL stats diverge:\nserial: %+v\nshard:  %+v", serialStats, stats)
	}
	if counts := dev.FaultCounts(); counts != serialFaults {
		t.Fatalf("post-remount fault censuses diverge:\nserial: %+v\nshard:  %+v", serialFaults, counts)
	}
	if fp := fingerprint(t, dev); !reflect.DeepEqual(serialFP, fp) {
		t.Fatal("post-remount forensic chip state diverges from serial")
	}
	dev.Close()
}

// TestShardedCloseIsIdempotent ensures Close/Drain degrade to no-ops on
// serial devices and after the first Close.
func TestShardedCloseIsIdempotent(t *testing.T) {
	serial := newSSD(t, sanitize.SecSSD())
	serial.Drain()
	serial.Close()

	cfg := smallConfig(sanitize.SecSSD())
	cfg.ShardChannels = 8 // more lanes than chips: clamped
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.MustSubmit(blockio.Request{Op: blockio.OpWrite, LPA: 0, Pages: 4})
	s.Drain()
	s.Close()
	s.Close()
	if s.Sharded() {
		t.Fatal("still sharded after Close")
	}
}
