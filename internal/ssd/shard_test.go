package ssd

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/blockio"
	"repro/internal/ftl"
	"repro/internal/sanitize"
)

// shardWorkload drives a deterministic mixed workload (secure and
// insecure writes — some with payloads, reads, trims) through the device
// and returns its end-of-run report. The device is drained and closed.
func shardWorkload(t *testing.T, cfg Config) (Report, *SSD) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Prefill(0.6, true); err != nil {
		t.Fatal(err)
	}
	s.Mark()
	rng := rand.New(rand.NewSource(99))
	logical := int64(s.LogicalPages())
	payload := make([]byte, 2*cfg.Chip.PageBytes)
	rng.Read(payload)
	for i := 0; i < 1500; i++ {
		lpa := rng.Int63n(logical - 4)
		switch rng.Intn(10) {
		case 0, 1, 2:
			s.MustSubmit(blockio.Request{Op: blockio.OpRead, LPA: lpa, Pages: int32(1 + rng.Intn(4))})
		case 3:
			s.MustSubmit(blockio.Request{Op: blockio.OpTrim, LPA: lpa, Pages: int32(1 + rng.Intn(4))})
		case 4:
			// Payload-carrying secure write: exercises the pooled-copy
			// deferred program path.
			s.MustSubmit(blockio.Request{Op: blockio.OpWrite, LPA: lpa, Pages: 2, Data: payload, FileID: 5})
		case 5:
			s.MustSubmit(blockio.Request{Op: blockio.OpWrite, LPA: lpa, Pages: int32(1 + rng.Intn(4)), Insecure: true})
		default:
			s.MustSubmit(blockio.Request{Op: blockio.OpWrite, LPA: lpa, Pages: int32(1 + rng.Intn(4)), FileID: 7})
		}
	}
	s.FlushLocks()
	rep := s.Report()
	return rep, s
}

// chipFingerprint captures everything an attacker or verifier can see of
// the settled chip state.
// (Flash op counts are asserted via ftl.Stats, which settle at workload
// end; the fingerprint sticks to state that later observation reads
// don't perturb.)
type chipFingerprint struct {
	Dumps     [][][]byte
	BlockLock []bool
	WritePtr  []int
	PECycles  []int
}

func fingerprint(t *testing.T, s *SSD) []chipFingerprint {
	t.Helper()
	chips := s.Chips() // drains
	geo := s.Geometry()
	out := make([]chipFingerprint, len(chips))
	now := s.Report().Elapsed
	for ci, c := range chips {
		var fp chipFingerprint
		for b := 0; b < geo.BlocksPerChip; b++ {
			locked, err := c.IsBlockLocked(b, now)
			if err != nil {
				t.Fatal(err)
			}
			fp.BlockLock = append(fp.BlockLock, locked)
			fp.WritePtr = append(fp.WritePtr, c.WritePointer(b))
			fp.PECycles = append(fp.PECycles, c.PECycles(b))
			fp.Dumps = append(fp.Dumps, c.ForensicDump(b, now))
		}
		out[ci] = fp
	}
	return out
}

// TestShardedBitIdentical is the device-level golden gate: a serial run
// and sharded runs (1 lane and one lane per channel) must agree on the
// report, the FTL counters, every logical page's contents, and the full
// forensic chip state.
func TestShardedBitIdentical(t *testing.T) {
	configs := map[string]func() Config{
		"base": func() Config { return smallConfig(sanitize.SecSSD()) },
		"batched-multiplane": func() Config {
			cfg := smallConfig(sanitize.SecSSD())
			cfg.Planes = 2
			cfg.LockBatch = ftl.LockBatchConfig{Enabled: true, Deadline: 2000, Threshold: 48}
			return cfg
		},
	}
	for name, mk := range configs {
		t.Run(name, func(t *testing.T) {
			serialRep, serial := shardWorkload(t, mk())
			serialStats := serial.FTL().Stats()
			serialFP := fingerprint(t, serial)

			for _, lanes := range []int{1, 2} {
				cfg := mk()
				cfg.ShardChannels = lanes
				rep, dev := shardWorkload(t, cfg)
				if !dev.Sharded() {
					t.Fatalf("lanes=%d: sharded mode not active", lanes)
				}
				if !reflect.DeepEqual(serialRep, rep) {
					t.Fatalf("lanes=%d: reports diverge:\nserial: %+v\nshard:  %+v", lanes, serialRep, rep)
				}
				if stats := dev.FTL().Stats(); !reflect.DeepEqual(serialStats, stats) {
					t.Fatalf("lanes=%d: FTL stats diverge:\nserial: %+v\nshard:  %+v", lanes, serialStats, stats)
				}
				// Logical contents agree page by page.
				for lpa := int64(0); lpa < int64(serial.LogicalPages()); lpa += 37 {
					a, err := serial.ReadLogical(lpa)
					if err != nil {
						t.Fatal(err)
					}
					b, err := dev.ReadLogical(lpa)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(a, b) {
						t.Fatalf("lanes=%d: logical page %d differs", lanes, lpa)
					}
				}
				if fp := fingerprint(t, dev); !reflect.DeepEqual(serialFP, fp) {
					t.Fatalf("lanes=%d: forensic chip state diverges from serial", lanes)
				}
				dev.Close()
			}
		})
	}
}

// TestShardedRejectsFaultInjection: deferral cannot honor the recovery
// ladder's synchronous error feedback, so the combination is refused.
func TestShardedRejectsFaultInjection(t *testing.T) {
	cfg := smallConfig(sanitize.SecSSD())
	cfg.ShardChannels = 2
	cfg.Fault.ProgramFail = 1e-3
	if _, err := New(cfg); err == nil {
		t.Fatal("sharded device with fault injection accepted")
	}
}

// TestShardedCloseIsIdempotent ensures Close/Drain degrade to no-ops on
// serial devices and after the first Close.
func TestShardedCloseIsIdempotent(t *testing.T) {
	serial := newSSD(t, sanitize.SecSSD())
	serial.Drain()
	serial.Close()

	cfg := smallConfig(sanitize.SecSSD())
	cfg.ShardChannels = 8 // more lanes than chips: clamped
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.MustSubmit(blockio.Request{Op: blockio.OpWrite, LPA: 0, Pages: 4})
	s.Drain()
	s.Close()
	s.Close()
	if s.Sharded() {
		t.Fatal("still sharded after Close")
	}
}
