package ssd

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/blockio"
	"repro/internal/ftl"
	"repro/internal/sanitize"
)

// batchConfig is smallConfig with the amortization features enabled:
// two planes per chip, cache-mode pipelining (the default), and
// wordline-aware lock batching in immediate mode.
func batchConfig(policy ftl.Policy) Config {
	cfg := smallConfig(policy)
	cfg.Planes = 2
	cfg.LockBatch = ftl.LockBatchConfig{Enabled: true}
	return cfg
}

func mustNew(t testing.TB, cfg Config) *SSD {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPlanesValidation(t *testing.T) {
	cfg := smallConfig(sanitize.SecSSD())
	cfg.Planes = 3 // 16 blocks % 3 != 0
	if _, err := New(cfg); err == nil {
		t.Fatal("plane count that does not divide the block count accepted")
	}
}

// Multi-plane striping must group programs (one shared tPROG per stripe)
// and finish a sequential write burst measurably faster than the
// single-plane device.
func TestMultiPlaneWriteThroughput(t *testing.T) {
	run := func(cfg Config) Report {
		s := mustNew(t, cfg)
		for i := 0; i < 16; i++ {
			s.MustSubmit(blockio.Request{Op: blockio.OpWrite, LPA: int64(i * 8), Pages: 8})
		}
		return s.Report()
	}
	single := run(smallConfig(sanitize.Baseline()))
	multi := run(batchConfig(sanitize.Baseline()))
	if multi.Stats.ProgramGroups == 0 {
		t.Fatal("multi-plane device issued no grouped programs")
	}
	if multi.Stats.GroupedPrograms < multi.Stats.ProgramGroups*2 {
		t.Fatalf("grouped programs %d below 2 per group (%d groups)",
			multi.Stats.GroupedPrograms, multi.Stats.ProgramGroups)
	}
	if multi.Elapsed >= single.Elapsed {
		t.Fatalf("2-plane write burst (%v) not faster than 1-plane (%v)",
			multi.Elapsed, single.Elapsed)
	}
}

// Multi-plane reads share one tREAD per group.
func TestMultiPlaneReadGrouping(t *testing.T) {
	s := mustNew(t, batchConfig(sanitize.Baseline()))
	for i := 0; i < 8; i++ {
		s.MustSubmit(blockio.Request{Op: blockio.OpWrite, LPA: int64(i * 8), Pages: 8})
	}
	s.Mark()
	for i := 0; i < 8; i++ {
		s.MustSubmit(blockio.Request{Op: blockio.OpRead, LPA: int64(i * 8), Pages: 8})
	}
	r := s.Report()
	if r.Stats.ReadGroups == 0 {
		t.Fatal("sequential reads on a 2-plane device were never grouped")
	}
	if r.Stats.HostReadPages != 64 {
		t.Fatalf("host read pages = %d, want 64", r.Stats.HostReadPages)
	}
	if r.Stats.FlashReads != 64 {
		t.Fatalf("flash reads = %d, want 64 (grouping shares tREAD, not the page count)", r.Stats.FlashReads)
	}
}

// Striped writes must be readable back bit-for-bit.
func TestMultiPlaneWriteReadBack(t *testing.T) {
	s := mustNew(t, batchConfig(sanitize.SecSSD()))
	payload := make([]byte, 8*4096)
	rand.New(rand.NewSource(11)).Read(payload)
	s.MustSubmit(blockio.Request{Op: blockio.OpWrite, LPA: 40, Pages: 8, Data: payload})
	for i := 0; i < 8; i++ {
		got, err := s.ReadLogical(40 + int64(i))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, payload[i*4096:(i+1)*4096]) {
			t.Fatalf("striped page %d read-back mismatch", i)
		}
	}
}

// Wordline-aware batching: a trim of many pages of one block must
// coalesce pLocks into per-wordline pulses, spending fewer chip pulses
// than pages locked while leaving nothing readable.
func TestLockBatchingCoalescesWordlines(t *testing.T) {
	s := mustNew(t, batchConfig(sanitize.SecSSDNoBLock()))
	page := bytes.Repeat([]byte("TOPSECRET!"), 410)[:4096]
	// 24 pages stripe across 4 chips × 2 planes: each open block
	// receives one full TLC wordline (3 pages).
	data := bytes.Repeat(page, 24)
	s.MustSubmit(blockio.Request{Op: blockio.OpWrite, LPA: 0, Pages: 24, Data: data})
	s.MustSubmit(blockio.Request{Op: blockio.OpTrim, LPA: 0, Pages: 24})
	st := s.FTL().Stats()
	if st.PLockBatches == 0 {
		t.Fatal("no batched pulses issued")
	}
	pulses := st.PLocks + st.PLockBatches
	if pulses >= st.PLockBatchedPages+st.PLocks {
		t.Fatalf("batching saved nothing: %d pulses for %d batched pages",
			pulses, st.PLockBatchedPages)
	}
	for ci, chip := range s.Chips() {
		for b := 0; b < chip.Geometry().Blocks; b++ {
			for _, page := range chip.ForensicDump(b, 0) {
				if bytes.Contains(page, []byte("TOPSECRET!")) {
					t.Fatalf("secret recovered from chip %d block %d after batched locks", ci, b)
				}
			}
		}
	}
}

// Batching must not weaken the security contract under churn: same
// forensic guarantee as the per-page path, and the batching counters
// must be active.
func TestBatchingSecurityUnderChurn(t *testing.T) {
	s := mustNew(t, batchConfig(sanitize.SecSSD()))
	if err := s.Prefill(0.75, true); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(21))
	logical := int64(s.LogicalPages())
	for i := 0; i < 1500; i++ {
		s.MustSubmit(blockio.Request{Op: blockio.OpWrite, LPA: rng.Int63n(logical - 4), Pages: 4})
	}
	st := s.FTL().Stats()
	if st.PLockBatches == 0 {
		t.Fatal("churn with batching enabled never batched")
	}
	if st.SanitizeCopies != 0 {
		t.Fatal("Evanesco must not copy pages to sanitize")
	}
	if s.FTL().LockQueueLen() != 0 {
		t.Fatalf("immediate mode left %d pages queued after requests", s.FTL().LockQueueLen())
	}
}

// Deferred mode (positive deadline): incomplete wordline groups ride
// across requests, and FlushLocks is the barrier that drains them.
func TestDeferredDeadlineAndFlushBarrier(t *testing.T) {
	cfg := batchConfig(sanitize.SecSSDNoBLock())
	cfg.LockBatch.Deadline = 1 << 40 // effectively never due on its own
	s := mustNew(t, cfg)
	data := bytes.Repeat([]byte{0xAB}, 4096)
	s.MustSubmit(blockio.Request{Op: blockio.OpWrite, LPA: 0, Pages: 1, Data: data})
	s.MustSubmit(blockio.Request{Op: blockio.OpTrim, LPA: 0, Pages: 1})
	if n := s.FTL().LockQueueLen(); n == 0 {
		t.Fatal("deferred mode should leave the lone page queued")
	}
	s.FlushLocks()
	if n := s.FTL().LockQueueLen(); n != 0 {
		t.Fatalf("FlushLocks left %d pages queued", n)
	}
	st := s.FTL().Stats()
	if st.PLocks == 0 {
		t.Fatal("the queued page was never locked")
	}
}

// The threshold knob force-flushes when the queue grows past it.
func TestLockBatchThreshold(t *testing.T) {
	cfg := batchConfig(sanitize.SecSSDNoBLock())
	cfg.LockBatch.Deadline = 1 << 40
	cfg.LockBatch.Threshold = 4
	s := mustNew(t, cfg)
	data := bytes.Repeat([]byte{0x5A}, 8*4096)
	s.MustSubmit(blockio.Request{Op: blockio.OpWrite, LPA: 0, Pages: 8, Data: data})
	s.MustSubmit(blockio.Request{Op: blockio.OpTrim, LPA: 0, Pages: 8})
	if n := s.FTL().LockQueueLen(); n >= 4 {
		t.Fatalf("threshold 4 left %d pages queued", n)
	}
}

// The ablation pair the reproduce figure compares: everything on vs
// everything off, on a sanitization-heavy file-churn workload
// (sequential secured writes, read-back, then a partial trim that keeps
// every block shy of bLock escalation). The "on" device must be at
// least 1.5× faster — the same bar the benchmark gate enforces.
func TestAmortizationAblationFaster(t *testing.T) {
	run := func(cfg Config) Report {
		s := mustNew(t, cfg)
		logical := int64(s.LogicalPages())
		span := int64(24)
		slots := logical / span
		s.Mark()
		for i := 0; i < 150; i++ {
			lpa := (int64(i) % slots) * span
			s.MustSubmit(blockio.Request{Op: blockio.OpWrite, LPA: lpa, Pages: 24})
			s.MustSubmit(blockio.Request{Op: blockio.OpRead, LPA: lpa, Pages: 24})
			s.MustSubmit(blockio.Request{Op: blockio.OpTrim, LPA: lpa, Pages: 21})
		}
		s.FlushLocks()
		return s.Report()
	}
	off := smallConfig(sanitize.SecSSD())
	off.NoCachePipeline = true
	on := batchConfig(sanitize.SecSSD())
	slow := run(off)
	fast := run(on)
	if fast.IOPS < slow.IOPS*1.5 {
		t.Fatalf("amortized device %.0f IOPS, want ≥1.5× the disabled device's %.0f",
			fast.IOPS, slow.IOPS)
	}
}

// NoCachePipeline must cost time, never change outcomes.
func TestNoCachePipelineAblation(t *testing.T) {
	run := func(noCache bool) Report {
		cfg := smallConfig(sanitize.SecSSD())
		cfg.NoCachePipeline = noCache
		s := mustNew(t, cfg)
		rng := rand.New(rand.NewSource(17))
		logical := int64(s.LogicalPages())
		for i := 0; i < 400; i++ {
			s.MustSubmit(blockio.Request{Op: blockio.OpWrite, LPA: rng.Int63n(logical), Pages: 2})
		}
		return s.Report()
	}
	cached := run(false)
	raw := run(true)
	if raw.Elapsed < cached.Elapsed {
		t.Fatalf("disabling cache-mode sped the device up (%v vs %v)", raw.Elapsed, cached.Elapsed)
	}
	if cached.Stats != raw.Stats {
		t.Fatalf("cache-mode changed op counts:\n%+v\n%+v", cached.Stats, raw.Stats)
	}
}

// Bit-stable determinism with every new feature enabled.
func TestBatchingDeterminism(t *testing.T) {
	run := func() Report {
		s := mustNew(t, batchConfig(sanitize.SecSSD()))
		rng := rand.New(rand.NewSource(5))
		logical := int64(s.LogicalPages())
		for i := 0; i < 500; i++ {
			s.MustSubmit(blockio.Request{Op: blockio.OpWrite, LPA: rng.Int63n(logical), Pages: 2})
		}
		s.FlushLocks()
		return s.Report()
	}
	a, b := run(), run()
	if a.Elapsed != b.Elapsed || a.Stats != b.Stats {
		t.Fatalf("nondeterministic batched simulation:\n%+v\n%+v", a, b)
	}
}
