package ssd

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/blockio"
	"repro/internal/fault"
	"repro/internal/ftl"
	"repro/internal/nand"
	"repro/internal/sanitize"
)

func fillPages(n, pageBytes int, tag byte) []byte {
	out := make([]byte, n*pageBytes)
	for i := range out {
		out[i] = tag ^ byte(i)
	}
	return out
}

// writeRange writes [lpa, lpa+n) with real secured payloads.
func writeRange(t *testing.T, s *SSD, lpa int64, n int, tag byte) []byte {
	t.Helper()
	data := fillPages(n, s.Geometry().PageBytes, tag)
	s.MustSubmit(blockio.Request{Op: blockio.OpWrite, LPA: lpa, Pages: int32(n), Data: data})
	return data
}

// captureLoss runs fn expecting the armed cut to fire.
func captureLoss(t *testing.T, s *SSD, fn func() error) *nand.PowerLoss {
	t.Helper()
	loss, err := s.CapturePowerLoss(fn)
	if err != nil {
		t.Fatalf("workload failed before the cut: %v", err)
	}
	if loss == nil {
		t.Fatal("armed cut never fired")
	}
	if !s.Dead() {
		t.Fatal("device alive after power loss")
	}
	return loss
}

// assertNoReadableStale fails if any non-live physical page is readable
// with nonzero contents — the paper's C1/C2 conditions at chip level.
func assertNoReadableStale(t *testing.T, s *SSD) {
	t.Helper()
	f := s.FTL()
	g := s.Geometry()
	for p := 0; p < g.TotalPages(); p++ {
		ppa := ftl.PPA(p)
		if f.Status(ppa).Live() || f.Status(ppa) == ftl.PageFree {
			continue
		}
		chip := s.Chips()[g.ChipOf(ppa)]
		res, err := chip.Read(nand.PageAddr{
			Block: g.BlockInChip(g.BlockOf(ppa)),
			Page:  g.PageInBlock(ppa),
		}, s.makespan)
		if err != nil {
			continue // locked: sanitized
		}
		for _, b := range res.Data {
			if b != 0 {
				t.Fatalf("stale physical page %d readable with data after remount", p)
			}
		}
	}
}

// mediaState is the full externally observable device state: raw media
// (pointers, locks, payload hashes, stamps) plus the FTL's mapping.
type mediaState struct {
	WritePtr []int
	Locked   []bool
	Probes   []nand.PageProbe
	Sums     []uint32
	L2P      []ftl.PPA
}

func snapshot(t *testing.T, s *SSD) mediaState {
	t.Helper()
	g := s.Geometry()
	st := mediaState{L2P: make([]ftl.PPA, s.LogicalPages())}
	for lpa := range st.L2P {
		st.L2P[lpa] = s.FTL().Lookup(int64(lpa))
	}
	for block := 0; block < g.TotalBlocks(); block++ {
		chip := s.Chips()[g.ChipOfBlock(block)]
		b := g.BlockInChip(block)
		locked, err := chip.IsBlockLocked(b, s.makespan)
		if err != nil {
			t.Fatal(err)
		}
		st.WritePtr = append(st.WritePtr, chip.WritePointer(b))
		st.Locked = append(st.Locked, locked)
		for pg := 0; pg < g.PagesPerBlock; pg++ {
			pr, err := chip.ProbePage(nand.PageAddr{Block: b, Page: pg}, s.makespan)
			if err != nil {
				t.Fatal(err)
			}
			st.Probes = append(st.Probes, pr)
			var sum uint32
			if res, err := chip.Read(nand.PageAddr{Block: b, Page: pg}, s.makespan); err == nil {
				for _, by := range res.Data {
					sum = sum*31 + uint32(by)
				}
			}
			st.Sums = append(st.Sums, sum)
		}
	}
	return st
}

// A cut mid-pLock orphans an invalidated-but-unlocked copy; the remount
// must sanitize it, and a second remount must be a pure no-op.
func TestRemountIdempotentAfterPLockCut(t *testing.T) {
	s := newSSD(t, sanitize.SecSSD())
	want := writeRange(t, s, 0, 48, 0x10)
	if err := s.ArmPowerCut(fault.CutSpec{AfterOps: 2, Op: fault.CutPLock}); err != nil {
		t.Fatal(err)
	}
	loss := captureLoss(t, s, func() error {
		_, err := s.Submit(blockio.Request{Op: blockio.OpWrite, LPA: 0, Pages: 24,
			Data: fillPages(24, s.Geometry().PageBytes, 0x55)})
		return err
	})
	if loss.Op != nand.OpPLock {
		t.Fatalf("cut struck %v, want pLock", loss.Op)
	}
	if _, err := s.Submit(blockio.Request{Op: blockio.OpRead, LPA: 0, Pages: 1}); err != ErrPowerLost {
		t.Fatalf("dead device accepted a request: %v", err)
	}
	if err := s.Remount(0); err != nil {
		t.Fatal(err)
	}
	assertNoReadableStale(t, s)
	first := snapshot(t, s)
	if err := s.Remount(0); err != nil {
		t.Fatal(err)
	}
	second := snapshot(t, s)
	if !reflect.DeepEqual(first, second) {
		t.Fatal("second remount changed device state; remount must be idempotent")
	}
	// Data the cut never touched is still live: LPAs 24.. keep their
	// original contents (the interrupted overwrite targeted 0..23).
	pb := s.Geometry().PageBytes
	for lpa := 24; lpa < 48; lpa++ {
		got, err := s.ReadLogical(int64(lpa))
		if err != nil {
			t.Fatalf("LPA %d unreadable after remount: %v", lpa, err)
		}
		if !bytes.Equal(got, want[lpa*pb:(lpa+1)*pb]) {
			t.Fatalf("LPA %d content diverged after remount", lpa)
		}
	}
}

// A cut during a coalesced pLock batch programs no flag at all (atomic
// none); the remount scan still sees every batched page as stale and
// re-sanitizes the whole wordline.
func TestCutDuringCoalescedBatchSurvivesRemount(t *testing.T) {
	cfg := smallConfig(sanitize.SecSSD())
	cfg.LockBatch = ftl.LockBatchConfig{Enabled: true}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	writeRange(t, s, 0, 96, 0x21)
	if err := s.ArmPowerCut(fault.CutSpec{AfterOps: 1, Op: fault.CutPLockBatch}); err != nil {
		t.Fatal(err)
	}
	loss := captureLoss(t, s, func() error {
		_, err := s.Submit(blockio.Request{Op: blockio.OpTrim, LPA: 0, Pages: 24})
		return err
	})
	if loss.Op != nand.OpPLockWL {
		t.Fatalf("cut struck %v, want batched pLock", loss.Op)
	}
	// Atomicity on the media: no page of the struck wordline holds a
	// partial flag set — each is either still readable or untouched.
	chipIdx := -1
	for ci, chip := range s.Chips() {
		wl := loss.Addr.Page / s.Geometry().PagesPerWL
		partial := false
		for slot := 0; slot < s.Geometry().PagesPerWL; slot++ {
			a := nand.PageAddr{Block: loss.Addr.Block, Page: wl*s.Geometry().PagesPerWL + slot}
			if _, err := chip.IsPageLocked(a, s.makespan); err != nil {
				partial = true
			}
		}
		if !partial {
			chipIdx = ci
		}
	}
	if chipIdx < 0 {
		t.Fatal("no chip holds the struck wordline readable")
	}
	if err := s.Remount(0); err != nil {
		t.Fatal(err)
	}
	assertNoReadableStale(t, s)
}

// A cut on the bLock seal itself (SSL short of the disable threshold)
// leaves the fully-stale block readable; remount must re-seal it.
func TestCutOnBLockSealRecoveredByRemount(t *testing.T) {
	s := newSSD(t, sanitize.SecSSD())
	writeRange(t, s, 0, 96, 0x33)
	if err := s.ArmPowerCut(fault.CutSpec{AfterOps: 1, Op: fault.CutBLock}); err != nil {
		t.Fatal(err)
	}
	loss := captureLoss(t, s, func() error {
		_, err := s.Submit(blockio.Request{Op: blockio.OpTrim, LPA: 0, Pages: 96})
		return err
	})
	if loss.Op != nand.OpBLock {
		t.Fatalf("cut struck %v, want bLock", loss.Op)
	}
	if err := s.Remount(0); err != nil {
		t.Fatal(err)
	}
	assertNoReadableStale(t, s)
}

// A cut mid-relocation (erSSD: live pages move out before the victim
// block is erased) leaves a torn, stamp-less destination copy. The
// remount keeps the stamped source live — no data loss — and sanitizes
// the torn residue.
func TestCutMidRelocationKeepsSourceSanitizesTorn(t *testing.T) {
	s := newSSD(t, sanitize.ErSSD())
	want := writeRange(t, s, 0, 96, 0x44)
	if err := s.ArmPowerCut(fault.CutSpec{AfterOps: 1, Op: fault.CutProgram}); err != nil {
		t.Fatal(err)
	}
	// Trimming the odd half leaves every block half-live: erSSD must
	// relocate the even LPAs before erasing, and the first relocation
	// program is struck.
	loss := captureLoss(t, s, func() error {
		for lpa := int64(1); lpa < 96; lpa += 2 {
			if _, err := s.Submit(blockio.Request{Op: blockio.OpTrim, LPA: lpa, Pages: 1}); err != nil {
				return err
			}
		}
		return nil
	})
	if loss.Op != nand.OpProgram {
		t.Fatalf("cut struck %v, want a relocation program", loss.Op)
	}
	if err := s.Remount(0); err != nil {
		t.Fatal(err)
	}
	pb := s.Geometry().PageBytes
	for lpa := int64(0); lpa < 96; lpa += 2 {
		got, err := s.ReadLogical(lpa)
		if err != nil {
			t.Fatalf("live LPA %d lost across cut+remount: %v", lpa, err)
		}
		if !bytes.Equal(got, want[lpa*int64(pb):(lpa+1)*int64(pb)]) {
			t.Fatalf("LPA %d content diverged across cut+remount", lpa)
		}
	}
	assertNoReadableStale(t, s)
}

// A cut mid-erase destroys nothing; the block's stale contents are still
// on the media and the remount re-runs the erase policy over them.
func TestCutMidEraseRecoveredByRemount(t *testing.T) {
	s := newSSD(t, sanitize.ErSSD())
	writeRange(t, s, 0, 96, 0x66)
	if err := s.ArmPowerCut(fault.CutSpec{AfterOps: 1, Op: fault.CutErase}); err != nil {
		t.Fatal(err)
	}
	loss := captureLoss(t, s, func() error {
		_, err := s.Submit(blockio.Request{Op: blockio.OpTrim, LPA: 0, Pages: 96})
		return err
	})
	if loss.Op != nand.OpErase {
		t.Fatalf("cut struck %v, want erase", loss.Op)
	}
	if err := s.Remount(0); err != nil {
		t.Fatal(err)
	}
	assertNoReadableStale(t, s)
}

// Remount on a healthy, never-cut device preserves every mapping and
// all live data: the boot scan alone carries the full translation state.
func TestHealthyRemountPreservesData(t *testing.T) {
	for _, policy := range []ftl.Policy{sanitize.SecSSD(), sanitize.ScrSSD(), sanitize.ErSSD()} {
		s := newSSD(t, policy)
		want := writeRange(t, s, 0, 60, 0x77)
		s.MustSubmit(blockio.Request{Op: blockio.OpTrim, LPA: 50, Pages: 10})
		if err := s.Remount(0); err != nil {
			t.Fatalf("%s: %v", policy.Name(), err)
		}
		pb := s.Geometry().PageBytes
		for lpa := int64(0); lpa < 50; lpa++ {
			got, err := s.ReadLogical(lpa)
			if err != nil {
				t.Fatalf("%s: LPA %d unreadable after healthy remount: %v", policy.Name(), lpa, err)
			}
			if !bytes.Equal(got, want[lpa*int64(pb):(lpa+1)*int64(pb)]) {
				t.Fatalf("%s: LPA %d diverged after healthy remount", policy.Name(), lpa)
			}
		}
		for lpa := int64(50); lpa < 60; lpa++ {
			if s.FTL().Lookup(lpa) != ftl.NoPPA {
				t.Fatalf("%s: trimmed LPA %d resurrected by healthy remount", policy.Name(), lpa)
			}
		}
		assertNoReadableStale(t, s)
	}
}

// ArmPowerCut composes with sharded execution only by refusing it.
func TestArmPowerCutRejectsSharded(t *testing.T) {
	cfg := smallConfig(sanitize.SecSSD())
	cfg.ShardChannels = 2
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.ArmPowerCut(fault.CutSpec{AfterOps: 1}); err == nil {
		t.Fatal("sharded device accepted a power-cut schedule")
	}
	if err := s.ArmPowerCut(fault.CutSpec{}); err == nil {
		t.Fatal("disarmed spec accepted")
	}
}
