package ssd

import (
	"reflect"
	"testing"

	"repro/internal/blockio"
	"repro/internal/fault"
	"repro/internal/ftl"
	"repro/internal/sanitize"
)

// FuzzPowerCutInstant cuts power at a fuzzer-chosen instant — any op
// count, any op class, any sanitizing policy, batching on or off — and
// checks the crash-consistency contract: after remount no stale page is
// readable with data (the paper's C1/C2 conditions survive the crash),
// untouched live data is preserved, and a second remount is a no-op.
func FuzzPowerCutInstant(f *testing.F) {
	f.Add(uint8(1), uint8(0), uint8(0), uint8(24))
	f.Add(uint8(2), uint8(3), uint8(1), uint8(48))
	f.Add(uint8(1), uint8(4), uint8(4), uint8(96))
	f.Add(uint8(7), uint8(5), uint8(2), uint8(96))
	f.Add(uint8(20), uint8(1), uint8(5), uint8(64))
	f.Add(uint8(3), uint8(2), uint8(3), uint8(30))
	f.Fuzz(func(t *testing.T, after, opSel, mix, span uint8) {
		ops := []fault.CutOp{
			fault.CutAny, fault.CutProgram, fault.CutErase,
			fault.CutPLock, fault.CutPLockBatch, fault.CutBLock, fault.CutScrub,
		}
		policies := []ftl.Policy{sanitize.SecSSD(), sanitize.SecSSDNoBLock(), sanitize.ScrSSD(), sanitize.ErSSD()}
		cfg := smallConfig(policies[int(mix)%len(policies)])
		if mix&4 != 0 {
			cfg.LockBatch = ftl.LockBatchConfig{Enabled: true}
		}
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}

		writeRange(t, s, 0, 96, 0x5A)
		if err := s.ArmPowerCut(fault.CutSpec{
			AfterOps: 1 + uint64(after)%64,
			Op:       ops[int(opSel)%len(ops)],
		}); err != nil {
			t.Fatal(err)
		}
		// The crash workload: trim a fuzzer-chosen prefix, then overwrite
		// a slice of what remains, so the cut can land on host programs,
		// sanitize pulses, GC relocation, or erases. The armed op class
		// may never occur — then the device simply stays alive.
		trim := 1 + int32(span)%95
		loss, err := s.CapturePowerLoss(func() error {
			if _, err := s.Submit(blockio.Request{Op: blockio.OpTrim, LPA: 0, Pages: trim}); err != nil {
				return err
			}
			n := 96 - int64(trim)
			if n > 16 {
				n = 16
			}
			_, err := s.Submit(blockio.Request{Op: blockio.OpWrite, LPA: int64(trim), Pages: int32(n),
				Data: fillPages(int(n), s.Geometry().PageBytes, 0xC3)})
			return err
		})
		if err != nil {
			t.Fatalf("workload failed before any cut: %v", err)
		}
		if (loss != nil) != s.Dead() {
			t.Fatalf("loss=%v but Dead()=%v", loss, s.Dead())
		}
		// A schedule that never fired is still counting; disarm so it
		// cannot strike the recovery scan or the post-recovery probe.
		s.DisarmPowerCut()

		if err := s.Remount(0); err != nil {
			t.Fatalf("remount after cut at %+v: %v", loss, err)
		}
		assertNoReadableStale(t, s)
		first := snapshot(t, s)
		if err := s.Remount(0); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(first, snapshot(t, s)) {
			t.Fatalf("remount not idempotent after cut at %+v", loss)
		}
		// The device must be serviceable after recovery: a fresh write
		// and read-back on a surviving LPA.
		data := fillPages(1, s.Geometry().PageBytes, 0x77)
		s.MustSubmit(blockio.Request{Op: blockio.OpWrite, LPA: 95, Pages: 1, Data: data})
		got, err := s.ReadLogical(95)
		if err != nil {
			t.Fatalf("post-recovery write unreadable: %v", err)
		}
		for i := range got {
			if got[i] != data[i] {
				t.Fatal("post-recovery write corrupted")
			}
		}
	})
}
