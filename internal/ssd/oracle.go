// Coordinator-side fault oracle for channel-sharded execution.
//
// Serial fault injection draws its decisions inside the chip operations,
// which deferral breaks twice over: the FTL's recovery ladder needs each
// verdict synchronously (a failed program is retried elsewhere before
// the next op is issued), and the draw order of each chip's splitmix64
// stream must stay a pure function of the workload. The oracle restores
// both properties by moving the injectors — the very same per-chip
// streams, seeded identically — onto the coordinator. Every Target
// method draws its verdict at the post site, before the deferred record
// is enqueued; the record then carries the verdict to the lane worker,
// which replays only the state effects (nand.Apply*Fail and friends)
// without consuming any draws of its own.
//
// Chip operations gate their draws on chip state (a pLock of an
// already-flagged page draws nothing; a read of an erased page draws
// nothing), so the oracle mirrors exactly the state that gates draws:
// per-page payload lengths, per-page pAP flag-programmed bits, per-block
// SSL-programmed bits, and per-block P/E counts. Each mirror field is
// updated by the same verdicts that drive the chip, so mirror and chip
// can never disagree — and because per-chip draw order equals the
// coordinator's call order in both modes, a sharded fault schedule is
// bit-identical to the serial one, stream for stream, draw for draw.
package ssd

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/ftl"
	"repro/internal/nand"
)

// faultOracle owns the per-chip injectors and the draw-gating mirror of
// chip state in sharded fault mode. It is coordinator-private: lane
// workers never touch it.
type faultOracle struct {
	inj       []*fault.Injector
	endurance int
	ppb       int

	// Mirrors, indexed [chip][chip-local block] or [chip][chip-local
	// block*ppb+page].
	peCycles [][]int32
	pageLen  [][]int32
	flagged  [][]bool
	bLocked  [][]bool

	// readGroup scratch (one multi-plane group at a time).
	attempts []int
}

func newFaultOracle(cfg Config, geo ftl.Geometry) *faultOracle {
	nChips := geo.Chips
	o := &faultOracle{
		inj:       make([]*fault.Injector, nChips),
		endurance: cfg.Chip.EnduranceCycles,
		ppb:       geo.PagesPerBlock,
		peCycles:  make([][]int32, nChips),
		pageLen:   make([][]int32, nChips),
		flagged:   make([][]bool, nChips),
		bLocked:   make([][]bool, nChips),
		attempts:  make([]int, geo.Planes),
	}
	for i := 0; i < nChips; i++ {
		// Stream index = chip index, exactly as the serial constructor
		// wires injectors into chips: the schedules are the same streams.
		o.inj[i] = fault.New(cfg.Fault, uint64(i))
		o.peCycles[i] = make([]int32, geo.BlocksPerChip)
		o.pageLen[i] = make([]int32, geo.BlocksPerChip*geo.PagesPerBlock)
		o.flagged[i] = make([]bool, geo.BlocksPerChip*geo.PagesPerBlock)
		o.bLocked[i] = make([]bool, geo.BlocksPerChip)
	}
	return o
}

// counts sums every stream's injection counters.
func (o *faultOracle) counts() fault.Counts {
	var c fault.Counts
	for _, in := range o.inj {
		c.Add(in.Counts())
	}
	return c
}

func (o *faultOracle) pageIndex(a nand.PageAddr) int { return a.Block*o.ppb + a.Page }

// program draws the verdict for a deferred single-page program. stored
// is the pooled payload copy the record will carry; on a failure verdict
// its tail is corrupted in place — the same draws, producing the same
// bytes, as the serial chip's corrupt-after-store.
func (o *faultOracle) program(chip int, a nand.PageAddr, stored []byte) error {
	o.pageLen[chip][o.pageIndex(a)] = int32(len(stored))
	if o.inj[chip].FailProgram(int(o.peCycles[chip][a.Block]), o.endurance) {
		o.inj[chip].CorruptTail(stored)
		return nand.ErrProgramFailed
	}
	return nil
}

// programStored draws the verdict for a page just programmed
// synchronously on the chip (the ProgramGroup payload fallback, behind a
// lane flush); a failure corrupts the stored bytes on the chip through
// the oracle's stream, in the serial draw order (verdict, then tail).
func (o *faultOracle) programStored(chip int, a nand.PageAddr, c *nand.Chip) error {
	o.pageLen[chip][o.pageIndex(a)] = int32(c.PageLen(a))
	if o.inj[chip].FailProgram(int(o.peCycles[chip][a.Block]), o.endurance) {
		if err := c.CorruptStoredTail(a, o.inj[chip]); err != nil {
			panic(fmt.Sprintf("ssd: oracle corrupt at %v: %v", a, err))
		}
		return nand.ErrProgramFailed
	}
	return nil
}

// programGroup draws per-page verdicts for a deferred all-nil-payload
// multi-plane program, in plane order — the order ProgramMulti issues
// the per-page programs. errs[i] is set for failed pages (the FTL's
// striped-write recovery consumes it); the chip-side replay needs no
// verdicts because a zero-length stored payload corrupts to itself.
func (o *faultOracle) programGroup(chip int, addrs []nand.PageAddr, errs []error) {
	for i, a := range addrs {
		o.pageLen[chip][o.pageIndex(a)] = 0
		if o.inj[chip].FailProgram(int(o.peCycles[chip][a.Block]), o.endurance) {
			errs[i] = nand.ErrProgramFailed
		}
	}
}

// copyback draws the destination-program verdict of an internal data
// move. The source read is the chip's internal path (no transfer-error
// draws), and the destination inherits the source's payload length —
// locked or erased sources copy as zeros of the same length, exactly as
// the chip's gated data-out path yields them.
func (o *faultOracle) copyback(chip int, src, dst nand.PageAddr) bool {
	o.pageLen[chip][o.pageIndex(dst)] = o.pageLen[chip][o.pageIndex(src)]
	return o.inj[chip].FailProgram(int(o.peCycles[chip][dst.Block]), o.endurance)
}

// erase draws the verdict for a deferred block erase. A success advances
// the mirrored P/E count and resets every page and lock mirror of the
// block; a failure leaves the mirror untouched (the chip keeps its data,
// flags and SSL state, and did not cycle).
func (o *faultOracle) erase(chip, block int) bool {
	if o.inj[chip].FailErase(int(o.peCycles[chip][block]), o.endurance) {
		return true
	}
	o.peCycles[chip][block]++
	base := block * o.ppb
	for i := base; i < base+o.ppb; i++ {
		o.pageLen[chip][i] = 0
		o.flagged[chip][i] = false
	}
	o.bLocked[chip][block] = false
	return false
}

// plock draws the verdict for a deferred single-page pLock. An
// already-flagged page is a charged no-op that consumes no draw,
// matching the chip's gate.
func (o *faultOracle) plock(chip int, a nand.PageAddr) bool {
	pi := o.pageIndex(a)
	if o.flagged[chip][pi] {
		return false
	}
	if o.inj[chip].FailPLock(int(o.peCycles[chip][a.Block]), o.endurance) {
		return true
	}
	o.flagged[chip][pi] = true
	return false
}

// plockWL draws the verdict for a deferred batched pLock pulse: one draw
// if any requested slot is still unflagged, none otherwise. A success
// flags every requested slot (all-or-none pulse).
func (o *faultOracle) plockWL(chip, block, wl int, slots []int32, pagesPerWL int) bool {
	base := block*o.ppb + wl*pagesPerWL
	need := false
	for _, s := range slots {
		if !o.flagged[chip][base+int(s)] {
			need = true
			break
		}
	}
	if !need {
		return false
	}
	if o.inj[chip].FailPLock(int(o.peCycles[chip][block]), o.endurance) {
		return true
	}
	for _, s := range slots {
		o.flagged[chip][base+int(s)] = true
	}
	return false
}

// block draws the verdict for a deferred bLock. An already-programmed
// SSL is a charged no-op without a draw, as on the chip.
func (o *faultOracle) block(chip, blockIdx int) bool {
	if o.bLocked[chip][blockIdx] {
		return false
	}
	if o.inj[chip].FailBLock(int(o.peCycles[chip][blockIdx]), o.endurance) {
		return true
	}
	o.bLocked[chip][blockIdx] = true
	return false
}

// readPayload overlays the transfer-error model on a synchronous chip
// read (lane already flushed): the same draws the serial chip makes,
// flipping bits in the actual payload when uncorrectable. err must be
// nil on entry — locked and erased pages consume no draws.
func (o *faultOracle) readPayload(chip int, a nand.PageAddr, data []byte) error {
	if len(data) == 0 {
		return nil
	}
	bits := len(data) * 8
	nerr, unc := o.inj[chip].ReadErrors(bits, int(o.peCycles[chip][a.Block]), o.endurance)
	if unc {
		o.inj[chip].FlipBits(data, nerr)
		return fmt.Errorf("%w: injected %d raw errors in %d bits", nand.ErrUncorrectable, nerr, bits)
	}
	return nil
}

// readDiscard replays the whole serial retry loop for a deferred
// timing-only read: the initial draw plus up to maxReadAttempts-1
// redraws, burning the bit-flip draws of each uncorrectable transfer
// (the payload is discarded, but the serial path corrupts its buffer
// and the stream must stay aligned). Returns the attempt count for the
// lane replay and whether the read stayed uncorrectable.
func (o *faultOracle) readDiscard(chip int, a nand.PageAddr) (attempts int, failed bool) {
	pi := o.pageIndex(a)
	if o.flagged[chip][pi] || o.bLocked[chip][a.Block] {
		// The FTL never reads locked pages (locks target invalid pages
		// only); if that invariant ever breaks, fail loudly instead of
		// silently diverging from the serial schedule.
		panic(fmt.Sprintf("ssd: deferred read of locked page %v on chip %d", a, chip))
	}
	attempts = 1
	bits := int(o.pageLen[chip][pi]) * 8
	if bits == 0 {
		return attempts, false
	}
	inj := o.inj[chip]
	pe := int(o.peCycles[chip][a.Block])
	nerr, unc := inj.ReadErrors(bits, pe, o.endurance)
	if unc {
		inj.SkipFlips(bits, nerr)
	}
	for unc && attempts < maxReadAttempts {
		attempts++
		nerr, unc = inj.ReadErrors(bits, pe, o.endurance)
		if unc {
			inj.SkipFlips(bits, nerr)
		}
	}
	return attempts, unc
}

// readGroup replays the serial draw order of a deferred multi-plane
// read: ReadMulti draws once per page in plane order, then the per-page
// retry loops run in plane order. It returns the per-page attempt
// counts (scratch, valid until the next call) and a bitmask of pages
// that stayed uncorrectable.
func (o *faultOracle) readGroup(chip int, addrs []nand.PageAddr) (attempts []int, failedMask uint64) {
	attempts = o.attempts[:len(addrs)]
	inj := o.inj[chip]
	for i, a := range addrs {
		attempts[i] = 1
		pi := o.pageIndex(a)
		if o.flagged[chip][pi] || o.bLocked[chip][a.Block] {
			panic(fmt.Sprintf("ssd: deferred group read of locked page %v on chip %d", a, chip))
		}
		bits := int(o.pageLen[chip][pi]) * 8
		if bits == 0 {
			continue
		}
		nerr, unc := inj.ReadErrors(bits, int(o.peCycles[chip][a.Block]), o.endurance)
		if unc {
			inj.SkipFlips(bits, nerr)
			attempts[i] = -1 // uncorrectable after first attempt; retried below
		}
	}
	for i, a := range addrs {
		if attempts[i] != -1 {
			continue
		}
		n := 1
		bits := int(o.pageLen[chip][o.pageIndex(a)]) * 8
		pe := int(o.peCycles[chip][a.Block])
		unc := true
		for unc && n < maxReadAttempts {
			n++
			var nerr int
			nerr, unc = inj.ReadErrors(bits, pe, o.endurance)
			if unc {
				inj.SkipFlips(bits, nerr)
			}
		}
		attempts[i] = n
		if unc {
			failedMask |= 1 << uint(i)
		}
	}
	return attempts, failedMask
}

// rebuild resynchronizes the mirror from settled chip state (lanes must
// be drained). Remount uses it as a belt-and-suspenders step: the media
// scan rebuilt the FTL's world, and the oracle re-reads the same truth.
func (o *faultOracle) rebuild(chips []*nand.Chip) {
	for ci, c := range chips {
		for b := range o.bLocked[ci] {
			o.peCycles[ci][b] = int32(c.PECycles(b))
			o.bLocked[ci][b] = c.SSLProgrammed(b)
			for p := 0; p < o.ppb; p++ {
				a := nand.PageAddr{Block: b, Page: p}
				o.pageLen[ci][b*o.ppb+p] = int32(c.PageLen(a))
				o.flagged[ci][b*o.ppb+p] = c.FlagProgrammed(a)
			}
		}
	}
}
