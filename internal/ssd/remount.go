// Power loss and remount: the device-level half of the crash-consistency
// model. ArmPowerCut schedules a cut on the shared fault.CutState; the
// struck chip panics with nand.PowerLoss mid-operation, CapturePowerLoss
// turns that panic into a value and marks the device dead, and Remount
// rebuilds a working FTL from whatever the media still holds (the
// boot-time scan + ftl.Restore), re-running the sanitization policy over
// every copy the crash left stale.

package ssd

import (
	"errors"
	"fmt"

	"repro/internal/fault"
	"repro/internal/ftl"
	"repro/internal/nand"
	"repro/internal/sim"
)

// ErrPowerLost rejects host requests submitted after a power cut and
// before Remount: the controller is down.
var ErrPowerLost = errors.New("ssd: power lost, remount required")

// WriteMeta implements ftl.MetaWriter: the FTL stamps every committed
// write's spare area with (lpa, seq, secure). The stamp rides the program
// pulse it describes — zero latency, no fault draw — and in sharded mode
// it is deferred onto the owning chip's lane right behind that program,
// preserving per-chip op order.
func (s *SSD) WriteMeta(p ftl.PPA, lpa int64, seq uint64, secure bool) {
	chip, a := s.addr(p)
	if s.shard != nil {
		// lpa is a logical page index (≥ 0), so lpa<<1|secure is lossless;
		// Block2/Page2 carry the sequence's high and low halves.
		s.shard.post(chip, sim.Record{
			Kind: opStampMeta, Block: int32(a.Block), Page: int32(a.Page),
			Block2: int32(uint32(seq >> 32)), Page2: int32(uint32(seq)),
			Aux: lpa<<1 | boolBit(secure),
		})
		return
	}
	if err := s.chips[chip].StampOOB(a, nand.OOBMeta{LPA: lpa, Seq: seq, Secure: secure}); err != nil {
		panic(fmt.Sprintf("ssd: OOB stamp at %v: %v", a, err))
	}
}

// WriteMetaGroup implements ftl.GroupMetaWriter: the stamps of one
// fully-committed multi-plane stripe (consecutive LPAs and sequence
// numbers, one chip) in a single call. Serially it is just the loop of
// stamps; in sharded mode the whole stripe becomes ONE deferred record
// on the owning chip's lane — the coordinator fast path that replaces
// per-page stamp round-trips per barrier window.
func (s *SSD) WriteMetaGroup(pages []ftl.PPA, lpa0 int64, seq0 uint64, secure bool) {
	if s.shard != nil {
		chip, _ := s.addr(pages[0])
		ids := s.shard.slots.Get()
		for _, p := range pages {
			_, a := s.addr(p)
			ids = append(ids, s.shard.pack(a))
		}
		s.shard.post(chip, sim.Record{
			Kind:   opStampMetaGroup,
			Block2: int32(uint32(seq0 >> 32)), Page2: int32(uint32(seq0)),
			Aux:   lpa0<<1 | boolBit(secure),
			Slots: ids,
		})
		return
	}
	for i, p := range pages {
		chip, a := s.addr(p)
		err := s.chips[chip].StampOOB(a, nand.OOBMeta{
			LPA: lpa0 + int64(i), Seq: seq0 + uint64(i), Secure: secure,
		})
		if err != nil {
			panic(fmt.Sprintf("ssd: OOB stamp at %v: %v", a, err))
		}
	}
}

func boolBit(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// ArmPowerCut schedules a deterministic power loss: the cut fires on the
// spec.AfterOps-th matching chip operation device-wide (see
// fault.CutSpec), interrupting it per the partial-write semantics
// documented in internal/nand. Wrap the workload in CapturePowerLoss to
// observe the cut, then Remount to recover. Re-arming after a remount
// schedules the next cut. Sharded devices are rejected: the loss must
// interrupt the op stream synchronously, which deferred execution cannot
// honor.
func (s *SSD) ArmPowerCut(spec fault.CutSpec) error {
	if s.shard != nil {
		return fmt.Errorf("ssd: power-cut injection requires serial execution (ShardChannels=0)")
	}
	if !spec.Armed() {
		return fmt.Errorf("ssd: power-cut spec needs AfterOps > 0")
	}
	s.cut.Arm(spec)
	return nil
}

// DisarmPowerCut cancels a pending schedule. A schedule that never
// fired stays live across Remount (the counter is device state, not
// controller RAM), so a harness that wants a clean post-recovery run
// must disarm explicitly.
func (s *SSD) DisarmPowerCut() { s.cut.Arm(fault.CutSpec{}) }

// PowerCuts counts the cuts that have fired over the device lifetime.
func (s *SSD) PowerCuts() uint64 { return s.cut.Cuts() }

// PowerCutArmed reports whether a cut is scheduled and not yet fired.
func (s *SSD) PowerCutArmed() bool { return s.cut.Armed() && !s.cut.Struck() }

// Dead reports whether the device lost power and awaits Remount.
func (s *SSD) Dead() bool { return s.dead }

// CapturePowerLoss runs fn, converting a nand.PowerLoss panic — an armed
// cut firing mid-operation — into a returned value and marking the
// device dead (Submit returns ErrPowerLost until Remount). Any other
// panic, and fn's ordinary error, pass through untouched. Returns
// (nil, fn's error) when no cut fired.
func (s *SSD) CapturePowerLoss(fn func() error) (loss *nand.PowerLoss, err error) {
	defer func() {
		if r := recover(); r != nil {
			pl, ok := r.(nand.PowerLoss)
			if !ok {
				panic(r)
			}
			s.dead = true
			loss = &pl
			err = nil
		}
	}()
	return nil, fn()
}

// Remount models the post-crash boot: scan every block's surviving media
// state (write pointers, lock flags, payload residue, spare-area stamps)
// and hand it to ftl.Restore, which rebuilds the mapping tables and
// re-runs the recovery ladder. The old FTL — mapping state, stats, file
// annotations — is discarded wholesale, exactly as a real controller's
// RAM would be. Recovery work is issued on the device timelines starting
// at `at` (clamped up to the pre-cut makespan), and the closed-loop
// window restarts there. Remount on a healthy device is legal and
// idempotent: a second remount finds only the state the first one left.
//
// To keep audit continuity across the crash, build the device with a
// trace collector: physical page ids are stable, so T_insecure windows
// opened before the cut close when the recovery pass destroys the data.
func (s *SSD) Remount(at sim.Micros) error {
	s.Drain()
	if s.oracle != nil {
		// Resynchronize the fault oracle's draw-gating mirror from the
		// settled media before the scan: the mirror is maintained
		// incrementally and should already agree, but remount is the
		// natural re-anchoring point — a real controller rebuilds all
		// RAM state here.
		s.oracle.rebuild(s.chips)
	}
	if at < s.makespan {
		at = s.makespan
	}
	scan := ftl.MediaScan{
		Blocks: make([]ftl.BlockScan, s.geo.TotalBlocks()),
		Pages:  make([]ftl.PageScan, s.geo.TotalPages()),
	}
	for block := 0; block < s.geo.TotalBlocks(); block++ {
		chip := s.chips[s.geo.ChipOfBlock(block)]
		b := s.geo.BlockInChip(block)
		locked, err := chip.IsBlockLocked(b, at)
		if err != nil {
			return fmt.Errorf("ssd: remount scan block %d: %w", block, err)
		}
		scan.Blocks[block] = ftl.BlockScan{WritePtr: chip.WritePointer(b), Locked: locked}
		first := int(s.geo.FirstPPA(block))
		for pg := 0; pg < s.geo.PagesPerBlock; pg++ {
			pr, err := chip.ProbePage(nand.PageAddr{Block: b, Page: pg}, at)
			if err != nil {
				return fmt.Errorf("ssd: remount scan page %d of block %d: %w", pg, block, err)
			}
			scan.Pages[first+pg] = ftl.PageScan{
				Programmed: pr.Programmed,
				Locked:     pr.Locked,
				HasMeta:    pr.Meta.Valid,
				LPA:        pr.Meta.LPA,
				Seq:        pr.Meta.Seq,
				Secure:     pr.Meta.Secure,
				NonZero:    pr.NonZero,
			}
		}
	}
	f, err := ftl.Restore(s.ftlConfig(), s, s.cfg.Policy, scan, at)
	if err != nil {
		return err
	}
	s.ftl = f
	s.dead = false
	for i := range s.window {
		s.window[i] = at
	}
	s.wIdx = 0
	if at > s.makespan {
		s.makespan = at
	}
	return nil
}
