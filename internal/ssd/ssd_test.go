package ssd

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/blockio"
	"repro/internal/ftl"
	"repro/internal/nand"
	"repro/internal/nand/vth"
	"repro/internal/sanitize"
)

// smallConfig: 2 channels × 2 chips, 16 blocks × 8 TLC WLs (24 pages).
func smallConfig(policy ftl.Policy) Config {
	return Config{
		Channels:        2,
		ChipsPerChannel: 2,
		Chip: nand.Geometry{
			Blocks:          16,
			WLsPerBlock:     8,
			CellKind:        vth.TLC,
			PageBytes:       4096,
			FlagCells:       9,
			EnduranceCycles: 1000,
		},
		OverProvision:   0.25,
		GCFreeBlocksLow: 2,
		QueueDepth:      8,
		Policy:          policy,
		Seed:            7,
	}
}

func newSSD(t testing.TB, policy ftl.Policy) *SSD {
	t.Helper()
	s, err := New(smallConfig(policy))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	cfg := smallConfig(nil)
	if _, err := New(cfg); err == nil {
		t.Fatal("nil policy accepted")
	}
}

func TestDefaultConfigMatchesPaper(t *testing.T) {
	cfg := DefaultConfig(sanitize.SecSSD())
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := s.Geometry()
	if g.Chips != 8 {
		t.Fatalf("chips = %d, want 8 (2 channels × 4)", g.Chips)
	}
	if g.PagesPerBlock != 576 || g.BlocksPerChip != 428 {
		t.Fatalf("geometry %+v", g)
	}
	raw := int64(g.TotalPages()) * int64(g.PageBytes)
	if raw < 30<<30 || raw > 32<<30 {
		t.Fatalf("raw capacity %d bytes, want ≈32 GiB", raw)
	}
}

func TestWriteReadBackData(t *testing.T) {
	s := newSSD(t, sanitize.SecSSD())
	payload := make([]byte, 2*4096)
	rand.New(rand.NewSource(1)).Read(payload)
	s.MustSubmit(blockio.Request{Op: blockio.OpWrite, LPA: 10, Pages: 2, Data: payload})
	got0, err := s.ReadLogical(10)
	if err != nil {
		t.Fatal(err)
	}
	got1, err := s.ReadLogical(11)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got0, payload[:4096]) || !bytes.Equal(got1, payload[4096:]) {
		t.Fatal("read-back mismatch")
	}
}

func TestReadLogicalUnmapped(t *testing.T) {
	s := newSSD(t, sanitize.SecSSD())
	data, err := s.ReadLogical(5)
	if err != nil || data != nil {
		t.Fatalf("unmapped read = (%v, %v), want (nil, nil)", data, err)
	}
}

func TestDataSurvivesGC(t *testing.T) {
	s := newSSD(t, sanitize.SecSSD())
	// Write a marker file, then churn the device so GC relocates it.
	marker := bytes.Repeat([]byte{0xCD}, 4096)
	s.MustSubmit(blockio.Request{Op: blockio.OpWrite, LPA: 0, Pages: 1, Data: marker})
	rng := rand.New(rand.NewSource(2))
	logical := int64(s.LogicalPages())
	for i := 0; i < int(logical)*4; i++ {
		lpa := 1 + rng.Int63n(logical-1)
		s.MustSubmit(blockio.Request{Op: blockio.OpWrite, LPA: lpa, Pages: 1})
	}
	if s.FTL().Stats().GCRuns == 0 {
		t.Fatal("workload did not trigger GC")
	}
	got, err := s.ReadLogical(0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, marker) {
		t.Fatal("GC lost or corrupted relocated data")
	}
}

// End-to-end security: delete a secured file, then dump every chip raw.
// The deleted content must be gone even though no erase happened.
func TestDeletedDataUnrecoverableFromRawChips(t *testing.T) {
	s := newSSD(t, sanitize.SecSSD())
	secret := bytes.Repeat([]byte("TOPSECRET!"), 400) // 4000 bytes
	s.MustSubmit(blockio.Request{Op: blockio.OpWrite, LPA: 3, Pages: 1, Data: secret})
	s.MustSubmit(blockio.Request{Op: blockio.OpTrim, LPA: 3, Pages: 1})
	if s.FTL().Stats().Erases != 0 {
		t.Fatal("trim should not have erased anything (locks are the point)")
	}
	for ci, chip := range s.Chips() {
		for b := 0; b < chip.Geometry().Blocks; b++ {
			for _, page := range chip.ForensicDump(b, 0) {
				if bytes.Contains(page, []byte("TOPSECRET!")) {
					t.Fatalf("secret recovered from chip %d block %d", ci, b)
				}
			}
		}
	}
}

// With the baseline policy the same attack succeeds — demonstrating the
// data versioning vulnerability the paper opens with.
func TestBaselineLeaksDeletedData(t *testing.T) {
	s := newSSD(t, sanitize.Baseline())
	secret := bytes.Repeat([]byte("TOPSECRET!"), 400)
	s.MustSubmit(blockio.Request{Op: blockio.OpWrite, LPA: 3, Pages: 1, Data: secret})
	s.MustSubmit(blockio.Request{Op: blockio.OpTrim, LPA: 3, Pages: 1})
	found := false
	for _, chip := range s.Chips() {
		for b := 0; b < chip.Geometry().Blocks; b++ {
			for _, page := range chip.ForensicDump(b, 0) {
				if bytes.Contains(page, []byte("TOPSECRET!")) {
					found = true
				}
			}
		}
	}
	if !found {
		t.Fatal("baseline SSD should leak trimmed data to a forensic dump")
	}
}

func TestClosedLoopTimeAdvances(t *testing.T) {
	s := newSSD(t, sanitize.Baseline())
	var last, prev int64
	for i := 0; i < 100; i++ {
		done := s.MustSubmit(blockio.Request{Op: blockio.OpWrite, LPA: int64(i), Pages: 1})
		prev = last
		last = int64(done)
		_ = prev
	}
	r := s.Report()
	if r.Requests != 100 {
		t.Fatalf("requests = %d", r.Requests)
	}
	if r.IOPS <= 0 {
		t.Fatal("IOPS must be positive")
	}
	if r.Elapsed <= 0 {
		t.Fatal("time must advance")
	}
}

func TestParallelismAcrossChips(t *testing.T) {
	// 4 chips: a burst of single-page writes must overlap across chips, so
	// the makespan is far below the serial sum.
	s := newSSD(t, sanitize.Baseline())
	const n = 64
	for i := 0; i < n; i++ {
		s.MustSubmit(blockio.Request{Op: blockio.OpWrite, LPA: int64(i), Pages: 1})
	}
	r := s.Report()
	serial := int64(n) * int64(nand.DefaultTiming().Prog)
	if int64(r.Elapsed) > serial/2 {
		t.Fatalf("elapsed %v vs serial %vµs: no parallelism", r.Elapsed, serial)
	}
}

func TestMarkExcludesPrefill(t *testing.T) {
	s := newSSD(t, sanitize.SecSSD())
	if err := s.Prefill(0.5, true); err != nil {
		t.Fatal(err)
	}
	s.Mark()
	pre := s.Report()
	if pre.Requests != 0 || pre.Stats.HostWrittenPages != 0 {
		t.Fatalf("report after Mark should be empty, got %+v", pre)
	}
	s.MustSubmit(blockio.Request{Op: blockio.OpWrite, LPA: 0, Pages: 1})
	r := s.Report()
	if r.Stats.HostWrittenPages != 1 {
		t.Fatalf("delta written = %d, want 1", r.Stats.HostWrittenPages)
	}
}

func TestPrefillValidation(t *testing.T) {
	s := newSSD(t, sanitize.Baseline())
	if err := s.Prefill(1.5, false); err == nil {
		t.Fatal("fraction > 1 accepted")
	}
	if err := s.Prefill(0.25, false); err != nil {
		t.Fatal(err)
	}
	mapped := 0
	for lpa := int64(0); lpa < int64(s.LogicalPages()); lpa++ {
		if s.FTL().Lookup(lpa) != ftl.NoPPA {
			mapped++
		}
	}
	want := int(float64(s.LogicalPages()) * 0.25)
	if mapped != want {
		t.Fatalf("prefill mapped %d pages, want %d", mapped, want)
	}
}

func TestSubmitErrorPropagates(t *testing.T) {
	s := newSSD(t, sanitize.Baseline())
	_, err := s.Submit(blockio.Request{Op: blockio.OpWrite, LPA: 1 << 40, Pages: 1})
	if err == nil {
		t.Fatal("out-of-range write accepted")
	}
	var e error = err
	if errors.Is(e, nil) {
		t.Fatal("impossible")
	}
}

// The headline comparison at small scale: secSSD ~ baseline, scrSSD
// slower, erSSD dramatically slower; same ordering for WAF.
func TestPolicyPerformanceOrdering(t *testing.T) {
	run := func(policy ftl.Policy) Report {
		s := newSSD(t, policy)
		if err := s.Prefill(0.75, true); err != nil {
			t.Fatal(err)
		}
		s.Mark()
		rng := rand.New(rand.NewSource(3))
		logical := int64(s.LogicalPages())
		for i := 0; i < 1500; i++ {
			lpa := rng.Int63n(logical)
			s.MustSubmit(blockio.Request{Op: blockio.OpWrite, LPA: lpa, Pages: 1})
		}
		return s.Report()
	}
	base := run(sanitize.Baseline())
	sec := run(sanitize.SecSSD())
	scr := run(sanitize.ScrSSD())
	er := run(sanitize.ErSSD())

	// 100%-secured single-page random overwrites are the worst case for
	// Evanesco (every host write pays one pLock and GC flushes batch
	// locks); the paper-scale Fig. 14 benches show the 90%+ averages.
	if sec.IOPS < base.IOPS*0.70 {
		t.Errorf("secSSD IOPS %.0f below 70%% of baseline %.0f", sec.IOPS, base.IOPS)
	}
	if scr.IOPS >= sec.IOPS {
		t.Errorf("scrSSD IOPS %.0f should trail secSSD %.0f", scr.IOPS, sec.IOPS)
	}
	if er.IOPS >= scr.IOPS {
		t.Errorf("erSSD IOPS %.0f should trail scrSSD %.0f", er.IOPS, scr.IOPS)
	}
	if er.WAF <= scr.WAF || scr.WAF <= sec.WAF {
		t.Errorf("WAF ordering wrong: er=%.2f scr=%.2f sec=%.2f", er.WAF, scr.WAF, sec.WAF)
	}
}

func TestSecSSDUsesLocksUnderChurn(t *testing.T) {
	s := newSSD(t, sanitize.SecSSD())
	if err := s.Prefill(0.75, true); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	logical := int64(s.LogicalPages())
	for i := 0; i < 2000; i++ {
		s.MustSubmit(blockio.Request{Op: blockio.OpWrite, LPA: rng.Int63n(logical), Pages: 1})
	}
	st := s.FTL().Stats()
	if st.PLocks == 0 {
		t.Fatal("expected pLocks under secured churn")
	}
	if st.BLocks == 0 {
		t.Fatal("expected bLocks from GC-drained blocks")
	}
	if st.SanitizeCopies != 0 {
		t.Fatal("Evanesco must not copy pages to sanitize")
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() Report {
		s := newSSD(t, sanitize.SecSSD())
		rng := rand.New(rand.NewSource(5))
		logical := int64(s.LogicalPages())
		for i := 0; i < 500; i++ {
			s.MustSubmit(blockio.Request{Op: blockio.OpWrite, LPA: rng.Int63n(logical), Pages: 1})
		}
		return s.Report()
	}
	a, b := run(), run()
	if a.Elapsed != b.Elapsed || a.Stats != b.Stats {
		t.Fatalf("nondeterministic simulation:\n%+v\n%+v", a, b)
	}
}

func TestLatencyPercentiles(t *testing.T) {
	s := newSSD(t, sanitize.SecSSD())
	if err := s.Prefill(0.6, true); err != nil {
		t.Fatal(err)
	}
	s.Mark()
	rng := rand.New(rand.NewSource(6))
	logical := int64(s.LogicalPages())
	for i := 0; i < 600; i++ {
		s.MustSubmit(blockio.Request{Op: blockio.OpWrite, LPA: rng.Int63n(logical), Pages: 1})
	}
	r := s.Report()
	if r.LatencyP50 <= 0 {
		t.Fatal("no latency sampled")
	}
	if !(r.LatencyP50 <= r.LatencyP99 && r.LatencyP99 <= r.LatencyMax) {
		t.Fatalf("percentile ordering: p50=%v p99=%v max=%v", r.LatencyP50, r.LatencyP99, r.LatencyMax)
	}
	// A single-page write cannot complete faster than tPROG.
	if r.LatencyP50 < float64(nand.DefaultTiming().Prog) {
		t.Fatalf("p50 latency %vµs below tPROG", r.LatencyP50)
	}
}

// SanitizeAll must leave every stale page unreadable and keep live data.
func TestSanitizeAll(t *testing.T) {
	s := newSSD(t, sanitize.Baseline()) // even a baseline device can be purged
	payload := bytes.Repeat([]byte{0xEE}, 512)
	s.MustSubmit(blockio.Request{Op: blockio.OpWrite, LPA: 0, Pages: 1, Data: payload})
	s.MustSubmit(blockio.Request{Op: blockio.OpWrite, LPA: 1, Pages: 1, Data: payload})
	s.MustSubmit(blockio.Request{Op: blockio.OpTrim, LPA: 1, Pages: 1})
	if err := s.SanitizeAll(); err != nil {
		t.Fatal(err)
	}
	// The stale copy of LPA 1 must be gone.
	g := s.Geometry()
	for p := 0; p < g.TotalPages(); p++ {
		ppa := ftl.PPA(p)
		if s.FTL().Status(ppa).Live() {
			continue
		}
		chip, a := s.addr(ppa)
		if res, err := s.chips[chip].Read(a, 0); err == nil {
			for _, b := range res.Data {
				if b != 0 {
					t.Fatalf("stale page %d readable after SanitizeAll", p)
				}
			}
		}
	}
	// Live data survives.
	got, err := s.ReadLogical(0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("SanitizeAll destroyed live data")
	}
}

func TestReplayTrace(t *testing.T) {
	s := newSSD(t, sanitize.SecSSD())
	trace := &blockio.Trace{
		PageBytes: 4096,
		Requests: []blockio.Request{
			{Op: blockio.OpWrite, LPA: 0, Pages: 4},
			{Op: blockio.OpRead, LPA: 0, Pages: 2},
			{Op: blockio.OpTrim, LPA: 0, Pages: 4},
			{Op: blockio.OpWrite, LPA: 1 << 40, Pages: 4},                     // beyond capacity: skipped
			{Op: blockio.OpWrite, LPA: int64(s.LogicalPages()) - 2, Pages: 8}, // clipped to 2
		},
	}
	n, err := s.Replay(trace)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("replayed %d requests, want 4 (one skipped)", n)
	}
	st := s.FTL().Stats()
	if st.HostWrittenPages != 6 { // 4 + clipped 2
		t.Fatalf("written pages %d, want 6", st.HostWrittenPages)
	}
	if st.PLocks == 0 {
		t.Fatal("trim of secured pages should have locked")
	}
}

// The channel bus is a shared resource: two chips on one channel cannot
// both transfer at the same instant, so a read burst against a single
// channel takes longer than the same burst spread over two channels.
func TestChannelBusContention(t *testing.T) {
	s := newSSD(t, sanitize.Baseline())
	// Fill a few pages on chips 0 and 1 (channel 0) and 2,3 (channel 1).
	for i := 0; i < 32; i++ {
		s.MustSubmit(blockio.Request{Op: blockio.OpWrite, LPA: int64(i), Pages: 1})
	}
	s.Mark()
	for i := 0; i < 32; i++ {
		s.MustSubmit(blockio.Request{Op: blockio.OpRead, LPA: int64(i), Pages: 1})
	}
	r := s.Report()
	// 32 reads over 4 chips: tREAD (80µs) overlaps, transfers (40µs)
	// serialize per channel: per channel 16 transfers = 640µs minimum.
	if int64(r.Elapsed) < 640 {
		t.Fatalf("read burst finished in %v, faster than the channel bus allows", r.Elapsed)
	}
}

// GC relocations stay on-chip via copyback by default; the ablation
// forces them over the bus and must not change WAF, only timing.
func TestCopybackAblation(t *testing.T) {
	run := func(noCopyback bool) Report {
		cfg := smallConfig(sanitize.Baseline())
		cfg.NoCopyback = noCopyback
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Prefill(0.8, true); err != nil {
			t.Fatal(err)
		}
		s.Mark()
		rng := rand.New(rand.NewSource(12))
		logical := int64(s.LogicalPages())
		for i := 0; i < 2000; i++ {
			s.MustSubmit(blockio.Request{Op: blockio.OpWrite, LPA: rng.Int63n(logical), Pages: 1})
		}
		return s.Report()
	}
	with := run(false)
	without := run(true)
	if with.Stats.Copybacks == 0 {
		t.Fatal("default config should use copyback for GC")
	}
	if without.Stats.Copybacks != 0 {
		t.Fatal("NoCopyback still issued copybacks")
	}
	if with.Stats.GCCopies != without.Stats.GCCopies {
		t.Fatalf("copyback changed GC work: %d vs %d", with.Stats.GCCopies, without.Stats.GCCopies)
	}
	if with.IOPS < without.IOPS {
		t.Errorf("copyback should not be slower (%.0f vs %.0f IOPS)", with.IOPS, without.IOPS)
	}
}
