package workload

import (
	"bytes"
	"testing"

	"repro/internal/blockio"
	"repro/internal/filesys"
	"repro/internal/sim"
)

// countingDev tallies request kinds.
type countingDev struct {
	reads, writes, trims    int
	readPages, writtenPages int64
	insecurePages, secPages int64
	minWrite, maxWrite      int32
}

func (d *countingDev) Submit(req blockio.Request) (sim.Micros, error) {
	switch req.Op {
	case blockio.OpRead:
		d.reads++
		d.readPages += int64(req.Pages)
	case blockio.OpWrite:
		d.writes++
		d.writtenPages += int64(req.Pages)
		if req.Insecure {
			d.insecurePages += int64(req.Pages)
		} else {
			d.secPages += int64(req.Pages)
		}
		if d.minWrite == 0 || req.Pages < d.minWrite {
			d.minWrite = req.Pages
		}
		if req.Pages > d.maxWrite {
			d.maxWrite = req.Pages
		}
	case blockio.OpTrim:
		d.trims++
	}
	return 0, nil
}

const pageBytes = 16 * KiB

func runGen(t *testing.T, prof Profile, secureFrac float64, pages uint64) (*Generator, *countingDev) {
	t.Helper()
	dev := &countingDev{}
	fs, err := filesys.New(dev, 64*1024, pageBytes) // 1 GiB logical
	if err != nil {
		t.Fatal(err)
	}
	g := NewGenerator(prof, fs, pageBytes, 42)
	g.SecureFraction = secureFrac
	if err := g.RunPages(pages); err != nil {
		t.Fatal(err)
	}
	return g, dev
}

func TestProfilesComplete(t *testing.T) {
	ps := Profiles()
	if len(ps) != 4 {
		t.Fatalf("%d profiles, want 4", len(ps))
	}
	names := map[string]bool{}
	for _, p := range ps {
		names[p.Name] = true
		if p.MinWrite <= 0 || p.MaxWrite < p.MinWrite {
			t.Errorf("%s: bad write range", p.Name)
		}
	}
	for _, want := range []string{"MailServer", "DBServer", "FileServer", "Mobile"} {
		if !names[want] {
			t.Errorf("missing profile %s", want)
		}
	}
}

func TestByName(t *testing.T) {
	p, err := ByName("DBServer")
	if err != nil || p.Name != "DBServer" {
		t.Fatalf("ByName: %v %v", p, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown name accepted")
	}
}

// Table 2 read:write request ratios, within tolerance.
func TestReadWriteRatios(t *testing.T) {
	cases := []struct {
		prof Profile
		want float64 // reads per write
		tol  float64
	}{
		{MailServer(), 1.0, 0.35},
		{DBServer(), 0.1, 0.07},
		{FileServer(), 0.75, 0.3},
		{Mobile(), 0.02, 0.04},
	}
	for _, c := range cases {
		g, dev := runGen(t, c.prof, 1.0, 40000)
		if dev.writes == 0 {
			t.Fatalf("%s: no writes", c.prof.Name)
		}
		ratio := float64(g.Reads) / float64(g.Writes)
		if ratio < c.want-c.tol || ratio > c.want+c.tol {
			t.Errorf("%s: r:w ratio %.3f, want %.2f±%.2f (reads=%d writes=%d)",
				c.prof.Name, ratio, c.want, c.tol, g.Reads, g.Writes)
		}
	}
}

// Table 2 write sizes: requests must fall inside the profile's range.
// Profiles with paired interleaved creates (Mobile) chunk their file
// writes into 8-page block-layer requests, so only the upper bound
// applies there.
func TestWriteSizeRanges(t *testing.T) {
	for _, prof := range Profiles() {
		_, dev := runGen(t, prof, 1.0, 20000)
		maxPages := int32((prof.MaxWrite + pageBytes - 1) / pageBytes)
		if dev.maxWrite > maxPages {
			t.Errorf("%s: max write %d pages above %d", prof.Name, dev.maxWrite, maxPages)
		}
		if prof.PairedCreates > 0 {
			continue
		}
		minPages := int32(prof.MinWrite / pageBytes)
		if minPages < 1 {
			minPages = 1
		}
		if dev.minWrite < minPages {
			t.Errorf("%s: min write %d pages below %d", prof.Name, dev.minWrite, minPages)
		}
	}
}

func TestDBServerOverwritesDominate(t *testing.T) {
	g, dev := runGen(t, DBServer(), 1.0, 30000)
	// Overwrites rewrite existing LPAs: trims stay rare because files are
	// rarely deleted.
	if dev.trims > int(g.Writes)/5 {
		t.Errorf("DBServer: %d trims for %d writes; deletes should be rare", dev.trims, g.Writes)
	}
}

func TestMobileDeletesChurn(t *testing.T) {
	g, dev := runGen(t, Mobile(), 1.0, 60000)
	if g.Deletes == 0 || dev.trims == 0 {
		t.Fatal("Mobile must delete pictures")
	}
	// Large files: the mean write must exceed 10 pages (160 KiB at 16 KiB
	// pages, given 0.5-8 MiB pictures).
	mean := float64(dev.writtenPages) / float64(dev.writes)
	if mean < 10 {
		t.Errorf("Mobile mean write %.1f pages, expected large picture writes", mean)
	}
}

func TestSecureFractionZeroAndOne(t *testing.T) {
	_, devAll := runGen(t, MailServer(), 1.0, 10000)
	if devAll.insecurePages != 0 {
		t.Fatal("SecureFraction=1.0 produced insecure writes")
	}
	_, devNone := runGen(t, MailServer(), 0.0, 10000)
	if devNone.secPages != 0 {
		t.Fatal("SecureFraction=0.0 produced secure writes")
	}
}

func TestSecureFractionMid(t *testing.T) {
	_, dev := runGen(t, MailServer(), 0.6, 30000)
	frac := float64(dev.secPages) / float64(dev.secPages+dev.insecurePages)
	if frac < 0.45 || frac > 0.75 {
		t.Errorf("secure fraction %.2f, want ≈0.6", frac)
	}
}

func TestGovernorHoldsUtilization(t *testing.T) {
	dev := &countingDev{}
	fs, _ := filesys.New(dev, 4096, pageBytes) // small: 64 MiB
	g := NewGenerator(Mobile(), fs, pageBytes, 1)
	if err := g.RunPages(40000); err != nil {
		t.Fatal(err)
	}
	util := 1 - float64(fs.FreePages())/float64(fs.TotalPages())
	if util > 0.95 {
		t.Fatalf("utilization %.2f: governor failed", util)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (uint64, uint64, uint64) {
		dev := &countingDev{}
		fs, _ := filesys.New(dev, 64*1024, pageBytes)
		g := NewGenerator(FileServer(), fs, pageBytes, 99)
		if err := g.RunPages(20000); err != nil {
			t.Fatal(err)
		}
		return g.Reads, g.Writes, g.PagesWritten
	}
	r1, w1, p1 := run()
	r2, w2, p2 := run()
	if r1 != r2 || w1 != w2 || p1 != p2 {
		t.Fatal("generator is not deterministic under a fixed seed")
	}
}

func TestRunPagesWritesAtLeast(t *testing.T) {
	g, _ := runGen(t, MailServer(), 1.0, 5000)
	if g.PagesWritten < 5000 {
		t.Fatalf("PagesWritten = %d, want >= 5000", g.PagesWritten)
	}
}

func TestRecordProducesValidTrace(t *testing.T) {
	trace, err := Record(MailServer(), 32*1024, pageBytes, 5000, 0.8, 5)
	if err != nil {
		t.Fatal(err)
	}
	if trace.Name != "MailServer" || trace.PageBytes != pageBytes {
		t.Fatalf("trace header %q %d", trace.Name, trace.PageBytes)
	}
	s := trace.Summarize()
	if s.WrittenPages < 5000 {
		t.Fatalf("recorded %d written pages, want >= 5000", s.WrittenPages)
	}
	if s.InsecureWrites == 0 {
		t.Fatal("secure fraction 0.8 should yield some insecure writes")
	}
	for _, r := range trace.Requests {
		if err := r.Validate(); err != nil {
			t.Fatalf("invalid recorded request: %v", err)
		}
	}
	// Round-trips through the binary format.
	var buf bytes.Buffer
	if _, err := trace.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := blockio.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Requests) != len(trace.Requests) {
		t.Fatal("trace round trip lost requests")
	}
}
