// Package workload generates the four benchmark workloads of the paper's
// evaluation (Table 2) as file-level operation streams over the emulated
// file system:
//
//	MailServer  — r:w 1:1,  create/append/delete e-mails, 16–32 KiB writes
//	DBServer    — r:w 1:10, overwrite data and log files,  16–256 KiB
//	FileServer  — r:w 3:4,  create/append/delete files,    32–128 KiB
//	Mobile      — r:w 1:50, create/delete pictures,        0.5–8 MiB
//
// Each generator is a seeded, deterministic mixture over {read, create,
// append, overwrite, delete} with the paper's write-size ranges, plus a
// space governor that keeps the file system at its target utilization so
// runs reach GC steady state.
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/blockio"
	"repro/internal/filesys"
	"repro/internal/sim"
)

// KiB and MiB sizes for the write-size tables.
const (
	KiB = 1024
	MiB = 1024 * 1024
)

// Profile defines one workload's operation mixture.
type Profile struct {
	Name string
	// Operation weights (relative).
	WRead, WCreate, WAppend, WOverwrite, WDelete int
	// Write size range in bytes (uniform).
	MinWrite, MaxWrite int
	// TargetUtilization is the fraction of logical space the governor
	// tries to hold the file system at (deletes are forced above it).
	TargetUtilization float64
	// MaxFiles is the minimum cap on the live-file population; the
	// generator raises it so the population can actually fill the target
	// utilization of the device it runs against (a fixed cap would
	// plateau far below the target on large devices).
	MaxFiles int
	// KeepFraction is the probability a created file is never deleted
	// (write-once content such as kept photos). Such files stay
	// uni-version and only acquire invalid copies through GC, the §3
	// "UV file" population.
	KeepFraction float64
	// PairedCreates is the probability a create produces two files whose
	// writes interleave in 8-page chunks (burst photos, file + sidecar).
	// Interleaving mixes files within flash blocks, so deleting one
	// later forces GC to relocate the survivor — the mechanism behind
	// the paper's nonzero UV-file VAF.
	PairedCreates float64
}

// MailServer returns the mail-server profile.
func MailServer() Profile {
	return Profile{
		Name:  "MailServer",
		WRead: 35, WCreate: 25, WAppend: 10, WOverwrite: 0, WDelete: 20,
		MinWrite: 16 * KiB, MaxWrite: 32 * KiB,
		TargetUtilization: 0.85,
		MaxFiles:          4096,
	}
}

// DBServer returns the database-server profile.
func DBServer() Profile {
	return Profile{
		Name:  "DBServer",
		WRead: 8, WCreate: 2, WAppend: 6, WOverwrite: 80, WDelete: 1,
		MinWrite: 16 * KiB, MaxWrite: 256 * KiB,
		TargetUtilization: 0.85,
		MaxFiles:          512,
	}
}

// FileServer returns the file-server profile.
func FileServer() Profile {
	return Profile{
		Name:  "FileServer",
		WRead: 33, WCreate: 24, WAppend: 20, WOverwrite: 0, WDelete: 23,
		MinWrite: 32 * KiB, MaxWrite: 128 * KiB,
		TargetUtilization: 0.85,
		MaxFiles:          4096,
	}
}

// Mobile returns the smartphone profile (camera-roll style).
func Mobile() Profile {
	return Profile{
		Name:  "Mobile",
		WRead: 1, WCreate: 50, WAppend: 10, WOverwrite: 0, WDelete: 39,
		MinWrite: 512 * KiB, MaxWrite: 8 * MiB,
		TargetUtilization: 0.85,
		MaxFiles:          2048,
		KeepFraction:      0.25,
		PairedCreates:     0.5,
	}
}

// Profiles returns the paper's four workloads in evaluation order.
func Profiles() []Profile {
	return []Profile{MailServer(), DBServer(), FileServer(), Mobile()}
}

// ByName resolves a profile by its Table 2 name.
func ByName(name string) (Profile, error) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("workload: unknown profile %q", name)
}

// Generator drives a file system with a profile's operation mixture.
type Generator struct {
	prof Profile
	fs   *filesys.FS
	rng  *rand.Rand
	// SecureFraction is the probability a new file requires sanitization
	// (1.0 = everything secured, the Fig. 14(a)(b) default).
	SecureFraction float64

	pageBytes int
	files     []*filesys.File
	protected map[uint64]bool
	seq       uint64

	// Counters for ratio verification.
	Reads, Writes, Deletes uint64
	PagesWritten           uint64
}

// NewGenerator builds a generator over fs.
func NewGenerator(prof Profile, fs *filesys.FS, pageBytes int, seed int64) *Generator {
	// Scale the file-population cap to the device: enough files of the
	// profile's mean write size to reach the target utilization, plus
	// slack for churn.
	avgPages := float64(prof.MinWrite+prof.MaxWrite) / 2 / float64(pageBytes)
	if avgPages < 1 {
		avgPages = 1
	}
	needed := int(prof.TargetUtilization*float64(fs.TotalPages())/avgPages) + 8
	if needed > prof.MaxFiles {
		prof.MaxFiles = needed
	}
	return &Generator{
		prof:           prof,
		fs:             fs,
		rng:            rand.New(rand.NewSource(seed)),
		SecureFraction: 1.0,
		pageBytes:      pageBytes,
		protected:      map[uint64]bool{},
	}
}

// Profile returns the generator's profile.
func (g *Generator) Profile() Profile { return g.prof }

// writePages draws a write size in pages.
func (g *Generator) writePages() int {
	bytes := g.prof.MinWrite
	if g.prof.MaxWrite > g.prof.MinWrite {
		bytes += g.rng.Intn(g.prof.MaxWrite - g.prof.MinWrite + 1)
	}
	pages := (bytes + g.pageBytes - 1) / g.pageBytes
	if pages < 1 {
		pages = 1
	}
	return pages
}

// Step performs one workload operation. It returns the number of host
// pages written by the step (0 for reads/deletes).
func (g *Generator) Step() (int, error) {
	// Space governor: force deletes above the utilization target so the
	// device reaches a GC steady state instead of running out of space.
	util := 1 - float64(g.fs.FreePages())/float64(g.fs.TotalPages())
	if util > g.prof.TargetUtilization && len(g.files) > 0 {
		return 0, g.deleteOne()
	}

	total := g.prof.WRead + g.prof.WCreate + g.prof.WAppend + g.prof.WOverwrite + g.prof.WDelete
	r := g.rng.Intn(total)
	switch {
	case r < g.prof.WRead:
		return 0, g.readOne()
	case r < g.prof.WRead+g.prof.WCreate:
		return g.createOne()
	case r < g.prof.WRead+g.prof.WCreate+g.prof.WAppend:
		return g.appendOne()
	case r < g.prof.WRead+g.prof.WCreate+g.prof.WAppend+g.prof.WOverwrite:
		return g.overwriteOne()
	default:
		return 0, g.deleteOne()
	}
}

// Fill grows the file population with creates and appends only (no
// deletes, reads, or overwrites) until the file system reaches the given
// utilization — the paper's "initially fill 75% of the storage capacity"
// phase. Normal Step() traffic should follow.
func (g *Generator) Fill(utilization float64) error {
	for {
		used := float64(g.fs.TotalPages() - g.fs.FreePages())
		if used >= utilization*float64(g.fs.TotalPages()) {
			return nil
		}
		var err error
		if len(g.files) < g.prof.MaxFiles && g.rng.Intn(3) > 0 {
			_, err = g.createOne()
		} else {
			_, err = g.appendOne()
		}
		if err != nil {
			return err
		}
	}
}

// RunPages steps the generator until at least pages host pages have been
// written (the paper sizes runs by written volume, e.g. "until the total
// written data size exceeds 64 GiB").
func (g *Generator) RunPages(pages uint64) error {
	start := g.PagesWritten
	for g.PagesWritten-start < pages {
		if _, err := g.Step(); err != nil {
			return err
		}
	}
	return nil
}

func (g *Generator) pick() *filesys.File {
	if len(g.files) == 0 {
		return nil
	}
	return g.files[g.rng.Intn(len(g.files))]
}

func (g *Generator) readOne() error {
	f := g.pick()
	if f == nil || f.Pages() == 0 {
		return nil // nothing to read yet; not an error
	}
	g.Reads++
	n := g.writePages()
	if n > f.Pages() {
		n = f.Pages()
	}
	off := 0
	if f.Pages() > n {
		off = g.rng.Intn(f.Pages() - n + 1)
	}
	return g.fs.Read(f, off, n)
}

func (g *Generator) createOne() (int, error) {
	if len(g.files) >= g.prof.MaxFiles {
		return g.appendOne()
	}
	if g.prof.PairedCreates > 0 && g.rng.Float64() < g.prof.PairedCreates {
		return g.createPair()
	}
	pages := g.writePages()
	if int64(pages) > g.fs.FreePages() {
		return 0, g.deleteOne()
	}
	f, err := g.newFile()
	if err != nil {
		return 0, err
	}
	if err := g.fs.Append(f, pages); err != nil {
		return 0, err
	}
	g.Writes++
	g.PagesWritten += uint64(pages)
	return pages, nil
}

// newFile creates and registers an empty file with the profile's flag
// and protection draws.
func (g *Generator) newFile() (*filesys.File, error) {
	g.seq++
	var flags filesys.OpenFlag
	if g.rng.Float64() >= g.SecureFraction {
		flags |= filesys.OInsec
	}
	f, err := g.fs.Create(fmt.Sprintf("%s-%08d", g.prof.Name, g.seq), flags)
	if err != nil {
		return nil, err
	}
	g.files = append(g.files, f)
	if g.prof.KeepFraction > 0 && g.rng.Float64() < g.prof.KeepFraction {
		g.protected[f.ID] = true
	}
	return f, nil
}

// createPair writes two new files in alternating 8-page chunks so their
// pages share flash blocks.
func (g *Generator) createPair() (int, error) {
	const chunk = 8
	sizes := [2]int{g.writePages(), g.writePages()}
	if int64(sizes[0]+sizes[1]) > g.fs.FreePages() {
		return 0, g.deleteOne()
	}
	var fs [2]*filesys.File
	for i := range fs {
		f, err := g.newFile()
		if err != nil {
			return 0, err
		}
		fs[i] = f
	}
	total := 0
	remaining := sizes
	for remaining[0] > 0 || remaining[1] > 0 {
		for i := range fs {
			n := chunk
			if n > remaining[i] {
				n = remaining[i]
			}
			if n == 0 {
				continue
			}
			if err := g.fs.Append(fs[i], n); err != nil {
				return total, err
			}
			remaining[i] -= n
			total += n
		}
	}
	g.Writes += 2
	g.PagesWritten += uint64(total)
	return total, nil
}

func (g *Generator) appendOne() (int, error) {
	f := g.pick()
	if f == nil {
		return g.createOne()
	}
	pages := g.writePages()
	if int64(pages) > g.fs.FreePages() {
		return 0, g.deleteOne()
	}
	if err := g.fs.Append(f, pages); err != nil {
		return 0, err
	}
	g.Writes++
	g.PagesWritten += uint64(pages)
	return pages, nil
}

func (g *Generator) overwriteOne() (int, error) {
	f := g.pick()
	if f == nil || f.Pages() == 0 {
		return g.createOne()
	}
	pages := g.writePages()
	if pages > f.Pages() {
		pages = f.Pages()
	}
	off := 0
	if f.Pages() > pages {
		off = g.rng.Intn(f.Pages() - pages + 1)
	}
	if err := g.fs.Overwrite(f, off, pages); err != nil {
		return 0, err
	}
	g.Writes++
	g.PagesWritten += uint64(pages)
	return pages, nil
}

func (g *Generator) deleteOne() error {
	if len(g.files) == 0 {
		return nil
	}
	// Try a few draws to find a non-protected victim; keep-forever files
	// are spared unless nothing else exists.
	for attempt := 0; attempt < 8; attempt++ {
		i := g.rng.Intn(len(g.files))
		f := g.files[i]
		if g.protected[f.ID] && attempt < 7 {
			continue
		}
		g.files = append(g.files[:i], g.files[i+1:]...)
		delete(g.protected, f.ID)
		g.Deletes++
		return g.fs.Delete(f)
	}
	return nil
}

// recorder captures the block-I/O stream a generator produces.
type recorder struct {
	trace *blockio.Trace
}

func (r *recorder) Submit(req blockio.Request) (sim.Micros, error) {
	r.trace.Requests = append(r.trace.Requests, req)
	return 0, nil
}

// Record runs a profile against a virtual device of logicalPages pages
// and captures the resulting block-I/O request stream as a replayable
// trace (writes carry no payload — traces are timing-only).
func Record(prof Profile, logicalPages int64, pageBytes int, pages uint64, secureFraction float64, seed int64) (*blockio.Trace, error) {
	rec := &recorder{trace: &blockio.Trace{Name: prof.Name, PageBytes: pageBytes}}
	fs, err := filesys.New(rec, logicalPages, pageBytes)
	if err != nil {
		return nil, err
	}
	gen := NewGenerator(prof, fs, pageBytes, seed)
	gen.SecureFraction = secureFraction
	if err := gen.RunPages(pages); err != nil {
		return nil, err
	}
	return rec.trace, nil
}
