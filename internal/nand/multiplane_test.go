package nand

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/fault"
	"repro/internal/nand/vth"
)

// twoPlaneGeo splits smallGeo's 8 blocks into 2 planes (even blocks on
// plane 0, odd on plane 1).
func twoPlaneGeo() Geometry {
	g := smallGeo()
	g.Planes = 2
	return g
}

func newPlaneChip(t *testing.T, opts ...Option) *Chip {
	t.Helper()
	c, err := New(twoPlaneGeo(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestPlaneGeometry(t *testing.T) {
	g := twoPlaneGeo()
	if g.PlaneCount() != 2 {
		t.Fatalf("PlaneCount = %d, want 2", g.PlaneCount())
	}
	// Blocks interleave round-robin across planes.
	for b := 0; b < g.Blocks; b++ {
		if got := g.PlaneOf(b); got != b%2 {
			t.Fatalf("PlaneOf(%d) = %d, want %d", b, got, b%2)
		}
	}
	// Zero planes means one plane (the pre-multi-plane default).
	if (Geometry{}).PlaneCount() != 1 {
		t.Fatal("zero-value plane count must default to 1")
	}
	// Plane count must divide the block count.
	bad := smallGeo()
	bad.Planes = 3
	if _, err := New(bad); err == nil {
		t.Fatal("8 blocks across 3 planes accepted")
	}
	neg := smallGeo()
	neg.Planes = -1
	if _, err := New(neg); err == nil {
		t.Fatal("negative plane count accepted")
	}
}

func TestProgramMultiSharesOneProg(t *testing.T) {
	c := newPlaneChip(t)
	addrs := []PageAddr{{Block: 0, Page: 0}, {Block: 1, Page: 0}}
	datas := [][]byte{[]byte("plane-zero"), []byte("plane-one")}
	lat, errs, err := c.ProgramMulti(addrs, datas, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range errs {
		if e != nil {
			t.Fatalf("page %d: %v", i, e)
		}
	}
	if lat != DefaultTiming().Prog {
		t.Fatalf("multi-plane program latency %v, want one tPROG (%v)", lat, DefaultTiming().Prog)
	}
	if c.OpCount(OpProgramMulti) != 1 {
		t.Fatalf("OpProgramMulti count = %d, want 1", c.OpCount(OpProgramMulti))
	}
	for i, a := range addrs {
		if got := mustRead(t, c, a).Data; !bytes.Equal(got, datas[i]) {
			t.Fatalf("plane %d read-back mismatch", i)
		}
	}
}

func TestProgramMultiPerPageOutcomes(t *testing.T) {
	c := newPlaneChip(t)
	// Block 1 page 0 is skipped, so programming page 1 there violates
	// append order — that outcome must be per-page, not fatal.
	mustProgram(t, c, PageAddr{Block: 0, Page: 0}, []byte("a"))
	_, errs, err := c.ProgramMulti(
		[]PageAddr{{Block: 0, Page: 1}, {Block: 1, Page: 1}},
		[][]byte{[]byte("b"), []byte("c")}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if errs[0] != nil {
		t.Fatalf("in-order page failed: %v", errs[0])
	}
	if !errors.Is(errs[1], ErrOutOfOrder) {
		t.Fatalf("out-of-order page: err = %v, want ErrOutOfOrder", errs[1])
	}
}

func TestMultiPlaneAddressDiscipline(t *testing.T) {
	c := newPlaneChip(t)
	data := [][]byte{[]byte("x"), []byte("y")}
	// Two pages on the same plane must be rejected wholesale.
	if _, _, err := c.ProgramMulti([]PageAddr{{Block: 0, Page: 0}, {Block: 2, Page: 0}}, data, 0); !errors.Is(err, ErrBadAddress) {
		t.Fatalf("same-plane pair: err = %v, want ErrBadAddress", err)
	}
	if _, _, err := c.ReadMulti([]PageAddr{{Block: 1, Page: 0}, {Block: 3, Page: 0}}, 0); !errors.Is(err, ErrBadAddress) {
		t.Fatalf("same-plane read pair: err = %v, want ErrBadAddress", err)
	}
	// More addresses than planes, and empty vectors, are malformed.
	if _, _, err := c.ReadMulti([]PageAddr{{0, 0}, {1, 0}, {2, 0}}, 0); !errors.Is(err, ErrBadAddress) {
		t.Fatalf("3 addrs on 2 planes: err = %v, want ErrBadAddress", err)
	}
	if _, _, err := c.ReadMulti(nil, 0); !errors.Is(err, ErrBadAddress) {
		t.Fatalf("empty vector: err = %v, want ErrBadAddress", err)
	}
	if _, _, err := c.ProgramMulti([]PageAddr{{0, 0}}, data, 0); err == nil {
		t.Fatal("mismatched addrs/datas lengths accepted")
	}
}

func TestReadMultiSharesOneRead(t *testing.T) {
	c := newPlaneChip(t)
	mustProgram(t, c, PageAddr{Block: 0, Page: 0}, []byte("p0"))
	mustProgram(t, c, PageAddr{Block: 1, Page: 0}, []byte("p1"))
	mustPLock(t, c, PageAddr{Block: 1, Page: 0})
	lat, errs, err := c.ReadMulti([]PageAddr{{Block: 0, Page: 0}, {Block: 1, Page: 0}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if lat != DefaultTiming().Read {
		t.Fatalf("multi-plane read latency %v, want one tREAD (%v)", lat, DefaultTiming().Read)
	}
	if errs[0] != nil {
		t.Fatalf("readable plane errored: %v", errs[0])
	}
	// Lock outcomes surface per page through the grouped path too.
	if !errors.Is(errs[1], ErrPageLocked) {
		t.Fatalf("locked plane: err = %v, want ErrPageLocked", errs[1])
	}
}

// PLockWL is the §5 SBPI batch: one pulse, many flag groups.
func TestPLockWLLocksSelectedSlots(t *testing.T) {
	c := newTestChip(t)
	payloads := [][]byte{[]byte("lsb"), []byte("csb"), []byte("msb")}
	for i, p := range payloads {
		mustProgram(t, c, PageAddr{Block: 0, Page: i}, p)
	}
	before := c.blocks[0].wlDisturbs[0]
	lat, err := c.PLockWL(0, 0, []int{0, 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if lat != DefaultTiming().PLock {
		t.Fatalf("batched pulse latency %v, want one tpLock (%v)", lat, DefaultTiming().PLock)
	}
	// One pulse = one program disturb, however many groups it committed.
	if got := c.blocks[0].wlDisturbs[0]; got != before+1 {
		t.Fatalf("disturbs rose by %d, want 1", got-before)
	}
	for i := range payloads {
		res, err := c.Read(PageAddr{Block: 0, Page: i}, 0)
		if i == 1 {
			if err != nil || !bytes.Equal(res.Data, payloads[1]) {
				t.Fatalf("inhibited slot was disturbed: %v", err)
			}
			continue
		}
		if !errors.Is(err, ErrPageLocked) {
			t.Fatalf("slot %d: err = %v, want ErrPageLocked", i, err)
		}
	}
}

func TestPLockWLIdempotentIsChargedNoop(t *testing.T) {
	c := newTestChip(t)
	mustProgram(t, c, PageAddr{Block: 0, Page: 0}, []byte("x"))
	if _, err := c.PLockWL(0, 0, []int{0}, 0); err != nil {
		t.Fatal(err)
	}
	d := c.blocks[0].wlDisturbs[0]
	lat, err := c.PLockWL(0, 0, []int{0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if lat != DefaultTiming().PLock {
		t.Fatalf("charged no-op latency %v, want tpLock", lat)
	}
	if c.blocks[0].wlDisturbs[0] != d {
		t.Fatal("no-op pulse must not disturb the wordline again")
	}
}

func TestPLockWLValidation(t *testing.T) {
	c := newTestChip(t)
	if _, err := c.PLockWL(99, 0, []int{0}, 0); !errors.Is(err, ErrBadAddress) {
		t.Fatalf("bad block: %v", err)
	}
	if _, err := c.PLockWL(0, 99, []int{0}, 0); !errors.Is(err, ErrBadAddress) {
		t.Fatalf("bad wordline: %v", err)
	}
	if _, err := c.PLockWL(0, 0, []int{3}, 0); !errors.Is(err, ErrBadAddress) {
		t.Fatalf("slot beyond PagesPerWL: %v", err)
	}
}

// A failed batched pulse commits nothing: every requested page stays
// readable and a per-page retry can still succeed (unlike the
// single-page one-shot, whose flag cells are spent by failure).
func TestFaultPLockWLAtomicFailure(t *testing.T) {
	c, err := New(Geometry{
		Blocks: 4, WLsPerBlock: 4, CellKind: vth.TLC,
		PageBytes: 64, FlagCells: 9, EnduranceCycles: 1000,
	}, WithSeed(1), WithFaults(fault.New(fault.Config{PLockFail: 1, Seed: 1}, 0)))
	if err != nil {
		t.Fatal(err)
	}
	payloads := [][]byte{[]byte("l"), []byte("c"), []byte("m")}
	for i, p := range payloads {
		mustProgram(t, c, PageAddr{Block: 0, Page: i}, p)
	}
	if _, err := c.PLockWL(0, 0, []int{0, 1, 2}, 0); !errors.Is(err, ErrPLockFailed) {
		t.Fatalf("err = %v, want ErrPLockFailed", err)
	}
	for i, p := range payloads {
		res, err := c.Read(PageAddr{Block: 0, Page: i}, 0)
		if err != nil || !bytes.Equal(res.Data, p) {
			t.Fatalf("page %d not readable after failed batch: %v", i, err)
		}
	}
	if n := c.FaultCounts().PLockFails; n != 1 {
		t.Fatalf("PLockFails = %d, want 1 (one draw per pulse)", n)
	}
}
