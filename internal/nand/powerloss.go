package nand

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/sim"
)

// PowerLoss is the panic value a chip throws when the device's armed
// power-cut schedule (fault.CutState) strikes at the start of a
// mutating operation. By the time it is thrown the chip has already
// applied the interrupted op's partial power-loss semantics:
//
//	Program  — the page is consumed (write pointer advanced) and holds
//	           a torn copy of the payload: the front half survives, the
//	           tail is mangled. No OOB metadata was stamped — the FTL
//	           never regained control.
//	PLock    — the one-shot flag pulse did not complete: the majority
//	           circuit still reads the flag enabled, the page stays
//	           readable. The wordline took its program disturb.
//	PLockWL  — atomic all-or-none, same as an injected batch failure:
//	           every requested flag is left unprogrammed and readable.
//	BLock    — the SSL cells did not reach the disable threshold; the
//	           block stays readable.
//	Erase    — nothing was destroyed: data, pAP flags and SSL state
//	           survive intact (the conservative, attacker-favourable
//	           reading of an interrupted tBERS).
//	Scrub    — the wordline reprogram did not complete; the WL's data
//	           survives intact.
//
// Everything the controller held in RAM is lost with the rail: the
// panic unwinds through the FTL, and the coordinator that recovers it
// (ssd.CapturePowerLoss) marks the device dead until Remount rebuilds
// the mapping state from the surviving media.
type PowerLoss struct {
	// Op is the interrupted operation.
	Op OpKind
	// Addr locates the interrupted op: the page for page ops, Page = -1
	// for block-granularity ops (Erase, BLock).
	Addr PageAddr
	// At is the simulated time the rail collapsed.
	At sim.Micros
}

func (p PowerLoss) String() string {
	return fmt.Sprintf("nand: power loss during %v at %v (t=%dµs)", p.Op, p.Addr, int64(p.At))
}

// WithPowerCut attaches the device-wide power-cut schedule. Every chip
// of a device shares one CutState so the strike point is a property of
// the device-global op sequence, not of any single chip.
func WithPowerCut(cs *fault.CutState) Option {
	return func(c *Chip) { c.cut = cs }
}

// strike reports whether the armed power-cut schedule fires at the
// start of an op of the given kind. At most one strike fires per armed
// schedule.
func (c *Chip) strike(op fault.CutOp) bool {
	return c.cut != nil && c.cut.Strike(op)
}

// tearPayload applies the torn-write shape of an interrupted program
// pulse: the pulse charged a prefix of the cells before the rail
// collapsed, so the front half of the payload survives and the tail —
// from a deterministically drawn split point — is mangled. Mirrors
// fault.Injector.CorruptTail but draws from the CutState's private
// stream so a cut perturbs no fault schedule.
func (c *Chip) tearPayload(data []byte) {
	if len(data) == 0 {
		return
	}
	half := len(data) / 2
	start := half + int(c.cut.Rand()%uint64(half+1))
	for i := start; i < len(data); i++ {
		data[i] ^= byte(c.cut.Rand() | 1)
	}
}
