// Package nand models a 3D NAND flash chip extended with the Evanesco
// lock commands. It implements the full command set the paper's SecureSSD
// needs:
//
//	Read, Program, Erase        — standard flash operations
//	PLock                       — disable one page (pAP flag, §5.3)
//	BLock                       — disable a whole block (bAP/SSL, §5.4)
//	Scrub, OSR                  — the baseline physical-sanitization ops
//
// The chip enforces the paper's security semantics on-chip: a read of a
// locked page (or of any page in a locked block) returns all-zero data no
// matter which interface issues it, and locks can only be cleared by a
// physical block erase, which destroys the data first.
//
// Each wordline tracks its operating history (P/E cycles, program time,
// program disturbs, open interval) so reads can consult the vth cell
// model for reliability queries and optional error injection.
package nand

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/fault"
	"repro/internal/nand/vth"
	"repro/internal/sim"
)

// Errors returned by chip operations.
var (
	ErrBadAddress    = errors.New("nand: address out of range")
	ErrNotErased     = errors.New("nand: programming a non-erased page")
	ErrOutOfOrder    = errors.New("nand: pages of a block must be programmed in order")
	ErrPageLocked    = errors.New("nand: page is locked (pAP disabled)")
	ErrBlockLocked   = errors.New("nand: block is locked (bAP disabled)")
	ErrUncorrectable = errors.New("nand: raw bit errors exceed ECC correction capability")
	ErrWornOut       = errors.New("nand: block exceeded its endurance rating")

	// Injected operation failures (see internal/fault). The op consumed
	// its full latency and — for ErrProgramFailed — its page before
	// failing; the FTL's recovery ladder decides what happens next.
	ErrProgramFailed = errors.New("nand: program operation failed (status FAIL)")
	ErrEraseFailed   = errors.New("nand: erase operation failed (status FAIL)")
	ErrPLockFailed   = errors.New("nand: pLock flag program failed (status FAIL)")
	ErrBLockFailed   = errors.New("nand: bLock SSL program failed (status FAIL)")
)

// Geometry fixes the chip's physical layout. The defaults mirror the
// SecureSSD configuration in §7: 428 blocks of 192 TLC wordlines
// (576 pages) with 16-KiB pages.
type Geometry struct {
	Blocks      int
	WLsPerBlock int
	CellKind    vth.CellKind
	PageBytes   int
	// Planes is the number of planes the die's blocks are interleaved
	// across (block b lives in plane b mod Planes). Multi-plane commands
	// (ProgramMulti, ReadMulti) operate on one page per plane, sharing a
	// single cell-activity interval. 0 is treated as 1 (single-plane).
	Planes int
	// FlagCells is k, the number of spare flash cells backing one pAP
	// flag (the paper selects k = 9).
	FlagCells int
	// EnduranceCycles is the rated P/E endurance (1K for TLC).
	EnduranceCycles int
}

// DefaultGeometry returns the paper's SecureSSD chip geometry.
func DefaultGeometry() Geometry {
	return Geometry{
		Blocks:          428,
		WLsPerBlock:     192,
		CellKind:        vth.TLC,
		PageBytes:       16 * 1024,
		FlagCells:       9,
		EnduranceCycles: 1000,
		Planes:          1,
	}
}

// PlaneCount returns the effective plane count (a zero Planes field means
// single-plane).
func (g Geometry) PlaneCount() int {
	if g.Planes <= 1 {
		return 1
	}
	return g.Planes
}

// PlaneOf returns the plane a block belongs to.
func (g Geometry) PlaneOf(block int) int { return block % g.PlaneCount() }

// PagesPerWL returns the number of pages stored on one wordline.
func (g Geometry) PagesPerWL() int { return g.CellKind.Bits() }

// PagesPerBlock returns the number of pages in one block.
func (g Geometry) PagesPerBlock() int { return g.WLsPerBlock * g.PagesPerWL() }

// TotalPages returns the page count of the whole chip.
func (g Geometry) TotalPages() int { return g.Blocks * g.PagesPerBlock() }

// CapacityBytes returns the raw chip capacity.
func (g Geometry) CapacityBytes() int64 {
	return int64(g.TotalPages()) * int64(g.PageBytes)
}

// Validate reports whether the geometry is usable.
func (g Geometry) Validate() error {
	if g.Blocks <= 0 || g.WLsPerBlock <= 0 || g.PageBytes <= 0 {
		return fmt.Errorf("nand: non-positive geometry %+v", g)
	}
	if g.CellKind < vth.SLC || g.CellKind > vth.QLC {
		return fmt.Errorf("nand: unknown cell kind %d", g.CellKind)
	}
	if g.FlagCells <= 0 || g.FlagCells%2 == 0 {
		return fmt.Errorf("nand: FlagCells must be odd and positive, got %d", g.FlagCells)
	}
	if g.Planes < 0 {
		return fmt.Errorf("nand: negative plane count %d", g.Planes)
	}
	if p := g.PlaneCount(); g.Blocks%p != 0 {
		return fmt.Errorf("nand: %d blocks not divisible across %d planes", g.Blocks, p)
	}
	return nil
}

// Timing holds the command latencies (§7): tREAD 80µs, tPROG 700µs,
// tBERS 3.5ms, tpLock 100µs, tbLock 300µs, scrub 100µs.
type Timing struct {
	Read  sim.Micros
	Prog  sim.Micros
	Erase sim.Micros
	PLock sim.Micros
	BLock sim.Micros
	Scrub sim.Micros
	// Xfer is the channel transfer time for one page (16 KiB over a
	// 400 MB/s bus ≈ 40 µs).
	Xfer sim.Micros
}

// DefaultTiming returns the paper's timing parameters.
func DefaultTiming() Timing {
	return Timing{
		Read:  80,
		Prog:  700,
		Erase: 3500,
		PLock: 100,
		BLock: 300,
		Scrub: 100,
		Xfer:  40,
	}
}

// OpKind labels a chip operation for accounting.
type OpKind int

const (
	OpRead OpKind = iota
	OpProgram
	OpErase
	OpPLock
	OpBLock
	OpScrub
	// OpPLockWL counts batched SBPI pulses (PLockWL); the per-page OpPLock
	// counter is NOT advanced for the pages such a pulse covers.
	OpPLockWL
	// OpProgramMulti / OpReadMulti count multi-plane commands; the
	// per-page OpProgram / OpRead counters still advance once per page.
	OpProgramMulti
	OpReadMulti
	opKinds
)

func (k OpKind) String() string {
	switch k {
	case OpRead:
		return "read"
	case OpProgram:
		return "program"
	case OpErase:
		return "erase"
	case OpPLock:
		return "pLock"
	case OpBLock:
		return "bLock"
	case OpScrub:
		return "scrub"
	case OpPLockWL:
		return "pLockWL"
	case OpProgramMulti:
		return "programMulti"
	case OpReadMulti:
		return "readMulti"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// PageAddr addresses one physical page on a chip.
type PageAddr struct {
	Block int
	Page  int // 0 .. PagesPerBlock-1, in program order
}

func (a PageAddr) String() string { return fmt.Sprintf("pb%d/pp%d", a.Block, a.Page) }

// block is one erase unit. The per-wordline operating history and the
// per-page pAP flags are stored as parallel arrays (SoA layout) rather
// than an array of wordline structs: the read path touches exactly one
// field of up to three wordlines per operation (disturb bookkeeping), so
// packing each field contiguously keeps the hot cache lines dense.
type block struct {
	pages    [][]byte // payload per page; nil = free
	pageBits []int    // logical payload length in bytes (tracks partial writes)
	// flags[page] holds the sampled Vth values of the k pAP flag cells
	// backing the page; nil means never programmed (enabled). flagDay is
	// the simulated day the flag was programmed (retention decay).
	flags   [][]float64
	flagDay []float64
	// Per-wordline history, indexed by wordline:
	wlDisturbs   []int32   // pLock pulses applied while data cells were inhibited
	wlReads      []int32   // disturb events from reads of neighbouring WLs
	wlProgDay    []float64 // when the data cells were programmed (sim days)
	wlProgrammed []bool
	writePtr     int // next page to program (append-only discipline)
	peCycles     int
	erasedDay    float64 // when the block was last erased (for open interval)
	everErased   bool
	// sslCenter > 0 means bLock programmed the SSL to that center Vth.
	sslCenter  float64
	sslLockDay float64
	// meta holds the per-page spare-area stamps (see OOBMeta). Cleared
	// by Erase and, per wordline, by Scrub.
	meta []OOBMeta
}

// Chip is one emulated NAND die.
type Chip struct {
	geo    Geometry
	timing Timing
	blocks []block

	model     *vth.Model    // data-cell model (reliability queries)
	flagModel vth.FlagModel // pAP flag cells
	sslModel  vth.SSLModel  // bAP / SSL cells
	plockV    float64       // pLock operating point (§5.3 combination (ii))
	plockT    float64
	blockV    float64 // bLock operating point (§5.4 combination (ii))
	blockT    float64

	rng *rand.Rand

	// dayOffset lets tests and the secure-delete example advance
	// "wall-clock" retention time independently of the µs-scale
	// simulation clock.
	dayOffset float64

	// injectErrors enables Monte-Carlo bit-error injection on reads.
	injectErrors bool
	eccLimit     float64 // per-page RBER limit when injecting

	// faults, when set, decides per-operation failures and injected read
	// bit errors (see internal/fault). noInject suppresses fault read
	// injection on paths that bypass the ECC transfer path this model
	// represents: the internal read of Copyback (an on-chip data move)
	// and ForensicDump (the attacker's raw reader).
	faults   *fault.Injector
	noInject bool

	// cut, when set, is the device-wide power-loss schedule (see
	// WithPowerCut); mutating ops check it at pulse start.
	cut *fault.CutState

	opCount [opKinds]uint64

	// Hot-path scratch and recycle pools. A chip is driven by one
	// goroutine at a time (the device model serializes operations per
	// chip), so a single scratch buffer per chip suffices.
	readBuf  []byte      // backs ReadResult.Data — see Read's aliasing rule
	agedBuf  []float64   // pageLockedAt's decayed-flag scratch
	pagePool [][]byte    // retired page payload buffers, refilled by Erase
	flagPool [][]float64 // retired pAP flag-cell slices, refilled by Erase
}

// emptyPage marks a programmed page with a zero-length payload (distinct
// from nil = erased). It is shared: zero-length slices are immutable.
var emptyPage = []byte{}

// takePage returns a payload buffer of length n, recycling a retired
// page buffer when one fits. Contents are undefined; callers overwrite.
func (c *Chip) takePage(n int) []byte {
	if n == 0 {
		return emptyPage
	}
	if k := len(c.pagePool); k > 0 && cap(c.pagePool[k-1]) >= n {
		buf := c.pagePool[k-1][:n]
		c.pagePool[k-1] = nil
		c.pagePool = c.pagePool[:k-1]
		return buf
	}
	// Full page capacity so the buffer is reusable for any later payload.
	return make([]byte, n, c.geo.PageBytes)
}

// takeFlags returns a flag-cell slice of length k = FlagCells.
func (c *Chip) takeFlags() []float64 {
	if k := len(c.flagPool); k > 0 {
		cells := c.flagPool[k-1]
		c.flagPool[k-1] = nil
		c.flagPool = c.flagPool[:k-1]
		return cells
	}
	return make([]float64, c.geo.FlagCells)
}

// Option configures a Chip.
type Option func(*Chip)

// WithErrorInjection makes reads sample the cell model and fail with
// ErrUncorrectable when the drawn error count exceeds the ECC limit.
func WithErrorInjection() Option {
	return func(c *Chip) { c.injectErrors = true }
}

// WithTiming overrides the command latencies.
func WithTiming(t Timing) Option {
	return func(c *Chip) { c.timing = t }
}

// WithSeed fixes the chip's RNG seed (default 1).
func WithSeed(seed int64) Option {
	return func(c *Chip) { c.rng = rand.New(rand.NewSource(seed)) }
}

// WithFaults attaches a fault injector: Program, Erase, PLock and BLock
// can then fail with the injector's configured probabilities (returning
// ErrProgramFailed etc. alongside their full latency), and reads draw
// injected bit errors judged against the injector's ECC engine.
func WithFaults(inj *fault.Injector) Option {
	return func(c *Chip) { c.faults = inj }
}

// New builds a chip with the given geometry.
func New(geo Geometry, opts ...Option) (*Chip, error) {
	if err := geo.Validate(); err != nil {
		return nil, err
	}
	var model *vth.Model
	switch geo.CellKind {
	case vth.MLC:
		model = vth.NewMLC()
	case vth.QLC:
		model = vth.NewQLC()
	default:
		model = vth.NewTLC()
	}
	c := &Chip{
		geo:       geo,
		timing:    DefaultTiming(),
		blocks:    make([]block, geo.Blocks),
		model:     model,
		flagModel: vth.DefaultFlagModel(),
		sslModel:  vth.DefaultSSLModel(),
		// §5.3 final pLock operating point: combination (ii) = (Vp4, 100µs).
		plockV: vth.PLockVoltages[3],
		plockT: 100,
		// §5.4 final bLock operating point: combination (ii) = (Vb6, 300µs).
		blockV:   vth.BLockVoltages[5],
		blockT:   300,
		rng:      rand.New(rand.NewSource(1)),
		eccLimit: model.ECCLimitRBER,
		readBuf:  make([]byte, geo.PageBytes),
		agedBuf:  make([]float64, geo.FlagCells),
	}
	ppb := geo.PagesPerBlock()
	for b := range c.blocks {
		blk := &c.blocks[b]
		blk.pages = make([][]byte, ppb)
		blk.pageBits = make([]int, ppb)
		blk.meta = make([]OOBMeta, ppb)
		blk.flags = make([][]float64, ppb)
		blk.flagDay = make([]float64, ppb)
		blk.wlDisturbs = make([]int32, geo.WLsPerBlock)
		blk.wlReads = make([]int32, geo.WLsPerBlock)
		blk.wlProgDay = make([]float64, geo.WLsPerBlock)
		blk.wlProgrammed = make([]bool, geo.WLsPerBlock)
	}
	for _, o := range opts {
		o(c)
	}
	return c, nil
}

// Geometry returns the chip geometry.
func (c *Chip) Geometry() Geometry { return c.geo }

// Timing returns the command latencies.
func (c *Chip) Timing() Timing { return c.timing }

// OpCount returns how many operations of kind k the chip executed.
func (c *Chip) OpCount(k OpKind) uint64 { return c.opCount[k] }

// FaultCounts returns what the attached fault injector did so far (the
// zero value when no injector is attached).
func (c *Chip) FaultCounts() fault.Counts {
	if c.faults == nil {
		return fault.Counts{}
	}
	return c.faults.Counts()
}

// AdvanceDays moves the chip's retention clock forward, aging every
// programmed cell and flag. Used by tests and the secure-delete example to
// demonstrate multi-year lock durability.
func (c *Chip) AdvanceDays(days float64) {
	if days < 0 {
		panic("nand: cannot rewind retention time")
	}
	c.dayOffset += days
}

// nowDays converts a simulation timestamp to fractional days, including
// any AdvanceDays offset.
func (c *Chip) nowDays(now sim.Micros) float64 {
	const microsPerDay = 24 * 3600 * 1e6
	return c.dayOffset + float64(now)/microsPerDay
}

// wlOf maps a page index to its wordline and the page slot within the WL.
// Pages are striped WL-major in program order: WL0 holds pages
// 0..bits-1, WL1 the next bits, etc., matching the paper's Fig. 8 layout
// where the LSB/CSB/MSB pages of a WL have adjacent page numbers.
func (c *Chip) wlOf(page int) (wl, slot int) {
	bits := c.geo.PagesPerWL()
	return page / bits, page % bits
}

// PageKindOf returns which page of its wordline (LSB/CSB/MSB) a page
// index is.
func (c *Chip) PageKindOf(page int) vth.PageKind {
	_, slot := c.wlOf(page)
	return vth.PagesPerWL(c.geo.CellKind)[slot]
}

func (c *Chip) checkAddr(a PageAddr) error {
	if a.Block < 0 || a.Block >= c.geo.Blocks || a.Page < 0 || a.Page >= c.geo.PagesPerBlock() {
		return fmt.Errorf("%w: %v", ErrBadAddress, a)
	}
	return nil
}
