package nand

import (
	"bytes"
	"testing"
)

func TestRawPortReadCycle(t *testing.T) {
	c := newTestChip(t)
	payload := []byte("raw interface payload")
	mustProgram(t, c, PageAddr{2, 0}, payload)

	port := NewRawPort(c)
	got, err := port.ReadPage(PageAddr{2, 0}, len(payload))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("raw read %q, want %q", got, payload)
	}
	if port.Status()&StatusReady == 0 {
		t.Fatal("chip should be ready")
	}
	if port.Status()&StatusFail != 0 {
		t.Fatal("successful read should not set fail")
	}
}

// The paper's security core at the lowest level: a locked page streams
// zeros through the raw pin interface.
func TestRawPortLockedPageStreamsZeros(t *testing.T) {
	c := newTestChip(t)
	secret := []byte("undisclosed location")
	mustProgram(t, c, PageAddr{1, 0}, secret)
	mustPLock(t, c, PageAddr{1, 0})

	port := NewRawPort(c)
	got, err := port.ReadPage(PageAddr{1, 0}, len(secret))
	if err == nil {
		t.Fatal("expected the locked-page error on the internal path")
	}
	for _, b := range got {
		if b != 0 {
			t.Fatal("raw port leaked locked data")
		}
	}
}

func TestRawPortProgramEraseCycle(t *testing.T) {
	c := newTestChip(t)
	port := NewRawPort(c)

	// 80h + 5 addr + data-in + 10h.
	if err := port.WriteCommand(CmdProgramSetup); err != nil {
		t.Fatal(err)
	}
	for _, b := range encodeAddr5(PageAddr{0, 0}) {
		if err := port.WriteAddress(b); err != nil {
			t.Fatal(err)
		}
	}
	for _, b := range []byte("pin-level write") {
		if err := port.WriteData(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := port.WriteCommand(CmdProgramConfirm); err != nil {
		t.Fatal(err)
	}
	if port.Status()&StatusFail != 0 {
		t.Fatal("program reported failure")
	}
	got, _ := port.ReadPage(PageAddr{0, 0}, 15)
	if !bytes.Equal(got, []byte("pin-level write")) {
		t.Fatalf("read back %q", got)
	}

	// 60h + 3 row bytes + D0h.
	if err := port.WriteCommand(CmdEraseSetup); err != nil {
		t.Fatal(err)
	}
	addr := encodeAddr5(PageAddr{0, 0})
	for _, b := range addr[2:] {
		port.WriteAddress(b)
	}
	if err := port.WriteCommand(CmdEraseConfirm); err != nil {
		t.Fatal(err)
	}
	res, err := c.Read(PageAddr{0, 0}, 0)
	if err != nil || res.Data != nil {
		t.Fatal("raw erase did not clear the page")
	}
}

func TestRawPortVendorLockCommands(t *testing.T) {
	c := newTestChip(t)
	mustProgram(t, c, PageAddr{0, 0}, []byte("to lock"))
	port := NewRawPort(c)

	// E0h + row + E1h: pLock.
	port.WriteCommand(CmdPLockSetup)
	for _, b := range encodeAddr5(PageAddr{0, 0})[2:] {
		port.WriteAddress(b)
	}
	if err := port.WriteCommand(CmdPLockConfirm); err != nil {
		t.Fatal(err)
	}
	if !pageLocked(t, c, PageAddr{0, 0}) {
		t.Fatal("vendor pLock command did not lock")
	}

	// E2h + row + E3h: bLock.
	port.WriteCommand(CmdBLockSetup)
	for _, b := range encodeAddr5(PageAddr{3, 0})[2:] {
		port.WriteAddress(b)
	}
	if err := port.WriteCommand(CmdBLockConfirm); err != nil {
		t.Fatal(err)
	}
	if !blockLocked(t, c, 3) {
		t.Fatal("vendor bLock command did not lock")
	}
}

func TestRawPortProtocolErrors(t *testing.T) {
	c := newTestChip(t)
	port := NewRawPort(c)
	if err := port.WriteCommand(0x42); err == nil {
		t.Fatal("unknown command accepted")
	}
	if err := port.WriteAddress(1); err == nil {
		t.Fatal("address cycle without setup accepted")
	}
	if err := port.WriteData(1); err == nil {
		t.Fatal("data cycle without program setup accepted")
	}
	if err := port.WriteCommand(CmdReadConfirm); err == nil {
		t.Fatal("confirm without setup accepted")
	}
	// Reads past the buffer float high.
	if b := port.ReadData(); b != 0xFF {
		t.Fatalf("floating bus read %#02x, want 0xFF", b)
	}
	// Reset recovers the state machine.
	port.WriteCommand(CmdReadSetup)
	port.WriteCommand(CmdReset)
	if err := port.WriteAddress(0); err == nil {
		t.Fatal("reset should clear the address phase")
	}
	// Short address is rejected at confirm time.
	port.WriteCommand(CmdEraseSetup)
	port.WriteAddress(0)
	if err := port.WriteCommand(CmdEraseConfirm); err == nil {
		t.Fatal("short row address accepted")
	}
}

func TestRawPortStatusFailBit(t *testing.T) {
	c := newTestChip(t)
	port := NewRawPort(c)
	// Program out of order: page 3 of an empty block.
	port.WriteCommand(CmdProgramSetup)
	for _, b := range encodeAddr5(PageAddr{0, 3}) {
		port.WriteAddress(b)
	}
	port.WriteData(0xAA)
	port.WriteCommand(CmdProgramConfirm)
	if port.Status()&StatusFail == 0 {
		t.Fatal("out-of-order program must set the fail bit")
	}
}

func TestAddrRoundTrip(t *testing.T) {
	for _, a := range []PageAddr{{0, 0}, {7, 11}, {427, 575}} {
		enc := encodeAddr5(a)
		got, err := decodeRow(enc)
		if err != nil {
			t.Fatal(err)
		}
		if got != a {
			t.Fatalf("addr round trip %v -> %v", a, got)
		}
	}
}
