package nand

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/fault"
	"repro/internal/nand/vth"
	"repro/internal/sim"
)

// ReadResult is the outcome of a page read.
type ReadResult struct {
	// Data is the page payload. For a locked page or block it is all
	// zeros, matching the paper's "a read request to a sanitized page
	// always returns data with all bits set to 0".
	//
	// Aliasing rule: Data points into a per-chip scratch buffer and is
	// only valid until the next operation on the same chip. Callers must
	// either consume it immediately (compare, stream out) or copy it;
	// Program copies its payload, so the common Read→Program relocation
	// chain is safe without an extra copy.
	Data []byte
	// Latency is tREAD (the lock check happens during the normal read
	// flow, adding no latency).
	Latency sim.Micros
	// CorrectedBits is the number of injected bit errors the ECC model
	// repaired (only populated with WithErrorInjection).
	CorrectedBits int
}

// CloneData returns a caller-owned copy of Data (nil stays nil). It is
// the documented copy helper for holding page contents across later
// operations on the same chip; secvet's aliasing rule flags any other
// way of letting Data escape the read's statement block.
func (r ReadResult) CloneData() []byte {
	if r.Data == nil {
		return nil
	}
	return append([]byte(nil), r.Data...)
}

// Read performs a page read at simulated time now.
//
// Security semantics (§5.2): if the block's bAP flag is disabled the read
// fails with ErrBlockLocked; otherwise if the page's pAP flag is disabled
// it fails with ErrPageLocked. In both cases the returned data is all
// zeros — the bridge transistor gates the data-out path, so even an
// attacker with full command access learns nothing.
func (c *Chip) Read(a PageAddr, now sim.Micros) (ReadResult, error) {
	if err := c.checkAddr(a); err != nil {
		return ReadResult{}, err
	}
	c.opCount[OpRead]++
	res := ReadResult{Latency: c.timing.Read}
	blk := &c.blocks[a.Block]
	day := c.nowDays(now)

	// bAP check first (Fig. 7(b)): a disabled block blocks every page.
	if c.blockLockedAt(blk, day) {
		res.Data = c.zeroScratch(c.zeroLenFor(blk, a.Page))
		return res, ErrBlockLocked
	}
	// pAP check (Fig. 7(a)): the flag is read from the spare area
	// concurrently with the data, decided by the k-cell majority circuit.
	if c.pageLockedAt(blk, a.Page, day) {
		res.Data = c.zeroScratch(c.zeroLenFor(blk, a.Page))
		return res, ErrPageLocked
	}

	// Reading one wordline stresses its neighbours with the VREAD pass
	// voltage (read disturb, §2.1 footnote 3).
	wlIdx, _ := c.wlOf(a.Page)
	if wlIdx > 0 {
		blk.wlReads[wlIdx-1]++
	}
	if wlIdx+1 < len(blk.wlReads) {
		blk.wlReads[wlIdx+1]++
	}

	if blk.pages[a.Page] == nil {
		// Erased flash reads as all ones.
		res.Data = nil
		return res, nil
	}
	data := c.readBuf[:len(blk.pages[a.Page])]
	copy(data, blk.pages[a.Page])

	if c.injectErrors {
		corrected, err := c.injectReadErrors(blk, a, data, day)
		res.CorrectedBits = corrected
		if err != nil {
			res.Data = data
			return res, err
		}
	}
	if c.faults != nil && !c.noInject && len(data) > 0 {
		nerr, uncorrectable := c.faults.ReadErrors(len(data)*8, blk.peCycles, c.geo.EnduranceCycles)
		if uncorrectable {
			// Model the failed transfer: the host sees mangled bytes.
			c.faults.FlipBits(data, nerr)
			res.Data = data
			return res, fmt.Errorf("%w: injected %d raw errors in %d bits", ErrUncorrectable, nerr, len(data)*8)
		}
		res.CorrectedBits += nerr
	}
	res.Data = data
	return res, nil
}

// zeroLenFor sizes the all-zero buffer a locked read returns.
func (c *Chip) zeroLenFor(blk *block, page int) int {
	if blk.pages[page] != nil {
		return len(blk.pages[page])
	}
	return 0
}

// zeroScratch returns the first n bytes of the read scratch, zeroed.
func (c *Chip) zeroScratch(n int) []byte {
	buf := c.readBuf[:n]
	clear(buf)
	return buf
}

// blockLockedAt evaluates the bAP flag: the SSL center Vth (after
// retention decay) must exceed the disable threshold to keep the block
// locked.
func (c *Chip) blockLockedAt(blk *block, day float64) bool {
	if blk.sslCenter == 0 {
		return false
	}
	elapsed := day - blk.sslLockDay
	center := blk.sslCenter - (c.sslModel.ProgrammedCenter(c.blockV, c.blockT) -
		c.sslModel.CenterAfter(c.blockV, c.blockT, elapsed))
	return center >= c.sslModel.DisableThreshold
}

// pageLockedAt evaluates the pAP flag via the k-cell majority circuit,
// applying flag-cell retention decay since the lock.
func (c *Chip) pageLockedAt(blk *block, page int, day float64) bool {
	cells := blk.flags[page]
	if cells == nil {
		return false
	}
	elapsed := day - blk.flagDay[page]
	if elapsed < 0 {
		elapsed = 0
	}
	decay := c.flagModel.ProgrammedMean(c.plockV, c.plockT) -
		c.flagModel.MeanAfter(c.plockV, c.plockT, elapsed, 0)
	aged := c.agedBuf[:len(cells)]
	for i, v := range cells {
		aged[i] = v - decay
	}
	return c.flagModel.MajorityReadsDisabled(aged)
}

// injectReadErrors draws a bit-error count from the cell model and flips
// random bits; it returns ErrUncorrectable when the count exceeds the
// ECC limit for the page.
func (c *Chip) injectReadErrors(blk *block, a PageAddr, data []byte, day float64) (int, error) {
	wl, _ := c.wlOf(a.Page)
	cond := vth.Condition{
		PECycles:        blk.peCycles,
		RetentionDays:   maxf(0, day-blk.wlProgDay[wl]),
		ReadDisturbs:    int(blk.wlReads[wl]),
		ProgramDisturbs: int(blk.wlDisturbs[wl]),
		DisturbV:        c.plockV,
		DisturbT:        c.plockT,
	}
	if blk.everErased {
		cond.OpenIntervalDays = maxf(0, blk.wlProgDay[wl]-blk.erasedDay)
	}
	rber := c.model.PageRBER(c.PageKindOf(a.Page), cond)
	bits := len(data) * 8
	if bits == 0 {
		return 0, nil
	}
	// Binomial draw via Poisson approximation (rber*bits is small).
	lambda := rber * float64(bits)
	nerr := poissonDraw(c.rng, lambda)
	limit := int(c.eccLimit * float64(bits))
	if nerr > limit {
		// Uncorrectable: corrupt the data to model a failed transfer.
		for i := 0; i < nerr && i < bits; i++ {
			p := c.rng.Intn(bits)
			data[p/8] ^= 1 << uint(p%8)
		}
		return 0, fmt.Errorf("%w: %d errors in %d bits (limit %d)", ErrUncorrectable, nerr, bits, limit)
	}
	return nerr, nil
}

// poissonDraw samples Poisson(lambda). For small lambda it uses Knuth's
// multiplication method; for large lambda the normal approximation, which
// is accurate enough for error-count injection.
func poissonDraw(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 30 {
		n := int(lambda + math.Sqrt(lambda)*rng.NormFloat64() + 0.5)
		if n < 0 {
			n = 0
		}
		return n
	}
	limit := math.Exp(-lambda)
	l := 1.0
	for k := 0; ; k++ {
		l *= rng.Float64()
		if l < limit {
			return k
		}
	}
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// Program writes data to a page at simulated time now. The block must be
// erased at that position and pages must be programmed in order, the
// append-only discipline 3D NAND imposes.
func (c *Chip) Program(a PageAddr, data []byte, now sim.Micros) (sim.Micros, error) {
	if err := c.checkAddr(a); err != nil {
		return 0, err
	}
	if len(data) > c.geo.PageBytes {
		return 0, fmt.Errorf("nand: payload %d exceeds page size %d", len(data), c.geo.PageBytes)
	}
	blk := &c.blocks[a.Block]
	if blk.sslCenter != 0 {
		return 0, fmt.Errorf("%w: cannot program a locked block", ErrBlockLocked)
	}
	if a.Page != blk.writePtr {
		if a.Page < blk.writePtr {
			return 0, fmt.Errorf("%w: page %d already used (write pointer %d)", ErrNotErased, a.Page, blk.writePtr)
		}
		return 0, fmt.Errorf("%w: page %d before pointer %d", ErrOutOfOrder, a.Page, blk.writePtr)
	}
	c.opCount[OpProgram]++
	stored := c.takePage(len(data))
	copy(stored, data)
	blk.pages[a.Page] = stored
	blk.pageBits[a.Page] = len(data)
	blk.writePtr++

	wl, slot := c.wlOf(a.Page)
	if slot == 0 || !blk.wlProgrammed[wl] {
		blk.wlProgDay[wl] = c.nowDays(now)
		blk.wlProgrammed[wl] = true
	}

	// A power cut mid-pulse tears the write: the page is consumed and
	// holds a readable prefix, but no OOB stamp ever lands — the
	// remount scan's torn-write signature (see PowerLoss).
	if c.strike(fault.CutProgram) {
		c.tearPayload(stored)
		panic(PowerLoss{Op: OpProgram, Addr: a, At: now})
	}

	// A program failure still consumed the page: the one-shot pulse
	// charged a prefix of the cells before the chip reported FAIL, so the
	// write pointer advanced and a partial (possibly readable) copy of
	// the payload is on the wordline. The FTL must retry elsewhere and
	// sanitize this page.
	if c.faults != nil && c.faults.FailProgram(blk.peCycles, c.geo.EnduranceCycles) {
		c.faults.CorruptTail(stored)
		return c.timing.Prog, ErrProgramFailed
	}
	return c.timing.Prog, nil
}

// Erase wipes the block: all page data is destroyed, all pAP flags and
// the bAP flag reset to enabled, the write pointer rewinds, and the P/E
// counter advances. This is the only way a locked page or block becomes
// accessible again — after its data is gone.
func (c *Chip) Erase(blockIdx int, now sim.Micros) (sim.Micros, error) {
	if blockIdx < 0 || blockIdx >= c.geo.Blocks {
		return 0, fmt.Errorf("%w: block %d", ErrBadAddress, blockIdx)
	}
	c.opCount[OpErase]++
	blk := &c.blocks[blockIdx]
	// An interrupted tBERS destroys nothing: data, flags and SSL state
	// survive for the remount scan (and the attacker).
	if c.strike(fault.CutErase) {
		panic(PowerLoss{Op: OpErase, Addr: PageAddr{Block: blockIdx, Page: -1}, At: now})
	}
	// A failed erase leaves the block exactly as it was — data, flags and
	// SSL state intact — after burning the full tBERS. The FTL retires
	// such a block (its contents may be locked, never free).
	if c.faults != nil && c.faults.FailErase(blk.peCycles, c.geo.EnduranceCycles) {
		return c.timing.Erase, ErrEraseFailed
	}
	for i := range blk.pages {
		// Retire payload buffers into the recycle pool for later
		// Program/Scrub calls instead of dropping them on the GC.
		if cap(blk.pages[i]) > 0 {
			c.pagePool = append(c.pagePool, blk.pages[i][:0])
		}
		blk.pages[i] = nil
		blk.pageBits[i] = 0
		blk.meta[i] = OOBMeta{}
		if blk.flags[i] != nil {
			c.flagPool = append(c.flagPool, blk.flags[i])
			blk.flags[i] = nil
		}
		blk.flagDay[i] = 0
	}
	for w := range blk.wlDisturbs {
		blk.wlDisturbs[w] = 0
		blk.wlReads[w] = 0
		blk.wlProgrammed[w] = false
		blk.wlProgDay[w] = 0
	}
	blk.writePtr = 0
	blk.peCycles++
	blk.sslCenter = 0
	blk.sslLockDay = 0
	blk.erasedDay = c.nowDays(now)
	blk.everErased = true
	return c.timing.Erase, nil
}

// PLock disables access to one page by programming its k pAP flag cells
// with the §5.3 operating point (one-shot, SBPI-inhibiting the data cells
// and the sibling pages' flags). The sibling pages experience one program
// disturb pulse.
func (c *Chip) PLock(a PageAddr, now sim.Micros) (sim.Micros, error) {
	if err := c.checkAddr(a); err != nil {
		return 0, err
	}
	c.opCount[OpPLock]++
	blk := &c.blocks[a.Block]
	wl, _ := c.wlOf(a.Page)
	// A cut mid-pulse leaves the flag cells short of the majority
	// threshold: the page stays readable, the WL took the disturb.
	if c.strike(fault.CutPLock) {
		if blk.flags[a.Page] == nil {
			blk.wlDisturbs[wl]++
		}
		panic(PowerLoss{Op: OpPLock, Addr: a, At: now})
	}
	if blk.flags[a.Page] == nil {
		// A failed one-shot flag program leaves the page readable (the
		// majority circuit still sees the flag enabled) but its pulse
		// disturbed the WL all the same. pLock cannot be retried on the
		// same flag cells — the FTL escalates to bLock.
		if c.faults != nil && c.faults.FailPLock(blk.peCycles, c.geo.EnduranceCycles) {
			blk.wlDisturbs[wl]++
			return c.timing.PLock, ErrPLockFailed
		}
		cells := c.takeFlags()
		for i := range cells {
			cells[i] = c.flagModel.SampleCellVth(c.plockV, c.plockT, 0, blk.peCycles, c.rng)
		}
		blk.flags[a.Page] = cells
		blk.flagDay[a.Page] = c.nowDays(now)
		// The high program voltage on the WL disturbs the inhibited data
		// cells (Fig. 9(b)).
		blk.wlDisturbs[wl]++
	}
	return c.timing.PLock, nil
}

// ApplyPLockFail applies a pre-decided pLock failure without consuming
// any fault-stream draws: the coordinator drew the verdict (sharded
// fault mode, see internal/ssd) and the chip replays only its state
// effects — the op count and the wordline's program disturb.
func (c *Chip) ApplyPLockFail(a PageAddr) error {
	if err := c.checkAddr(a); err != nil {
		return err
	}
	c.opCount[OpPLock]++
	blk := &c.blocks[a.Block]
	if blk.flags[a.Page] == nil {
		wl, _ := c.wlOf(a.Page)
		blk.wlDisturbs[wl]++
	}
	return nil
}

// PLockWL disables several pages of one wordline with a single SBPI
// pulse. §5 programs pAP flags selectively per wordline: the one-shot
// program voltage is applied to the WL while the data cells and the
// flags of slots NOT in the batch are inhibited, so locking n sibling
// pages costs one tpLock and one program disturb instead of n of each.
//
// Failure semantics differ from the single-page PLock: the pulse either
// charges every requested flag group past the majority threshold or
// none of them (the chip reports status FAIL before any group commits),
// so a failed batched pulse leaves all requested pages readable and MAY
// be retried per page — unlike a failed single-page one-shot, whose
// flag cells are spent. Already-locked slots are skipped (charged
// no-ops), as are slots outside the batch.
func (c *Chip) PLockWL(blockIdx, wl int, slots []int, now sim.Micros) (sim.Micros, error) {
	if blockIdx < 0 || blockIdx >= c.geo.Blocks {
		return 0, fmt.Errorf("%w: block %d", ErrBadAddress, blockIdx)
	}
	if wl < 0 || wl >= c.geo.WLsPerBlock {
		return 0, fmt.Errorf("%w: wordline %d", ErrBadAddress, wl)
	}
	bits := c.geo.PagesPerWL()
	for _, s := range slots {
		if s < 0 || s >= bits {
			return 0, fmt.Errorf("%w: WL slot %d", ErrBadAddress, s)
		}
	}
	c.opCount[OpPLockWL]++
	blk := &c.blocks[blockIdx]
	base := wl * bits
	need := false
	for _, s := range slots {
		if blk.flags[base+s] == nil {
			need = true
			break
		}
	}
	// The batched pulse is atomic all-or-none, and a power cut takes
	// the "none" arm just like an injected FAIL: every requested flag
	// is left unprogrammed and readable.
	if c.strike(fault.CutPLockBatch) {
		if need {
			blk.wlDisturbs[wl]++
		}
		panic(PowerLoss{Op: OpPLockWL, Addr: PageAddr{Block: blockIdx, Page: base}, At: now})
	}
	if !need {
		return c.timing.PLock, nil
	}
	// One fault draw per pulse: the whole batch shares the one-shot
	// program cycle.
	if c.faults != nil && c.faults.FailPLock(blk.peCycles, c.geo.EnduranceCycles) {
		blk.wlDisturbs[wl]++
		return c.timing.PLock, ErrPLockFailed
	}
	for _, s := range slots {
		if blk.flags[base+s] != nil {
			continue
		}
		cells := c.takeFlags()
		for i := range cells {
			cells[i] = c.flagModel.SampleCellVth(c.plockV, c.plockT, 0, blk.peCycles, c.rng)
		}
		blk.flags[base+s] = cells
		blk.flagDay[base+s] = c.nowDays(now)
	}
	// A single pulse stresses the inhibited data cells once, however many
	// flag groups it programs (Fig. 9(b)).
	blk.wlDisturbs[wl]++
	return c.timing.PLock, nil
}

// ApplyPLockWLFail applies a pre-decided batched-pLock failure without
// consuming fault-stream draws (sharded fault mode): the all-or-none
// pulse left every requested flag unprogrammed, charging only the op
// count and — when the pulse actually fired — the WL disturb.
func (c *Chip) ApplyPLockWLFail(blockIdx, wl int, slots []int) error {
	if blockIdx < 0 || blockIdx >= c.geo.Blocks {
		return fmt.Errorf("%w: block %d", ErrBadAddress, blockIdx)
	}
	if wl < 0 || wl >= c.geo.WLsPerBlock {
		return fmt.Errorf("%w: wordline %d", ErrBadAddress, wl)
	}
	bits := c.geo.PagesPerWL()
	for _, s := range slots {
		if s < 0 || s >= bits {
			return fmt.Errorf("%w: WL slot %d", ErrBadAddress, s)
		}
	}
	c.opCount[OpPLockWL]++
	blk := &c.blocks[blockIdx]
	base := wl * bits
	for _, s := range slots {
		if blk.flags[base+s] == nil {
			blk.wlDisturbs[wl]++
			break
		}
	}
	return nil
}

// checkPlanes validates a multi-plane address vector: at most one page
// per plane, every page on a distinct plane of this die.
func (c *Chip) checkPlanes(addrs []PageAddr) error {
	planes := c.geo.PlaneCount()
	if len(addrs) == 0 || len(addrs) > planes {
		return fmt.Errorf("%w: %d addresses for %d planes", ErrBadAddress, len(addrs), planes)
	}
	var seen uint64
	for _, a := range addrs {
		if err := c.checkAddr(a); err != nil {
			return err
		}
		p := c.geo.PlaneOf(a.Block)
		if p >= 64 {
			return fmt.Errorf("%w: plane %d out of modeled range", ErrBadAddress, p)
		}
		if seen&(1<<p) != 0 {
			return fmt.Errorf("%w: two pages on plane %d in one multi-plane op", ErrBadAddress, p)
		}
		seen |= 1 << p
	}
	return nil
}

// ProgramMulti programs one page per plane with a single shared cell-
// activity interval (the multi-plane program command): the returned
// latency is one tPROG regardless of how many planes participate, while
// the payload transfers still cross the bus per page (the device model
// accounts those separately). Per-page outcomes — program discipline
// violations and injected failures — land in the returned slice; the
// final error reports a malformed multi-plane address vector, in which
// case no page was touched.
func (c *Chip) ProgramMulti(addrs []PageAddr, datas [][]byte, now sim.Micros) (sim.Micros, []error, error) {
	if len(addrs) != len(datas) {
		return 0, nil, fmt.Errorf("nand: %d addresses but %d payloads", len(addrs), len(datas))
	}
	if err := c.checkPlanes(addrs); err != nil {
		return 0, nil, err
	}
	c.opCount[OpProgramMulti]++
	errs := make([]error, len(addrs))
	for i, a := range addrs {
		_, errs[i] = c.Program(a, datas[i], now)
	}
	return c.timing.Prog, errs, nil
}

// ReadMulti reads one page per plane with a single shared cell-activity
// interval (the multi-plane read command). It returns only the per-page
// lock/ECC outcomes, not the payloads: the chip has one page register
// per plane but this model keeps one read scratch per die, and every
// caller of the grouped read path discards the data anyway (host reads
// are timing-only above the FTL). Use Read when the payload matters.
func (c *Chip) ReadMulti(addrs []PageAddr, now sim.Micros) (sim.Micros, []error, error) {
	if err := c.checkPlanes(addrs); err != nil {
		return 0, nil, err
	}
	c.opCount[OpReadMulti]++
	errs := make([]error, len(addrs))
	for i, a := range addrs {
		_, errs[i] = c.Read(a, now)
	}
	return c.timing.Read, errs, nil
}

// BLock disables access to the whole block by programming its SSL cells
// above the read bias (§5.4 operating point).
func (c *Chip) BLock(blockIdx int, now sim.Micros) (sim.Micros, error) {
	if blockIdx < 0 || blockIdx >= c.geo.Blocks {
		return 0, fmt.Errorf("%w: block %d", ErrBadAddress, blockIdx)
	}
	c.opCount[OpBLock]++
	blk := &c.blocks[blockIdx]
	// A cut mid-pulse leaves the SSL cells below the disable
	// threshold: the block stays readable.
	if c.strike(fault.CutBLock) {
		panic(PowerLoss{Op: OpBLock, Addr: PageAddr{Block: blockIdx, Page: -1}, At: now})
	}
	if blk.sslCenter == 0 {
		// A failed SSL program leaves the block readable; the FTL falls
		// back to copy-out + erase.
		if c.faults != nil && c.faults.FailBLock(blk.peCycles, c.geo.EnduranceCycles) {
			return c.timing.BLock, ErrBLockFailed
		}
		blk.sslCenter = c.sslModel.ProgrammedCenter(c.blockV, c.blockT)
		blk.sslLockDay = c.nowDays(now)
	}
	return c.timing.BLock, nil
}

// Scrub destroys the addressed page's wordline in place by raising every
// cell's Vth until the state distributions merge (the baseline technique
// of §4/§8). Because all pages of the wordline share those cells, every
// page on the WL is destroyed — which is exactly why the scrubbing FTL
// must relocate the WL's live sibling pages first.
func (c *Chip) Scrub(a PageAddr, now sim.Micros) (sim.Micros, error) {
	if err := c.checkAddr(a); err != nil {
		return 0, err
	}
	c.opCount[OpScrub]++
	blk := &c.blocks[a.Block]
	// An interrupted scrub reprogram destroys nothing the remount scan
	// (or the attacker) can't still read: the WL survives intact.
	if c.strike(fault.CutScrub) {
		panic(PowerLoss{Op: OpScrub, Addr: a, At: now})
	}
	wl, _ := c.wlOf(a.Page)
	bits := c.geo.PagesPerWL()
	for slot := 0; slot < bits; slot++ {
		page := wl*bits + slot
		if blk.pages[page] != nil {
			clear(blk.pages[page]) // reads as zeros; buffers are chip-private
		}
		// The WL reprogram destroys the spare area with the data.
		blk.meta[page] = OOBMeta{}
	}
	// Scrubbing programs every cell of the wordline, so any not-yet-
	// written page slots on it are consumed: the write pointer skips to
	// the end of the WL (the pages read as zeros, not as erased).
	wlEnd := (wl + 1) * bits
	if blk.writePtr > wl*bits && blk.writePtr < wlEnd {
		for page := blk.writePtr; page < wlEnd; page++ {
			blk.pages[page] = emptyPage
			blk.pageBits[page] = 0
		}
		blk.writePtr = wlEnd
	}
	blk.wlDisturbs[wl] += 3 // scrubbing stresses neighbouring WLs too
	return c.timing.Scrub, nil
}

// Copyback moves a page's contents to another location on the same chip
// without crossing the bus (the 00h-35h / 85h-10h internal data move of
// standard flash command sets). The destination must obey the normal
// program discipline. Reading a locked source through the internal path
// is still gated by the access-control logic: the copy lands all-zero,
// so copyback cannot be used to exfiltrate locked data.
func (c *Chip) Copyback(src, dst PageAddr, now sim.Micros) (sim.Micros, error) {
	if err := c.checkAddr(src); err != nil {
		return 0, err
	}
	c.noInject = true
	res, err := c.Read(src, now)
	c.noInject = false
	switch err {
	case nil, ErrPageLocked, ErrBlockLocked:
		// Locked sources yield zeros — allowed, harmless.
	default:
		return 0, err
	}
	progLat, err := c.Program(dst, res.Data, now)
	if err != nil && !errors.Is(err, ErrProgramFailed) {
		return 0, err
	}
	// The read happens internally at tREAD, then the program; no
	// transfer cycles. A program failure surfaces with its latency: the
	// destination page was consumed and must be recovered like any other
	// failed program.
	return c.timing.Read + progLat, err
}

// IsPageLocked reports the current pAP state of a page (majority vote,
// including any retention decay up to now).
func (c *Chip) IsPageLocked(a PageAddr, now sim.Micros) (bool, error) {
	if err := c.checkAddr(a); err != nil {
		return false, err
	}
	return c.pageLockedAt(&c.blocks[a.Block], a.Page, c.nowDays(now)), nil
}

// ApplyBLockFail applies a pre-decided bLock failure (sharded fault
// mode): a failed SSL program changes nothing beyond the op count.
func (c *Chip) ApplyBLockFail(blockIdx int) error {
	if blockIdx < 0 || blockIdx >= c.geo.Blocks {
		return fmt.Errorf("%w: block %d", ErrBadAddress, blockIdx)
	}
	c.opCount[OpBLock]++
	return nil
}

// ApplyEraseFail applies a pre-decided erase failure (sharded fault
// mode): the block burns its tBERS but keeps data, flags, SSL state and
// its P/E count — only the op count advances.
func (c *Chip) ApplyEraseFail(blockIdx int) error {
	if blockIdx < 0 || blockIdx >= c.geo.Blocks {
		return fmt.Errorf("%w: block %d", ErrBadAddress, blockIdx)
	}
	c.opCount[OpErase]++
	return nil
}

// CorruptStoredTail runs the injector's partial-program corruption over a
// page's stored payload in place. The sharded coordinator uses it on the
// rare failed-copyback path: the verdict and the corruption draws come
// from the coordinator's injector — the same stream, in the same order,
// the serial chip would have consumed — while the bytes land on the chip.
func (c *Chip) CorruptStoredTail(a PageAddr, inj *fault.Injector) error {
	if err := c.checkAddr(a); err != nil {
		return err
	}
	inj.CorruptTail(c.blocks[a.Block].pages[a.Page])
	return nil
}

// PageLen reports the stored payload length of a page (0 for erased or
// zero-length pages). The sharded fault oracle mirrors it to gate read
// error draws.
func (c *Chip) PageLen(a PageAddr) int {
	return len(c.blocks[a.Block].pages[a.Page])
}

// FlagProgrammed reports whether the page's pAP flag cells have been
// programmed (successfully pulsed, whether or not the majority circuit
// currently reads them as disabled).
func (c *Chip) FlagProgrammed(a PageAddr) bool {
	return c.blocks[a.Block].flags[a.Page] != nil
}

// SSLProgrammed reports whether the block's SSL cells were bLock-
// programmed since the last erase (distinct from IsBlockLocked, which
// evaluates the retention-decayed read outcome).
func (c *Chip) SSLProgrammed(blockIdx int) bool {
	return c.blocks[blockIdx].sslCenter != 0
}

// IsBlockLocked reports the current bAP state of a block.
func (c *Chip) IsBlockLocked(blockIdx int, now sim.Micros) (bool, error) {
	if blockIdx < 0 || blockIdx >= c.geo.Blocks {
		return false, fmt.Errorf("%w: block %d", ErrBadAddress, blockIdx)
	}
	return c.blockLockedAt(&c.blocks[blockIdx], c.nowDays(now)), nil
}

// PECycles returns the block's program/erase count.
func (c *Chip) PECycles(blockIdx int) int {
	return c.blocks[blockIdx].peCycles
}

// WritePointer returns the next programmable page index of a block.
func (c *Chip) WritePointer(blockIdx int) int {
	return c.blocks[blockIdx].writePtr
}

// ForensicDump models the paper's threat model (§5.1): an attacker who
// de-solders the chip and issues raw reads to every page of a block,
// bypassing FTL and file system. The result is exactly what the chip's
// data-out path yields — locked pages come back as zero-filled, unlocked
// ones leak their contents. The dump never errors: the attacker always
// gets bytes, just not necessarily useful ones.
//
// The dump bypasses the controller's read path entirely, so it draws no
// decisions from the controller-side fault injector (the transfer-error
// model covers the controller↔chip bus, not the attacker's reader): the
// dump is a pure function of media state, identical in serial and
// sharded fault modes, and it never perturbs the fault schedule.
func (c *Chip) ForensicDump(blockIdx int, now sim.Micros) [][]byte {
	out := make([][]byte, c.geo.PagesPerBlock())
	prev := c.noInject
	c.noInject = true
	defer func() { c.noInject = prev }()
	for p := range out {
		res, err := c.Read(PageAddr{Block: blockIdx, Page: p}, now)
		switch err {
		case nil, ErrPageLocked, ErrBlockLocked:
			if res.Data != nil {
				// The dump outlives subsequent reads, so it cannot
				// alias the chip's read scratch: copy each page.
				cp := make([]byte, len(res.Data))
				copy(cp, res.Data)
				out[p] = cp
			}
		default:
			out[p] = nil
		}
	}
	return out
}
