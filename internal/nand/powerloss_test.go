package nand

import (
	"testing"

	"repro/internal/fault"
)

func cutChip(t *testing.T, spec fault.CutSpec) (*Chip, *fault.CutState) {
	t.Helper()
	cs := fault.NewCutState()
	cs.Arm(spec)
	return newTestChip(t, WithPowerCut(cs)), cs
}

// catchLoss runs fn and returns the PowerLoss it panicked with, or nil
// when it completed. Any other panic propagates.
func catchLoss(fn func()) (pl *PowerLoss) {
	defer func() {
		if r := recover(); r != nil {
			l, ok := r.(PowerLoss)
			if !ok {
				panic(r)
			}
			pl = &l
		}
	}()
	fn()
	return nil
}

func pattern(n int, b byte) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = b
	}
	return out
}

// A cut mid-program consumes the page and leaves a torn, stamp-less
// copy: front half intact, no OOB metadata.
func TestCutMidProgramTearsTail(t *testing.T) {
	c, cs := cutChip(t, fault.CutSpec{AfterOps: 1, Op: fault.CutProgram})
	a := PageAddr{Block: 0, Page: 0}
	data := pattern(c.Geometry().PageBytes, 0xAA)
	pl := catchLoss(func() { mustProgram(t, c, a, data) })
	if pl == nil || pl.Op != OpProgram || pl.Addr != a {
		t.Fatalf("loss = %+v, want program cut at %v", pl, a)
	}
	if !cs.Struck() || cs.Cuts() != 1 {
		t.Fatalf("cut state struck=%v cuts=%d", cs.Struck(), cs.Cuts())
	}
	if wp := c.WritePointer(0); wp != 1 {
		t.Fatalf("write pointer %d, want 1: the pulse consumed the page", wp)
	}
	res := mustRead(t, c, a)
	for i, b := range res.Data[:len(data)/2] {
		if b != 0xAA {
			t.Fatalf("front half corrupted at byte %d", i)
		}
	}
	pr, err := c.ProbePage(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Meta.Valid {
		t.Fatal("torn write carries an OOB stamp; the controller never regained control")
	}
	if !pr.Programmed || !pr.NonZero {
		t.Fatalf("probe %+v, want programmed nonzero residue", pr)
	}
	// The schedule is spent: the chip keeps working until re-armed.
	mustProgram(t, c, PageAddr{Block: 0, Page: 1}, data)
}

// A cut mid-pLock leaves the page readable (flag short of majority).
func TestCutMidPLockLeavesPageReadable(t *testing.T) {
	c, _ := cutChip(t, fault.CutSpec{AfterOps: 1, Op: fault.CutPLock})
	a := PageAddr{Block: 0, Page: 0}
	mustProgram(t, c, a, pattern(4096, 0x5C))
	pl := catchLoss(func() { mustPLock(t, c, a) })
	if pl == nil || pl.Op != OpPLock {
		t.Fatalf("loss = %+v, want pLock cut", pl)
	}
	locked, err := c.IsPageLocked(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	if locked {
		t.Fatal("interrupted pLock pulse locked the page")
	}
	if res := mustRead(t, c, a); res.Data[0] != 0x5C {
		t.Fatal("page data lost")
	}
}

// A cut mid-batch is atomic all-or-none: every requested flag of the
// wordline is left unprogrammed, no partial subset.
func TestCutMidPLockWLAtomicNone(t *testing.T) {
	c, _ := cutChip(t, fault.CutSpec{AfterOps: 1, Op: fault.CutPLockBatch})
	bits := c.Geometry().PagesPerWL()
	slots := make([]int, bits)
	for s := 0; s < bits; s++ {
		slots[s] = s
		mustProgram(t, c, PageAddr{Block: 0, Page: s}, pattern(4096, byte(s+1)))
	}
	pl := catchLoss(func() {
		if _, err := c.PLockWL(0, 0, slots, 0); err != nil {
			t.Errorf("PLockWL: %v", err)
		}
	})
	if pl == nil || pl.Op != OpPLockWL {
		t.Fatalf("loss = %+v, want batched pLock cut", pl)
	}
	for s := 0; s < bits; s++ {
		locked, err := c.IsPageLocked(PageAddr{Block: 0, Page: s}, 0)
		if err != nil {
			t.Fatal(err)
		}
		if locked {
			t.Fatalf("slot %d locked: interrupted batch must program no flag at all", s)
		}
	}
}

// A cut mid-bLock leaves the SSL untouched: the block stays readable.
func TestCutMidBLockLeavesBlockReadable(t *testing.T) {
	c, _ := cutChip(t, fault.CutSpec{AfterOps: 1, Op: fault.CutBLock})
	a := PageAddr{Block: 2, Page: 0}
	mustProgram(t, c, a, pattern(4096, 0x77))
	pl := catchLoss(func() { mustBLock(t, c, 2) })
	if pl == nil || pl.Op != OpBLock {
		t.Fatalf("loss = %+v, want bLock cut", pl)
	}
	locked, err := c.IsBlockLocked(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if locked {
		t.Fatal("interrupted SSL pulse disabled the block")
	}
	if res := mustRead(t, c, a); res.Data[0] != 0x77 {
		t.Fatal("block data lost")
	}
}

// An interrupted erase destroys nothing: data, stamps and write pointer
// survive for the remount scan (and the attacker).
func TestCutMidEraseDestroysNothing(t *testing.T) {
	c, _ := cutChip(t, fault.CutSpec{AfterOps: 1, Op: fault.CutErase})
	a := PageAddr{Block: 1, Page: 0}
	mustProgram(t, c, a, pattern(4096, 0x3B))
	if err := c.StampOOB(a, OOBMeta{LPA: 9, Seq: 4, Secure: true}); err != nil {
		t.Fatal(err)
	}
	pl := catchLoss(func() { mustErase(t, c, 1) })
	if pl == nil || pl.Op != OpErase || pl.Addr.Block != 1 {
		t.Fatalf("loss = %+v, want erase cut on block 1", pl)
	}
	if wp := c.WritePointer(1); wp != 1 {
		t.Fatalf("write pointer %d after interrupted erase, want 1", wp)
	}
	pr, err := c.ProbePage(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !pr.NonZero || !pr.Meta.Valid || pr.Meta.LPA != 9 {
		t.Fatalf("probe %+v: interrupted erase must leave data and stamp intact", pr)
	}
	// Re-armed, the next erase completes once the schedule is spent.
	mustErase(t, c, 1)
	if wp := c.WritePointer(1); wp != 0 {
		t.Fatal("completed erase did not reset the block")
	}
}

// An interrupted scrub leaves the wordline's data intact.
func TestCutMidScrubLeavesWLIntact(t *testing.T) {
	c, _ := cutChip(t, fault.CutSpec{AfterOps: 1, Op: fault.CutScrub})
	a := PageAddr{Block: 0, Page: 0}
	mustProgram(t, c, a, pattern(4096, 0x41))
	pl := catchLoss(func() { mustScrub(t, c, a) })
	if pl == nil || pl.Op != OpScrub {
		t.Fatalf("loss = %+v, want scrub cut", pl)
	}
	if res := mustRead(t, c, a); res.Data[0] != 0x41 {
		t.Fatal("interrupted scrub destroyed the wordline")
	}
}

// The op filter skips non-matching operations; CutAny counts them all.
func TestCutSpecOpFilterAndCounting(t *testing.T) {
	c, cs := cutChip(t, fault.CutSpec{AfterOps: 1, Op: fault.CutErase})
	data := pattern(4096, 1)
	// Programs do not match the erase-only schedule.
	mustProgram(t, c, PageAddr{Block: 0, Page: 0}, data)
	mustProgram(t, c, PageAddr{Block: 0, Page: 1}, data)
	if cs.Struck() {
		t.Fatal("programs struck an erase-only schedule")
	}
	if pl := catchLoss(func() { mustErase(t, c, 3) }); pl == nil || pl.Op != OpErase {
		t.Fatalf("loss = %+v, want the first erase to strike", pl)
	}

	// CutAny: the third mutating op of any kind strikes.
	c2, _ := cutChip(t, fault.CutSpec{AfterOps: 3})
	mustProgram(t, c2, PageAddr{Block: 0, Page: 0}, data)
	mustProgram(t, c2, PageAddr{Block: 0, Page: 1}, data)
	pl := catchLoss(func() { mustProgram(t, c2, PageAddr{Block: 0, Page: 2}, data) })
	if pl == nil || pl.Addr.Page != 2 {
		t.Fatalf("loss = %+v, want the third op to strike", pl)
	}
}

// Stamps live and die with the page: erase and scrub clear them, and an
// unconsumed page cannot be stamped.
func TestStampLifecycle(t *testing.T) {
	c := newTestChip(t)
	a := PageAddr{Block: 0, Page: 0}
	if err := c.StampOOB(a, OOBMeta{LPA: 1, Seq: 1}); err == nil {
		t.Fatal("stamped an unprogrammed page")
	}
	mustProgram(t, c, a, pattern(4096, 2))
	if err := c.StampOOB(a, OOBMeta{LPA: 5, Seq: 8, Secure: true}); err != nil {
		t.Fatal(err)
	}
	pr, err := c.ProbePage(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !pr.Meta.Valid || pr.Meta.LPA != 5 || pr.Meta.Seq != 8 || !pr.Meta.Secure {
		t.Fatalf("probe meta %+v", pr.Meta)
	}
	mustScrub(t, c, a)
	if pr, _ = c.ProbePage(a, 0); pr.Meta.Valid {
		t.Fatal("scrub left the stamp behind")
	}
	mustErase(t, c, 0)
	mustProgram(t, c, a, pattern(4096, 3))
	if err := c.StampOOB(a, OOBMeta{LPA: 6, Seq: 9}); err != nil {
		t.Fatal(err)
	}
	mustErase(t, c, 0)
	mustProgram(t, c, a, pattern(4096, 4))
	if pr, _ = c.ProbePage(a, 0); pr.Meta.Valid {
		t.Fatal("erase left a stale stamp on the reprogrammed page")
	}
}

// Locked pages reveal neither payload residue nor stamps to the probe.
func TestProbeHonoursLockGating(t *testing.T) {
	c := newTestChip(t)
	a := PageAddr{Block: 0, Page: 0}
	mustProgram(t, c, a, pattern(4096, 0x99))
	if err := c.StampOOB(a, OOBMeta{LPA: 3, Seq: 2, Secure: true}); err != nil {
		t.Fatal(err)
	}
	mustPLock(t, c, a)
	pr, err := c.ProbePage(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !pr.Locked || pr.NonZero || pr.Meta.Valid {
		t.Fatalf("probe of locked page leaked state: %+v", pr)
	}
}
