// Package vth models the threshold-voltage (Vth) behaviour of 3D NAND
// flash cells: per-state Vth distributions, the Gray data encoding of
// multi-level cells, and the noise processes the paper characterizes on
// real chips — P/E cycling wear, retention loss, program disturb, read
// disturb, one-shot-reprogram (OSR) over-programming, and the
// open-interval effect.
//
// The paper's chip experiments (Figs. 6, 9, 10, 11, 12) are distributional
// statements about cell populations; this package reproduces them with a
// calibrated Gaussian-mixture model. Every probability is computed in
// closed form from Gaussian CDFs, and SampleVth offers Monte-Carlo
// sampling of individual cells for the flag/majority-circuit experiments.
package vth

import "fmt"

// CellKind selects how many bits a cell stores.
type CellKind int

const (
	// SLC stores one bit per cell (used for the pAP flag cells).
	SLC CellKind = iota + 1
	// MLC stores two bits per cell.
	MLC
	// TLC stores three bits per cell (the paper's primary target).
	TLC
	// QLC stores four bits per cell.
	QLC
)

// Bits returns the number of bits stored per cell.
func (k CellKind) Bits() int { return int(k) }

// States returns the number of Vth states (2^bits).
func (k CellKind) States() int { return 1 << uint(k) }

func (k CellKind) String() string {
	switch k {
	case SLC:
		return "SLC"
	case MLC:
		return "MLC"
	case TLC:
		return "TLC"
	case QLC:
		return "QLC"
	default:
		return fmt.Sprintf("CellKind(%d)", int(k))
	}
}

// PageKind identifies which of the pages sharing a wordline a bit belongs
// to. LSB is the least-significant-bit page; CSB exists only on TLC+;
// MSB is the most-significant-bit page. For SLC the only page is LSB.
type PageKind int

const (
	LSB PageKind = iota
	CSB
	MSB
	// XSB is the fourth page of a QLC wordline ("extra" significant bit).
	XSB
)

func (p PageKind) String() string {
	switch p {
	case LSB:
		return "LSB"
	case CSB:
		return "CSB"
	case MSB:
		return "MSB"
	case XSB:
		return "XSB"
	default:
		return fmt.Sprintf("PageKind(%d)", int(p))
	}
}

// PagesPerWL returns the page kinds stored on one wordline of the given
// cell kind, ordered by program order (LSB first).
func PagesPerWL(k CellKind) []PageKind {
	switch k {
	case SLC:
		return []PageKind{LSB}
	case MLC:
		return []PageKind{LSB, MSB}
	case TLC:
		return []PageKind{LSB, CSB, MSB}
	case QLC:
		return []PageKind{LSB, CSB, MSB, XSB}
	default:
		panic(fmt.Sprintf("vth: unknown cell kind %d", k))
	}
}

// grayTLC is the per-state bit assignment from the paper's Fig. 2(b),
// listed (MSB, CSB, LSB) for states E, P1..P7:
// 111, 110, 100, 000, 010, 011, 001, 101.
var grayTLC = [8][3]byte{
	{1, 1, 1}, // E
	{1, 1, 0}, // P1
	{1, 0, 0}, // P2
	{0, 0, 0}, // P3
	{0, 1, 0}, // P4
	{0, 1, 1}, // P5
	{0, 0, 1}, // P6
	{1, 0, 1}, // P7
}

// grayMLC is the per-state bit assignment from Fig. 2(a), (MSB, LSB) for
// E, P1, P2, P3: 11, 10, 00, 01.
var grayMLC = [4][2]byte{
	{1, 1}, // E
	{1, 0}, // P1
	{0, 0}, // P2
	{0, 1}, // P3
}

// grayQLC extends the scheme to 16 states with a standard 1-2-6-6 Gray map
// (MSB, XSB wait—order here is MSB, CSB, LSB, XSB is appended last).
var grayQLC = [16][4]byte{
	{1, 1, 1, 1}, {1, 1, 1, 0}, {1, 1, 0, 0}, {1, 0, 0, 0},
	{0, 0, 0, 0}, {0, 1, 0, 0}, {0, 1, 1, 0}, {0, 1, 1, 1},
	{0, 1, 0, 1}, {0, 0, 0, 1}, {0, 0, 1, 1}, {0, 0, 1, 0},
	{1, 0, 1, 0}, {1, 0, 1, 1}, {1, 0, 0, 1}, {1, 1, 0, 1},
}

// BitOf returns the bit (0 or 1) that state s encodes on page p for cell
// kind k. State 0 is the erased state, which encodes 1 on every page.
func BitOf(k CellKind, s int, p PageKind) byte {
	if s < 0 || s >= k.States() {
		panic(fmt.Sprintf("vth: state %d out of range for %v", s, k))
	}
	switch k {
	case SLC:
		if p != LSB {
			panic(fmt.Sprintf("vth: SLC has no %v page", p))
		}
		if s == 0 {
			return 1
		}
		return 0
	case MLC:
		switch p {
		case LSB:
			return grayMLC[s][1]
		case MSB:
			return grayMLC[s][0]
		}
		panic(fmt.Sprintf("vth: MLC has no %v page", p))
	case TLC:
		switch p {
		case LSB:
			return grayTLC[s][2]
		case CSB:
			return grayTLC[s][1]
		case MSB:
			return grayTLC[s][0]
		}
		panic(fmt.Sprintf("vth: TLC has no %v page", p))
	case QLC:
		switch p {
		case LSB:
			return grayQLC[s][2]
		case CSB:
			return grayQLC[s][1]
		case MSB:
			return grayQLC[s][0]
		case XSB:
			return grayQLC[s][3]
		}
	}
	panic(fmt.Sprintf("vth: unknown cell kind %d", k))
}

// StateFor returns the Vth state that encodes the given bits, where
// bits[i] is the bit for PagesPerWL(k)[i]. It panics if the combination
// does not exist (cannot happen for a complete Gray code).
func StateFor(k CellKind, bits []byte) int {
	pages := PagesPerWL(k)
	if len(bits) != len(pages) {
		panic(fmt.Sprintf("vth: StateFor needs %d bits for %v, got %d", len(pages), k, len(bits)))
	}
	for s := 0; s < k.States(); s++ {
		match := true
		for i, p := range pages {
			if BitOf(k, s, p) != bits[i] {
				match = false
				break
			}
		}
		if match {
			return s
		}
	}
	panic(fmt.Sprintf("vth: no state encodes bits %v for %v", bits, k))
}
