package vth

import (
	"fmt"
	"math"
	"math/rand"
)

// Dist is a threshold-voltage distribution: a Gaussian body plus an
// optional displaced Gaussian tail (probability TailProb shifted up by
// TailShift) that models over-programming outliers.
type Dist struct {
	Mean, Sigma          float64
	TailProb             float64
	TailShift, TailSigma float64
}

// CDF returns P(Vth <= x) under the mixture.
func (d Dist) CDF(x float64) float64 {
	body := phi((x - d.Mean) / d.Sigma)
	if d.TailProb <= 0 {
		return body
	}
	ts := d.TailSigma
	if ts <= 0 {
		ts = d.Sigma
	}
	tail := phi((x - d.Mean - d.TailShift) / ts)
	return (1-d.TailProb)*body + d.TailProb*tail
}

// ProbBetween returns P(a < Vth <= b).
func (d Dist) ProbBetween(a, b float64) float64 {
	return d.CDF(b) - d.CDF(a)
}

// Sample draws one Vth value.
func (d Dist) Sample(rng *rand.Rand) float64 {
	if d.TailProb > 0 && rng.Float64() < d.TailProb {
		ts := d.TailSigma
		if ts <= 0 {
			ts = d.Sigma
		}
		return d.Mean + d.TailShift + rng.NormFloat64()*ts
	}
	return d.Mean + rng.NormFloat64()*d.Sigma
}

// phi is the standard normal CDF.
func phi(z float64) float64 { return 0.5 * math.Erfc(-z/math.Sqrt2) }

// RetentionAcceleration returns the Arrhenius acceleration factor of
// charge loss at tempC relative to the 30°C JEDEC reference, using the
// conventional 1.1 eV activation energy for detrapping. 30°C maps to
// 1.0; 85°C (the JEDEC high-temperature condition) to several hundred.
func RetentionAcceleration(tempC float64) float64 {
	const (
		ea   = 1.1      // eV
		kB   = 8.617e-5 // eV/K
		tRef = 273.15 + 30.0
	)
	if tempC == 0 {
		return 1
	}
	t := 273.15 + tempC
	return math.Exp(ea / kB * (1/tRef - 1/t))
}

// effectiveRetentionDays converts a condition's wall-clock retention to
// 30°C-equivalent days.
func effectiveRetentionDays(c Condition) float64 {
	return c.RetentionDays * RetentionAcceleration(c.TempC)
}

// Condition captures the operating history that degrades cell reliability.
// The zero value is a fresh cell read immediately after programming.
type Condition struct {
	// PECycles is the number of program/erase cycles the block endured.
	PECycles int
	// RetentionDays is the time since programming, in days at 30°C
	// (the JEDEC commercial retention test condition the paper uses).
	RetentionDays float64
	// ReadDisturbs counts reads applied to neighbouring pages since
	// programming.
	ReadDisturbs int
	// ProgramDisturbs counts extra program pulses applied to the wordline
	// while the data cells were SBPI-inhibited (one per pLock issued on a
	// sibling page). DisturbV/DisturbT describe the pulse.
	ProgramDisturbs int
	DisturbV        float64 // program voltage of the disturbing pulse (V)
	DisturbT        float64 // pulse duration (µs)
	// OpenIntervalDays is the time the block stayed erased before this
	// program ("open interval", §5.4). Longer open intervals weaken the
	// tunnel-oxide interface and raise RBER.
	OpenIntervalDays float64
	// TempC is the storage temperature in °C; zero means the paper's
	// JEDEC reference of 30°C. Higher temperatures accelerate charge
	// loss following the Arrhenius law (see RetentionAcceleration).
	TempC float64
	// WLVariation is a per-wordline process-variation factor, typically
	// drawn from Model.SampleWLVariation. 0 means a nominal wordline;
	// positive values degrade, negative improve.
	WLVariation float64
}

// Params are the calibration constants of the noise model. All defaults
// are chosen so that the paper's qualitative thresholds hold (see
// DESIGN.md §7); they are exported so the ablation benches can perturb
// them.
type Params struct {
	// P/E cycling: fractional sigma widening per 1000 cycles and erased
	// state upward mean shift (V) per 1000 cycles.
	PESigma float64
	PEShift float64
	// Retention: mean downshift coefficient (V per decade of days, scaled
	// by the state's programmed level) and sigma widening per decade.
	RetShift   float64
	RetSigma   float64
	RetDay0    float64 // onset of retention loss, days
	RetPEBoost float64 // extra retention loss per 1000 P/E cycles (fraction)
	// Read disturb: erased-state upward shift (V) per 10k reads.
	ReadShift float64
	// Program disturb (SBPI-inhibited cells during pLock): erased-state
	// upward shift per pulse = PDK * max(0, V - PDV0)^2 * (t/100µs).
	PDK  float64
	PDV0 float64
	// Open interval: erased-state sigma widening fraction per decade of
	// open-interval days, boosted by P/E wear.
	OISigma float64
	OIDay0  float64
	// OSR (one-shot reprogram) over-programming: base tail probability and
	// the lognormal spread of the per-WL tail (process variation).
	OSRSigma     float64 // sigma of the reprogrammed distribution
	OSRTailProb  float64
	OSRTailShift float64
	OSRTailSigma float64
	// OSRRetBoost multiplies retention widening on reprogrammed (one-shot,
	// unverified) distributions, which lose charge faster than normally
	// programmed cells.
	OSRRetBoost float64
	// WLSigma is the std-dev of the per-wordline variation factor.
	WLSigma float64
}

// DefaultParams returns the calibrated constants.
func DefaultParams() Params {
	return Params{
		PESigma:      0.10,
		PEShift:      0.06,
		RetShift:     0.030,
		RetSigma:     0.030,
		RetDay0:      1.0,
		RetPEBoost:   0.50,
		ReadShift:    0.02,
		PDK:          0.028,
		PDV0:         16.0,
		OISigma:      0.05,
		OIDay0:       0.01,
		OSRSigma:     0.19,
		OSRTailProb:  0.012,
		OSRTailShift: 1.10,
		OSRTailSigma: 0.40,
		OSRRetBoost:  2.5,
		WLSigma:      0.50,
	}
}

// Model is the Vth model of one cell technology: nominal state
// distributions, read reference voltages, and noise parameters.
type Model struct {
	Kind   CellKind
	Means  []float64 // nominal state means, index = state
	Sigmas []float64 // nominal state sigmas
	Refs   []float64 // read references, Refs[i] between state i and i+1
	Params Params
	// ECCLimitRBER is the raw-bit-error-rate correction capability used
	// to normalize reported RBER (the paper's "ECC limit" line at 1.0).
	ECCLimitRBER float64
}

// NewTLC returns the calibrated model of the paper's 48-layer 3D TLC chip.
func NewTLC() *Model {
	means := []float64{-2.0, 0.6, 1.3, 2.0, 2.7, 3.4, 4.1, 4.8}
	sigmas := []float64{0.42, 0.125, 0.125, 0.125, 0.125, 0.125, 0.125, 0.125}
	return &Model{
		Kind:         TLC,
		Means:        means,
		Sigmas:       sigmas,
		Refs:         midpoints(means),
		Params:       DefaultParams(),
		ECCLimitRBER: 72.0 / 8192.0, // 72 bits per 1 KiB codeword
	}
}

// NewMLC returns the calibrated model of a 3D MLC chip.
func NewMLC() *Model {
	means := []float64{-2.0, 1.0, 2.6, 4.2}
	sigmas := []float64{0.45, 0.17, 0.17, 0.17}
	return &Model{
		Kind:         MLC,
		Means:        means,
		Sigmas:       sigmas,
		Refs:         midpoints(means),
		Params:       DefaultParams(),
		ECCLimitRBER: 40.0 / 8192.0,
	}
}

// NewQLC returns a calibrated model of a 4-bit-per-cell chip: sixteen
// states squeezed into the same design window, with correspondingly
// tighter margins (the paper's motivation for why destructive
// reprogramming gets worse as m grows).
func NewQLC() *Model {
	means := make([]float64, 16)
	sigmas := make([]float64, 16)
	means[0], sigmas[0] = -2.0, 0.40
	for i := 1; i < 16; i++ {
		means[i] = 0.2 + float64(i-1)*0.33
		sigmas[i] = 0.062
	}
	return &Model{
		Kind:         QLC,
		Means:        means,
		Sigmas:       sigmas,
		Refs:         midpoints(means),
		Params:       DefaultParams(),
		ECCLimitRBER: 100.0 / 8192.0, // QLC ships with stronger ECC
	}
}

func midpoints(means []float64) []float64 {
	refs := make([]float64, len(means)-1)
	for i := range refs {
		refs[i] = (means[i] + means[i+1]) / 2
	}
	return refs
}

// SampleWLVariation draws a per-wordline process variation factor.
func (m *Model) SampleWLVariation(rng *rand.Rand) float64 {
	return rng.NormFloat64() * m.Params.WLSigma
}

// StateDist returns the Vth distribution of state s under condition c.
func (m *Model) StateDist(s int, c Condition) Dist {
	if s < 0 || s >= len(m.Means) {
		panic(fmt.Sprintf("vth: state %d out of range", s))
	}
	p := m.Params
	mean := m.Means[s]
	sigma := m.Sigmas[s]
	wl := math.Exp(c.WLVariation * 0.25) // mild lognormal per-WL severity

	kc := float64(c.PECycles) / 1000.0
	// P/E cycling widens every state and lifts the erased state.
	sigma *= 1 + p.PESigma*kc*wl
	if s == 0 {
		mean += p.PEShift * kc
	}

	// Retention: programmed states drift down proportionally to their
	// level above erase; all states widen. P/E wear accelerates loss and
	// temperature accelerates it further (Arrhenius).
	if c.RetentionDays > 0 && s > 0 {
		decades := math.Log10(1 + effectiveRetentionDays(c)/p.RetDay0)
		level := (m.Means[s] - m.Means[0]) / (m.Means[len(m.Means)-1] - m.Means[0])
		boost := 1 + p.RetPEBoost*kc*math.Sqrt(kc)
		mean -= p.RetShift * level * decades * boost * wl
		sigma *= 1 + p.RetSigma*decades*boost*wl
	}

	// Read disturb lifts the erased state slightly.
	if s == 0 && c.ReadDisturbs > 0 {
		mean += p.ReadShift * float64(c.ReadDisturbs) / 10000.0
	}

	// Program disturb from pLock pulses on the same WL (data inhibited).
	if s == 0 && c.ProgramDisturbs > 0 {
		over := c.DisturbV - p.PDV0
		if over > 0 {
			mean += p.PDK * over * over * (c.DisturbT / 100.0) * float64(c.ProgramDisturbs)
		}
	}

	// Open interval widens the erased state (weak erased interface).
	if s == 0 && c.OpenIntervalDays > 0 {
		decades := math.Log10(1 + c.OpenIntervalDays/p.OIDay0)
		sigma *= 1 + p.OISigma*decades*(1+0.5*kc)
	}

	return Dist{Mean: mean, Sigma: sigma}
}

// PageRBER returns the raw bit-error rate of page kind pk under condition
// c, assuming uniformly distributed written data (each state equally
// likely). It integrates, for each written state, the probability mass
// landing in read intervals whose decoded bit differs.
func (m *Model) PageRBER(pk PageKind, c Condition) float64 {
	dists := make([]Dist, len(m.Means))
	for s := range dists {
		dists[s] = m.StateDist(s, c)
	}
	return m.rberFromDists(pk, dists)
}

// rberFromDists computes the page RBER for explicit per-state
// distributions (used by the OSR experiments, which replace some states'
// distributions with reprogrammed ones).
func (m *Model) rberFromDists(pk PageKind, dists []Dist) float64 {
	nStates := len(m.Means)
	var total float64
	for s := 0; s < nStates; s++ {
		want := BitOf(m.Kind, s, pk)
		var errProb float64
		for iv := 0; iv < nStates; iv++ {
			if BitOf(m.Kind, iv, pk) == want {
				continue
			}
			lo, hi := m.intervalBounds(iv)
			errProb += dists[s].ProbBetween(lo, hi)
		}
		total += errProb
	}
	return total / float64(nStates)
}

// intervalBounds returns the Vth interval decoded as state iv.
func (m *Model) intervalBounds(iv int) (lo, hi float64) {
	const inf = 1e9
	lo, hi = -inf, inf
	if iv > 0 {
		lo = m.Refs[iv-1]
	}
	if iv < len(m.Refs) {
		hi = m.Refs[iv]
	}
	return lo, hi
}

// NormalizedPageRBER returns PageRBER divided by the ECC limit, matching
// the paper's normalized-RBER axes (1.0 = correction capability).
func (m *Model) NormalizedPageRBER(pk PageKind, c Condition) float64 {
	return m.PageRBER(pk, c) / m.ECCLimitRBER
}

// DecodeVth returns the state an on-chip read decodes for a sampled Vth.
func (m *Model) DecodeVth(v float64) int {
	s := 0
	for s < len(m.Refs) && v > m.Refs[s] {
		s++
	}
	return s
}

// SampleVth draws a Vth for a cell written to state s under condition c.
func (m *Model) SampleVth(s int, c Condition, rng *rand.Rand) float64 {
	return m.StateDist(s, c).Sample(rng)
}

// OSR models the one-shot reprogram sanitization of §4 (Fig. 5): for each
// page in sanitize (applied in order, one pulse each), every state whose
// bit on that page is '1' is programmed up to the position of the next
// higher state whose bit is '0', destroying the bit. States with no
// higher '0' state are left in place, exactly as in the paper's Fig. 5
// where only the E state moves.
//
// The reprogrammed distributions carry an over-programming tail whose
// weight varies per wordline (process variation, Condition.WLVariation);
// tails accumulate across pulses. It returns the per-state distributions
// (indexed by the originally written state) plus a moved mask.
func (m *Model) OSR(c Condition, sanitize []PageKind) ([]Dist, []bool) {
	p := m.Params
	dists := make([]Dist, len(m.Means))
	moved := make([]bool, len(m.Means))
	for s := range dists {
		dists[s] = m.StateDist(s, c)
	}
	// Per-WL over-programming severity: lognormal in the WL variation.
	tailProb := p.OSRTailProb * math.Exp(c.WLVariation)
	if tailProb > 0.5 {
		tailProb = 0.5
	}

	for _, pk := range sanitize {
		for s := 0; s < len(dists); s++ {
			if BitOf(m.Kind, s, pk) != 1 {
				continue
			}
			target := -1
			for t := s + 1; t < len(dists); t++ {
				if BitOf(m.Kind, t, pk) == 0 {
					target = t
					break
				}
			}
			if target < 0 {
				continue // top group: a one-shot pulse cannot destroy it
			}
			mean := m.Means[target]
			if dists[s].Mean > mean {
				mean = dists[s].Mean // never program downwards
			}
			tp := tailProb
			if moved[s] {
				// Second pulse on already-moved cells compounds the tail.
				tp = 1 - (1-dists[s].TailProb)*(1-tailProb)
			}
			dists[s] = Dist{
				Mean:      mean,
				Sigma:     p.OSRSigma,
				TailProb:  tp,
				TailShift: p.OSRTailShift,
				TailSigma: p.OSRTailSigma,
			}
			moved[s] = true
		}
	}
	return dists, moved
}

// OSRPageRBER returns the RBER of page pk after OSR-sanitizing the pages
// in sanitize, under condition c. Retention in c is applied after the
// reprogram; one-shot reprogrammed (unverified) cells lose charge faster
// (Params.OSRRetBoost), which reproduces the paper's "after retention"
// boxes.
func (m *Model) OSRPageRBER(pk PageKind, c Condition, sanitize []PageKind) float64 {
	// Build the post-OSR distributions at the moment of reprogram
	// (retention applies afterwards).
	atReprogram := c
	atReprogram.RetentionDays = 0
	dists, moved := m.OSR(atReprogram, sanitize)
	if c.RetentionDays > 0 {
		p := m.Params
		kc := float64(c.PECycles) / 1000.0
		decades := math.Log10(1 + effectiveRetentionDays(c)/p.RetDay0)
		boost := 1 + p.RetPEBoost*kc*math.Sqrt(kc)
		wl := math.Exp(c.WLVariation * 0.25)
		span := m.Means[len(m.Means)-1] - m.Means[0]
		for s := range dists {
			if s == 0 && !moved[s] {
				continue // erased cells do not lose charge
			}
			level := (dists[s].Mean - m.Means[0]) / span
			if level < 0 {
				level = 0
			}
			osr := 1.0
			if moved[s] {
				osr = p.OSRRetBoost
			}
			dists[s].Mean -= p.RetShift * level * decades * boost * wl * osr
			dists[s].Sigma *= 1 + p.RetSigma*decades*boost*wl*osr
		}
	}
	return m.rberFromDists(pk, dists)
}

// OptimalRefs returns read reference voltages recalibrated for the given
// condition: each boundary moves to the crossing point of its two
// neighbouring state distributions, which is what a read-retry /
// reference-tuning controller converges to. This mitigates retention-
// induced shifts (the error-recovery techniques of the paper's related
// work [29][34]) — but it recovers nothing from a locked page, whose
// data never reaches the sense amplifiers.
func (m *Model) OptimalRefs(c Condition) []float64 {
	refs := make([]float64, len(m.Refs))
	for i := range refs {
		lo := m.StateDist(i, c)
		hi := m.StateDist(i+1, c)
		refs[i] = crossing(lo, hi, m.Refs[i])
	}
	return refs
}

// crossing locates the point between the two distributions' means where
// their densities are closest (bisection on the CDF-derived error sum,
// which is convex between the means).
func crossing(lo, hi Dist, fallback float64) float64 {
	a, b := lo.Mean, hi.Mean
	if a >= b {
		return fallback
	}
	// Minimize err(x) = P(lo > x) + P(hi <= x) by ternary search.
	f := func(x float64) float64 { return 1 - lo.CDF(x) + hi.CDF(x) }
	for i := 0; i < 60; i++ {
		m1 := a + (b-a)/3
		m2 := b - (b-a)/3
		if f(m1) < f(m2) {
			b = m2
		} else {
			a = m1
		}
	}
	return (a + b) / 2
}

// PageRBERWithRefs computes the page RBER using explicit read references
// (e.g. from OptimalRefs) instead of the nominal ones.
func (m *Model) PageRBERWithRefs(pk PageKind, c Condition, refs []float64) float64 {
	if len(refs) != len(m.Refs) {
		panic(fmt.Sprintf("vth: %d refs, want %d", len(refs), len(m.Refs)))
	}
	saved := m.Refs
	m.Refs = refs
	defer func() { m.Refs = saved }()
	dists := make([]Dist, len(m.Means))
	for s := range dists {
		dists[s] = m.StateDist(s, c)
	}
	return m.rberFromDists(pk, dists)
}
