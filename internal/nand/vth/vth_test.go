package vth

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCellKindBasics(t *testing.T) {
	cases := []struct {
		k      CellKind
		bits   int
		states int
		name   string
	}{
		{SLC, 1, 2, "SLC"},
		{MLC, 2, 4, "MLC"},
		{TLC, 3, 8, "TLC"},
		{QLC, 4, 16, "QLC"},
	}
	for _, c := range cases {
		if c.k.Bits() != c.bits || c.k.States() != c.states || c.k.String() != c.name {
			t.Errorf("%v: Bits=%d States=%d String=%q", c.k, c.k.Bits(), c.k.States(), c.k.String())
		}
		if len(PagesPerWL(c.k)) != c.bits {
			t.Errorf("%v: PagesPerWL has %d pages, want %d", c.k, len(PagesPerWL(c.k)), c.bits)
		}
	}
}

// Gray property: adjacent states differ in exactly one page bit, so a
// single-reference misread corrupts only one page.
func TestGrayCodeAdjacency(t *testing.T) {
	for _, k := range []CellKind{MLC, TLC, QLC} {
		pages := PagesPerWL(k)
		for s := 0; s < k.States()-1; s++ {
			diff := 0
			for _, p := range pages {
				if BitOf(k, s, p) != BitOf(k, s+1, p) {
					diff++
				}
			}
			if diff != 1 {
				t.Errorf("%v: states %d and %d differ in %d bits, want 1", k, s, s+1, diff)
			}
		}
	}
}

// Completeness: every bit combination maps to exactly one state.
func TestGrayCodeComplete(t *testing.T) {
	for _, k := range []CellKind{SLC, MLC, TLC, QLC} {
		pages := PagesPerWL(k)
		seen := map[int]bool{}
		n := k.States()
		for combo := 0; combo < n; combo++ {
			bits := make([]byte, len(pages))
			for i := range bits {
				bits[i] = byte((combo >> uint(i)) & 1)
			}
			s := StateFor(k, bits)
			if seen[s] {
				t.Fatalf("%v: state %d encodes two bit combinations", k, s)
			}
			seen[s] = true
			// And BitOf must invert StateFor.
			for i, p := range pages {
				if BitOf(k, s, p) != bits[i] {
					t.Fatalf("%v: BitOf(state %d, %v) != %d", k, s, p, bits[i])
				}
			}
		}
		if len(seen) != n {
			t.Fatalf("%v: only %d of %d states reachable", k, len(seen), n)
		}
	}
}

func TestErasedStateIsAllOnes(t *testing.T) {
	for _, k := range []CellKind{SLC, MLC, TLC, QLC} {
		for _, p := range PagesPerWL(k) {
			if BitOf(k, 0, p) != 1 {
				t.Errorf("%v: erased state must read 1 on %v page", k, p)
			}
		}
	}
}

func TestMatchesPaperGrayTables(t *testing.T) {
	// Fig. 2(a): MLC E=11, P1=10, P2=00, P3=01 (MSB, LSB).
	wantMLC := [][2]byte{{1, 1}, {1, 0}, {0, 0}, {0, 1}}
	for s, w := range wantMLC {
		if BitOf(MLC, s, MSB) != w[0] || BitOf(MLC, s, LSB) != w[1] {
			t.Errorf("MLC state %d: got %d%d, want %d%d", s,
				BitOf(MLC, s, MSB), BitOf(MLC, s, LSB), w[0], w[1])
		}
	}
	// Fig. 2(b): TLC 111,110,100,000,010,011,001,101 (MSB, CSB, LSB).
	wantTLC := [][3]byte{{1, 1, 1}, {1, 1, 0}, {1, 0, 0}, {0, 0, 0}, {0, 1, 0}, {0, 1, 1}, {0, 0, 1}, {1, 0, 1}}
	for s, w := range wantTLC {
		if BitOf(TLC, s, MSB) != w[0] || BitOf(TLC, s, CSB) != w[1] || BitOf(TLC, s, LSB) != w[2] {
			t.Errorf("TLC state %d mismatch", s)
		}
	}
}

func TestBitOfPanicsOnBadInput(t *testing.T) {
	for _, fn := range []func(){
		func() { BitOf(TLC, 8, LSB) },
		func() { BitOf(TLC, -1, LSB) },
		func() { BitOf(SLC, 0, MSB) },
		func() { BitOf(MLC, 0, CSB) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestDistCDFMonotone(t *testing.T) {
	d := Dist{Mean: 1, Sigma: 0.3, TailProb: 0.05, TailShift: 1.2, TailSigma: 0.4}
	prev := -1.0
	for x := -3.0; x <= 6.0; x += 0.1 {
		v := d.CDF(x)
		if v < prev {
			t.Fatalf("CDF not monotone at %v", x)
		}
		if v < 0 || v > 1 {
			t.Fatalf("CDF(%v) = %v out of [0,1]", x, v)
		}
		prev = v
	}
	if d.CDF(100) < 0.9999 {
		t.Fatal("CDF should approach 1")
	}
}

func TestDistSampleMatchesCDF(t *testing.T) {
	d := Dist{Mean: 2, Sigma: 0.5, TailProb: 0.1, TailShift: 2, TailSigma: 0.3}
	rng := rand.New(rand.NewSource(7))
	const n = 200000
	x := 2.8
	hits := 0
	for i := 0; i < n; i++ {
		if d.Sample(rng) <= x {
			hits++
		}
	}
	got := float64(hits) / n
	want := d.CDF(x)
	if math.Abs(got-want) > 0.01 {
		t.Fatalf("Monte-Carlo CDF(%v) = %v, closed form %v", x, got, want)
	}
}

func TestDecodeVthRoundTrip(t *testing.T) {
	m := NewTLC()
	for s := 0; s < m.Kind.States(); s++ {
		if got := m.DecodeVth(m.Means[s]); got != s {
			t.Errorf("DecodeVth(mean of state %d) = %d", s, got)
		}
	}
}

func TestFreshPagesWellBelowECCLimit(t *testing.T) {
	for _, m := range []*Model{NewTLC(), NewMLC()} {
		for _, pk := range PagesPerWL(m.Kind) {
			if r := m.NormalizedPageRBER(pk, Condition{}); r >= 0.5 {
				t.Errorf("%v %v fresh normalized RBER %v, want < 0.5", m.Kind, pk, r)
			}
		}
	}
}

func TestRBERIncreasesWithPE(t *testing.T) {
	m := NewTLC()
	prev := 0.0
	for _, pe := range []int{0, 500, 1000, 2000} {
		r := m.PageRBER(MSB, Condition{PECycles: pe})
		if r < prev {
			t.Fatalf("RBER decreased with P/E cycles at %d", pe)
		}
		prev = r
	}
}

func TestRBERIncreasesWithRetention(t *testing.T) {
	m := NewTLC()
	prev := 0.0
	for _, days := range []float64{0, 10, 100, 365, 1825} {
		r := m.PageRBER(MSB, Condition{PECycles: 1000, RetentionDays: days})
		if r < prev {
			t.Fatalf("RBER decreased with retention at %v days", days)
		}
		prev = r
	}
}

// Fig. 10: RBER grows with the open interval; the paper measures ~30%
// growth from a zero interval to the longest one.
func TestOpenIntervalEffect(t *testing.T) {
	m := NewTLC()
	zero := m.PageRBER(LSB, Condition{})
	long := m.PageRBER(LSB, Condition{OpenIntervalDays: 10})
	if long <= zero {
		t.Fatal("open interval should raise RBER")
	}
	growth := long/zero - 1
	if growth < 0.15 || growth > 0.8 {
		t.Errorf("open-interval growth %.2f, want roughly 0.3 (0.15..0.8)", growth)
	}
	// Lines are ordered: fresh < P/E < P/E+retention at every interval.
	for _, d := range []float64{0, 0.01, 1, 10} {
		fresh := m.PageRBER(LSB, Condition{OpenIntervalDays: d})
		pe := m.PageRBER(LSB, Condition{OpenIntervalDays: d, PECycles: 1000})
		ret := m.PageRBER(LSB, Condition{OpenIntervalDays: d, PECycles: 1000, RetentionDays: 365})
		if !(fresh < pe && pe < ret) {
			t.Errorf("interval %v days: lines out of order (%v, %v, %v)", d, fresh, pe, ret)
		}
	}
}

// Fig. 6(a): after OSR-sanitizing the LSB page of a 3K-P/E MLC wordline, a
// meaningful minority (~7%) of MSB pages exceed the ECC limit, and after a
// 1-year retention most do, with worst cases beyond 1.5x.
func TestOSRMLCMatchesFig6a(t *testing.T) {
	m := NewMLC()
	rng := rand.New(rand.NewSource(11))
	const wls = 4000
	above, aboveRet := 0, 0
	maxRet := 0.0
	for i := 0; i < wls; i++ {
		c := Condition{PECycles: 3000, WLVariation: m.SampleWLVariation(rng)}
		if m.OSRPageRBER(MSB, c, []PageKind{LSB})/m.ECCLimitRBER > 1 {
			above++
		}
		cr := c
		cr.RetentionDays = 365
		ret := m.OSRPageRBER(MSB, cr, []PageKind{LSB}) / m.ECCLimitRBER
		if ret > 1 {
			aboveRet++
		}
		if ret > maxRet {
			maxRet = ret
		}
	}
	fracOSR := float64(above) / wls
	fracRet := float64(aboveRet) / wls
	if fracOSR < 0.03 || fracOSR > 0.15 {
		t.Errorf("MLC OSR: %.1f%% of MSB pages above ECC limit, paper reports 7.4%%", 100*fracOSR)
	}
	if fracRet < 0.5 {
		t.Errorf("MLC OSR + 1y retention: only %.1f%% above limit, paper says most", 100*fracRet)
	}
	if maxRet < 1.5 {
		t.Errorf("MLC OSR + retention worst case %.2f, paper reports > 1.5x", maxRet)
	}
}

// Fig. 6(b): OSR-sanitizing LSB+CSB of a 1K-P/E TLC wordline makes every
// MSB page unreadable.
func TestOSRTLCMatchesFig6b(t *testing.T) {
	m := NewTLC()
	rng := rand.New(rand.NewSource(12))
	for i := 0; i < 1000; i++ {
		c := Condition{PECycles: 1000, WLVariation: m.SampleWLVariation(rng)}
		r := m.OSRPageRBER(MSB, c, []PageKind{LSB, CSB}) / m.ECCLimitRBER
		if r <= 1 {
			t.Fatalf("TLC MSB page readable after LSB+CSB OSR (%.3f); paper: all unreadable", r)
		}
	}
}

// OSR destroys the target page: the sanitized LSB's own error rate must be
// enormous (the E and P1 distributions merge).
func TestOSRDestroysTargetPage(t *testing.T) {
	m := NewMLC()
	c := Condition{PECycles: 3000}
	r := m.OSRPageRBER(LSB, c, []PageKind{LSB})
	if r < 0.05 {
		t.Fatalf("sanitized LSB RBER %.4f, expected catastrophic (>5%%)", r)
	}
}

// Only the intended states move: in MLC LSB sanitization, P2 and P3 keep
// their distributions (Fig. 5 shows 00 and 01 unchanged).
func TestOSRMovesOnlyErasedStateForMLCLSB(t *testing.T) {
	m := NewMLC()
	c := Condition{PECycles: 3000}
	dists, moved := m.OSR(c, []PageKind{LSB})
	if !moved[0] {
		t.Fatal("E state should be reprogrammed")
	}
	if moved[1] || moved[2] || moved[3] {
		t.Fatalf("only E should move, got moved=%v", moved)
	}
	if dists[0].Mean < m.Means[1]-0.01 {
		t.Fatal("E state should land at P1's position")
	}
}

func TestProgramDisturbRaisesRBER(t *testing.T) {
	m := NewTLC()
	base := m.PageRBER(LSB, Condition{PECycles: 1000})
	d := m.PageRBER(LSB, Condition{PECycles: 1000, ProgramDisturbs: 1, DisturbV: 17.5, DisturbT: 200})
	if d <= base {
		t.Fatal("program disturb should raise RBER")
	}
	// Below the disturb onset voltage nothing happens.
	low := m.PageRBER(LSB, Condition{PECycles: 1000, ProgramDisturbs: 1, DisturbV: 15.5, DisturbT: 200})
	if low != base {
		t.Fatal("sub-threshold disturb voltage should not change RBER")
	}
}

// Fig. 9(c) anchor: the paper measures 47.3% flag-programming success at
// the lowest corner (Vp1, 100µs).
func TestFlagProgramSuccessAnchor(t *testing.T) {
	f := DefaultFlagModel()
	got := f.ProgramSuccessProb(PLockVoltages[0], 100)
	if math.Abs(got-0.473) > 0.01 {
		t.Fatalf("success at (Vp1,100µs) = %.3f, paper measures 0.473", got)
	}
	// Success increases with both voltage and latency.
	if f.ProgramSuccessProb(PLockVoltages[3], 100) <= got {
		t.Fatal("higher voltage should program more reliably")
	}
	if f.ProgramSuccessProb(PLockVoltages[0], 200) <= got {
		t.Fatal("longer pulse should program more reliably")
	}
}

// Fig. 9(d): the chosen operating point (ii) = (Vp4, 100µs) keeps a 9-cell
// majority flag correct for 5 years at 1K P/E, while the rejected corner
// (vi) = (Vp2, 200µs) loses the majority.
func TestFlagRetentionFeasibility(t *testing.T) {
	f := DefaultFlagModel()
	const fiveYears = 5 * 365
	// (ii): expected errors comfortably below the majority threshold.
	errsII := f.ExpectedRetentionErrors(9, PLockVoltages[3], 100, fiveYears, 1000)
	if errsII > 2 {
		t.Fatalf("(Vp4,100µs) expected errors %.2f at 5y, paper reports <= 2", errsII)
	}
	if mf := f.MajorityFailureProb(9, PLockVoltages[3], 100, fiveYears, 1000); mf > 1e-2 {
		t.Fatalf("(Vp4,100µs) majority failure prob %.3g, want < 1%%", mf)
	}
	// (vi): around 5 of 9 cells fail, flipping the majority.
	errsVI := f.ExpectedRetentionErrors(9, PLockVoltages[1], 200, fiveYears, 1000)
	if errsVI < 4 {
		t.Fatalf("(Vp2,200µs) expected errors %.2f at 5y, paper reports ~5", errsVI)
	}
	if mf := f.MajorityFailureProb(9, PLockVoltages[1], 200, fiveYears, 1000); mf < 0.5 {
		t.Fatalf("(Vp2,200µs) majority failure prob %.3g, should fail", mf)
	}
}

func TestMajorityCircuit(t *testing.T) {
	f := DefaultFlagModel()
	all := []float64{2, 2, 2, 2, 2, 2, 2, 2, 2}
	if !f.MajorityReadsDisabled(all) {
		t.Fatal("all-programmed flag should read disabled")
	}
	split := []float64{2, 2, 2, 2, 0, 0, 0, 0, 0} // 4 programmed of 9
	if f.MajorityReadsDisabled(split) {
		t.Fatal("minority-programmed flag should read enabled")
	}
	five := []float64{2, 2, 2, 2, 2, 0, 0, 0, 0}
	if !f.MajorityReadsDisabled(five) {
		t.Fatal("5-of-9 programmed flag should read disabled")
	}
}

func TestMajorityFailureProbMonotoneInK(t *testing.T) {
	f := DefaultFlagModel()
	// With per-cell error prob < 0.5, more redundancy means lower failure.
	prev := 1.0
	for _, k := range []int{5, 7, 9, 11} {
		p := f.MajorityFailureProb(k, PLockVoltages[3], 150, 365, 1000)
		if p > prev {
			t.Fatalf("majority failure increased from k=%d", k)
		}
		prev = p
	}
}

// Fig. 11(b): a block read fails (normalized RBER crosses 1.0) once the
// SSL center Vth exceeds about 3 V.
func TestSSLCutoffNear3V(t *testing.T) {
	m := NewTLC()
	s := DefaultSSLModel()
	base := m.PageRBER(MSB, Condition{PECycles: 1000})
	at25 := s.BlockReadRBER(2.5, base) / m.ECCLimitRBER
	at30 := s.BlockReadRBER(3.0, base) / m.ECCLimitRBER
	at35 := s.BlockReadRBER(3.5, base) / m.ECCLimitRBER
	if at25 >= 1 {
		t.Fatalf("RBER at 2.5V = %.2f, should be below ECC limit", at25)
	}
	if at30 < 0.8 || at30 > 1.5 {
		t.Fatalf("RBER at 3.0V = %.2f, should cross the limit around 3V", at30)
	}
	if at35 <= 2 {
		t.Fatalf("RBER at 3.5V = %.2f, should be far beyond the limit", at35)
	}
}

// Fig. 12: the final bLock operating point (ii) = (Vb6, 300µs) keeps the
// SSL center above the 3V disable threshold for 5 years; (i) = (Vb6,400µs)
// stays above 4V; the rejected (vi) = (Vb5, 200µs) drops below 3V within a
// year.
func TestBLockDesignSpaceFeasibility(t *testing.T) {
	s := DefaultSSLModel()
	const year, fiveYears = 365, 5 * 365
	vb5, vb6 := BLockVoltages[4], BLockVoltages[5]
	if c := s.CenterAfter(vb6, 400, fiveYears); c < 4 {
		t.Errorf("(i)=(Vb6,400): center %.2f at 5y, paper predicts > 4V", c)
	}
	if c := s.CenterAfter(vb6, 300, fiveYears); c < s.DisableThreshold {
		t.Errorf("(ii)=(Vb6,300): center %.2f at 5y, must stay above 3V", c)
	}
	if c := s.CenterAfter(vb5, 200, year); c >= s.DisableThreshold {
		t.Errorf("(vi)=(Vb5,200): center %.2f at 1y, paper predicts < 3V before 1 year", c)
	}
	// Region I: every Vb1..Vb4 combo fails to reach 3V even at 400µs.
	for _, v := range BLockVoltages[:4] {
		if c := s.ProgrammedCenter(v, 400); c >= s.DisableThreshold {
			t.Errorf("V=%.0f: programmed center %.2f should be below 3V (Region I)", v, c)
		}
	}
	// All Vb5/Vb6 combos are candidates.
	for _, v := range []float64{vb5, vb6} {
		for _, dur := range BLockLatencies {
			if c := s.ProgrammedCenter(v, dur); c < s.DisableThreshold {
				t.Errorf("candidate (%.0f,%.0f) programmed center %.2f below 3V", v, dur, c)
			}
		}
	}
}

func TestSSLCenterDecaysMonotonically(t *testing.T) {
	s := DefaultSSLModel()
	prev := math.Inf(1)
	for _, days := range []float64{0, 1, 10, 100, 1000} {
		c := s.CenterAfter(21, 300, days)
		if c > prev {
			t.Fatal("SSL center must not rise with retention")
		}
		prev = c
	}
}

// Property: PageRBER is always a valid probability and normalization is
// consistent.
func TestPageRBERValidProperty(t *testing.T) {
	m := NewTLC()
	f := func(pe uint16, days uint16, wlv int8) bool {
		c := Condition{
			PECycles:      int(pe % 3000),
			RetentionDays: float64(days % 2000),
			WLVariation:   float64(wlv) / 64.0,
		}
		for _, pk := range PagesPerWL(m.Kind) {
			r := m.PageRBER(pk, c)
			if r < 0 || r > 1 || math.IsNaN(r) {
				return false
			}
			if math.Abs(m.NormalizedPageRBER(pk, c)-r/m.ECCLimitRBER) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Monte-Carlo page read agrees with the closed-form RBER.
func TestMonteCarloAgreesWithClosedForm(t *testing.T) {
	m := NewTLC()
	c := Condition{PECycles: 1000, RetentionDays: 100}
	rng := rand.New(rand.NewSource(99))
	const cells = 400000
	errs := 0
	for i := 0; i < cells; i++ {
		s := rng.Intn(m.Kind.States())
		v := m.SampleVth(s, c, rng)
		got := m.DecodeVth(v)
		if BitOf(m.Kind, got, MSB) != BitOf(m.Kind, s, MSB) {
			errs++
		}
	}
	mc := float64(errs) / cells
	cf := m.PageRBER(MSB, c)
	if math.Abs(mc-cf) > cf*0.25+1e-4 {
		t.Fatalf("Monte-Carlo RBER %.5f vs closed form %.5f", mc, cf)
	}
}

func TestQLCModel(t *testing.T) {
	m := NewQLC()
	if m.Kind != QLC || len(m.Means) != 16 || len(m.Refs) != 15 {
		t.Fatalf("QLC model shape: %d states, %d refs", len(m.Means), len(m.Refs))
	}
	// Means strictly increasing, refs between neighbours.
	for i := 1; i < len(m.Means); i++ {
		if m.Means[i] <= m.Means[i-1] {
			t.Fatal("QLC means not increasing")
		}
	}
	// Fresh QLC must still be readable on all four pages...
	for _, pk := range PagesPerWL(QLC) {
		if r := m.NormalizedPageRBER(pk, Condition{}); r >= 1 {
			t.Errorf("fresh QLC %v page normalized RBER %.2f >= limit", pk, r)
		}
	}
	// ...but QLC is less reliable than TLC under identical stress — the
	// paper's motivation for why destructive sanitization stops scaling.
	tlc := NewTLC()
	stress := Condition{PECycles: 1000, RetentionDays: 365}
	if m.PageRBER(MSB, stress) <= tlc.PageRBER(MSB, stress) {
		t.Error("QLC should be less reliable than TLC under stress")
	}
}

func TestQLCDecodeRoundTrip(t *testing.T) {
	m := NewQLC()
	for s := 0; s < 16; s++ {
		if got := m.DecodeVth(m.Means[s]); got != s {
			t.Errorf("QLC DecodeVth(mean[%d]) = %d", s, got)
		}
	}
}

// OSR sequencing: a second pulse on already-moved cells must compound the
// over-programming tail, never shrink it.
func TestOSRTailCompounds(t *testing.T) {
	m := NewTLC()
	c := Condition{PECycles: 1000, WLVariation: 0.5}
	one, movedOne := m.OSR(c, []PageKind{LSB})
	two, movedTwo := m.OSR(c, []PageKind{LSB, CSB})
	if !movedOne[0] || !movedTwo[0] {
		t.Fatal("E state must move in both cases")
	}
	if two[0].TailProb < one[0].TailProb {
		t.Fatalf("second pulse shrank the tail: %.4f -> %.4f", one[0].TailProb, two[0].TailProb)
	}
	// OSR never programs downwards.
	for s := range two {
		if movedTwo[s] && two[s].Mean < m.Means[s]-1e-9 {
			t.Fatalf("state %d moved down", s)
		}
	}
}

// Arrhenius temperature acceleration: 30°C is the identity, and the
// standard 85°C bake accelerates charge loss by hundreds of times.
func TestRetentionAcceleration(t *testing.T) {
	if got := RetentionAcceleration(0); got != 1 {
		t.Fatalf("AF(default) = %v, want 1", got)
	}
	if got := RetentionAcceleration(30); math.Abs(got-1) > 1e-9 {
		t.Fatalf("AF(30°C) = %v, want 1", got)
	}
	af85 := RetentionAcceleration(85)
	if af85 < 100 || af85 > 5000 {
		t.Fatalf("AF(85°C) = %v, want O(100..1000)", af85)
	}
	// Monotone in temperature.
	if RetentionAcceleration(55) >= af85 || RetentionAcceleration(55) <= 1 {
		t.Fatal("acceleration must grow with temperature")
	}
}

func TestHotStorageAgesFaster(t *testing.T) {
	m := NewTLC()
	cold := m.PageRBER(MSB, Condition{PECycles: 1000, RetentionDays: 30})
	hot := m.PageRBER(MSB, Condition{PECycles: 1000, RetentionDays: 30, TempC: 85})
	if hot <= cold {
		t.Fatal("85°C retention must degrade more than 30°C")
	}
	// 30 days at 85°C should be equivalent to AF*30 days at 30°C.
	af := RetentionAcceleration(85)
	equiv := m.PageRBER(MSB, Condition{PECycles: 1000, RetentionDays: 30 * af})
	if math.Abs(hot-equiv)/equiv > 1e-9 {
		t.Fatalf("temperature scaling inconsistent: %v vs %v", hot, equiv)
	}
}

// Read-retry (reference recalibration) recovers retention-shifted pages:
// the tuned references track the drifted distributions and cut RBER,
// often pulling an over-the-limit page back under it.
func TestOptimalRefsMitigateRetention(t *testing.T) {
	m := NewTLC()
	c := Condition{PECycles: 1000, RetentionDays: 3 * 365}
	nominal := m.PageRBER(MSB, c)
	tuned := m.PageRBERWithRefs(MSB, c, m.OptimalRefs(c))
	if tuned >= nominal {
		t.Fatalf("tuned refs did not help: %.5g vs %.5g", tuned, nominal)
	}
	if tuned > nominal*0.7 {
		t.Errorf("read-retry gain too small: %.5g -> %.5g", nominal, tuned)
	}
	// On a fresh page the nominal midpoints are already near optimal.
	fresh := Condition{}
	n0 := m.PageRBER(MSB, fresh)
	t0 := m.PageRBERWithRefs(MSB, fresh, m.OptimalRefs(fresh))
	if t0 > n0*1.01 {
		t.Errorf("tuning a fresh page made it worse: %.5g -> %.5g", n0, t0)
	}
}

func TestPageRBERWithRefsValidation(t *testing.T) {
	m := NewTLC()
	defer func() {
		if recover() == nil {
			t.Fatal("wrong ref count should panic")
		}
	}()
	m.PageRBERWithRefs(MSB, Condition{}, []float64{1, 2})
}
