package vth

// Calibration probe — prints model outputs for the paper's experiment
// conditions so the calibrated constants can be sanity-checked with
// `go test -run TestCalibrationProbe -v`.

import (
	"math/rand"
	"testing"
)

func TestCalibrationProbe(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration probe")
	}
	tlc := NewTLC()
	mlc := NewMLC()
	rng := rand.New(rand.NewSource(42))

	// --- Fig 6 style: MSB RBER under OSR.
	probe := func(m *Model, pe int, sanitize []PageKind, label string) {
		nAbove := 0
		nAboveRet := 0
		const wls = 2000
		var sumInit, sumOSR, sumRet float64
		for i := 0; i < wls; i++ {
			c := Condition{PECycles: pe, WLVariation: m.SampleWLVariation(rng)}
			init := m.NormalizedPageRBER(MSB, c)
			osr := m.OSRPageRBER(MSB, c, sanitize) / m.ECCLimitRBER
			cr := c
			cr.RetentionDays = 365
			ret := m.OSRPageRBER(MSB, cr, sanitize) / m.ECCLimitRBER
			sumInit += init
			sumOSR += osr
			sumRet += ret
			if osr > 1 {
				nAbove++
			}
			if ret > 1 {
				nAboveRet++
			}
		}
		t.Logf("%s: init=%.3f osr=%.3f ret=%.3f | %%>limit: osr=%.1f%% ret=%.1f%%",
			label, sumInit/wls, sumOSR/wls, sumRet/wls,
			100*float64(nAbove)/wls, 100*float64(nAboveRet)/wls)
	}
	probe(mlc, 3000, []PageKind{LSB}, "MLC 3K P/E sanitize LSB")
	probe(tlc, 1000, []PageKind{LSB, CSB}, "TLC 1K P/E sanitize LSB+CSB")

	// --- Baseline valid-page RBER (should be < 1.0 with margin).
	t.Logf("TLC MSB fresh=%.3f 1KPE=%.3f 1KPE+1y=%.3f",
		tlc.NormalizedPageRBER(MSB, Condition{}),
		tlc.NormalizedPageRBER(MSB, Condition{PECycles: 1000}),
		tlc.NormalizedPageRBER(MSB, Condition{PECycles: 1000, RetentionDays: 365}))
	t.Logf("TLC LSB fresh=%.3f", tlc.NormalizedPageRBER(LSB, Condition{}))

	// --- Fig 9b: program disturb ratio grid.
	base := tlc.PageRBER(LSB, Condition{PECycles: 1000})
	for _, v := range PLockVoltages {
		for _, dur := range PLockLatencies {
			c := Condition{PECycles: 1000, ProgramDisturbs: 1, DisturbV: v, DisturbT: dur}
			r := tlc.PageRBER(LSB, c) / base
			t.Logf("fig9b V=%.1f t=%.0f ratio=%.3f", v, dur, r)
		}
	}

	// --- Fig 9c: flag program success.
	fm := DefaultFlagModel()
	for _, v := range PLockVoltages {
		for _, dur := range PLockLatencies {
			t.Logf("fig9c V=%.1f t=%.0f success=%.4f", v, dur, fm.ProgramSuccessProb(v, dur))
		}
	}

	// --- Fig 9d: retention errors (k=9) at 1y and 5y for candidates.
	for _, combo := range [][2]float64{{17.0, 150}, {17.0, 100}, {16.5, 200}, {16.5, 150}, {16.0, 150}, {16.0, 200}} {
		e1 := fm.ExpectedRetentionErrors(9, combo[0], combo[1], 365, 1000)
		e5 := fm.ExpectedRetentionErrors(9, combo[0], combo[1], 1825, 1000)
		mf := fm.MajorityFailureProb(9, combo[0], combo[1], 1825, 1000)
		t.Logf("fig9d V=%.1f t=%.0f errs1y=%.2f errs5y=%.2f majFail5y=%.2e", combo[0], combo[1], e1, e5, mf)
	}

	// --- Fig 12: SSL centers.
	sm := DefaultSSLModel()
	for _, v := range BLockVoltages {
		for _, dur := range BLockLatencies {
			c0 := sm.ProgrammedCenter(v, dur)
			c1y := sm.CenterAfter(v, dur, 365)
			c5y := sm.CenterAfter(v, dur, 1825)
			t.Logf("fig12 V=%.0f t=%.0f prog=%.2f 1y=%.2f 5y=%.2f", v, dur, c0, c1y, c5y)
		}
	}

	// --- Fig 11b: block read RBER vs SSL center.
	baseT := tlc.PageRBER(MSB, Condition{PECycles: 1000})
	for _, center := range []float64{1, 2, 2.5, 3, 3.5, 4, 5} {
		r := sm.BlockReadRBER(center, baseT) / tlc.ECCLimitRBER
		t.Logf("fig11b center=%.1f normRBER=%.3f", center, r)
	}

	// --- Fig 10: open interval.
	for _, days := range []float64{0, 0.001, 0.01, 0.1, 1, 10} {
		fresh := tlc.NormalizedPageRBER(LSB, Condition{OpenIntervalDays: days})
		pe := tlc.NormalizedPageRBER(LSB, Condition{OpenIntervalDays: days, PECycles: 1000})
		ret := tlc.NormalizedPageRBER(LSB, Condition{OpenIntervalDays: days, PECycles: 1000, RetentionDays: 365})
		t.Logf("fig10 oi=%gd fresh=%.3f pe=%.3f pe+ret=%.3f", days, fresh, pe, ret)
	}
}
