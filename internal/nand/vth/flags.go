package vth

import (
	"math"
	"math/rand"
)

// PLockVoltage enumerates the Ψ axis of the pLock design space (§5.3):
// five one-shot program voltages Vp1..Vp5 spaced 0.5 V apart. The absolute
// values are below the normal >20 V program voltage, matching the paper's
// "lower program voltage" requirement.
var PLockVoltages = []float64{15.5, 16.0, 16.5, 17.0, 17.5}

// PLockLatencies is the T axis of the pLock design space, in µs.
var PLockLatencies = []float64{100, 150, 200}

// BLockVoltages is the Ψ axis of the bLock design space: Vb1..Vb6 spaced
// 1.0 V apart.
var BLockVoltages = []float64{16, 17, 18, 19, 20, 21}

// BLockLatencies is the T axis of the bLock design space, in µs.
var BLockLatencies = []float64{200, 300, 400}

// FlagModel describes the SLC flag cells that implement the per-page pAP
// flags in the spare area of a wordline. A flag cell is "programmed"
// (disabled state) when its Vth exceeds ReadRef.
type FlagModel struct {
	// ReadRef is the SLC read reference voltage separating the enabled
	// (erased) and disabled (programmed) flag states.
	ReadRef float64
	// Sigma is the programmed-distribution standard deviation.
	Sigma float64
	// MuBase is the programmed mean at (V = Vp1, t = 100 µs); the paper's
	// measured 47.3 % success rate for that corner pins this value just
	// below ReadRef.
	MuBase float64
	// VGain is the mean gain per volt of program voltage above Vp1.
	VGain float64
	// TGain is the mean gain per doubling of the pulse duration over 100 µs.
	TGain float64
	// RetBase/RetVSlope control charge loss: the programmed mean decays by
	// (RetBase - RetVSlope*(V-Vp1)) * log10(1+days) — cells programmed at
	// higher voltage trap charge more deeply and retain it better.
	RetBase   float64
	RetVSlope float64
	// PEBoost accelerates retention loss per 1000 P/E cycles (fraction).
	PEBoost float64
}

// DefaultFlagModel returns the calibrated pAP flag-cell model.
func DefaultFlagModel() FlagModel {
	return FlagModel{
		ReadRef:   1.0,
		Sigma:     0.30,
		MuBase:    0.98, // 47.3 % success at (Vp1, 100 µs)
		VGain:     0.90,
		TGain:     0.90,
		RetBase:   0.51,
		RetVSlope: 0.18,
		PEBoost:   0.10,
	}
}

// ProgrammedMean returns the mean Vth right after a one-shot flag program
// with voltage v (V) and duration t (µs).
func (f FlagModel) ProgrammedMean(v, t float64) float64 {
	return f.MuBase + f.VGain*(v-PLockVoltages[0]) + f.TGain*math.Log2(t/100)
}

// MeanAfter returns the mean Vth after days of retention at 30 °C for a
// flag programmed with (v, t) on a block with peCycles P/E cycles.
func (f FlagModel) MeanAfter(v, t, days float64, peCycles int) float64 {
	mu := f.ProgrammedMean(v, t)
	if days <= 0 {
		return mu
	}
	rate := f.RetBase - f.RetVSlope*(v-PLockVoltages[0])
	if rate < 0.02 {
		rate = 0.02
	}
	rate *= 1 + f.PEBoost*float64(peCycles)/1000
	return mu - rate*math.Log10(1+days)
}

// ProgramSuccessProb returns the probability that a single flag cell reads
// as programmed immediately after a one-shot pulse with (v, t).
func (f FlagModel) ProgramSuccessProb(v, t float64) float64 {
	return 1 - phi((f.ReadRef-f.ProgrammedMean(v, t))/f.Sigma)
}

// RetentionErrorProb returns the probability that a programmed flag cell
// has decayed below the read reference after days of retention.
func (f FlagModel) RetentionErrorProb(v, t, days float64, peCycles int) float64 {
	return phi((f.ReadRef - f.MeanAfter(v, t, days, peCycles)) / f.Sigma)
}

// SampleCellVth draws a flag-cell Vth after (v, t) programming and days of
// retention.
func (f FlagModel) SampleCellVth(v, t, days float64, peCycles int, rng *rand.Rand) float64 {
	return f.MeanAfter(v, t, days, peCycles) + rng.NormFloat64()*f.Sigma
}

// MajorityReadsDisabled reports whether a k-cell majority circuit reads
// the flag as disabled, given the sampled cell Vth values.
func (f FlagModel) MajorityReadsDisabled(vths []float64) bool {
	programmed := 0
	for _, v := range vths {
		if v > f.ReadRef {
			programmed++
		}
	}
	return programmed*2 > len(vths)
}

// MajorityFailureProb returns the probability that a k-cell majority vote
// mis-reads a programmed (disabled) flag as enabled after retention: at
// least ceil(k/2) of the k cells must have decayed below the reference.
// It evaluates the binomial tail exactly.
func (f FlagModel) MajorityFailureProb(k int, v, t, days float64, peCycles int) float64 {
	p := f.RetentionErrorProb(v, t, days, peCycles)
	need := k/2 + 1 // cells that must fail for the majority to flip
	var total float64
	for i := need; i <= k; i++ {
		total += binomPMF(k, i, p)
	}
	return total
}

// ExpectedRetentionErrors returns the expected number of failed cells out
// of k after retention.
func (f FlagModel) ExpectedRetentionErrors(k int, v, t, days float64, peCycles int) float64 {
	return float64(k) * f.RetentionErrorProb(v, t, days, peCycles)
}

func binomPMF(n, k int, p float64) float64 {
	if p <= 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	if p >= 1 {
		if k == n {
			return 1
		}
		return 0
	}
	// log-space for numerical stability
	lg := lnChoose(n, k) + float64(k)*math.Log(p) + float64(n-k)*math.Log(1-p)
	return math.Exp(lg)
}

func lnChoose(n, k int) float64 {
	lgN, _ := math.Lgamma(float64(n + 1))
	lgK, _ := math.Lgamma(float64(k + 1))
	lgNK, _ := math.Lgamma(float64(n - k + 1))
	return lgN - lgK - lgNK
}

// SSLModel describes the source-select-line cells used as the per-block
// bAP flag (§5.4). bLock programs the SSL like a normal wordline; when the
// SSL center Vth exceeds the select-gate bias, the block's bitline current
// is cut and every page reads all-zero.
type SSLModel struct {
	// SelectBias is the gate voltage applied to the SSL of the selected
	// block during a read. An SSL cell with Vth above it stays off.
	SelectBias float64
	// Sigma is the SSL-cell Vth spread.
	Sigma float64
	// MuBase is the center Vth right after a one-shot program at
	// (Vb1, 200 µs).
	MuBase float64
	// VGainPow: center gain = VGain * (V - Vb1)^1.5 (super-linear because
	// FN tunnelling current grows steeply with field strength).
	VGain float64
	// TGain is the gain per doubling of pulse duration over 200 µs.
	TGain float64
	// Retention decay: rate = RetBase - RetV*(V-Vb1) - RetT*log2(t/200),
	// applied as rate * log10(1+days).
	RetBase float64
	RetV    float64
	RetT    float64
	// DisableThreshold is the center Vth above which a block is considered
	// sanitized (the paper's 3 V line in Fig. 11(b)).
	DisableThreshold float64
}

// DefaultSSLModel returns the calibrated SSL model.
func DefaultSSLModel() SSLModel {
	return SSLModel{
		SelectBias:       3.79,
		Sigma:            0.35,
		MuBase:           0.50,
		VGain:            0.32,
		TGain:            0.40,
		RetBase:          0.49,
		RetV:             0.03,
		RetT:             0.235,
		DisableThreshold: 3.0,
	}
}

// ProgrammedCenter returns the SSL center Vth right after a one-shot
// program with voltage v (V) and duration t (µs).
func (s SSLModel) ProgrammedCenter(v, t float64) float64 {
	dv := v - BLockVoltages[0]
	if dv < 0 {
		dv = 0
	}
	return s.MuBase + s.VGain*math.Pow(dv, 1.5) + s.TGain*math.Log2(t/200)
}

// CenterAfter returns the SSL center Vth after days of retention.
func (s SSLModel) CenterAfter(v, t, days float64) float64 {
	mu := s.ProgrammedCenter(v, t)
	if days <= 0 {
		return mu
	}
	rate := s.RetBase - s.RetV*(v-BLockVoltages[0]) - s.RetT*math.Log2(t/200)
	if rate < 0.02 {
		rate = 0.02
	}
	return mu - rate*math.Log10(1+days)
}

// OffProb returns the probability that one SSL cell fails to conduct
// during a read, given the SSL center Vth.
func (s SSLModel) OffProb(center float64) float64 {
	return 1 - phi((s.SelectBias-center)/s.Sigma)
}

// BlockReadRBER returns the raw bit-error rate of reading any page in a
// block whose SSL center Vth is center, on top of the page's intrinsic
// RBER base. A cut-off bitline reads '0'; on average half of the stored
// bits are '1', so each off cell contributes 0.5 errors.
func (s SSLModel) BlockReadRBER(center, baseRBER float64) float64 {
	off := s.OffProb(center)
	// Off bitlines always read 0; surviving bitlines keep the base RBER.
	return off*0.5 + (1-off)*baseRBER
}

// MeanAfterAtTemp is MeanAfter with Arrhenius-accelerated retention at
// the given storage temperature (°C; 0 = the 30°C reference).
func (f FlagModel) MeanAfterAtTemp(v, t, days float64, peCycles int, tempC float64) float64 {
	return f.MeanAfter(v, t, days*RetentionAcceleration(tempC), peCycles)
}

// MajorityFailureProbAtTemp evaluates the k-cell majority flip chance at
// a storage temperature.
func (f FlagModel) MajorityFailureProbAtTemp(k int, v, t, days float64, peCycles int, tempC float64) float64 {
	return f.MajorityFailureProb(k, v, t, days*RetentionAcceleration(tempC), peCycles)
}

// CenterAfterAtTemp is CenterAfter with Arrhenius-accelerated retention.
func (s SSLModel) CenterAfterAtTemp(v, t, days, tempC float64) float64 {
	return s.CenterAfter(v, t, days*RetentionAcceleration(tempC))
}
