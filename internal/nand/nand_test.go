package nand

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/nand/vth"
)

// smallGeo keeps tests fast: 8 blocks of 4 TLC wordlines.
func smallGeo() Geometry {
	return Geometry{
		Blocks:          8,
		WLsPerBlock:     4,
		CellKind:        vth.TLC,
		PageBytes:       4096,
		FlagCells:       9,
		EnduranceCycles: 1000,
	}
}

func newTestChip(t *testing.T, opts ...Option) *Chip {
	t.Helper()
	c, err := New(smallGeo(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// The must* helpers assert chip ops whose outcome is setup, not the
// point of the test: secvet's lockcheck rule forbids discarding a chip
// op's error, because that error carries the pAP/bAP lock state.
func mustProgram(t *testing.T, c *Chip, a PageAddr, data []byte) {
	t.Helper()
	if _, err := c.Program(a, data, 0); err != nil {
		t.Fatalf("Program(%v): %v", a, err)
	}
}

func mustRead(t *testing.T, c *Chip, a PageAddr) ReadResult {
	t.Helper()
	res, err := c.Read(a, 0)
	if err != nil {
		t.Fatalf("Read(%v): %v", a, err)
	}
	return res
}

func mustPLock(t *testing.T, c *Chip, a PageAddr) {
	t.Helper()
	if _, err := c.PLock(a, 0); err != nil {
		t.Fatalf("PLock(%v): %v", a, err)
	}
}

func mustBLock(t *testing.T, c *Chip, blk int) {
	t.Helper()
	if _, err := c.BLock(blk, 0); err != nil {
		t.Fatalf("BLock(%d): %v", blk, err)
	}
}

func mustErase(t *testing.T, c *Chip, blk int) {
	t.Helper()
	if _, err := c.Erase(blk, 0); err != nil {
		t.Fatalf("Erase(%d): %v", blk, err)
	}
}

func mustScrub(t *testing.T, c *Chip, a PageAddr) {
	t.Helper()
	if _, err := c.Scrub(a, 0); err != nil {
		t.Fatalf("Scrub(%v): %v", a, err)
	}
}

func pageLocked(t *testing.T, c *Chip, a PageAddr) bool {
	t.Helper()
	locked, err := c.IsPageLocked(a, 0)
	if err != nil {
		t.Fatalf("IsPageLocked(%v): %v", a, err)
	}
	return locked
}

func blockLocked(t *testing.T, c *Chip, blk int) bool {
	t.Helper()
	locked, err := c.IsBlockLocked(blk, 0)
	if err != nil {
		t.Fatalf("IsBlockLocked(%d): %v", blk, err)
	}
	return locked
}

func TestGeometryDerived(t *testing.T) {
	g := DefaultGeometry()
	if g.PagesPerWL() != 3 {
		t.Fatalf("TLC PagesPerWL = %d, want 3", g.PagesPerWL())
	}
	if g.PagesPerBlock() != 576 {
		t.Fatalf("PagesPerBlock = %d, want 576 (the paper's configuration)", g.PagesPerBlock())
	}
	// 428 blocks * 576 pages * 16 KiB ≈ 3.77 GiB per chip; 8 chips ≈ 30 GiB.
	if got := g.CapacityBytes(); got != int64(428)*576*16*1024 {
		t.Fatalf("CapacityBytes = %d", got)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGeometryValidation(t *testing.T) {
	bad := []Geometry{
		{Blocks: 0, WLsPerBlock: 1, CellKind: vth.TLC, PageBytes: 1, FlagCells: 9},
		{Blocks: 1, WLsPerBlock: 1, CellKind: 0, PageBytes: 1, FlagCells: 9},
		{Blocks: 1, WLsPerBlock: 1, CellKind: vth.TLC, PageBytes: 1, FlagCells: 8}, // even k
		{Blocks: 1, WLsPerBlock: 1, CellKind: vth.TLC, PageBytes: 1, FlagCells: 0},
	}
	for i, g := range bad {
		if err := g.Validate(); err == nil {
			t.Errorf("case %d: bad geometry accepted", i)
		}
		if _, err := New(g); err == nil {
			t.Errorf("case %d: New accepted bad geometry", i)
		}
	}
}

func TestProgramReadRoundTrip(t *testing.T) {
	c := newTestChip(t)
	data := []byte("sensitive file contents")
	lat, err := c.Program(PageAddr{0, 0}, data, 0)
	if err != nil {
		t.Fatal(err)
	}
	if lat != DefaultTiming().Prog {
		t.Fatalf("program latency %v, want %v", lat, DefaultTiming().Prog)
	}
	res, err := c.Read(PageAddr{0, 0}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Data, data) {
		t.Fatalf("read %q, want %q", res.Data, data)
	}
	if res.Latency != DefaultTiming().Read {
		t.Fatalf("read latency %v", res.Latency)
	}
}

func TestProgramEnforcesAppendOrder(t *testing.T) {
	c := newTestChip(t)
	if _, err := c.Program(PageAddr{0, 1}, []byte("x"), 0); !errors.Is(err, ErrOutOfOrder) {
		t.Fatalf("skipping a page: err = %v, want ErrOutOfOrder", err)
	}
	if _, err := c.Program(PageAddr{0, 0}, []byte("x"), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Program(PageAddr{0, 0}, []byte("y"), 0); !errors.Is(err, ErrNotErased) {
		t.Fatalf("overwrite: err = %v, want ErrNotErased", err)
	}
}

func TestProgramRejectsOversizedPayload(t *testing.T) {
	c := newTestChip(t)
	big := make([]byte, smallGeo().PageBytes+1)
	if _, err := c.Program(PageAddr{0, 0}, big, 0); err == nil {
		t.Fatal("oversized payload accepted")
	}
}

func TestAddressValidation(t *testing.T) {
	c := newTestChip(t)
	cases := []PageAddr{{-1, 0}, {0, -1}, {99, 0}, {0, 9999}}
	for _, a := range cases {
		if _, err := c.Read(a, 0); !errors.Is(err, ErrBadAddress) {
			t.Errorf("Read(%v): %v, want ErrBadAddress", a, err)
		}
		if _, err := c.Program(a, nil, 0); !errors.Is(err, ErrBadAddress) {
			t.Errorf("Program(%v): %v, want ErrBadAddress", a, err)
		}
		if _, err := c.PLock(a, 0); !errors.Is(err, ErrBadAddress) {
			t.Errorf("PLock(%v): %v, want ErrBadAddress", a, err)
		}
	}
	if _, err := c.Erase(-1, 0); !errors.Is(err, ErrBadAddress) {
		t.Error("Erase(-1) accepted")
	}
	if _, err := c.BLock(1000, 0); !errors.Is(err, ErrBadAddress) {
		t.Error("BLock(1000) accepted")
	}
}

func TestReadOfFreePage(t *testing.T) {
	c := newTestChip(t)
	res, err := c.Read(PageAddr{3, 5}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Data != nil {
		t.Fatal("free page should read as erased (nil payload)")
	}
}

// The core Evanesco guarantee: after pLock, the page reads all-zero with
// ErrPageLocked; sibling pages on the same wordline are unaffected.
func TestPLockBlocksExactlyOnePage(t *testing.T) {
	c := newTestChip(t)
	// Program a full wordline (pages 0,1,2 = LSB,CSB,MSB of WL0).
	payloads := [][]byte{[]byte("lsb-data"), []byte("csb-data"), []byte("msb-data")}
	for i, p := range payloads {
		if _, err := c.Program(PageAddr{0, i}, p, 0); err != nil {
			t.Fatal(err)
		}
	}
	lat, err := c.PLock(PageAddr{0, 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if lat != DefaultTiming().PLock {
		t.Fatalf("pLock latency %v, want %v", lat, DefaultTiming().PLock)
	}
	// Locked page: all-zero data + ErrPageLocked.
	res, err := c.Read(PageAddr{0, 1}, 0)
	if !errors.Is(err, ErrPageLocked) {
		t.Fatalf("read of locked page: err = %v", err)
	}
	for _, b := range res.Data {
		if b != 0 {
			t.Fatal("locked page leaked non-zero data")
		}
	}
	if len(res.Data) != len(payloads[1]) {
		t.Fatalf("locked read returned %d bytes, want %d", len(res.Data), len(payloads[1]))
	}
	// Sibling pages still read fine.
	for _, i := range []int{0, 2} {
		res, err := c.Read(PageAddr{0, i}, 0)
		if err != nil {
			t.Fatalf("sibling page %d: %v", i, err)
		}
		if !bytes.Equal(res.Data, payloads[i]) {
			t.Fatalf("sibling page %d corrupted", i)
		}
	}
}

func TestPLockIsIdempotent(t *testing.T) {
	c := newTestChip(t)
	mustProgram(t, c, PageAddr{0, 0}, []byte("x"))
	mustPLock(t, c, PageAddr{0, 0})
	before := c.OpCount(OpPLock)
	mustPLock(t, c, PageAddr{0, 0})
	if c.OpCount(OpPLock) != before+1 {
		t.Fatal("second pLock should still be counted as an operation")
	}
	if !pageLocked(t, c, PageAddr{0, 0}) {
		t.Fatal("page must stay locked")
	}
}

// bLock blocks every page of the block, including ones whose pAP is
// enabled (Fig. 7(b): the bAP check comes first).
func TestBLockBlocksWholeBlock(t *testing.T) {
	c := newTestChip(t)
	for i := 0; i < 6; i++ {
		mustProgram(t, c, PageAddr{2, i}, []byte{byte(i)})
	}
	if _, err := c.BLock(2, 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		res, err := c.Read(PageAddr{2, i}, 0)
		if !errors.Is(err, ErrBlockLocked) {
			t.Fatalf("page %d: err = %v, want ErrBlockLocked", i, err)
		}
		for _, b := range res.Data {
			if b != 0 {
				t.Fatal("locked block leaked data")
			}
		}
	}
	// Other blocks unaffected.
	mustProgram(t, c, PageAddr{3, 0}, []byte("ok"))
	if _, err := c.Read(PageAddr{3, 0}, 0); err != nil {
		t.Fatalf("unrelated block affected: %v", err)
	}
	// Programming into a locked block is refused.
	if _, err := c.Program(PageAddr{2, 6}, []byte("x"), 0); !errors.Is(err, ErrBlockLocked) {
		t.Fatalf("program into locked block: %v", err)
	}
}

// There is no unlock command: only erase re-enables, and it destroys data.
func TestEraseIsTheOnlyUnlock(t *testing.T) {
	c := newTestChip(t)
	mustProgram(t, c, PageAddr{1, 0}, []byte("secret"))
	mustPLock(t, c, PageAddr{1, 0})
	mustBLock(t, c, 1)

	if _, err := c.Erase(1, 0); err != nil {
		t.Fatal(err)
	}
	if blockLocked(t, c, 1) {
		t.Fatal("erase must clear the bAP flag")
	}
	if pageLocked(t, c, PageAddr{1, 0}) {
		t.Fatal("erase must clear pAP flags")
	}
	res, err := c.Read(PageAddr{1, 0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Data != nil {
		t.Fatal("erase must destroy the data")
	}
	if c.PECycles(1) != 1 {
		t.Fatalf("PECycles = %d, want 1", c.PECycles(1))
	}
	if c.WritePointer(1) != 0 {
		t.Fatal("erase must rewind the write pointer")
	}
}

// Locks survive years of retention: the §5.3/§5.4 operating points were
// chosen so the flags hold for a 5-year retention requirement.
func TestLocksSurviveFiveYears(t *testing.T) {
	c := newTestChip(t)
	mustProgram(t, c, PageAddr{0, 0}, []byte("will-be-deleted"))
	mustProgram(t, c, PageAddr{0, 1}, []byte("b"))
	mustPLock(t, c, PageAddr{0, 0})
	mustBLock(t, c, 4)

	c.AdvanceDays(5 * 365)

	if !pageLocked(t, c, PageAddr{0, 0}) {
		t.Fatal("pAP flag decayed within 5 years; operating point (Vp4,100µs) must hold")
	}
	if !blockLocked(t, c, 4) {
		t.Fatal("bAP flag decayed within 5 years; operating point (Vb6,300µs) must hold")
	}
	if _, err := c.Read(PageAddr{0, 0}, 0); !errors.Is(err, ErrPageLocked) {
		t.Fatal("aged locked page became readable")
	}
}

func TestAdvanceDaysPanicsOnNegative(t *testing.T) {
	c := newTestChip(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.AdvanceDays(-1)
}

func TestScrubDestroysPage(t *testing.T) {
	c := newTestChip(t)
	mustProgram(t, c, PageAddr{0, 0}, []byte("destroy-me"))
	lat, err := c.Scrub(PageAddr{0, 0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if lat != DefaultTiming().Scrub {
		t.Fatalf("scrub latency %v", lat)
	}
	res, err := c.Read(PageAddr{0, 0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range res.Data {
		if b != 0 {
			t.Fatal("scrubbed page retained data")
		}
	}
}

// The forensic dump — the paper's threat model — recovers exactly the
// unlocked pages and nothing else.
func TestForensicDumpRespectsLocks(t *testing.T) {
	c := newTestChip(t)
	mustProgram(t, c, PageAddr{0, 0}, []byte("public"))
	mustProgram(t, c, PageAddr{0, 1}, []byte("secret"))
	mustProgram(t, c, PageAddr{0, 2}, []byte("also-public"))
	mustPLock(t, c, PageAddr{0, 1})

	dump := c.ForensicDump(0, 0)
	if !bytes.Equal(dump[0], []byte("public")) || !bytes.Equal(dump[2], []byte("also-public")) {
		t.Fatal("forensic dump should recover unlocked pages")
	}
	if bytes.Contains(dump[1], []byte("secret")) {
		t.Fatal("forensic dump recovered locked data")
	}
	for _, b := range dump[1] {
		if b != 0 {
			t.Fatal("locked page dump not all-zero")
		}
	}
}

func TestOpCounters(t *testing.T) {
	c := newTestChip(t)
	mustProgram(t, c, PageAddr{0, 0}, []byte("x"))
	mustRead(t, c, PageAddr{0, 0})
	mustRead(t, c, PageAddr{0, 0})
	mustPLock(t, c, PageAddr{0, 0})
	mustBLock(t, c, 0)
	mustErase(t, c, 0)
	mustProgram(t, c, PageAddr{0, 0}, []byte("y"))
	mustScrub(t, c, PageAddr{0, 0})
	want := map[OpKind]uint64{
		OpRead: 2, OpProgram: 2, OpErase: 1, OpPLock: 1, OpBLock: 1, OpScrub: 1,
	}
	for k, n := range want {
		if c.OpCount(k) != n {
			t.Errorf("OpCount(%v) = %d, want %d", k, c.OpCount(k), n)
		}
	}
}

func TestPageKindMapping(t *testing.T) {
	c := newTestChip(t)
	// TLC: pages 0,1,2 of WL0 are LSB,CSB,MSB; page 3 starts WL1.
	want := []vth.PageKind{vth.LSB, vth.CSB, vth.MSB, vth.LSB, vth.CSB, vth.MSB}
	for i, w := range want {
		if got := c.PageKindOf(i); got != w {
			t.Errorf("PageKindOf(%d) = %v, want %v", i, got, w)
		}
	}
}

func TestErrorInjectionOnHealthyChip(t *testing.T) {
	c := newTestChip(t, WithErrorInjection(), WithSeed(3))
	payload := make([]byte, 4096)
	rand.New(rand.NewSource(1)).Read(payload)
	mustProgram(t, c, PageAddr{0, 0}, payload)
	// A fresh chip's RBER is far below the ECC limit: every read must
	// succeed and return intact data after correction.
	for i := 0; i < 50; i++ {
		res, err := c.Read(PageAddr{0, 0}, 0)
		if err != nil {
			t.Fatalf("read %d failed: %v", i, err)
		}
		if !bytes.Equal(res.Data, payload) {
			t.Fatalf("read %d returned corrupted data", i)
		}
	}
}

func TestErrorInjectionUncorrectableAfterAbuse(t *testing.T) {
	c := newTestChip(t, WithErrorInjection(), WithSeed(4))
	payload := make([]byte, 4096)
	mustProgram(t, c, PageAddr{0, 0}, payload)
	// Wear the block far beyond endurance and age it a decade: reads
	// should eventually fail.
	blk := &c.blocks[0]
	blk.peCycles = 5000
	c.AdvanceDays(3650)
	failures := 0
	for i := 0; i < 50; i++ {
		if _, err := c.Read(PageAddr{0, 0}, 0); errors.Is(err, ErrUncorrectable) {
			failures++
		}
	}
	if failures == 0 {
		t.Fatal("a 5K-cycle block after 10 years should produce uncorrectable reads")
	}
}

func TestChipSeedDeterminism(t *testing.T) {
	run := func() [][]float64 {
		c := newTestChip(t, WithSeed(42))
		mustProgram(t, c, PageAddr{0, 0}, []byte("x"))
		mustPLock(t, c, PageAddr{0, 0})
		return c.blocks[0].flags[:c.geo.PagesPerWL()]
	}
	a, b := run(), run()
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatal("nondeterministic flag cells")
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatal("nondeterministic flag-cell Vth")
			}
		}
	}
}

// Property: for any sequence of program/pLock operations, a locked page
// never returns its data and an unlocked programmed page always does.
func TestLockIsolationProperty(t *testing.T) {
	f := func(seed int64, ops []byte) bool {
		c, err := New(smallGeo(), WithSeed(seed))
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		type st struct {
			data   []byte
			locked bool
		}
		written := map[PageAddr]*st{}
		next := map[int]int{}
		for _, op := range ops {
			blk := rng.Intn(smallGeo().Blocks)
			switch op % 3 {
			case 0: // program next page of a block
				p := next[blk]
				if p >= smallGeo().PagesPerBlock() {
					continue
				}
				data := []byte{op, byte(blk), byte(p)}
				if _, err := c.Program(PageAddr{blk, p}, data, 0); err == nil {
					written[PageAddr{blk, p}] = &st{data: data}
					next[blk] = p + 1
				}
			case 1: // lock a random written page
				if len(written) == 0 {
					continue
				}
				for a, s := range written {
					if _, err := c.PLock(a, 0); err == nil {
						s.locked = true
					}
					break
				}
			case 2: // erase a block
				if _, err := c.Erase(blk, 0); err == nil {
					for a := range written {
						if a.Block == blk {
							delete(written, a)
						}
					}
					next[blk] = 0
				}
			}
		}
		// Verify invariant.
		for a, s := range written {
			res, err := c.Read(a, 0)
			if s.locked {
				if !errors.Is(err, ErrPageLocked) {
					return false
				}
				for _, b := range res.Data {
					if b != 0 {
						return false
					}
				}
			} else {
				if err != nil || !bytes.Equal(res.Data, s.data) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestQLCChipGeometry(t *testing.T) {
	g := Geometry{
		Blocks: 4, WLsPerBlock: 4, CellKind: vth.QLC,
		PageBytes: 4096, FlagCells: 9, EnduranceCycles: 500,
	}
	c, err := New(g)
	if err != nil {
		t.Fatal(err)
	}
	if g.PagesPerWL() != 4 || g.PagesPerBlock() != 16 {
		t.Fatalf("QLC geometry: %d pages/WL, %d/block", g.PagesPerWL(), g.PagesPerBlock())
	}
	// All four page kinds appear on a wordline.
	kinds := map[vth.PageKind]bool{}
	for p := 0; p < 4; p++ {
		kinds[c.PageKindOf(p)] = true
	}
	if len(kinds) != 4 {
		t.Fatalf("QLC wordline exposes %d page kinds, want 4", len(kinds))
	}
	// Basic command set works.
	if _, err := c.Program(PageAddr{0, 0}, []byte("q"), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.PLock(PageAddr{0, 0}, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Read(PageAddr{0, 0}, 0); !errors.Is(err, ErrPageLocked) {
		t.Fatal("QLC pLock did not hold")
	}
}

func TestReadDisturbAccumulates(t *testing.T) {
	c := newTestChip(t, WithErrorInjection(), WithSeed(9))
	// Program WL0 and WL1; hammer WL1 with reads; WL0 is its neighbour.
	for p := 0; p < 6; p++ {
		mustProgram(t, c, PageAddr{0, p}, make([]byte, 2048))
	}
	for i := 0; i < 5000; i++ {
		mustRead(t, c, PageAddr{0, 3}) // WL1
	}
	if got := c.blocks[0].wlReads[0]; got < 5000 {
		t.Fatalf("neighbour WL accumulated %d read disturbs, want >= 5000", got)
	}
	// The disturb raises RBER via the model; a fresh block still reads
	// fine (disturb shift is small), so just assert reads succeed.
	if _, err := c.Read(PageAddr{0, 0}, 0); err != nil {
		t.Fatalf("read-disturbed page unreadable on fresh block: %v", err)
	}
}

func TestCopybackMovesData(t *testing.T) {
	c := newTestChip(t)
	mustProgram(t, c, PageAddr{0, 0}, []byte("move me"))
	lat, err := c.Copyback(PageAddr{0, 0}, PageAddr{1, 0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if lat != DefaultTiming().Read+DefaultTiming().Prog {
		t.Fatalf("copyback latency %v", lat)
	}
	res, err := c.Read(PageAddr{1, 0}, 0)
	if err != nil || !bytes.Equal(res.Data, []byte("move me")) {
		t.Fatalf("copyback destination: %q, %v", res.Data, err)
	}
}

// Copyback cannot launder locked data: the internal read path is gated
// too, so the copy lands all-zero.
func TestCopybackCannotExfiltrateLockedData(t *testing.T) {
	c := newTestChip(t)
	mustProgram(t, c, PageAddr{0, 0}, []byte("locked secret"))
	mustPLock(t, c, PageAddr{0, 0})
	if _, err := c.Copyback(PageAddr{0, 0}, PageAddr{1, 0}, 0); err == nil {
		t.Log("copyback of locked page allowed; checking the payload")
	}
	res, err := c.Read(PageAddr{1, 0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range res.Data {
		if b != 0 {
			t.Fatal("copyback exfiltrated locked data")
		}
	}
}

func TestCopybackDisciplineErrors(t *testing.T) {
	c := newTestChip(t)
	mustProgram(t, c, PageAddr{0, 0}, []byte("x"))
	// Destination out of order.
	if _, err := c.Copyback(PageAddr{0, 0}, PageAddr{1, 5}, 0); err == nil {
		t.Fatal("out-of-order copyback destination accepted")
	}
	if _, err := c.Copyback(PageAddr{-1, 0}, PageAddr{1, 0}, 0); err == nil {
		t.Fatal("bad source accepted")
	}
}

// Model-based property test: drive the chip with random command
// sequences and mirror every operation in a trivial map-based oracle;
// the chip's observable behaviour must match the oracle exactly.
func TestChipMatchesOracleProperty(t *testing.T) {
	type pageOracle struct {
		data    []byte
		written bool
		locked  bool
	}
	fn := func(seed int64) bool {
		chip, err := New(smallGeo(), WithSeed(seed))
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		ppb := smallGeo().PagesPerBlock()
		nb := smallGeo().Blocks
		oracle := make(map[PageAddr]*pageOracle)
		blockLocked := make(map[int]bool)
		writePtr := make(map[int]int)

		for step := 0; step < 300; step++ {
			blk := rng.Intn(nb)
			switch rng.Intn(6) {
			case 0, 1: // program next page
				p := writePtr[blk]
				if p >= ppb || blockLocked[blk] {
					continue
				}
				data := []byte{byte(step), byte(blk), byte(p)}
				if _, err := chip.Program(PageAddr{blk, p}, data, 0); err != nil {
					return false
				}
				oracle[PageAddr{blk, p}] = &pageOracle{data: data, written: true}
				writePtr[blk] = p + 1
			case 2: // pLock a random written page
				p := rng.Intn(ppb)
				st := oracle[PageAddr{blk, p}]
				if st == nil {
					continue
				}
				if _, err := chip.PLock(PageAddr{blk, p}, 0); err != nil {
					return false
				}
				st.locked = true
			case 3: // bLock
				if _, err := chip.BLock(blk, 0); err != nil {
					return false
				}
				blockLocked[blk] = true
			case 4: // erase
				if _, err := chip.Erase(blk, 0); err != nil {
					return false
				}
				for p := 0; p < ppb; p++ {
					delete(oracle, PageAddr{blk, p})
				}
				blockLocked[blk] = false
				writePtr[blk] = 0
			case 5: // read and check against the oracle
				p := rng.Intn(ppb)
				a := PageAddr{blk, p}
				res, err := chip.Read(a, 0)
				st := oracle[a]
				switch {
				case blockLocked[blk]:
					if !errors.Is(err, ErrBlockLocked) {
						return false
					}
					for _, b := range res.Data {
						if b != 0 {
							return false
						}
					}
				case st != nil && st.locked:
					if !errors.Is(err, ErrPageLocked) {
						return false
					}
					for _, b := range res.Data {
						if b != 0 {
							return false
						}
					}
				case st != nil:
					if err != nil || !bytes.Equal(res.Data, st.data) {
						return false
					}
				default:
					if err != nil || res.Data != nil {
						return false
					}
				}
			}
		}
		// Final sweep: every page agrees with the oracle.
		for blk := 0; blk < nb; blk++ {
			for p := 0; p < ppb; p++ {
				a := PageAddr{blk, p}
				res, err := chip.Read(a, 0)
				st := oracle[a]
				if blockLocked[blk] || (st != nil && st.locked) {
					if err == nil {
						return false
					}
					continue
				}
				if st == nil {
					if res.Data != nil {
						return false
					}
				} else if !bytes.Equal(res.Data, st.data) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
