package nand

import "repro/internal/sim"

// OOBMeta is the FTL metadata a controller stamps into a page's
// out-of-band (spare) area alongside the payload: the logical address
// the page was written for, a monotone write sequence number, and the
// request's security class. Real FTLs persist exactly this so a crash
// can rebuild the mapping table from a media scan; the remount path
// (ftl.Restore) keeps the highest-sequence readable copy of each LPA as
// live and re-sanitizes the rest.
type OOBMeta struct {
	// LPA is the logical page the payload belongs to.
	LPA int64
	// Seq is the device-wide monotone write sequence number; among
	// surviving copies of one LPA the highest Seq wins at remount.
	Seq uint64
	// Secure marks the payload as secured data (written with the
	// paper's secure-deletion flag).
	Secure bool
	// Valid distinguishes a real stamp from the zero value. A page
	// without a valid stamp after a crash is a torn write: the program
	// pulse landed but the controller lost power before regaining
	// control.
	Valid bool
}

// StampOOB records FTL metadata in the page's spare area. The model
// treats the stamp as part of the page's program pulse — the spare
// bytes ride the same wordline program — so it costs no extra latency
// and draws no fault decision; but a power cut that strikes the program
// itself leaves the page stamp-less, which is exactly the torn-write
// signature the remount scan keys on. Only an already-programmed page
// can be stamped.
func (c *Chip) StampOOB(a PageAddr, m OOBMeta) error {
	if err := c.checkAddr(a); err != nil {
		return err
	}
	blk := &c.blocks[a.Block]
	if a.Page >= blk.writePtr {
		return ErrNotErased
	}
	m.Valid = true
	blk.meta[a.Page] = m
	return nil
}

// PageProbe is one physical page's surviving media state as seen by the
// controller's boot-time remount scan. The probe models the flash
// array's raw state machine view (write pointer, access-control flags,
// spare area) rather than a data-path read: it perturbs no disturb
// counters and draws no fault decisions, so a remount scan leaves the
// fault schedule and the reliability model untouched.
type PageProbe struct {
	// Programmed reports whether the block's write pointer has passed
	// the page.
	Programmed bool
	// Locked reports whether the page is unreadable (pAP disabled, or
	// the enclosing block's bAP disabled), evaluated with retention
	// decay up to now.
	Locked bool
	// NonZero reports whether the readable payload contains at least
	// one nonzero byte. Always false for locked pages — the probe
	// honours the same data-out gating as reads.
	NonZero bool
	// Meta is the page's spare-area stamp. The zero value (Valid
	// false) for locked pages, unstamped pages, and torn writes.
	Meta OOBMeta
}

// ProbePage returns the remount scan's view of one page.
func (c *Chip) ProbePage(a PageAddr, now sim.Micros) (PageProbe, error) {
	if err := c.checkAddr(a); err != nil {
		return PageProbe{}, err
	}
	blk := &c.blocks[a.Block]
	pr := PageProbe{Programmed: a.Page < blk.writePtr}
	day := c.nowDays(now)
	if c.blockLockedAt(blk, day) || c.pageLockedAt(blk, a.Page, day) {
		pr.Locked = true
		return pr, nil
	}
	if !pr.Programmed {
		return pr, nil
	}
	for _, b := range blk.pages[a.Page] {
		if b != 0 {
			pr.NonZero = true
			break
		}
	}
	pr.Meta = blk.meta[a.Page]
	return pr, nil
}
