package nand

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/fault"
	"repro/internal/nand/vth"
)

func faultChip(t *testing.T, cfg fault.Config) *Chip {
	t.Helper()
	c, err := New(Geometry{
		Blocks: 4, WLsPerBlock: 4, CellKind: vth.TLC,
		PageBytes: 64, FlagCells: 9, EnduranceCycles: 1000,
	}, WithSeed(1), WithFaults(fault.New(cfg, 0)))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestFaultProgramConsumesPage: a failed program must advance the write
// pointer (the FTL's frontier stays in sync), leave the payload's front
// half intact (the leaked prefix) and report ErrProgramFailed.
func TestFaultProgramConsumesPage(t *testing.T) {
	c := faultChip(t, fault.Config{ProgramFail: 1, Seed: 1})
	payload := bytes.Repeat([]byte{0xAB}, 64)
	_, err := c.Program(PageAddr{Block: 0, Page: 0}, payload, 0)
	if !errors.Is(err, ErrProgramFailed) {
		t.Fatalf("Program err = %v, want ErrProgramFailed", err)
	}
	if wp := c.WritePointer(0); wp != 1 {
		t.Fatalf("write pointer %d after failed program, want 1", wp)
	}
	res, err := c.Read(PageAddr{Block: 0, Page: 0}, 0)
	if err != nil {
		t.Fatalf("read back: %v", err)
	}
	if !bytes.Equal(res.Data[:32], payload[:32]) {
		t.Fatal("leaked prefix of the failed program was not preserved")
	}
	if n := c.FaultCounts().ProgramFails; n != 1 {
		t.Fatalf("ProgramFails = %d, want 1", n)
	}
}

// TestFaultEraseLeavesState: a failed erase must change nothing — data,
// write pointer and P/E count all stay.
func TestFaultEraseLeavesState(t *testing.T) {
	c := faultChip(t, fault.Config{EraseFail: 1, Seed: 1})
	payload := []byte{1, 2, 3, 4}
	if _, err := c.Program(PageAddr{Block: 0, Page: 0}, payload, 0); err != nil {
		t.Fatal(err)
	}
	pe := c.PECycles(0)
	if _, err := c.Erase(0, 0); !errors.Is(err, ErrEraseFailed) {
		t.Fatalf("Erase err = %v, want ErrEraseFailed", err)
	}
	if c.PECycles(0) != pe {
		t.Fatal("failed erase advanced the P/E counter")
	}
	if wp := c.WritePointer(0); wp != 1 {
		t.Fatalf("failed erase moved the write pointer to %d", wp)
	}
	res, err := c.Read(PageAddr{Block: 0, Page: 0}, 0)
	if err != nil || !bytes.Equal(res.Data, payload) {
		t.Fatalf("failed erase destroyed data: %v %v", res.Data, err)
	}
}

// TestFaultPLockLeavesReadable: a failed pLock leaves the page readable
// (the flag cells' one-shot was spent without disabling the majority) and
// a later retry on the same page draws a fresh decision.
func TestFaultPLockLeavesReadable(t *testing.T) {
	c := faultChip(t, fault.Config{PLockFail: 1, Seed: 1})
	a := PageAddr{Block: 0, Page: 0}
	if _, err := c.Program(a, []byte{9}, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.PLock(a, 0); !errors.Is(err, ErrPLockFailed) {
		t.Fatalf("PLock err = %v, want ErrPLockFailed", err)
	}
	locked, err := c.IsPageLocked(a, 0)
	if err != nil || locked {
		t.Fatalf("page locked after failed pLock (err %v)", err)
	}
	if _, err := c.Read(a, 0); err != nil {
		t.Fatalf("read after failed pLock: %v", err)
	}
}

// TestFaultBLockLeavesReadable mirrors the pLock case for the SSL flag.
func TestFaultBLockLeavesReadable(t *testing.T) {
	c := faultChip(t, fault.Config{BLockFail: 1, Seed: 1})
	if _, err := c.Program(PageAddr{Block: 0, Page: 0}, []byte{9}, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.BLock(0, 0); !errors.Is(err, ErrBLockFailed) {
		t.Fatalf("BLock err = %v, want ErrBLockFailed", err)
	}
	locked, err := c.IsBlockLocked(0, 0)
	if err != nil || locked {
		t.Fatalf("block locked after failed bLock (err %v)", err)
	}
}

// TestFaultUncorrectableRead: at an absurd injected BER every read is
// uncorrectable and the returned data is corrupted in place.
func TestFaultUncorrectableRead(t *testing.T) {
	c := faultChip(t, fault.Config{ReadBER: 0.5, Seed: 1})
	payload := bytes.Repeat([]byte{0xFF}, 64)
	if _, err := c.Program(PageAddr{Block: 0, Page: 0}, payload, 0); err != nil {
		t.Fatal(err)
	}
	res, err := c.Read(PageAddr{Block: 0, Page: 0}, 0)
	if !errors.Is(err, ErrUncorrectable) {
		t.Fatalf("Read err = %v, want ErrUncorrectable", err)
	}
	if res.Data == nil || bytes.Equal(res.Data, payload) {
		t.Fatal("uncorrectable read returned pristine data")
	}
	if c.FaultCounts().ReadUncorrectable == 0 {
		t.Fatal("ReadUncorrectable not counted")
	}
}

// TestFaultCopybackSkipsReadInjection: copyback's internal read bypasses
// the ECC transfer path, so read faults must not fire there — the copy
// moves the stored bytes verbatim (program faults still apply, disabled
// here).
func TestFaultCopybackSkipsReadInjection(t *testing.T) {
	c := faultChip(t, fault.Config{ReadBER: 0.5, Seed: 1})
	payload := bytes.Repeat([]byte{0x5A}, 64)
	if _, err := c.Program(PageAddr{Block: 0, Page: 0}, payload, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Copyback(PageAddr{Block: 0, Page: 0}, PageAddr{Block: 1, Page: 0}, 0); err != nil {
		t.Fatalf("copyback: %v", err)
	}
	// Verify the destination through a fault-free chip view: compare the
	// stored bytes via a second read that may itself be injected — so
	// retry until a clean read (bounded).
	for i := 0; ; i++ {
		res, err := c.Read(PageAddr{Block: 1, Page: 0}, 0)
		if err == nil {
			if !bytes.Equal(res.Data, payload) {
				t.Fatal("copyback corrupted data despite injection bypass")
			}
			break
		}
		if i > 100 {
			t.Skip("no clean read in 100 tries at BER 0.5 (expected; dest verified via error-free path unavailable)")
		}
	}
}

// TestFaultChipDeterminism: two identically-seeded chips driven through
// the same op sequence inject identical fault schedules.
func TestFaultChipDeterminism(t *testing.T) {
	run := func() ([]error, fault.Counts) {
		c := faultChip(t, fault.Config{
			ProgramFail: 0.3, EraseFail: 0.3, PLockFail: 0.3, BLockFail: 0.3, Seed: 77,
		})
		var errs []error
		for round := 0; round < 10; round++ {
			for p := 0; p < 12; p++ {
				_, err := c.Program(PageAddr{Block: 0, Page: p}, []byte{byte(p)}, 0)
				errs = append(errs, err)
			}
			_, err := c.PLock(PageAddr{Block: 0, Page: 0}, 0)
			errs = append(errs, err)
			_, err = c.BLock(0, 0)
			errs = append(errs, err)
			// Erase until it succeeds so the next round can program again.
			for {
				_, err = c.Erase(0, 0)
				errs = append(errs, err)
				if err == nil {
					break
				}
			}
		}
		return errs, c.FaultCounts()
	}
	e1, c1 := run()
	e2, c2 := run()
	if len(e1) != len(e2) {
		t.Fatalf("op counts diverged: %d vs %d", len(e1), len(e2))
	}
	for i := range e1 {
		if (e1[i] == nil) != (e2[i] == nil) {
			t.Fatalf("op %d fault decision diverged", i)
		}
	}
	if c1 != c2 {
		t.Fatalf("counts diverged: %+v vs %+v", c1, c2)
	}
	if c1.OpFails() == 0 {
		t.Fatal("no faults injected at rate 0.3")
	}
}
