package nand_test

import (
	"fmt"

	"repro/internal/nand"
	"repro/internal/nand/vth"
)

// Example shows the chip-level Evanesco flow: program, lock, and the
// all-zero read that follows.
func Example() {
	chip, err := nand.New(nand.Geometry{
		Blocks:          4,
		WLsPerBlock:     4,
		CellKind:        vth.TLC,
		PageBytes:       4096,
		FlagCells:       9,
		EnduranceCycles: 1000,
	})
	if err != nil {
		panic(err)
	}
	addr := nand.PageAddr{Block: 0, Page: 0}
	if _, err := chip.Program(addr, []byte("delete me"), 0); err != nil {
		panic(err)
	}
	if _, err := chip.PLock(addr, 0); err != nil {
		panic(err)
	}
	res, err := chip.Read(addr, 0)
	fmt.Printf("locked read error: %v\n", err == nand.ErrPageLocked)
	fmt.Printf("data bytes all zero: %v\n", allZero(res.Data))

	// Only an erase re-enables the page — and it destroys the data first.
	if _, err := chip.Erase(0, 0); err != nil {
		panic(err)
	}
	locked, err := chip.IsPageLocked(addr, 0)
	if err != nil {
		panic(err)
	}
	fmt.Printf("locked after erase: %v\n", locked)
	// Output:
	// locked read error: true
	// data bytes all zero: true
	// locked after erase: false
}

func allZero(b []byte) bool {
	for _, x := range b {
		if x != 0 {
			return false
		}
	}
	return true
}
