package nand

import (
	"fmt"

	"repro/internal/sim"
)

// RawPort models the chip's pin-level command interface: command latch,
// address latch, data-in/out cycles and the status register, in the
// style of the standard flash command set (00h/30h read, 80h/10h
// program, 60h/D0h erase, 70h status, FFh reset).
//
// This is the interface the §5.1 attacker uses after de-soldering the
// chip: no FTL, no file system, just electrical command cycles. Because
// Evanesco's access control lives *behind* this interface (the pAP
// majority circuit and the SSL gate the data-out path), a locked page
// still reads all-zero here — which is the paper's whole point.
type RawPort struct {
	chip *Chip

	state    rawState
	cmd      int // latched setup command, -1 when idle (0x00 is a real command)
	addr     []byte
	dataIn   []byte
	dataOut  []byte
	dataPos  int
	status   byte
	statusRq bool
	now      sim.Micros
}

type rawState int

const (
	rawIdle rawState = iota
	rawAddr
	rawDataIn
	rawReady
)

// Standard command bytes.
const (
	CmdReadSetup      = 0x00
	CmdReadConfirm    = 0x30
	CmdProgramSetup   = 0x80
	CmdProgramConfirm = 0x10
	CmdEraseSetup     = 0x60
	CmdEraseConfirm   = 0xD0
	CmdReadStatus     = 0x70
	CmdReset          = 0xFF
	// Vendor extension block: the Evanesco lock commands.
	CmdPLockSetup   = 0xE0
	CmdPLockConfirm = 0xE1
	CmdBLockSetup   = 0xE2
	CmdBLockConfirm = 0xE3
)

// Status register bits.
const (
	// StatusFail is set when the last operation failed (including an
	// uncorrectable read).
	StatusFail = 1 << 0
	// StatusReady is set when the chip can accept a new command.
	StatusReady = 1 << 6
)

// NewRawPort opens a pin-level port on the chip.
func NewRawPort(c *Chip) *RawPort {
	return &RawPort{chip: c, cmd: -1, status: StatusReady}
}

// AdvanceTime moves the port's notion of time (used for retention-aware
// lock evaluation; attackers usually leave it at zero).
func (p *RawPort) AdvanceTime(t sim.Micros) { p.now = t }

// WriteCommand latches a command byte.
func (p *RawPort) WriteCommand(cmd byte) error {
	switch cmd {
	case CmdReset:
		p.reset()
		return nil
	case CmdReadStatus:
		p.statusRq = true
		return nil
	case CmdReadSetup, CmdProgramSetup, CmdEraseSetup, CmdPLockSetup, CmdBLockSetup:
		p.cmd = int(cmd)
		p.state = rawAddr
		p.addr = p.addr[:0]
		p.dataIn = p.dataIn[:0]
		p.statusRq = false
		return nil
	case CmdReadConfirm:
		return p.confirm(CmdReadSetup, p.execRead)
	case CmdProgramConfirm:
		return p.confirm(CmdProgramSetup, p.execProgram)
	case CmdEraseConfirm:
		return p.confirm(CmdEraseSetup, p.execErase)
	case CmdPLockConfirm:
		return p.confirm(CmdPLockSetup, p.execPLock)
	case CmdBLockConfirm:
		return p.confirm(CmdBLockSetup, p.execBLock)
	default:
		return fmt.Errorf("nand: unknown command byte %#02x", cmd)
	}
}

// confirm executes the latched operation. Protocol violations (confirm
// without a matching setup) error immediately; operation outcomes are
// reported both through the status register's fail bit — which is all a
// real bus exposes — and as the return value, for Go callers.
func (p *RawPort) confirm(setup byte, exec func() error) error {
	if p.cmd != int(setup) {
		return fmt.Errorf("nand: confirm without setup %#02x", setup)
	}
	err := exec()
	p.cmd = -1
	p.state = rawReady
	if err != nil {
		p.status = StatusReady | StatusFail
	} else {
		p.status = StatusReady
	}
	return err
}

// WriteAddress latches one address byte. Reads and programs take five
// cycles (two column, three row); erases and block locks take three row
// cycles; page locks take three row cycles too.
func (p *RawPort) WriteAddress(b byte) error {
	if p.state != rawAddr {
		return fmt.Errorf("nand: address cycle outside an address phase")
	}
	p.addr = append(p.addr, b)
	if p.cmd == int(byte(CmdProgramSetup)) && len(p.addr) >= 5 {
		p.state = rawDataIn
	}
	return nil
}

// WriteData latches one payload byte (program flow only).
func (p *RawPort) WriteData(b byte) error {
	if p.state != rawDataIn {
		return fmt.Errorf("nand: data-in cycle outside a program phase")
	}
	p.dataIn = append(p.dataIn, b)
	return nil
}

// ReadData returns the next data-out byte. After a status request it
// returns the status register; after a read it streams the page buffer
// (all zeros for a locked page). Reading past the buffer returns 0xFF,
// like a floating bus.
func (p *RawPort) ReadData() byte {
	if p.statusRq {
		p.statusRq = false
		return p.status
	}
	if p.dataPos < len(p.dataOut) {
		b := p.dataOut[p.dataPos]
		p.dataPos++
		return b
	}
	return 0xFF
}

// ReadPage is a convenience that runs the full 00h-addr-30h cycle and
// streams out n bytes.
func (p *RawPort) ReadPage(a PageAddr, n int) ([]byte, error) {
	if err := p.WriteCommand(CmdReadSetup); err != nil {
		return nil, err
	}
	for _, b := range encodeAddr5(a) {
		if err := p.WriteAddress(b); err != nil {
			return nil, err
		}
	}
	if err := p.WriteCommand(CmdReadConfirm); err != nil {
		return nil, err
	}
	out := make([]byte, n)
	for i := range out {
		out[i] = p.ReadData()
	}
	return out, nil
}

// Status runs a 70h cycle and returns the register.
func (p *RawPort) Status() byte {
	p.WriteCommand(CmdReadStatus)
	return p.ReadData()
}

func (p *RawPort) reset() {
	p.state = rawIdle
	p.cmd = -1
	p.addr = p.addr[:0]
	p.dataIn = p.dataIn[:0]
	p.dataOut = nil
	p.dataPos = 0
	p.status = StatusReady
	p.statusRq = false
}

// encodeAddr5 packs a page address into the 5-cycle form (2 column bytes
// always zero — the port reads from column 0 — plus 3 row bytes).
func encodeAddr5(a PageAddr) []byte {
	row := uint32(a.Block)<<12 | uint32(a.Page)&0xFFF
	return []byte{0, 0, byte(row), byte(row >> 8), byte(row >> 16)}
}

func decodeRow(addr []byte) (PageAddr, error) {
	if len(addr) < 3 {
		return PageAddr{}, fmt.Errorf("nand: short row address (%d bytes)", len(addr))
	}
	// Row bytes are the last three address cycles.
	r := addr[len(addr)-3:]
	row := uint32(r[0]) | uint32(r[1])<<8 | uint32(r[2])<<16
	return PageAddr{Block: int(row >> 12), Page: int(row & 0xFFF)}, nil
}

func (p *RawPort) execRead() error {
	a, err := decodeRow(p.addr)
	if err != nil {
		return err
	}
	res, err := p.chip.Read(a, p.now)
	// res.Data aliases the chip's read scratch, but the port streams
	// data-out byte-by-byte across later cycles — latch a copy into the
	// port's own (reused) buffer.
	if res.Data == nil {
		p.dataOut = nil
	} else {
		p.dataOut = append(p.dataOut[:0], res.Data...)
	}
	p.dataPos = 0
	switch err {
	case nil:
		return nil
	case ErrPageLocked, ErrBlockLocked:
		// The data-out path is gated: the attacker sees zeros and no
		// error indication beyond the (optional) fail bit.
		return err
	default:
		p.dataOut = nil
		return err
	}
}

func (p *RawPort) execProgram() error {
	a, err := decodeRow(p.addr[:5])
	if err != nil {
		return err
	}
	data := make([]byte, len(p.dataIn))
	copy(data, p.dataIn)
	_, err = p.chip.Program(a, data, p.now)
	return err
}

func (p *RawPort) execErase() error {
	a, err := decodeRow(p.addr)
	if err != nil {
		return err
	}
	_, err = p.chip.Erase(a.Block, p.now)
	return err
}

func (p *RawPort) execPLock() error {
	a, err := decodeRow(p.addr)
	if err != nil {
		return err
	}
	_, err = p.chip.PLock(a, p.now)
	return err
}

func (p *RawPort) execBLock() error {
	a, err := decodeRow(p.addr)
	if err != nil {
		return err
	}
	_, err = p.chip.BLock(a.Block, p.now)
	return err
}
