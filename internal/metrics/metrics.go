// Package metrics provides the summary statistics used throughout the
// Evanesco experiment harnesses: running summaries, percentiles, the
// five-number box-plot statistics the paper's figures report, fixed-bin
// histograms, and time series with downsampling for the Fig. 4 style
// N_valid/N_invalid plots.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary accumulates count / mean / min / max / variance online
// (Welford's algorithm) without retaining samples.
type Summary struct {
	n        uint64
	mean, m2 float64
	min, max float64
}

// Add records one sample.
func (s *Summary) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
}

// N returns the number of samples recorded.
func (s *Summary) N() uint64 { return s.n }

// Mean returns the sample mean (0 when empty).
func (s *Summary) Mean() float64 { return s.mean }

// Min returns the smallest sample (0 when empty).
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest sample (0 when empty).
func (s *Summary) Max() float64 { return s.max }

// Variance returns the unbiased sample variance (0 for n < 2).
func (s *Summary) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// StdDev returns the sample standard deviation.
func (s *Summary) StdDev() float64 { return math.Sqrt(s.Variance()) }

// Sum returns mean*n, the total of all samples.
func (s *Summary) Sum() float64 { return s.mean * float64(s.n) }

func (s *Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g min=%.4g max=%.4g sd=%.4g",
		s.n, s.Mean(), s.Min(), s.Max(), s.StdDev())
}

// Sample retains all values so that exact order statistics can be computed.
// It is used for the box-plot figures where the paper reports distributions
// over thousands of wordlines.
type Sample struct {
	xs     []float64
	sorted bool
}

// Add appends one value.
func (s *Sample) Add(x float64) {
	s.xs = append(s.xs, x)
	s.sorted = false
}

// AddAll appends many values.
func (s *Sample) AddAll(xs ...float64) {
	s.xs = append(s.xs, xs...)
	s.sorted = false
}

// Reserve grows the backing storage so at least n further Adds proceed
// without reallocation. It never shrinks and does not change N(). The
// Monte-Carlo campaigns size their samples up front with it.
func (s *Sample) Reserve(n int) {
	if cap(s.xs)-len(s.xs) >= n {
		return
	}
	xs := make([]float64, len(s.xs), len(s.xs)+n)
	copy(xs, s.xs)
	s.xs = xs
}

// N returns the number of values.
func (s *Sample) N() int { return len(s.xs) }

// Values returns the values in sorted order.
//
// Aliasing hazard: the returned slice is the Sample's internal storage,
// not a copy, and the call silently sorts it in place — insertion order
// is lost and later Adds re-disturb the ordering. Callers must not
// modify the slice or hold it across Adds; use Sorted for a stable,
// caller-owned copy (the trace exporters do).
func (s *Sample) Values() []float64 {
	s.ensureSorted()
	return s.xs
}

// Sorted returns the values in ascending order as a freshly allocated
// slice the caller owns. Unlike Values it never exposes internal
// storage, so the copy stays valid (and stays sorted) no matter what is
// added to the Sample afterwards.
func (s *Sample) Sorted() []float64 {
	out := make([]float64, len(s.xs))
	copy(out, s.xs)
	sort.Float64s(out)
	return out
}

func (s *Sample) ensureSorted() {
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
}

// Quantile returns the q-th quantile (0 <= q <= 1) by linear interpolation
// between closest ranks. It returns NaN for an empty sample.
func (s *Sample) Quantile(q float64) float64 {
	if len(s.xs) == 0 {
		return math.NaN()
	}
	s.ensureSorted()
	if q <= 0 {
		return s.xs[0]
	}
	if q >= 1 {
		return s.xs[len(s.xs)-1]
	}
	pos := q * float64(len(s.xs)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s.xs[lo]
	}
	frac := pos - float64(lo)
	return s.xs[lo]*(1-frac) + s.xs[hi]*frac
}

// Mean returns the arithmetic mean (NaN when empty).
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// Max returns the largest value (NaN when empty).
func (s *Sample) Max() float64 { return s.Quantile(1) }

// Min returns the smallest value (NaN when empty).
func (s *Sample) Min() float64 { return s.Quantile(0) }

// FractionAbove reports the fraction of values strictly greater than limit.
// The paper uses this to report, e.g., "7.4% of RBER values exceed the ECC
// limit".
func (s *Sample) FractionAbove(limit float64) float64 {
	if len(s.xs) == 0 {
		return 0
	}
	s.ensureSorted()
	// First index with value > limit.
	i := sort.Search(len(s.xs), func(i int) bool { return s.xs[i] > limit })
	return float64(len(s.xs)-i) / float64(len(s.xs))
}

// BoxStats is the five-number summary drawn in the paper's box plots, plus
// the whisker bounds (1.5 IQR convention).
type BoxStats struct {
	Min, Q1, Median, Q3, Max float64
	WhiskerLo, WhiskerHi     float64
}

// Box computes the box-plot statistics of the sample.
func (s *Sample) Box() BoxStats {
	b := BoxStats{
		Min:    s.Quantile(0),
		Q1:     s.Quantile(0.25),
		Median: s.Quantile(0.5),
		Q3:     s.Quantile(0.75),
		Max:    s.Quantile(1),
	}
	iqr := b.Q3 - b.Q1
	b.WhiskerLo = math.Max(b.Min, b.Q1-1.5*iqr)
	b.WhiskerHi = math.Min(b.Max, b.Q3+1.5*iqr)
	return b
}

func (b BoxStats) String() string {
	return fmt.Sprintf("min=%.3g q1=%.3g med=%.3g q3=%.3g max=%.3g",
		b.Min, b.Q1, b.Median, b.Q3, b.Max)
}

// Histogram is a fixed-width-bin histogram over [lo, hi); samples outside
// the range land in saturating under/overflow bins.
type Histogram struct {
	lo, hi    float64
	bins      []uint64
	underflow uint64
	overflow  uint64
	total     uint64
}

// NewHistogram creates a histogram with n equal-width bins over [lo, hi).
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 || hi <= lo {
		panic(fmt.Sprintf("metrics: invalid histogram [%g,%g) n=%d", lo, hi, n))
	}
	return &Histogram{lo: lo, hi: hi, bins: make([]uint64, n)}
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	h.total++
	switch {
	case x < h.lo:
		h.underflow++
	case x >= h.hi:
		h.overflow++
	default:
		i := int((x - h.lo) / (h.hi - h.lo) * float64(len(h.bins)))
		if i == len(h.bins) { // floating-point edge
			i--
		}
		h.bins[i]++
	}
}

// N returns the total number of samples including out-of-range ones.
func (h *Histogram) N() uint64 { return h.total }

// Bin returns the count in bin i.
func (h *Histogram) Bin(i int) uint64 { return h.bins[i] }

// Bins returns the number of bins.
func (h *Histogram) Bins() int { return len(h.bins) }

// BinCenter returns the center value of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.hi - h.lo) / float64(len(h.bins))
	return h.lo + w*(float64(i)+0.5)
}

// BinUpper returns the exclusive upper bound of bin i — the `le` bucket
// boundary in a Prometheus/OpenMetrics exposition.
func (h *Histogram) BinUpper(i int) float64 {
	w := (h.hi - h.lo) / float64(len(h.bins))
	return h.lo + w*float64(i+1)
}

// Lo returns the histogram's inclusive lower range bound.
func (h *Histogram) Lo() float64 { return h.lo }

// Hi returns the histogram's exclusive upper range bound.
func (h *Histogram) Hi() float64 { return h.hi }

// OutOfRange returns the underflow and overflow counts.
func (h *Histogram) OutOfRange() (under, over uint64) { return h.underflow, h.overflow }

// Render returns a crude ASCII rendering, useful in example programs.
// Nonzero underflow/overflow counts get their own "< lo" / ">= hi" rows
// (scaled against the same maximum), so saturated bins are visible
// instead of silently vanishing off the ends of the range.
func (h *Histogram) Render(width int) string {
	var max uint64
	for _, c := range h.bins {
		if c > max {
			max = c
		}
	}
	if h.underflow > max {
		max = h.underflow
	}
	if h.overflow > max {
		max = h.overflow
	}
	bar := func(c uint64) string {
		if max == 0 {
			return ""
		}
		return strings.Repeat("#", int(float64(c)/float64(max)*float64(width)))
	}
	var sb strings.Builder
	if h.underflow > 0 {
		fmt.Fprintf(&sb, "%10s | %s %d\n", fmt.Sprintf("< %.3g", h.lo), bar(h.underflow), h.underflow)
	}
	for i, c := range h.bins {
		fmt.Fprintf(&sb, "%10.3g | %s %d\n", h.BinCenter(i), bar(c), c)
	}
	if h.overflow > 0 {
		fmt.Fprintf(&sb, "%10s | %s %d\n", fmt.Sprintf(">= %.3g", h.hi), bar(h.overflow), h.overflow)
	}
	return sb.String()
}

// Point is one (t, v) observation in a time series.
type Point struct {
	T int64
	V float64
}

// Series is an append-only time series keyed by a logical clock. It is used
// for the Fig. 4 N_valid/N_invalid(f, t) plots, where t is the logical time
// that advances by one per 4 KiB host write.
type Series struct {
	Name   string
	points []Point
}

// NewSeries creates a named series.
func NewSeries(name string) *Series { return &Series{Name: name} }

// Record appends an observation. Observations must be recorded with
// non-decreasing timestamps; violating timestamps are clamped.
func (s *Series) Record(t int64, v float64) {
	if n := len(s.points); n > 0 && t < s.points[n-1].T {
		t = s.points[n-1].T
	}
	s.points = append(s.points, Point{T: t, V: v})
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.points) }

// Points returns the raw points. Callers must not modify the slice.
func (s *Series) Points() []Point { return s.points }

// Last returns the most recent point (zero Point when empty).
func (s *Series) Last() Point {
	if len(s.points) == 0 {
		return Point{}
	}
	return s.points[len(s.points)-1]
}

// MaxValue returns the maximum observed value (0 when empty).
func (s *Series) MaxValue() float64 {
	var max float64
	for i, p := range s.points {
		if i == 0 || p.V > max {
			max = p.V
		}
	}
	return max
}

// Downsample reduces the series to at most n points by keeping, for each of
// n equal-width time buckets, the last observation in the bucket. The first
// and last points are always preserved. It is used to emit plot-friendly
// series from multi-million-point runs.
func (s *Series) Downsample(n int) []Point {
	if n <= 0 || len(s.points) <= n {
		out := make([]Point, len(s.points))
		copy(out, s.points)
		return out
	}
	first := s.points[0]
	last := s.points[len(s.points)-1]
	span := last.T - first.T
	if span <= 0 {
		return []Point{first, last}
	}
	out := make([]Point, 0, n+2)
	out = append(out, first)
	bucket := -1 // the preserved first point is never overwritten
	for _, p := range s.points[1:] {
		b := int(float64(p.T-first.T) / float64(span+1) * float64(n))
		if b != bucket {
			out = append(out, p)
			bucket = b
		} else {
			out[len(out)-1] = p
		}
	}
	if out[len(out)-1].T != last.T {
		out = append(out, last)
	}
	return out
}
