package metrics

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d, want 8", s.N())
	}
	if s.Mean() != 5 {
		t.Fatalf("Mean = %v, want 5", s.Mean())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v, want 2/9", s.Min(), s.Max())
	}
	// Population variance of this classic set is 4; sample variance 32/7.
	want := 32.0 / 7.0
	if math.Abs(s.Variance()-want) > 1e-12 {
		t.Fatalf("Variance = %v, want %v", s.Variance(), want)
	}
	if math.Abs(s.Sum()-40) > 1e-9 {
		t.Fatalf("Sum = %v, want 40", s.Sum())
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Variance() != 0 || s.N() != 0 {
		t.Fatal("empty summary should be all zeros")
	}
}

func TestSummarySingle(t *testing.T) {
	var s Summary
	s.Add(3.5)
	if s.Min() != 3.5 || s.Max() != 3.5 || s.Mean() != 3.5 {
		t.Fatal("single-sample summary wrong")
	}
	if s.Variance() != 0 {
		t.Fatal("single-sample variance should be 0")
	}
}

func TestSampleQuantiles(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	if got := s.Quantile(0); got != 1 {
		t.Fatalf("Q0 = %v, want 1", got)
	}
	if got := s.Quantile(1); got != 100 {
		t.Fatalf("Q1 = %v, want 100", got)
	}
	if got := s.Quantile(0.5); math.Abs(got-50.5) > 1e-9 {
		t.Fatalf("median = %v, want 50.5", got)
	}
	if got := s.Quantile(0.25); math.Abs(got-25.75) > 1e-9 {
		t.Fatalf("Q.25 = %v, want 25.75", got)
	}
}

func TestSampleEmptyQuantileIsNaN(t *testing.T) {
	var s Sample
	if !math.IsNaN(s.Quantile(0.5)) {
		t.Fatal("quantile of empty sample should be NaN")
	}
	if !math.IsNaN(s.Mean()) {
		t.Fatal("mean of empty sample should be NaN")
	}
}

func TestSampleFractionAbove(t *testing.T) {
	var s Sample
	s.AddAll(0.5, 0.8, 1.0, 1.1, 1.5)
	if got := s.FractionAbove(1.0); got != 0.4 {
		t.Fatalf("FractionAbove(1.0) = %v, want 0.4 (strictly greater)", got)
	}
	if got := s.FractionAbove(2.0); got != 0 {
		t.Fatalf("FractionAbove(2.0) = %v, want 0", got)
	}
	if got := s.FractionAbove(0.0); got != 1 {
		t.Fatalf("FractionAbove(0.0) = %v, want 1", got)
	}
}

func TestSampleInterleavedAddAndQuery(t *testing.T) {
	var s Sample
	s.AddAll(3, 1, 2)
	if got := s.Quantile(1); got != 3 {
		t.Fatalf("max = %v, want 3", got)
	}
	s.Add(10) // must re-sort after the next query
	if got := s.Quantile(1); got != 10 {
		t.Fatalf("max after add = %v, want 10", got)
	}
}

func TestBoxStats(t *testing.T) {
	var s Sample
	for i := 1; i <= 11; i++ {
		s.Add(float64(i))
	}
	b := s.Box()
	if b.Median != 6 {
		t.Fatalf("median = %v, want 6", b.Median)
	}
	if b.Q1 != 3.5 || b.Q3 != 8.5 {
		t.Fatalf("Q1/Q3 = %v/%v, want 3.5/8.5", b.Q1, b.Q3)
	}
	if b.Min != 1 || b.Max != 11 {
		t.Fatalf("Min/Max = %v/%v, want 1/11", b.Min, b.Max)
	}
	if b.WhiskerLo > b.Q1 || b.WhiskerHi < b.Q3 {
		t.Fatal("whiskers must bracket the box")
	}
}

func TestHistogramBinning(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	for i := 0; i < 10; i++ {
		if h.Bin(i) != 1 {
			t.Fatalf("bin %d = %d, want 1", i, h.Bin(i))
		}
	}
	h.Add(-1)
	h.Add(10)
	h.Add(100)
	under, over := h.OutOfRange()
	if under != 1 || over != 2 {
		t.Fatalf("under/over = %d/%d, want 1/2", under, over)
	}
	if h.N() != 13 {
		t.Fatalf("N = %d, want 13", h.N())
	}
}

func TestHistogramBinCenter(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	if got := h.BinCenter(0); got != 1 {
		t.Fatalf("BinCenter(0) = %v, want 1", got)
	}
	if got := h.BinCenter(4); got != 9 {
		t.Fatalf("BinCenter(4) = %v, want 9", got)
	}
}

func TestHistogramPanicsOnBadArgs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewHistogram with hi<=lo should panic")
		}
	}()
	NewHistogram(5, 5, 3)
}

func TestHistogramRender(t *testing.T) {
	h := NewHistogram(0, 2, 2)
	h.Add(0.5)
	h.Add(1.5)
	h.Add(1.6)
	out := h.Render(10)
	if out == "" {
		t.Fatal("Render returned empty string")
	}
}

func TestSeriesRecordAndClamp(t *testing.T) {
	s := NewSeries("valid")
	s.Record(10, 1)
	s.Record(5, 2) // out of order: clamped to t=10
	pts := s.Points()
	if len(pts) != 2 || pts[1].T != 10 {
		t.Fatalf("points = %v, want second point clamped to T=10", pts)
	}
	if s.Last().V != 2 {
		t.Fatalf("Last().V = %v, want 2", s.Last().V)
	}
	if s.MaxValue() != 2 {
		t.Fatalf("MaxValue = %v, want 2", s.MaxValue())
	}
}

func TestSeriesDownsample(t *testing.T) {
	s := NewSeries("x")
	for i := 0; i < 10000; i++ {
		s.Record(int64(i), float64(i))
	}
	ds := s.Downsample(100)
	if len(ds) > 101 {
		t.Fatalf("downsampled to %d points, want <= 101", len(ds))
	}
	if ds[0].T != 0 {
		t.Fatalf("first point T = %d, want 0", ds[0].T)
	}
	if ds[len(ds)-1].T != 9999 {
		t.Fatalf("last point T = %d, want 9999", ds[len(ds)-1].T)
	}
	for i := 1; i < len(ds); i++ {
		if ds[i].T < ds[i-1].T {
			t.Fatal("downsampled series not monotonic in T")
		}
	}
}

func TestSeriesDownsampleSmall(t *testing.T) {
	s := NewSeries("x")
	s.Record(1, 1)
	s.Record(2, 2)
	ds := s.Downsample(100)
	if len(ds) != 2 {
		t.Fatalf("short series should be returned whole, got %d points", len(ds))
	}
}

func TestSeriesDownsampleConstantTime(t *testing.T) {
	s := NewSeries("x")
	for i := 0; i < 10; i++ {
		s.Record(5, float64(i))
	}
	ds := s.Downsample(3)
	if len(ds) < 1 {
		t.Fatal("downsample of constant-time series lost all points")
	}
}

// Property: Summary mean/min/max agree with a direct computation.
func TestSummaryMatchesDirectProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := int(n%50) + 1
		var s Summary
		xs := make([]float64, k)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 100
			s.Add(xs[i])
		}
		sort.Float64s(xs)
		var sum float64
		for _, x := range xs {
			sum += x
		}
		mean := sum / float64(k)
		return math.Abs(s.Mean()-mean) < 1e-9 &&
			s.Min() == xs[0] && s.Max() == xs[k-1] && s.N() == uint64(k)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: quantiles are monotone in q and bounded by min/max.
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var s Sample
		for i := 0; i < int(n%40)+2; i++ {
			s.Add(rng.Float64() * 1000)
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := s.Quantile(q)
			if v < prev {
				return false
			}
			if v < s.Min() || v > s.Max() {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: histogram conserves samples (bins + under + over == N).
func TestHistogramConservationProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		h := NewHistogram(-10, 10, 7)
		k := int(n)%100 + 1
		for i := 0; i < k; i++ {
			h.Add(rng.NormFloat64() * 15)
		}
		var total uint64
		for i := 0; i < h.Bins(); i++ {
			total += h.Bin(i)
		}
		u, o := h.OutOfRange()
		return total+u+o == h.N() && h.N() == uint64(k)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSummaryStdDevAndString(t *testing.T) {
	var s Summary
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	want := math.Sqrt(32.0 / 7.0)
	if math.Abs(s.StdDev()-want) > 1e-12 {
		t.Fatalf("StdDev = %v, want %v", s.StdDev(), want)
	}
	if str := s.String(); str == "" {
		t.Fatal("String empty")
	}
}

func TestSampleNValuesMean(t *testing.T) {
	var s Sample
	s.AddAll(3, 1, 2)
	if s.N() != 3 {
		t.Fatalf("N = %d", s.N())
	}
	vals := s.Values()
	if vals[0] != 1 || vals[2] != 3 {
		t.Fatalf("Values not sorted: %v", vals)
	}
	if got := s.Mean(); got != 2 {
		t.Fatalf("Mean = %v", got)
	}
	if s.Min() != 1 || s.Max() != 3 {
		t.Fatal("Min/Max wrong")
	}
}

func TestBoxStatsString(t *testing.T) {
	var s Sample
	s.AddAll(1, 2, 3)
	if s.Box().String() == "" {
		t.Fatal("BoxStats String empty")
	}
}

func TestSampleSortedIsIndependentCopy(t *testing.T) {
	var s Sample
	s.AddAll(3, 1, 2)
	sorted := s.Sorted()
	if sorted[0] != 1 || sorted[1] != 2 || sorted[2] != 3 {
		t.Fatalf("Sorted = %v, want ascending", sorted)
	}
	// Mutating the copy must not leak into the Sample...
	sorted[0] = 99
	if s.Min() != 1 {
		t.Fatalf("Min = %v after mutating Sorted copy, want 1", s.Min())
	}
	// ...and later Adds must not disturb the copy (unlike Values, whose
	// returned slice aliases internal storage).
	snapshot := s.Sorted()
	s.Add(0)
	if snapshot[0] != 1 || len(snapshot) != 3 {
		t.Fatalf("Sorted snapshot disturbed by later Add: %v", snapshot)
	}
	vals := s.Values()
	if vals[0] != 0 { // documents the aliasing behaviour Sorted avoids
		t.Fatalf("Values = %v, want re-sorted internal storage", vals)
	}
}

func TestHistogramRenderShowsOutOfRange(t *testing.T) {
	h := NewHistogram(0, 10, 2)
	h.Add(5)
	out := h.Render(10)
	if strings.Contains(out, "< 0") || strings.Contains(out, ">= 10") {
		t.Fatalf("no out-of-range rows expected yet:\n%s", out)
	}
	h.Add(-3)
	h.Add(-4)
	h.Add(42)
	out = h.Render(10)
	if !strings.Contains(out, "< 0") {
		t.Fatalf("underflow row missing:\n%s", out)
	}
	if !strings.Contains(out, ">= 10") {
		t.Fatalf("overflow row missing:\n%s", out)
	}
	// The underflow count (2) dominates every bin, so its bar must be the
	// full width and the counts must be printed.
	if !strings.Contains(out, "##########") {
		t.Fatalf("dominant underflow bar not full width:\n%s", out)
	}
	if !strings.Contains(out, " 2\n") {
		t.Fatalf("underflow count not rendered:\n%s", out)
	}
}

func TestSeriesDownsampleToOne(t *testing.T) {
	s := NewSeries("x")
	for i := 0; i < 100; i++ {
		s.Record(int64(i), float64(i))
	}
	ds := s.Downsample(1)
	if len(ds) < 2 {
		t.Fatalf("Downsample(1) = %v, must keep first and last", ds)
	}
	if ds[0].T != 0 || ds[len(ds)-1].T != 99 {
		t.Fatalf("Downsample(1) endpoints = %v, want T=0 and T=99", ds)
	}
}

func TestSeriesDownsampleAllSameTimestamp(t *testing.T) {
	s := NewSeries("x")
	for i := 0; i < 50; i++ {
		s.Record(7, float64(i))
	}
	ds := s.Downsample(10)
	if len(ds) != 2 {
		t.Fatalf("zero-span series downsampled to %d points, want 2", len(ds))
	}
	if ds[0].T != 7 || ds[1].T != 7 {
		t.Fatalf("zero-span endpoints = %v, want both at T=7", ds)
	}
	if ds[0].V != 0 || ds[1].V != 49 {
		t.Fatalf("zero-span endpoints = %v, want first and last values", ds)
	}
}

func TestSeriesDownsampleExactlyNPoints(t *testing.T) {
	s := NewSeries("x")
	for i := 0; i < 10; i++ {
		s.Record(int64(i), float64(i))
	}
	ds := s.Downsample(10)
	if len(ds) != 10 {
		t.Fatalf("n == len must return the series whole, got %d points", len(ds))
	}
	for i, p := range ds {
		if p.T != int64(i) || p.V != float64(i) {
			t.Fatalf("point %d = %v, want identity copy", i, p)
		}
	}
	// The copy must be caller-owned.
	ds[0].V = 99
	if s.Points()[0].V != 0 {
		t.Fatal("Downsample leaked internal storage")
	}
}

func TestSeriesLenAndEmptyLast(t *testing.T) {
	s := NewSeries("x")
	if s.Len() != 0 {
		t.Fatal("empty series Len")
	}
	if s.Last() != (Point{}) {
		t.Fatal("empty series Last should be zero Point")
	}
	if s.MaxValue() != 0 {
		t.Fatal("empty series MaxValue should be 0")
	}
	s.Record(1, 5)
	if s.Len() != 1 {
		t.Fatal("Len after record")
	}
}
