// Package ftltest provides a lightweight ftl.Target fake for unit tests:
// it counts operations, applies fixed latencies serially per chip, and
// optionally mirrors every command onto real emulated nand.Chips so
// cross-layer tests can check physical state.
package ftltest

import (
	"repro/internal/ftl"
	"repro/internal/nand"
	"repro/internal/nand/vth"
	"repro/internal/sim"
)

// CountingTarget implements ftl.Target with per-op counters and a trivial
// per-chip serial timing model.
type CountingTarget struct {
	Geo    ftl.Geometry
	Timing nand.Timing

	Reads, Programs, Erases uint64
	PLocks, BLocks, Scrubs  uint64
	Copybacks               uint64

	// Batched/multi-plane counters (the ftl.BatchTarget surface).
	PLockWLs, WLPagesLocked   uint64
	ProgramGroups, ReadGroups uint64

	// Scripted fault hooks: when set and returning non-nil, the
	// operation fails with that error after charging its latency —
	// mirroring the Target contract (a failed Program still consumed
	// its page on any attached chip). Tests use these to script exact
	// failure sequences without probabilistic injection.
	FailProgram func(p ftl.PPA) error
	FailErase   func(block int) error
	FailPLock   func(p ftl.PPA) error
	FailBLock   func(block int) error
	// FailPLockWL scripts batched-pulse failures; per the chip contract
	// a failed pulse commits nothing, so the mirrored chip is untouched.
	FailPLockWL func(block, wl int) error

	// Chips, when non-nil, mirrors every command onto real chip models
	// (len must equal Geo.Chips).
	Chips []*nand.Chip

	chipBusy []sim.Timeline
}

// New creates a counting target for the geometry.
func New(geo ftl.Geometry) *CountingTarget {
	return &CountingTarget{
		Geo:      geo,
		Timing:   nand.DefaultTiming(),
		chipBusy: make([]sim.Timeline, geo.Chips),
	}
}

// WithChips attaches real chip models; each must have at least
// Geo.BlocksPerChip blocks and Geo.PagesPerBlock pages per block.
func (t *CountingTarget) WithChips(chips []*nand.Chip) *CountingTarget {
	t.Chips = chips
	return t
}

func (t *CountingTarget) exec(chip int, d sim.Micros, dep sim.Micros) sim.Micros {
	_, end := t.chipBusy[chip].Reserve(dep, d)
	return end
}

func (t *CountingTarget) addr(p ftl.PPA) (int, nand.PageAddr) {
	chip := t.Geo.ChipOf(p)
	return chip, nand.PageAddr{
		Block: t.Geo.BlockInChip(t.Geo.BlockOf(p)),
		Page:  t.Geo.PageInBlock(p),
	}
}

// Read implements ftl.Target.
func (t *CountingTarget) Read(p ftl.PPA, dep sim.Micros) ([]byte, sim.Micros) {
	t.Reads++
	chip, a := t.addr(p)
	var data []byte
	if t.Chips != nil {
		if res, err := t.Chips[chip].Read(a, dep); err == nil {
			// Copy: the returned slice outlives this read (the scratch
			// aliasing rule), and a test fake has no hot path to protect.
			data = res.CloneData()
		}
	}
	return data, t.exec(chip, t.Timing.Read, dep)
}

// Program implements ftl.Target.
func (t *CountingTarget) Program(p ftl.PPA, data []byte, dep sim.Micros) (sim.Micros, error) {
	t.Programs++
	chip, a := t.addr(p)
	if t.Chips != nil {
		if data == nil {
			data = []byte{0xA5}
		}
		if _, err := t.Chips[chip].Program(a, data, dep); err != nil {
			panic("ftltest: FTL violated flash discipline: " + err.Error())
		}
	}
	done := t.exec(chip, t.Timing.Prog, dep)
	if t.FailProgram != nil {
		return done, t.FailProgram(p)
	}
	return done, nil
}

// Copyback implements ftl.Target.
func (t *CountingTarget) Copyback(src, dst ftl.PPA, dep sim.Micros) (sim.Micros, error) {
	t.Copybacks++
	chipS, aSrc := t.addr(src)
	chipD, aDst := t.addr(dst)
	if t.Chips != nil {
		var data []byte
		if res, err := t.Chips[chipS].Read(aSrc, dep); err == nil {
			data = res.Data
		}
		if data == nil {
			data = []byte{}
		}
		if _, err := t.Chips[chipD].Program(aDst, data, dep); err != nil {
			panic("ftltest: copyback program: " + err.Error())
		}
	}
	done := t.exec(chipS, t.Timing.Read+t.Timing.Prog, dep)
	if t.FailProgram != nil {
		return done, t.FailProgram(dst)
	}
	return done, nil
}

// Erase implements ftl.Target.
func (t *CountingTarget) Erase(block int, dep sim.Micros) (sim.Micros, error) {
	t.Erases++
	chip := t.Geo.ChipOfBlock(block)
	done := t.exec(chip, t.Timing.Erase, dep)
	if t.FailErase != nil {
		if err := t.FailErase(block); err != nil {
			// A failed erase leaves the mirrored chip untouched.
			return done, err
		}
	}
	if t.Chips != nil {
		if _, err := t.Chips[chip].Erase(t.Geo.BlockInChip(block), dep); err != nil {
			panic("ftltest: " + err.Error())
		}
	}
	return done, nil
}

// PLock implements ftl.Target.
func (t *CountingTarget) PLock(p ftl.PPA, dep sim.Micros) (sim.Micros, error) {
	t.PLocks++
	chip, a := t.addr(p)
	done := t.exec(chip, t.Timing.PLock, dep)
	if t.FailPLock != nil {
		if err := t.FailPLock(p); err != nil {
			// A failed flag program leaves the mirrored chip unlocked.
			return done, err
		}
	}
	if t.Chips != nil {
		if _, err := t.Chips[chip].PLock(a, dep); err != nil {
			panic("ftltest: " + err.Error())
		}
	}
	return done, nil
}

// BLock implements ftl.Target.
func (t *CountingTarget) BLock(block int, dep sim.Micros) (sim.Micros, error) {
	t.BLocks++
	chip := t.Geo.ChipOfBlock(block)
	done := t.exec(chip, t.Timing.BLock, dep)
	if t.FailBLock != nil {
		if err := t.FailBLock(block); err != nil {
			return done, err
		}
	}
	if t.Chips != nil {
		if _, err := t.Chips[chip].BLock(t.Geo.BlockInChip(block), dep); err != nil {
			panic("ftltest: " + err.Error())
		}
	}
	return done, nil
}

// Scrub implements ftl.Target.
func (t *CountingTarget) Scrub(p ftl.PPA, dep sim.Micros) sim.Micros {
	t.Scrubs++
	chip, a := t.addr(p)
	if t.Chips != nil {
		if _, err := t.Chips[chip].Scrub(a, dep); err != nil {
			panic("ftltest: " + err.Error())
		}
	}
	return t.exec(chip, t.Timing.Scrub, dep)
}

// PLockWL implements ftl.BatchTarget: one shared tpLock pulse for every
// still-unlocked page of the wordline.
func (t *CountingTarget) PLockWL(block, wl int, pages []ftl.PPA, dep sim.Micros) (sim.Micros, error) {
	t.PLockWLs++
	t.WLPagesLocked += uint64(len(pages))
	chip := t.Geo.ChipOfBlock(block)
	done := t.exec(chip, t.Timing.PLock, dep)
	if t.FailPLockWL != nil {
		if err := t.FailPLockWL(block, wl); err != nil {
			return done, err
		}
	}
	if t.Chips != nil {
		slots := make([]int, len(pages))
		for i, p := range pages {
			slots[i] = t.Geo.PageInBlock(p) % t.Geo.PagesPerWL
		}
		if _, err := t.Chips[chip].PLockWL(t.Geo.BlockInChip(block), wl, slots, dep); err != nil {
			panic("ftltest: " + err.Error())
		}
	}
	return done, nil
}

// ProgramGroup implements ftl.BatchTarget: per-page payload delivery
// with one shared tPROG.
func (t *CountingTarget) ProgramGroup(pages []ftl.PPA, datas [][]byte, dep sim.Micros) (sim.Micros, []error) {
	t.ProgramGroups++
	chip := t.Geo.ChipOf(pages[0])
	errs := make([]error, len(pages))
	for i, p := range pages {
		t.Programs++
		if t.Chips != nil {
			data := datas[i]
			if data == nil {
				data = []byte{0xA5}
			}
			_, a := t.addr(p)
			if _, err := t.Chips[chip].Program(a, data, dep); err != nil {
				panic("ftltest: FTL violated flash discipline: " + err.Error())
			}
		}
		if t.FailProgram != nil {
			errs[i] = t.FailProgram(p)
		}
	}
	return t.exec(chip, t.Timing.Prog, dep), errs
}

// ReadGroup implements ftl.BatchTarget: one shared tREAD for the group
// (grouped host reads are timing-only above the FTL).
func (t *CountingTarget) ReadGroup(pages []ftl.PPA, dep sim.Micros) sim.Micros {
	t.ReadGroups++
	for _, p := range pages {
		t.Reads++
		if t.Chips != nil {
			chip, a := t.addr(p)
			if _, err := t.Chips[chip].Read(a, dep); err != nil {
				// Locked or uncorrectable pages still charge the shared
				// read; the grouped path discards payloads either way.
				continue
			}
		}
	}
	return t.exec(t.Geo.ChipOf(pages[0]), t.Timing.Read, dep)
}

// BuildChips constructs real nand.Chip models matching the geometry. The
// t parameter is any test handle with Fatal (testing.T or testing.B).
func BuildChips(t interface{ Fatal(...any) }, geo ftl.Geometry) []*nand.Chip {
	chips := make([]*nand.Chip, geo.Chips)
	for i := range chips {
		c, err := nand.New(nand.Geometry{
			Blocks:          geo.BlocksPerChip,
			WLsPerBlock:     geo.PagesPerBlock / geo.PagesPerWL,
			CellKind:        kindFor(geo.PagesPerWL),
			PageBytes:       geo.PageBytes,
			FlagCells:       9,
			EnduranceCycles: 1000,
			Planes:          geo.Planes,
		}, nand.WithSeed(int64(i)+1))
		if err != nil {
			t.Fatal(err)
		}
		chips[i] = c
	}
	return chips
}

func kindFor(pagesPerWL int) vth.CellKind {
	switch pagesPerWL {
	case 1:
		return vth.SLC
	case 2:
		return vth.MLC
	case 4:
		return vth.QLC
	default:
		return vth.TLC
	}
}

// SmallGeometry returns a compact geometry for fast tests: 2 chips × 8
// blocks × 12 pages (4 TLC wordlines).
func SmallGeometry() ftl.Geometry {
	return ftl.Geometry{
		Chips:         2,
		BlocksPerChip: 8,
		PagesPerBlock: 12,
		PagesPerWL:    3,
		PageBytes:     4096,
	}
}

// SmallConfig returns a matching FTL config with ~25% over-provisioning.
func SmallConfig() ftl.Config {
	geo := SmallGeometry()
	return ftl.Config{
		Geometry:        geo,
		LogicalPages:    geo.TotalPages() / 2,
		GCFreeBlocksLow: 2,
		Timing:          ftl.DefaultLockTiming(),
	}
}
