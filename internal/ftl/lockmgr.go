package ftl

// Wordline-aware pLock batching (§5 of the paper). SBPI programs the
// selected flag cells of one wordline in a single tpLock pulse, so
// several stale pages sharing a wordline can be locked for the price of
// one. The lock manager queues pending pLocks per wordline and issues a
// batched pulse when the wordline's group is complete, when the queue
// crosses a size threshold, or when the oldest group's age crosses the
// configured deadline — which is what bounds T_insecure in deferred
// mode.

import (
	"repro/internal/audit"
	"repro/internal/sim"
	"repro/internal/trace"
)

// lockGroup is one wordline's queued pLocks.
type lockGroup struct {
	block    int
	wl       int        // device-global wordline index
	queuedAt sim.Micros // when the first page joined (deadline anchor)
	pages    []PPA      // nil once detached (issued or compacted away)
}

// lockQueue is the lock manager's coalescing state. Flat arrays indexed
// by device wordline / page keep the hot path free of map operations.
type lockQueue struct {
	groups   []lockGroup
	groupIdx []int32 // per device WL: position+1 into groups, 0 = none
	pending  []bool  // per PPA: queued and not yet issued or cancelled
	count    int     // queued pages (pending bits set)
	attached int     // groups whose pages slice is still attached
	pagePool [][]PPA // recycled page slices
}

func (q *lockQueue) takePages(capHint int) []PPA {
	if n := len(q.pagePool); n > 0 {
		s := q.pagePool[n-1][:0]
		q.pagePool[n-1] = nil
		q.pagePool = q.pagePool[:n-1]
		return s
	}
	return make([]PPA, 0, capHint)
}

func (q *lockQueue) recycle(pages []PPA) {
	if cap(pages) > 0 {
		q.pagePool = append(q.pagePool, pages[:0])
	}
}

// LockQueueLen reports how many pages are waiting in the batching queue.
func (f *FTL) LockQueueLen() int { return f.lockq.count }

// LockPage routes one stale secured page to the lock manager. With
// batching disabled (or no BatchTarget available) it degenerates to an
// immediate per-page pLock; otherwise the page joins its wordline's
// group and is locked by a batched SBPI pulse at the next flush point.
func (f *FTL) LockPage(p PPA) {
	if !f.lockBatching {
		f.IssuePLock(p)
		return
	}
	block := f.geo.BlockOf(p)
	if f.lockedBlocks[block] || f.retired[block] || f.status[p] != PageInvalid {
		// Same guards as IssuePLock: the stale copy is already gone.
		return
	}
	q := &f.lockq
	if q.pending[p] {
		return
	}
	wl := f.geo.WLIndex(p)
	gi := int(q.groupIdx[wl]) - 1
	if gi < 0 || q.groups[gi].pages == nil {
		q.groups = append(q.groups, lockGroup{
			block:    block,
			wl:       wl,
			queuedAt: f.reqStart,
			pages:    q.takePages(f.geo.PagesPerWL),
		})
		gi = len(q.groups) - 1
		q.groupIdx[wl] = int32(gi + 1)
		q.attached++
	}
	q.pending[p] = true
	q.count++
	q.groups[gi].pages = append(q.groups[gi].pages, p)
	if len(q.groups[gi].pages) == f.geo.PagesPerWL {
		// The wordline cannot gain more stale pages: pulse it now.
		f.issueLockGroup(gi)
		return
	}
	if f.cfg.LockBatch.Threshold > 0 && q.count >= f.cfg.LockBatch.Threshold {
		f.FlushLocks()
	}
}

// issueLockGroup detaches and issues one wordline group, reporting
// whether any chip command was sent. The group is detached from the
// queue BEFORE anything is issued: a failed pulse escalates through
// relocation and GC, whose policy flush can reenter the lock manager
// and grow/compact q.groups under us.
func (f *FTL) issueLockGroup(gi int) bool {
	q := &f.lockq
	g := q.groups[gi]
	pages := g.pages
	if pages == nil {
		return false
	}
	q.groups[gi].pages = nil
	if int(q.groupIdx[g.wl])-1 == gi {
		q.groupIdx[g.wl] = 0
	}
	q.attached--

	// Consume the pending bits and refilter: cancellations (erase,
	// retirement) cleared bits, and reentrant activity may have destroyed
	// some stale copies since they queued.
	live := pages[:0]
	for _, p := range pages {
		if !q.pending[p] {
			continue
		}
		q.pending[p] = false
		q.count--
		if f.status[p] == PageInvalid {
			live = append(live, p)
		}
	}
	if len(live) == 0 || f.lockedBlocks[g.block] || f.retired[g.block] {
		q.recycle(pages)
		return false
	}
	if len(live) == 1 {
		// A batch of one gains nothing; use the plain one-shot.
		p := live[0]
		q.recycle(pages)
		f.IssuePLock(p)
		return true
	}
	f.stats.PLockBatches++
	f.stats.PLockBatchedPages += uint64(len(live))
	wlInBlock := g.wl - g.block*(f.geo.PagesPerBlock/f.geo.PagesPerWL)
	done, err := f.batchTarget.PLockWL(g.block, wlInBlock, live, f.reqStart)
	if err != nil {
		// The failed pulse left every flag cell unprogrammed (the per-WL
		// program opportunity is NOT spent page by page), so per-page
		// one-shot retries are legitimate; their own failures walk the
		// regular escalation ladder.
		f.stats.PLockBatchFailures++
		f.markFault(trace.OpPLockBatchFail, g.block, wlInBlock, done)
		for _, p := range live {
			f.IssuePLock(p)
		}
		q.recycle(pages)
		return true
	}
	for _, p := range live {
		if f.hooks.Destroyed != nil {
			f.hooks.Destroyed(p, f.fileOf[p])
		}
		if f.traceOn {
			f.tracer.Audit(audit.Event{Kind: audit.KindDestroy, Page: uint32(p), Src: audit.NoSrc,
				LPA: -1, Cause: audit.CausePLockBatch, Dep: f.reqStart, At: done, Ladder: f.ladderDepth > 0})
		}
	}
	q.recycle(pages)
	return true
}

// FlushLocks force-drains the batching queue, pulsing every attached
// wordline group regardless of age. It reports whether any chip command
// was issued. Groups appended reentrantly during the drain (escalation →
// GC → policy flush → LockPage) are drained too: the loop re-evaluates
// len(q.groups) each iteration.
func (f *FTL) FlushLocks() bool {
	if !f.lockBatching {
		return false
	}
	issued := false
	q := &f.lockq
	for gi := 0; gi < len(q.groups); gi++ {
		if f.issueLockGroup(gi) {
			issued = true
		}
	}
	f.compactLockGroups()
	return issued
}

// flushDueLocks pulses only the groups whose age crossed the configured
// deadline, reporting whether any chip command was issued. Used in
// deferred mode (Deadline > 0), where incomplete groups may ride across
// requests to gather more wordline siblings.
func (f *FTL) flushDueLocks() bool {
	issued := false
	q := &f.lockq
	deadline := f.cfg.LockBatch.Deadline
	for gi := 0; gi < len(q.groups); gi++ {
		if q.groups[gi].pages == nil || f.reqStart-q.groups[gi].queuedAt < deadline {
			continue
		}
		if f.issueLockGroup(gi) {
			issued = true
		}
	}
	f.compactLockGroups()
	return issued
}

// compactLockGroups drops detached group slots, keeping groupIdx
// consistent, so the groups slice never accumulates dead entries across
// requests in deferred mode.
func (f *FTL) compactLockGroups() {
	q := &f.lockq
	if q.attached == len(q.groups) {
		return
	}
	w := 0
	for gi := range q.groups {
		if q.groups[gi].pages == nil {
			continue
		}
		q.groups[w] = q.groups[gi]
		q.groupIdx[q.groups[w].wl] = int32(w + 1)
		w++
	}
	for gi := w; gi < len(q.groups); gi++ {
		q.groups[gi] = lockGroup{}
	}
	q.groups = q.groups[:w]
}

// cancelQueuedLocks drops a block's queued pLocks (its stale copies were
// just destroyed by an erase or retirement). Group slots for the block
// stay in the queue; their cancelled pages are skipped at issue time.
func (f *FTL) cancelQueuedLocks(block int) {
	q := &f.lockq
	if !f.lockBatching || q.count == 0 {
		return
	}
	first := f.geo.FirstPPA(block)
	for i := 0; i < f.geo.PagesPerBlock; i++ {
		if p := first + PPA(i); q.pending[p] {
			q.pending[p] = false
			q.count--
		}
	}
}

// LockPulses estimates how many tpLock pulses locking these pages will
// cost under the current batching mode: the pLock side of the §6
// decision rule (bLock the block when pulses × tpLock > tbLock). The
// pages must belong to one block. Without batching every page is its
// own pulse; with batching each distinct wordline is one pulse.
func (f *FTL) LockPulses(pages []PPA) int {
	if !f.lockBatching {
		return len(pages)
	}
	f.wlGen++
	pulses := 0
	for _, p := range pages {
		wl := f.geo.WLIndex(p)
		if f.wlMark[wl] != f.wlGen {
			f.wlMark[wl] = f.wlGen
			pulses++
		}
	}
	return pulses
}
