package ftl

import (
	"fmt"

	"repro/internal/sim"
)

// The remount path: after a power loss every byte of controller RAM —
// mapping tables, status tables, lock queues, pending-erase lists — is
// gone. What survives is the media: per-block write pointers, the
// access-control flags (pAP/bAP), the page payloads, and the spare-area
// stamps committed writes carry (see MetaWriter). Restore rebuilds a
// working FTL from exactly that, then re-runs the sanitization policy
// over everything the crash left stale, so a remounted device upholds
// the same security contract as an uninterrupted one.

// PageScan is one physical page's surviving media state, as probed by
// the controller's boot-time scan (nand.ProbePage).
type PageScan struct {
	// Programmed reports whether the block's write pointer passed the
	// page.
	Programmed bool
	// Locked reports whether the page is unreadable (pAP disabled, or
	// the block's bAP disabled).
	Locked bool
	// HasMeta reports a valid spare-area stamp; LPA, Seq and Secure
	// carry it. A programmed, readable page without a stamp is a torn
	// write: the pulse landed but the controller never committed it.
	HasMeta bool
	LPA     int64
	Seq     uint64
	Secure  bool
	// NonZero reports whether the readable payload holds at least one
	// nonzero byte (always false for locked pages).
	NonZero bool
}

// BlockScan is one block's surviving media state.
type BlockScan struct {
	// WritePtr is the chip's append-only write pointer.
	WritePtr int
	// Locked reports a disabled bAP (bLock).
	Locked bool
}

// MediaScan is the whole-device boot scan Restore consumes: one entry
// per global block and per global physical page, in PPA order.
type MediaScan struct {
	Blocks []BlockScan
	Pages  []PageScan
}

// Restore rebuilds an FTL from a post-power-loss media scan and re-runs
// the recovery ladder. The rebuild rules:
//
//   - Locked pages and blocks are already sanitized: they become
//     invalid slots whose data is gone (only an erase reclaims them).
//   - Among the readable stamped copies of each logical page, the
//     highest write sequence wins and is restored live (secured or
//     valid per its stamp); every older copy is stale and goes back
//     through the sanitization policy.
//   - A programmed, readable, stamp-less page with a nonzero payload is
//     a torn write. The controller cannot know what it was, so it is
//     conservatively treated as stale secured data and sanitized. The
//     nonzero guard makes remount idempotent: a scrubbed or torn-then-
//     sanitized page reads as zeros and needs no second pass.
//   - Every partially-written block is sealed: the unwritten tail is
//     retired with the block rather than reopened as a write frontier
//     (real FTLs distrust a torn block's tail; the space returns at the
//     block's next erase).
//
// File annotations and per-block wear history kept only in RAM are
// lost; statistics restart from zero. If the FTL is traced, reattaching
// the pre-cut collector preserves audit continuity: physical page ids
// are stable across the crash, so T_insecure windows opened before the
// cut are closed by the destructions this recovery pass issues.
//
// Restore issues the policy's sanitize work (locks, relocations,
// erases) through the target starting at simulated time `at`, then
// parks every fully-stale block on the lazy-erase queue so the
// allocator has headroom even when the crash left no free block.
func Restore(cfg Config, target Target, policy Policy, scan MediaScan, at sim.Micros) (*FTL, error) {
	f, err := New(cfg, target, policy)
	if err != nil {
		return nil, err
	}
	if len(scan.Blocks) != f.geo.TotalBlocks() || len(scan.Pages) != f.geo.TotalPages() {
		return nil, fmt.Errorf("ftl: media scan shape %d/%d blocks, %d/%d pages",
			len(scan.Blocks), f.geo.TotalBlocks(), len(scan.Pages), f.geo.TotalPages())
	}
	f.reqClock = at
	f.reqStart = at

	// Winner election: the highest-sequence readable stamped copy of
	// each logical page is the live one.
	winner := make([]PPA, cfg.LogicalPages)
	for i := range winner {
		winner[i] = NoPPA
	}
	for i := range scan.Pages {
		ps := &scan.Pages[i]
		if !ps.Programmed || ps.Locked || !ps.HasMeta {
			continue
		}
		if ps.Seq > f.writeSeq {
			f.writeSeq = ps.Seq
		}
		if ps.LPA < 0 || ps.LPA >= int64(cfg.LogicalPages) {
			// A corrupt stamp: demote to a torn write below.
			ps.HasMeta = false
			continue
		}
		if cur := winner[ps.LPA]; cur == NoPPA || scan.Pages[cur].Seq < ps.Seq {
			winner[ps.LPA] = PPA(i)
		}
	}

	// Rebuild block occupancy: free lists, seals, and lock state. No
	// chip operations are issued in this pass.
	for c := range f.chips {
		cs := &f.chips[c]
		cs.free = cs.free[:0]
		for b := f.geo.BlocksPerChip - 1; b >= 0; b-- {
			block := c*f.geo.BlocksPerChip + b
			bs := scan.Blocks[block]
			if !bs.Locked && bs.WritePtr == 0 {
				cs.free = append(cs.free, block)
				continue
			}
			// Occupied: sealed at remount — full occupancy, no frontier.
			f.usedInBlock[block] = int32(f.geo.PagesPerBlock)
			f.lockedBlocks[block] = bs.Locked
		}
	}

	// Page dispositions. Statuses first (so BlockFullyStale and the GC
	// see a consistent table), policy routing after.
	type stale struct {
		p      PPA
		secure bool
	}
	var stales []stale
	for i := range scan.Pages {
		p := PPA(i)
		ps := scan.Pages[i]
		block := f.geo.BlockOf(p)
		bs := scan.Blocks[block]
		if !bs.Locked && bs.WritePtr == 0 {
			continue // free block, free page
		}
		switch {
		case bs.Locked || ps.Locked:
			// Already sanitized; the slot is dead until erase.
			f.setStatus(p, PageInvalid)
		case !ps.Programmed:
			// Sealed tail of a partially-written block.
			f.setStatus(p, PageInvalid)
		case ps.HasMeta && winner[ps.LPA] == p:
			f.l2p[ps.LPA] = p
			f.p2l[p] = ps.LPA
			if ps.Secure {
				f.setStatus(p, PageSecured)
			} else {
				f.setStatus(p, PageValid)
			}
			f.liveInBlock[block]++
		case ps.HasMeta:
			// Superseded generation: its invalidation predates the cut,
			// but the sanitize work may not have completed.
			stales = append(stales, stale{p, ps.Secure})
		case ps.NonZero:
			// Torn write: readable residue with no commit record.
			stales = append(stales, stale{p, true})
		default:
			// Zero-filled residue (scrubbed page, sanitized torn write,
			// or a timing-only run's empty payload with no stamp):
			// nothing readable remains, no sanitize pass needed.
			f.setStatus(p, PageInvalid)
		}
	}

	// Route every stale copy back through the policy, then drain the
	// sanitize queues exactly like a host request does. Re-invalidating
	// a copy whose T_insecure window is already open is a no-op in the
	// audit ledger; torn writes were never registered and get adopted
	// as single-copy secrets.
	for _, s := range stales {
		if f.traceOn {
			f.tracer.Invalidated(uint32(s.p), s.secure, at)
		}
		f.policy.Invalidate(f, s.p, s.secure)
	}
	f.policy.Flush(f)
	for i := 0; ; i++ {
		if i >= 1000 {
			panic("ftl: remount sanitize flush did not converge after 1000 rounds")
		}
		if f.pendingCount > 0 {
			f.policy.Flush(f)
			continue
		}
		if f.lockBatching && f.lockq.attached > 0 && f.FlushLocks() {
			continue
		}
		break
	}

	// Park fully-stale blocks (sealed garbage, bLocked blocks awaiting
	// erase) on the lazy-erase queue: a crash can leave a chip with no
	// free block at all, and the allocator erases from this queue
	// before it would otherwise wedge.
	for block := 0; block < f.geo.TotalBlocks(); block++ {
		cs := &f.chips[f.geo.ChipOfBlock(block)]
		if f.retired[block] || f.freeContains(cs, block) || f.pendingEraseContains(cs, block) {
			continue
		}
		if f.liveInBlock[block] == 0 && int(f.usedInBlock[block]) == f.geo.PagesPerBlock {
			cs.pendingErase = append(cs.pendingErase, block)
		}
	}
	return f, nil
}
