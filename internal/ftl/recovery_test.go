package ftl_test

import (
	"errors"
	"testing"

	"repro/internal/audit"
	"repro/internal/ftl"
	"repro/internal/ftl/ftltest"
	"repro/internal/sanitize"
	"repro/internal/sim"
	"repro/internal/trace"
)

// capture is a trace.Collector recording every op event, so tests can
// assert the fault-marker classes the recovery ladder emits.
type capture struct {
	events []trace.Event
}

func (c *capture) Enabled() bool                              { return true }
func (c *capture) Op(ev trace.Event)                          { c.events = append(c.events, ev) }
func (c *capture) Gauge(trace.GaugeKind, sim.Micros, float64) {}
func (c *capture) Invalidated(uint32, bool, sim.Micros)       {}
func (c *capture) Destroyed(uint32, sim.Micros)               {}
func (c *capture) Audit(audit.Event)                          {}

func (c *capture) count(class trace.OpClass) int {
	n := 0
	for _, ev := range c.events {
		if ev.Class == class {
			n++
		}
	}
	return n
}

// newRecoveryFTL builds an FTL over a scripted CountingTarget with real
// chips attached (so forensic dumps can verify physical destruction) and
// a capturing tracer.
func newRecoveryFTL(t *testing.T, policy ftl.Policy) (*ftl.FTL, *ftltest.CountingTarget, *capture) {
	t.Helper()
	geo := ftltest.SmallGeometry()
	tgt := ftltest.New(geo).WithChips(ftltest.BuildChips(t, geo))
	cfg := ftltest.SmallConfig()
	cap := &capture{}
	cfg.Tracer = cap
	f, err := ftl.New(cfg, tgt, policy)
	if err != nil {
		t.Fatal(err)
	}
	return f, tgt, cap
}

// blockStatuses tallies the page-status population of one block.
func blockStatuses(f *ftl.FTL, block int) [ftl.NumPageStatus]int {
	var out [ftl.NumPageStatus]int
	geo := f.Geometry()
	first := geo.FirstPPA(block)
	for i := 0; i < geo.PagesPerBlock; i++ {
		out[f.Status(first+ftl.PPA(i))]++
	}
	return out
}

// assertNoResidue checks the attacker's view: a raw dump of the block
// must contain no non-zero byte.
func assertNoResidue(t *testing.T, tgt *ftltest.CountingTarget, f *ftl.FTL, block int) {
	t.Helper()
	geo := f.Geometry()
	chip := geo.ChipOfBlock(block)
	for page, data := range tgt.Chips[chip].ForensicDump(geo.BlockInChip(block), 1<<40) {
		for i, b := range data {
			if b != 0 {
				t.Fatalf("block %d page %d byte %d readable (0x%02x) after sanitization", block, page, i, b)
			}
		}
	}
}

// TestLockEscalationLadder walks the recovery ladder one scripted rung at
// a time: a failed pLock escalates to bLock; a failed bLock falls back to
// copy-out + erase; a failed erase retires the block behind backstop
// scrubs. Each case asserts the exact counter deltas, the final page-
// status population of the afflicted block, the trace marker classes,
// and — via a raw chip dump — that no stale byte survived.
func TestLockEscalationLadder(t *testing.T) {
	type want struct {
		pLockFailures, escalations   uint64
		bLockFailures, recoveryErase uint64
		eraseFailures, retired       uint64
		backstopScrubs               uint64
		locked, isRetired            bool
		// Final page-status population of the block.
		statuses [ftl.NumPageStatus]int
		// Expected trace-marker counts.
		marks map[trace.OpClass]int
	}
	geo := ftltest.SmallGeometry()
	allOf := func(st ftl.PageStatus) (out [ftl.NumPageStatus]int) {
		out[st] = geo.PagesPerBlock
		return
	}
	wls := uint64(geo.PagesPerBlock / geo.PagesPerWL)

	cases := []struct {
		name                            string
		failPLock, failBLock, failErase bool
		want                            want
	}{
		{
			name:      "plock-fail-escalates-to-block",
			failPLock: true,
			want: want{
				pLockFailures: 1, escalations: 1,
				locked:   true,
				statuses: allOf(ftl.PageInvalid),
				marks: map[trace.OpClass]int{
					trace.OpPLockFail: 1, trace.OpBLockFail: 0,
					trace.OpEraseFail: 0, trace.OpRetire: 0,
				},
			},
		},
		{
			name:      "block-fail-falls-back-to-erase",
			failPLock: true, failBLock: true,
			want: want{
				pLockFailures: 1, escalations: 1,
				bLockFailures: 1, recoveryErase: 1,
				statuses: allOf(ftl.PageFree),
				marks: map[trace.OpClass]int{
					trace.OpPLockFail: 1, trace.OpBLockFail: 1,
					trace.OpEraseFail: 0, trace.OpRetire: 0,
				},
			},
		},
		{
			name:      "erase-fail-retires-block",
			failPLock: true, failBLock: true, failErase: true,
			want: want{
				pLockFailures: 1, escalations: 1,
				bLockFailures: 1, recoveryErase: 1,
				eraseFailures: 1, retired: 1,
				backstopScrubs: wls,
				isRetired:      true,
				statuses:       allOf(ftl.PageRetired),
				marks: map[trace.OpClass]int{
					trace.OpPLockFail: 1, trace.OpBLockFail: 1,
					trace.OpEraseFail: 1, trace.OpRetire: 1,
				},
			},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f, tgt, tr := newRecoveryFTL(t, sanitize.SecSSDNoBLock())

			// lpa 0 and 2 stripe onto the same chip and share its active
			// block; lpa 1 lands on the other chip.
			write(t, f, 0, 1, false)
			write(t, f, 1, 1, false)
			write(t, f, 2, 1, false)
			victim := f.Geometry().BlockOf(f.Lookup(0))
			if f.Geometry().BlockOf(f.Lookup(2)) != victim {
				t.Fatalf("test setup: lpa 0 and 2 not co-located")
			}

			if tc.failPLock {
				tgt.FailPLock = failOnce(func(ftl.PPA) {})
			}
			if tc.failBLock {
				tgt.FailBLock = failOnce(func(int) {})
			}
			if tc.failErase {
				tgt.FailErase = failOnce(func(int) {})
			}

			// Overwriting lpa 0 invalidates its secured copy in the victim
			// block; the request-level flush pLocks it, and the scripted
			// failures drive the ladder from there.
			write(t, f, 0, 1, false)

			s := f.Stats()
			if s.PLockFailures != tc.want.pLockFailures ||
				s.LockEscalations != tc.want.escalations ||
				s.BLockFailures != tc.want.bLockFailures ||
				s.RecoveryErases != tc.want.recoveryErase ||
				s.EraseFailures != tc.want.eraseFailures ||
				s.RetiredBlocks != tc.want.retired ||
				s.BackstopScrubs != tc.want.backstopScrubs {
				t.Fatalf("stats %+v do not match %+v", s, tc.want)
			}
			if got := f.BlockLocked(victim); got != tc.want.locked {
				t.Fatalf("BlockLocked(%d) = %v, want %v", victim, got, tc.want.locked)
			}
			if got := f.BlockRetired(victim); got != tc.want.isRetired {
				t.Fatalf("BlockRetired(%d) = %v, want %v", victim, got, tc.want.isRetired)
			}
			if got := blockStatuses(f, victim); got != tc.want.statuses {
				t.Fatalf("block %d statuses %v, want %v", victim, got, tc.want.statuses)
			}
			for class, n := range tc.want.marks {
				if got := tr.count(class); got != n {
					t.Fatalf("trace %v count = %d, want %d", class, got, n)
				}
			}
			if tc.want.isRetired {
				if got := f.RetiredPages(); got != int64(f.Geometry().PagesPerBlock) {
					t.Fatalf("RetiredPages = %d, want %d", got, f.Geometry().PagesPerBlock)
				}
			}

			// The escalation relocated lpa 2's live copy out of the block
			// before locking it, without losing the mapping.
			if b := f.Geometry().BlockOf(f.Lookup(2)); b == victim {
				t.Fatal("live page was not relocated out of the escalated block")
			}
			if st := f.Status(f.Lookup(2)); st != ftl.PageSecured {
				t.Fatalf("relocated live page status %v, want secured", st)
			}
			assertNoResidue(t, tgt, f, victim)

			// The device keeps serving writes afterwards.
			for lpa := int64(0); lpa < 8; lpa++ {
				write(t, f, lpa, 1, false)
			}
		})
	}
}

// failOnce returns a scripted hook that fails exactly the first call.
func failOnce[T any](observe func(T)) func(T) error {
	fired := false
	return func(v T) error {
		if fired {
			return nil
		}
		fired = true
		observe(v)
		return errors.New("scripted fault")
	}
}

// TestProgramFailRetriesAndQuarantines: a failed host program consumes
// its page, which must be quarantined (routed through sanitization) while
// the write retries on a fresh page — and the leaked partial payload must
// not be readable once the request completes.
func TestProgramFailRetriesAndQuarantines(t *testing.T) {
	f, tgt, tr := newRecoveryFTL(t, sanitize.SecSSDNoBLock())

	var failed ftl.PPA
	tgt.FailProgram = failOnce(func(p ftl.PPA) { failed = p })
	write(t, f, 0, 1, false)

	s := f.Stats()
	if s.ProgramFailures != 1 || s.ProgramRetries != 1 {
		t.Fatalf("ProgramFailures/Retries = %d/%d, want 1/1", s.ProgramFailures, s.ProgramRetries)
	}
	if s.FlashPrograms != 2 {
		t.Fatalf("FlashPrograms = %d, want 2 (failed + retry)", s.FlashPrograms)
	}
	if p := f.Lookup(0); p == failed || p == ftl.NoPPA {
		t.Fatalf("lpa 0 maps to %v (failed page %v)", p, failed)
	}
	if st := f.Status(f.Lookup(0)); st != ftl.PageSecured {
		t.Fatalf("retried page status %v, want secured", st)
	}
	// The quarantined page went through the policy: pLocked and invalid.
	if st := f.Status(failed); st != ftl.PageInvalid {
		t.Fatalf("quarantined page status %v, want invalid", st)
	}
	if s.PLocks != 1 {
		t.Fatalf("PLocks = %d, want 1 (quarantined page sanitized)", s.PLocks)
	}
	if tr.count(trace.OpProgramFail) != 1 {
		t.Fatalf("OpProgramFail markers = %d, want 1", tr.count(trace.OpProgramFail))
	}
	if d := f.RetryDepth(); d.N() != 1 || d.Mean() != 1 {
		t.Fatalf("RetryDepth n=%d mean=%v, want 1/1", d.N(), d.Mean())
	}
	assertNoResidue(t, tgt, f, f.Geometry().BlockOf(failed))
}

// TestLockedAndRetiredBlocksSkipFurtherLocks: once a block is bLocked or
// retired, later IssuePLock/IssueBLock calls on it are no-ops (its stale
// data is already destroyed).
func TestLockedAndRetiredBlocksSkipFurtherLocks(t *testing.T) {
	f, tgt, _ := newRecoveryFTL(t, sanitize.SecSSDNoBLock())
	write(t, f, 0, 1, false)
	write(t, f, 2, 1, false)
	victim := f.Geometry().BlockOf(f.Lookup(0))
	tgt.FailPLock = failOnce(func(ftl.PPA) {})
	write(t, f, 0, 1, false) // escalates victim to a bLock
	if !f.BlockLocked(victim) {
		t.Fatal("setup: victim not locked")
	}
	before := f.Stats()
	f.IssuePLock(f.Geometry().FirstPPA(victim))
	f.IssueBLock(victim, nil)
	after := f.Stats()
	if after.PLocks != before.PLocks || after.BLocks != before.BLocks {
		t.Fatalf("locks issued on an already-locked block: %+v -> %+v", before, after)
	}
}
