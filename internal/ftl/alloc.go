package ftl

import "fmt"

// allocate returns the next free physical page, striping host writes
// across chips round-robin for channel parallelism.
func (f *FTL) allocate() (PPA, error) {
	n := len(f.chips)
	for i := 0; i < n; i++ {
		chip := (f.rr() + i) % n
		if p, err := f.allocateOnChip(chip); err == nil {
			return p, nil
		}
	}
	retired := 0
	for _, r := range f.retired {
		if r {
			retired++
		}
	}
	return 0, fmt.Errorf(
		"ftl: device out of space (%d/%d blocks retired, %d reusable, %d programs quarantined): "+
			"the over-provisioning is gone — likely consumed by injected faults",
		retired, f.geo.TotalBlocks(), f.FreeBlocks(), f.stats.ProgramFailures)
}

// rr advances the round-robin cursor.
func (f *FTL) rr() int {
	f.chips[0].rrOffset++
	return f.chips[0].rrOffset
}

// mustAllocate is allocate for internal relocation paths where failure
// means the over-provisioning invariant was violated.
func (f *FTL) mustAllocate() PPA {
	p, err := f.allocate()
	if err != nil {
		panic(err)
	}
	return p
}

// allocateOnChip takes the next page of one of the chip's active blocks,
// rotating across planes so multi-plane devices keep every plane's
// frontier warm. With a single plane it reduces to the classic
// one-active-block allocator.
func (f *FTL) allocateOnChip(chip int) (PPA, error) {
	cs := &f.chips[chip]
	var lastErr error
	for i := 0; i < f.planes; i++ {
		pl := (cs.planeCursor + i) % f.planes
		p, err := f.allocateOnPlane(chip, pl)
		if err == nil {
			cs.planeCursor = (pl + 1) % f.planes
			return p, nil
		}
		lastErr = err
	}
	return 0, lastErr
}

// allocateOnPlane takes the next page of the plane's active block,
// opening (and lazily erasing) a new block when needed.
func (f *FTL) allocateOnPlane(chip, plane int) (PPA, error) {
	cs := &f.chips[chip]
	if cs.active[plane] < 0 || cs.frontier[plane] >= f.geo.PagesPerBlock {
		if err := f.openBlock(chip, plane); err != nil {
			return 0, err
		}
	}
	block := cs.active[plane]
	p := f.geo.FirstPPA(block) + PPA(cs.frontier[plane])
	cs.frontier[plane]++
	f.usedInBlock[block]++
	return p, nil
}

// allocateStripe allocates up to want pages on distinct planes of a
// single chip, for one multi-plane program. It returns however many
// pages a chip could provide (possibly just one; the caller programs
// them — they are consumed), or an empty slice when every chip is out of
// space. The returned slice is a scratch buffer valid until the next
// allocateStripe call.
func (f *FTL) allocateStripe(want int) []PPA {
	n := len(f.chips)
	stripe := f.stripeScratch[:0]
	for i := 0; i < n; i++ {
		chip := (f.rr() + i) % n
		for pl := 0; pl < f.planes && len(stripe) < want; pl++ {
			if p, err := f.allocateOnPlane(chip, pl); err == nil {
				stripe = append(stripe, p)
			}
		}
		if len(stripe) > 0 {
			break
		}
	}
	f.stripeScratch = stripe
	return stripe
}

// openBlock selects the plane's next active block. Lazy erase happens
// here: a block queued for erase is erased immediately before reuse, so
// its open interval is effectively zero (§5.4).
func (f *FTL) openBlock(chip, plane int) error {
	cs := &f.chips[chip]
	cs.active[plane] = -1
	cs.frontier[plane] = 0
	// Default pick: the most recently freed block of this plane; under
	// wear-aware allocation, the least-erased one.
	pick := -1
	for i := len(cs.free) - 1; i >= 0; i-- {
		if f.geo.PlaneOfBlock(cs.free[i]) == plane {
			pick = i
			break
		}
	}
	if pick >= 0 {
		if f.cfg.WearAware {
			// Dynamic wear leveling: open the least-erased free block.
			for i := 0; i < len(cs.free); i++ {
				if f.geo.PlaneOfBlock(cs.free[i]) != plane {
					continue
				}
				if f.eraseCount[cs.free[i]] < f.eraseCount[cs.free[pick]] {
					pick = i
				}
			}
		}
		cs.active[plane] = cs.free[pick]
		cs.free = append(cs.free[:pick], cs.free[pick+1:]...)
		return nil
	}
	for {
		pick = -1
		for i, b := range cs.pendingErase {
			if f.geo.PlaneOfBlock(b) == plane {
				pick = i
				break
			}
		}
		if pick < 0 {
			break
		}
		if f.cfg.WearAware {
			for i := pick + 1; i < len(cs.pendingErase); i++ {
				b := cs.pendingErase[i]
				if f.geo.PlaneOfBlock(b) == plane &&
					f.eraseCount[b] < f.eraseCount[cs.pendingErase[pick]] {
					pick = i
				}
			}
		}
		block := cs.pendingErase[pick]
		cs.pendingErase = append(cs.pendingErase[:pick], cs.pendingErase[pick+1:]...)
		if !f.eraseBlock(block) {
			// The lazy erase failed and retired the block; try the next
			// candidate.
			continue
		}
		cs.active[plane] = block
		return nil
	}
	return fmt.Errorf("ftl: chip %d plane %d out of blocks", chip, plane)
}

// reusableBlocks counts blocks the chip can still open.
func (f *FTL) reusableBlocks(chip int) int {
	cs := &f.chips[chip]
	return len(cs.free) + len(cs.pendingErase)
}

// FreeBlocks reports the total reusable blocks across the device (free +
// pending erase), for tests and capacity probes.
func (f *FTL) FreeBlocks() int {
	total := 0
	for c := range f.chips {
		total += f.reusableBlocks(c)
	}
	return total
}
