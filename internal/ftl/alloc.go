package ftl

import "fmt"

// allocate returns the next free physical page, striping host writes
// across chips round-robin for channel parallelism.
func (f *FTL) allocate() (PPA, error) {
	n := len(f.chips)
	for i := 0; i < n; i++ {
		chip := (f.rr() + i) % n
		if p, err := f.allocateOnChip(chip); err == nil {
			return p, nil
		}
	}
	retired := 0
	for _, r := range f.retired {
		if r {
			retired++
		}
	}
	return 0, fmt.Errorf(
		"ftl: device out of space (%d/%d blocks retired, %d reusable, %d programs quarantined): "+
			"the over-provisioning is gone — likely consumed by injected faults",
		retired, f.geo.TotalBlocks(), f.FreeBlocks(), f.stats.ProgramFailures)
}

// rr advances the round-robin cursor.
func (f *FTL) rr() int {
	f.chips[0].rrOffset++
	return f.chips[0].rrOffset
}

// mustAllocate is allocate for internal relocation paths where failure
// means the over-provisioning invariant was violated.
func (f *FTL) mustAllocate() PPA {
	p, err := f.allocate()
	if err != nil {
		panic(err)
	}
	return p
}

// allocateOnChip takes the next page of the chip's active block, opening
// (and lazily erasing) a new block when needed.
func (f *FTL) allocateOnChip(chip int) (PPA, error) {
	cs := &f.chips[chip]
	if cs.active < 0 || cs.frontier >= f.geo.PagesPerBlock {
		if err := f.openBlock(chip); err != nil {
			return 0, err
		}
	}
	block := cs.active
	p := f.geo.FirstPPA(block) + PPA(cs.frontier)
	cs.frontier++
	f.usedInBlock[block]++
	return p, nil
}

// openBlock selects the chip's next active block. Lazy erase happens
// here: a block queued for erase is erased immediately before reuse, so
// its open interval is effectively zero (§5.4).
func (f *FTL) openBlock(chip int) error {
	cs := &f.chips[chip]
	cs.active = -1
	cs.frontier = 0
	if n := len(cs.free); n > 0 {
		pick := n - 1
		if f.cfg.WearAware {
			// Dynamic wear leveling: open the least-erased free block.
			for i := 0; i < n; i++ {
				if f.eraseCount[cs.free[i]] < f.eraseCount[cs.free[pick]] {
					pick = i
				}
			}
		}
		cs.active = cs.free[pick]
		cs.free = append(cs.free[:pick], cs.free[pick+1:]...)
		return nil
	}
	for len(cs.pendingErase) > 0 {
		pick := 0
		if f.cfg.WearAware {
			for i := 1; i < len(cs.pendingErase); i++ {
				if f.eraseCount[cs.pendingErase[i]] < f.eraseCount[cs.pendingErase[pick]] {
					pick = i
				}
			}
		}
		block := cs.pendingErase[pick]
		cs.pendingErase = append(cs.pendingErase[:pick], cs.pendingErase[pick+1:]...)
		if !f.eraseBlock(block) {
			// The lazy erase failed and retired the block; try the next
			// candidate.
			continue
		}
		cs.active = block
		return nil
	}
	return fmt.Errorf("ftl: chip %d out of blocks", chip)
}

// reusableBlocks counts blocks the chip can still open.
func (f *FTL) reusableBlocks(chip int) int {
	cs := &f.chips[chip]
	return len(cs.free) + len(cs.pendingErase)
}

// FreeBlocks reports the total reusable blocks across the device (free +
// pending erase), for tests and capacity probes.
func (f *FTL) FreeBlocks() int {
	total := 0
	for c := range f.chips {
		total += f.reusableBlocks(c)
	}
	return total
}
