package ftl

// Fault recovery: what the FTL does when a chip operation reports
// failure (see internal/fault and the Target contract in ftl.go).
//
// The escalation ladder never leaves a secured page readable:
//
//	program fail → quarantine the consumed page (it holds a partial,
//	               possibly readable payload) + retry on a fresh page
//	pLock fail   → escalate to a bLock of the whole block
//	bLock fail   → forced copy-out + immediate erase
//	erase fail   → retire the block, scrubbing stale wordlines in place
//	               first (the in-place Vth merge cannot fail)

import (
	"fmt"

	"repro/internal/audit"
	"repro/internal/sim"
	"repro/internal/trace"
)

// maxProgramAttempts bounds the fresh-page retry loops. Reaching it
// means the injected failure probability is near 1 — a configuration
// error, not a plausible device state.
const maxProgramAttempts = 16

// markFault emits a zero-width marker event for a recovered fault. The
// chip occupancy of the failed operation is carried by its regular
// event (the recorder excludes these classes from busy time).
func (f *FTL) markFault(class trace.OpClass, block, page int, at sim.Micros) {
	if !f.traceOn {
		return
	}
	f.tracer.Op(trace.Event{
		Class: class, Start: at, End: at, Queued: at,
		Chip: f.geo.ChipOfBlock(block), Channel: -1, Block: block, Page: page, LPA: -1,
	})
}

// quarantineFailedProgram accounts a page consumed by a failed program.
// The chip's write pointer advanced and a partial copy of the payload
// may be readable on the wordline, so the page is treated as
// written-and-immediately-stale and routed through the sanitization
// policy like any other invalidation: the usual pLock/bLock machinery
// destroys the residue before the request completes.
func (f *FTL) quarantineFailedProgram(p PPA, secure bool, file uint64, at sim.Micros) {
	f.stats.ProgramFailures++
	f.markFault(trace.OpProgramFail, f.geo.BlockOf(p), f.geo.PageInBlock(p), at)
	f.fileOf[p] = file
	if f.hooks.Programmed != nil {
		f.hooks.Programmed(p, -1, file)
	}
	if f.hooks.Invalidated != nil {
		f.hooks.Invalidated(p, file)
	}
	if secure && f.traceOn {
		f.tracer.Audit(audit.Event{Kind: audit.KindCopy, Page: uint32(p), Src: audit.NoSrc,
			LPA: -1, Origin: audit.OriginQuarantine, At: at})
	}
	if f.traceOn {
		f.tracer.Invalidated(uint32(p), secure, at)
	}
	f.policy.Invalidate(f, p, secure)
}

// escalateToBLock handles a pLock failure: the flag cells' one-shot
// program opportunity is spent, so the page can only be sanitized by
// locking (or erasing) the whole block. Live pages are relocated out
// first; if the bLock itself fails the ladder continues with a forced
// erase.
func (f *FTL) escalateToBLock(block int) {
	f.stats.LockEscalations++
	f.ladderDepth++
	defer func() { f.ladderDepth-- }()
	// The block will be unprogrammable once locked: consume its
	// unwritten tail and close it if it is the chip's active block, so
	// the relocations below (and all later writes) land elsewhere.
	f.sealBlock(block)
	f.RelocateLive(block)
	// The relocations may have triggered GC, whose flush can run the
	// ladder on this very block (its stale pages were pended too): a
	// competing bLock may already have disabled it, or a bLock failure
	// may have erased it — freeing the block and destroying the stale
	// data, possibly even refilling it with new writes. Only lock if the
	// block is still fully stale.
	if f.lockedBlocks[block] || f.retired[block] || !f.BlockFullyStale(block) {
		return
	}
	f.stats.BLocks++
	done, err := f.target.BLock(block, f.reqStart)
	if err != nil {
		f.stats.BLockFailures++
		f.markFault(trace.OpBLockFail, block, -1, done)
		f.recoveryErase(block)
		return
	}
	f.lockedBlocks[block] = true
	f.destroyStale(block, done, audit.CauseBLock, f.reqStart)
}

// recoveryErase destroys a block whose locks could not be programmed.
// EraseNow covers both outcomes: a successful erase frees the block, a
// failed one retires it (with the scrub backstop).
func (f *FTL) recoveryErase(block int) {
	f.stats.RecoveryErases++
	f.ladderDepth++
	defer func() { f.ladderDepth-- }()
	f.EraseNow(block)
}

// retireBlock pulls a block from rotation after a failed erase. The
// erase destroyed nothing, so every written wordline is first scrubbed
// in place — the one infallible destruction primitive — guaranteeing no
// stale byte outlives retirement even if the block's locks had failed
// too. Retired pages never return to the allocator.
func (f *FTL) retireBlock(block int, at sim.Micros) {
	if f.retired[block] {
		return
	}
	f.ladderDepth++
	defer func() { f.ladderDepth-- }()
	first := f.geo.FirstPPA(block)
	for i := 0; i < f.geo.PagesPerBlock; i++ {
		if f.status[first+PPA(i)].Live() {
			panic(fmt.Sprintf("ftl: retiring block %d with live page %d", block, first+PPA(i)))
		}
	}
	f.retired[block] = true
	f.stats.RetiredBlocks++

	// Scrub before sealing, while PageFree still identifies wordlines
	// that were never written (nothing to destroy there).
	for wlStart := 0; wlStart < f.geo.PagesPerBlock; wlStart += f.geo.PagesPerWL {
		written := false
		for s := 0; s < f.geo.PagesPerWL; s++ {
			if f.status[first+PPA(wlStart+s)] != PageFree {
				written = true
				break
			}
		}
		if !written {
			continue
		}
		f.stats.Scrubs++
		f.stats.BackstopScrubs++
		done := f.target.Scrub(first+PPA(wlStart), f.reqClock)
		if done > f.reqClock {
			f.reqClock = done
		}
		at = done
	}
	f.destroyStale(block, at, audit.CauseScrub, at)
	f.sealBlock(block)

	for i := 0; i < f.geo.PagesPerBlock; i++ {
		p := first + PPA(i)
		f.setStatus(p, PageRetired)
		f.p2l[p] = -1
		f.fileOf[p] = 0
	}
	f.liveInBlock[block] = 0
	f.usedInBlock[block] = int32(f.geo.PagesPerBlock)
	f.clearPending(block)
	f.cancelQueuedLocks(block)

	// Pull the block from the allocator's rotation entirely.
	cs := &f.chips[f.geo.ChipOfBlock(block)]
	for i, b := range cs.free {
		if b == block {
			cs.free = append(cs.free[:i], cs.free[i+1:]...)
			break
		}
	}
	for i, b := range cs.pendingErase {
		if b == block {
			cs.pendingErase = append(cs.pendingErase[:i], cs.pendingErase[i+1:]...)
			break
		}
	}

	f.markFault(trace.OpRetire, block, -1, at)
	if f.traceOn {
		f.tracer.Gauge(trace.GaugeRetiredBlocks, at, float64(f.stats.RetiredBlocks))
	}
}

// sealBlock consumes a block's unwritten tail so the allocator never
// programs it again: required before a bLock (programs to a locked
// block are rejected by the chip) and before retirement.
func (f *FTL) sealBlock(block int) {
	cs := &f.chips[f.geo.ChipOfBlock(block)]
	if pl := f.geo.PlaneOfBlock(block); cs.active[pl] == block {
		cs.active[pl] = -1
		cs.frontier[pl] = 0
	}
	first := f.geo.FirstPPA(block)
	sealed := int32(0)
	for i := 0; i < f.geo.PagesPerBlock; i++ {
		p := first + PPA(i)
		if f.status[p] == PageFree {
			f.setStatus(p, PageInvalid)
			sealed++
		}
	}
	f.usedInBlock[block] += sealed
}

// destroyStale fires the destruction hooks for every stale page of a
// block after a whole-block destruction (bLock or backstop scrub). Both
// the recorder and the audit ledger tolerate a later erase firing a
// destruction again for the same pages.
func (f *FTL) destroyStale(block int, done sim.Micros, cause audit.Cause, dep sim.Micros) {
	first := f.geo.FirstPPA(block)
	for i := 0; i < f.geo.PagesPerBlock; i++ {
		p := first + PPA(i)
		if f.status[p] != PageInvalid {
			continue
		}
		if f.hooks.Destroyed != nil {
			f.hooks.Destroyed(p, f.fileOf[p])
		}
		if f.traceOn {
			f.tracer.Audit(audit.Event{Kind: audit.KindDestroy, Page: uint32(p), Src: audit.NoSrc,
				LPA: -1, Cause: cause, Dep: dep, At: done, Ladder: f.ladderDepth > 0})
		}
	}
}
